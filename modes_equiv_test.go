package repro_test

import (
	"math"
	"testing"

	"github.com/slide-cpu/slide/internal/harness"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// TestTrainingEquivalentAcrossKernelModes trains the same network shape from
// the same seed for 20 TrainBatch steps under every kernel tier this host
// supports and requires the runs to land at the same place. Elementwise
// equivalence tests (internal/simd) cannot catch an assembly kernel that is
// correct per element but numerically divergent in aggregate — different
// reduction orders feeding the LSH sampler can snowball into different
// active sets and a genuinely different optimization trajectory. The gate
// here is convergence-level: summed training loss within a few percent and
// evaluation P@1 within a few points of the portable reference, which passes
// for legitimate FMA/reorder ULP noise and fails for broken kernels (wrong
// sign, dropped lanes, misaligned tails all blow past it immediately).
func TestTrainingEquivalentAcrossKernelModes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-mode end-to-end training; skipped in -short (race CI)")
	}
	prev := simd.CurrentMode()
	defer simd.SetMode(prev)

	opts := harness.Options{Scale: 1e-6, Epochs: 1, EvalPointsPerEpoch: 1,
		EvalSamples: 60, Workers: 1, Seed: 1234}
	ws, err := harness.Workloads(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0] // Amazon-670K-like

	const steps = 20
	type result struct {
		loss float64
		p1   float64
	}
	run := func(m simd.Mode) result {
		simd.SetMode(m)
		cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
		net, err := network.New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
		var loss float64
		var samples int64
		for s := 0; s < steps; s++ {
			b, ok := it.Next()
			if !ok {
				it = w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed+uint64(s))
				if b, ok = it.Next(); !ok {
					t.Fatal("workload too small for 20 batches")
				}
			}
			st := net.TrainBatch(b)
			loss += st.Loss
			samples += int64(st.Samples)
		}
		scores := make([]float32, cfg.OutputDim)
		var p1 float64
		n := min(opts.EvalSamples, w.Test.Len())
		for i := 0; i < n; i++ {
			net.Scores(w.Test.Sample(i), scores)
			p1 += metrics.PrecisionAtK(scores, w.Test.LabelsOf(i), 1)
		}
		return result{loss: loss / float64(samples), p1: p1 / float64(n)}
	}

	modes := simd.AvailableModes()
	ref := run(simd.Vector) // portable tier is the cross-arch reference
	t.Logf("vector reference: mean loss %.6f, P@1 %.3f", ref.loss, ref.p1)
	for _, m := range modes {
		if m == simd.Vector {
			continue
		}
		got := run(m)
		t.Logf("%s: mean loss %.6f, P@1 %.3f", m, got.loss, got.p1)
		if math.IsNaN(got.loss) || math.IsInf(got.loss, 0) {
			t.Fatalf("%s: training diverged (loss %g)", m, got.loss)
		}
		// Mean per-sample loss after 20 steps: a broken kernel leaves loss
		// near the untrained plateau or at infinity; ULP-level reordering
		// moves it by well under a percent in practice (5% margin).
		if diff := math.Abs(got.loss - ref.loss); diff > 0.05*ref.loss {
			t.Errorf("%s: mean loss %.6f vs reference %.6f (>5%%)", m, got.loss, ref.loss)
		}
		// P@1 on the eval head: same-trajectory runs agree to a few
		// sampling flips; allow 10 points of drift.
		if diff := math.Abs(got.p1 - ref.p1); diff > 0.10 {
			t.Errorf("%s: P@1 %.3f vs reference %.3f (>0.10)", m, got.p1, ref.p1)
		}
	}
}
