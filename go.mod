module github.com/slide-cpu/slide

go 1.24
