// Command slide-train trains a SLIDE (or full-softmax) model on one of the
// built-in synthetic workloads or on a real XMC-format file, reporting
// per-epoch loss, Precision@1, active-set sparsity, and wall-clock time.
//
// Usage:
//
//	slide-train -dataset amazon -scale 0.01 -epochs 3
//	slide-train -dataset text8 -scale 0.005 -hash simhash -k 7 -l 12
//	slide-train -train train.txt -test test.txt -k 6 -l 50
//	slide-train -dataset amazon -mode dense          # full-softmax baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		ds      = flag.String("dataset", "amazon", "builtin dataset: amazon|wiki|text8 (ignored when -train/-corpus is set)")
		trainF  = flag.String("train", "", "XMC-format training file (overrides -dataset)")
		testF   = flag.String("test", "", "XMC-format test file")
		corpusF = flag.String("corpus", "", "raw text corpus for word2vec training (e.g. the real text8 file)")
		vocabN  = flag.Int("vocab", 0, "corpus: keep the N most frequent words (0 = all)")
		scale   = flag.Float64("scale", 0.01, "builtin dataset scale")
		epochs  = flag.Int("epochs", 3, "training epochs")
		batch   = flag.Int("batch", 256, "batch size")
		hidden  = flag.Int("hidden", 128, "hidden layer width")
		hash    = flag.String("hash", "dwta", "hash family: dwta|simhash")
		k       = flag.Int("k", 4, "hashes per table")
		l       = flag.Int("l", 16, "number of hash tables")
		lr      = flag.Float64("lr", 1e-4, "ADAM learning rate")
		mode    = flag.String("mode", "slide", "slide | dense (full softmax)")
		prec    = flag.String("precision", "fp32", "fp32 | bf16act | bf16full")
		workers = flag.Int("workers", 0, "HOGWILD workers (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "random seed")
		evalN   = flag.Int("evalsamples", 500, "test samples per evaluation")
		saveF   = flag.String("save", "", "write a checkpoint here after training")
		resumeF = flag.String("resume", "", "resume training from this checkpoint (architecture flags ignored)")
	)
	flag.Parse()

	var train, test *slide.Dataset
	var err error
	if *corpusF != "" {
		var vocab *slide.Vocabulary
		train, vocab, err = slide.OpenCorpus(*corpusF, slide.CorpusOptions{MaxVocab: *vocabN, Window: 2})
		if err != nil {
			fail(err)
		}
		fmt.Printf("corpus vocabulary: %d words (most frequent: %q)\n", vocab.Size(), vocab.Word(0))
		// Hold out the tail of the corpus samples for evaluation.
		n := train.Len()
		test = train // evaluate on training head when the corpus is tiny
		if n > 2000 {
			test = train.Head(n / 10)
		}
	} else {
		train, test, err = loadData(*trainF, *testF, *ds, *scale, *seed)
		if err != nil {
			fail(err)
		}
	}
	st := train.Stats()
	fmt.Printf("dataset %s: %d samples, %d features (%.4f%% dense), %d labels, %.1f labels/sample\n",
		train.Name(), st.Samples, st.Features, st.FeatureSparsity*100, st.Labels, st.AvgLabels)
	fmt.Printf("model: %d -> %d -> %d (%.1fM parameters)\n",
		train.Features(), *hidden, train.NumLabels(),
		float64(train.ModelParams(*hidden))/1e6)

	opts := []slide.Option{
		slide.WithLearningRate(*lr),
		slide.WithSeed(*seed),
	}
	if *workers > 0 {
		opts = append(opts, slide.WithWorkers(*workers))
	}
	switch *mode {
	case "dense":
		opts = append(opts, slide.WithFullSoftmax())
	case "slide":
		if *hash == "simhash" {
			opts = append(opts, slide.WithSimHash(*k, *l))
		} else {
			opts = append(opts, slide.WithDWTA(*k, *l))
		}
	default:
		fail(fmt.Errorf("unknown -mode %q", *mode))
	}
	switch *prec {
	case "fp32":
		opts = append(opts, slide.WithPrecision(slide.FP32))
	case "bf16act":
		opts = append(opts, slide.WithPrecision(slide.BF16Activations))
	case "bf16full":
		opts = append(opts, slide.WithPrecision(slide.BF16Full))
	default:
		fail(fmt.Errorf("unknown -precision %q", *prec))
	}
	if (*ds == "text8" && *trainF == "") || *corpusF != "" {
		opts = append(opts, slide.WithLinearHidden())
	}

	var m *slide.Model
	if *resumeF != "" {
		if m, err = slide.LoadFile(*resumeF); err != nil {
			fail(err)
		}
		fmt.Printf("resumed from %s at optimizer step %d\n", *resumeF, m.Steps())
	} else if m, err = slide.New(train.Features(), *hidden, train.NumLabels(), opts...); err != nil {
		fail(err)
	}

	var trained time.Duration
	for e := 1; e <= *epochs; e++ {
		start := time.Now()
		stats, err := m.TrainEpoch(train, *batch)
		if err != nil {
			fail(err)
		}
		trained += time.Since(start)
		p1 := 0.0
		if test != nil {
			if p1, err = m.Evaluate(test, *evalN, 1); err != nil {
				fail(err)
			}
		}
		fmt.Printf("epoch %2d  time %8.2fs  loss %7.4f  P@1 %.4f  active %6.1f (%.2f%% of outputs)\n",
			e, time.Since(start).Seconds(), stats.MeanLoss, p1,
			stats.MeanActive, 100*stats.ActiveFraction(train.NumLabels()))
	}
	fmt.Printf("total training time: %.2fs (%.2fs/epoch)\n",
		trained.Seconds(), trained.Seconds()/float64(*epochs))
	if *saveF != "" {
		if err := m.SaveFile(*saveF); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *saveF)
	}
}

func loadData(trainF, testF, ds string, scale float64, seed uint64) (train, test *slide.Dataset, err error) {
	if trainF != "" {
		if train, err = slide.OpenXMC(trainF); err != nil {
			return nil, nil, err
		}
		if testF != "" {
			if test, err = slide.OpenXMC(testF); err != nil {
				return nil, nil, err
			}
		}
		return train, test, nil
	}
	switch ds {
	case "amazon":
		return slide.AmazonLike(scale, seed)
	case "wiki":
		return slide.WikiLike(scale, seed)
	case "text8":
		return slide.Text8Like(scale, seed)
	default:
		return nil, nil, fmt.Errorf("unknown -dataset %q (amazon|wiki|text8)", ds)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "slide-train: %v\n", err)
	os.Exit(1)
}
