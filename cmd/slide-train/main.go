// Command slide-train trains a SLIDE (or full-softmax) model through the
// Trainer session API: in-memory datasets, streaming (out-of-core) XMC
// files, LR schedules, scheduled checkpoints, early stopping, and graceful
// cancellation (SIGINT/SIGTERM or -timeout) — reporting per-epoch loss,
// Precision@1, active-set sparsity, and wall-clock time.
//
// Usage:
//
//	slide-train -dataset amazon -scale 0.01 -epochs 3
//	slide-train -dataset text8 -scale 0.005 -hash simhash -k 7 -l 12
//	slide-train -train train.txt -test test.txt -k 6 -l 50
//	slide-train -stream big.txt -shuffle-window 8192 -epochs 0 -timeout 1h \
//	    -save model.slide -checkpoint-every 1000
//	slide-train -resume model.slide -stream big.txt -epochs 1
//	slide-train -dataset amazon -mode dense          # full-softmax baseline
//
// Fault tolerance: -retain N keeps a ring of the N last-good checkpoints
// (model.slide, model.slide.1, …); -resume loads the newest checkpoint in
// the ring that passes its per-section checksums, printing a "falling back"
// notice when the primary is torn or corrupt. The -chaos flag arms the
// deterministic fault injector (e.g. "checkpoint.write@2=cut:64" tears the
// second checkpoint write after 64 bytes) for crash-recovery drills:
//
//	slide-train -dataset amazon -epochs 1 -save model.slide \
//	    -checkpoint-every 100 -retain 3 -chaos 'checkpoint.write@2=cut:64'
//
// Numerical health: -health arms per-step NaN/Inf guards and loss-spike
// detection; -auto-rollback N closes the self-healing loop, reloading the
// newest valid checkpoint and replaying (with -rollback-lr-factor backoff)
// up to N times. Drill it with the numeric poison actions:
//
//	slide-train -dataset amazon -epochs 1 -save model.slide \
//	    -checkpoint-every 50 -retain 3 -auto-rollback 2 \
//	    -chaos 'train.batch@120=nan:0'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		ds      = flag.String("dataset", "amazon", "builtin dataset: amazon|wiki|text8 (ignored when -train/-corpus/-stream is set)")
		trainF  = flag.String("train", "", "XMC-format training file, loaded in memory (overrides -dataset)")
		streamF = flag.String("stream", "", "XMC-format training file, streamed out-of-core (overrides -dataset/-train)")
		window  = flag.Int("shuffle-window", 4096, "streaming: shuffle-buffer size in samples (0 = file order)")
		testF   = flag.String("test", "", "XMC-format test file")
		corpusF = flag.String("corpus", "", "raw text corpus for word2vec training (e.g. the real text8 file)")
		vocabN  = flag.Int("vocab", 0, "corpus: keep the N most frequent words (0 = all)")
		scale   = flag.Float64("scale", 0.01, "builtin dataset scale")
		epochs  = flag.Int("epochs", 3, "training epochs (0 = unbounded; stop via -timeout, -max-steps or signal)")
		maxStep = flag.Int64("max-steps", 0, "stop when the optimizer step count reaches this (0 = unbounded)")
		timeout = flag.Duration("timeout", 0, "cancel training after this long (0 = none); cancellation is graceful")
		batch   = flag.Int("batch", 256, "batch size")
		hidden  = flag.Int("hidden", 128, "hidden layer width")
		hash    = flag.String("hash", "dwta", "hash family: dwta|simhash")
		k       = flag.Int("k", 4, "hashes per table")
		l       = flag.Int("l", 16, "number of hash tables")
		lr      = flag.Float64("lr", 1e-4, "ADAM learning rate")
		warmup  = flag.Int64("warmup", 0, "linear LR warmup over this many steps")
		decay   = flag.Float64("lr-decay", 1, "multiply the LR by this factor every -lr-decay-every steps")
		decayN  = flag.Int64("lr-decay-every", 0, "step-decay interval (0 = no decay)")
		early   = flag.Int("early-stop", 0, "stop after this many epochs without loss improvement (0 = off)")
		earlyD  = flag.Float64("early-stop-delta", 0, "minimum loss improvement that resets early stopping")
		mode    = flag.String("mode", "slide", "slide | dense (full softmax)")
		prec    = flag.String("precision", "fp32", "fp32 | bf16act | bf16full")
		workers = flag.Int("workers", 0, "HOGWILD workers (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0, "output-layer shards for the deterministic sharded trainer (0 = legacy HOGWILD; requires -mode slide)")
		seed    = flag.Uint64("seed", 42, "random seed")
		evalN   = flag.Int("evalsamples", 500, "test samples per evaluation")
		saveF   = flag.String("save", "", "checkpoint path (written at end of training, and every -checkpoint-every steps)")
		ckptN   = flag.Int("checkpoint-every", 0, "write -save atomically every N optimizer steps (0 = only at the end)")
		retain  = flag.Int("retain", 1, "last-good checkpoints to keep as a fallback ring (-save, -save.1, ...); -resume falls back through them")
		resumeF = flag.String("resume", "", "resume training from this checkpoint (architecture flags ignored; falls back through the -retain ring if corrupt)")

		chaos     = flag.String("chaos", "", "fault-injection scenario, e.g. 'checkpoint.write@2=cut:64,datasource.read@5=err' (crash-recovery drills)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for probabilistic chaos rules (p0.x)")

		healthOn = flag.Bool("health", false, "enable numerical health guards (NaN/Inf + loss-spike detection); training aborts on a red verdict unless -auto-rollback recovers")
		autoRB   = flag.Int("auto-rollback", 0, "on a red health verdict, roll back to the newest valid checkpoint and replay, up to N times (implies -health; needs -checkpoint-every)")
		rbLR     = flag.Float64("rollback-lr-factor", 1.0, "multiply the learning rate by this per rollback (compounding)")
	)
	flag.Parse()
	fmt.Printf("kernels: %s active (host supports: %v)\n", slide.KernelInfo(), slide.AvailableKernelModes())

	var chaosPlan *faultinject.Plan
	if *chaos != "" {
		plan, err := faultinject.Parse(*chaos, *chaosSeed)
		if err != nil {
			fail(err)
		}
		chaosPlan = plan
		faultinject.Arm(chaosPlan)
		defer faultinject.Disarm()
		fmt.Printf("chaos armed: %s (seed %d)\n", *chaos, *chaosSeed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Assemble the data source (and, where available, an eval split).
	var (
		src  slide.DataSource
		test *slide.Dataset
		err  error
	)
	switch {
	case *streamF != "":
		if src, err = slide.NewFileSource(*streamF, *batch, *window); err != nil {
			fail(err)
		}
		fmt.Printf("streaming %s: %d features, %d labels (shuffle window %d, memory-bounded)\n",
			src.Name(), src.Features(), src.NumLabels(), *window)
	case *corpusF != "":
		var train *slide.Dataset
		var vocab *slide.Vocabulary
		train, vocab, err = slide.OpenCorpus(*corpusF, slide.CorpusOptions{MaxVocab: *vocabN, Window: 2})
		if err != nil {
			fail(err)
		}
		fmt.Printf("corpus vocabulary: %d words (most frequent: %q)\n", vocab.Size(), vocab.Word(0))
		// Hold out the tail of the corpus samples for evaluation.
		test = train // evaluate on training head when the corpus is tiny
		if n := train.Len(); n > 2000 {
			test = train.Head(n / 10)
		}
		if src, err = slide.NewDatasetSource(train, *batch); err != nil {
			fail(err)
		}
		printDataStats(train)
	default:
		var train *slide.Dataset
		if train, test, err = loadData(*trainF, *testF, *ds, *scale, *seed); err != nil {
			fail(err)
		}
		if src, err = slide.NewDatasetSource(train, *batch); err != nil {
			fail(err)
		}
		printDataStats(train)
	}
	if *testF != "" && test == nil {
		if test, err = slide.OpenXMC(*testF); err != nil {
			fail(err)
		}
	}
	fmt.Printf("model: %d -> %d -> %d\n", src.Features(), *hidden, src.NumLabels())

	opts := []slide.Option{
		slide.WithLearningRate(*lr),
		slide.WithSeed(*seed),
	}
	if *workers > 0 {
		opts = append(opts, slide.WithWorkers(*workers))
	}
	if *shards > 0 {
		opts = append(opts, slide.WithShards(*shards))
	}
	switch *mode {
	case "dense":
		opts = append(opts, slide.WithFullSoftmax())
	case "slide":
		if *hash == "simhash" {
			opts = append(opts, slide.WithSimHash(*k, *l))
		} else {
			opts = append(opts, slide.WithDWTA(*k, *l))
		}
	default:
		fail(fmt.Errorf("unknown -mode %q", *mode))
	}
	switch *prec {
	case "fp32":
		opts = append(opts, slide.WithPrecision(slide.FP32))
	case "bf16act":
		opts = append(opts, slide.WithPrecision(slide.BF16Activations))
	case "bf16full":
		opts = append(opts, slide.WithPrecision(slide.BF16Full))
	default:
		fail(fmt.Errorf("unknown -precision %q", *prec))
	}
	if (*ds == "text8" && *trainF == "" && *streamF == "") || *corpusF != "" {
		opts = append(opts, slide.WithLinearHidden())
	}

	var m *slide.Model
	resumed := false
	if *resumeF != "" {
		var used string
		if m, used, err = slide.LoadLastGood(*resumeF, *retain); err != nil {
			fail(err)
		}
		if used != *resumeF {
			// Diagnose the primary so the operator knows what was lost; the
			// reload is cheap because a bad checkpoint fails at its checksum.
			_, perr := slide.LoadFile(*resumeF)
			if sec, off, ok := slide.CorruptSection(perr); ok {
				fmt.Printf("checkpoint %s corrupt (section %q at offset %d); falling back to %s\n",
					*resumeF, sec, off, used)
			} else {
				fmt.Printf("checkpoint %s unusable (%v); falling back to %s\n", *resumeF, perr, used)
			}
		}
		resumed = true
		fmt.Printf("resumed from %s at optimizer step %d\n", used, m.Steps())
	} else if m, err = slide.New(src.Features(), *hidden, src.NumLabels(), opts...); err != nil {
		fail(err)
	}

	// The training session.
	topts := []slide.TrainerOption{
		slide.WithEpochs(*epochs),
		slide.WithMaxSteps(*maxStep),
		slide.WithOnEpoch(func(e slide.EpochEvent) {
			p1 := 0.0
			if test != nil {
				if p1, err = m.Evaluate(test, *evalN, 1); err != nil {
					fail(err)
				}
			}
			fmt.Printf("epoch %2d  time %8.2fs  loss %7.4f  P@1 %.4f  active %6.1f (%.2f%% of outputs)\n",
				e.Epoch+1, e.TrainTime.Seconds(), e.Stats.MeanLoss, p1,
				e.Stats.MeanActive, 100*e.Stats.ActiveFraction(src.NumLabels()))
		}),
	}
	switch {
	case *warmup > 0 && *decayN > 0:
		fail(fmt.Errorf("-warmup and -lr-decay-every are mutually exclusive"))
	case *warmup > 0:
		topts = append(topts, slide.WithLRSchedule(slide.WarmupLR(*lr, *warmup)))
	case *decayN > 0:
		topts = append(topts, slide.WithLRSchedule(slide.StepDecayLR(*lr, *decay, *decayN)))
	}
	if *ckptN > 0 {
		if *saveF == "" {
			fail(fmt.Errorf("-checkpoint-every needs -save"))
		}
		topts = append(topts, slide.WithCheckpoints(*saveF, *ckptN),
			slide.WithCheckpointRetain(*retain),
			slide.WithOnCheckpoint(func(c slide.CheckpointEvent) {
				fmt.Printf("checkpoint written to %s at step %d\n", c.Path, c.Step)
			}))
	}
	if *early > 0 {
		topts = append(topts, slide.WithEarlyStopping(*early, *earlyD))
	}
	if *healthOn || *autoRB > 0 {
		topts = append(topts, slide.WithOnHealth(func(ev slide.HealthEvent) {
			fmt.Printf("health: %s\n", ev)
		}))
	}
	if *autoRB > 0 {
		topts = append(topts, slide.WithAutoRollback(*autoRB, *rbLR),
			slide.WithOnRollback(func(ev slide.RollbackEvent) {
				fmt.Printf("rolled back to %s (step %d, attempt %d/%d, lr scale %g)\n",
					ev.Checkpoint, ev.Step, ev.Attempt, *autoRB, ev.LRScale)
			}))
	}
	if resumed {
		topts = append(topts, slide.WithResume())
	}
	trainer, err := slide.NewTrainer(m, src, topts...)
	if err != nil {
		fail(err)
	}
	report, err := trainer.Run(ctx)
	if chaosPlan != nil {
		if fired := chaosPlan.Fired(); len(fired) > 0 {
			fmt.Printf("chaos: %d fault(s) injected: %v\n", len(fired), fired)
		}
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("training %s: %d steps, %d epochs, %.2fs train time\n",
		report.Reason, report.Steps, report.Epochs, report.TrainTime.Seconds())
	// The checkpoint schedule already wrote a final checkpoint at session
	// end; only the unscheduled (-save alone) path needs an explicit write.
	if *saveF != "" && (*ckptN == 0 || report.Steps == 0) {
		if err := m.SaveFile(*saveF); err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s\n", *saveF)
	}
}

func printDataStats(train *slide.Dataset) {
	st := train.Stats()
	fmt.Printf("dataset %s: %d samples, %d features (%.4f%% dense), %d labels, %.1f labels/sample\n",
		train.Name(), st.Samples, st.Features, st.FeatureSparsity*100, st.Labels, st.AvgLabels)
}

func loadData(trainF, testF, ds string, scale float64, seed uint64) (train, test *slide.Dataset, err error) {
	if trainF != "" {
		if train, err = slide.OpenXMC(trainF); err != nil {
			return nil, nil, err
		}
		if testF != "" {
			if test, err = slide.OpenXMC(testF); err != nil {
				return nil, nil, err
			}
		}
		return train, test, nil
	}
	switch ds {
	case "amazon":
		return slide.AmazonLike(scale, seed)
	case "wiki":
		return slide.WikiLike(scale, seed)
	case "text8":
		return slide.Text8Like(scale, seed)
	default:
		return nil, nil, fmt.Errorf("unknown -dataset %q (amazon|wiki|text8)", ds)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "slide-train: %v\n", err)
	os.Exit(1)
}
