// Command slide-data generates the synthetic workloads in XMC format and
// inspects dataset statistics (the Table 1 columns).
//
// Usage:
//
//	slide-data -dataset amazon -scale 0.01 -out amazon.train.txt -testout amazon.test.txt
//	slide-data -stats file.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		ds      = flag.String("dataset", "amazon", "builtin dataset: amazon|wiki|text8")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's dimensions")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "write the train split as XMC to this path")
		testOut = flag.String("testout", "", "write the test split as XMC to this path")
		stats   = flag.String("stats", "", "print statistics of an existing XMC file and exit")
	)
	flag.Parse()

	if *stats != "" {
		d, err := slide.OpenXMC(*stats)
		if err != nil {
			fail(err)
		}
		printStats(d)
		return
	}

	var train, test *slide.Dataset
	var err error
	switch *ds {
	case "amazon":
		train, test, err = slide.AmazonLike(*scale, *seed)
	case "wiki":
		train, test, err = slide.WikiLike(*scale, *seed)
	case "text8":
		train, test, err = slide.Text8Like(*scale, *seed)
	default:
		err = fmt.Errorf("unknown -dataset %q (amazon|wiki|text8)", *ds)
	}
	if err != nil {
		fail(err)
	}

	fmt.Println("train split:")
	printStats(train)
	fmt.Println("test split:")
	printStats(test)

	if *out != "" {
		if err := writeXMC(train, *out); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *testOut != "" {
		if err := writeXMC(test, *testOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *testOut)
	}
}

func writeXMC(d *slide.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteXMC(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printStats(d *slide.Dataset) {
	s := d.Stats()
	fmt.Printf("  name:             %s\n", s.Name)
	fmt.Printf("  samples:          %d\n", s.Samples)
	fmt.Printf("  feature dim:      %d\n", s.Features)
	fmt.Printf("  feature sparsity: %.4f%% (%.1f nnz/sample)\n", s.FeatureSparsity*100, s.AvgFeatureNNZ)
	fmt.Printf("  label dim:        %d\n", s.Labels)
	fmt.Printf("  labels/sample:    %.2f\n", s.AvgLabels)
	fmt.Printf("  params @hidden=128: %.1fM\n", float64(d.ModelParams(128))/1e6)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "slide-data: %v\n", err)
	os.Exit(1)
}
