// Command slide-bench regenerates the paper's evaluation artifacts: every
// table (1-4) and Figure 6, plus the memory-layout and thread-scaling
// ablations. Measured rows run on this host at -scale of the paper's
// dataset sizes; cross-platform rows come from the roofline cost model.
//
// Usage:
//
//	slide-bench -exp all -scale 0.01 -epochs 2 -outdir results/
//	slide-bench -exp table2
//	slide-bench -exp fig6 -scale 0.02 -epochs 3
//	slide-bench -exp profile                     # phase decomposition
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/slide-cpu/slide/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig6|ablations|sharding|quant|all")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's dataset dimensions")
		epochs  = flag.Int("epochs", 2, "training epochs per measured run")
		workers = flag.Int("workers", 0, "HOGWILD workers (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "random seed")
		outdir  = flag.String("outdir", "", "directory for CSV exports (optional)")
		evalN   = flag.Int("evalsamples", 200, "held-out samples per evaluation")
		shards  = flag.Int("shards", 4, "output-layer shard count for -exp sharding")
		bSteps  = flag.Int("bench-steps", 30, "measured TrainBatch steps per point for -exp sharding")
		jsonOut = flag.String("json", "", "write -exp sharding results as JSON to this path")
	)
	flag.Parse()

	opts := harness.Options{
		Scale:       *scale,
		Epochs:      *epochs,
		Workers:     *workers,
		Seed:        *seed,
		EvalSamples: *evalN,
	}

	experiments := map[string]func(harness.Options) (*harness.Report, error){
		"table1":    harness.Table1,
		"table2":    harness.Table2,
		"table3":    harness.Table3,
		"table4":    harness.Table4,
		"fig6":      harness.Figure6,
		"ablations": harness.Ablations,
		"profile":   harness.Profile,
	}
	order := []string{"table1", "table2", "table3", "table4", "fig6", "ablations", "profile"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			if _, ok := experiments[name]; !ok && name != "sharding" && name != "quant" {
				fmt.Fprintf(os.Stderr, "slide-bench: unknown experiment %q (valid: %s, sharding, quant, all)\n",
					name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for _, name := range selected {
		if name == "sharding" {
			// Scaling-curve mode: not a harness.Report experiment — it
			// measures wall-clock per TrainBatch across worker counts and
			// proves bit-identity along the way.
			if err := runSharding(opts, *shards, *bSteps, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "slide-bench: sharding: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		if name == "quant" {
			// Quantized-serving mode: packed snapshot bytes, p@1 cost, and
			// exact-predict latency of int8/int4 vs the f32 baseline.
			if err := runQuant(opts, *bSteps, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "slide-bench: quant: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("running %s (scale %g, %d epochs)...\n\n", name, *scale, *epochs)
		rep, err := experiments[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slide-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := rep.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "slide-bench: render: %v\n", err)
			os.Exit(1)
		}
		if *outdir != "" {
			if err := export(rep, *outdir); err != nil {
				fmt.Fprintf(os.Stderr, "slide-bench: export: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// export writes every table and tracker of the report as CSV files.
func export(rep *harness.Report, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", rep.Name, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	for _, tr := range rep.Trackers {
		slug := strings.NewReplacer(" ", "_", "/", "-").Replace(tr.System + "_" + tr.Dataset)
		path := filepath.Join(dir, fmt.Sprintf("%s_curve_%s.csv", rep.Name, slug))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tr.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
