package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/slide-cpu/slide/internal/harness"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/network"
)

// quantResult is the machine-readable quantized-serving report (the source
// of BENCH_baseline.json's "quant" section). Bytes come from the fixed
// 30k-output/128-hidden regime — the size gate regime — so the compression
// ratio is comparable across hosts and scales; accuracy and latency come
// from a trained run on the Amazon-670K-like workload at opts.Scale.
type quantResult struct {
	Command string `json:"command"`
	Steps   int    `json:"steps"`
	// Output-view bytes on the 30k x 128 regime, per precision.
	F32Bytes  int64   `json:"f32_bytes"`
	Int8Bytes int64   `json:"int8_bytes"`
	Int4Bytes int64   `json:"int4_bytes"`
	Int8Ratio float64 `json:"int8_ratio"`
	Int4Ratio float64 `json:"int4_ratio"`
	// Exact-predict latency per query, per precision.
	NsPerQuery map[string]float64 `json:"ns_per_query"`
	// Mean precision@1 over the held-out slice, per precision, and the
	// quantization deltas in points (positive = quantized is worse).
	P1          map[string]float64 `json:"p1"`
	P1DeltaInt8 float64            `json:"p1_delta_int8_points"`
	P1DeltaInt4 float64            `json:"p1_delta_int4_points"`
}

// quantSizeRegime measures serialized output-view bytes at the gate shape:
// 30k outputs x 128 hidden. No training needed — sizes are a pure function
// of the shape — so the model is snapshotted straight from init.
func quantSizeRegime(seed uint64) (f32b, i8b, i4b int64, err error) {
	cfg := network.Config{
		InputDim: 64, HiddenDim: 128, OutputDim: 30000,
		NoSampling: true, LR: 0.01, Workers: 1, Seed: seed,
	}
	net, err := network.New(&cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	p := net.Snapshot()
	q8, err := p.Quantize(8)
	if err != nil {
		return 0, 0, 0, err
	}
	q4, err := p.Quantize(4)
	if err != nil {
		return 0, 0, 0, err
	}
	return p.PackedBytes(), q8.PackedBytes(), q4.PackedBytes(), nil
}

// runQuant measures the quantized serving tier against the f32 baseline:
// packed snapshot bytes on the 30k-output regime, exact-predict latency,
// and the precision@1 cost of int8/int4 on a trained Amazon-670K-like
// model. The acceptance gates (int8 <= 30% of f32 bytes, p@1 delta within
// half a point) live in the CI quant lane; this command produces the
// numbers they check.
func runQuant(opts harness.Options, steps int, jsonPath string) error {
	res := quantResult{
		Command:    fmt.Sprintf("slide-bench -exp quant -scale %g -bench-steps %d", opts.Scale, steps),
		Steps:      steps,
		NsPerQuery: map[string]float64{},
		P1:         map[string]float64{},
	}
	var err error
	if res.F32Bytes, res.Int8Bytes, res.Int4Bytes, err = quantSizeRegime(opts.Seed); err != nil {
		return err
	}
	res.Int8Ratio = float64(res.Int8Bytes) / float64(res.F32Bytes)
	res.Int4Ratio = float64(res.Int4Bytes) / float64(res.F32Bytes)

	ws, err := harness.Workloads(opts)
	if err != nil {
		return err
	}
	w := ws[0] // Amazon-670K-like, the paper's headline workload

	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	net, err := network.New(&cfg)
	if err != nil {
		return err
	}
	next, err := shardingFeeder(w, opts)
	if err != nil {
		return err
	}
	for s := 0; s < steps; s++ {
		net.TrainBatch(next())
	}
	p := net.Snapshot()
	q8, err := p.Quantize(8)
	if err != nil {
		return err
	}
	q4, err := p.Quantize(4)
	if err != nil {
		return err
	}

	evalN := min(opts.EvalSamples, w.Test.Len())
	if evalN <= 0 {
		return fmt.Errorf("quant: empty held-out slice")
	}
	preds := []struct {
		name string
		p    *network.Predictor
	}{{"f32", p}, {"int8", q8}, {"int4", q4}}
	for _, pr := range preds {
		var sum float64
		for i := 0; i < evalN; i++ {
			sum += pr.p.PrecisionAtK(w.Test.Sample(i), w.Test.LabelsOf(i), 1)
		}
		res.P1[pr.name] = sum / float64(evalN)

		// Latency: exact Predict (ForwardAll-dominated, the serving path)
		// over the same slice, after one warm pass.
		const warmup = 3
		queries := min(evalN, 64)
		for i := 0; i < warmup; i++ {
			pr.p.Predict(w.Test.Sample(i%queries), 5)
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			pr.p.Predict(w.Test.Sample(i), 5)
		}
		res.NsPerQuery[pr.name] = float64(time.Since(start).Nanoseconds()) / float64(queries)
	}
	res.P1DeltaInt8 = (res.P1["f32"] - res.P1["int8"]) * 100
	res.P1DeltaInt4 = (res.P1["f32"] - res.P1["int4"]) * 100

	fmt.Printf("quantized serving tier, %s (scale %g, %d train steps, %d eval samples)\n\n",
		w.Name, opts.Scale, steps, evalN)
	fmt.Printf("  output-view bytes (30000x128 regime):\n")
	fmt.Printf("    f32  %12d\n", res.F32Bytes)
	fmt.Printf("    int8 %12d  (%.1f%% of f32)\n", res.Int8Bytes, res.Int8Ratio*100)
	fmt.Printf("    int4 %12d  (%.1f%% of f32)\n\n", res.Int4Bytes, res.Int4Ratio*100)
	for _, name := range []string{"f32", "int8", "int4"} {
		fmt.Printf("  %-5s p@1 %.4f   %12.0f ns/query\n", name, res.P1[name], res.NsPerQuery[name])
	}
	fmt.Printf("\n  p@1 delta vs f32: int8 %+.2f points, int4 %+.2f points\n",
		res.P1DeltaInt8, res.P1DeltaInt4)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	return nil
}
