package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/slide-cpu/slide/internal/harness"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// shardingResult is the machine-readable scaling curve the CI multicore
// lane gates on (and the source of BENCH_baseline.json's "sharding"
// section).
type shardingResult struct {
	Command      string             `json:"command"`
	HostCores    int                `json:"host_cores"`
	Shards       int                `json:"shards"`
	Steps        int                `json:"steps"`
	NsPerStep    map[string]float64 `json:"ns_per_step"`
	SpeedupW4    float64            `json:"speedup_w4"`
	BitIdentical bool               `json:"bit_identical"`
}

// runSharding measures the sharded trainer's worker-scaling curve: the same
// model (fixed shard count — a model property) trained at W in {1, 2, 4},
// reporting ns per TrainBatch step and the W=4 speedup. Because the sharded
// engine is deterministic by construction, the run also saves a checkpoint
// per worker count and verifies all three are bit-identical — the scaling
// number is only meaningful if the workers changed nothing but wall-clock.
func runSharding(opts harness.Options, shards, steps int, jsonPath string) error {
	ws, err := harness.Workloads(opts)
	if err != nil {
		return err
	}
	w := ws[0] // Amazon-670K-like, the paper's headline workload

	res := shardingResult{
		Command:   fmt.Sprintf("slide-bench -exp sharding -scale %g -shards %d -bench-steps %d", opts.Scale, shards, steps),
		HostCores: runtime.NumCPU(),
		Shards:    shards,
		Steps:     steps,
		NsPerStep: map[string]float64{},
	}
	var refCkpt []byte
	res.BitIdentical = true
	const warmup = 3
	for _, workers := range []int{1, 2, 4} {
		cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
		cfg.Workers = workers
		cfg.Shards = shards
		net, err := network.New(&cfg)
		if err != nil {
			return err
		}
		next, err := shardingFeeder(w, opts)
		if err != nil {
			return err
		}
		for s := 0; s < warmup; s++ {
			net.TrainBatch(next())
		}
		start := time.Now()
		for s := 0; s < steps; s++ {
			net.TrainBatch(next())
		}
		elapsed := time.Since(start)
		res.NsPerStep[fmt.Sprintf("W%d", workers)] = float64(elapsed.Nanoseconds()) / float64(steps)

		var ckpt bytes.Buffer
		if err := net.Save(&ckpt); err != nil {
			return err
		}
		if refCkpt == nil {
			refCkpt = ckpt.Bytes()
		} else if !bytes.Equal(refCkpt, ckpt.Bytes()) {
			res.BitIdentical = false
		}
	}
	if w1, w4 := res.NsPerStep["W1"], res.NsPerStep["W4"]; w4 > 0 {
		res.SpeedupW4 = w1 / w4
	}

	fmt.Printf("sharded scaling, %s (scale %g, shards %d, %d steps/point, %d host cores)\n\n",
		w.Name, opts.Scale, shards, steps, res.HostCores)
	for _, workers := range []int{1, 2, 4} {
		key := fmt.Sprintf("W%d", workers)
		fmt.Printf("  %-3s %12.0f ns/step  (%.2fx)\n", key, res.NsPerStep[key],
			res.NsPerStep["W1"]/res.NsPerStep[key])
	}
	fmt.Printf("\n  checkpoints bit-identical across worker counts: %v\n", res.BitIdentical)

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", jsonPath)
	}
	return nil
}

// shardingFeeder yields an endless deterministic batch stream (iterator
// reseeded by absolute step when the scaled dataset runs dry), so every
// worker count consumes identical data.
func shardingFeeder(w *harness.Workload, opts harness.Options) (func() sparse.Batch, error) {
	it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
	step := 0
	return func() sparse.Batch {
		b, ok := it.Next()
		if !ok {
			it = w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed+uint64(step))
			b, _ = it.Next()
		}
		step++
		return b
	}, nil
}
