// Command slide-replica is a serving replica that follows a trainer's
// snapshot replication stream (slide-serve -replicate). It bootstraps
// from a full base snapshot, long-polls the sparse delta stream — each
// delta moves only the rows SLIDE's sampled training touched since the
// previous version — applies deltas copy-on-write, and hot-swaps versions
// into the same micro-batched serving pipeline slide-serve uses, so a
// replica's responses are byte-identical to the trainer's at the same
// version. Any gap, CRC failure, or config mismatch on the stream never
// tears the served model: the replica keeps answering on its current
// version and re-syncs from a fresh base automatically.
//
//	slide-replica -trainer http://trainer:8080 -addr :8081
//
// Endpoints are slide-serve's (POST /predict, /predict/batch, GET
// /healthz{,/live,/ready}, /stats) with replication extras: /healthz/ready
// answers 503 when the stream is disconnected or the replica has fallen
// more than -max-version-lag versions behind the trainer, and /stats
// additionally reports replica_version, trainer_version, deltas_applied,
// resyncs, corrupt, quarantined (deltas/bases refused for non-finite
// weights), and resync_backoff_ms (the current capped-exponential re-sync
// pause; -seed makes its jitter deterministic).
//
// On SIGTERM/SIGINT the replica drains gracefully: readiness flips to 503
// so load balancers steer away, in-flight batches flush, then the process
// exits 0. A second signal kills it immediately.
//
// The -chaos flag arms the same deterministic fault injector the trainer
// binaries use — e.g. 'replicate.recv@3=err' makes the third stream fetch
// fail — for self-healing drills.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/replicate"
	"github.com/slide-cpu/slide/internal/serving"
	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		trainerURL = flag.String("trainer", "", "trainer base URL to replicate from (required), e.g. http://host:8080")
		addr       = flag.String("addr", ":8081", "listen address")
		k          = flag.Int("k", 5, "default top-k when a request omits k")
		noBatch    = flag.Bool("no-batch", false, "bypass the micro-batcher: one forward pass per request")
		maxBatch   = flag.Int("max-batch", 32, "micro-batcher: flush when this many requests coalesce")
		maxWait    = flag.Duration("max-wait", 2*time.Millisecond, "micro-batcher: flush a partial batch after this wait")
		queueCap   = flag.Int("queue-cap", 0, "admission queue bound; overflow sheds with 429 (0 = 8×max-batch)")

		maxLag      = flag.Int64("max-version-lag", 0, "versions behind the trainer before /healthz/ready reports unready (0 = lag never gates readiness)")
		pollTimeout = flag.Duration("poll-timeout", 30*time.Second, "delta long-poll budget per round trip")
		syncWait    = flag.Duration("sync-timeout", 2*time.Minute, "how long to wait for the initial base sync before giving up")
		seed        = flag.Uint64("seed", 1, "seed for the deterministic re-sync backoff jitter (desynchronizes a fleet reproducibly)")

		defaultDeadline = flag.Duration("default-deadline", 0, "service deadline for requests without deadline_ms; misses answer 504 (0 = none)")
		chaos           = flag.String("chaos", "", "fault-injection scenario, e.g. 'replicate.recv@3=err' (self-healing drills)")
		chaosSeed       = flag.Uint64("chaos-seed", 1, "seed for probabilistic chaos rules (p0.x)")
		quantize        = flag.Int("quantize", 0, "require an int-quantized stream at this width (8 or 4); refuses f32 bases so a replica sized for packed snapshots never inflates (0 = accept whatever the trainer streams)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("slide-replica: ")
	if *trainerURL == "" {
		log.Fatal(errors.New("-trainer is required"))
	}
	if *chaos != "" {
		plan, err := faultinject.Parse(*chaos, *chaosSeed)
		if err != nil {
			log.Fatal(err)
		}
		faultinject.Arm(plan)
		log.Printf("chaos armed: %s (seed %d)", *chaos, *chaosSeed)
	}
	log.Printf("kernels: %s active (host supports: %v)", slide.KernelInfo(), slide.AvailableKernelModes())

	cfg := serving.ServerConfig{
		DefaultK: *k,
		Direct:   *noBatch,
		Batch: serving.Config{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			QueueCap: *queueCap,
		},
		DefaultDeadline: *defaultDeadline,
	}
	if *quantize != 0 && *quantize != 8 && *quantize != 4 {
		log.Fatalf("-quantize must be 0, 8, or 4 (got %d)", *quantize)
	}
	if err := run(*addr, *trainerURL, cfg, *maxLag, *pollTimeout, *syncWait, *seed, *quantize); err != nil {
		log.Fatal(err)
	}
}

func run(addr, trainerURL string, cfg serving.ServerConfig, maxLag int64, pollTimeout, syncWait time.Duration, seed uint64, quantize int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &replicate.Client{
		BaseURL:          trainerURL,
		PollTimeout:      pollTimeout,
		JitterSeed:       seed,
		RequireQuantized: quantize,
		// A long-poll must be able to run its course before the transport
		// gives up.
		HTTP: &http.Client{Timeout: pollTimeout + 15*time.Second},
	}

	// Graceful drain: flipped on the first SIGTERM/SIGINT so readiness
	// reports 503 while in-flight batches flush.
	var draining atomic.Bool

	// The serving pipeline needs an initial predictor, which only the first
	// base sync can provide; until then swaps park under the mutex.
	var (
		mu    sync.Mutex
		srv   *serving.Server
		first = make(chan struct{})
		once  sync.Once
	)
	client.OnSwap = func(p *network.Predictor, version uint64) {
		sp := serving.Predictor(replicate.NewServed(p, version))
		mu.Lock()
		defer mu.Unlock()
		if srv == nil {
			srv = serving.NewServer(sp, withReplicaHooks(cfg, client, maxLag, &draining))
			once.Do(func() { close(first) })
			return
		}
		srv.Publish(sp)
	}

	runErr := make(chan error, 1)
	go func() { runErr <- client.Run(ctx) }()

	log.Printf("syncing base snapshot from %s", trainerURL)
	select {
	case <-first:
	case <-time.After(syncWait):
		stop()
		<-runErr
		return fmt.Errorf("no base snapshot from %s within %s", trainerURL, syncWait)
	case <-ctx.Done():
		return <-runErr
	}
	mu.Lock()
	s := srv
	mu.Unlock()
	defer s.Close()
	log.Printf("serving v%d (trainer step %d)", client.Stats.Version.Load(), client.Stats.TrainerVersion.Load())

	httpSrv := &http.Server{Addr: addr, Handler: s.Mux()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s, replicating from %s", addr, trainerURL)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM is immediate
	draining.Store(true)
	log.Printf("draining: admission stopped, flushing in-flight batches (applied %d deltas, %d resyncs)",
		client.Stats.DeltasApplied.Load(), client.Stats.Resyncs.Load())
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx) // close listeners, wait for handlers
	s.Close()                        // drain the batcher queue, join workers
	log.Printf("drain complete")
	return err
}

// withReplicaHooks extends the serving config with replication-aware
// readiness and stats.
func withReplicaHooks(cfg serving.ServerConfig, client *replicate.Client, maxLag int64, draining *atomic.Bool) serving.ServerConfig {
	cfg.ReadyReasons = func() []string {
		var reasons []string
		if draining.Load() {
			reasons = append(reasons, "draining: shutdown in progress")
		}
		if client.Stats.Connected.Load() == 0 {
			reasons = append(reasons, "replication stream disconnected")
		}
		if maxLag > 0 {
			tv := int64(client.Stats.TrainerVersion.Load())
			rv := int64(client.Stats.Version.Load())
			if tv-rv > maxLag {
				reasons = append(reasons, fmt.Sprintf(
					"version skew: replica v%d is %d behind trainer v%d (limit %d)",
					rv, tv-rv, tv, maxLag))
			}
		}
		return reasons
	}
	cfg.StatsExtra = func() map[string]any {
		return map[string]any{
			"replica_version":   client.Stats.Version.Load(),
			"trainer_version":   client.Stats.TrainerVersion.Load(),
			"deltas_applied":    client.Stats.DeltasApplied.Load(),
			"resyncs":           client.Stats.Resyncs.Load(),
			"corrupt":           client.Stats.Corrupt.Load(),
			"quarantined":       client.Stats.Quarantined.Load(),
			"resync_backoff_ms": client.Stats.BackoffMS.Load(),
		}
	}
	return cfg
}
