// Command slide-loadgen drives deterministic closed-loop load against a
// slide-serve instance: a fixed seed and fixed request set (drawn from the
// same synthetic workload generator the demo server uses), a fixed number
// of closed-loop clients each with one request in flight, and a report of
// throughput, latency quantiles, and error counts. Because the request set
// is deterministic, two runs against two server configurations (e.g.
// micro-batched vs -no-batch) are exercised identically and their responses
// can be compared bit for bit.
//
// Typical A/B:
//
//	slide-serve -demo -demo-scale 1e-6 -seed 42 -addr :8080 &
//	slide-loadgen -addr http://127.0.0.1:8080 -scale 1e-6 -seed 42 -clients 64 -n 5000
//
// The -min-mean-batch flag turns the run into a smoke check: after the
// load completes, the server's /stats endpoint must report at least that
// mean coalesced batch size (and zero request errors), or the command
// exits non-zero — CI uses this to prove the micro-batcher actually
// batches under concurrent load.
//
// Connection failures (refused/reset, e.g. a replica restarting mid-run)
// are retried for up to ~10s and reported in a separate reconnects bucket
// instead of failing the run — rolling restarts are not outages.
//
// Cluster mode (-targets host1:8081,host2:8082) spreads the same request
// set round-robin across a fleet of replicas (slide-replica) instead of a
// single server: the report gains per-target sections, the snapshot
// versions observed in responses, and the cluster-wide version skew; each
// target's /stats replication counters (replica_version, trainer_version,
// deltas_applied, resyncs) are echoed when present. The -max-skew flag
// fails the run when the observed version spread exceeds it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/slide-cpu/slide/internal/serving"
)

func main() {
	var (
		addr         = flag.String("addr", "http://127.0.0.1:8080", "base URL of the slide-serve instance")
		clients      = flag.Int("clients", 64, "closed-loop clients (one request in flight each)")
		n            = flag.Int("n", 1000, "total requests")
		k            = flag.Int("k", 5, "top-k per request")
		mixedK       = flag.Bool("mixed-k", false, "vary k per request (1..k) to exercise per-request k in shared batches")
		seed         = flag.Uint64("seed", 42, "request-set seed (match the server's -seed)")
		scale        = flag.Float64("scale", 1e-6, "request-set dataset scale (match the server's -demo-scale)")
		timeout      = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
		deadline     = flag.Duration("deadline", 0, "per-request service deadline sent as deadline_ms; server 504s count as deadline sheds, not errors (0 = none)")
		minMeanBatch = flag.Float64("min-mean-batch", 0, "fail unless server /stats mean_batch >= this after the run (0 = skip)")
		jsonOut      = flag.Bool("json", false, "emit the report as JSON")
		targets      = flag.String("targets", "", "comma-separated replica base URLs for cluster mode (overrides -addr)")
		maxSkew      = flag.Uint64("max-skew", 0, "cluster mode: fail when the observed version spread exceeds this (0 = report only)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("slide-loadgen: ")

	if *targets != "" {
		urls := strings.Split(*targets, ",")
		for i := range urls {
			urls[i] = strings.TrimSpace(urls[i])
			if !strings.Contains(urls[i], "://") {
				urls[i] = "http://" + urls[i]
			}
		}
		if err := runCluster(urls, *clients, *n, *k, *mixedK, *seed, *scale, *timeout, *deadline, *maxSkew, *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*addr, *clients, *n, *k, *mixedK, *seed, *scale, *timeout, *deadline, *minMeanBatch, *jsonOut); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, clients, n, k int, mixedK bool, seed uint64, scale float64, timeout, deadline time.Duration, minMeanBatch float64, jsonOut bool) error {
	entries, err := serving.BuildLoad(serving.LoadSpec{
		Scale: scale, Seed: seed, Requests: n, K: k, MixedK: mixedK,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	report := serving.RunLoadOpts(ctx, addr, nil, entries, clients,
		serving.LoadOptions{Deadline: deadline})

	meanBatch := -1.0
	if minMeanBatch > 0 {
		mb, err := fetchMeanBatch(ctx, addr)
		if err != nil {
			return fmt.Errorf("fetching /stats: %w", err)
		}
		meanBatch = mb
	}

	if jsonOut {
		out := map[string]any{
			"requests":     report.Requests,
			"errors":       report.Errors,
			"retried_429":  report.Retried429,
			"reconnects":   report.Reconnects,
			"degraded":     report.Degraded,
			"deadline_504": report.Deadline504,
			"duration_ms":  float64(report.Duration.Microseconds()) / 1000,
			"qps":          report.QPS,
			"p50_ms":       float64(report.P50.Microseconds()) / 1000,
			"p99_ms":       float64(report.P99.Microseconds()) / 1000,
		}
		if meanBatch >= 0 {
			out["server_mean_batch"] = meanBatch
		}
		if report.FirstError != "" {
			out["first_error"] = report.FirstError
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		log.Printf("%d requests, %d clients: %.0f qps, p50 %v, p99 %v, %d errors, %d retried (429), %d reconnects, %d degraded, %d deadline-shed (504)",
			report.Requests, clients, report.QPS, report.P50, report.P99, report.Errors,
			report.Retried429, report.Reconnects, report.Degraded, report.Deadline504)
		if meanBatch >= 0 {
			log.Printf("server mean batch size: %.2f", meanBatch)
		}
	}

	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %s)", report.Errors, report.Requests, report.FirstError)
	}
	if minMeanBatch > 0 && meanBatch < minMeanBatch {
		return fmt.Errorf("server mean batch size %.2f below required %.2f — micro-batching is not coalescing", meanBatch, minMeanBatch)
	}
	return nil
}

// runCluster drives the request set round-robin across the replica fleet
// and reports per-target outcomes plus the observed version skew.
func runCluster(targets []string, clients, n, k int, mixedK bool, seed uint64, scale float64, timeout, deadline time.Duration, maxSkew uint64, jsonOut bool) error {
	entries, err := serving.BuildLoad(serving.LoadSpec{
		Scale: scale, Seed: seed, Requests: n, K: k, MixedK: mixedK,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	report := serving.RunLoadCluster(ctx, targets, nil, entries, clients,
		serving.LoadOptions{Deadline: deadline})

	targetsOut := make([]map[string]any, len(report.Targets))
	for i, tr := range report.Targets {
		t := map[string]any{
			"url":         tr.URL,
			"requests":    tr.Report.Requests,
			"errors":      tr.Report.Errors,
			"degraded":    tr.Report.Degraded,
			"p50_ms":      float64(tr.Report.P50.Microseconds()) / 1000,
			"p99_ms":      float64(tr.Report.P99.Microseconds()) / 1000,
			"min_version": tr.Report.MinVersion,
			"max_version": tr.Report.MaxVersion,
		}
		if repl, err := fetchReplicaStats(ctx, tr.URL); err == nil && repl != nil {
			t["replica_stats"] = repl
		}
		targetsOut[i] = t
	}

	if jsonOut {
		out := map[string]any{
			"targets":      targetsOut,
			"requests":     report.Requests,
			"errors":       report.Errors,
			"retried_429":  report.Retried429,
			"reconnects":   report.Reconnects,
			"degraded":     report.Degraded,
			"deadline_504": report.Deadline504,
			"duration_ms":  float64(report.Duration.Microseconds()) / 1000,
			"qps":          report.QPS,
			"min_version":  report.MinVersion,
			"max_version":  report.MaxVersion,
			"version_skew": report.Skew(),
		}
		if report.FirstError != "" {
			out["first_error"] = report.FirstError
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		log.Printf("cluster of %d: %d requests, %.0f qps, %d errors, %d degraded, versions [%d, %d] (skew %d)",
			len(targets), report.Requests, report.QPS, report.Errors, report.Degraded,
			report.MinVersion, report.MaxVersion, report.Skew())
		for _, t := range targetsOut {
			line := fmt.Sprintf("  %s: %d req, %d err, versions [%v, %v]",
				t["url"], t["requests"], t["errors"], t["min_version"], t["max_version"])
			if repl, ok := t["replica_stats"].(map[string]any); ok {
				line += fmt.Sprintf(", replica v%v of trainer v%v (%v deltas, %v resyncs)",
					repl["replica_version"], repl["trainer_version"],
					repl["deltas_applied"], repl["resyncs"])
			}
			log.Print(line)
		}
	}

	if report.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed (first: %s)", report.Errors, report.Requests, report.FirstError)
	}
	if maxSkew > 0 && report.Skew() > maxSkew {
		return fmt.Errorf("version skew %d exceeds -max-skew %d", report.Skew(), maxSkew)
	}
	return nil
}

// fetchReplicaStats pulls the replication counters from a target's /stats,
// returning nil when the target is not a replica (no replica_version key).
func fetchReplicaStats(ctx context.Context, addr string) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats returned %d", resp.StatusCode)
	}
	var all map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		return nil, err
	}
	if _, ok := all["replica_version"]; !ok {
		return nil, nil
	}
	out := map[string]any{}
	for _, key := range []string{"replica_version", "trainer_version", "deltas_applied", "resyncs", "corrupt"} {
		if v, ok := all[key]; ok {
			out[key] = v
		}
	}
	return out, nil
}

// fetchMeanBatch reads mean_batch from the server's /stats endpoint.
func fetchMeanBatch(ctx context.Context, addr string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/stats returned %d", resp.StatusCode)
	}
	var stats struct {
		MeanBatch float64 `json:"mean_batch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return 0, err
	}
	return stats.MeanBatch, nil
}
