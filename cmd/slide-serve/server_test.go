package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/slide-cpu/slide/slide"
)

// testPredictor trains a tiny model through the public API and snapshots it.
func testPredictor(t *testing.T, opts ...slide.Option) (*slide.Predictor, *slide.Dataset) {
	t.Helper()
	train, test, err := slide.AmazonLike(1e-9, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := []slide.Option{
		slide.WithLearningRate(0.01),
		slide.WithWorkers(1),
		slide.WithSeed(9),
	}
	m, err := slide.New(train.Features(), 16, train.NumLabels(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), test
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServePredictRoundTrip(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv := newServer(p, 10, 5)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	s := test.Sample(0)
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Labels) != 3 || pr.Sampled {
		t.Errorf("response %+v", pr)
	}
	// Server output matches direct Predictor output exactly.
	want := p.Predict(s.Indices, s.Values, 3)
	for i := range want {
		if pr.Labels[i] != want[i] {
			t.Errorf("served %v, predictor %v", pr.Labels, want)
		}
	}

	// Omitted values default to 1.0 per index; omitted k uses the default.
	resp, body = postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Labels) != 5 {
		t.Errorf("default-k response has %d labels, want 5", len(pr.Labels))
	}
}

func TestServeSampledAndFallback(t *testing.T) {
	// On an LSH model, sampled requests are served sampled.
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv := newServer(p, 10, 5)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	s := test.Sample(0)
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: 2, Sampled: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Sampled {
		t.Error("LSH model did not serve a sampled request sampled")
	}

	// On a dense model, a sampled request falls back to the exact path
	// instead of erroring (the documented ErrNoSampling fallback).
	dense, _ := testPredictor(t, slide.WithFullSoftmax())
	srv2 := newServer(dense, 10, 5)
	ts2 := httptest.NewServer(srv2.mux())
	defer ts2.Close()

	resp, body = postJSON(t, ts2, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: 2, Sampled: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Sampled {
		t.Error("dense model claimed sampled retrieval")
	}
	want := dense.Predict(s.Indices, s.Values, 2)
	if len(pr.Labels) != len(want) {
		t.Fatalf("fallback labels %v, want %v", pr.Labels, want)
	}
	for i := range want {
		if pr.Labels[i] != want[i] {
			t.Errorf("fallback labels %v, want exact %v", pr.Labels, want)
		}
	}
}

func TestServePredictBatch(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv := newServer(p, 10, 5)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	var reqs []predictRequest
	for i := 0; i < 4; i++ {
		s := test.Sample(i % test.Len())
		reqs = append(reqs, predictRequest{Indices: s.Indices, Values: s.Values})
	}
	resp, body := postJSON(t, ts, "/predict/batch", batchRequest{Samples: reqs, K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Labels) != 4 {
		t.Fatalf("batch returned %d results", len(br.Labels))
	}
	for i, r := range reqs {
		want := p.Predict(r.Indices, r.Values, 2)
		for j := range want {
			if br.Labels[i][j] != want[j] {
				t.Errorf("batch[%d] = %v, want %v", i, br.Labels[i], want)
			}
		}
	}
}

func TestServeBatchHonorsPerSampleOptions(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv := newServer(p, 10, 5)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	s0, s1 := test.Sample(0), test.Sample(1)
	// Mixed batch: per-sample k and a per-sample sampled flag, no top-level
	// overrides — both must be honored (served per sample, not fused).
	resp, body := postJSON(t, ts, "/predict/batch", batchRequest{Samples: []predictRequest{
		{Indices: s0.Indices, Values: s0.Values, K: 1},
		{Indices: s1.Indices, Values: s1.Values, K: 4, Sampled: true},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Labels) != 2 || len(br.Labels[0]) != 1 {
		t.Errorf("per-sample k dropped: %v", br.Labels)
	}
	if br.Sampled {
		t.Error("mixed batch claimed fully sampled service")
	}
	if want := p.Predict(s0.Indices, s0.Values, 1); br.Labels[0][0] != want[0] {
		t.Errorf("sample 0: %v, want %v", br.Labels[0], want)
	}
	if got, _ := p.PredictSampled(s1.Indices, s1.Values, 4); len(br.Labels[1]) != len(got) {
		t.Errorf("sample 1 sampled result has %d labels, want %d", len(br.Labels[1]), len(got))
	}

	// Top-level sampled on an LSH model: response reports sampled=true.
	resp, body = postJSON(t, ts, "/predict/batch", batchRequest{
		Samples: []predictRequest{{Indices: s0.Indices, Values: s0.Values}},
		K:       2, Sampled: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if !br.Sampled {
		t.Error("all-sampled batch reported sampled=false")
	}
}

func TestServeErrorsAndHealth(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv := newServer(p, 10, 5)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()

	// Malformed JSON.
	resp, err := ts.Client().Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// Mismatched lengths.
	r, body := postJSON(t, ts, "/predict", predictRequest{Indices: []int32{1, 2}, Values: []float32{1}})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched lengths: status %d, body %s", r.StatusCode, body)
	}

	// Empty indices.
	r, _ = postJSON(t, ts, "/predict", predictRequest{})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty indices: status %d", r.StatusCode)
	}

	// Out-of-range and negative feature indices must 400, not panic the
	// handler deep in the forward pass.
	r, body = postJSON(t, ts, "/predict", predictRequest{Indices: []int32{99999999}, Values: []float32{1}})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range index: status %d, body %s", r.StatusCode, body)
	}
	r, _ = postJSON(t, ts, "/predict", predictRequest{Indices: []int32{-1}, Values: []float32{1}})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("negative index: status %d", r.StatusCode)
	}
	r, _ = postJSON(t, ts, "/predict/batch", batchRequest{Samples: []predictRequest{
		{Indices: []int32{1}}, {Indices: []int32{99999999}},
	}})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range batch index: status %d", r.StatusCode)
	}

	// Empty batch.
	r, _ = postJSON(t, ts, "/predict/batch", batchRequest{})
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", r.StatusCode)
	}

	// Health endpoint reflects the snapshot.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || int(health["labels"].(float64)) != test.NumLabels() {
		t.Errorf("health = %v", health)
	}

	// Snapshot swap: requests keep working, steps advance.
	srv.swap(p, 99)
	if got := srv.snapshotSteps.Load(); got != 99 {
		t.Errorf("steps after swap = %d", got)
	}
}
