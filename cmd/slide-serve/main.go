// Command slide-serve is an HTTP JSON prediction server over a SLIDE model
// — the heavy-traffic deployment scenario the snapshot API exists for.
// Concurrent /predict requests are coalesced by a dynamic micro-batcher
// into fused batch forwards on an immutable Predictor snapshot (per-request
// k is honored inside the shared batch), a bounded admission queue sheds
// overload with 429 + Retry-After, and a background trainer (demo mode) can
// keep improving the model, hot-swapping versioned snapshots without
// stalling in-flight batches.
//
// Serve a trained checkpoint:
//
//	slide-serve -model model.slide -addr :8080
//
// Or run the self-contained demo (synthetic Amazon-670K-like workload,
// online training with periodic snapshot refresh):
//
//	slide-serve -demo -demo-scale 1e-6 -refresh 20
//
// Endpoints:
//
//	POST /predict        {"indices":[...],"values":[...],"k":5,"sampled":false}
//	POST /predict/batch  {"samples":[{"indices":[...]},...],"k":5}
//	GET  /healthz
//	GET  /stats          queue depth, batch-size histogram, p50/p99, snapshot version
//
// The -no-batch flag serves every request with its own forward pass (the
// pre-batching behavior) — the A/B baseline for cmd/slide-loadgen.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/slide-cpu/slide/internal/serving"
	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "checkpoint to serve (written by Model.SaveFile)")
		k         = flag.Int("k", 5, "default top-k when a request omits k")
		demo      = flag.Bool("demo", false, "train a synthetic model instead of loading a checkpoint")
		demoScale = flag.Float64("demo-scale", 1e-6, "demo workload scale (fraction of Amazon-670K dims)")
		refresh   = flag.Int("refresh", 20, "demo: batches between snapshot refreshes (0 = freeze after warmup)")
		seed      = flag.Uint64("seed", 42, "demo RNG seed")
		noBatch   = flag.Bool("no-batch", false, "bypass the micro-batcher: one forward pass per request (A/B baseline)")
		maxBatch  = flag.Int("max-batch", 32, "micro-batcher: flush when this many requests coalesce")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "micro-batcher: flush a partial batch after this wait")
		queueCap  = flag.Int("queue-cap", 0, "admission queue bound; overflow sheds with 429 (0 = 8×max-batch)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("slide-serve: ")
	log.Printf("kernels: %s active (host supports: %v)", slide.KernelInfo(), slide.AvailableKernelModes())

	cfg := serverConfig{
		defaultK: *k,
		direct:   *noBatch,
		batch: serving.Config{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			QueueCap: *queueCap,
		},
	}
	if err := run(*addr, *modelPath, cfg, *demo, *demoScale, *refresh, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr, modelPath string, cfg serverConfig, demo bool, demoScale float64, refresh int, seed uint64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		srv     *server
		trainer func(ctx context.Context) // nil when serving a frozen checkpoint
	)
	switch {
	case demo:
		m, train, err := demoModel(demoScale, seed)
		if err != nil {
			return err
		}
		srv = newServer(m.Snapshot(), cfg)
		if refresh > 0 {
			trainer = func(ctx context.Context) {
				backgroundTrain(ctx, m, train, refresh, srv)
			}
		}
	case modelPath != "":
		m, err := slide.LoadFile(modelPath)
		if err != nil {
			return err
		}
		p := m.Snapshot()
		srv = newServer(p, cfg)
		log.Printf("loaded %s (%d labels, step %d)", modelPath, p.NumLabels(), m.Steps())
	default:
		return errors.New("either -model or -demo is required")
	}
	defer srv.close()

	if trainer != nil {
		go trainer(ctx)
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.mux()}
	errc := make(chan error, 1)
	go func() {
		mode := "micro-batched"
		if cfg.direct {
			mode = "direct (one forward per request)"
		}
		log.Printf("listening on %s, %s", addr, mode)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// demoModel builds and warm-trains a model on the synthetic Amazon-670K-like
// workload.
func demoModel(scale float64, seed uint64) (*slide.Model, *slide.Dataset, error) {
	train, _, err := slide.AmazonLike(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	m, err := slide.New(train.Features(), 32, train.NumLabels(),
		slide.WithDWTA(3, 10),
		slide.WithLearningRate(0.01),
		slide.WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		return nil, nil, err
	}
	log.Printf("demo model ready: %d features, %d labels, %d samples (scale %g)",
		train.Features(), train.NumLabels(), train.Len(), scale)
	return m, train, nil
}

// backgroundTrain runs an unbounded Trainer session over the demo dataset,
// publishing a fresh snapshot into the serving pipeline every refresh
// batches (WithSnapshots → SnapshotManager.Publish). Training, snapshotting
// and hooks all stay on this single goroutine (their documented contract);
// the serving side reads the published snapshots concurrently, and in-flight
// batches finish on the snapshot they captured. Cancelling ctx stops the
// session gracefully between batches.
func backgroundTrain(ctx context.Context, m *slide.Model, train *slide.Dataset, refresh int, srv *server) {
	src, err := slide.NewDatasetSource(train, 64)
	if err != nil {
		log.Printf("background training unavailable: %v", err)
		return
	}
	trainer, err := slide.NewTrainer(m, src,
		slide.WithEpochs(0), // unbounded: the ctx ends the session
		slide.WithSnapshots(refresh, serving.Publisher(srv.mgr)))
	if err != nil {
		log.Printf("background training unavailable: %v", err)
		return
	}
	report, err := trainer.Run(ctx)
	if err != nil {
		log.Printf("background training stopped: %v", err)
		return
	}
	log.Printf("background training %s after %d steps", report.Reason, report.Steps)
}
