// Command slide-serve is an HTTP JSON prediction server over a SLIDE model
// — the heavy-traffic deployment scenario the snapshot API exists for.
// It serves every request from an immutable Predictor snapshot, so request
// handling scales across cores with no locks in the inference path, and a
// background trainer (demo mode) can keep improving the model, publishing a
// fresh snapshot every few batches.
//
// Serve a trained checkpoint:
//
//	slide-serve -model model.slide -addr :8080
//
// Or run the self-contained demo (synthetic Amazon-670K-like workload,
// online training with periodic snapshot refresh):
//
//	slide-serve -demo -demo-scale 1e-6 -refresh 20
//
// Endpoints:
//
//	POST /predict        {"indices":[...],"values":[...],"k":5,"sampled":false}
//	POST /predict/batch  {"samples":[{"indices":[...]},...],"k":5}
//	GET  /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "checkpoint to serve (written by Model.SaveFile)")
		k         = flag.Int("k", 5, "default top-k when a request omits k")
		demo      = flag.Bool("demo", false, "train a synthetic model instead of loading a checkpoint")
		demoScale = flag.Float64("demo-scale", 1e-6, "demo workload scale (fraction of Amazon-670K dims)")
		refresh   = flag.Int("refresh", 20, "demo: batches between snapshot refreshes (0 = freeze after warmup)")
		seed      = flag.Uint64("seed", 42, "demo RNG seed")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("slide-serve: ")

	if err := run(*addr, *modelPath, *k, *demo, *demoScale, *refresh, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(addr, modelPath string, k int, demo bool, demoScale float64, refresh int, seed uint64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		srv     *server
		trainer func(ctx context.Context) // nil when serving a frozen checkpoint
	)
	switch {
	case demo:
		m, train, err := demoModel(demoScale, seed)
		if err != nil {
			return err
		}
		srv = newServer(m.Snapshot(), m.Steps(), k)
		if refresh > 0 {
			trainer = func(ctx context.Context) {
				backgroundTrain(ctx, m, train, refresh, srv)
			}
		}
	case modelPath != "":
		m, err := slide.LoadFile(modelPath)
		if err != nil {
			return err
		}
		srv = newServer(m.Snapshot(), m.Steps(), k)
		log.Printf("loaded %s (%d labels, step %d)", modelPath, srv.pred.Load().NumLabels(), m.Steps())
	default:
		return errors.New("either -model or -demo is required")
	}

	if trainer != nil {
		go trainer(ctx)
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.mux()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// demoModel builds and warm-trains a model on the synthetic Amazon-670K-like
// workload.
func demoModel(scale float64, seed uint64) (*slide.Model, *slide.Dataset, error) {
	train, _, err := slide.AmazonLike(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	m, err := slide.New(train.Features(), 32, train.NumLabels(),
		slide.WithDWTA(3, 10),
		slide.WithLearningRate(0.01),
		slide.WithSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		return nil, nil, err
	}
	log.Printf("demo model ready: %d features, %d labels, %d samples (scale %g)",
		train.Features(), train.NumLabels(), train.Len(), scale)
	return m, train, nil
}

// backgroundTrain keeps stepping the model and publishes a fresh snapshot
// every refresh batches. Training and snapshotting stay on this single
// goroutine (their documented contract); the serving side reads the
// published snapshots concurrently.
func backgroundTrain(ctx context.Context, m *slide.Model, train *slide.Dataset, refresh int, srv *server) {
	it := 0
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		batch := make([]slide.Sample, 0, 64)
		for i := 0; i < 64; i++ {
			batch = append(batch, train.Sample((it*64+i)%train.Len()))
		}
		if _, err := m.TrainBatch(batch); err != nil {
			log.Printf("background training stopped: %v", err)
			return
		}
		it++
		if it%refresh == 0 {
			srv.swap(m.Snapshot(), m.Steps())
		}
	}
}
