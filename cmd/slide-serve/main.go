// Command slide-serve is an HTTP JSON prediction server over a SLIDE model
// — the heavy-traffic deployment scenario the snapshot API exists for.
// Concurrent /predict requests are coalesced by a dynamic micro-batcher
// into fused batch forwards on an immutable Predictor snapshot (per-request
// k is honored inside the shared batch), a bounded admission queue sheds
// overload with 429 + Retry-After, and a background trainer (demo mode) can
// keep improving the model, hot-swapping versioned snapshots without
// stalling in-flight batches.
//
// Serve a trained checkpoint:
//
//	slide-serve -model model.slide -addr :8080
//
// Or run the self-contained demo (synthetic Amazon-670K-like workload,
// online training with periodic snapshot refresh):
//
//	slide-serve -demo -demo-scale 1e-6 -refresh 20
//
// Endpoints:
//
//	POST /predict        {"indices":[...],"values":[...],"k":5,"sampled":false,"deadline_ms":250}
//	POST /predict/batch  {"samples":[{"indices":[...]},...],"k":5}
//	GET  /healthz        model summary (back-compat health check)
//	GET  /healthz/live   liveness: process is up (always 200)
//	GET  /healthz/ready  readiness: 503 when the queue is saturated or the snapshot is stale
//	GET  /stats          queue depth, batch-size histogram, p50/p99, snapshot version/age
//
// A request carrying deadline_ms (or running under -default-deadline) is
// answered 504 when it cannot be served within its budget. Under sustained
// queue pressure with -degrade-high set, the server downshifts to sampled
// (LSH) prediction — responses are marked "degraded":true — before it sheds.
//
// The -no-batch flag serves every request with its own forward pass (the
// pre-batching behavior) — the A/B baseline for cmd/slide-loadgen.
//
// With -replicate the server additionally exposes the snapshot replication
// endpoints (GET /replicate/base, /replicate/deltas, /replicate/status):
// in demo mode the background trainer publishes sparse deltas — only the
// rows SLIDE's sampled training touched since the last refresh — and any
// number of cmd/slide-replica processes can follow the stream and serve
// the same versions.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/slide-cpu/slide/internal/replicate"
	"github.com/slide-cpu/slide/internal/serving"
	"github.com/slide-cpu/slide/slide"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "checkpoint to serve (written by Model.SaveFile)")
		k         = flag.Int("k", 5, "default top-k when a request omits k")
		demo      = flag.Bool("demo", false, "train a synthetic model instead of loading a checkpoint")
		demoScale = flag.Float64("demo-scale", 1e-6, "demo workload scale (fraction of Amazon-670K dims)")
		refresh   = flag.Int("refresh", 20, "demo: batches between snapshot refreshes (0 = freeze after warmup)")
		shards    = flag.Int("shards", 0, "demo: output-layer shards for the deterministic sharded trainer (0 = legacy HOGWILD)")
		seed      = flag.Uint64("seed", 42, "demo RNG seed")
		noBatch   = flag.Bool("no-batch", false, "bypass the micro-batcher: one forward pass per request (A/B baseline)")
		maxBatch  = flag.Int("max-batch", 32, "micro-batcher: flush when this many requests coalesce")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "micro-batcher: flush a partial batch after this wait")
		queueCap  = flag.Int("queue-cap", 0, "admission queue bound; overflow sheds with 429 (0 = 8×max-batch)")
		replFlag  = flag.Bool("replicate", false, "expose /replicate/* so slide-replica processes can follow this server's snapshots")
		quantize  = flag.Int("quantize", 0, "serve int-quantized snapshots: 8 (int8) or 4 (experimental int4); with -replicate the stream ships packed bases and deltas (0 = full precision)")

		defaultDeadline = flag.Duration("default-deadline", 0, "service deadline for requests without deadline_ms; misses answer 504 (0 = none)")
		degradeHigh     = flag.Float64("degrade-high", 0, "queue occupancy fraction that engages degraded (sampled) serving (0 = disabled)")
		degradeLow      = flag.Float64("degrade-low", 0, "queue occupancy fraction that disengages degraded serving (0 = half of -degrade-high)")
		degradeAfter    = flag.Int("degrade-after", 0, "consecutive flush observations before switching modes (0 = default 3)")
		maxStale        = flag.Duration("max-snapshot-stale", 0, "snapshot age beyond which /healthz/ready reports unready (0 = never)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("slide-serve: ")
	log.Printf("kernels: %s active (host supports: %v)", slide.KernelInfo(), slide.AvailableKernelModes())

	cfg := serving.ServerConfig{
		DefaultK: *k,
		Direct:   *noBatch,
		Batch: serving.Config{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			QueueCap: *queueCap,
			Degrade: serving.DegradePolicy{
				HighWater: *degradeHigh,
				LowWater:  *degradeLow,
				After:     *degradeAfter,
			},
		},
		DefaultDeadline: *defaultDeadline,
		MaxStale:        *maxStale,
	}
	if *quantize != 0 && *quantize != 8 && *quantize != 4 {
		log.Fatalf("-quantize must be 0, 8, or 4 (got %d)", *quantize)
	}
	if err := run(*addr, *modelPath, cfg, *demo, *demoScale, *refresh, *shards, *seed, *replFlag, *quantize); err != nil {
		log.Fatal(err)
	}
}

func run(addr, modelPath string, cfg serving.ServerConfig, demo bool, demoScale float64, refresh, shards int, seed uint64, replicated bool, qbits int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Graceful drain: the first SIGTERM/SIGINT flips readiness to 503 (load
	// balancers steer new traffic away) while in-flight batches flush; a
	// second signal kills the process immediately (stop() below restores
	// default handling).
	var draining atomic.Bool
	cfg.ReadyReasons = func() []string {
		if draining.Load() {
			return []string{"draining: shutdown in progress"}
		}
		return nil
	}

	var hub *replicate.Hub
	if replicated {
		hub = replicate.NewHub()
		if qbits != 0 {
			if err := hub.SetQuantize(qbits); err != nil {
				return err
			}
		}
	}

	// servable renders a training snapshot at the serving precision:
	// quantized when -quantize is set, the snapshot itself otherwise. The
	// hub always receives the full-precision snapshot (p.Raw()) — the wire
	// layer quantizes at encode time, keeping delta publish O(touched rows).
	servable := func(p *slide.Predictor) (*slide.Predictor, error) {
		if qbits == 0 {
			return p, nil
		}
		return p.Quantize(qbits)
	}

	var (
		srv     *serving.Server
		trainer func(ctx context.Context) // nil when serving a frozen checkpoint
	)
	switch {
	case demo:
		m, train, err := demoModel(demoScale, shards, seed)
		if err != nil {
			return err
		}
		if hub != nil {
			// Journal from the first snapshot on, so every refresh after the
			// base publishes as a sparse delta.
			m.EnableDeltas()
		}
		p := m.Snapshot()
		sp, err := servable(p)
		if err != nil {
			return err
		}
		srv = serving.NewServer(sp, cfg)
		if hub != nil {
			if err := hub.Publish(p.Raw(), nil); err != nil {
				return err
			}
		}
		if refresh > 0 {
			trainer = func(ctx context.Context) {
				backgroundTrain(ctx, m, train, refresh, srv, hub, servable)
			}
		}
	case modelPath != "":
		m, err := slide.LoadFile(modelPath)
		if err != nil {
			return err
		}
		p := m.Snapshot()
		sp, err := servable(p)
		if err != nil {
			return err
		}
		srv = serving.NewServer(sp, cfg)
		if hub != nil {
			// Frozen checkpoint: replicas bootstrap from the one base and
			// never see a delta.
			if err := hub.Publish(p.Raw(), nil); err != nil {
				return err
			}
		}
		log.Printf("loaded %s (%d labels, step %d)", modelPath, p.NumLabels(), m.Steps())
	default:
		return errors.New("either -model or -demo is required")
	}
	defer srv.Close()

	if trainer != nil {
		go trainer(ctx)
	}

	mux := srv.Mux()
	if hub != nil {
		hub.Register(mux)
	}
	httpSrv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		mode := "micro-batched"
		if cfg.Direct {
			mode = "direct (one forward per request)"
		}
		if hub != nil {
			mode += ", replicating"
		}
		if qbits != 0 {
			mode += fmt.Sprintf(", int%d-quantized", qbits)
		}
		log.Printf("listening on %s, %s", addr, mode)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second SIGTERM is immediate
	draining.Store(true)
	log.Printf("draining: admission stopped, flushing in-flight batches")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx) // close listeners, wait for handlers
	srv.Close()                      // drain the batcher queue, join workers
	log.Printf("drain complete")
	return err
}

// demoModel builds and warm-trains a model on the synthetic Amazon-670K-like
// workload. With shards > 0 the background trainer runs the deterministic
// sharded engine instead of HOGWILD.
func demoModel(scale float64, shards int, seed uint64) (*slide.Model, *slide.Dataset, error) {
	train, _, err := slide.AmazonLike(scale, seed)
	if err != nil {
		return nil, nil, err
	}
	opts := []slide.Option{
		slide.WithDWTA(3, 10),
		slide.WithLearningRate(0.01),
		slide.WithSeed(seed),
	}
	if shards > 0 {
		opts = append(opts, slide.WithShards(shards))
	}
	m, err := slide.New(train.Features(), 32, train.NumLabels(), opts...)
	if err != nil {
		return nil, nil, err
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		return nil, nil, err
	}
	log.Printf("demo model ready: %d features, %d labels, %d samples (scale %g)",
		train.Features(), train.NumLabels(), train.Len(), scale)
	return m, train, nil
}

// backgroundTrain runs an unbounded Trainer session over the demo dataset,
// publishing a fresh snapshot into the serving pipeline every refresh
// batches. Training, snapshotting and hooks all stay on this single
// goroutine (their documented contract); the serving side reads the
// published snapshots concurrently, and in-flight batches finish on the
// snapshot they captured. With a replication hub the session publishes
// sparse deltas (WithDeltas) so following replicas move only the touched
// rows per refresh. Cancelling ctx stops the session gracefully between
// batches.
func backgroundTrain(ctx context.Context, m *slide.Model, train *slide.Dataset, refresh int, srv *serving.Server, hub *replicate.Hub, servable func(*slide.Predictor) (*slide.Predictor, error)) {
	src, err := slide.NewDatasetSource(train, 64)
	if err != nil {
		log.Printf("background training unavailable: %v", err)
		return
	}
	// publish renders the snapshot at the serving precision before handing
	// it to the pipeline; a snapshot that refuses (non-finite under
	// quantization) is skipped and the server keeps its current version —
	// same quarantine posture as the snapshot manager's own admission.
	publish := func(p *slide.Predictor) {
		sp, err := servable(p)
		if err != nil {
			log.Printf("snapshot publish skipped: %v", err)
			return
		}
		srv.Publish(sp)
	}
	opts := []slide.TrainerOption{
		slide.WithEpochs(0), // unbounded: the ctx ends the session
	}
	if hub != nil {
		opts = append(opts, slide.WithDeltas(refresh, func(p *slide.Predictor, d *slide.Delta) {
			publish(p)
			if err := hub.Publish(p.Raw(), d.Raw()); err != nil {
				log.Printf("replication publish failed: %v", err)
			}
		}))
	} else {
		opts = append(opts, slide.WithSnapshots(refresh, publish))
	}
	trainer, err := slide.NewTrainer(m, src, opts...)
	if err != nil {
		log.Printf("background training unavailable: %v", err)
		return
	}
	report, err := trainer.Run(ctx)
	if err != nil {
		log.Printf("background training stopped: %v", err)
		return
	}
	log.Printf("background training %s after %d steps", report.Reason, report.Steps)
}
