package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"github.com/slide-cpu/slide/slide"
)

// server routes prediction traffic onto the current Predictor snapshot.
// The snapshot is swapped atomically by the (optional) background trainer,
// so request handlers never block on training and never see a half-updated
// model — the concurrency story is entirely the Predictor's.
type server struct {
	pred     atomic.Pointer[slide.Predictor]
	defaultK int
	// snapshotSteps mirrors the optimizer step count of the current
	// snapshot, for /healthz observability.
	snapshotSteps atomic.Int64
}

func newServer(p *slide.Predictor, steps int64, defaultK int) *server {
	s := &server{defaultK: defaultK}
	s.swap(p, steps)
	return s
}

// swap publishes a new snapshot; in-flight requests finish on the old one.
func (s *server) swap(p *slide.Predictor, steps int64) {
	s.pred.Store(p)
	s.snapshotSteps.Store(steps)
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// predictRequest is one inference request. Values may be omitted, in which
// case every index gets weight 1 (set-valued features). Sampled selects
// sub-linear LSH inference; on models without LSH tables the server falls
// back to the exact path and reports sampled=false in the response.
type predictRequest struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values,omitempty"`
	K       int       `json:"k,omitempty"`
	Sampled bool      `json:"sampled,omitempty"`
}

type predictResponse struct {
	Labels []int32 `json:"labels"`
	// Sampled reports whether LSH-sampled retrieval actually served the
	// request (false when the request asked for it but the model has no
	// tables and the server fell back to exact ranking).
	Sampled bool `json:"sampled"`
}

type batchRequest struct {
	Samples []predictRequest `json:"samples"`
	K       int              `json:"k,omitempty"`
	Sampled bool             `json:"sampled,omitempty"`
}

type batchResponse struct {
	Labels  [][]int32 `json:"labels"`
	Sampled bool      `json:"sampled"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// normalize validates one request (including untrusted feature indices,
// which would otherwise panic deep in the forward pass) and fills defaults.
func (s *server) normalize(r *predictRequest, p *slide.Predictor) error {
	if len(r.Indices) == 0 {
		return fmt.Errorf("indices must be non-empty")
	}
	features := int32(p.NumFeatures())
	for i, idx := range r.Indices {
		if idx < 0 || idx >= features {
			return fmt.Errorf("index %d (position %d) out of range [0, %d)", idx, i, features)
		}
	}
	if r.Values == nil {
		r.Values = make([]float32, len(r.Indices))
		for i := range r.Values {
			r.Values[i] = 1
		}
	}
	if len(r.Values) != len(r.Indices) {
		return fmt.Errorf("%d indices but %d values", len(r.Indices), len(r.Values))
	}
	if r.K <= 0 {
		r.K = s.defaultK
	}
	if r.K > p.NumLabels() {
		r.K = p.NumLabels()
	}
	return nil
}

// predictOne serves one sample, honoring the sampled flag with exact
// fallback. Returns the labels and whether sampled retrieval was used.
func predictOne(p *slide.Predictor, r *predictRequest) ([]int32, bool) {
	if r.Sampled {
		labels, err := p.PredictSampled(r.Indices, r.Values, r.K)
		if err == nil {
			return labels, true
		}
		// ErrNoSampling: model has no LSH tables — exact is the right call.
	}
	return p.Predict(r.Indices, r.Values, r.K), false
}

func (s *server) handlePredict(w http.ResponseWriter, req *http.Request) {
	var pr predictRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	p := s.pred.Load()
	if err := s.normalize(&pr, p); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	labels, sampled := predictOne(p, &pr)
	writeJSON(w, http.StatusOK, predictResponse{Labels: labels, Sampled: sampled})
}

func (s *server) handlePredictBatch(w http.ResponseWriter, req *http.Request) {
	var br batchRequest
	if err := json.NewDecoder(req.Body).Decode(&br); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(br.Samples) == 0 {
		writeError(w, http.StatusBadRequest, "samples must be non-empty")
		return
	}
	p := s.pred.Load()
	for i := range br.Samples {
		if br.Samples[i].K == 0 {
			br.Samples[i].K = br.K
		}
		br.Samples[i].Sampled = br.Samples[i].Sampled || br.Sampled
		if err := s.normalize(&br.Samples[i], p); err != nil {
			writeError(w, http.StatusBadRequest, "sample %d: %v", i, err)
			return
		}
	}
	// The fused parallel batch path serves one (exact, single-k) shape; a
	// batch mixing per-sample k or requesting sampled retrieval anywhere is
	// served sample by sample so every per-sample option is honored.
	fused := true
	for i := range br.Samples {
		if br.Samples[i].Sampled || br.Samples[i].K != br.Samples[0].K {
			fused = false
			break
		}
	}
	resp := batchResponse{Labels: make([][]int32, len(br.Samples))}
	if fused {
		samples := make([]slide.Sample, len(br.Samples))
		for i, r := range br.Samples {
			samples[i] = slide.Sample{Indices: r.Indices, Values: r.Values}
		}
		labels, err := p.PredictBatch(samples, br.Samples[0].K)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Labels = labels
	} else {
		// Sampled reports whether sampled retrieval served every sample.
		resp.Sampled = true
		for i := range br.Samples {
			var sampled bool
			resp.Labels[i], sampled = predictOne(p, &br.Samples[i])
			resp.Sampled = resp.Sampled && sampled
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	p := s.pred.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"labels":  p.NumLabels(),
		"sampled": p.Sampled(),
		"steps":   s.snapshotSteps.Load(),
	})
}
