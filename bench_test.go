// Package repro_test holds the benchmark harness entry points: one
// testing.B benchmark per table and figure of the paper's evaluation
// (DESIGN.md carries the experiment index), plus kernel microbenchmarks for
// the §4.2/§4.3 hot loops. Benchmarks run at a tiny dataset scale so the
// suite completes on a laptop; `cmd/slide-bench` runs the same experiments
// at configurable scale with full reporting.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/costmodel"
	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/harness"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/platform"
	"github.com/slide-cpu/slide/internal/replicate"
	"github.com/slide-cpu/slide/internal/serving"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
	"github.com/slide-cpu/slide/slide"
)

// benchOpts keeps measured benchmark runs small and repeatable.
func benchOpts() harness.Options {
	return harness.Options{Scale: 1e-6, Epochs: 1, EvalPointsPerEpoch: 1,
		EvalSamples: 30, Workers: 2, Seed: 42}
}

func benchWorkload(b *testing.B) *harness.Workload {
	b.Helper()
	ws, err := harness.Workloads(benchOpts())
	if err != nil {
		b.Fatal(err)
	}
	return ws[0] // Amazon-670K-like
}

// BenchmarkTable1DatasetGen regenerates Table 1's datasets (statistics
// derive from the generated data; see cmd/slide-bench -exp table1).
func BenchmarkTable1DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := dataset.Amazon670K(1e-6, uint64(i))
		train, _, err := dataset.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = train.Stats()
	}
}

// BenchmarkTable2EpochTime measures the three systems of Table 2's
// same-hardware comparison: dense full softmax, naive SLIDE, optimized
// SLIDE. Each iteration is one training epoch.
func BenchmarkTable2EpochTime(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	b.Run("FullSoftmax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunDense(w, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveSLIDE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunSLIDE(w, harness.Naive, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OptimizedSLIDE", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunSLIDE(w, harness.Optimized, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2Roofline exercises the cost-model rows of Table 2 (the
// cross-platform estimates).
func BenchmarkTable2Roofline(b *testing.B) {
	w := costmodel.Workload{
		Samples: 490449, FeatureNNZ: 75, Input: 135909, Hidden: 128,
		Output: 670091, MeanActive: 3350, BatchSize: 1024,
		L: 400, K: 6, RebuildPeriod: 50,
	}
	for i := 0; i < b.N; i++ {
		_ = costmodel.EstimateEpoch(w, costmodel.OptimizedSLIDE(platform.CPX), platform.CPX)
		_ = costmodel.EstimateEpoch(w, costmodel.NaiveSLIDE(), platform.CLX)
		_ = costmodel.EstimateEpoch(w, costmodel.FullSoftmax(), platform.V100)
	}
}

// BenchmarkTable3BF16 measures the three §4.4 quantization modes on the
// optimized system (Table 3; software BF16 on the host, see EXPERIMENTS.md).
func BenchmarkTable3BF16(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	for _, m := range []struct {
		name string
		prec layer.Precision
	}{
		{"FP32", layer.FP32},
		{"BF16Act", layer.BF16Act},
		{"BF16Both", layer.BF16Both},
	} {
		b.Run(m.name, func(b *testing.B) {
			v := harness.Optimized
			v.Precision = m.prec
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunSLIDE(w, v, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Vectorization measures vector vs scalar kernels with
// everything else held at the optimized configuration (Table 4).
func BenchmarkTable4Vectorization(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	for _, m := range []struct {
		name string
		mode simd.Mode
	}{
		{"Vector", simd.Vector},
		{"Scalar", simd.Scalar},
	} {
		b.Run(m.name, func(b *testing.B) {
			v := harness.Optimized
			v.Kernels = m.mode
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunSLIDE(w, v, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure6Convergence runs the convergence measurement loop that
// produces Figure 6's curves (one short tracked run per iteration).
func BenchmarkFigure6Convergence(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	opts.EvalPointsPerEpoch = 3
	for i := 0; i < b.N; i++ {
		r, err := harness.RunSLIDE(w, harness.Optimized, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tracker.Points()) == 0 {
			b.Fatal("no convergence points")
		}
	}
}

// BenchmarkAblationMemoryLayout isolates the §4.1/§5.7 memory effect:
// parameter placement × batch layout with kernels held fixed.
func BenchmarkAblationMemoryLayout(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	for _, c := range []struct {
		name  string
		place layer.Placement
		lay   sparse.Layout
	}{
		{"Coalesced", layer.Contiguous, sparse.Coalesced},
		{"FragmentedParams", layer.Scattered, sparse.Coalesced},
		{"FragmentedData", layer.Contiguous, sparse.Fragmented},
		{"FullyFragmented", layer.Scattered, sparse.Fragmented},
	} {
		b.Run(c.name, func(b *testing.B) {
			v := harness.Optimized
			v.Placement = c.place
			v.BatchLayout = c.lay
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunSLIDE(w, v, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationThreads sweeps HOGWILD worker counts (§4.1.1).
func BenchmarkAblationThreads(b *testing.B) {
	w := benchWorkload(b)
	for _, nw := range []int{1, 2, 4} {
		b.Run(string(rune('0'+nw)), func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = nw
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunSLIDE(w, harness.Optimized, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Kernel microbenchmarks (§4.2/§4.3 hot loops) ---

func randF32(n int, seed uint64) []float32 {
	rng := rand.New(rand.NewPCG(seed, 1))
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

// benchModeName renders a kernel mode as a benchmark sub-name, keeping the
// historical "Vector"/"Scalar" spellings from earlier baselines.
func benchModeName(m simd.Mode) string {
	switch m {
	case simd.Vector:
		return "Vector"
	case simd.Scalar:
		return "Scalar"
	case simd.AVX2:
		return "AVX2"
	case simd.AVX512:
		return "AVX512"
	}
	return m.String()
}

// benchKernelModes is the per-mode microbenchmark sweep: every tier this
// host supports, fastest first (assembly tiers appear only where CPUID
// reports them, so baselines recorded on different machines stay comparable
// row by row).
func benchKernelModes(b *testing.B, run func(b *testing.B, ks *simd.Kernels)) {
	for _, m := range simd.AvailableModes() {
		ks := simd.ForMode(m)
		b.Run(benchModeName(m), func(b *testing.B) { run(b, ks) })
	}
}

// BenchmarkKernelDot measures Algorithm 1's inner loop (dense dot over a
// 128-wide hidden layer, the paper's dimension) under every kernel tier.
func BenchmarkKernelDot(b *testing.B) {
	x := randF32(128, 1)
	y := randF32(128, 2)
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += ks.Dot(x, y)
		}
		sink = s
	})
}

// BenchmarkKernelDot4 measures the register-blocked four-row dot against
// four independent dots (the ForwardActive hot path).
func BenchmarkKernelDot4(b *testing.B) {
	r0 := randF32(128, 21)
	r1 := randF32(128, 22)
	r2 := randF32(128, 23)
	r3 := randF32(128, 24)
	h := randF32(128, 25)
	b.Run("Blocked", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s0, s1, s2, s3 := simd.Dot4(r0, r1, r2, r3, h)
			s += s0 + s1 + s2 + s3
		}
		sink = s
	})
	b.Run("FourDots", func(b *testing.B) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += simd.DotVec(r0, h) + simd.DotVec(r1, h) + simd.DotVec(r2, h) + simd.DotVec(r3, h)
		}
		sink = s
	})
}

// BenchmarkKernelAxpy measures Algorithm 2's inner loop (broadcast-multiply
// accumulate over a column).
func BenchmarkKernelAxpy(b *testing.B) {
	x := randF32(128, 3)
	y := randF32(128, 4)
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		for i := 0; i < b.N; i++ {
			ks.Axpy(0.5, x, y)
		}
	})
}

// BenchmarkKernelAdam measures the §4.3.1 fused optimizer pass.
func BenchmarkKernelAdam(b *testing.B) {
	n := 4096
	w := randF32(n, 5)
	m := make([]float32, n)
	v := make([]float32, n)
	g := randF32(n, 6)
	p := simd.NewAdamParams(1e-3, 0.9, 0.999, 1e-8, 3)
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		for i := 0; i < b.N; i++ {
			ks.AdamStep(w, m, v, g, p)
		}
	})
}

// BenchmarkKernelDotManyBias measures the fused active-set forward kernel
// against the per-row dispatching form it replaced (one Dot call + bias add
// per active row). The active set size (64) and hidden width (128) mirror
// the sampled output layer's hot-path shape.
func BenchmarkKernelDotManyBias(b *testing.B) {
	const nRows, dim, nAct = 512, 128, 64
	rows := make([][]float32, nRows)
	for i := range rows {
		rows[i] = randF32(dim, uint64(i)+100)
	}
	bias := randF32(nRows, 31)
	h := randF32(dim, 32)
	rng := rand.New(rand.NewPCG(33, 1))
	ids := make([]int32, nAct)
	for i := range ids {
		ids[i] = int32(rng.IntN(nRows))
	}
	out := make([]float32, nAct)
	b.Run("Fused", func(b *testing.B) {
		ks := simd.Active()
		for i := 0; i < b.N; i++ {
			ks.DotManyBias(rows, bias, ids, h, out)
		}
		sink = out[0]
	})
	b.Run("PerRowDispatch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for k, id := range ids {
				out[k] = simd.Dot(rows[id], h) + bias[id]
			}
		}
		sink = out[0]
	})
	// Per-tier rows: the assembly-vs-portable acceptance ratio reads off
	// AVX512 (or AVX2) against Vector here.
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		for i := 0; i < b.N; i++ {
			ks.DotManyBias(rows, bias, ids, h, out)
		}
		sink = out[0]
	})
}

// BenchmarkKernelAxpyTwo measures the fused backward walk (grad += gz·h and
// dh += gz·w in one pass) against the two independent axpys it replaced.
func BenchmarkKernelAxpyTwo(b *testing.B) {
	const dim = 128
	h := randF32(dim, 41)
	w := randF32(dim, 42)
	grad := randF32(dim, 43)
	dh := randF32(dim, 44)
	// AxpyTwoFusedKernel forces the genuinely fused walk on every tier (the
	// Go tiers' table entries resolve AxpyTwo to the faster two-walk shape,
	// so benchmarking the table entry would compare identical code there),
	// resolved once so both sides pay the same zero dispatch in the loop.
	b.Run("Fused", func(b *testing.B) {
		fused := simd.AxpyTwoFusedKernel()
		for i := 0; i < b.N; i++ {
			fused(0.5, h, grad, w, dh)
		}
	})
	b.Run("TwoAxpys", func(b *testing.B) {
		ks := simd.Active()
		for i := 0; i < b.N; i++ {
			ks.Axpy(0.5, h, grad)
			ks.Axpy(0.5, w, dh)
		}
	})
}

// BenchmarkKernelAdamZero measures the fused optimizer pass (ADAM step +
// gradient clear in one walk) against the two-pass form it replaced. The
// gradient is re-filled from gsrc each iteration (identical cost in both
// variants): with a permanently zero gradient the moments decay into
// denormals and the benchmark measures denormal arithmetic instead of the
// kernel.
func BenchmarkKernelAdamZero(b *testing.B) {
	n := 4096
	w := randF32(n, 51)
	m := make([]float32, n)
	v := make([]float32, n)
	g := make([]float32, n)
	gsrc := randF32(n, 52)
	p := simd.NewAdamParams(1e-3, 0.9, 0.999, 1e-8, 3)
	b.Run("Fused", func(b *testing.B) {
		ks := simd.Active()
		for i := 0; i < b.N; i++ {
			copy(g, gsrc)
			ks.AdamStepZero(w, m, v, g, p)
		}
	})
	b.Run("StepThenZero", func(b *testing.B) {
		ks := simd.Active()
		for i := 0; i < b.N; i++ {
			copy(g, gsrc)
			ks.AdamStep(w, m, v, g, p)
			simd.Zero(g)
		}
	})
}

// BenchmarkTrainStep measures one SLIDE TrainBatch end to end — the
// batch-granularity hot path the fused kernels and one-shot dispatch target.
// Shapes follow the Amazon-670K-like benchmark workload.
func BenchmarkTrainStep(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	net, err := network.New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	train := w.Train
	it := train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
	batch, ok := it.Next()
	if !ok {
		b.Fatal("empty workload")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainBatch(batch)
	}
}

// BenchmarkTrainStepModes is BenchmarkTrainStep under each forced kernel
// tier — the end-to-end assembly-vs-portable acceptance ratio (AVX512 or
// AVX2 row against Vector). Each sub-benchmark builds a fresh network so no
// tier inherits another's warmed-up weights or table state.
func BenchmarkTrainStepModes(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	prev := simd.CurrentMode()
	defer simd.SetMode(prev)
	for _, m := range simd.AvailableModes() {
		b.Run(benchModeName(m), func(b *testing.B) {
			simd.SetMode(m)
			cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
			net, err := network.New(&cfg)
			if err != nil {
				b.Fatal(err)
			}
			it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
			batch, ok := it.Next()
			if !ok {
				b.Fatal("empty workload")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.TrainBatch(batch)
			}
		})
	}
}

// BenchmarkKernelDotBF16 measures the §4.4 mixed-precision dot product
// under every kernel tier.
func BenchmarkKernelDotBF16(b *testing.B) {
	x := bf16.FromSlice(randF32(128, 7))
	y := randF32(128, 8)
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		var s float32
		for i := 0; i < b.N; i++ {
			s += ks.DotBF16F32(x, y)
		}
		sink = s
	})
}

// BenchmarkKernelPackBF16 measures the float32 -> bfloat16 conversion that
// feeds the §4.4 activation quantization (VCVTNEPS2BF16 on AVX512-BF16
// hosts, the software rounder elsewhere).
func BenchmarkKernelPackBF16(b *testing.B) {
	src := randF32(128, 9)
	dst := make([]bf16.BF16, 128)
	benchKernelModes(b, func(b *testing.B, ks *simd.Kernels) {
		for i := 0; i < b.N; i++ {
			ks.PackBF16(dst, src)
		}
	})
}

// BenchmarkTableRebuild measures the hash-table maintenance cost: a full
// rebuild over all output neurons (the §2 "hash tables update" path).
func BenchmarkTableRebuild(b *testing.B) {
	d, err := lsh.NewDWTA(lsh.DWTAConfig{K: 4, L: 16, Dim: 128, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	ts := lsh.NewTableSet(d, 128, lsh.FIFO, 5)
	n := 2000
	rows, _ := make([][]float32, n), 0
	for i := range rows {
		rows[i] = randF32(128, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.RebuildDense(n, 128, func(j int, _ []float32) []float32 { return rows[j] }, 2)
	}
}

// BenchmarkTableQuery measures one active-set retrieval: hash the activation
// and union L buckets with dedup (the per-sample sampling cost).
func BenchmarkTableQuery(b *testing.B) {
	d, err := lsh.NewDWTA(lsh.DWTAConfig{K: 4, L: 16, Dim: 128, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	ts := lsh.NewTableSet(d, 128, lsh.FIFO, 5)
	n := 2000
	rows := make([][]float32, n)
	for i := range rows {
		rows[i] = randF32(128, uint64(i))
	}
	ts.RebuildDense(n, 128, func(j int, _ []float32) []float32 { return rows[j] }, 2)
	act := randF32(128, 999)
	dedup := lsh.NewDedup(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dedup.Begin()
		count := 0
		ts.QueryDense(act, func(id int32) {
			if !dedup.Seen(id) {
				count++
			}
		})
	}
}

// BenchmarkBatchBuild measures materializing one batch in the two §4.1
// data layouts (the coalesced CSR copy vs per-sample allocations).
func BenchmarkBatchBuild(b *testing.B) {
	opts := benchOpts()
	ws, err := harness.Workloads(opts)
	if err != nil {
		b.Fatal(err)
	}
	train := ws[0].Train
	for _, layout := range []sparse.Layout{sparse.Coalesced, sparse.Fragmented} {
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				it := train.Iter(128, layout, uint64(i))
				for {
					if _, ok := it.Next(); !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkDWTAHash measures the §4.3.3 hash computation on a dense
// 128-dim activation (the output-layer query path).
func BenchmarkDWTAHash(b *testing.B) {
	d, err := lsh.NewDWTA(lsh.DWTAConfig{K: 6, L: 50, Dim: 128, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	act := randF32(128, 10)
	out := make([]uint32, 50)
	for i := 0; i < b.N; i++ {
		d.HashDense(act, out)
	}
}

// BenchmarkSimHash measures the Text8 hash family on a one-hot input, in
// both sign-derivation modes: Lazy (vocabulary-sized input space, signs
// hashed on demand) and Precomputed (hidden-sized query space, packed sign
// matrix — the network's hot path).
func BenchmarkSimHash(b *testing.B) {
	b.Run("Lazy253855", func(b *testing.B) {
		s, err := lsh.NewSimHash(lsh.SimHashConfig{K: 9, L: 50, Dim: 253855, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		v := sparse.Vector{Indices: []int32{1234}, Values: []float32{1}}
		out := make([]uint32, 50)
		for i := 0; i < b.N; i++ {
			s.Hash(v, out)
		}
	})
	b.Run("Precomputed200", func(b *testing.B) {
		s, err := lsh.NewSimHash(lsh.SimHashConfig{K: 9, L: 50, Dim: 200, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		act := randF32(200, 12)
		out := make([]uint32, 50)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.HashDense(act, out)
		}
	})
}

// BenchmarkPredictorThroughput measures concurrent serving from one
// immutable snapshot: g goroutines issue exact Predict calls against a
// shared Predictor (per-call scratch from its pool). The 1-goroutine run is
// the single-request latency baseline; the GOMAXPROCS run is the saturation
// throughput the snapshot API exists for.
func BenchmarkPredictorThroughput(b *testing.B) {
	w := benchWorkload(b)
	opts := benchOpts()
	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	net, err := network.New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
	for i := 0; i < 5; i++ {
		batch, ok := it.Next()
		if !ok {
			break
		}
		net.TrainBatch(batch)
	}
	pred := net.Snapshot()
	test := w.Test
	seen := map[int]bool{}
	for _, g := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if seen[g] {
			continue
		}
		seen[g] = true
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for r := 0; r < g; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						pred.Predict(test.Sample(int(i)%test.Len()), 5)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkTopK measures the serving-path ranking step: heap-based top-k
// selection over a full score vector, allocation-free via TopKInto.
func BenchmarkTopK(b *testing.B) {
	scores := randF32(16384, 77)
	for _, k := range []int{1, 10, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			buf := make([]int32, 0, k)
			for i := 0; i < b.N; i++ {
				buf = metrics.TopKInto(scores, k, buf[:0])
			}
			sink = float32(buf[0])
		})
	}
}

// sink defeats dead-code elimination in kernel benchmarks.
var sink float32

// benchServingPredictor builds a forward-dominated serving model (wide
// output layer, so the per-request forward dwarfs queue/HTTP overhead) and
// a deterministic request set. Minimal training: serving benchmarks measure
// the forward path, not model quality.
func benchServingPredictor(b *testing.B) (*slide.Predictor, []slide.BatchEntry) {
	b.Helper()
	const scale, hidden = 5e-3, 128
	train, test, err := slide.AmazonLike(scale, 42)
	if err != nil {
		b.Fatal(err)
	}
	m, err := slide.New(train.Features(), hidden, train.NumLabels(),
		slide.WithDWTA(3, 10), slide.WithWorkers(1), slide.WithSeed(42))
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]slide.Sample, 0, 32)
	for i := 0; i < 32; i++ {
		batch = append(batch, train.Sample(i%train.Len()))
	}
	if _, err := m.TrainBatch(batch); err != nil {
		b.Fatal(err)
	}
	entries := make([]slide.BatchEntry, 256)
	for i := range entries {
		s := test.Sample(i % test.Len())
		entries[i] = slide.BatchEntry{Indices: s.Indices, Values: s.Values, K: 5}
	}
	return m.Snapshot(), entries
}

// BenchmarkBatcherCoalesce is the micro-batching A/B at the pipeline layer
// (no HTTP): 64 concurrent closed-loop clients submitting through the
// Batcher (fused batch forwards) versus calling Predict directly (one
// forward per request — the PR 2 serving model). ns/op is per request;
// mean_batch reports how well the batcher coalesced.
func BenchmarkBatcherCoalesce(b *testing.B) {
	pred, entries := benchServingPredictor(b)
	const clients = 64
	closedLoop := func(b *testing.B, do func(i int)) {
		var next atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(b.N) {
						return
					}
					do(int(i))
				}
			}()
		}
		wg.Wait()
	}
	b.Run("Direct", func(b *testing.B) {
		closedLoop(b, func(i int) {
			e := entries[i%len(entries)]
			pred.Predict(e.Indices, e.Values, e.K)
		})
	})
	b.Run("Batched", func(b *testing.B) {
		mgr := serving.NewSnapshotManager(pred)
		bat := serving.NewBatcher(mgr, serving.Config{})
		defer bat.Close()
		ctx := context.Background()
		b.ResetTimer()
		closedLoop(b, func(i int) {
			if _, err := bat.Submit(ctx, entries[i%len(entries)]); err != nil {
				b.Error(err)
			}
		})
		b.StopTimer()
		b.ReportMetric(bat.Stats().MeanBatch, "mean_batch")
	})
}

// BenchmarkServingPipeline is the end-to-end serving A/B: the full HTTP
// stack driven by the deterministic closed-loop load generator at 64
// clients, micro-batched versus direct (-no-batch) over the same snapshot.
// ns/op is per request; qps is reported as a metric.
func BenchmarkServingPipeline(b *testing.B) {
	pred, entries := benchServingPredictor(b)
	for _, batched := range []bool{false, true} {
		name := "Direct"
		if batched {
			name = "Batched"
		}
		b.Run(name, func(b *testing.B) {
			mgr := serving.NewSnapshotManager(pred)
			var bat *serving.Batcher
			if batched {
				bat = serving.NewBatcher(mgr, serving.Config{})
				defer bat.Close()
			}
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				servePredictBench(w, r, mgr, bat)
			}))
			defer ts.Close()
			reqs := make([]slide.BatchEntry, b.N)
			for i := range reqs {
				reqs[i] = entries[i%len(entries)]
			}
			b.ResetTimer()
			report := serving.RunLoad(context.Background(), ts.URL, nil, reqs, 64)
			b.StopTimer()
			if report.Errors > 0 {
				b.Fatalf("%d errors (%s)", report.Errors, report.FirstError)
			}
			b.ReportMetric(report.QPS, "qps")
			if bat != nil {
				b.ReportMetric(bat.Stats().MeanBatch, "mean_batch")
			}
		})
	}
}

// servePredictBench is a minimal /predict handler over the pipeline (the
// cmd/slide-serve wire shape without its flag plumbing), so the benchmark
// measures serving architecture, not command wiring.
func servePredictBench(w http.ResponseWriter, r *http.Request, mgr *serving.SnapshotManager, bat *serving.Batcher) {
	var req struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
		K       int       `json:"k"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	e := slide.BatchEntry{Indices: req.Indices, Values: req.Values, K: req.K}
	var labels []int32
	if bat != nil {
		res, err := bat.Submit(r.Context(), e)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		labels = res.Labels
	} else {
		labels = mgr.Current().Predict(e.Indices, e.Values, e.K)
	}
	json.NewEncoder(w).Encode(map[string]any{"labels": labels})
}

// replicationBenchNet builds the benchmark-workload network with delta
// tracking on and a few warm-up batches applied, plus a fresh batch
// iterator for per-iteration training.
func replicationBenchNet(b *testing.B) (*network.Network, func() sparse.Batch) {
	b.Helper()
	w := benchWorkload(b)
	opts := benchOpts()
	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	net, err := network.New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	net.EnableDeltaTracking()
	it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
	next := func() sparse.Batch {
		batch, ok := it.Next()
		if !ok {
			it = w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
			batch, _ = it.Next()
		}
		return batch
	}
	for i := 0; i < 5; i++ {
		net.TrainBatch(next())
	}
	return net, next
}

// BenchmarkReplicationPublish compares what the trainer pays per publish
// interval: a full deep Snapshot (the pre-replication path) vs the
// copy-on-write SnapshotDelta that also yields the sparse delta. One
// training batch runs untimed between iterations so each snapshot covers a
// realistic touched set.
func BenchmarkReplicationPublish(b *testing.B) {
	b.Run("FullSnapshot", func(b *testing.B) {
		net, next := replicationBenchNet(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			net.TrainBatch(next())
			b.StartTimer()
			net.Snapshot()
		}
	})
	b.Run("DeltaSnapshot", func(b *testing.B) {
		net, next := replicationBenchNet(b)
		net.SnapshotDelta() // establish the base so every iteration yields a delta
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			net.TrainBatch(next())
			b.StartTimer()
			net.SnapshotDelta()
		}
	})
}

// wideReplicationNet builds a wide-output network — SLIDE's
// extreme-classification regime, where LSH-sampled training touches a
// small fraction of output rows per batch and sparse deltas pay off. The
// benchmark workload at bench scale has only ~670 output rows, so a batch
// touches nearly all of them; delta economics only appear when the output
// layer dwarfs batch × active-set.
func wideReplicationNet(b testing.TB) (*network.Network, func() sparse.Batch) {
	b.Helper()
	cfg := network.Config{
		InputDim: 1000, HiddenDim: 64, OutputDim: 30000,
		Hash: network.DWTA, K: 5, L: 16, BucketCap: 64,
		MinActive: 16, MaxActive: 48, LR: 1e-4, Workers: 2,
		RebuildEvery: 100, Seed: 42,
	}
	net, err := network.New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	net.EnableDeltaTracking()
	rng := rand.New(rand.NewPCG(7, 0x5eed))
	next := func() sparse.Batch {
		var bu sparse.Builder
		for i := 0; i < 32; i++ {
			idx := make([]int32, 20)
			vals := make([]float32, 20)
			seen := map[int32]bool{}
			for j := range idx {
				v := int32(rng.IntN(1000))
				for seen[v] {
					v = int32(rng.IntN(1000))
				}
				seen[v] = true
				idx[j] = v
				vals[j] = 1
			}
			for i := 1; i < len(idx); i++ {
				for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
			bu.Add(idx, vals, []int32{int32(rng.IntN(30000))})
		}
		batch, err := bu.CSR()
		if err != nil {
			panic(err)
		}
		return batch
	}
	for i := 0; i < 3; i++ {
		net.TrainBatch(next())
	}
	return net, next
}

// BenchmarkReplicationEncode measures wire encoding and reports the
// bytes a steady-state delta moves relative to a full base snapshot, on
// the wide-output regime.
func BenchmarkReplicationEncode(b *testing.B) {
	net, next := wideReplicationNet(b)
	base, _ := net.SnapshotDelta()
	net.TrainBatch(next())
	_, d := net.SnapshotDelta()
	encBase, err := replicate.EncodeBase(base, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Base", func(b *testing.B) {
		b.ReportMetric(float64(len(encBase)), "bytes")
		for i := 0; i < b.N; i++ {
			if _, err := replicate.EncodeBase(base, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Delta", func(b *testing.B) {
		enc, err := replicate.EncodeDelta(d, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(enc)), "bytes")
		b.ReportMetric(float64(len(enc))/float64(len(encBase)), "of-base")
		for i := 0; i < b.N; i++ {
			if _, err := replicate.EncodeDelta(d, 1, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplicationApply measures the replica side: decoding one delta
// message and applying it copy-on-write onto the current predictor.
func BenchmarkReplicationApply(b *testing.B) {
	net, next := wideReplicationNet(b)
	base, _ := net.SnapshotDelta()
	net.TrainBatch(next())
	_, d := net.SnapshotDelta()
	encBase, err := replicate.EncodeBase(base, 1)
	if err != nil {
		b.Fatal(err)
	}
	encDelta, err := replicate.EncodeDelta(d, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	bm, _, err := replicate.ReadMessage(bytes.NewReader(encBase))
	if err != nil {
		b.Fatal(err)
	}
	remote, err := network.NewPredictorFromBase(bm.Parts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, dm, err := replicate.ReadMessage(bytes.NewReader(encDelta))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := remote.ApplyDelta(dm.Parts); err != nil {
			b.Fatal(err)
		}
	}
}
