// Word2vec: the paper's Text8 scenario. Trains a skip-gram model (window 2,
// linear hidden layer, SimHash-sampled softmax — §5.3) on a synthetic
// Zipfian corpus with planted bigram structure, then inspects the learned
// embeddings: a token's nearest neighbour in embedding space should relate
// to its planted co-occurrence partner.
//
//	go run ./examples/word2vec [-scale 0.002] [-epochs 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	scale := flag.Float64("scale", 0.002, "corpus scale relative to the paper's Text8")
	epochs := flag.Int("epochs", 3, "training epochs")
	flag.Parse()

	train, test, err := slide.Text8Like(*scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	vocab := train.Features()
	fmt.Printf("Text8-like @ scale %g: %d skip-gram samples, vocabulary %d\n\n",
		*scale, train.Len(), vocab)

	// Paper setting: hidden 200, linear, SimHash on the output layer.
	m, err := slide.New(vocab, 200, vocab,
		slide.WithSimHash(7, 10),
		slide.WithLinearHidden(),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}

	src, err := slide.NewDatasetSource(train, 512)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := slide.NewTrainer(m, src,
		slide.WithEpochs(*epochs),
		slide.WithOnEpoch(func(e slide.EpochEvent) {
			p1, err := m.Evaluate(test, 400, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %d: loss %.4f, context-P@1 %.3f, active %.2f%% of vocab\n",
				e.Epoch+1, e.Stats.MeanLoss, p1, 100*e.Stats.ActiveFraction(vocab))
		}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Embedding-space sanity check: cosine-nearest neighbours of a few
	// frequent tokens (low ids are the Zipf head).
	fmt.Println("\nembedding nearest neighbours (cosine):")
	for _, tok := range []int{0, 1, 2, 5, 10} {
		nn, sim := nearest(m, tok, vocab)
		fmt.Printf("  token %4d -> token %4d (cos %.3f)\n", tok, nn, sim)
	}
}

// nearest returns the token (≠ tok) whose embedding has the highest cosine
// similarity to tok's. Linear scan: example-scale vocabularies are small.
func nearest(m *slide.Model, tok, vocab int) (int, float64) {
	e := m.Embedding(tok)
	bestSim := math.Inf(-1)
	best := -1
	for v := 0; v < vocab; v++ {
		if v == tok {
			continue
		}
		sim := cosine(e, m.Embedding(v))
		if sim > bestSim {
			bestSim = sim
			best = v
		}
	}
	return best, bestSim
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
