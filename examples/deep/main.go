// Deep SLIDE: extensions beyond the paper's single-hidden-layer
// experiments. Trains a two-hidden-layer SLIDE network with a Trainer
// session (warmup LR schedule, scheduled checkpoints), then compares exact
// inference (full output layer) against LSH-sampled inference (rank only
// the retrieved candidates) on speed and agreement, and resumes from the
// written checkpoint.
//
//	go run ./examples/deep [-scale 0.003] [-epochs 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	scale := flag.Float64("scale", 0.003, "dataset scale")
	epochs := flag.Int("epochs", 4, "training epochs")
	flag.Parse()

	train, test, err := slide.AmazonLike(*scale, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d samples, %d features, %d labels\n",
		train.Len(), train.Features(), train.NumLabels())

	// input → 128 → 64 → output: the stacked layers are dense ReLU; only
	// the wide output layer is LSH-sampled.
	m, err := slide.New(train.Features(), 128, train.NumLabels(),
		slide.WithHiddenStack(64),
		slide.WithDWTA(4, 16),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "slide-deep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "deep.slide")

	// The session: warmup LR over the first 50 steps, a checkpoint every 100
	// steps (plus a final one at session end), per-epoch evaluation.
	src, err := slide.NewDatasetSource(train, 256)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := slide.NewTrainer(m, src,
		slide.WithEpochs(*epochs),
		slide.WithLRSchedule(slide.WarmupLR(1e-3, 50)),
		slide.WithCheckpoints(path, 100),
		slide.WithOnEpoch(func(e slide.EpochEvent) {
			p1, err := m.Evaluate(test, 300, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %d: loss %.4f, P@1 %.3f, active %.2f%%\n",
				e.Epoch+1, e.Stats.MeanLoss, p1, 100*e.Stats.ActiveFraction(train.NumLabels()))
		}))
	if err != nil {
		log.Fatal(err)
	}
	report, err := trainer.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %d steps in %.2fs (%s), last checkpoint at step %d\n",
		report.Steps, report.TrainTime.Seconds(), report.Reason, report.LastCheckpoint)

	// Exact vs sampled inference.
	n := min(500, test.Len())
	var exactTime, sampledTime time.Duration
	agree := 0
	for i := 0; i < n; i++ {
		s := test.Sample(i)
		t0 := time.Now()
		exact, err := m.Predict(s.Indices, s.Values, 1)
		if err != nil {
			log.Fatal(err)
		}
		exactTime += time.Since(t0)
		t0 = time.Now()
		sampled, err := m.PredictSampled(s.Indices, s.Values, 1)
		if err != nil {
			log.Fatal(err)
		}
		sampledTime += time.Since(t0)
		if len(exact) > 0 && len(sampled) > 0 && exact[0] == sampled[0] {
			agree++
		}
	}
	fmt.Printf("\ninference over %d samples:\n", n)
	fmt.Printf("  exact   (all %d logits): %8.1fµs/sample\n",
		train.NumLabels(), float64(exactTime.Microseconds())/float64(n))
	fmt.Printf("  sampled (LSH retrieve):  %8.1fµs/sample, top-1 agreement %.1f%%\n",
		float64(sampledTime.Microseconds())/float64(n), 100*float64(agree)/float64(n))

	// Resume from the session's checkpoint.
	back, err := slide.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := back.Evaluate(test, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint reloaded from %s: P@1 %.3f at step %d\n",
		filepath.Base(path), p1, back.Steps())
}
