// Deep SLIDE: extensions beyond the paper's single-hidden-layer
// experiments. Trains a two-hidden-layer SLIDE network, then compares
// exact inference (full output layer) against LSH-sampled inference
// (rank only the retrieved candidates) on speed and agreement, and shows
// checkpointing.
//
//	go run ./examples/deep [-scale 0.003] [-epochs 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	scale := flag.Float64("scale", 0.003, "dataset scale")
	epochs := flag.Int("epochs", 4, "training epochs")
	flag.Parse()

	train, test, err := slide.AmazonLike(*scale, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d samples, %d features, %d labels\n",
		train.Len(), train.Features(), train.NumLabels())

	// input → 128 → 64 → output: the stacked layers are dense ReLU; only
	// the wide output layer is LSH-sampled.
	m, err := slide.New(train.Features(), 128, train.NumLabels(),
		slide.WithHiddenStack(64),
		slide.WithDWTA(4, 16),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	for e := 1; e <= *epochs; e++ {
		st, err := m.TrainEpoch(train, 256)
		if err != nil {
			log.Fatal(err)
		}
		p1, err := m.Evaluate(test, 300, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: loss %.4f, P@1 %.3f, active %.2f%%\n",
			e, st.MeanLoss, p1, 100*st.ActiveFraction(train.NumLabels()))
	}

	// Exact vs sampled inference.
	n := min(500, test.Len())
	var exactTime, sampledTime time.Duration
	agree := 0
	for i := 0; i < n; i++ {
		s := test.Sample(i)
		t0 := time.Now()
		exact := m.Predict(s.Indices, s.Values, 1)
		exactTime += time.Since(t0)
		t0 = time.Now()
		sampled, err := m.PredictSampled(s.Indices, s.Values, 1)
		if err != nil {
			log.Fatal(err)
		}
		sampledTime += time.Since(t0)
		if len(exact) > 0 && len(sampled) > 0 && exact[0] == sampled[0] {
			agree++
		}
	}
	fmt.Printf("\ninference over %d samples:\n", n)
	fmt.Printf("  exact   (all %d logits): %8.1fµs/sample\n",
		train.NumLabels(), float64(exactTime.Microseconds())/float64(n))
	fmt.Printf("  sampled (LSH retrieve):  %8.1fµs/sample, top-1 agreement %.1f%%\n",
		float64(sampledTime.Microseconds())/float64(n), 100*float64(agree)/float64(n))

	// Checkpoint round trip.
	dir, err := os.MkdirTemp("", "slide-deep")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "deep.slide")
	if err := m.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	back, err := slide.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := back.Evaluate(test, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpoint reloaded from %s: P@1 %.3f at step %d\n",
		filepath.Base(path), p1, back.Steps())
}
