// Ablation walkthrough: measures, on one workload, the individual effect of
// each optimization the paper adds to SLIDE — vectorized kernels (§4.2),
// memory layout (§4.1), and the BF16 modes (§4.4; software-emulated here,
// so it demonstrates the accuracy behaviour rather than a host speedup).
//
//	go run ./examples/ablation [-scale 0.003] [-epochs 2]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/slide-cpu/slide/slide"
)

type variant struct {
	name    string
	kernels slide.KernelMode
	opts    []slide.Option
}

func main() {
	scale := flag.Float64("scale", 0.003, "dataset scale")
	epochs := flag.Int("epochs", 2, "epochs per variant")
	flag.Parse()

	train, test, err := slide.AmazonLike(*scale, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d samples, %d features, %d labels\n\n",
		train.Len(), train.Features(), train.NumLabels())

	base := []slide.Option{
		slide.WithDWTA(4, 16),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(13),
	}
	// VectorKernels resolves to the best tier the host supports (AVX-512 or
	// AVX2 assembly where CPUID reports it, portable Go elsewhere); the
	// labels report which tier actually ran via slide.KernelInfo().
	slide.SetKernelMode(slide.VectorKernels)
	fmt.Printf("host kernel tiers: %v\n\n", slide.AvailableKernelModes())
	vec := "optimized (" + slide.KernelInfo() + " kernels, coalesced, fp32)"
	variants := []variant{
		{vec, slide.VectorKernels,
			append([]slide.Option{slide.WithMemoryLayout(slide.Coalesced)}, base...)},
		{"no vectorization", slide.ScalarKernels,
			append([]slide.Option{slide.WithMemoryLayout(slide.Coalesced)}, base...)},
		{"fragmented parameters", slide.VectorKernels,
			append([]slide.Option{slide.WithMemoryLayout(slide.Fragmented)}, base...)},
		{"bf16 activations", slide.VectorKernels,
			append([]slide.Option{slide.WithPrecision(slide.BF16Activations)}, base...)},
		{"bf16 weights+activations", slide.VectorKernels,
			append([]slide.Option{slide.WithPrecision(slide.BF16Full)}, base...)},
	}

	fmt.Printf("%-38s %10s %8s\n", "variant", "s/epoch", "P@1")
	var baseline float64
	for i, v := range variants {
		slide.SetKernelMode(v.kernels)
		m, err := slide.New(train.Features(), 128, train.NumLabels(), v.opts...)
		if err != nil {
			log.Fatal(err)
		}
		src, err := slide.NewDatasetSource(train, 256)
		if err != nil {
			log.Fatal(err)
		}
		trainer, err := slide.NewTrainer(m, src, slide.WithEpochs(*epochs))
		if err != nil {
			log.Fatal(err)
		}
		report, err := trainer.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		perEpoch := report.TrainTime.Seconds() / float64(*epochs)
		p1, err := m.Evaluate(test, 300, 1)
		if err != nil {
			log.Fatal(err)
		}
		suffix := ""
		if i == 0 {
			baseline = perEpoch
		} else {
			suffix = fmt.Sprintf("  (%.2fx vs optimized)", perEpoch/baseline)
		}
		fmt.Printf("%-38s %10.2f %8.3f%s\n", v.name, perEpoch, p1, suffix)
	}
	slide.SetKernelMode(slide.VectorKernels)

	fmt.Println("\nnotes: software BF16 adds conversion cost on this host — on AVX512-BF16")
	fmt.Println("hardware it is a speedup (paper Table 3); accuracy parity reproduces here.")
}
