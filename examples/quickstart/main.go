// Quickstart: train a SLIDE model on a small synthetic extreme-
// classification workload with a Trainer session and evaluate Precision@1.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	// A scaled-down Amazon-670K-like dataset: sparse features, Zipfian
	// multi-label targets, planted structure so the task is learnable.
	train, test, err := slide.AmazonLike(0.002, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples, %d features, %d labels\n",
		train.Len(), test.Len(), train.Features(), train.NumLabels())

	// A SLIDE model: the wide output layer is sampled with DWTA hashing, so
	// each gradient step touches a tiny fraction of the 'softmax'.
	m, err := slide.New(train.Features(), 128, train.NumLabels(),
		slide.WithDWTA(4, 16),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// A training session: 5 epochs over the in-memory dataset, evaluating
	// after every epoch from the OnEpoch hook.
	src, err := slide.NewDatasetSource(train, 256)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := slide.NewTrainer(m, src,
		slide.WithEpochs(5),
		slide.WithOnEpoch(func(e slide.EpochEvent) {
			p1, err := m.Evaluate(test, 300, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("epoch %d: loss %.4f, P@1 %.3f, active %.1f/%d outputs (%.2f%%)\n",
				e.Epoch+1, e.Stats.MeanLoss, p1, e.Stats.MeanActive, train.NumLabels(),
				100*e.Stats.ActiveFraction(train.NumLabels()))
		}))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Predict top-3 labels for one test sample.
	s := test.Sample(0)
	pred, err := m.Predict(s.Indices, s.Values, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample 0: true labels %v, predicted top-3 %v\n", s.Labels, pred)
}
