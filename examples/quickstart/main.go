// Quickstart: train a SLIDE model on a small synthetic extreme-
// classification workload and evaluate Precision@1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	// A scaled-down Amazon-670K-like dataset: sparse features, Zipfian
	// multi-label targets, planted structure so the task is learnable.
	train, test, err := slide.AmazonLike(0.002, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples, %d features, %d labels\n",
		train.Len(), test.Len(), train.Features(), train.NumLabels())

	// A SLIDE model: the wide output layer is sampled with DWTA hashing, so
	// each gradient step touches a tiny fraction of the 'softmax'.
	m, err := slide.New(train.Features(), 128, train.NumLabels(),
		slide.WithDWTA(4, 16),
		slide.WithLearningRate(1e-3),
		slide.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	for epoch := 1; epoch <= 5; epoch++ {
		st, err := m.TrainEpoch(train, 256)
		if err != nil {
			log.Fatal(err)
		}
		p1, err := m.Evaluate(test, 300, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: loss %.4f, P@1 %.3f, active %.1f/%d outputs (%.2f%%)\n",
			epoch, st.MeanLoss, p1, st.MeanActive, train.NumLabels(),
			100*st.ActiveFraction(train.NumLabels()))
	}

	// Predict top-3 labels for one test sample.
	s := test.Sample(0)
	pred := m.Predict(s.Indices, s.Values, 3)
	fmt.Printf("sample 0: true labels %v, predicted top-3 %v\n", s.Labels, pred)
}
