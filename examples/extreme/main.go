// Extreme classification: the paper's headline scenario. Trains SLIDE and
// the dense full-softmax baseline on the same Amazon-670K-like workload and
// compares wall-clock time-to-accuracy — the Figure 6 story at example
// scale.
//
//	go run ./examples/extreme [-scale 0.005] [-epochs 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"github.com/slide-cpu/slide/slide"
)

func main() {
	scale := flag.Float64("scale", 0.005, "dataset scale relative to the paper's Amazon-670K")
	epochs := flag.Int("epochs", 4, "training epochs")
	flag.Parse()

	train, test, err := slide.AmazonLike(*scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Amazon-670K-like @ scale %g: %d train samples, %d features, %d labels\n\n",
		*scale, train.Len(), train.Features(), train.NumLabels())

	type system struct {
		name string
		opts []slide.Option
	}
	systems := []system{
		{"SLIDE (DWTA)", []slide.Option{
			slide.WithDWTA(4, 16),
			slide.WithLearningRate(1e-3),
			slide.WithSeed(7),
		}},
		{"Full softmax", []slide.Option{
			slide.WithFullSoftmax(),
			slide.WithLearningRate(1e-3),
			slide.WithSeed(7),
		}},
	}

	for _, sys := range systems {
		m, err := slide.New(train.Features(), 128, train.NumLabels(), sys.opts...)
		if err != nil {
			log.Fatal(err)
		}
		src, err := slide.NewDatasetSource(train, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", sys.name)
		trainer, err := slide.NewTrainer(m, src,
			slide.WithEpochs(*epochs),
			slide.WithOnEpoch(func(e slide.EpochEvent) {
				p1, err := m.Evaluate(test, 300, 1)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  epoch %d: %7.2fs  loss %.4f  P@1 %.3f  active %.2f%%\n",
					e.Epoch+1, e.TrainTime.Seconds(), e.Stats.MeanLoss, p1,
					100*e.Stats.ActiveFraction(train.NumLabels()))
			}))
		if err != nil {
			log.Fatal(err)
		}
		report, err := trainer.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  total %0.2fs (%.2fs/epoch)\n\n", report.TrainTime.Seconds(),
			report.TrainTime.Seconds()/float64(*epochs))
	}
	fmt.Println("SLIDE reaches comparable P@1 touching a few percent of the output layer —")
	fmt.Println("scale this up (paper: 670K labels) and the wall-clock gap becomes Table 2.")
}
