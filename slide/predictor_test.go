package slide

import (
	"sync"
	"testing"
)

// TestPredictorConcurrentWithTraining is the serving-API acceptance test:
// snapshot mid-training, then hammer the Predictor from 8+ goroutines
// (Predict, PredictBatch, PredictSampled, Evaluate) while TrainBatch keeps
// running — and re-snapshotting — on the source model. Run under -race this
// proves the snapshot shares no mutable state with training. The model uses
// locked gradients so the HOGWILD benign races inside training itself don't
// trip the detector (the same convention the harness race tests use).
func TestPredictorConcurrentWithTraining(t *testing.T) {
	train, test, err := AmazonLike(1e-9, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(train.Features(), 16, train.NumLabels(),
		WithDWTA(2, 6),
		WithLearningRate(0.01),
		WithWorkers(2),
		WithLockedGradients(),
		WithRebuildSchedule(5, 1.0), // rebuild often: stress table cloning
		WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		t.Fatal(err)
	}
	p := m.Snapshot()

	stop := make(chan struct{})
	trainerDone := make(chan error, 1)
	go func() {
		// Trainer: keeps stepping the model and periodically takes fresh
		// snapshots (Snapshot and TrainBatch stay on one goroutine — that is
		// the documented contract; the *serving* side is what scales out).
		for i := 0; ; i++ {
			select {
			case <-stop:
				trainerDone <- nil
				return
			default:
			}
			if _, err := m.TrainEpoch(train.Head(128), 64); err != nil {
				trainerDone <- err
				return
			}
			if i%2 == 1 {
				fresh := m.Snapshot()
				s := test.Sample(i % test.Len())
				if got := fresh.Predict(s.Indices, s.Values, 2); len(got) != 2 {
					trainerDone <- nil
					return
				}
			}
		}
	}()

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				s := test.Sample((g*31 + iter) % test.Len())
				got := p.Predict(s.Indices, s.Values, 3)
				if len(got) != 3 {
					t.Errorf("goroutine %d: Predict returned %v", g, got)
					return
				}
				switch iter % 5 {
				case 0:
					batch := []Sample{s, test.Sample((g + iter + 1) % test.Len())}
					res, err := p.PredictBatch(batch, 2)
					if err != nil || len(res) != 2 {
						t.Errorf("goroutine %d: PredictBatch: %v %v", g, res, err)
						return
					}
				case 1:
					if _, err := p.PredictSampled(s.Indices, s.Values, 2); err != nil {
						t.Errorf("goroutine %d: PredictSampled: %v", g, err)
						return
					}
				case 2:
					if _, err := p.Evaluate(test.Head(16), 16, 1); err != nil {
						t.Errorf("goroutine %d: Evaluate: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-trainerDone; err != nil {
		t.Fatal(err)
	}
}

// TestPredictorEquivalence pins the compatibility contract on a frozen
// model: the snapshot path and the classic Model path produce bit-identical
// scores, top-k lists, and evaluation numbers.
func TestPredictorEquivalence(t *testing.T) {
	train, test, err := AmazonLike(1e-9, 13)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(train.Features(), 24, train.NumLabels(),
		WithDWTA(3, 8), WithLearningRate(0.01), WithWorkers(2),
		WithLockedGradients(), WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.TrainEpoch(train, 64); err != nil {
			t.Fatal(err)
		}
	}
	p := m.Snapshot()
	if !p.Sampled() {
		t.Error("LSH snapshot claims no tables")
	}
	if p.NumLabels() != train.NumLabels() {
		t.Errorf("NumLabels = %d, want %d", p.NumLabels(), train.NumLabels())
	}

	mScores := make([]float32, train.NumLabels())
	pScores := make([]float32, train.NumLabels())
	samples := make([]Sample, 0, 32)
	for i := 0; i < min(32, test.Len()); i++ {
		s := test.Sample(i)
		samples = append(samples, s)
		a, err := m.Predict(s.Indices, s.Values, 5)
		if err != nil {
			t.Fatal(err)
		}
		b := p.Predict(s.Indices, s.Values, 5)
		if len(a) != len(b) {
			t.Fatalf("sample %d: lengths %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sample %d: Predictor %v != Model %v", i, b, a)
			}
		}
		if err := m.Scores(s.Indices, s.Values, mScores); err != nil {
			t.Fatal(err)
		}
		p.Scores(s.Indices, s.Values, pScores)
		for j := range mScores {
			if mScores[j] != pScores[j] {
				t.Fatalf("sample %d: score[%d] %g != %g", i, j, pScores[j], mScores[j])
			}
		}
	}

	// Batch path agrees with the single path.
	batch, err := p.PredictBatch(samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range samples {
		single := p.Predict(s.Indices, s.Values, 5)
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("sample %d: batch %v != single %v", i, batch[i], single)
			}
		}
	}

	// Parallel evaluation returns exactly the sequential Model number.
	a, err := m.Evaluate(test, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Evaluate(test, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Evaluate: Predictor %.6f != Model %.6f", b, a)
	}
}

func TestPredictorErrors(t *testing.T) {
	train, _, err := AmazonLike(1e-9, 19)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := New(train.Features(), 8, train.NumLabels(),
		WithFullSoftmax(), WithWorkers(1), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	p := dense.Snapshot()
	s := train.Sample(0)
	if _, err := p.PredictSampled(s.Indices, s.Values, 1); err != ErrNoSampling {
		t.Errorf("PredictSampled on dense snapshot: %v, want ErrNoSampling", err)
	}
	// The documented fallback: callers that get ErrNoSampling use Predict.
	if got := p.Predict(s.Indices, s.Values, 2); len(got) != 2 {
		t.Errorf("fallback Predict returned %v", got)
	}
	if _, err := p.Evaluate(nil, 5, 1); err != ErrEmptyBatch {
		t.Errorf("nil dataset: %v", err)
	}
	if _, err := p.PredictBatch([]Sample{{Indices: []int32{1, 2}, Values: []float32{1}}}, 1); err == nil {
		t.Error("mismatched sample accepted")
	}
}
