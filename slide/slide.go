// Package slide is the public API of the SLIDE-on-CPU reproduction: a
// locality-sensitive-hashing based sparse training engine for very wide
// classification and embedding networks (Chen et al. 2019), with the
// MLSys 2021 optimizations — vectorized kernels, coalesced memory layouts,
// BF16 quantization modes, and HOGWILD-style asynchronous data parallelism
// (Daghaghi et al., "Accelerating SLIDE Deep Learning on Modern CPUs").
//
// Quick start — a training session with evaluation, checkpoints, and live
// snapshot publication:
//
//	train, test, _ := slide.AmazonLike(0.01, 42)
//	m, _ := slide.New(train.Features(), 128, train.NumLabels(),
//		slide.WithDWTA(4, 16),
//		slide.WithLearningRate(1e-4))
//
//	src, _ := slide.NewDatasetSource(train, 256) // or NewFileSource (streaming)
//	t, _ := slide.NewTrainer(m, src,
//		slide.WithEpochs(3),
//		slide.WithCheckpoints("model.slide", 1000), // atomic write + resume
//		slide.WithOnEpoch(func(e slide.EpochEvent) {
//			p1, _ := m.Evaluate(test, 500, 1)
//			fmt.Printf("epoch %d: loss %.4f P@1 %.3f\n", e.Epoch+1, e.Stats.MeanLoss, p1)
//		}))
//	report, _ := t.Run(ctx) // ctx cancellation is a graceful stop
//
//	// Freeze the current weights into an immutable Predictor and serve it
//	// from any number of goroutines — even while training continues; with
//	// WithSnapshots(n, serving.Publisher(mgr)) a session publishes fresh
//	// versions into the serving pipeline on schedule.
//	p := m.Snapshot()
//	s := test.Sample(0)
//	top := p.Predict(s.Indices, s.Values, 5)              // exact top-5
//	approx, _ := p.PredictSampled(s.Indices, s.Values, 5) // sub-linear LSH inference
//	_, _, _ = report, top, approx
//
// The pre-session entry points remain supported: TrainEpoch/TrainBatch are
// thin wrappers over the same engine (single-worker results bit-identical to
// the historical loop). See the examples/ directory for full programs,
// cmd/slide-train for the training CLI (streaming files, LR schedules,
// checkpoint schedules, graceful cancellation), cmd/slide-serve for the HTTP
// serving front end, and cmd/slide-bench for the paper's experiment harness.
package slide

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Precision selects the training quantization mode (§4.4 of the paper).
type Precision int

const (
	// FP32 trains in float32 throughout.
	FP32 Precision = iota
	// BF16Activations keeps parameters FP32 but carries activations in
	// bfloat16.
	BF16Activations
	// BF16Full stores weights and activations in bfloat16 (FP32 ADAM
	// moments).
	BF16Full
)

// MemoryLayout selects the parameter placement (§4.1 of the paper).
type MemoryLayout int

const (
	// Coalesced reserves one contiguous block per layer (optimized).
	Coalesced MemoryLayout = iota
	// Fragmented allocates every weight vector separately (naive SLIDE,
	// kept for ablation).
	Fragmented
)

// KernelMode selects the compute-kernel implementation (§4.2).
type KernelMode int

const (
	// VectorKernels selects the best vectorized tier the host supports:
	// hand-written AVX-512 or AVX2 assembly on CPUs that report the
	// features (the default, chosen automatically at startup), or the
	// portable 16-lane unrolled Go kernels elsewhere.
	VectorKernels KernelMode = iota
	// ScalarKernels are naive loops (the "-no-avx" ablation).
	ScalarKernels
	// PortableKernels forces the portable Go vector tier even when the
	// host has the assembly tiers (cross-arch reference measurements).
	PortableKernels
	// AVX2Kernels forces the 8-lane ymm assembly tier (clamped down the
	// chain when the host lacks AVX2+FMA).
	AVX2Kernels
	// AVX512Kernels forces the 16-lane zmm assembly tier (clamped down the
	// chain when the host lacks AVX-512).
	AVX512Kernels
)

// String implements fmt.Stringer, for startup logs and flag round-trips.
func (m KernelMode) String() string {
	switch m {
	case VectorKernels:
		return "vector"
	case ScalarKernels:
		return "scalar"
	case PortableKernels:
		return "portable"
	case AVX2Kernels:
		return "avx2"
	case AVX512Kernels:
		return "avx512"
	default:
		return "unknown"
	}
}

// AvailableKernelModes returns every kernel mode this host can execute,
// fastest tier first — what serving and training front ends log at startup
// so deployments can see which tiers CPUID actually enabled, without
// reaching into internal packages. VectorKernels (the auto mode) is omitted:
// it always resolves to the first entry.
func AvailableKernelModes() []KernelMode {
	var out []KernelMode
	for _, m := range simd.AvailableModes() {
		switch m {
		case simd.AVX512:
			out = append(out, AVX512Kernels)
		case simd.AVX2:
			out = append(out, AVX2Kernels)
		case simd.Vector:
			out = append(out, PortableKernels)
		case simd.Scalar:
			out = append(out, ScalarKernels)
		}
	}
	return out
}

// SetKernelMode switches the process-global kernel implementation. Do not
// flip it while models are training. The SLIDE_KERNEL_MODE environment
// variable (scalar|vector|avx2|avx512) selects the startup mode; this
// call overrides it. Unsupported assembly tiers clamp down the chain
// (avx512 → avx2 → portable).
func SetKernelMode(m KernelMode) {
	switch m {
	case ScalarKernels:
		simd.SetMode(simd.Scalar)
	case PortableKernels:
		simd.SetMode(simd.Vector)
	case AVX2Kernels:
		simd.SetMode(simd.AVX2)
	case AVX512Kernels:
		simd.SetMode(simd.AVX512)
	default:
		simd.SetMode(simd.Best())
	}
}

// KernelInfo reports the active kernel tier ("avx512", "avx2", "vector" or
// "scalar"), for logging and benchmark metadata.
func KernelInfo() string { return simd.CurrentMode().String() }

// Sample is one training example: a sparse feature vector (sorted, unique
// indices) and its label set.
type Sample struct {
	Indices []int32
	Values  []float32
	Labels  []int32
}

// config collects option values before validation.
type config struct {
	net network.Config
}

// Option configures New.
type Option func(*config)

// WithDWTA samples the output layer with densified winner-take-all hashing
// using k hashes per table and l tables (the paper's choice for extreme
// classification).
func WithDWTA(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.DWTA
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithSimHash samples the output layer with signed-random-projection
// hashing (the paper's choice for word2vec/Text8).
func WithSimHash(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.SimHash
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithDOPH samples the output layer with densified one-permutation
// minhashing, suited to binary/set-valued activations.
func WithDOPH(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.DOPH
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithFullSoftmax disables LSH sampling: every output neuron is active for
// every sample (the dense baseline configuration).
func WithFullSoftmax() Option {
	return func(c *config) { c.net.NoSampling = true }
}

// WithUniformSampling replaces LSH retrieval with uniform random negative
// sampling at the same active-set budget — the ablation isolating what
// adaptive, input-dependent sampling contributes.
func WithUniformSampling() Option {
	return func(c *config) { c.net.UniformSampling = true }
}

// WithLearningRate sets the ADAM learning rate (default 1e-4, §5.3).
func WithLearningRate(lr float64) Option {
	return func(c *config) { c.net.LR = lr }
}

// WithAdam sets the ADAM moment/epsilon hyperparameters.
func WithAdam(beta1, beta2, eps float64) Option {
	return func(c *config) { c.net.Beta1, c.net.Beta2, c.net.Eps = beta1, beta2, eps }
}

// WithPrecision selects the quantization mode (default FP32).
func WithPrecision(p Precision) Option {
	return func(c *config) {
		switch p {
		case BF16Activations:
			c.net.Precision = layer.BF16Act
		case BF16Full:
			c.net.Precision = layer.BF16Both
		default:
			c.net.Precision = layer.FP32
		}
	}
}

// WithMemoryLayout selects the parameter placement (default Coalesced).
func WithMemoryLayout(m MemoryLayout) Option {
	return func(c *config) {
		if m == Fragmented {
			c.net.Placement = layer.Scattered
		} else {
			c.net.Placement = layer.Contiguous
		}
	}
}

// WithWorkers sets the HOGWILD worker count (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.net.Workers = n }
}

// WithShards partitions the output layer into n contiguous shards, each
// owning its rows' LSH tables, active-set budget, and RNG stream, and
// replaces the HOGWILD trainer with the deterministic scatter-gather
// engine: batches run as barrier-separated phases striped over the worker
// pool, so trained weights, checkpoints, and deltas are bit-identical for
// any WithWorkers value. The shard count is a model property (it is
// checkpointed and fingerprinted); the worker count remains an execution
// resource. Requires LSH sampling.
func WithShards(n int) Option {
	return func(c *config) { c.net.Shards = n }
}

// WithLockedGradients replaces HOGWILD's benign-race gradient accumulation
// with striped locks — slower but race-detector clean and deterministic
// with one worker.
func WithLockedGradients() Option {
	return func(c *config) { c.net.Locked = true }
}

// WithActiveSet bounds LSH sampling: the active set is topped up to min with
// random neurons and capped at max (0 = uncapped). True labels always stay
// active.
func WithActiveSet(min, max int) Option {
	return func(c *config) { c.net.MinActive, c.net.MaxActive = min, max }
}

// BucketPolicy selects how a full LSH hash bucket absorbs a new insertion.
type BucketPolicy int

const (
	// FIFO overwrites the oldest entry (SLIDE's default policy).
	FIFO BucketPolicy = iota
	// Reservoir keeps a uniform sample of everything ever inserted.
	Reservoir
)

// String implements fmt.Stringer.
func (p BucketPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Reservoir:
		return "reservoir"
	default:
		return "unknown"
	}
}

// lshPolicy maps the public policy onto the internal lsh constant.
func (p BucketPolicy) lshPolicy() lsh.BucketPolicy {
	if p == Reservoir {
		return lsh.Reservoir
	}
	return lsh.FIFO
}

// WithBuckets sets hash-table bucket capacity and the eviction policy a
// full bucket applies (default FIFO).
func WithBuckets(capacity int, policy BucketPolicy) Option {
	return func(c *config) {
		c.net.BucketCap = capacity
		c.net.BucketPolicy = policy.lshPolicy()
	}
}

// WithRebuildSchedule sets the initial hash-table rebuild period in batches
// and its multiplicative growth (SLIDE's exponential backoff).
func WithRebuildSchedule(every int, growth float64) Option {
	return func(c *config) { c.net.RebuildEvery = every; c.net.RebuildGrowth = growth }
}

// WithLinearHidden makes the hidden layer linear (identity activation), the
// word2vec configuration; default is ReLU.
func WithLinearHidden() Option {
	return func(c *config) { c.net.HiddenActivation = layer.Linear }
}

// WithHiddenStack inserts additional dense ReLU hidden layers between the
// first hidden layer and the sampled output: the architecture becomes
// input → hidden → dims... → output. The paper evaluates single-hidden
// networks; deeper stacks are the natural SLIDE extension.
func WithHiddenStack(dims ...int) Option {
	return func(c *config) { c.net.HiddenLayers = append([]int(nil), dims...) }
}

// WithSeed fixes all randomness (initialization, hashing, sampling).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.net.Seed = seed }
}

// Model is a trainable SLIDE network. Its inference methods (Predict,
// PredictSampled, Scores, Evaluate) are thin wrappers over a private
// predictor reading the live weights — convenient between training calls,
// but not safe concurrently with them. Snapshot freezes the weights into a
// Predictor that serves any number of goroutines while training continues.
type Model struct {
	net    *network.Network
	scores []float32
}

// New builds a model with the given layer sizes. Without a sampling option
// (WithDWTA / WithSimHash / WithFullSoftmax) it defaults to DWTA with
// K=6, L=50.
func New(inputDim, hiddenDim, outputDim int, opts ...Option) (*Model, error) {
	c := config{net: network.Config{
		InputDim:  inputDim,
		HiddenDim: hiddenDim,
		OutputDim: outputDim,
		Hash:      network.DWTA,
		K:         6,
		L:         50,
	}}
	for _, o := range opts {
		o(&c)
	}
	net, err := network.New(&c.net)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return &Model{net: net, scores: make([]float32, c.net.OutputDim)}, nil
}

// TrainStats reports one training call.
type TrainStats struct {
	// Samples processed.
	Samples int
	// MeanLoss is the mean sampled-softmax cross-entropy per sample.
	MeanLoss float64
	// MeanActive is the mean active-set size per sample — the sparsity the
	// LSH sampling achieved (equals the output size under full softmax).
	MeanActive float64
}

// ErrEmptyBatch is returned when a training call receives no samples.
var ErrEmptyBatch = errors.New("slide: empty batch")

// ErrBadSample is the sentinel every *BadSampleError matches via errors.Is:
// a sparse input that would otherwise panic deep inside the kernels
// (mismatched lengths, unsorted or duplicate indices, out-of-range feature
// or label ids) is rejected at the API boundary instead.
var ErrBadSample = errors.New("slide: bad sample")

// BadSampleError reports which sample of a call failed validation and why.
type BadSampleError struct {
	// Sample is the index of the offending sample within the call's slice
	// (0 for single-sample calls).
	Sample int
	// Err describes the defect.
	Err error
}

// Error implements error.
func (e *BadSampleError) Error() string {
	return fmt.Sprintf("slide: bad sample %d: %v", e.Sample, e.Err)
}

// Unwrap exposes the underlying defect.
func (e *BadSampleError) Unwrap() error { return e.Err }

// Is matches ErrBadSample.
func (e *BadSampleError) Is(target error) bool { return target == ErrBadSample }

// validateSample checks one sample's structure (paired lengths, strictly
// ascending indices) and ranges (features < dim, labels < labelDim; negative
// dims skip the respective range check).
func validateSample(s Sample, dim, labelDim int) error {
	if len(s.Indices) != len(s.Values) {
		return fmt.Errorf("%d indices but %d values", len(s.Indices), len(s.Values))
	}
	if err := (sparse.Vector{Indices: s.Indices, Values: s.Values}).Validate(dim); err != nil {
		return err
	}
	if labelDim >= 0 {
		for _, y := range s.Labels {
			if y < 0 || int(y) >= labelDim {
				return fmt.Errorf("label %d out of range [0,%d)", y, labelDim)
			}
		}
	}
	return nil
}

// TrainBatch runs one HOGWILD gradient step over the samples. Invalid
// samples are rejected with a *BadSampleError (errors.Is ErrBadSample)
// naming the offending index.
func (m *Model) TrainBatch(samples []Sample) (TrainStats, error) {
	if len(samples) == 0 {
		return TrainStats{}, ErrEmptyBatch
	}
	cfg := m.net.Config()
	var b sparse.Builder
	for i, s := range samples {
		if err := validateSample(s, cfg.InputDim, cfg.OutputDim); err != nil {
			return TrainStats{}, &BadSampleError{Sample: i, Err: err}
		}
		b.Add(s.Indices, s.Values, s.Labels)
	}
	batch, err := b.CSR()
	if err != nil {
		return TrainStats{}, err
	}
	st := m.net.TrainBatch(batch)
	return batchStats(st), nil
}

func batchStats(st network.BatchStats) TrainStats {
	out := TrainStats{Samples: st.Samples}
	if st.Samples > 0 {
		out.MeanLoss = st.Loss / float64(st.Samples)
		out.MeanActive = float64(st.ActiveSum) / float64(st.Samples)
	}
	return out
}

// TrainEpoch runs one shuffled epoch over the dataset in batches of the
// given size and returns aggregate statistics. It is a thin wrapper over a
// one-epoch Trainer session (the shuffle is seeded with the optimizer step,
// so every epoch sees a fresh permutation while the overall run stays
// reproducible — and results are bit-identical to the historical epoch
// loop). Use a Trainer directly for cancellation, hooks, schedules, or
// streaming sources.
func (m *Model) TrainEpoch(train *Dataset, batchSize int) (TrainStats, error) {
	if train == nil || train.Len() == 0 {
		return TrainStats{}, ErrEmptyBatch
	}
	src, err := NewDatasetSource(train, batchSize)
	if err != nil {
		return TrainStats{}, err
	}
	t, err := NewTrainer(m, src, WithEpochs(1))
	if err != nil {
		return TrainStats{}, err
	}
	rep, err := t.Run(context.Background())
	return rep.Stats, err
}

// ErrNoSampling is returned by PredictSampled on models built without LSH
// sampling (WithFullSoftmax / WithUniformSampling): there is no candidate
// structure to retrieve from, and callers should fall back to the exact
// Predict.
var ErrNoSampling = errors.New("slide: PredictSampled requires an LSH-sampled model")

// Predict returns the top-k label ids for a sparse input, best first. It
// runs the full output layer (exact). Invalid inputs (unsorted, duplicate
// or out-of-range indices, mismatched lengths) return a *BadSampleError.
// Like all Model inference it reads the live weights and is not safe
// concurrently with training — use Snapshot for a concurrency-safe
// Predictor.
func (m *Model) Predict(indices []int32, values []float32, k int) ([]int32, error) {
	if err := validateSample(Sample{Indices: indices, Values: values}, m.net.Config().InputDim, -1); err != nil {
		return nil, &BadSampleError{Err: err}
	}
	return m.net.Predict(sparse.Vector{Indices: indices, Values: values}, k, m.scores), nil
}

// PredictSampled returns the top-k label ids ranked over the LSH-retrieved
// candidates only — sub-linear approximate inference. Invalid inputs return
// a *BadSampleError; models built without LSH sampling return ErrNoSampling.
func (m *Model) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	if err := validateSample(Sample{Indices: indices, Values: values}, m.net.Config().InputDim, -1); err != nil {
		return nil, &BadSampleError{Err: err}
	}
	out, err := m.net.PredictSampled(sparse.Vector{Indices: indices, Values: values}, k)
	if err != nil {
		return nil, ErrNoSampling
	}
	return out, nil
}

// Scores writes the full output-layer logits for a sparse input into out
// (len = output dimension). Invalid inputs return a *BadSampleError. Not
// safe to call concurrently with training.
func (m *Model) Scores(indices []int32, values []float32, out []float32) error {
	if err := validateSample(Sample{Indices: indices, Values: values}, m.net.Config().InputDim, -1); err != nil {
		return &BadSampleError{Err: err}
	}
	if len(out) != m.net.Config().OutputDim {
		return fmt.Errorf("slide: Scores buffer has %d entries, output dimension is %d",
			len(out), m.net.Config().OutputDim)
	}
	m.net.Scores(sparse.Vector{Indices: indices, Values: values}, out)
	return nil
}

// Evaluate returns mean Precision@k over (up to) n samples of the dataset.
func (m *Model) Evaluate(test *Dataset, n, k int) (float64, error) {
	if test == nil || test.Len() == 0 {
		return 0, ErrEmptyBatch
	}
	n = min(n, test.Len())
	var sum float64
	for i := 0; i < n; i++ {
		v := test.d.Sample(i)
		m.net.Scores(v, m.scores)
		sum += metrics.PrecisionAtK(m.scores, test.d.LabelsOf(i), k)
	}
	return sum / float64(n), nil
}

// Embedding copies the hidden-layer weight column of input feature i — the
// learned embedding vector in word2vec-style models.
func (m *Model) Embedding(i int) []float32 {
	out := make([]float32, m.net.Config().HiddenDim)
	col := m.net.Hidden().Col(i, out)
	if len(col) > 0 && &col[0] != &out[0] {
		// FP32/BF16Act layouts return a direct view; copy it into the fresh
		// slice. (BF16Both expands straight into out — no second copy.)
		copy(out, col)
	}
	return out
}

// Steps returns the number of optimizer steps applied so far.
func (m *Model) Steps() int64 { return m.net.Step() }

// Save writes a checkpoint (configuration, weights, optimizer state) to w.
// Do not call concurrently with training.
func (m *Model) Save(w io.Writer) error { return m.net.Save(w) }

// SaveFile writes a checkpoint to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("slide: %w", err)
	}
	if err := m.net.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores a model from a checkpoint written by Save. Hash tables are
// rebuilt from the restored weights; training resumes at the saved
// optimizer step.
func Load(r io.Reader) (*Model, error) {
	net, err := network.Load(r, 0)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return &Model{net: net, scores: make([]float32, net.Config().OutputDim)}, nil
}

// LoadFile restores a model from a checkpoint file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ActiveFraction returns MeanActive/outputDim for a stats value — the
// effective sparsity.
func (s TrainStats) ActiveFraction(outputDim int) float64 {
	if outputDim == 0 {
		return 0
	}
	return s.MeanActive / float64(outputDim)
}
