// Package slide is the public API of the SLIDE-on-CPU reproduction: a
// locality-sensitive-hashing based sparse training engine for very wide
// classification and embedding networks (Chen et al. 2019), with the
// MLSys 2021 optimizations — vectorized kernels, coalesced memory layouts,
// BF16 quantization modes, and HOGWILD-style asynchronous data parallelism
// (Daghaghi et al., "Accelerating SLIDE Deep Learning on Modern CPUs").
//
// Quick start — train, snapshot, serve:
//
//	train, test, _ := slide.AmazonLike(0.01, 42)
//	m, _ := slide.New(train.Features(), 128, train.NumLabels(),
//		slide.WithDWTA(4, 16),
//		slide.WithLearningRate(1e-4))
//	for epoch := 0; epoch < 3; epoch++ {
//		m.TrainEpoch(train, 256)
//	}
//	p1, _ := m.Evaluate(test, 500, 1)
//
//	// Freeze the current weights into an immutable Predictor and serve it
//	// from any number of goroutines — even while m keeps training.
//	p := m.Snapshot()
//	go func() { m.TrainEpoch(train, 256) }()
//	s := test.Sample(0)
//	top := p.Predict(s.Indices, s.Values, 5)       // exact top-5
//	approx, _ := p.PredictSampled(s.Indices, s.Values, 5) // sub-linear LSH inference
//	_, _ = top, approx
//
// See the examples/ directory for full programs, cmd/slide-serve for the
// HTTP serving front end, and cmd/slide-bench for the paper's experiment
// harness.
package slide

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Precision selects the training quantization mode (§4.4 of the paper).
type Precision int

const (
	// FP32 trains in float32 throughout.
	FP32 Precision = iota
	// BF16Activations keeps parameters FP32 but carries activations in
	// bfloat16.
	BF16Activations
	// BF16Full stores weights and activations in bfloat16 (FP32 ADAM
	// moments).
	BF16Full
)

// MemoryLayout selects the parameter placement (§4.1 of the paper).
type MemoryLayout int

const (
	// Coalesced reserves one contiguous block per layer (optimized).
	Coalesced MemoryLayout = iota
	// Fragmented allocates every weight vector separately (naive SLIDE,
	// kept for ablation).
	Fragmented
)

// KernelMode selects the compute-kernel implementation (§4.2).
type KernelMode int

const (
	// VectorKernels selects the best vectorized tier the host supports:
	// hand-written AVX-512 or AVX2 assembly on CPUs that report the
	// features (the default, chosen automatically at startup), or the
	// portable 16-lane unrolled Go kernels elsewhere.
	VectorKernels KernelMode = iota
	// ScalarKernels are naive loops (the "-no-avx" ablation).
	ScalarKernels
	// PortableKernels forces the portable Go vector tier even when the
	// host has the assembly tiers (cross-arch reference measurements).
	PortableKernels
)

// SetKernelMode switches the process-global kernel implementation. Do not
// flip it while models are training. The SLIDE_KERNEL_MODE environment
// variable (scalar|vector|avx2|avx512) selects the startup mode; this
// call overrides it.
func SetKernelMode(m KernelMode) {
	switch m {
	case ScalarKernels:
		simd.SetMode(simd.Scalar)
	case PortableKernels:
		simd.SetMode(simd.Vector)
	default:
		simd.SetMode(simd.Best())
	}
}

// KernelInfo reports the active kernel tier ("avx512", "avx2", "vector" or
// "scalar"), for logging and benchmark metadata.
func KernelInfo() string { return simd.CurrentMode().String() }

// Sample is one training example: a sparse feature vector (sorted, unique
// indices) and its label set.
type Sample struct {
	Indices []int32
	Values  []float32
	Labels  []int32
}

// config collects option values before validation.
type config struct {
	net network.Config
}

// Option configures New.
type Option func(*config)

// WithDWTA samples the output layer with densified winner-take-all hashing
// using k hashes per table and l tables (the paper's choice for extreme
// classification).
func WithDWTA(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.DWTA
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithSimHash samples the output layer with signed-random-projection
// hashing (the paper's choice for word2vec/Text8).
func WithSimHash(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.SimHash
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithDOPH samples the output layer with densified one-permutation
// minhashing, suited to binary/set-valued activations.
func WithDOPH(k, l int) Option {
	return func(c *config) {
		c.net.Hash = network.DOPH
		c.net.K, c.net.L = k, l
		c.net.NoSampling = false
	}
}

// WithFullSoftmax disables LSH sampling: every output neuron is active for
// every sample (the dense baseline configuration).
func WithFullSoftmax() Option {
	return func(c *config) { c.net.NoSampling = true }
}

// WithUniformSampling replaces LSH retrieval with uniform random negative
// sampling at the same active-set budget — the ablation isolating what
// adaptive, input-dependent sampling contributes.
func WithUniformSampling() Option {
	return func(c *config) { c.net.UniformSampling = true }
}

// WithLearningRate sets the ADAM learning rate (default 1e-4, §5.3).
func WithLearningRate(lr float64) Option {
	return func(c *config) { c.net.LR = lr }
}

// WithAdam sets the ADAM moment/epsilon hyperparameters.
func WithAdam(beta1, beta2, eps float64) Option {
	return func(c *config) { c.net.Beta1, c.net.Beta2, c.net.Eps = beta1, beta2, eps }
}

// WithPrecision selects the quantization mode (default FP32).
func WithPrecision(p Precision) Option {
	return func(c *config) {
		switch p {
		case BF16Activations:
			c.net.Precision = layer.BF16Act
		case BF16Full:
			c.net.Precision = layer.BF16Both
		default:
			c.net.Precision = layer.FP32
		}
	}
}

// WithMemoryLayout selects the parameter placement (default Coalesced).
func WithMemoryLayout(m MemoryLayout) Option {
	return func(c *config) {
		if m == Fragmented {
			c.net.Placement = layer.Scattered
		} else {
			c.net.Placement = layer.Contiguous
		}
	}
}

// WithWorkers sets the HOGWILD worker count (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.net.Workers = n }
}

// WithLockedGradients replaces HOGWILD's benign-race gradient accumulation
// with striped locks — slower but race-detector clean and deterministic
// with one worker.
func WithLockedGradients() Option {
	return func(c *config) { c.net.Locked = true }
}

// WithActiveSet bounds LSH sampling: the active set is topped up to min with
// random neurons and capped at max (0 = uncapped). True labels always stay
// active.
func WithActiveSet(min, max int) Option {
	return func(c *config) { c.net.MinActive, c.net.MaxActive = min, max }
}

// BucketPolicy selects how a full LSH hash bucket absorbs a new insertion.
type BucketPolicy int

const (
	// FIFO overwrites the oldest entry (SLIDE's default policy).
	FIFO BucketPolicy = iota
	// Reservoir keeps a uniform sample of everything ever inserted.
	Reservoir
)

// String implements fmt.Stringer.
func (p BucketPolicy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Reservoir:
		return "reservoir"
	default:
		return "unknown"
	}
}

// lshPolicy maps the public policy onto the internal lsh constant.
func (p BucketPolicy) lshPolicy() lsh.BucketPolicy {
	if p == Reservoir {
		return lsh.Reservoir
	}
	return lsh.FIFO
}

// WithBuckets sets hash-table bucket capacity and the eviction policy a
// full bucket applies (default FIFO).
func WithBuckets(capacity int, policy BucketPolicy) Option {
	return func(c *config) {
		c.net.BucketCap = capacity
		c.net.BucketPolicy = policy.lshPolicy()
	}
}

// WithRebuildSchedule sets the initial hash-table rebuild period in batches
// and its multiplicative growth (SLIDE's exponential backoff).
func WithRebuildSchedule(every int, growth float64) Option {
	return func(c *config) { c.net.RebuildEvery = every; c.net.RebuildGrowth = growth }
}

// WithLinearHidden makes the hidden layer linear (identity activation), the
// word2vec configuration; default is ReLU.
func WithLinearHidden() Option {
	return func(c *config) { c.net.HiddenActivation = layer.Linear }
}

// WithHiddenStack inserts additional dense ReLU hidden layers between the
// first hidden layer and the sampled output: the architecture becomes
// input → hidden → dims... → output. The paper evaluates single-hidden
// networks; deeper stacks are the natural SLIDE extension.
func WithHiddenStack(dims ...int) Option {
	return func(c *config) { c.net.HiddenLayers = append([]int(nil), dims...) }
}

// WithSeed fixes all randomness (initialization, hashing, sampling).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.net.Seed = seed }
}

// Model is a trainable SLIDE network. Its inference methods (Predict,
// PredictSampled, Scores, Evaluate) are thin wrappers over a private
// predictor reading the live weights — convenient between training calls,
// but not safe concurrently with them. Snapshot freezes the weights into a
// Predictor that serves any number of goroutines while training continues.
type Model struct {
	net    *network.Network
	scores []float32
}

// New builds a model with the given layer sizes. Without a sampling option
// (WithDWTA / WithSimHash / WithFullSoftmax) it defaults to DWTA with
// K=6, L=50.
func New(inputDim, hiddenDim, outputDim int, opts ...Option) (*Model, error) {
	c := config{net: network.Config{
		InputDim:  inputDim,
		HiddenDim: hiddenDim,
		OutputDim: outputDim,
		Hash:      network.DWTA,
		K:         6,
		L:         50,
	}}
	for _, o := range opts {
		o(&c)
	}
	net, err := network.New(&c.net)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return &Model{net: net, scores: make([]float32, c.net.OutputDim)}, nil
}

// TrainStats reports one training call.
type TrainStats struct {
	// Samples processed.
	Samples int
	// MeanLoss is the mean sampled-softmax cross-entropy per sample.
	MeanLoss float64
	// MeanActive is the mean active-set size per sample — the sparsity the
	// LSH sampling achieved (equals the output size under full softmax).
	MeanActive float64
}

// ErrEmptyBatch is returned when a training call receives no samples.
var ErrEmptyBatch = errors.New("slide: empty batch")

// TrainBatch runs one HOGWILD gradient step over the samples.
func (m *Model) TrainBatch(samples []Sample) (TrainStats, error) {
	if len(samples) == 0 {
		return TrainStats{}, ErrEmptyBatch
	}
	var b sparse.Builder
	for i, s := range samples {
		if len(s.Indices) != len(s.Values) {
			return TrainStats{}, fmt.Errorf("slide: sample %d has %d indices but %d values",
				i, len(s.Indices), len(s.Values))
		}
		b.Add(s.Indices, s.Values, s.Labels)
	}
	batch, err := b.CSR()
	if err != nil {
		return TrainStats{}, err
	}
	st := m.net.TrainBatch(batch)
	return batchStats(st), nil
}

func batchStats(st network.BatchStats) TrainStats {
	out := TrainStats{Samples: st.Samples}
	if st.Samples > 0 {
		out.MeanLoss = st.Loss / float64(st.Samples)
		out.MeanActive = float64(st.ActiveSum) / float64(st.Samples)
	}
	return out
}

// TrainEpoch runs one shuffled epoch over the dataset in batches of the
// given size and returns aggregate statistics.
func (m *Model) TrainEpoch(train *Dataset, batchSize int) (TrainStats, error) {
	if train == nil || train.Len() == 0 {
		return TrainStats{}, ErrEmptyBatch
	}
	if batchSize <= 0 {
		return TrainStats{}, fmt.Errorf("slide: batch size %d must be positive", batchSize)
	}
	// Seed the shuffle with the optimizer step so every epoch sees a fresh
	// permutation while the overall run stays reproducible.
	it := train.d.Iter(batchSize, sparse.Coalesced, uint64(m.net.Step())+1)
	var agg network.BatchStats
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		st := m.net.TrainBatch(b)
		agg.Samples += st.Samples
		agg.Loss += st.Loss
		agg.ActiveSum += st.ActiveSum
	}
	return batchStats(agg), nil
}

// ErrNoSampling is returned by PredictSampled on models built without LSH
// sampling (WithFullSoftmax / WithUniformSampling): there is no candidate
// structure to retrieve from, and callers should fall back to the exact
// Predict.
var ErrNoSampling = errors.New("slide: PredictSampled requires an LSH-sampled model")

// Predict returns the top-k label ids for a sparse input, best first. It
// runs the full output layer (exact). Like all Model inference it reads the
// live weights and is not safe concurrently with training — use Snapshot
// for a concurrency-safe Predictor.
func (m *Model) Predict(indices []int32, values []float32, k int) []int32 {
	return m.net.Predict(sparse.Vector{Indices: indices, Values: values}, k, m.scores)
}

// PredictSampled returns the top-k label ids ranked over the LSH-retrieved
// candidates only — sub-linear approximate inference. Returns ErrNoSampling
// for models built without LSH sampling.
func (m *Model) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	out, err := m.net.PredictSampled(sparse.Vector{Indices: indices, Values: values}, k)
	if err != nil {
		return nil, ErrNoSampling
	}
	return out, nil
}

// Scores writes the full output-layer logits for a sparse input into out
// (len = output dimension). Not safe to call concurrently with training.
func (m *Model) Scores(indices []int32, values []float32, out []float32) {
	m.net.Scores(sparse.Vector{Indices: indices, Values: values}, out)
}

// Evaluate returns mean Precision@k over (up to) n samples of the dataset.
func (m *Model) Evaluate(test *Dataset, n, k int) (float64, error) {
	if test == nil || test.Len() == 0 {
		return 0, ErrEmptyBatch
	}
	n = min(n, test.Len())
	var sum float64
	for i := 0; i < n; i++ {
		v := test.d.Sample(i)
		m.net.Scores(v, m.scores)
		sum += metrics.PrecisionAtK(m.scores, test.d.LabelsOf(i), k)
	}
	return sum / float64(n), nil
}

// Embedding copies the hidden-layer weight column of input feature i — the
// learned embedding vector in word2vec-style models.
func (m *Model) Embedding(i int) []float32 {
	buf := make([]float32, m.net.Config().HiddenDim)
	col := m.net.Hidden().Col(i, buf)
	out := make([]float32, len(col))
	copy(out, col)
	return out
}

// Steps returns the number of optimizer steps applied so far.
func (m *Model) Steps() int64 { return m.net.Step() }

// Save writes a checkpoint (configuration, weights, optimizer state) to w.
// Do not call concurrently with training.
func (m *Model) Save(w io.Writer) error { return m.net.Save(w) }

// SaveFile writes a checkpoint to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("slide: %w", err)
	}
	if err := m.net.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores a model from a checkpoint written by Save. Hash tables are
// rebuilt from the restored weights; training resumes at the saved
// optimizer step.
func Load(r io.Reader) (*Model, error) {
	net, err := network.Load(r, 0)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return &Model{net: net, scores: make([]float32, net.Config().OutputDim)}, nil
}

// LoadFile restores a model from a checkpoint file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// ActiveFraction returns MeanActive/outputDim for a stats value — the
// effective sparsity.
func (s TrainStats) ActiveFraction(outputDim int) float64 {
	if outputDim == 0 {
		return 0
	}
	return s.MeanActive / float64(outputDim)
}
