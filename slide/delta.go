package slide

import "github.com/slide-cpu/slide/internal/network"

// Sparse delta snapshots. SLIDE's LSH-sampled training touches only the
// active-set rows each step, so consecutive snapshots differ in a small
// fraction of the model. EnableDeltas turns on touch journaling;
// SnapshotDelta then returns each snapshot as a copy-on-write Predictor
// plus a Delta naming exactly the rows that moved — the feed for the
// replication subsystem (internal/replicate, cmd/slide-replica), which
// streams deltas to serving replicas instead of re-shipping the model.

// EnableDeltas turns on per-row touch journaling so snapshots become
// copy-on-write and SnapshotDelta emits sparse deltas. Call before
// training (or between training calls); idempotent. Snapshot cost drops
// from O(model) to O(rows touched since the last snapshot).
func (m *Model) EnableDeltas() { m.net.EnableDeltaTracking() }

// Delta describes what changed between two consecutive snapshots of one
// model. It references the newer snapshot's immutable views, so it can be
// encoded (via the replication wire format) at any time, even while the
// model keeps training.
type Delta struct {
	d *network.Delta
}

// FromStep and ToStep are the optimizer step counts the delta connects.
func (d *Delta) FromStep() int64 { return d.d.FromStep }

// ToStep is the optimizer step count of the newer snapshot.
func (d *Delta) ToStep() int64 { return d.d.ToStep }

// TouchedCols is the number of hidden-layer weight columns the delta
// carries; TouchedRows the number of output-layer rows.
func (d *Delta) TouchedCols() int { return len(d.d.HiddenCols) }

// TouchedRows is the number of output-layer rows the delta carries.
func (d *Delta) TouchedRows() int { return len(d.d.OutputRows) }

// TablesChanged reports whether a scheduled LSH rebuild ran in the
// interval (only then does the encoded delta carry table bytes).
func (d *Delta) TablesChanged() bool { return d.d.TablesChanged }

// Raw exposes the engine-level delta for the replication subsystem.
// Safe on a nil Delta (returns nil), so WithDeltas publish hooks can
// forward d.Raw() unconditionally.
func (d *Delta) Raw() *network.Delta {
	if d == nil {
		return nil
	}
	return d.d
}

// Raw exposes the engine-level predictor for the replication subsystem.
func (p *Predictor) Raw() *network.Predictor { return p.p }

// SnapshotDelta is Snapshot plus the delta against the previous snapshot.
// The delta is nil when EnableDeltas was never called or this is the
// first snapshot since it was — publish a full base then. Same contract
// as Snapshot: call between training calls.
func (m *Model) SnapshotDelta() (*Predictor, *Delta) {
	np, nd := m.net.SnapshotDelta()
	p := &Predictor{
		p:       np,
		out:     m.net.Config().OutputDim,
		version: snapshotVersion.Add(1),
	}
	if nd == nil {
		return p, nil
	}
	return p, &Delta{d: nd}
}
