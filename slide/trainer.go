package slide

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/sparse"
	"github.com/slide-cpu/slide/internal/train"
)

// Trainer is a composable training session over a Model and a DataSource:
// construct with NewTrainer, drive with Run, observe and steer through the
// typed lifecycle hooks (OnBatch, OnEpoch, OnCheckpoint, snapshots). A
// Trainer owns no model state — it is a reusable description of how to run
// a session, and the legacy Model.TrainEpoch is now a one-epoch Trainer run.
//
//	src, _ := slide.NewFileSource("train.txt", 256, 4096)
//	t, _ := slide.NewTrainer(m, src,
//		slide.WithEpochs(3),
//		slide.WithLRSchedule(slide.WarmupLR(1e-3, 500)),
//		slide.WithCheckpoints("model.slide", 1000),
//		slide.WithSnapshots(200, serving.Publisher(mgr)))
//	report, err := t.Run(ctx)
//
// Run executes on the calling goroutine; cancel the context to stop
// gracefully between batches (a stop, not an error). Hooks run on the
// session goroutine between optimizer steps, so they may call Evaluate,
// Snapshot, Save, etc. without synchronization.
type Trainer struct {
	m   *Model
	src DataSource
	o   trainerOptions
}

// trainerOptions collects option values.
type trainerOptions struct {
	epochs        int
	maxSteps      int64
	lr            LRSchedule
	ckptPath      string
	ckptEvery     int
	ckptRetain    int
	snapEvery     int
	snapPublish   func(*Predictor)
	deltaEvery    int
	deltaPublish  func(*Predictor, *Delta)
	earlyPatience int
	earlyMinDelta float64
	resume        bool
	onBatch       func(BatchEvent)
	onEpoch       func(EpochEvent)
	onCheckpoint  func(CheckpointEvent)
	health        *HealthConfig
	onHealth      func(HealthEvent)
	rollbackMax   int
	rollbackLR    float64
	onRollback    func(RollbackEvent)
}

// healthOn reports whether any option asked for the health monitor.
func (o *trainerOptions) healthOn() bool {
	return o.health != nil || o.onHealth != nil || o.rollbackMax > 0
}

// TrainerOption configures NewTrainer.
type TrainerOption func(*trainerOptions)

// WithEpochs bounds the session to n passes over the source (default 1;
// 0 = unbounded — stop via WithMaxSteps, early stopping, or cancellation).
func WithEpochs(n int) TrainerOption {
	return func(o *trainerOptions) { o.epochs = n }
}

// WithMaxSteps bounds the model's total optimizer step count: a session on a
// model resumed at step N with WithMaxSteps(N+M) runs M more steps.
func WithMaxSteps(n int64) TrainerOption {
	return func(o *trainerOptions) { o.maxSteps = n }
}

// LRSchedule maps a 1-based optimizer step to its learning rate. Schedules
// must be pure functions of the step, so a resumed session re-derives the
// same trajectory from the checkpointed step counter.
type LRSchedule func(step int64) float64

// ConstantLR holds the learning rate fixed.
func ConstantLR(lr float64) LRSchedule {
	return func(int64) float64 { return lr }
}

// StepDecayLR multiplies base by factor after every interval steps
// (factor < 1 decays): steps 1..every train at base, the next interval at
// base*factor, and so on. A non-positive interval never decays.
func StepDecayLR(base, factor float64, every int64) LRSchedule {
	return func(step int64) float64 {
		if every <= 0 || step <= every {
			return base
		}
		return base * math.Pow(factor, float64((step-1)/every))
	}
}

// WarmupLR ramps linearly from base/warmup (step 1) to base (step warmup)
// over the first warmup steps, then stays constant — the large-batch warmup
// recipe.
func WarmupLR(base float64, warmup int64) LRSchedule {
	return func(step int64) float64 {
		if step < warmup {
			return base * float64(step) / float64(warmup)
		}
		return base
	}
}

// WithLRSchedule drives the learning rate from the schedule before every
// optimizer step (default: the model's configured rate throughout).
func WithLRSchedule(s LRSchedule) TrainerOption {
	return func(o *trainerOptions) { o.lr = s }
}

// WithCheckpoints writes a checkpoint to path every everySteps optimizer
// steps, plus a final one when the session ends (cancellation included), so
// the path always holds a loadable, current checkpoint. Writes are atomic
// (temp file + rename): a crash mid-write never corrupts the previous
// checkpoint. Resume with LoadFile + a Trainer on the loaded model.
func WithCheckpoints(path string, everySteps int) TrainerOption {
	return func(o *trainerOptions) { o.ckptPath, o.ckptEvery = path, everySteps }
}

// WithCheckpointRetain keeps the n most recent checkpoints instead of only
// the newest: the current one at the WithCheckpoints path and older
// generations at path.1, path.2, …, rotated on every write. Paired with
// LoadLastGood, a corrupted newest checkpoint (torn by a crash faster than
// fsync, or damaged at rest) falls back to the newest older one that still
// verifies. Opening the schedule also sweeps stale .tmp-* files and ring
// slots beyond n left by crashed sessions.
func WithCheckpointRetain(n int) TrainerOption {
	return func(o *trainerOptions) { o.ckptRetain = n }
}

// WithSnapshots freezes a Predictor snapshot every everySteps optimizer
// steps and hands it to publish — wire it to a serving pipeline with
// serving.Publisher(mgr) and the model trains and serves fresh versions
// from one object.
func WithSnapshots(everySteps int, publish func(*Predictor)) TrainerOption {
	return func(o *trainerOptions) { o.snapEvery, o.snapPublish = everySteps, publish }
}

// WithDeltas is WithSnapshots for replicated serving: every everySteps
// optimizer steps the model is snapshotted copy-on-write (delta tracking
// is enabled automatically) and publish receives the Predictor plus the
// sparse Delta since the previous snapshot (nil on the first snapshot —
// publish a full base then, e.g. via the replication hub). Mutually
// exclusive with WithSnapshots; use one or the other.
func WithDeltas(everySteps int, publish func(*Predictor, *Delta)) TrainerOption {
	return func(o *trainerOptions) { o.deltaEvery, o.deltaPublish = everySteps, publish }
}

// WithEarlyStopping ends the session when the per-pass mean loss has not
// improved by at least minDelta for patience consecutive passes.
func WithEarlyStopping(patience int, minDelta float64) TrainerOption {
	return func(o *trainerOptions) { o.earlyPatience, o.earlyMinDelta = patience, minDelta }
}

// WithResume fast-forwards a model whose step counter says it stopped
// mid-epoch to that exact position (seeded shuffle and all) before training,
// so a checkpoint-interrupted session continues bit-identically to an
// uninterrupted run. Requires a source with a known pass length (all
// built-in sources); exact resume also requires the original worker count
// and WithLockedGradients or a single worker.
func WithResume() TrainerOption {
	return func(o *trainerOptions) { o.resume = true }
}

// BatchEvent reports one optimizer step.
type BatchEvent struct {
	// Step is the model's optimizer step count after this batch.
	Step int64
	// Epoch is the 0-based pass index within this session; Batch the 0-based
	// batch index within the pass.
	Epoch, Batch int
	// Stats are this batch's training statistics.
	Stats TrainStats
	// LR is the learning rate the step used (0 when no schedule is set).
	LR float64
}

// EpochEvent reports one completed pass.
type EpochEvent struct {
	// Epoch is the 0-based pass index within this session.
	Epoch int
	// Batches is the number of optimizer steps the pass ran.
	Batches int
	// Stats aggregates the pass.
	Stats TrainStats
	// TrainTime is the pass's wall-clock spent inside training steps (data
	// loading, hooks and evaluation excluded).
	TrainTime time.Duration
}

// CheckpointEvent reports one checkpoint atomically in place.
type CheckpointEvent struct {
	Step int64
	Path string
}

// WithOnBatch registers a hook called after every optimizer step.
func WithOnBatch(fn func(BatchEvent)) TrainerOption {
	return func(o *trainerOptions) { o.onBatch = fn }
}

// WithOnEpoch registers a hook called after every completed pass.
func WithOnEpoch(fn func(EpochEvent)) TrainerOption {
	return func(o *trainerOptions) { o.onEpoch = fn }
}

// WithOnCheckpoint registers a hook called after every checkpoint write.
func WithOnCheckpoint(fn func(CheckpointEvent)) TrainerOption {
	return func(o *trainerOptions) { o.onCheckpoint = fn }
}

// StopReason reports why a session ended.
type StopReason int

const (
	// StopCompleted: the configured number of epochs finished.
	StopCompleted StopReason = iota
	// StopMaxSteps: the WithMaxSteps bound was reached.
	StopMaxSteps
	// StopCanceled: the context was canceled — a graceful stop, not an error.
	StopCanceled
	// StopEarly: early stopping triggered.
	StopEarly
)

// String implements fmt.Stringer.
func (r StopReason) String() string {
	switch r {
	case StopCompleted:
		return "completed"
	case StopMaxSteps:
		return "max-steps"
	case StopCanceled:
		return "canceled"
	case StopEarly:
		return "early-stop"
	default:
		return "unknown"
	}
}

// stopReason maps the engine's reason onto the public enum.
func stopReason(r train.StopReason) StopReason {
	switch r {
	case train.StopMaxSteps:
		return StopMaxSteps
	case train.StopCanceled:
		return StopCanceled
	case train.StopEarly:
		return StopEarly
	default:
		return StopCompleted
	}
}

// Report summarizes one session.
type Report struct {
	// Steps is the number of optimizer steps this session ran; Epochs the
	// number of completed passes.
	Steps  int64
	Epochs int
	// Stats aggregates every batch of the session.
	Stats TrainStats
	// TrainTime is the wall-clock spent inside training steps.
	TrainTime time.Duration
	// Reason is why the session ended.
	Reason StopReason
	// LastCheckpoint is the optimizer step of the session's most recent
	// checkpoint (0 = none written).
	LastCheckpoint int64
}

// NewTrainer builds a training session over the model and source. The source
// dimensions must fit the model; schedules and hooks are validated here so
// Run cannot fail on configuration.
func NewTrainer(m *Model, src DataSource, opts ...TrainerOption) (*Trainer, error) {
	if m == nil {
		return nil, fmt.Errorf("slide: NewTrainer with nil model")
	}
	if src == nil {
		return nil, fmt.Errorf("slide: NewTrainer with nil source")
	}
	o := trainerOptions{epochs: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cfg := m.net.Config()
	if src.Features() > cfg.InputDim {
		return nil, fmt.Errorf("slide: source has %d features, model input is %d",
			src.Features(), cfg.InputDim)
	}
	if src.NumLabels() > cfg.OutputDim {
		return nil, fmt.Errorf("slide: source has %d labels, model output is %d",
			src.NumLabels(), cfg.OutputDim)
	}
	if o.epochs < 0 {
		return nil, fmt.Errorf("slide: WithEpochs(%d) must be >= 0", o.epochs)
	}
	if o.maxSteps < 0 {
		return nil, fmt.Errorf("slide: WithMaxSteps(%d) must be >= 0", o.maxSteps)
	}
	if (o.ckptEvery > 0) != (o.ckptPath != "") {
		return nil, fmt.Errorf("slide: checkpoints need both a path and a positive interval")
	}
	if o.ckptEvery < 0 {
		return nil, fmt.Errorf("slide: checkpoint interval %d must be >= 0", o.ckptEvery)
	}
	if o.ckptRetain < 0 {
		return nil, fmt.Errorf("slide: WithCheckpointRetain(%d) must be >= 0", o.ckptRetain)
	}
	if o.ckptRetain > 1 && o.ckptEvery == 0 {
		return nil, fmt.Errorf("slide: WithCheckpointRetain needs WithCheckpoints")
	}
	if o.snapEvery < 0 {
		return nil, fmt.Errorf("slide: snapshot interval %d must be >= 0", o.snapEvery)
	}
	if o.snapEvery > 0 && o.snapPublish == nil {
		return nil, fmt.Errorf("slide: WithSnapshots needs a publish function")
	}
	if o.deltaEvery < 0 {
		return nil, fmt.Errorf("slide: delta interval %d must be >= 0", o.deltaEvery)
	}
	if o.deltaEvery > 0 && o.deltaPublish == nil {
		return nil, fmt.Errorf("slide: WithDeltas needs a publish function")
	}
	if o.deltaEvery > 0 && o.snapEvery > 0 {
		return nil, fmt.Errorf("slide: WithDeltas and WithSnapshots are mutually exclusive")
	}
	if o.earlyPatience < 0 || o.earlyMinDelta < 0 {
		return nil, fmt.Errorf("slide: early-stopping parameters must be >= 0")
	}
	if o.rollbackMax < 0 {
		return nil, fmt.Errorf("slide: WithAutoRollback retries %d must be >= 0", o.rollbackMax)
	}
	if o.rollbackMax > 0 {
		if o.rollbackLR <= 0 || o.rollbackLR > 1 {
			return nil, fmt.Errorf("slide: WithAutoRollback lrFactor %g must be in (0, 1]", o.rollbackLR)
		}
		if o.ckptEvery == 0 {
			return nil, fmt.Errorf("slide: WithAutoRollback needs WithCheckpoints (rollback reloads the ring)")
		}
	}
	if h := o.health; h != nil {
		if h.Warmup < 0 || h.Alpha < 0 || h.Alpha > 1 || h.SpikeFactor < 0 || h.DivergenceLoss < 0 {
			return nil, fmt.Errorf("slide: invalid health config %+v", *h)
		}
	}
	return &Trainer{m: m, src: src, o: o}, nil
}

// Run executes the session on the calling goroutine until its bounds are
// reached, early stopping triggers, or ctx is canceled (a graceful stop —
// Report.Reason says which). The model must not be trained, snapshotted, or
// saved from other goroutines while Run executes; hooks run on the session
// goroutine and may do all of those.
//
// With WithAutoRollback, a red health verdict restores the newest valid
// checkpoint into the model and replays; the returned Report then covers
// the final attempt only (the WithOnRollback and per-batch hooks observed
// the aborted ones).
func (t *Trainer) Run(ctx context.Context) (Report, error) {
	o := &t.o
	lrScale := 1.0
	attempt := 0
	for {
		rep, err := t.runOnce(ctx, attempt > 0, lrScale)
		if err == nil {
			return rep, nil
		}
		var he *train.HealthError
		if !errors.As(err, &he) || o.rollbackMax == 0 {
			return rep, wrapRunError(err)
		}
		if attempt >= o.rollbackMax {
			return rep, fmt.Errorf("slide: %w",
				&RollbackExhaustedError{Attempts: attempt, Event: healthEvent(he.Event)})
		}
		attempt++
		loaded, used, lerr := LoadLastGood(o.ckptPath, o.ckptRetain)
		if lerr != nil {
			return rep, fmt.Errorf("slide: rollback attempt %d: %w", attempt, lerr)
		}
		// Adopt the restored state in place so the caller's *Model (and any
		// publish hooks capturing it) keeps working across the rollback.
		t.m.net = loaded.net
		t.m.scores = loaded.scores
		lrScale *= o.rollbackLR
		if o.onRollback != nil {
			o.onRollback(RollbackEvent{
				Attempt: attempt, Step: loaded.Steps(), Checkpoint: used,
				Cause: healthEvent(he.Event), LRScale: lrScale,
			})
		}
	}
}

// wrapRunError translates engine errors onto the public surface.
func wrapRunError(err error) error {
	var he *train.HealthError
	if errors.As(err, &he) {
		return fmt.Errorf("slide: %w", &HealthError{Event: healthEvent(he.Event)})
	}
	return fmt.Errorf("slide: %w", err)
}

// runOnce executes one engine session. retry marks a post-rollback replay
// (forces the deterministic resume fast-forward); lrScale multiplies the
// learning rate — schedule or model-configured — when != 1.
func (t *Trainer) runOnce(ctx context.Context, retry bool, lrScale float64) (Report, error) {
	o := &t.o
	cfg := train.Config{
		Epochs:            o.epochs,
		MaxSteps:          o.maxSteps,
		CheckpointPath:    o.ckptPath,
		CheckpointEvery:   int64(o.ckptEvery),
		CheckpointRetain:  o.ckptRetain,
		SnapshotEvery:     int64(o.snapEvery),
		EarlyStopPatience: o.earlyPatience,
		EarlyStopMinDelta: o.earlyMinDelta,
		Resume:            o.resume || retry,
	}
	if o.lr != nil {
		cfg.LR = train.Schedule(o.lr)
	}
	if lrScale != 1 {
		// The backoff compounds on whatever drove the rate before: the
		// schedule, or the model's configured base rate.
		if o.lr != nil {
			base := o.lr
			cfg.LR = func(step int64) float64 { return base(step) * lrScale }
		} else {
			base := t.m.net.Config().LR
			cfg.LR = func(int64) float64 { return base * lrScale }
		}
	}
	if o.healthOn() {
		var hc HealthConfig
		if o.health != nil {
			hc = *o.health
		}
		cfg.Health = &health.Config{
			Warmup: hc.Warmup, Alpha: hc.Alpha,
			SpikeFactor: hc.SpikeFactor, DivergenceLoss: hc.DivergenceLoss,
		}
		if o.onHealth != nil {
			fn := o.onHealth
			cfg.Hooks.OnHealth = func(ev health.Event) { fn(healthEvent(ev)) }
		}
	}
	if o.onBatch != nil {
		fn := o.onBatch
		cfg.Hooks.OnBatch = func(bi train.BatchInfo) {
			fn(BatchEvent{
				Step: bi.Step, Epoch: bi.Epoch, Batch: bi.Batch,
				Stats: batchStats(bi.Stats), LR: bi.LR,
			})
		}
	}
	if o.onEpoch != nil {
		fn := o.onEpoch
		cfg.Hooks.OnEpoch = func(ei train.EpochInfo) {
			fn(EpochEvent{
				Epoch: ei.Epoch, Batches: ei.Batches,
				Stats: batchStats(ei.Stats), TrainTime: ei.TrainTime,
			})
		}
	}
	if o.onCheckpoint != nil {
		fn := o.onCheckpoint
		cfg.Hooks.OnCheckpoint = func(ci train.CheckpointInfo) {
			fn(CheckpointEvent{Step: ci.Step, Path: ci.Path})
		}
	}
	if o.snapEvery > 0 {
		publish := o.snapPublish
		cfg.Hooks.OnSnapshot = func(int64) { publish(t.m.Snapshot()) }
	}
	if o.deltaEvery > 0 {
		publish := o.deltaPublish
		t.m.EnableDeltas()
		cfg.SnapshotEvery = int64(o.deltaEvery)
		cfg.Hooks.OnSnapshot = func(int64) { publish(t.m.SnapshotDelta()) }
	}

	rep, err := train.Run(ctx, t.m.net, t.internalSource(), cfg)
	out := Report{
		Steps: rep.Steps, Epochs: rep.Epochs,
		Stats:          batchStats(rep.Stats),
		TrainTime:      rep.TrainTime,
		Reason:         stopReason(rep.Reason),
		LastCheckpoint: rep.LastCheckpoint,
	}
	return out, err // raw engine error; Run wraps or rolls back
}

// internalSource unwraps built-in sources (their batches were validated at
// parse/generation time) and wraps user implementations in a per-batch
// range-validating adapter.
func (t *Trainer) internalSource() dataset.Source {
	if tr, ok := t.src.(interface{ trusted() dataset.Source }); ok {
		return tr.trusted()
	}
	cfg := t.m.net.Config()
	u := &userSource{s: t.src, features: cfg.InputDim, labels: cfg.OutputDim}
	if _, ok := t.src.(interface{ BatchesPerEpoch() int }); ok {
		return &sizedUserSource{u}
	}
	return u
}

// userSource adapts a caller-implemented DataSource, range-checking every
// batch against the model dimensions — the API-boundary validation that
// turns would-be kernel panics into typed errors.
type userSource struct {
	s                DataSource
	features, labels int
}

func (u *userSource) Name() string            { return u.s.Name() }
func (u *userSource) Features() int           { return u.s.Features() }
func (u *userSource) Labels() int             { return u.s.NumLabels() }
func (u *userSource) Reset(seed uint64) error { return u.s.Reset(seed) }

// Close forwards the engine's end-of-session release to sources that hold
// resources.
func (u *userSource) Close() error {
	if c, ok := u.s.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func (u *userSource) Next() (sparse.Batch, error) {
	b, err := u.s.Next()
	if err != nil {
		return nil, err
	}
	if b.b == nil || b.b.Len() == 0 {
		return nil, fmt.Errorf("slide: DataSource %s returned an empty batch (return io.EOF to end the pass)", u.s.Name())
	}
	for i := 0; i < b.b.Len(); i++ {
		if err := b.b.Sample(i).Validate(u.features); err != nil {
			return nil, &BadSampleError{Sample: i, Err: err}
		}
		for _, y := range b.b.Labels(i) {
			if y < 0 || int(y) >= u.labels {
				return nil, &BadSampleError{Sample: i,
					Err: fmt.Errorf("label %d out of range [0,%d)", y, u.labels)}
			}
		}
	}
	return b.b, nil
}

// sizedUserSource forwards a user source's known pass length.
type sizedUserSource struct {
	*userSource
}

// BatchesPerEpoch implements dataset.Sized.
func (u *sizedUserSource) BatchesPerEpoch() int {
	return u.s.(interface{ BatchesPerEpoch() int }).BatchesPerEpoch()
}

// compile-time checks: the adapters satisfy the engine contracts.
var (
	_ dataset.Source = (*userSource)(nil)
	_ dataset.Sized  = (*sizedUserSource)(nil)
)
