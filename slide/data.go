package slide

import (
	"fmt"
	"io"
	"os"

	"github.com/slide-cpu/slide/internal/dataset"
)

// Dataset is an in-memory multi-label sparse dataset.
type Dataset struct {
	d *dataset.Dataset
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.d.Len() }

// Features returns the input dimensionality.
func (d *Dataset) Features() int { return d.d.Features }

// NumLabels returns the label-space size.
func (d *Dataset) NumLabels() int { return d.d.Labels }

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.d.Name }

// Sample returns sample i as a Sample (views alias internal storage; treat
// as read-only).
func (d *Dataset) Sample(i int) Sample {
	v := d.d.Sample(i)
	return Sample{Indices: v.Indices, Values: v.Values, Labels: d.d.LabelsOf(i)}
}

// Head returns a view of the first n samples.
func (d *Dataset) Head(n int) *Dataset { return &Dataset{d: d.d.Head(n)} }

// DatasetStats summarizes a dataset in the paper's Table 1 terms.
type DatasetStats struct {
	Name            string
	Features        int
	Labels          int
	Samples         int
	AvgFeatureNNZ   float64
	FeatureSparsity float64
	AvgLabels       float64
}

// Stats computes summary statistics.
func (d *Dataset) Stats() DatasetStats {
	s := d.d.Stats()
	return DatasetStats{
		Name: s.Name, Features: s.Features, Labels: s.Labels, Samples: s.Samples,
		AvgFeatureNNZ: s.AvgFeatureNNZ, FeatureSparsity: s.FeatureSparsity,
		AvgLabels: s.AvgLabels,
	}
}

// ModelParams returns the parameter count of a features→hidden→labels
// network on this dataset.
func (d *Dataset) ModelParams(hidden int) int64 { return d.d.ModelParams(hidden) }

// ReadXMC parses a dataset in the extreme-classification repository format
// (the format the real Amazon-670K / WikiLSHTC-325K dumps use).
func ReadXMC(name string, r io.Reader) (*Dataset, error) {
	d, err := dataset.ReadXMC(name, r)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// OpenXMC reads an XMC-format dataset from a file.
func OpenXMC(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	defer f.Close()
	return ReadXMC(path, f)
}

// WriteXMC serializes the dataset in the XMC repository format.
func (d *Dataset) WriteXMC(w io.Writer) error { return dataset.WriteXMC(w, d.d) }

// CorpusOptions parameterizes ReadCorpus.
type CorpusOptions struct {
	// MaxVocab keeps the most frequent words (0 = all); MinCount drops
	// words rarer than this (0 = keep all).
	MaxVocab, MinCount int
	// Window is the skip-gram half-width (default 2, the paper's setting).
	Window int
	// MaxTokens truncates the token stream (0 = read everything).
	MaxTokens int
}

// Vocabulary maps words to frequency-ranked dense ids (id 0 = most
// frequent).
type Vocabulary struct {
	v *dataset.Vocabulary
}

// Size returns the number of words.
func (v *Vocabulary) Size() int { return v.v.Size() }

// Word returns the word with the given id.
func (v *Vocabulary) Word(id int32) string { return v.v.Word(id) }

// ID returns the id of a word and whether it is in the vocabulary.
func (v *Vocabulary) ID(word string) (int32, bool) { return v.v.ID(word) }

// Count returns the corpus frequency of the word with the given id.
func (v *Vocabulary) Count(id int32) int64 { return v.v.Counts[id] }

// ReadCorpus tokenizes whitespace-separated text (the format of the real
// text8 dump), builds a frequency-ranked vocabulary, and extracts skip-gram
// samples — the paper's Text8 preprocessing (§5.1).
func ReadCorpus(name string, r io.Reader, o CorpusOptions) (*Dataset, *Vocabulary, error) {
	if o.Window == 0 {
		o.Window = 2
	}
	d, v, err := dataset.BuildCorpus(r, dataset.CorpusConfig{
		Name: name, MaxVocab: o.MaxVocab, MinCount: o.MinCount,
		Window: o.Window, MaxTokens: o.MaxTokens,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{d: d}, &Vocabulary{v: v}, nil
}

// OpenCorpus reads a text corpus from a file.
func OpenCorpus(path string, o CorpusOptions) (*Dataset, *Vocabulary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("slide: %w", err)
	}
	defer f.Close()
	return ReadCorpus(path, f, o)
}

// AmazonLike generates the Amazon-670K-like synthetic workload at the given
// scale of the paper's dimensions (scale 1.0 = 135,909 features, 670,091
// labels; see Table 1). The planted label prototypes make it learnable.
func AmazonLike(scale float64, seed uint64) (train, test *Dataset, err error) {
	tr, te, err := dataset.Generate(dataset.Amazon670K(scale, seed))
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{d: tr}, &Dataset{d: te}, nil
}

// WikiLike generates the WikiLSHTC-325K-like synthetic workload.
func WikiLike(scale float64, seed uint64) (train, test *Dataset, err error) {
	tr, te, err := dataset.Generate(dataset.WikiLSH325K(scale, seed))
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{d: tr}, &Dataset{d: te}, nil
}

// Text8Like generates the Text8-like skip-gram workload (one-hot inputs,
// window-2 context labels).
func Text8Like(scale float64, seed uint64) (train, test *Dataset, err error) {
	tr, te, err := dataset.GenerateText8(dataset.Text8(scale, seed))
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{d: tr}, &Dataset{d: te}, nil
}
