package slide

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

// detModel builds a deterministic single-worker model for bit-identity
// tests (1 worker + locked gradients = fully deterministic training).
func detModel(t *testing.T, train *Dataset) *Model {
	t.Helper()
	m, err := New(train.Features(), 16, train.NumLabels(),
		WithDWTA(3, 8),
		WithLearningRate(1e-3),
		WithWorkers(1),
		WithLockedGradients(),
		WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func modelBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainerMatchesLegacyEpochLoop: a single-worker Trainer session must be
// bit-identical to the historical TrainEpoch loop (hand-rolled here against
// the internal iterator, exactly as the old implementation drove it).
func TestTrainerMatchesLegacyEpochLoop(t *testing.T) {
	train, _ := tinyData(t)
	const batch, epochs = 64, 3

	legacy := detModel(t, train)
	var legacyStats TrainStats
	for e := 0; e < epochs; e++ {
		// The pre-Trainer TrainEpoch body: iterate a seeded shuffle, seed =
		// optimizer step + 1.
		it := train.d.Iter(batch, sparse.Coalesced, uint64(legacy.net.Step())+1)
		agg := TrainStats{}
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			st := legacy.net.TrainBatch(b)
			agg.Samples += st.Samples
			agg.MeanLoss += st.Loss
			agg.MeanActive += float64(st.ActiveSum)
		}
		agg.MeanLoss /= float64(agg.Samples)
		agg.MeanActive /= float64(agg.Samples)
		legacyStats = agg
	}

	viaTrainer := detModel(t, train)
	src, err := NewDatasetSource(train, batch)
	if err != nil {
		t.Fatal(err)
	}
	var lastEpoch EpochEvent
	trainer, err := NewTrainer(viaTrainer, src,
		WithEpochs(epochs),
		WithOnEpoch(func(e EpochEvent) { lastEpoch = e }))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopCompleted || rep.Epochs != epochs {
		t.Fatalf("report %+v, want %d completed epochs", rep, epochs)
	}
	if !bytes.Equal(modelBytes(t, legacy), modelBytes(t, viaTrainer)) {
		t.Fatal("Trainer weights differ from the legacy epoch loop")
	}
	if lastEpoch.Stats.MeanLoss != legacyStats.MeanLoss ||
		lastEpoch.Stats.MeanActive != legacyStats.MeanActive {
		t.Fatalf("epoch stats %+v differ from legacy %+v", lastEpoch.Stats, legacyStats)
	}

	// ... and TrainEpoch (now a Trainer wrapper) stays on the same trajectory.
	viaWrapper := detModel(t, train)
	for e := 0; e < epochs; e++ {
		if _, err := viaWrapper.TrainEpoch(train, batch); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(modelBytes(t, legacy), modelBytes(t, viaWrapper)) {
		t.Fatal("TrainEpoch wrapper weights differ from the legacy epoch loop")
	}
}

// TestTrainerResumeBitIdentical is the public resume contract: train N steps
// with a checkpoint scheduled at N, load it, continue to N+M with
// WithResume — bit-identical to an uninterrupted N+M session.
func TestTrainerResumeBitIdentical(t *testing.T) {
	train, _ := tinyData(t)
	const batch = 64
	src, err := NewDatasetSource(train, batch)
	if err != nil {
		t.Fatal(err)
	}
	bpe := (train.Len() + batch - 1) / batch
	n := int64(bpe + max(bpe/2, 1)) // lands mid-epoch
	m := int64(bpe)

	full := detModel(t, train)
	fullTrainer, err := NewTrainer(full, src, WithEpochs(0), WithMaxSteps(n+m))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fullTrainer.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ckpt.slide")
	first := detModel(t, train)
	var ckptEvents []CheckpointEvent
	firstTrainer, err := NewTrainer(first, src,
		WithEpochs(0), WithMaxSteps(n),
		WithCheckpoints(ckpt, int(n)),
		WithOnCheckpoint(func(e CheckpointEvent) { ckptEvents = append(ckptEvents, e) }))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := firstTrainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopMaxSteps || rep.LastCheckpoint != n {
		t.Fatalf("report %+v, want max-steps stop with checkpoint at step %d", rep, n)
	}
	if len(ckptEvents) == 0 || ckptEvents[0].Step != n || ckptEvents[0].Path != ckpt {
		t.Fatalf("checkpoint events %+v, want step %d at %s", ckptEvents, n, ckpt)
	}

	resumed, err := LoadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Steps() != n {
		t.Fatalf("checkpoint at step %d, want %d", resumed.Steps(), n)
	}
	resTrainer, err := NewTrainer(resumed, src,
		WithEpochs(0), WithMaxSteps(n+m), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resTrainer.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resumed.Steps() != n+m {
		t.Fatalf("resumed to step %d, want %d", resumed.Steps(), n+m)
	}
	if !bytes.Equal(modelBytes(t, full), modelBytes(t, resumed)) {
		t.Fatal("resumed weights differ from the uninterrupted run")
	}
}

// TestTrainerStreamingFileSource: an end-to-end session from a streaming
// XMC file — sequential order trains bit-identically to feeding the file's
// samples in order, cancellation is graceful, and the final checkpoint loads.
func TestTrainerStreamingFileSource(t *testing.T) {
	train, _ := tinyData(t)
	path := filepath.Join(t.TempDir(), "train.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteXMC(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	const batch = 32

	// Reference: the file's samples in order, batched by hand.
	ref := detModel(t, train)
	for lo := 0; lo < train.Len(); lo += batch {
		hi := min(lo+batch, train.Len())
		samples := make([]Sample, 0, hi-lo)
		for i := lo; i < hi; i++ {
			samples = append(samples, train.Sample(i))
		}
		if _, err := ref.TrainBatch(samples); err != nil {
			t.Fatal(err)
		}
	}

	streamed := detModel(t, train)
	src, err := NewFileSource(path, batch, 0) // sequential
	if err != nil {
		t.Fatal(err)
	}
	if src.Features() != train.Features() || src.NumLabels() != train.NumLabels() {
		t.Fatalf("file source dims %d/%d, want %d/%d",
			src.Features(), src.NumLabels(), train.Features(), train.NumLabels())
	}
	trainer, err := NewTrainer(streamed, src, WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := int64((train.Len() + batch - 1) / batch)
	if rep.Steps != wantSteps {
		t.Fatalf("streamed %d steps, want %d", rep.Steps, wantSteps)
	}
	if !bytes.Equal(modelBytes(t, ref), modelBytes(t, streamed)) {
		t.Fatal("streaming-file training differs from in-order in-memory training")
	}

	// Cancellation mid-stream is graceful and leaves a loadable checkpoint.
	ckpt := filepath.Join(t.TempDir(), "stream.slide")
	m2 := detModel(t, train)
	ctx, cancel := context.WithCancel(context.Background())
	canceled, err := NewTrainer(m2, src,
		WithEpochs(0), // unbounded
		WithCheckpoints(ckpt, 1000),
		WithOnBatch(func(e BatchEvent) {
			if e.Step == 5 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err = canceled.Run(ctx)
	if err != nil {
		t.Fatalf("cancellation must be graceful, got %v", err)
	}
	if rep.Reason != StopCanceled || rep.Steps != 5 {
		t.Fatalf("report %+v, want canceled after 5 steps", rep)
	}
	back, err := LoadFile(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint unloadable: %v", err)
	}
	if back.Steps() != 5 {
		t.Fatalf("checkpoint at step %d, want 5", back.Steps())
	}
}

// TestTrainerLRSchedules: the schedule shapes and their delivery to batches.
func TestTrainerLRSchedules(t *testing.T) {
	if got := ConstantLR(0.5)(100); got != 0.5 {
		t.Errorf("ConstantLR = %g", got)
	}
	decay := StepDecayLR(1.0, 0.5, 10)
	for _, tc := range []struct {
		step int64
		want float64
	}{{1, 1.0}, {10, 1.0}, {11, 0.5}, {20, 0.5}, {21, 0.25}} {
		if got := decay(tc.step); got != tc.want {
			t.Errorf("StepDecayLR(%d) = %g, want %g", tc.step, got, tc.want)
		}
	}
	warm := WarmupLR(1.0, 10)
	if warm(1) >= warm(5) || warm(5) >= warm(9) {
		t.Error("WarmupLR not increasing during warmup")
	}
	if got := warm(10); got != 1.0 {
		t.Errorf("WarmupLR after warmup = %g, want 1", got)
	}

	// Delivery: every batch sees the scheduled rate.
	train, _ := tinyData(t)
	m := detModel(t, train)
	src, err := NewDatasetSource(train, 64)
	if err != nil {
		t.Fatal(err)
	}
	var lrs []float64
	trainer, err := NewTrainer(m, src,
		WithEpochs(1),
		WithLRSchedule(decay),
		WithOnBatch(func(e BatchEvent) { lrs = append(lrs, e.LR) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, lr := range lrs {
		if want := decay(int64(i + 1)); lr != want {
			t.Fatalf("step %d trained with LR %g, want %g", i+1, lr, want)
		}
	}
}

// TestTrainerEarlyStopping: a session that cannot improve stops early.
func TestTrainerEarlyStopping(t *testing.T) {
	train, _ := tinyData(t)
	m := detModel(t, train)
	src, err := NewDatasetSource(train, 64)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewTrainer(m, src,
		WithEpochs(50),
		WithEarlyStopping(2, 1e9)) // nothing improves by 1e9
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reason != StopEarly || rep.Epochs != 3 {
		t.Fatalf("report %+v, want early-stop after 3 epochs", rep)
	}
}

// TestTrainerSyntheticSource: the generator source streams fresh samples
// every pass without a materialized dataset.
func TestTrainerSyntheticSource(t *testing.T) {
	src, err := NewSyntheticSource("amazon", 1e-9, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(src.Features(), 16, src.NumLabels(),
		WithDWTA(3, 8), WithLearningRate(1e-3), WithWorkers(1), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewTrainer(m, src, WithEpochs(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epochs != 2 || rep.Steps == 0 || m.Steps() != rep.Steps {
		t.Fatalf("synthetic session report %+v (model steps %d)", rep, m.Steps())
	}

	if _, err := NewSyntheticSource("nope", 0.01, 64, 1); err == nil {
		t.Error("unknown synthetic workload accepted")
	}
}

// funcSource is a caller-implemented DataSource: batches built with
// NewBatch, one fixed batch per pass.
type funcSource struct {
	features, labels int
	samples          []Sample
	done             bool
}

func (f *funcSource) Name() string       { return "custom" }
func (f *funcSource) Features() int      { return f.features }
func (f *funcSource) NumLabels() int     { return f.labels }
func (f *funcSource) Reset(uint64) error { f.done = false; return nil }

func (f *funcSource) Next() (Batch, error) {
	if f.done {
		return Batch{}, io.EOF
	}
	f.done = true
	return NewBatch(f.samples)
}

// TestTrainerCustomSource: user-implemented DataSources train through the
// validating adapter, and invalid data surfaces as ErrBadSample instead of
// a kernel panic.
func TestTrainerCustomSource(t *testing.T) {
	m, err := New(100, 8, 20, WithDWTA(2, 6), WithWorkers(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	good := &funcSource{features: 100, labels: 20, samples: []Sample{
		{Indices: []int32{3, 50}, Values: []float32{1, 0.5}, Labels: []int32{7}},
		{Indices: []int32{10}, Values: []float32{2}, Labels: []int32{1, 2}},
	}}
	trainer, err := NewTrainer(m, good, WithEpochs(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trainer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 2 {
		t.Fatalf("custom source ran %d steps, want 2", rep.Steps)
	}

	// Out-of-range feature index: structurally valid (NewBatch accepts it),
	// rejected against the model at the Trainer boundary.
	bad := &funcSource{features: 100, labels: 20, samples: []Sample{
		{Indices: []int32{3}, Values: []float32{1}, Labels: []int32{7}},
		{Indices: []int32{500}, Values: []float32{1}, Labels: []int32{7}},
	}}
	trainer, err = NewTrainer(m, bad, WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = trainer.Run(context.Background())
	if !errorsIsBadSample(err, 1) {
		t.Fatalf("out-of-range feature: got %v, want BadSampleError{Sample: 1}", err)
	}

	// Out-of-range label.
	bad = &funcSource{features: 100, labels: 20, samples: []Sample{
		{Indices: []int32{3}, Values: []float32{1}, Labels: []int32{21}},
	}}
	trainer, err = NewTrainer(m, bad, WithEpochs(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = trainer.Run(context.Background())
	if !errorsIsBadSample(err, 0) {
		t.Fatalf("out-of-range label: got %v, want BadSampleError{Sample: 0}", err)
	}
}

// TestNewTrainerValidation: configuration errors surface at construction.
func TestNewTrainerValidation(t *testing.T) {
	train, _ := tinyData(t)
	m := detModel(t, train)
	src, err := NewDatasetSource(train, 64)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]TrainerOption{
		"negative epochs":        {WithEpochs(-1)},
		"negative max steps":     {WithMaxSteps(-1)},
		"checkpoint no interval": {WithCheckpoints("x", 0)},
		"snapshots no publish":   {WithSnapshots(5, nil)},
		"negative early stop":    {WithEarlyStopping(-1, 0)},
	} {
		if _, err := NewTrainer(m, src, opts...); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewTrainer(nil, src); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewTrainer(m, nil); err == nil {
		t.Error("nil source accepted")
	}
	// Dimension mismatch: source wider than the model.
	wide := &funcSource{features: 10_000, labels: 20}
	if _, err := NewTrainer(m, wide); err == nil {
		t.Error("source wider than model accepted")
	}
}
