package slide

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/slide-cpu/slide/internal/faultinject"
)

// runTrainer runs one Trainer session to maxSteps on a fresh source.
func runTrainer(t *testing.T, m *Model, train *Dataset, maxSteps int64, extra ...TrainerOption) Report {
	t.Helper()
	src, err := NewDatasetSource(train, 16)
	if err != nil {
		t.Fatal(err)
	}
	opts := append([]TrainerOption{WithEpochs(0), WithMaxSteps(maxSteps)}, extra...)
	tr, err := NewTrainer(m, src, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// damage rewrites path through fn.
func damage(t *testing.T, path string, fn func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestChaosResumeFromLastGood is the acceptance scenario end to end: a
// seeded chaos run kills training mid-checkpoint (torn write), then the
// newest surviving checkpoint is truncated and the next one bit-flipped —
// and LoadLastGood still resumes from the newest valid ring slot,
// bit-identically to an uninterrupted run.
func TestChaosResumeFromLastGood(t *testing.T) {
	train, _ := tinyData(t)
	const total = 12

	full := detModel(t, train)
	runTrainer(t, full, train, total)
	want := modelBytes(t, full)

	// Chaos run: checkpoint every 2 steps, ring of 3; the fourth checkpoint
	// write (step 8) is torn after 128 bytes — a simulated kill.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	plan, err := faultinject.Parse("checkpoint.write@4=cut:128", 42)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	crashed := detModel(t, train)
	src, err := NewDatasetSource(train, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(crashed, src,
		WithEpochs(0), WithMaxSteps(total),
		WithCheckpoints(ckpt, 2), WithCheckpointRetain(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(context.Background()); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("chaos run err = %v, want an injected fault", err)
	}
	faultinject.Disarm()

	// The kill left the ring at steps 6, 4, 2. Damage the two newest: the
	// primary is truncated, the first fallback gets one flipped bit.
	damage(t, ckpt, func(b []byte) []byte { return b[:len(b)/2] })
	damage(t, ckpt+".1", func(b []byte) []byte {
		b[len(b)/2] ^= 0x10
		return b
	})

	// The damaged slots must report typed corruption with a section name.
	if _, err := LoadFile(ckpt); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("truncated checkpoint err = %v, want ErrCorruptCheckpoint", err)
	}
	_, err = LoadFile(ckpt + ".1")
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("bit-flipped checkpoint err = %v, want ErrCorruptCheckpoint", err)
	}
	if sec, _, ok := CorruptSection(err); !ok || sec == "" {
		t.Fatalf("CorruptSection(%v) = %q, %v", err, sec, ok)
	}

	// LoadLastGood falls through both damaged slots to the step-2 survivor.
	m, used, err := LoadLastGood(ckpt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if used != ckpt+".2" {
		t.Fatalf("loaded %s, want the second fallback", used)
	}
	if m.Steps() != 2 {
		t.Fatalf("last-good checkpoint at step %d, want 2", m.Steps())
	}

	// Resume to the full step budget: bit-identical to the clean run.
	runTrainer(t, m, train, total, WithResume())
	if !bytes.Equal(want, modelBytes(t, m)) {
		t.Fatal("chaos-resumed weights differ from the uninterrupted run")
	}
}

func TestLoadLastGoodErrors(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "none.slide")
	if _, _, err := LoadLastGood(ckpt, 3); err == nil {
		t.Fatal("empty ring loaded")
	}
	// A ring whose every slot is damaged reports corruption.
	if err := os.WriteFile(ckpt, []byte("SLIDnope"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadLastGood(ckpt, 1)
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}
