package slide

// Quantized serving: a Predictor can be re-rendered with its output layer —
// the overwhelming bulk of a SLIDE model — packed to int8 (or experimental
// int4) codes with per-row scales. Training always stays full precision;
// quantization is a publish-side transform applied between Snapshot and
// serving, and the quantized predictor implements the exact same serving
// surface (Predict, PredictEntries, CheckFinite, ...) so it drops into the
// batcher and snapshot-manager pipelines unchanged.

// Quantize returns a new Predictor serving from a packed integer rendering
// of this snapshot's output layer. bits is 8 (production) or 4
// (experimental, halves the bytes again at a larger accuracy cost). The
// receiver is unmodified and remains fully usable; the two predictors share
// the hidden stack and LSH tables. The result carries a fresh Version, so
// serving pipelines treat it as a distinct snapshot. Snapshots holding
// NaN/Inf weights refuse to quantize (the error unwraps to the same
// non-finite sentinel CheckFinite reports).
func (p *Predictor) Quantize(bits int) (*Predictor, error) {
	qp, err := p.p.Quantize(bits)
	if err != nil {
		return nil, err
	}
	return &Predictor{
		p:       qp,
		out:     p.out,
		version: snapshotVersion.Add(1),
	}, nil
}

// SnapshotPrecision names the output-layer storage this snapshot serves
// from: "f32", "bf16", "int8", or "int4". Surfaced by the serving /stats
// endpoint.
func (p *Predictor) SnapshotPrecision() string { return p.p.PrecisionName() }

// PackedBytes returns the serialized size of the snapshot's output-layer
// representation — the number the int8-vs-f32 compression ratio is measured
// on (hidden stack and tables are identical across precisions and excluded).
func (p *Predictor) PackedBytes() int64 { return p.p.PackedBytes() }
