package slide

import (
	"bytes"
	"strings"
	"testing"
)

func tinyData(t *testing.T) (*Dataset, *Dataset) {
	t.Helper()
	train, test, err := AmazonLike(1e-9, 3) // floor sizes
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestPublicEndToEnd(t *testing.T) {
	train, test := tinyData(t)
	m, err := New(train.Features(), 32, train.NumLabels(),
		WithDWTA(3, 10),
		WithLearningRate(0.01),
		WithWorkers(2),
		WithLockedGradients(),
		WithActiveSet(16, 0),
		WithRebuildSchedule(10, 1.2),
		WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var last TrainStats
	for epoch := 0; epoch < 6; epoch++ {
		st, err := m.TrainEpoch(train, 64)
		if err != nil {
			t.Fatal(err)
		}
		if st.Samples != train.Len() {
			t.Fatalf("epoch processed %d of %d samples", st.Samples, train.Len())
		}
		last = st
	}
	if last.MeanActive <= 0 || last.ActiveFraction(train.NumLabels()) > 1 {
		t.Errorf("stats wrong: %+v", last)
	}
	p1, err := m.Evaluate(test, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 < 0.1 { // chance is 1/64
		t.Errorf("model failed to learn through public API: P@1 = %.3f", p1)
	}
	if m.Steps() == 0 {
		t.Error("Steps not counted")
	}

	s := test.Sample(0)
	pred, err := m.Predict(s.Indices, s.Values, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 3 {
		t.Errorf("Predict returned %v", pred)
	}
	scores := make([]float32, train.NumLabels())
	if err := m.Scores(s.Indices, s.Values, scores); err != nil {
		t.Fatal(err)
	}
	if scores[pred[0]] < scores[pred[1]] {
		t.Error("Predict order inconsistent with Scores")
	}
}

func TestFullSoftmaxOption(t *testing.T) {
	train, _ := tinyData(t)
	m, err := New(train.Features(), 16, train.NumLabels(),
		WithFullSoftmax(), WithWorkers(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.TrainEpoch(train.Head(64), 32)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanActive != float64(train.NumLabels()) {
		t.Errorf("full softmax MeanActive = %g, want %d", st.MeanActive, train.NumLabels())
	}
}

func TestOptionCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config end-to-end training; skipped in -short (race CI)")
	}
	train, _ := tinyData(t)
	for name, opt := range map[string]Option{
		"simhash":    WithSimHash(4, 8),
		"bf16act":    WithPrecision(BF16Activations),
		"bf16full":   WithPrecision(BF16Full),
		"fp32":       WithPrecision(FP32),
		"fragmented": WithMemoryLayout(Fragmented),
		"coalesced":  WithMemoryLayout(Coalesced),
		"adam":       WithAdam(0.9, 0.99, 1e-7),
		"buckets":    WithBuckets(64, Reservoir),
		"linear":     WithLinearHidden(),
	} {
		m, err := New(train.Features(), 8, train.NumLabels(), opt,
			WithWorkers(1), WithSeed(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := m.TrainEpoch(train.Head(32), 16); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestNewFeatures(t *testing.T) {
	train, test := tinyData(t)

	// Deep hidden stack through the public API.
	deep, err := New(train.Features(), 24, train.NumLabels(),
		WithHiddenStack(16, 12),
		WithDWTA(3, 8), WithLearningRate(0.01), WithWorkers(1), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := deep.TrainEpoch(train, 64); err != nil {
			t.Fatal(err)
		}
	}
	if p1, _ := deep.Evaluate(test, 100, 1); p1 < 0.05 {
		t.Errorf("deep model did not learn at all: P@1 = %.3f", p1)
	}

	// Sampled inference on an LSH model.
	s := test.Sample(0)
	if _, err := deep.PredictSampled(s.Indices, s.Values, 2); err != nil {
		t.Fatal(err)
	}
	// ... and a clean error on a dense model.
	dense, err := New(train.Features(), 8, train.NumLabels(),
		WithFullSoftmax(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dense.PredictSampled(s.Indices, s.Values, 1); err == nil {
		t.Error("PredictSampled on dense model should error")
	}

	// Uniform-sampling ablation and DOPH hashing construct and train.
	for name, opt := range map[string]Option{
		"uniform": WithUniformSampling(),
		"doph":    WithDOPH(3, 8),
	} {
		m, err := New(train.Features(), 8, train.NumLabels(), opt, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := m.TrainEpoch(train.Head(64), 32); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	// Deep checkpoints round-trip through the public API.
	path := t.TempDir() + "/deep.slide"
	if err := deep.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := deep.Predict(s.Indices, s.Values, 1)
	b, _ := back.Predict(s.Indices, s.Values, 1)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("deep model predictions changed after reload: %v vs %v", a, b)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 8, 10); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := New(10, 8, 10, WithDWTA(0, 0)); err == nil {
		t.Error("zero K/L accepted")
	}
}

func TestTrainBatchErrors(t *testing.T) {
	train, _ := tinyData(t)
	m, err := New(train.Features(), 8, train.NumLabels(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainBatch(nil); err != ErrEmptyBatch {
		t.Errorf("empty batch: %v", err)
	}
	if _, err := m.TrainBatch([]Sample{{Indices: []int32{1, 2}, Values: []float32{1}}}); err == nil {
		t.Error("mismatched sample accepted")
	}
	if _, err := m.TrainEpoch(nil, 8); err != ErrEmptyBatch {
		t.Errorf("nil dataset: %v", err)
	}
	if _, err := m.TrainEpoch(train, 0); err == nil {
		t.Error("zero batch size accepted")
	}
	if _, err := m.Evaluate(nil, 5, 1); err != ErrEmptyBatch {
		t.Error("nil eval dataset accepted")
	}
}

func TestTrainBatchDirect(t *testing.T) {
	m, err := New(100, 8, 20, WithDWTA(2, 6), WithWorkers(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.TrainBatch([]Sample{
		{Indices: []int32{3, 50}, Values: []float32{1, 0.5}, Labels: []int32{7}},
		{Indices: []int32{10}, Values: []float32{2}, Labels: []int32{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 2 || st.MeanActive <= 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEmbedding(t *testing.T) {
	if testing.Short() {
		t.Skip("embedding training loop; skipped in -short (race CI)")
	}
	m, err := New(50, 12, 10, WithLinearHidden(), WithWorkers(1), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	e := m.Embedding(7)
	if len(e) != 12 {
		t.Fatalf("embedding length %d", len(e))
	}
	// Must be a copy: mutating it must not affect the model.
	e[0] += 100
	if m.Embedding(7)[0] == e[0] {
		t.Error("Embedding returned a live view")
	}
}

func TestSaveLoadFile(t *testing.T) {
	train, test := tinyData(t)
	m, err := New(train.Features(), 16, train.NumLabels(),
		WithDWTA(3, 8), WithLearningRate(0.01), WithWorkers(1), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.TrainEpoch(train, 64); err != nil {
			t.Fatal(err)
		}
	}
	path := t.TempDir() + "/model.slide"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Steps() != m.Steps() {
		t.Errorf("steps %d != %d", back.Steps(), m.Steps())
	}
	// Identical predictions after round trip.
	s := test.Sample(0)
	a, _ := m.Predict(s.Indices, s.Values, 3)
	b, _ := back.Predict(s.Indices, s.Values, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction changed after reload: %v vs %v", a, b)
		}
	}
	// Resumed training must work.
	if _, err := back.TrainEpoch(train, 64); err != nil {
		t.Fatal(err)
	}

	if _, err := LoadFile("/nonexistent/model.slide"); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestKernelModeSwitch(t *testing.T) {
	SetKernelMode(ScalarKernels)
	SetKernelMode(VectorKernels) // restore default; no crash = pass
}

func TestReadCorpus(t *testing.T) {
	text := strings.Repeat("alpha beta gamma beta alpha ", 50)
	ds, vocab, err := ReadCorpus("toy", strings.NewReader(text), CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vocab.Size() != 3 {
		t.Fatalf("vocab size %d", vocab.Size())
	}
	if vocab.Word(0) != "alpha" && vocab.Word(0) != "beta" {
		t.Errorf("top word %q", vocab.Word(0))
	}
	if id, ok := vocab.ID("beta"); !ok || vocab.Count(id) != 100 {
		t.Errorf("beta count wrong")
	}
	if ds.Features() != 3 || ds.Len() == 0 {
		t.Errorf("dataset shape %d/%d", ds.Features(), ds.Len())
	}

	// Train a tiny word2vec on it through the public API.
	m, err := New(ds.Features(), 8, ds.NumLabels(),
		WithSimHash(3, 6), WithLinearHidden(), WithLearningRate(0.05),
		WithWorkers(1), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := m.TrainEpoch(ds, 64); err != nil {
			t.Fatal(err)
		}
	}
	if p1, _ := m.Evaluate(ds, 100, 1); p1 < 0.3 {
		t.Errorf("corpus word2vec failed to learn: P@1 = %.3f", p1)
	}

	if _, _, err := OpenCorpus("/nonexistent/corpus.txt", CorpusOptions{}); err == nil {
		t.Error("missing corpus accepted")
	}
	if _, _, err := ReadCorpus("x", strings.NewReader(""), CorpusOptions{}); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestDatasetHelpers(t *testing.T) {
	train, test := tinyData(t)
	if train.Name() == "" || train.Len() == 0 || test.Len() == 0 {
		t.Fatal("generation produced empty datasets")
	}
	st := train.Stats()
	if st.Features != train.Features() || st.Samples != train.Len() {
		t.Errorf("stats mismatch: %+v", st)
	}
	if train.ModelParams(16) <= 0 {
		t.Error("ModelParams not positive")
	}

	// XMC round trip through the public API.
	var buf bytes.Buffer
	if err := train.WriteXMC(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXMC("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != train.Len() {
		t.Errorf("round trip %d != %d", back.Len(), train.Len())
	}

	if _, err := OpenXMC("/nonexistent/file.txt"); err == nil {
		t.Error("OpenXMC of missing file should error")
	}

	// Other generators.
	if tr, te, err := WikiLike(1e-9, 1); err != nil || tr.Len() == 0 || te.Len() == 0 {
		t.Errorf("WikiLike: %v", err)
	}
	if tr, te, err := Text8Like(1e-9, 1); err != nil || tr.Len() == 0 || te.Len() == 0 {
		t.Errorf("Text8Like: %v", err)
	}
}
