package slide

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"github.com/slide-cpu/slide/internal/faultinject"
)

// sameEvent compares health events field-wise; losses compare by bit
// pattern so a NaN loss equals itself (a NonFinite event's Loss is NaN by
// construction, and NaN != NaN under ==).
func sameEvent(a, b HealthEvent) bool {
	return a.Kind == b.Kind && a.Step == b.Step && a.NonFinite == b.NonFinite &&
		math.Float64bits(a.Loss) == math.Float64bits(b.Loss) &&
		math.Float64bits(a.EWMA) == math.Float64bits(b.EWMA)
}

// armPoison arms a one-shot nan injection at the n-th TrainBatch call.
func armPoison(t *testing.T, rule string) {
	t.Helper()
	plan, err := faultinject.Parse(rule, 7)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)
}

// TestHealthVerdictWorkerIndependent: the NaN guard's verdict — which step
// trips, what kind, how many non-finite values — is bit-identical at any
// worker count on the deterministic sharded engine, because the count is an
// order-independent integer sum over per-shard logit scans.
func TestHealthVerdictWorkerIndependent(t *testing.T) {
	ds, _ := tinyData(t)
	var events []HealthEvent
	for _, w := range []int{1, 2, 4} {
		armPoison(t, "train.batch@5=nan:0")
		m, err := New(ds.Features(), 16, ds.NumLabels(),
			WithDWTA(3, 8),
			WithLearningRate(1e-3),
			WithShards(2),
			WithWorkers(w),
			WithSeed(17))
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewDatasetSource(ds, 16)
		if err != nil {
			t.Fatal(err)
		}
		var seen []HealthEvent
		tr, err := NewTrainer(m, src,
			WithEpochs(0), WithMaxSteps(10),
			WithOnHealth(func(ev HealthEvent) { seen = append(seen, ev) }))
		if err != nil {
			t.Fatal(err)
		}
		_, err = tr.Run(context.Background())
		faultinject.Disarm()
		var he *HealthError
		if !errors.As(err, &he) {
			t.Fatalf("W=%d: err = %v, want HealthError", w, err)
		}
		if len(seen) != 1 || !sameEvent(seen[0], he.Event) {
			t.Fatalf("W=%d: OnHealth saw %v, error carries %v", w, seen, he.Event)
		}
		if he.Event.Kind != HealthNonFinite || he.Event.Step != 5 || he.Event.NonFinite == 0 {
			t.Fatalf("W=%d: unexpected event %+v", w, he.Event)
		}
		events = append(events, he.Event)
	}
	for i := 1; i < len(events); i++ {
		if !sameEvent(events[i], events[0]) {
			t.Fatalf("verdict differs across worker counts: W=1 %+v vs %+v", events[0], events[i])
		}
	}
}

// TestAutoRollbackBitIdentical is the tentpole acceptance scenario: a NaN
// poisoned into step 8 is detected before anything persists, the trainer
// rolls back to the newest ring checkpoint, replays (with lrFactor 1.0,
// i.e. no retune), completes the full budget — and the final weights are
// bit-identical to a run that was never poisoned.
func TestAutoRollbackBitIdentical(t *testing.T) {
	ds, _ := tinyData(t)
	const total = 12

	clean := detModel(t, ds)
	runTrainer(t, clean, ds, total)
	want := modelBytes(t, clean)

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	armPoison(t, "train.batch@8=nan:0")

	m := detModel(t, ds)
	src, err := NewDatasetSource(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	var health []HealthEvent
	var rollbacks []RollbackEvent
	tr, err := NewTrainer(m, src,
		WithEpochs(0), WithMaxSteps(total),
		WithCheckpoints(ckpt, 2), WithCheckpointRetain(3),
		WithAutoRollback(2, 1.0),
		WithOnHealth(func(ev HealthEvent) { health = append(health, ev) }),
		WithOnRollback(func(ev RollbackEvent) { rollbacks = append(rollbacks, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Run(context.Background())
	if err != nil {
		t.Fatalf("poisoned run did not self-heal: %v", err)
	}
	if len(health) != 1 || health[0].Kind != HealthNonFinite || health[0].Step != 8 {
		t.Fatalf("health events = %+v, want one non-finite at step 8", health)
	}
	if len(rollbacks) != 1 {
		t.Fatalf("rollbacks = %+v, want exactly one", rollbacks)
	}
	rb := rollbacks[0]
	if rb.Attempt != 1 || rb.Step != 6 || rb.Checkpoint == "" || rb.LRScale != 1.0 {
		t.Fatalf("rollback event %+v, want attempt 1 from step 6 at lr scale 1", rb)
	}
	if !sameEvent(rb.Cause, health[0]) {
		t.Fatalf("rollback cause %+v != health event %+v", rb.Cause, health[0])
	}
	if m.Steps() != total {
		t.Fatalf("finished at step %d, want %d", m.Steps(), total)
	}
	if rep.Steps == 0 {
		t.Fatal("report covers no steps")
	}
	if !bytes.Equal(want, modelBytes(t, m)) {
		t.Fatal("self-healed weights differ from the never-poisoned run")
	}
	// The final checkpoint on disk is the healed model: valid and finite.
	final, used, err := LoadLastGood(ckpt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if used != ckpt || final.Steps() != total {
		t.Fatalf("final checkpoint %s at step %d, want %s at %d", used, final.Steps(), ckpt, total)
	}
	if err := final.Snapshot().CheckFinite(); err != nil {
		t.Fatalf("final checkpoint is not finite: %v", err)
	}
}

// TestAutoRollbackExhausted: a fault that re-fires on every replay burns
// the retry budget and surfaces the typed terminal error instead of
// looping forever.
func TestAutoRollbackExhausted(t *testing.T) {
	ds, _ := tinyData(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.slide")
	armPoison(t, "train.batch@6=nan:0")

	m := detModel(t, ds)
	src, err := NewDatasetSource(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, src,
		WithEpochs(0), WithMaxSteps(12),
		WithCheckpoints(ckpt, 2), WithCheckpointRetain(3),
		WithAutoRollback(1, 0.5),
		WithOnRollback(func(ev RollbackEvent) {
			// Sabotage the replay: poison the second batch of the retry too.
			plan, err := faultinject.Parse("train.batch@2=nan:0", 7)
			if err != nil {
				t.Error(err)
				return
			}
			faultinject.Arm(plan)
		}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Run(context.Background())
	var ex *RollbackExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want RollbackExhaustedError", err)
	}
	if ex.Attempts != 1 || ex.Event.Kind != HealthNonFinite {
		t.Fatalf("exhausted error %+v, want 1 attempt ending on non-finite", ex)
	}
}

// TestAutoRollbackOptionValidation: the rollback options reject nonsense at
// construction, not mid-run.
func TestAutoRollbackOptionValidation(t *testing.T) {
	ds, _ := tinyData(t)
	m := detModel(t, ds)
	src, err := NewDatasetSource(ds, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Rollback without checkpoints has nothing to roll back to.
	if _, err := NewTrainer(m, src, WithEpochs(1), WithAutoRollback(2, 0.5)); err == nil {
		t.Fatal("rollback without checkpoints accepted")
	}
	// An LR factor outside (0, 1] is not a backoff.
	if _, err := NewTrainer(m, src, WithEpochs(1),
		WithCheckpoints(filepath.Join(t.TempDir(), "ck"), 2),
		WithAutoRollback(2, 1.5)); err == nil {
		t.Fatal("lr factor > 1 accepted")
	}
	if _, err := NewTrainer(m, src, WithEpochs(1),
		WithCheckpoints(filepath.Join(t.TempDir(), "ck"), 2),
		WithAutoRollback(-1, 0.5)); err == nil {
		t.Fatal("negative retry budget accepted")
	}
}
