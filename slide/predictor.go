package slide

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// snapshotVersion numbers every Predictor ever snapshotted in this process,
// so serving pipelines can tell snapshots apart (and order them) without
// inspecting weights. Monotonic across all models.
var snapshotVersion atomic.Uint64

// Predictor is an immutable snapshot of a model's weights and LSH tables
// that serves inference concurrently: any number of goroutines may call any
// method at the same time, including while the source Model keeps training.
// Per-call scratch is drawn from an internal pool, so steady-state serving
// does not allocate beyond the returned result slices.
//
// A Predictor never changes — to pick up newer weights, take a fresh
// Snapshot and swap it in (e.g. via atomic.Pointer; see cmd/slide-serve).
type Predictor struct {
	p       *network.Predictor
	out     int
	version uint64
}

// Snapshot deep-copies the model's current weights and LSH tables into a
// Predictor. Call it between training calls — like Save, it must not run
// concurrently with TrainBatch/TrainEpoch — but once it returns, the
// snapshot is fully independent of further training.
func (m *Model) Snapshot() *Predictor {
	return &Predictor{
		p:       m.net.Snapshot(),
		out:     m.net.Config().OutputDim,
		version: snapshotVersion.Add(1),
	}
}

// Version returns the process-wide snapshot sequence number: every Snapshot
// call yields a strictly larger version, so a serving pipeline can expose
// which snapshot served a response and order snapshots without comparing
// weights.
func (p *Predictor) Version() uint64 { return p.version }

// Steps returns the optimizer step count of the source model at snapshot
// time — "how fresh is this snapshot" for serving observability.
func (p *Predictor) Steps() int64 { return p.p.Steps() }

// NumLabels returns the output dimensionality (the label-space size).
func (p *Predictor) NumLabels() int { return p.out }

// NumFeatures returns the input dimensionality — the exclusive upper bound
// on valid feature indices. Serving front ends should validate untrusted
// indices against it before calling Predict.
func (p *Predictor) NumFeatures() int { return p.p.Config().InputDim }

// Sampled reports whether the snapshot carries LSH tables, i.e. whether
// PredictSampled is available.
func (p *Predictor) Sampled() bool { return p.p.Sampled() }

// CheckFinite scans the snapshot's weights for NaN/Inf (full bias scans, a
// deterministic strided sample of the weight vectors) and returns an error
// naming the first bad parameter. Serving pipelines call it at admission to
// quarantine poisoned snapshots instead of swapping them in.
func (p *Predictor) CheckFinite() error { return p.p.CheckFinite() }

// Predict returns the top-k label ids for a sparse input, best first. It
// ranks the full output layer (exact inference); results are bit-identical
// to Model.Predict on the same weights.
func (p *Predictor) Predict(indices []int32, values []float32, k int) []int32 {
	return p.p.Predict(sparse.Vector{Indices: indices, Values: values}, k)
}

// PredictSampled returns the top-k label ids ranked over the LSH-retrieved
// candidates only — sub-linear approximate inference. Returns ErrNoSampling
// for snapshots of models built without LSH sampling; callers should fall
// back to the exact Predict.
func (p *Predictor) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	out, err := p.p.PredictSampled(sparse.Vector{Indices: indices, Values: values}, k)
	if err != nil {
		return nil, ErrNoSampling
	}
	return out, nil
}

// Scores writes the full output-layer logits for a sparse input into out
// (len = NumLabels).
func (p *Predictor) Scores(indices []int32, values []float32, out []float32) {
	p.p.Scores(sparse.Vector{Indices: indices, Values: values}, out)
}

// PredictBatch runs exact top-k prediction for every sample (Labels fields
// are ignored), fanning the batch out across GOMAXPROCS goroutines. The
// result is index-aligned with samples.
func (p *Predictor) PredictBatch(samples []Sample, k int) ([][]int32, error) {
	xs := make([]sparse.Vector, len(samples))
	for i, s := range samples {
		if len(s.Indices) != len(s.Values) {
			return nil, fmt.Errorf("slide: sample %d has %d indices but %d values",
				i, len(s.Indices), len(s.Values))
		}
		xs[i] = sparse.Vector{Indices: s.Indices, Values: s.Values}
	}
	return p.p.PredictBatch(xs, k), nil
}

// BatchEntry is one sample of a serving micro-batch: a sparse input plus
// its own top-k, so requests from different clients can share one coalesced
// batch without agreeing on k.
type BatchEntry struct {
	Indices []int32
	Values  []float32
	// K is the number of labels to return for this entry. K > NumLabels is
	// clamped (the Predict behavior); K <= 0 is an error — serving front
	// ends are expected to have resolved defaults before building entries.
	K int
}

// PredictEntries runs exact top-k prediction for a coalesced micro-batch
// with per-entry k. The output weight matrix is walked exactly once for the
// whole batch (row-outer, sample-inner), amortizing the dominant weight
// stream across the entries — the micro-batching win the serving pipeline
// exists for. out[i] is bit-identical to Predict(e.Indices, e.Values, e.K)
// for every entry, mixed k included.
//
// The call runs on the caller's goroutine; like Predict, concurrency comes
// from calling it on many goroutines (internal/serving runs one call per
// batcher worker). Use PredictBatch for single-caller data-parallel fan-out.
func (p *Predictor) PredictEntries(entries []BatchEntry) ([][]int32, error) {
	xs := make([]sparse.Vector, len(entries))
	ks := make([]int, len(entries))
	for i, e := range entries {
		if len(e.Indices) != len(e.Values) {
			return nil, fmt.Errorf("slide: entry %d has %d indices but %d values",
				i, len(e.Indices), len(e.Values))
		}
		if e.K <= 0 {
			return nil, fmt.Errorf("slide: entry %d has non-positive k %d", i, e.K)
		}
		xs[i] = sparse.Vector{Indices: e.Indices, Values: e.Values}
		ks[i] = e.K
	}
	return p.p.PredictBatchK(xs, ks), nil
}

// Evaluate returns mean Precision@k over (up to) n samples of the dataset,
// scoring samples in parallel across GOMAXPROCS goroutines. The result is
// deterministic (per-sample precisions are reduced in sample order) and
// equals Model.Evaluate on the same weights.
func (p *Predictor) Evaluate(test *Dataset, n, k int) (float64, error) {
	if test == nil || test.Len() == 0 {
		return 0, ErrEmptyBatch
	}
	n = min(n, test.Len())
	per := make([]float64, n)
	nw := min(runtime.GOMAXPROCS(0), n)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += nw {
				per[i] = p.p.PrecisionAtK(test.d.Sample(i), test.d.LabelsOf(i), k)
			}
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, v := range per {
		sum += v
	}
	return sum / float64(n), nil
}
