package slide

import (
	"math/rand/v2"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/slide-cpu/slide/internal/faultinject"
)

// randomShardedSamples draws a deterministic stream of sparse samples for
// the sharded concurrency tests.
func randomShardedSamples(rng *rand.Rand, n, inputDim, outputDim int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		nnz := 3 + rng.IntN(5)
		s := Sample{
			Indices: make([]int32, 0, nnz),
			Values:  make([]float32, 0, nnz),
			Labels:  []int32{int32(rng.IntN(outputDim))},
		}
		seen := map[int32]bool{}
		for len(s.Indices) < nnz {
			id := int32(rng.IntN(inputDim))
			if seen[id] {
				continue
			}
			seen[id] = true
			s.Indices = append(s.Indices, id)
		}
		slices.Sort(s.Indices) // sparse vectors are strictly ascending
		for range s.Indices {
			s.Values = append(s.Values, rng.Float32()+0.1)
		}
		samples[i] = s
	}
	return samples
}

// TestShardedChaosConcurrentServing runs sharded TrainBatch with a scripted
// stall at the shard barrier while serving goroutines hammer PredictEntries
// against snapshots that are swapped mid-flight after every batch. Run under
// -race this is the torn-merge detector for the sharded engine: the barrier
// protocol must neither deadlock when a worker arrives late (the stall rule
// fires on real barrier arrivals — asserted) nor let a phase read partial
// shard results, and every snapshot must stay immutable under concurrent
// batched reads (PredictEntries bit-equal to Predict on the same snapshot).
func TestShardedChaosConcurrentServing(t *testing.T) {
	const (
		inputDim, hiddenDim, outputDim = 48, 24, 40
		shards, workers                = 4, 4
		batches, servers               = 24, 3
	)
	m, err := New(inputDim, hiddenDim, outputDim,
		WithDWTA(2, 6),
		WithShards(shards),
		WithWorkers(workers),
		WithActiveSet(12, 0),
		WithRebuildSchedule(5, 1),
		WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}

	// Stall every 7th barrier arrival: with W workers and ~8 barriers per
	// batch the late worker rotates across phases and worker indices.
	plan, err := faultinject.Parse("shard.barrier@every:7=stall:1ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	var snap atomic.Pointer[Predictor]
	snap.Store(m.Snapshot())

	rng := rand.New(rand.NewPCG(5, 17))
	query := randomShardedSamples(rng, 16, inputDim, outputDim)
	entries := make([]BatchEntry, len(query))
	for i, s := range query {
		entries[i] = BatchEntry{Indices: s.Indices, Values: s.Values, K: 1 + i%5}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, servers)
	for w := 0; w < servers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := snap.Load() // one immutable snapshot for the whole round
				got, err := p.PredictEntries(entries)
				if err != nil {
					errc <- err
					return
				}
				for i, ids := range got {
					if len(ids) != entries[i].K {
						t.Errorf("entry %d returned %d ids, want %d", i, len(ids), entries[i].K)
					}
					for _, id := range ids {
						if id < 0 || int(id) >= outputDim {
							t.Errorf("entry %d returned out-of-range id %d", i, id)
						}
					}
				}
				// Torn-merge probe: against the same immutable snapshot the
				// batched walk must be bit-identical to the direct path.
				i := int(p.Steps()) % len(entries)
				direct := p.Predict(entries[i].Indices, entries[i].Values, entries[i].K)
				for j := range direct {
					if got[i][j] != direct[j] {
						t.Errorf("snapshot step %d entry %d: batched %v vs direct %v",
							p.Steps(), i, got[i], direct)
						break
					}
				}
			}
		}()
	}

	for b := 0; b < batches; b++ {
		batch := randomShardedSamples(rng, 32, inputDim, outputDim)
		if _, err := m.TrainBatch(batch); err != nil {
			t.Fatal(err)
		}
		snap.Store(m.Snapshot()) // mid-flight swap under the servers
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if len(plan.Fired()) == 0 {
		t.Fatal("barrier stall rule never fired — the chaos run exercised nothing")
	}
}
