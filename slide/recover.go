package slide

import (
	"errors"
	"fmt"
	"os"

	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/train"
)

// ErrCorruptCheckpoint is wrapped by every load failure caused by checkpoint
// damage — a checksum mismatch, truncation, or a structurally impossible
// field. errors.Is(err, ErrCorruptCheckpoint) distinguishes "this file is
// damaged, fall back to an older checkpoint" from configuration or version
// errors that no fallback will fix.
var ErrCorruptCheckpoint = network.ErrCorruptCheckpoint

// CorruptSection reports which checkpoint section a load error blamed
// (config, hidden, middle, output, tables, rng, or preamble) and the byte
// offset of that section's payload. ok is false when err is not a
// corruption report.
func CorruptSection(err error) (section string, offset int64, ok bool) {
	var ce *network.CorruptError
	if !errors.As(err, &ce) {
		return "", 0, false
	}
	return ce.Section, ce.Offset, true
}

// LoadLastGood restores a model from the newest valid checkpoint in the
// retention ring rooted at path (see WithCheckpointRetain): it tries path,
// then path.1, path.2, … up to retain slots, skipping missing files and
// falling past damaged or unreadable ones. It returns the model and the
// path that actually loaded. When no slot holds a valid checkpoint the
// error joins every slot's failure (and wraps ErrCorruptCheckpoint if any
// slot was damaged rather than merely absent).
func LoadLastGood(path string, retain int) (*Model, string, error) {
	var failures []error
	for _, p := range train.RingPaths(path, retain) {
		f, err := os.Open(p)
		if err != nil {
			if !os.IsNotExist(err) {
				failures = append(failures, fmt.Errorf("slide: %w", err))
			}
			continue
		}
		m, err := Load(f)
		f.Close()
		if err == nil {
			return m, p, nil
		}
		failures = append(failures, fmt.Errorf("%s: %w", p, err))
	}
	if len(failures) == 0 {
		return nil, "", fmt.Errorf("slide: no checkpoint at %s (ring of %d)", path, max(retain, 1))
	}
	return nil, "", fmt.Errorf("slide: no valid checkpoint in ring: %w", errors.Join(failures...))
}
