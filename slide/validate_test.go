package slide

import (
	"errors"
	"testing"
)

// errorsIsBadSample reports whether err is a *BadSampleError for the given
// sample index (and matches the ErrBadSample sentinel).
func errorsIsBadSample(err error, sample int) bool {
	if err == nil || !errors.Is(err, ErrBadSample) {
		return false
	}
	var bse *BadSampleError
	return errors.As(err, &bse) && bse.Sample == sample
}

// badSampleCases are inputs that used to panic deep inside the kernels and
// must now surface as typed errors at the API boundary. The valid sample at
// index 0 pins the reported index to the offender.
var badSampleCases = []struct {
	name    string
	samples []Sample
}{
	{"mismatched lengths", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{1, 2}, Values: []float32{1}, Labels: []int32{0}},
	}},
	{"unsorted indices", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{5, 2}, Values: []float32{1, 1}, Labels: []int32{0}},
	}},
	{"duplicate indices", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{2, 2}, Values: []float32{1, 1}, Labels: []int32{0}},
	}},
	{"negative index", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{-1, 2}, Values: []float32{1, 1}, Labels: []int32{0}},
	}},
	{"index out of range", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{1_000_000}, Values: []float32{1}, Labels: []int32{0}},
	}},
	{"negative label", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{-3}},
	}},
	{"label out of range", []Sample{
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{0}},
		{Indices: []int32{1}, Values: []float32{1}, Labels: []int32{1_000_000}},
	}},
}

// TestTrainBatchRejectsBadSamples: every malformed shape is a typed
// *BadSampleError naming the offending sample, not a panic.
func TestTrainBatchRejectsBadSamples(t *testing.T) {
	m, err := New(100, 8, 20, WithDWTA(2, 6), WithWorkers(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range badSampleCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := m.TrainBatch(tc.samples)
			if !errorsIsBadSample(err, 1) {
				t.Fatalf("got %v, want BadSampleError for sample 1", err)
			}
		})
	}
	if m.Steps() != 0 {
		t.Fatal("rejected batches must not train")
	}
}

// TestInferenceRejectsBadSamples: Predict, PredictSampled and Scores apply
// the same boundary validation (label cases don't apply — inference inputs
// carry no labels).
func TestInferenceRejectsBadSamples(t *testing.T) {
	m, err := New(100, 8, 20, WithDWTA(2, 6), WithWorkers(1), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float32, 20)
	for _, tc := range badSampleCases {
		s := tc.samples[1]
		if len(s.Labels) > 0 && s.Labels[0] != 0 {
			continue // label defects: inference ignores labels
		}
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Predict(s.Indices, s.Values, 3); !errorsIsBadSample(err, 0) {
				t.Errorf("Predict: got %v, want BadSampleError", err)
			}
			if _, err := m.PredictSampled(s.Indices, s.Values, 3); !errorsIsBadSample(err, 0) {
				t.Errorf("PredictSampled: got %v, want BadSampleError", err)
			}
			if err := m.Scores(s.Indices, s.Values, scores); !errorsIsBadSample(err, 0) {
				t.Errorf("Scores: got %v, want BadSampleError", err)
			}
		})
	}
	// Scores also rejects a wrong-size buffer.
	if err := m.Scores([]int32{1}, []float32{1}, make([]float32, 3)); err == nil {
		t.Error("short Scores buffer accepted")
	}
	// Valid input still works.
	if _, err := m.Predict([]int32{1, 50}, []float32{1, 2}, 3); err != nil {
		t.Errorf("valid Predict rejected: %v", err)
	}
}

// TestNewBatchValidation: structural defects are rejected at batch build;
// range checks happen later against the model.
func TestNewBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil); err != ErrEmptyBatch {
		t.Errorf("empty: %v", err)
	}
	if _, err := NewBatch([]Sample{
		{Indices: []int32{1}, Values: []float32{1}},
		{Indices: []int32{5, 2}, Values: []float32{1, 1}},
	}); !errorsIsBadSample(err, 1) {
		t.Errorf("unsorted: %v", err)
	}
	b, err := NewBatch([]Sample{{Indices: []int32{1, 9}, Values: []float32{1, 2}, Labels: []int32{0}}})
	if err != nil || b.Len() != 1 {
		t.Errorf("valid batch: %v (len %d)", err, b.Len())
	}
	if (Batch{}).Len() != 0 {
		t.Error("zero Batch length")
	}
}

// TestKernelModeEnumeration: String round-trips and the host enumeration is
// ordered fastest-first with the always-available software tiers present.
func TestKernelModeEnumeration(t *testing.T) {
	want := map[KernelMode]string{
		VectorKernels:   "vector",
		ScalarKernels:   "scalar",
		PortableKernels: "portable",
		AVX2Kernels:     "avx2",
		AVX512Kernels:   "avx512",
		KernelMode(99):  "unknown",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}

	modes := AvailableKernelModes()
	if len(modes) < 2 {
		t.Fatalf("AvailableKernelModes = %v, want at least portable+scalar", modes)
	}
	if modes[len(modes)-1] != ScalarKernels || modes[len(modes)-2] != PortableKernels {
		t.Errorf("software tiers missing or misordered: %v", modes)
	}
	seen := map[KernelMode]bool{}
	for _, m := range modes {
		if m == VectorKernels {
			t.Errorf("auto mode listed in %v", modes)
		}
		if seen[m] {
			t.Errorf("duplicate mode in %v", modes)
		}
		seen[m] = true
	}

	// Every listed mode is selectable; unsupported tiers clamp, never crash.
	prev := KernelInfo()
	for _, m := range append(modes, AVX512Kernels, AVX2Kernels) {
		SetKernelMode(m)
	}
	SetKernelMode(VectorKernels)
	if KernelInfo() == "" || prev == "" {
		t.Error("KernelInfo empty")
	}
}
