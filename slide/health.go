package slide

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/health"
)

// Numerical health monitoring and self-healing rollback. With monitoring
// enabled the engine runs cheap per-step guards — a NaN/Inf scan of the
// active-set logits (order-independent, so the verdict is bit-identical at
// any worker or shard count) plus an EWMA loss-spike and divergence
// detector — and aborts the session with *HealthError before a red step can
// checkpoint or publish. WithAutoRollback turns the abort into recovery:
// reload the newest valid checkpoint from the retention ring, back off the
// learning rate, and replay; the replay is deterministic, so once past a
// transient fault window the healed run is bit-identical to a run that
// never faulted (given an unchanged LR scale).

// HealthKind classifies a red health verdict.
type HealthKind int

const (
	// HealthNonFinite: NaN/Inf in the logits or the batch loss.
	HealthNonFinite HealthKind = iota + 1
	// HealthLossSpike: batch mean loss exceeded SpikeFactor x the EWMA.
	HealthLossSpike
	// HealthDivergence: batch mean loss exceeded the configured ceiling.
	HealthDivergence
)

// String implements fmt.Stringer.
func (k HealthKind) String() string {
	switch k {
	case HealthNonFinite:
		return "non-finite"
	case HealthLossSpike:
		return "loss-spike"
	case HealthDivergence:
		return "divergence"
	default:
		return "unknown"
	}
}

// HealthEvent describes one red health verdict.
type HealthEvent struct {
	// Kind classifies the verdict.
	Kind HealthKind
	// Step is the optimizer step of the offending batch.
	Step int64
	// Loss is the batch mean loss; EWMA the detector's smoothed loss at the
	// time of the verdict.
	Loss, EWMA float64
	// NonFinite is the number of non-finite logits the guards counted
	// (HealthNonFinite only).
	NonFinite int64
}

// String implements fmt.Stringer.
func (e HealthEvent) String() string {
	switch e.Kind {
	case HealthNonFinite:
		return fmt.Sprintf("non-finite values at step %d (%d logits, loss %g)", e.Step, e.NonFinite, e.Loss)
	case HealthLossSpike:
		return fmt.Sprintf("loss spike at step %d (%g vs EWMA %g)", e.Step, e.Loss, e.EWMA)
	case HealthDivergence:
		return fmt.Sprintf("divergence at step %d (loss %g)", e.Step, e.Loss)
	default:
		return fmt.Sprintf("health event at step %d", e.Step)
	}
}

func healthEvent(e health.Event) HealthEvent {
	return HealthEvent{
		Kind: HealthKind(e.Kind), Step: e.Step,
		Loss: e.Loss, EWMA: e.EWMA, NonFinite: e.NonFinite,
	}
}

// HealthConfig tunes the monitor. The zero value means defaults.
type HealthConfig struct {
	// Warmup is the number of batches observed before spike detection arms
	// (default 20) — early-training loss is legitimately volatile.
	Warmup int
	// Alpha is the EWMA smoothing factor in (0, 1] (default 0.1).
	Alpha float64
	// SpikeFactor flags a batch whose mean loss exceeds SpikeFactor x EWMA
	// (default 3; <= 1 disables spike detection).
	SpikeFactor float64
	// DivergenceLoss flags any batch mean loss above this ceiling,
	// warmup or not (default 0 = disabled).
	DivergenceLoss float64
}

// HealthError is the typed error a session returns when the health monitor
// flags a red batch and auto-rollback is off (or exhausted before this
// attempt started). The newest checkpoint on disk predates the fault.
type HealthError struct {
	Event HealthEvent
}

// Error implements error.
func (e *HealthError) Error() string { return fmt.Sprintf("health abort: %s", e.Event) }

// RollbackExhaustedError is the terminal error when every WithAutoRollback
// retry was spent and the monitor still flagged the run.
type RollbackExhaustedError struct {
	// Attempts is the number of rollbacks performed.
	Attempts int
	// Event is the verdict that ended the final attempt.
	Event HealthEvent
}

// Error implements error.
func (e *RollbackExhaustedError) Error() string {
	return fmt.Sprintf("rollback budget exhausted after %d attempt(s): %s", e.Attempts, e.Event)
}

// RollbackEvent reports one automatic rollback, delivered to WithOnRollback
// after the model has been restored and before the replay starts.
type RollbackEvent struct {
	// Attempt is the 1-based rollback count within this Run.
	Attempt int
	// Step is the optimizer step of the checkpoint restored.
	Step int64
	// Checkpoint is the ring path that loaded.
	Checkpoint string
	// Cause is the health verdict that triggered the rollback.
	Cause HealthEvent
	// LRScale is the cumulative learning-rate factor the replay will use.
	LRScale float64
}

// WithHealthMonitor enables numerical health monitoring with explicit
// detector settings: per-step NaN/Inf guards on the training pass plus
// EWMA loss-spike and divergence detection. A red verdict aborts Run with
// *HealthError — before the offending step can checkpoint or publish a
// snapshot — unless WithAutoRollback turns it into recovery.
func WithHealthMonitor(cfg HealthConfig) TrainerOption {
	return func(o *trainerOptions) { o.health = &cfg }
}

// WithOnHealth registers a hook called on every red health verdict, right
// before the session aborts (and, under WithAutoRollback, rolls back).
// Implies monitoring with default settings.
func WithOnHealth(fn func(HealthEvent)) TrainerOption {
	return func(o *trainerOptions) { o.onHealth = fn }
}

// WithAutoRollback closes the detect → rollback → retune loop: when the
// health monitor flags the run, the trainer reloads the newest valid
// checkpoint from the retention ring (LoadLastGood), multiplies the
// learning rate by lrFactor (compounding per rollback; 1.0 replays at full
// rate), and resumes deterministically. After maxRetries rollbacks the next
// red verdict returns *RollbackExhaustedError. Implies monitoring with
// default settings; requires WithCheckpoints.
func WithAutoRollback(maxRetries int, lrFactor float64) TrainerOption {
	return func(o *trainerOptions) { o.rollbackMax, o.rollbackLR = maxRetries, lrFactor }
}

// WithOnRollback registers a hook called after every automatic rollback,
// once the model is restored and before the replay starts.
func WithOnRollback(fn func(RollbackEvent)) TrainerOption {
	return func(o *trainerOptions) { o.onRollback = fn }
}
