package slide

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Batch is an opaque, immutable training batch in the coalesced CSR layout
// (§4.1) — what a DataSource yields to a Trainer. Build one from samples
// with NewBatch; the built-in sources construct theirs directly from
// already-validated storage with zero copies.
type Batch struct {
	b sparse.Batch
}

// Len returns the number of samples in the batch (0 for the zero Batch).
func (b Batch) Len() int {
	if b.b == nil {
		return 0
	}
	return b.b.Len()
}

// NewBatch validates samples (paired lengths, strictly ascending indices)
// and packs them into the coalesced layout. Feature/label ranges are checked
// against the model when the batch reaches a Trainer. Returns ErrEmptyBatch
// for no samples and a *BadSampleError naming the offending sample otherwise.
func NewBatch(samples []Sample) (Batch, error) {
	if len(samples) == 0 {
		return Batch{}, ErrEmptyBatch
	}
	var bld sparse.Builder
	for i, s := range samples {
		if err := validateSample(s, -1, -1); err != nil {
			return Batch{}, &BadSampleError{Sample: i, Err: err}
		}
		bld.Add(s.Indices, s.Values, s.Labels)
	}
	csr, err := bld.CSR()
	if err != nil {
		return Batch{}, err
	}
	return Batch{b: csr}, nil
}

// DataSource feeds a Trainer batches of training data, one pass ("epoch")
// per Reset. The contract:
//
//   - Reset(seed) begins a new pass; seed drives any shuffling, so a pass is
//     a pure function of (source, seed). Sources that cannot shuffle (e.g.
//     sequential streams) may ignore the seed.
//   - Next returns the pass's batches in order, then io.EOF. The final batch
//     may be short. A returned Batch is valid until the next Next or Reset.
//
// Three implementations ship with the package — NewDatasetSource (in-memory,
// iteration bit-identical to the legacy TrainEpoch), NewFileSource
// (streaming XMC/SVMlight file, out-of-core with bounded memory), and
// NewSyntheticSource (generator, never materialized) — and any type
// implementing the interface can feed a Trainer: batches built with NewBatch
// are range-validated against the model as they arrive.
type DataSource interface {
	// Name labels the workload for logs and reports.
	Name() string
	// Features is the input dimensionality (exclusive index bound).
	Features() int
	// NumLabels is the label-space size.
	NumLabels() int
	// Reset begins a new pass with the given shuffle seed.
	Reset(seed uint64) error
	// Next returns the next batch, or io.EOF at the end of the pass.
	Next() (Batch, error)
}

// internalSource wraps a dataset.Source as a DataSource whose batches are
// trusted (validated at parse/generation time), so the Trainer skips
// per-batch range checks.
type internalSource struct {
	s dataset.Source
}

func (w internalSource) Name() string            { return w.s.Name() }
func (w internalSource) Features() int           { return w.s.Features() }
func (w internalSource) NumLabels() int          { return w.s.Labels() }
func (w internalSource) Reset(seed uint64) error { return w.s.Reset(seed) }

func (w internalSource) Next() (Batch, error) {
	b, err := w.s.Next()
	if err != nil {
		return Batch{}, err
	}
	return Batch{b: b}, nil
}

// trusted exposes the inner source to the Trainer (and marks the batches as
// pre-validated).
func (w internalSource) trusted() dataset.Source { return w.s }

// sizedSource additionally forwards the known batches-per-epoch, which the
// Trainer's resume fast-forward requires.
type sizedSource struct {
	internalSource
	sized dataset.Sized
}

// BatchesPerEpoch returns the number of batches one pass yields.
func (w sizedSource) BatchesPerEpoch() int { return w.sized.BatchesPerEpoch() }

// wrapInternal picks the sized wrapper when the inner source knows its pass
// length.
func wrapInternal(s dataset.Source) DataSource {
	if sized, ok := s.(dataset.Sized); ok {
		return sizedSource{internalSource{s}, sized}
	}
	return internalSource{s}
}

// NewDatasetSource adapts an in-memory Dataset: each pass is a seeded
// shuffle in batches of batchSize, bit-identical to the iteration the legacy
// Model.TrainEpoch ran.
func NewDatasetSource(d *Dataset, batchSize int) (DataSource, error) {
	if d == nil || d.Len() == 0 {
		return nil, ErrEmptyBatch
	}
	src, err := dataset.NewMemorySource(d.d, batchSize, sparse.Coalesced)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return wrapInternal(src), nil
}

// NewFileSource streams an XMC/SVMlight-format file (the format OpenXMC
// reads and slide-data writes) as training batches without loading it into
// memory — the out-of-core path for datasets larger than RAM. Each pass
// re-reads the file; shuffleWindow > 1 decorrelates the stream by emitting a
// uniform draw from a rolling window of that many samples (0 or 1 preserves
// file order). Resident memory is bounded by the window plus one batch,
// independent of file size.
func NewFileSource(path string, batchSize, shuffleWindow int) (DataSource, error) {
	src, err := dataset.NewFileSource(path, batchSize, shuffleWindow)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return wrapInternal(src), nil
}

// NewSyntheticSource streams the planted-model synthetic workload — the
// AmazonLike/WikiLike generators as an endless source that never
// materializes a dataset. workload is "amazon" or "wiki"; each pass draws
// the scaled workload's train-split size in fresh samples, so successive
// epochs see new data.
func NewSyntheticSource(workload string, scale float64, batchSize int, seed uint64) (DataSource, error) {
	var cfg dataset.SyntheticConfig
	switch workload {
	case "amazon":
		cfg = dataset.Amazon670K(scale, seed)
	case "wiki":
		cfg = dataset.WikiLSH325K(scale, seed)
	default:
		return nil, fmt.Errorf("slide: unknown synthetic workload %q (amazon|wiki)", workload)
	}
	src, err := dataset.NewSyntheticSource(cfg, batchSize)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return wrapInternal(src), nil
}
