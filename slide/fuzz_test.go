package slide

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fuzzRetain is the ring size the fuzz target exercises: primary + two
// fallbacks, the smallest shape with interesting fall-through behavior.
const fuzzRetain = 3

// ringSlot mirrors train.RingPaths naming: base, base.1, base.2, …
func ringSlot(base string, i int) string {
	if i == 0 {
		return base
	}
	return fmt.Sprintf("%s.%d", base, i)
}

var (
	ringOnce  sync.Once
	ringSlots [][]byte // pristine checkpoint bytes, index = ring slot (0 newest)
	ringSteps []int64  // step count each slot encodes
	ringErr   error
)

// ringTemplate trains a tiny deterministic model for fuzzRetain steps with a
// checkpoint every step, capturing each ring slot's valid bytes once. Every
// fuzz iteration copies these into a fresh directory before corrupting them.
func ringTemplate() ([][]byte, []int64, error) {
	ringOnce.Do(func() {
		dir, err := os.MkdirTemp("", "slide-fuzz-ring")
		if err != nil {
			ringErr = err
			return
		}
		defer os.RemoveAll(dir)
		ckpt := filepath.Join(dir, "ck.slide")
		ds, _, err := AmazonLike(1e-9, 3)
		if err != nil {
			ringErr = err
			return
		}
		m, err := New(ds.Features(), 16, ds.NumLabels(),
			WithDWTA(3, 8),
			WithLearningRate(1e-3),
			WithWorkers(1),
			WithLockedGradients(),
			WithSeed(17))
		if err != nil {
			ringErr = err
			return
		}
		src, err := NewDatasetSource(ds, 16)
		if err != nil {
			ringErr = err
			return
		}
		tr, err := NewTrainer(m, src,
			WithEpochs(0), WithMaxSteps(fuzzRetain),
			WithCheckpoints(ckpt, 1), WithCheckpointRetain(fuzzRetain))
		if err != nil {
			ringErr = err
			return
		}
		if _, err := tr.Run(context.Background()); err != nil {
			ringErr = err
			return
		}
		for i := 0; i < fuzzRetain; i++ {
			raw, err := os.ReadFile(ringSlot(ckpt, i))
			if err != nil {
				ringErr = err
				return
			}
			mi, err := Load(bytes.NewReader(raw))
			if err != nil {
				ringErr = fmt.Errorf("template slot %d does not load: %w", i, err)
				return
			}
			ringSlots = append(ringSlots, raw)
			ringSteps = append(ringSteps, mi.Steps())
		}
	})
	return ringSlots, ringSteps, ringErr
}

// FuzzLoadLastGood corrupts a valid retention ring under fuzzer control —
// per slot: leave pristine, delete, truncate, flip one bit, or smash the
// magic — and asserts the recovery invariant: LoadLastGood returns the
// newest slot that loads cleanly (bit-identical to the pristine template,
// i.e. a damaged checkpoint never loads), or an error when no slot does.
func FuzzLoadLastGood(f *testing.F) {
	f.Add([]byte{0, 0, 0})            // pristine ring
	f.Add([]byte{1, 0, 0})            // newest missing
	f.Add([]byte{2, 30, 3, 40, 2, 0}) // truncated, bit-flipped, fall to oldest
	f.Add([]byte{1, 1, 1})            // all missing
	f.Add([]byte{4, 4, 4})            // all smashed
	f.Add([]byte{2, 0, 2, 0, 2, 0})   // all truncated to zero bytes
	f.Add([]byte{3, 200, 7, 0, 1})    // deep bit flip in the newest
	f.Fuzz(func(t *testing.T, ops []byte) {
		slots, steps, err := ringTemplate()
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "ck.slide")

		k := 0
		next := func() byte {
			if k < len(ops) {
				b := ops[k]
				k++
				return b
			}
			return 0
		}
		pristine := make([]bool, fuzzRetain)
		for i := 0; i < fuzzRetain; i++ {
			b := append([]byte(nil), slots[i]...)
			write := true
			switch next() % 5 {
			case 0:
				pristine[i] = true
			case 1:
				write = false // missing slot
			case 2: // truncate to a fuzzer-chosen fraction (possibly empty)
				b = b[:int(next())*len(b)/256]
			case 3: // flip one fuzzer-chosen bit
				off := int(next()) * len(b) / 256
				b[off] ^= 1 << (next() % 8)
			case 4: // smash the magic
				copy(b, "SLIDnope")
			}
			if write {
				if err := os.WriteFile(ringSlot(ckpt, i), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}

		m, used, err := LoadLastGood(ckpt, fuzzRetain)
		if err != nil {
			// Refusal must mean no pristine slot existed: a valid checkpoint
			// may never be skipped.
			for i, ok := range pristine {
				if ok {
					t.Fatalf("LoadLastGood refused a ring with pristine slot %d: %v", i, err)
				}
			}
			return
		}
		// Success must name a real slot holding exactly the template bytes —
		// a corrupted slot loading (or a pristine one re-serializing
		// differently) both fail the bit-compare.
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < fuzzRetain; i++ {
			if used != ringSlot(ckpt, i) {
				continue
			}
			if !bytes.Equal(buf.Bytes(), slots[i]) {
				t.Fatalf("slot %d loaded but re-serializes differently: corrupt load", i)
			}
			if m.Steps() != steps[i] {
				t.Fatalf("slot %d loaded with step %d, want %d", i, m.Steps(), steps[i])
			}
			// Every newer slot must be damaged or absent, or it should have won.
			for j := 0; j < i; j++ {
				if pristine[j] {
					t.Fatalf("slot %d served while newer pristine slot %d exists", i, j)
				}
			}
			return
		}
		t.Fatalf("LoadLastGood returned unknown path %q", used)
	})
}
