package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slide-cpu/slide/internal/harness"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// The sharded trainer's contract is that the worker count is purely an
// execution resource: the shard count S is a model property, and a batch
// runs as barrier-separated phases whose reductions are either shard-owned,
// canonical-ordered, or elementwise-disjoint. These tests hold it to the
// strongest possible reading — not statistical equivalence like the kernel
// modes test, but bit-identity of weights, checkpoint bytes, delta payloads
// and served scores for every worker count.

// shardedRun trains cfg for steps batches from the workload's deterministic
// iterator, publishing a base snapshot halfway and a delta at the end, and
// returns every byte-comparable artifact of the run.
type shardedArtifacts struct {
	checkpoint []byte   // full Save bytes after the last step
	baseParts  [5][]byte // config, hidden, middle, output, tables at half-way
	deltaParts [4][]byte // hidden, middle, output, tables (nil without rebuild)
	deltaSteps [2]int64
	scores     []float32 // concatenated eval scores from the final snapshot
	preds      []int32   // concatenated top-3 ids from the final snapshot
}

// batchFeeder yields an endless deterministic batch stream: the workload's
// iterator, reseeded by absolute step index when it runs dry — so the batch
// at step s is a pure function of (workload, seed, s), and two runs (or a
// checkpoint resume skipping ahead) consume identical data.
func batchFeeder(t *testing.T, w *harness.Workload, opts harness.Options) func() sparse.Batch {
	t.Helper()
	it := w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
	step := 0
	return func() sparse.Batch {
		b, ok := it.Next()
		if !ok {
			it = w.Train.Iter(w.Batch, sparse.Coalesced, opts.Seed+uint64(step))
			if b, ok = it.Next(); !ok {
				t.Fatal("workload too small for the batch schedule")
			}
		}
		step++
		return b
	}
}

func shardedRun(t *testing.T, w *harness.Workload, opts harness.Options,
	prec layer.Precision, place layer.Placement, workers, shards, steps int) *shardedArtifacts {
	t.Helper()
	cfg := w.NetworkConfig(opts, prec, place)
	cfg.Workers = workers
	cfg.Shards = shards
	net, err := network.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.EnableDeltaTracking()
	next := batchFeeder(t, w, opts)
	step := func() { net.TrainBatch(next()) }
	a := &shardedArtifacts{}
	for s := 0; s < steps/2; s++ {
		step()
	}
	base, d := net.SnapshotDelta()
	if d != nil {
		t.Fatal("first snapshot must be a full base, not a delta")
	}
	enc := func(f func(w *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a.baseParts[0] = enc(func(b *bytes.Buffer) error { return base.WriteBaseConfig(b) })
	a.baseParts[1] = enc(func(b *bytes.Buffer) error { return base.WriteHidden(b) })
	a.baseParts[2] = enc(func(b *bytes.Buffer) error { return base.WriteMiddle(b) })
	a.baseParts[3] = enc(func(b *bytes.Buffer) error { return base.WriteOutput(b) })
	a.baseParts[4] = enc(func(b *bytes.Buffer) error { return base.WriteTables(b) })
	for s := steps / 2; s < steps; s++ {
		step()
	}
	final, d := net.SnapshotDelta()
	if d == nil {
		t.Fatal("second snapshot must carry a delta")
	}
	a.deltaSteps = [2]int64{d.FromStep, d.ToStep}
	a.deltaParts[0] = enc(func(b *bytes.Buffer) error { return d.WriteHidden(b) })
	a.deltaParts[1] = enc(func(b *bytes.Buffer) error { return d.WriteMiddle(b) })
	a.deltaParts[2] = enc(func(b *bytes.Buffer) error { return d.WriteOutput(b) })
	if d.TablesChanged {
		a.deltaParts[3] = enc(func(b *bytes.Buffer) error { return d.WriteTables(b) })
	}
	a.checkpoint = enc(func(b *bytes.Buffer) error { return net.Save(b) })
	n := min(8, w.Test.Len())
	buf := make([]float32, cfg.OutputDim)
	for i := 0; i < n; i++ {
		final.Scores(w.Test.Sample(i), buf)
		a.scores = append(a.scores, buf...)
		a.preds = append(a.preds, final.Predict(w.Test.Sample(i), 3)...)
	}
	return a
}

// TestShardedWorkerCountDeterminism trains the same sharded model at W in
// {1, 2, 4, 8} across the Precision x Placement matrix and requires every
// artifact — checkpoint bytes, base-snapshot payloads, delta payloads, and
// served scores/rankings — to be bit-identical to the W=1 run. 20 steps with
// RebuildEvery well inside that window exercises the scheduled per-shard
// rebuild (so the delta carries tables) under every worker count.
func TestShardedWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full worker-count matrix; skipped in -short (race CI runs the focused lane)")
	}
	opts := harness.Options{Scale: 1e-6, Epochs: 1, EvalPointsPerEpoch: 1,
		EvalSamples: 60, Workers: 1, Seed: 1234}
	ws, err := harness.Workloads(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0] // Amazon-670K-like

	const steps, shards = 20, 3
	for _, prec := range []layer.Precision{layer.FP32, layer.BF16Act, layer.BF16Both} {
		for _, place := range []layer.Placement{layer.Contiguous, layer.Scattered} {
			t.Run(fmt.Sprintf("%v/%v", prec, place), func(t *testing.T) {
				ref := shardedRun(t, w, opts, prec, place, 1, shards, steps)
				for _, workers := range []int{2, 4, 8} {
					got := shardedRun(t, w, opts, prec, place, workers, shards, steps)
					if !bytes.Equal(got.checkpoint, ref.checkpoint) {
						t.Errorf("W=%d: checkpoint bytes diverge from W=1 (%d vs %d bytes)",
							workers, len(got.checkpoint), len(ref.checkpoint))
					}
					for i := range ref.baseParts {
						if !bytes.Equal(got.baseParts[i], ref.baseParts[i]) {
							t.Errorf("W=%d: base payload %d diverges from W=1", workers, i)
						}
					}
					if got.deltaSteps != ref.deltaSteps {
						t.Errorf("W=%d: delta spans steps %v, W=1 spans %v", workers, got.deltaSteps, ref.deltaSteps)
					}
					for i := range ref.deltaParts {
						if !bytes.Equal(got.deltaParts[i], ref.deltaParts[i]) {
							t.Errorf("W=%d: delta payload %d diverges from W=1", workers, i)
						}
					}
					for i, s := range ref.scores {
						if got.scores[i] != s {
							t.Fatalf("W=%d: score %d is %g, W=1 scored %g", workers, i, got.scores[i], s)
						}
					}
					for i, p := range ref.preds {
						if got.preds[i] != p {
							t.Fatalf("W=%d: prediction %d is %d, W=1 predicted %d", workers, i, got.preds[i], p)
						}
					}
				}
			})
		}
	}
}

// TestShardedCrossWorkerResume proves a sharded checkpoint is portable across
// worker counts: a checkpoint written at W=4 resumes at W=2 and the
// continuation is bit-identical — same final checkpoint bytes, and a replica
// fed the W=4 trainer's base + delta stream lands on the same scores as a
// snapshot of the resumed W=2 trainer.
func TestShardedCrossWorkerResume(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end resume matrix; skipped in -short")
	}
	opts := harness.Options{Scale: 1e-6, Epochs: 1, EvalPointsPerEpoch: 1,
		EvalSamples: 60, Workers: 1, Seed: 4321}
	ws, err := harness.Workloads(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]
	const half, shards = 10, 4

	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	cfg.Workers = 4
	cfg.Shards = shards
	net4, err := network.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	net4.EnableDeltaTracking()
	next4 := batchFeeder(t, w, opts)
	for s := 0; s < half; s++ {
		net4.TrainBatch(next4())
	}
	var ckpt bytes.Buffer
	if err := net4.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	base, _ := net4.SnapshotDelta()
	enc := func(f func(w *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	parts := network.BaseParts{
		Config: enc(func(b *bytes.Buffer) error { return base.WriteBaseConfig(b) }),
		Hidden: enc(func(b *bytes.Buffer) error { return base.WriteHidden(b) }),
		Middle: enc(func(b *bytes.Buffer) error { return base.WriteMiddle(b) }),
		Output: enc(func(b *bytes.Buffer) error { return base.WriteOutput(b) }),
		Tables: enc(func(b *bytes.Buffer) error { return base.WriteTables(b) }),
	}
	replica, err := network.NewPredictorFromBase(parts)
	if err != nil {
		t.Fatal(err)
	}
	if replica.ConfigChecksum() != base.ConfigChecksum() {
		t.Fatal("replica config fingerprint diverges from trainer")
	}

	// Resume the checkpoint at W=2 and replay the same continuation batches.
	net2, err := network.Load(bytes.NewReader(ckpt.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	if net2.ShardCount() != shards {
		t.Fatalf("resumed network has %d shards, want %d", net2.ShardCount(), shards)
	}
	next2 := batchFeeder(t, w, opts)
	for s := 0; s < half; s++ { // skip the batches the checkpoint already saw
		next2()
	}
	for s := 0; s < half; s++ {
		net4.TrainBatch(next4())
		net2.TrainBatch(next2())
	}
	var f4, f2 bytes.Buffer
	if err := net4.Save(&f4); err != nil {
		t.Fatal(err)
	}
	if err := net2.Save(&f2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f4.Bytes(), f2.Bytes()) {
		t.Errorf("resumed W=2 continuation checkpoint diverges from uninterrupted W=4 run")
	}

	// Replica path: apply the W=4 trainer's delta and compare against a
	// fresh snapshot of the resumed W=2 trainer — three routes to step 20
	// (direct, checkpoint resume, base+delta replication) must agree bitwise.
	_, d := net4.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta after the continuation")
	}
	dparts := network.DeltaParts{
		FromStep: d.FromStep, ToStep: d.ToStep,
		Hidden: enc(func(b *bytes.Buffer) error { return d.WriteHidden(b) }),
		Middle: enc(func(b *bytes.Buffer) error { return d.WriteMiddle(b) }),
		Output: enc(func(b *bytes.Buffer) error { return d.WriteOutput(b) }),
	}
	if d.TablesChanged {
		dparts.Tables = enc(func(b *bytes.Buffer) error { return d.WriteTables(b) })
	}
	applied, err := replica.ApplyDelta(dparts)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := net2.Snapshot()
	if applied.Steps() != snap2.Steps() {
		t.Fatalf("replica at step %d, resumed trainer at %d", applied.Steps(), snap2.Steps())
	}
	sa := make([]float32, cfg.OutputDim)
	sb := make([]float32, cfg.OutputDim)
	for i := 0; i < min(8, w.Test.Len()); i++ {
		x := w.Test.Sample(i)
		applied.Scores(x, sa)
		snap2.Scores(x, sb)
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("sample %d score %d: replica %g vs resumed trainer %g", i, j, sa[j], sb[j])
			}
		}
	}
}
