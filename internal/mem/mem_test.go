package mem

import "testing"

func TestArenaAllocContiguity(t *testing.T) {
	a := NewArena(100)
	s1 := a.Alloc(30)
	s2 := a.Alloc(70)
	if len(s1) != 30 || len(s2) != 70 {
		t.Fatalf("lengths %d, %d", len(s1), len(s2))
	}
	if a.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", a.Remaining())
	}
	// Adjacent allocations must be adjacent in memory.
	if &s1[:cap(s1)][29] == nil || &s2[0] != &a.buf[30] {
		t.Error("allocations are not contiguous")
	}
	// Zeroed on allocation.
	for i := range s1 {
		if s1[i] != 0 {
			t.Fatal("allocation not zeroed")
		}
	}
	// Writes must not leak across the capacity boundary.
	s1 = append(s1[:0], make([]float32, 30)...)
	if cap(s1) != 30 {
		t.Errorf("slice capacity not clamped: %d", cap(s1))
	}
}

func TestBackingAlignment(t *testing.T) {
	// Backing allocations start on a 64-byte boundary (one cache line, one
	// zmm register), for every allocation size including cache-line-odd ones.
	for _, n := range []int{1, 2, 15, 16, 17, 64, 100, 1000, 4096} {
		a := NewArena(n)
		s := a.Alloc(n)
		if !Aligned(s) {
			t.Errorf("NewArena(%d): first allocation not 64-byte aligned", n)
		}
		_, backing := Contiguous2D(3, n)
		if !Aligned(backing) {
			t.Errorf("Contiguous2D(3, %d): backing not 64-byte aligned", n)
		}
	}
	// Rows carved at multiples of 16 floats stay aligned for zmm loads.
	a := NewArena(64)
	r0 := a.Alloc(16)
	r1 := a.Alloc(32)
	r2 := a.Alloc(16)
	for i, r := range [][]float32{r0, r1, r2} {
		if !Aligned(r) {
			t.Errorf("arena row %d (16-multiple carve) not aligned", i)
		}
	}
	if !Aligned(nil) {
		t.Error("empty slice must report aligned")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	a := NewArena(10)
	a.Alloc(8)
	defer func() {
		if recover() == nil {
			t.Error("over-allocation did not panic")
		}
	}()
	a.Alloc(3)
}

func TestArenaNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative arena size did not panic")
		}
	}()
	NewArena(-1)
}

func TestArenaAllocNegativePanics(t *testing.T) {
	a := NewArena(4)
	defer func() {
		if recover() == nil {
			t.Error("negative Alloc did not panic")
		}
	}()
	a.Alloc(-1)
}

func TestContiguous2D(t *testing.T) {
	rows, backing := Contiguous2D(4, 8)
	if len(rows) != 4 || len(backing) != 32 {
		t.Fatalf("shape %d x %d, backing %d", len(rows), len(rows[0]), len(backing))
	}
	// Row i must alias backing[i*cols:].
	rows[2][3] = 42
	if backing[2*8+3] != 42 {
		t.Error("row view does not alias backing storage")
	}
	// Rows are capacity-clamped: appending to a row must not clobber the next.
	r := append(rows[0][:0], make([]float32, 9)...)
	if &r[0] == &rows[0][0] && backing[8] != 0 && rows[1][0] != 0 {
		t.Error("append through row view clobbered next row")
	}
}

func TestContiguous2DZeroDims(t *testing.T) {
	rows, backing := Contiguous2D(0, 5)
	if len(rows) != 0 || len(backing) != 0 {
		t.Error("zero rows should produce empty structures")
	}
	rows2, backing2 := Contiguous2D(3, 0)
	if len(rows2) != 3 || len(backing2) != 0 {
		t.Error("zero cols should produce 3 empty rows")
	}
}

func TestContiguous2DNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dims did not panic")
		}
	}()
	Contiguous2D(-1, 3)
}

func TestScattered2D(t *testing.T) {
	rows, decoys := Scattered2D(5, 7)
	if len(rows) != 5 || len(decoys) != 5 {
		t.Fatalf("got %d rows, %d decoys", len(rows), len(decoys))
	}
	for i, r := range rows {
		if len(r) != 7 {
			t.Fatalf("row %d has length %d", i, len(r))
		}
	}
	// Rows are independent allocations: writing one must not affect another.
	rows[0][6] = 1
	if rows[1][0] != 0 {
		t.Error("scattered rows alias each other")
	}
}

func TestScattered2DNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative dims did not panic")
		}
	}()
	Scattered2D(2, -2)
}
