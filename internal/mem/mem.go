// Package mem provides the parameter-memory substrate for the §4.1
// "Removing Parameter Memory Fragmentation" optimization.
//
// The optimized SLIDE reserves one big contiguous block per layer so that
// neighbouring neurons' weight vectors share cache lines and sequential
// prefetch; the naive SLIDE allocated every neuron's weights independently,
// scattering them across the heap. Contiguous2D and Scattered2D construct
// exactly those two layouts behind identical [][]float32 views, so the rest
// of the system (and the ablation harness) can switch layouts without
// touching kernel code.
// All backing allocations are aligned to 64 bytes (one cache line, one
// AVX-512 register): alignedSlice over-allocates by one cache line and
// re-slices to the first aligned element. Rows carved at offsets that are
// multiples of 16 floats therefore start cache-line- and zmm-aligned; rows
// at other offsets are unaligned, and kernels must (and do) use unaligned
// loads — only the backing block start is guaranteed.
package mem

import (
	"fmt"
	"unsafe"
)

// alignBytes is the backing-allocation alignment: one cache line, which is
// also the width of one AVX-512 register.
const alignBytes = 64

// alignedSlice returns a zeroed length-n float32 slice whose first element
// sits on a 64-byte boundary (pad-and-slice over a make allocation).
func alignedSlice(n int) []float32 {
	if n == 0 {
		return nil
	}
	const pad = alignBytes / 4 // elements per cache line
	buf := make([]float32, n+pad-1)
	off := 0
	if rem := uintptr(unsafe.Pointer(&buf[0])) % alignBytes; rem != 0 {
		off = int((alignBytes - rem) / 4)
	}
	return buf[off : off+n : off+n]
}

// Aligned reports whether the first element of s sits on a 64-byte boundary
// (exported for the alignment tests and debug assertions; empty slices are
// trivially aligned).
func Aligned(s []float32) bool {
	if len(s) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&s[0]))%alignBytes == 0
}

// Arena hands out contiguous float32 sub-slices from one backing allocation.
// It is not safe for concurrent use; layers allocate from it at build time
// only.
type Arena struct {
	buf []float32
	off int
}

// NewArena allocates an arena with capacity for n float32 values. The
// backing block starts on a 64-byte boundary.
func NewArena(n int) *Arena {
	if n < 0 {
		panic("mem: negative arena size")
	}
	return &Arena{buf: alignedSlice(n)}
}

// Alloc returns a zeroed length-n slice carved from the arena. Consecutive
// calls return adjacent memory. It panics if the arena is exhausted —
// layer construction sizes the arena exactly, so overflow is a bug.
func (a *Arena) Alloc(n int) []float32 {
	if n < 0 {
		panic("mem: negative allocation")
	}
	if a.off+n > len(a.buf) {
		panic(fmt.Sprintf("mem: arena exhausted (%d of %d used, want %d more)",
			a.off, len(a.buf), n))
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Remaining returns the number of unallocated float32 slots.
func (a *Arena) Remaining() int { return len(a.buf) - a.off }

// Contiguous2D returns rows×cols as row views into one contiguous backing
// slice (also returned, for whole-block kernels such as the fused ADAM pass
// of §4.3.1). The backing block starts on a 64-byte boundary.
func Contiguous2D(rows, cols int) ([][]float32, []float32) {
	if rows < 0 || cols < 0 {
		panic("mem: negative dimensions")
	}
	backing := alignedSlice(rows * cols)
	views := make([][]float32, rows)
	for i := range views {
		views[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return views, backing
}

// Scattered2D returns rows×cols with every row allocated independently and
// decoy allocations interleaved between rows, reproducing the fragmented
// heap placement of per-neuron weight vectors in naive SLIDE. The decoys are
// retained (returned) so the runtime cannot coalesce the rows.
func Scattered2D(rows, cols int) ([][]float32, [][]float32) {
	if rows < 0 || cols < 0 {
		panic("mem: negative dimensions")
	}
	views := make([][]float32, rows)
	decoys := make([][]float32, 0, rows)
	for i := range views {
		views[i] = make([]float32, cols)
		// Interleave a small decoy allocation so consecutive rows land on
		// different heap chunks rather than a tight bump-allocated run.
		decoys = append(decoys, make([]float32, 8))
	}
	return views, decoys
}
