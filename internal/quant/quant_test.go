package quant

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/simd"
)

// testRowWeights builds an f32 RowWeights view via the layer constructor +
// snapshot path (the quantizer consumes real views exactly as Snapshot
// produces them): Gaussian weights from the seed, nonzero biases.
func testRowWeights(t *testing.T, in, out int, seed uint64) *layer.RowWeights {
	t.Helper()
	l := layer.NewRowLayer(in, out, layer.Options{Seed: seed})
	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < out; i++ {
		l.PoisonBias(i, float32(rng.NormFloat64()))
	}
	return l.SnapshotWeights()
}

// poisonRow overwrites one element of a snapshot row in place — FP32 views
// hand back live storage from RowF32, which is exactly what fault injection
// needs here.
func poisonRow(w *layer.RowWeights, row, el int, v float32) {
	w.RowF32(row, nil)[el] = v
}

func TestQuantizeRoundTripAccuracy(t *testing.T) {
	// Quantize, then verify every element dequantizes back within half a
	// quantization step — the defining bound of round-to-nearest.
	for _, in := range []int{1, 7, 16, 64, 65, 128} {
		src := testRowWeights(t, in, 32, uint64(in))
		q, err := QuantizeRowWeights(src, 8)
		if err != nil {
			t.Fatalf("in=%d: QuantizeRowWeights: %v", in, err)
		}
		buf := make([]float32, in)
		for i := 0; i < 32; i++ {
			row := src.RowF32(i, buf)
			sc := q.Scale(int32(i))
			for j, v := range row {
				got := float32(q.Row8(int32(i))[j]) * sc
				if diff := math.Abs(float64(got - v)); diff > float64(sc)/2+1e-6 {
					t.Fatalf("in=%d row %d[%d]: dequant %v vs %v (scale %v, diff %v)",
						in, i, j, got, v, sc, diff)
				}
			}
		}
	}
}

func TestQuantizeInt4RoundTrip(t *testing.T) {
	// int4: coarser bound (half of maxabs/7), odd In exercises the padding
	// nibble.
	for _, in := range []int{1, 2, 7, 16, 33} {
		src := testRowWeights(t, in, 16, uint64(100+in))
		q, err := QuantizeRowWeights(src, 4)
		if err != nil {
			t.Fatalf("in=%d: QuantizeRowWeights int4: %v", in, err)
		}
		buf := make([]float32, in)
		for i := 0; i < 16; i++ {
			row := src.RowF32(i, buf)
			sc := q.Scale(int32(i))
			packed := q.Row4(int32(i))
			for j, v := range row {
				var nib int8
				if j&1 == 0 {
					nib = int8(packed[j>>1]<<4) >> 4
				} else {
					nib = int8(packed[j>>1]) >> 4
				}
				got := float32(nib) * sc
				if diff := math.Abs(float64(got - v)); diff > float64(sc)/2+1e-6 {
					t.Fatalf("in=%d row %d[%d]: int4 dequant %v vs %v (scale %v)",
						in, i, j, got, v, sc)
				}
			}
			// Odd length: padding nibble must be zero (writers zero it, and
			// the serialized bytes are part of the determinism contract).
			if in&1 == 1 && packed[len(packed)-1]&0xF0 != 0 {
				t.Fatalf("in=%d row %d: padding nibble not zero: %02x", in, i, packed[len(packed)-1])
			}
		}
	}
}

func TestQuantizeRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name    string
		row, el int
		v       float32
	}{
		{"nan", 3, 2, float32(math.NaN())},
		{"+inf", 0, 0, float32(math.Inf(1))},
		{"-inf", 7, 5, float32(math.Inf(-1))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := testRowWeights(t, 16, 8, 1)
			poisonRow(src, tc.row, tc.el, tc.v)
			if _, err := QuantizeRowWeights(src, 8); !errors.Is(err, ErrNonFinite) {
				t.Fatalf("QuantizeRowWeights on %s row: err = %v, want ErrNonFinite", tc.name, err)
			}
			var buf bytes.Buffer
			err := WriteRowsDelta(&buf, src, []int32{0, 3, 7}, 8)
			if !errors.Is(err, ErrNonFinite) {
				t.Fatalf("WriteRowsDelta over %s row: err = %v, want ErrNonFinite", tc.name, err)
			}
		})
	}
}

func TestQuantizeDeterministic(t *testing.T) {
	// Same source view → bit-identical packed bytes, scales, and sums. Row
	// quantization must be a pure function of the row's f32 bytes.
	src := testRowWeights(t, 64, 50, 9)
	a, err := QuantizeRowWeights(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := QuantizeRowWeights(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.SerializeView(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.SerializeView(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("two quantizations of the same view serialized differently")
	}
}

func TestSerializeViewRoundTrip(t *testing.T) {
	for _, bits := range []int{8, 4} {
		for _, in := range []int{1, 15, 16, 33} {
			src := testRowWeights(t, in, 20, uint64(bits*100+in))
			q, err := QuantizeRowWeights(src, bits)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := q.SerializeView(&buf); err != nil {
				t.Fatal(err)
			}
			if got := int64(buf.Len()); got != q.PackedBytes() {
				t.Errorf("bits=%d in=%d: serialized %d bytes, PackedBytes says %d", bits, in, got, q.PackedBytes())
			}
			r, err := ReadRowQ(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("bits=%d in=%d: ReadRowQ: %v", bits, in, err)
			}
			assertRowQEqual(t, q, r)
		}
	}
}

func assertRowQEqual(t *testing.T, a, b *RowQ) {
	t.Helper()
	if a.In != b.In || a.Out != b.Out || a.Bits != b.Bits {
		t.Fatalf("shape mismatch: %dx%d/%d vs %dx%d/%d", a.In, a.Out, a.Bits, b.In, b.Out, b.Bits)
	}
	for i := 0; i < a.Out; i++ {
		if a.scales[i] != b.scales[i] {
			t.Fatalf("row %d scale %v vs %v", i, a.scales[i], b.scales[i])
		}
		if a.rowSums[i] != b.rowSums[i] {
			t.Fatalf("row %d sum %d vs %d (recompute drifted)", i, a.rowSums[i], b.rowSums[i])
		}
		if a.bias[i] != b.bias[i] {
			t.Fatalf("row %d bias %v vs %v", i, a.bias[i], b.bias[i])
		}
		if a.Bits == 4 {
			if !bytes.Equal(a.rows4[i], b.rows4[i]) {
				t.Fatalf("row %d nibble bytes differ", i)
			}
		} else {
			for j := range a.rows8[i] {
				if a.rows8[i][j] != b.rows8[i][j] {
					t.Fatalf("row %d[%d]: %d vs %d", i, j, a.rows8[i][j], b.rows8[i][j])
				}
			}
		}
	}
}

func TestPatchRowsCOW(t *testing.T) {
	srcA := testRowWeights(t, 32, 24, 11)
	srcB := testRowWeights(t, 32, 24, 12)
	qa, err := QuantizeRowWeights(srcA, 8)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := QuantizeRowWeights(srcB, 8)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int32{2, 7, 23}
	var delta bytes.Buffer
	if err := qb.SerializeRowsDelta(&delta, ids); err != nil {
		t.Fatal(err)
	}
	patched, gotIDs, err := qa.PatchRows(bytes.NewReader(delta.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(ids) {
		t.Fatalf("PatchRows returned ids %v, want %v", gotIDs, ids)
	}
	touched := map[int32]bool{2: true, 7: true, 23: true}
	for i := 0; i < 24; i++ {
		id := int32(i)
		if touched[id] {
			// Patched rows carry B's bytes in fresh storage.
			if &patched.rows8[i][0] == &qa.rows8[i][0] {
				t.Fatalf("row %d: patched row aliases the source view", i)
			}
			for j := range patched.rows8[i] {
				if patched.rows8[i][j] != qb.rows8[i][j] {
					t.Fatalf("row %d[%d]: patched %d, want %d", i, j, patched.rows8[i][j], qb.rows8[i][j])
				}
			}
			if patched.scales[i] != qb.scales[i] || patched.rowSums[i] != qb.rowSums[i] {
				t.Fatalf("row %d: scale/sum not patched", i)
			}
		} else if &patched.rows8[i][0] != &qa.rows8[i][0] {
			t.Fatalf("row %d: untouched row was copied (COW broken)", i)
		}
	}
}

func TestWriteRowsDeltaMatchesFullQuantize(t *testing.T) {
	// The trainer-side on-the-fly delta encoder and a receiver-side full
	// quantize must agree byte for byte on the touched rows — the delta
	// bit-identity contract.
	for _, bits := range []int{8, 4} {
		src := testRowWeights(t, 33, 40, uint64(20+bits))
		full, err := QuantizeRowWeights(src, bits)
		if err != nil {
			t.Fatal(err)
		}
		ids := []int32{0, 5, 17, 39}
		var fromLayer, fromView bytes.Buffer
		if err := WriteRowsDelta(&fromLayer, src, ids, bits); err != nil {
			t.Fatal(err)
		}
		if err := full.SerializeRowsDelta(&fromView, ids); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromLayer.Bytes(), fromView.Bytes()) {
			t.Fatalf("bits=%d: WriteRowsDelta and SerializeRowsDelta disagree", bits)
		}
	}
}

func TestPatchRowsRejectsBadPayloads(t *testing.T) {
	src := testRowWeights(t, 16, 10, 31)
	q, err := QuantizeRowWeights(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	good := func() []byte {
		var b bytes.Buffer
		if err := q.SerializeRowsDelta(&b, []int32{1, 4}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}()
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := q.PatchRows(bytes.NewReader(good[:len(good)-3])); err == nil {
			t.Fatal("truncated delta accepted")
		}
	})
	t.Run("bits-mismatch", func(t *testing.T) {
		q4, err := QuantizeRowWeights(src, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := q4.PatchRows(bytes.NewReader(good)); err == nil {
			t.Fatal("int8 delta applied to int4 view")
		}
	})
	t.Run("descending-ids", func(t *testing.T) {
		var b bytes.Buffer
		// Hand-build a header naming 2 rows, then write them out of order.
		for _, v := range []uint32{16, 10, 8, 2} {
			if err := writeU32(&b, v); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range []int32{4, 1} {
			writeU32(&b, uint32(id))
			writeF32s(&b, q.scales[id:id+1])
			q.writeRow(&b, id)
			writeF32s(&b, q.bias[id:id+1])
		}
		if _, _, err := q.PatchRows(bytes.NewReader(b.Bytes())); err == nil {
			t.Fatal("out-of-order delta accepted")
		}
	})
}

func TestQuantizeActsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		h := make([]float32, n)
		for i := range h {
			h[i] = float32(rng.NormFloat64() * 3)
		}
		if trial%5 == 0 { // ReLU-like: non-negative activations
			for i := range h {
				if h[i] < 0 {
					h[i] = 0
				}
			}
		}
		qa := make([]uint8, n)
		sa, zp := QuantizeActs(h, qa)
		if zp < 0 || zp > 127 {
			t.Fatalf("trial %d: zero point %d outside [0,127]", trial, zp)
		}
		for i, v := range h {
			if qa[i] > 127 {
				t.Fatalf("trial %d: qa[%d] = %d exceeds u7", trial, i, qa[i])
			}
			if sa == 0 {
				continue
			}
			got := float32(int32(qa[i])-zp) * sa
			if diff := math.Abs(float64(got - v)); diff > float64(sa)/2+1e-6 {
				t.Fatalf("trial %d: act[%d] dequant %v vs %v (scale %v)", trial, i, got, v, sa)
			}
		}
	}
	// All-zero input: scale 0, all-zero codes.
	qa := make([]uint8, 8)
	qa[3] = 99 // stale garbage must be cleared
	sa, zp := QuantizeActs(make([]float32, 8), qa)
	if sa != 0 || zp != 0 {
		t.Fatalf("zero input: scale %v zp %d, want 0, 0", sa, zp)
	}
	for i, v := range qa {
		if v != 0 {
			t.Fatalf("zero input: qa[%d] = %d", i, v)
		}
	}
}

func TestLogitMatchesF32(t *testing.T) {
	// The dequantized logit must track the exact f32 logit within the
	// combined quantization error budget. Not a bit-equality test — an
	// error-bound test, with the bound derived from the two step sizes.
	src := testRowWeights(t, 64, 30, 55)
	q, err := QuantizeRowWeights(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	ks := simd.Active()
	rng := rand.New(rand.NewSource(56))
	h := make([]float32, 64)
	for i := range h {
		h[i] = float32(rng.NormFloat64())
		if h[i] < 0 {
			h[i] = 0 // ReLU activations, the serving regime
		}
	}
	qa := make([]uint8, 64)
	sa, zp := QuantizeActs(h, qa)
	buf := make([]float32, 64)
	for i := int32(0); i < 30; i++ {
		exact := simd.Dot(src.RowF32(int(i), buf), h) + src.Bias()[i]
		got := q.Logit(ks, i, qa, sa, zp)
		// Error budget: each product w*h gains at most |w|*sa/2 + |h|*sw/2
		// + sw*sa/4; summed over 64 terms with |w|,|h| ~ N(0,1) this stays
		// well under the loose bound below.
		bound := float64(64) * (float64(sa)/2*3 + float64(q.Scale(i))/2*3)
		if diff := math.Abs(float64(got - exact)); diff > bound {
			t.Fatalf("row %d: quantized logit %v vs exact %v (diff %v > bound %v)",
				i, got, exact, diff, bound)
		}
	}
}

func TestForwardAllMatchesLogit(t *testing.T) {
	// ForwardAll, ForwardActive, and the batch walks must all produce the
	// same float32 as per-row Logit — same kernel, same dequant expression.
	src := testRowWeights(t, 48, 25, 66)
	for _, bits := range []int{8, 4} {
		q, err := QuantizeRowWeights(src, bits)
		if err != nil {
			t.Fatal(err)
		}
		ks := simd.Active()
		rng := rand.New(rand.NewSource(67))
		h := make([]float32, 48)
		for i := range h {
			h[i] = float32(rng.NormFloat64())
		}
		qa := make([]uint8, 48)
		sa, zp := QuantizeActs(h, qa)
		want := make([]float32, 25)
		for i := range want {
			want[i] = q.Logit(ks, int32(i), qa, sa, zp)
		}
		check := func(name string, got []float32) {
			t.Helper()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("bits=%d %s[%d] = %v, want %v", bits, name, i, got[i], want[i])
				}
			}
		}
		out := make([]float32, 25)
		q.ForwardAll(ks, qa, sa, zp, out, 1)
		check("ForwardAll", out)
		q.ForwardAll(ks, qa, sa, zp, out, 4)
		check("ForwardAll(workers=4)", out)

		active := []int32{0, 3, 24}
		logits := make([]float32, 3)
		q.ForwardActive(ks, active, qa, sa, zp, logits)
		for k, id := range active {
			if logits[k] != want[id] {
				t.Fatalf("bits=%d ForwardActive[%d] = %v, want %v", bits, id, logits[k], want[id])
			}
		}

		outs := [][]float32{make([]float32, 25), make([]float32, 25)}
		q.ForwardAllBatch(ks, [][]uint8{qa, qa}, []float32{sa, sa}, []int32{zp, zp}, outs)
		check("ForwardAllBatch[0]", outs[0])
		check("ForwardAllBatch[1]", outs[1])

		for i := range outs[0] {
			outs[0][i], outs[1][i] = 0, 0
		}
		q.ForwardAllBatchRange(ks, [][]uint8{qa, qa}, []float32{sa, sa}, []int32{zp, zp}, outs, 0, 13)
		q.ForwardAllBatchRange(ks, [][]uint8{qa, qa}, []float32{sa, sa}, []int32{zp, zp}, outs, 13, 25)
		check("ForwardAllBatchRange[0]", outs[0])
	}
}

func TestCheckFinite(t *testing.T) {
	src := testRowWeights(t, 16, 10, 88)
	q, err := QuantizeRowWeights(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.CheckFinite(16); err != nil {
		t.Fatalf("healthy view: %v", err)
	}
	if err := q.CheckFiniteRows([]int32{0, 9}); err != nil {
		t.Fatalf("healthy rows: %v", err)
	}
	q.scales[4] = float32(math.NaN())
	if err := q.CheckFinite(16); !errors.Is(err, layer.ErrNonFinite) {
		t.Fatalf("NaN scale: CheckFinite = %v, want ErrNonFinite", err)
	}
	if err := q.CheckFiniteRows([]int32{4}); !errors.Is(err, layer.ErrNonFinite) {
		t.Fatalf("NaN scale: CheckFiniteRows = %v, want ErrNonFinite", err)
	}
	q.scales[4] = 1
	q.bias[7] = float32(math.Inf(1))
	if err := q.CheckFinite(16); !errors.Is(err, layer.ErrNonFinite) {
		t.Fatalf("Inf bias: CheckFinite = %v, want ErrNonFinite", err)
	}
}

func TestQuantizeRejectsBadBits(t *testing.T) {
	src := testRowWeights(t, 8, 4, 99)
	if _, err := QuantizeRowWeights(src, 16); err == nil {
		t.Fatal("bits=16 accepted")
	}
}
