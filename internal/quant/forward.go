package quant

import (
	"fmt"
	"sync"

	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/simd"
)

// Forward methods mirroring layer.RowWeights' serving surface, over packed
// rows and a quantized activation vector (qa, sa, zp from QuantizeActs)
// instead of (h, hBF). The score vectors they produce feed the existing
// TopKInto / scatter-gather ranking unchanged.

// dot resolves the packed dot for one row at the view's bit width.
func (q *RowQ) dot(ks *simd.Kernels, id int32, qa []uint8) int32 {
	if q.Bits == 4 {
		return ks.DotU8S4(qa, q.rows4[id])
	}
	return ks.DotU8S8(qa, q.rows8[id])
}

// dequant maps the integer accumulator back to a float32 logit. The
// explicit float32 conversions pin every intermediate to a single rounding
// — no FMA contraction — so logits are bit-stable across builds and tiers.
func (q *RowQ) dequant(id int32, acc int32, sa float32, zp int32) float32 {
	d := float32(q.scales[id] * sa)
	v := float32(acc - zp*q.rowSums[id])
	return float32(d*v) + q.bias[id]
}

// Logit computes neuron id's dequantized pre-activation.
func (q *RowQ) Logit(ks *simd.Kernels, id int32, qa []uint8, sa float32, zp int32) float32 {
	return q.dequant(id, q.dot(ks, id, qa), sa, zp)
}

// ForwardActive fills logits[k] with Logit(active[k]) — the sampled serving
// path over the LSH-retrieved candidate set.
func (q *RowQ) ForwardActive(ks *simd.Kernels, active []int32, qa []uint8, sa float32, zp int32, logits []float32) {
	if len(logits) < len(active) {
		panic("quant: ForwardActive logits buffer too short")
	}
	for k, id := range active {
		logits[k] = q.Logit(ks, id, qa, sa, zp)
	}
}

// ForwardAll computes every neuron's logit into out (len Out), tiling rows
// over workers (<=1 runs inline — the serving path).
func (q *RowQ) ForwardAll(ks *simd.Kernels, qa []uint8, sa float32, zp int32, out []float32, workers int) {
	if len(out) != q.Out {
		panic("quant: ForwardAll output size mismatch")
	}
	if workers <= 1 {
		for i := range out {
			out[i] = q.Logit(ks, int32(i), qa, sa, zp)
		}
		return
	}
	per := (q.Out + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * per
		hi := min(lo+per, q.Out)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = q.Logit(ks, int32(i), qa, sa, zp)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForwardAllBatch is the fused micro-batch walk: outs[s][i] = Logit(i, qas[s]).
// Row-outer, sample-inner — each packed row streams from memory once per
// chunk, the same bandwidth amortization as the f32 batch walk (and the
// packed stream is 4x narrower, which is the point of this tier).
func (q *RowQ) ForwardAllBatch(ks *simd.Kernels, qas [][]uint8, sas []float32, zps []int32, outs [][]float32) {
	if len(outs) != len(qas) {
		panic("quant: ForwardAllBatch batch size mismatch")
	}
	for s := range outs {
		if len(outs[s]) != q.Out {
			panic("quant: ForwardAllBatch output size mismatch")
		}
	}
	q.forwardRowRange(ks, qas, sas, zps, outs, 0, q.Out)
}

// ForwardAllBatchRange is ForwardAllBatch restricted to rows [lo, hi) — the
// per-shard slice of the scatter-gather serving path. Same per-(row, sample)
// kernel calls as the unsharded walk, so assembled scores are bit-identical.
func (q *RowQ) ForwardAllBatchRange(ks *simd.Kernels, qas [][]uint8, sas []float32, zps []int32, outs [][]float32, lo, hi int) {
	if len(outs) != len(qas) {
		panic("quant: ForwardAllBatchRange batch size mismatch")
	}
	if lo < 0 || hi > q.Out || lo > hi {
		panic("quant: ForwardAllBatchRange row range out of bounds")
	}
	q.forwardRowRange(ks, qas, sas, zps, outs, lo, hi)
}

func (q *RowQ) forwardRowRange(ks *simd.Kernels, qas [][]uint8, sas []float32, zps []int32, outs [][]float32, lo, hi int) {
	if q.Bits == 4 {
		for i := lo; i < hi; i++ {
			row := q.rows4[i]
			for s := range outs {
				outs[s][i] = q.dequant(int32(i), ks.DotU8S4(qas[s], row), sas[s], zps[s])
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		row := q.rows8[i]
		for s := range outs {
			outs[s][i] = q.dequant(int32(i), ks.DotU8S8(qas[s], row), sas[s], zps[s])
		}
	}
}

// CheckFinite scans the scales and biases — the only float state this view
// holds; packed integer rows cannot be non-finite. The stride parameter
// exists for signature parity with the layer views; the scan is O(Out)
// scalars either way, so it is always complete.
func (q *RowQ) CheckFinite(stride int) error {
	_ = stride
	if i := health.FirstNonFinite32(q.scales); i >= 0 {
		return fmt.Errorf("%w: quantized scale[%d]", layer.ErrNonFinite, i)
	}
	if i := health.FirstNonFinite32(q.bias); i >= 0 {
		return fmt.Errorf("%w: quantized bias[%d]", layer.ErrNonFinite, i)
	}
	return nil
}

// CheckFiniteRows scans exactly the named rows' scales plus the full bias —
// the delta-admission path.
func (q *RowQ) CheckFiniteRows(ids []int32) error {
	if i := health.FirstNonFinite32(q.bias); i >= 0 {
		return fmt.Errorf("%w: quantized bias[%d]", layer.ErrNonFinite, i)
	}
	for _, id := range ids {
		if int(id) >= len(q.scales) {
			continue
		}
		if health.FirstNonFinite32(q.scales[id:id+1]) >= 0 {
			return fmt.Errorf("%w: quantized scale[%d]", layer.ErrNonFinite, id)
		}
	}
	return nil
}
