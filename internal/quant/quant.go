// Package quant is the quantized serving tier: packed int8 (and experimental
// int4) renderings of the output layer's row weights, produced at snapshot
// time from the f32/BF16 training views. Training never sees this package —
// quantization is a one-way, serving-side transform, the deployment
// counterpart of the paper's precision ablations.
//
// Scheme (following FullPack's per-vector symmetric layout):
//
//   - Weights: per-row symmetric int8. scale = maxabs/127 (maxabs/7 for
//     int4), q = clamp(round(w/scale)). Zero rows quantize to scale 0 and an
//     all-zero row. Each row also carries its element sum (recomputed on
//     deserialize, never on the wire) for the zero-point correction below.
//   - Activations: per-sample asymmetric u7 in [0,127] with a zero point:
//     lo = min(0, min h), hi = max(0, max h), scale = (hi-lo)/127,
//     zp = round(-lo/scale). The u7 bound makes the AVX2 widening kernels
//     saturation-free, so every kernel tier accumulates the identical int32.
//   - Dequantized logit: float32(sw*sa) * float32(acc - zp*rowSum) + bias,
//     with explicit float32 conversions so the compiler cannot fuse the
//     multiply-add (bit-stable across builds).
//
// Determinism: row quantization is a pure per-row function of the f32 bytes
// (float64 divide + round-half-away, no accumulation across rows), so the
// same snapshot packs to bit-identical bytes at any worker count — the
// sharded-determinism contract survives quantization.
package quant

import (
	"fmt"
	"math"

	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/layer"
)

// ErrNonFinite aliases the layer sentinel: a NaN/Inf row refuses to
// quantize, the same quarantine signal snapshot publication already tests
// with errors.Is.
var ErrNonFinite = layer.ErrNonFinite

// MaxDotLen bounds In so the int32 dequant arithmetic cannot overflow:
// |acc - zp*rowSum| <= 2 * 127*127 * In must stay under 2^31, giving
// In < 66577. Hidden widths are orders of magnitude below this.
const MaxDotLen = 1 << 16

// RowQ is an immutable quantized rendering of a RowWeights view: packed
// rows, per-row scales, and the f32 biases. Like the layer views it is
// copy-on-write friendly — PatchRows shares untouched rows with its source.
type RowQ struct {
	In, Out int
	// Bits is the weight width: 8 (packed int8, stride In) or 4 (packed
	// two's-complement nibbles, stride (In+1)/2, low nibble = even index).
	Bits int

	scales  []float32
	rowSums []int32 // per-row element sums, recomputed on read
	rows8   [][]int8
	rows4   [][]uint8
	bias    []float32
}

func validBits(bits int) error {
	if bits != 8 && bits != 4 {
		return fmt.Errorf("quant: unsupported bit width %d (want 8 or 4)", bits)
	}
	return nil
}

// stride returns the packed byte length of one row.
func stride(in, bits int) int {
	if bits == 4 {
		return (in + 1) / 2
	}
	return in
}

// newRowQ allocates the per-row views over one contiguous backing each.
func newRowQ(in, out, bits int) *RowQ {
	q := &RowQ{
		In: in, Out: out, Bits: bits,
		scales:  make([]float32, out),
		rowSums: make([]int32, out),
		bias:    make([]float32, out),
	}
	st := stride(in, bits)
	if bits == 4 {
		backing := make([]uint8, out*st)
		q.rows4 = make([][]uint8, out)
		for i := range q.rows4 {
			q.rows4[i] = backing[i*st : (i+1)*st : (i+1)*st]
		}
	} else {
		backing := make([]int8, out*st)
		q.rows8 = make([][]int8, out)
		for i := range q.rows8 {
			q.rows8[i] = backing[i*st : (i+1)*st : (i+1)*st]
		}
	}
	return q
}

// QuantizeRowWeights quantizes a full f32/BF16 row view into a RowQ. Rows
// containing NaN/Inf refuse to quantize (error wraps ErrNonFinite): a
// non-finite value would silently skew its row's scale, so the health
// quarantine rejects it at the packing boundary instead.
func QuantizeRowWeights(src *layer.RowWeights, bits int) (*RowQ, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if src.In > MaxDotLen {
		return nil, fmt.Errorf("quant: row length %d exceeds MaxDotLen %d", src.In, MaxDotLen)
	}
	q := newRowQ(src.In, src.Out, bits)
	buf := make([]float32, src.In)
	for i := 0; i < src.Out; i++ {
		row := src.RowF32(i, buf)
		if k := health.FirstNonFinite32(row); k >= 0 {
			return nil, fmt.Errorf("quant: %w: row %d element %d", ErrNonFinite, i, k)
		}
		if bits == 4 {
			q.scales[i], q.rowSums[i] = quantizeRow4(row, q.rows4[i])
		} else {
			q.scales[i], q.rowSums[i] = quantizeRow8(row, q.rows8[i])
		}
	}
	bias := src.Bias()
	if k := health.FirstNonFinite32(bias); k >= 0 {
		return nil, fmt.Errorf("quant: %w: bias[%d]", ErrNonFinite, k)
	}
	copy(q.bias, bias)
	return q, nil
}

// rowMaxAbs returns the largest |w_i| (NaN-free input by contract).
func rowMaxAbs(w []float32) float32 {
	var m float32
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// quantizeRow8 packs one row symmetrically into int8. Pure per-element
// float64 math — deterministic regardless of kernel mode or worker count.
func quantizeRow8(w []float32, dst []int8) (scale float32, rowSum int32) {
	m := rowMaxAbs(w)
	if m == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0, 0
	}
	scale = m / 127
	inv := float64(scale)
	for i, v := range w {
		qi := int32(math.Round(float64(v) / inv))
		if qi > 127 {
			qi = 127
		} else if qi < -127 {
			qi = -127
		}
		dst[i] = int8(qi)
		rowSum += qi
	}
	return scale, rowSum
}

// quantizeRow4 packs one row into two's-complement nibbles, low nibble
// first. The final padding nibble of an odd-length row is zero.
func quantizeRow4(w []float32, dst []uint8) (scale float32, rowSum int32) {
	for i := range dst {
		dst[i] = 0
	}
	m := rowMaxAbs(w)
	if m == 0 {
		return 0, 0
	}
	scale = m / 7
	inv := float64(scale)
	for i, v := range w {
		qi := int32(math.Round(float64(v) / inv))
		if qi > 7 {
			qi = 7
		} else if qi < -7 {
			qi = -7
		}
		rowSum += qi
		nib := uint8(qi) & 0xF
		if i&1 == 0 {
			dst[i>>1] = nib
		} else {
			dst[i>>1] |= nib << 4
		}
	}
	return scale, rowSum
}

// QuantizeActs quantizes one dense activation vector into u7 with a zero
// point, filling qa (len == len(h)). The [0,127] range is what keeps the
// integer kernels saturation-free. All-zero inputs return scale 0 (logits
// collapse to the biases, matching the f32 forward on a zero activation).
func QuantizeActs(h []float32, qa []uint8) (scale float32, zp int32) {
	if len(qa) != len(h) {
		panic("quant: QuantizeActs buffer length mismatch")
	}
	var lo, hi float32
	for _, v := range h {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		for i := range qa {
			qa[i] = 0
		}
		return 0, 0
	}
	scale = (hi - lo) / 127
	inv := float64(scale)
	zp = int32(math.Round(float64(-lo) / inv))
	for i, v := range h {
		qi := int32(math.Round(float64(v)/inv)) + zp
		if qi < 0 {
			qi = 0
		} else if qi > 127 {
			qi = 127
		}
		qa[i] = uint8(qi)
	}
	return scale, zp
}

// Scale returns row i's dequantization scale (tests and diagnostics).
func (q *RowQ) Scale(i int32) float32 { return q.scales[i] }

// Bias returns a read-only view of the bias vector.
func (q *RowQ) Bias() []float32 { return q.bias }

// Row8 returns row i's packed int8 view (Bits==8 only; read-only).
func (q *RowQ) Row8(i int32) []int8 { return q.rows8[i] }

// Row4 returns row i's packed nibble view (Bits==4 only; read-only).
func (q *RowQ) Row4(i int32) []uint8 { return q.rows4[i] }
