package quant

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/layer"
)

// Wire codecs for quantized views, mirroring the layer view codecs (same
// little-endian framing, same COW patch semantics) at the packed byte width.
//
// View layout:     [In u32][Out u32][Bits u32] scales[Out] bias[Out] rows
// Delta layout:    [In u32][Out u32][Bits u32][n u32] then per touched row
//                  [id u32][scale f32][row bytes][bias f32], ids ascending.
//
// Row sums are NOT on the wire: they are a pure function of the packed
// bytes, recomputed on read — Out int32s of wire saved per message, and one
// less way for a corrupted payload to desynchronize the dequant correction.

// maxViewDim mirrors layer.maxViewDim: headers are read before allocation,
// so a corrupted header must not provoke a huge allocation.
const maxViewDim = 1 << 28

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader, v *uint32) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint32(b[:])
	return nil
}

func writeF32s(w io.Writer, xs []float32) error {
	buf := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(x))
	}
	_, err := w.Write(buf)
	return err
}

func readF32s(r io.Reader, xs []float32) error {
	buf := make([]byte, 4*len(xs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range xs {
		xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// writeRow emits row id's packed bytes.
func (q *RowQ) writeRow(w io.Writer, id int32) error {
	if q.Bits == 4 {
		_, err := w.Write(q.rows4[id])
		return err
	}
	row := q.rows8[id]
	buf := make([]byte, len(row))
	for i, v := range row {
		buf[i] = uint8(v)
	}
	_, err := w.Write(buf)
	return err
}

// readRow8 fills an int8 row from the wire and returns its element sum.
func readRow8(r io.Reader, dst []int8) (int32, error) {
	buf := make([]byte, len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, err
	}
	var sum int32
	for i, b := range buf {
		v := int8(b)
		dst[i] = v
		sum += int32(v)
	}
	return sum, nil
}

// readRow4 fills a nibble-packed row from the wire and returns its element
// sum over the first in elements (the odd-length padding nibble is excluded
// — writers zero it, but a forgiving reader must not let it skew the sum).
func readRow4(r io.Reader, dst []uint8, in int) (int32, error) {
	if _, err := io.ReadFull(r, dst); err != nil {
		return 0, err
	}
	return sumNibbles(dst, in), nil
}

func sumNibbles(row []uint8, in int) int32 {
	var sum int32
	for i := 0; i < in; i++ {
		v := row[i>>1]
		if i&1 == 0 {
			sum += int32(int8(v<<4) >> 4)
		} else {
			sum += int32(int8(v) >> 4)
		}
	}
	return sum
}

// SerializeView writes the full quantized view.
func (q *RowQ) SerializeView(out io.Writer) error {
	for _, v := range []uint32{uint32(q.In), uint32(q.Out), uint32(q.Bits)} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	if err := writeF32s(out, q.scales); err != nil {
		return err
	}
	if err := writeF32s(out, q.bias); err != nil {
		return err
	}
	for i := 0; i < q.Out; i++ {
		if err := q.writeRow(out, int32(i)); err != nil {
			return err
		}
	}
	return nil
}

func checkViewHeader(in, out, bits uint32) error {
	if in == 0 || out == 0 || in > maxViewDim || out > maxViewDim {
		return fmt.Errorf("quant: view dims %dx%d out of range", in, out)
	}
	if in > MaxDotLen {
		return fmt.Errorf("quant: row length %d exceeds MaxDotLen %d", in, MaxDotLen)
	}
	if err := validBits(int(bits)); err != nil {
		return err
	}
	return nil
}

// ReadRowQ reconstructs a view written by SerializeView, recomputing the
// per-row sums from the packed bytes.
func ReadRowQ(r io.Reader) (*RowQ, error) {
	var in, out, bits uint32
	for _, p := range []*uint32{&in, &out, &bits} {
		if err := readU32(r, p); err != nil {
			return nil, fmt.Errorf("quant: reading view header: %w", err)
		}
	}
	if err := checkViewHeader(in, out, bits); err != nil {
		return nil, err
	}
	q := newRowQ(int(in), int(out), int(bits))
	if err := readF32s(r, q.scales); err != nil {
		return nil, err
	}
	if err := readF32s(r, q.bias); err != nil {
		return nil, err
	}
	for i := 0; i < q.Out; i++ {
		var err error
		if q.Bits == 4 {
			q.rowSums[i], err = readRow4(r, q.rows4[i], q.In)
		} else {
			q.rowSums[i], err = readRow8(r, q.rows8[i])
		}
		if err != nil {
			return nil, fmt.Errorf("quant: reading row %d: %w", i, err)
		}
	}
	return q, nil
}

// SerializeRowsDelta writes the sparse patch for ids (ascending): touched
// rows with their scales and biases; nothing else is on the wire.
func (q *RowQ) SerializeRowsDelta(out io.Writer, ids []int32) error {
	for _, v := range []uint32{uint32(q.In), uint32(q.Out), uint32(q.Bits), uint32(len(ids))} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := writeU32(out, uint32(id)); err != nil {
			return err
		}
		if err := writeF32s(out, q.scales[id:id+1]); err != nil {
			return err
		}
		if err := q.writeRow(out, id); err != nil {
			return err
		}
		if err := writeF32s(out, q.bias[id:id+1]); err != nil {
			return err
		}
	}
	return nil
}

// PatchRows applies a SerializeRowsDelta payload, returning a new view that
// shares every untouched row with q (copy-on-write) plus the ascending ids
// the payload named. q itself is never modified. The payload's shape and
// bit width must match q's.
func (q *RowQ) PatchRows(r io.Reader) (*RowQ, []int32, error) {
	var in, out, bits, n uint32
	for _, p := range []*uint32{&in, &out, &bits, &n} {
		if err := readU32(r, p); err != nil {
			return nil, nil, fmt.Errorf("quant: reading rows delta header: %w", err)
		}
	}
	if int(in) != q.In || int(out) != q.Out || int(bits) != q.Bits {
		return nil, nil, fmt.Errorf("quant: rows delta mismatch: wire %dx%d/int%d, view %dx%d/int%d",
			in, out, bits, q.In, q.Out, q.Bits)
	}
	if n > out {
		return nil, nil, fmt.Errorf("quant: rows delta names %d rows, view has %d", n, out)
	}
	p := &RowQ{In: q.In, Out: q.Out, Bits: q.Bits}
	p.scales = append([]float32(nil), q.scales...)
	p.rowSums = append([]int32(nil), q.rowSums...)
	p.bias = append([]float32(nil), q.bias...)
	if q.Bits == 4 {
		p.rows4 = append([][]uint8(nil), q.rows4...)
	} else {
		p.rows8 = append([][]int8(nil), q.rows8...)
	}
	ids := make([]int32, 0, n)
	last := int64(-1)
	for k := uint32(0); k < n; k++ {
		var id uint32
		if err := readU32(r, &id); err != nil {
			return nil, nil, fmt.Errorf("quant: reading rows delta record %d: %w", k, err)
		}
		if int64(id) <= last || id >= out {
			return nil, nil, fmt.Errorf("quant: rows delta id %d out of order or range (prev %d, rows %d)", id, last, out)
		}
		last = int64(id)
		ids = append(ids, int32(id))
		if err := readF32s(r, p.scales[id:id+1]); err != nil {
			return nil, nil, err
		}
		var err error
		if q.Bits == 4 {
			row := make([]uint8, stride(q.In, 4))
			p.rowSums[id], err = readRow4(r, row, q.In)
			p.rows4[id] = row
		} else {
			row := make([]int8, q.In)
			p.rowSums[id], err = readRow8(r, row)
			p.rows8[id] = row
		}
		if err != nil {
			return nil, nil, err
		}
		if err := readF32s(r, p.bias[id:id+1]); err != nil {
			return nil, nil, err
		}
	}
	return p, ids, nil
}

// WriteRowsDelta quantizes exactly the touched rows of an f32/BF16 view and
// writes them in SerializeRowsDelta format — the trainer-side delta encoder.
// Quantizing only the journaled rows keeps delta publish O(touched), never
// O(model); bit-identity with a receiver-side full quantize holds because
// row quantization is a pure per-row function. Touched rows containing
// NaN/Inf refuse to encode (error wraps ErrNonFinite).
func WriteRowsDelta(w io.Writer, src *layer.RowWeights, ids []int32, bits int) error {
	if err := validBits(bits); err != nil {
		return err
	}
	if src.In > MaxDotLen {
		return fmt.Errorf("quant: row length %d exceeds MaxDotLen %d", src.In, MaxDotLen)
	}
	for _, v := range []uint32{uint32(src.In), uint32(src.Out), uint32(bits), uint32(len(ids))} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	buf := make([]float32, src.In)
	row8 := make([]int8, stride(src.In, 8))
	row4 := make([]uint8, stride(src.In, 4))
	pbuf := make([]byte, stride(src.In, 8))
	bias := src.Bias()
	for _, id := range ids {
		row := src.RowF32(int(id), buf)
		if k := health.FirstNonFinite32(row); k >= 0 {
			return fmt.Errorf("quant: %w: row %d element %d", ErrNonFinite, id, k)
		}
		if k := health.FirstNonFinite32(bias[id : id+1]); k >= 0 {
			return fmt.Errorf("quant: %w: bias[%d]", ErrNonFinite, id)
		}
		var scale float32
		var packed []byte
		if bits == 4 {
			scale, _ = quantizeRow4(row, row4)
			packed = row4
		} else {
			scale, _ = quantizeRow8(row, row8)
			for i, v := range row8 {
				pbuf[i] = uint8(v)
			}
			packed = pbuf
		}
		if err := writeU32(w, uint32(id)); err != nil {
			return err
		}
		if err := writeF32s(w, []float32{scale}); err != nil {
			return err
		}
		if _, err := w.Write(packed); err != nil {
			return err
		}
		if err := writeF32s(w, bias[id:id+1]); err != nil {
			return err
		}
	}
	return nil
}

// PackedBytes returns the serialized size of the view — the "snapshot
// bytes" number /stats and the bench report: header + scales + biases +
// packed rows.
func (q *RowQ) PackedBytes() int64 {
	return 12 + 8*int64(q.Out) + int64(q.Out)*int64(stride(q.In, q.Bits))
}
