//go:build !amd64

package cpufeat

// detect reports no x86 vector extensions on non-amd64 architectures; the
// portable Go kernels in internal/simd serve every tier there.
func detect() Features { return Features{} }
