package cpufeat

import (
	"runtime"
	"testing"
)

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	t.Logf("detected: %s (lanes=%d)", f, f.VectorLanesF32())

	// Tier implications: AVX-512 silicon always has AVX2+FMA, and the BF16
	// extension only exists on AVX-512 foundations.
	if f.HasAVX512Tier() && !f.HasAVX2Tier() {
		t.Error("AVX-512 tier detected without the AVX2+FMA tier")
	}
	if f.AVX512BF16 && !f.AVX512F {
		t.Error("AVX512-BF16 detected without AVX512F")
	}

	switch f.VectorLanesF32() {
	case 0, 8, 16:
	default:
		t.Errorf("VectorLanesF32 = %d, want 0, 8 or 16", f.VectorLanesF32())
	}

	if runtime.GOARCH != "amd64" && f != (Features{}) {
		t.Errorf("non-amd64 must report no x86 features, got %s", f)
	}
}

func TestDetectCached(t *testing.T) {
	if Detect() != Detect() {
		t.Error("Detect not stable across calls")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if (Features{}).String() != "none" {
		t.Errorf("zero Features.String() = %q, want none", (Features{}).String())
	}
	all := Features{AVX2: true, FMA: true, AVX512F: true, AVX512BW: true,
		AVX512VL: true, AVX512DQ: true, AVX512BF16: true}
	if got := all.String(); got != "avx2+fma avx512[f,bw,vl,dq] bf16" {
		t.Errorf("full Features.String() = %q", got)
	}
}
