package cpufeat

import (
	"runtime"
	"testing"
)

func TestDetectConsistency(t *testing.T) {
	f := Detect()
	t.Logf("detected: %s (lanes=%d)", f, f.VectorLanesF32())

	// Tier implications: AVX-512 silicon always has AVX2+FMA, and the BF16
	// extension only exists on AVX-512 foundations.
	if f.HasAVX512Tier() && !f.HasAVX2Tier() {
		t.Error("AVX-512 tier detected without the AVX2+FMA tier")
	}
	if f.AVX512BF16 && !f.AVX512F {
		t.Error("AVX512-BF16 detected without AVX512F")
	}
	if f.AVX512VNNI && !f.AVX512F {
		t.Error("AVX512-VNNI detected without AVX512F")
	}
	if f.HasVNNITier() && !f.HasAVX512Tier() {
		t.Error("VNNI tier detected without the AVX-512 tier")
	}

	switch f.VectorLanesF32() {
	case 0, 8, 16:
	default:
		t.Errorf("VectorLanesF32 = %d, want 0, 8 or 16", f.VectorLanesF32())
	}

	if runtime.GOARCH != "amd64" && f != (Features{}) {
		t.Errorf("non-amd64 must report no x86 features, got %s", f)
	}
}

func TestDetectCached(t *testing.T) {
	if Detect() != Detect() {
		t.Error("Detect not stable across calls")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		name string
		f    Features
		want string
	}{
		{"zero", Features{}, "none"},
		{"avx2-only", Features{AVX2: true, FMA: true}, "avx2+fma"},
		{"avx512-no-bf16", Features{AVX2: true, FMA: true, AVX512F: true,
			AVX512BW: true, AVX512VL: true, AVX512DQ: true},
			"avx2+fma avx512[f,bw,vl,dq]"},
		{"full-pre-vnni", Features{AVX2: true, FMA: true, AVX512F: true, AVX512BW: true,
			AVX512VL: true, AVX512DQ: true, AVX512BF16: true},
			"avx2+fma avx512[f,bw,vl,dq] bf16"},
		{"full-with-vnni", Features{AVX2: true, FMA: true, AVX512F: true, AVX512BW: true,
			AVX512VL: true, AVX512DQ: true, AVX512BF16: true, AVX512VNNI: true},
			"avx2+fma avx512[f,bw,vl,dq] bf16 vnni"},
		{"client-avx-vnni", Features{AVX2: true, FMA: true, AVXVNNI: true},
			"avx2+fma avx-vnni"},
		{"everything", Features{AVX2: true, FMA: true, AVX512F: true, AVX512BW: true,
			AVX512VL: true, AVX512DQ: true, AVX512BF16: true, AVX512VNNI: true, AVXVNNI: true},
			"avx2+fma avx512[f,bw,vl,dq] bf16 vnni avx-vnni"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.f.String(); got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
		})
	}
}
