// Package cpufeat detects the SIMD capabilities of the host processor.
//
// The paper's speedups hinge on knowing exactly what the silicon offers:
// AVX-512 for the 16-lane float32 kernels (§4.2), AVX512-BF16 for the
// hardware bfloat16 conversions (§4.4). internal/simd uses this package once
// at startup to pick its kernel tier, and internal/platform folds the
// detected attributes into the Host descriptor so the roofline rows are
// parameterized by measured capability rather than guesses.
//
// Detection is implemented directly over CPUID/XGETBV (no external
// dependencies); on non-x86 architectures every flag reports false and the
// portable Go kernels are used.
package cpufeat

import "sync"

// Features describes the SIMD instruction-set extensions the host CPU and
// operating system both support (OS support matters: AVX state must be
// enabled in XCR0 by the kernel, which CPUID alone does not prove).
type Features struct {
	// AVX2 implies AVX plus 256-bit integer ops; FMA is tracked separately
	// because the AVX2 kernel tier requires both.
	AVX2 bool
	// FMA is the 3-operand fused-multiply-add extension.
	FMA bool
	// AVX512F is the AVX-512 foundation (512-bit registers, masking).
	AVX512F bool
	// AVX512BW adds byte/word element operations (masked 16-bit moves).
	AVX512BW bool
	// AVX512VL allows AVX-512 encodings at 128/256-bit width.
	AVX512VL bool
	// AVX512DQ adds dword/qword conversions and logic.
	AVX512DQ bool
	// AVX512BF16 is the bfloat16 extension (VCVTNEPS2BF16, VDPBF16PS).
	AVX512BF16 bool
	// AVX512VNNI is the 512-bit integer dot-product extension (VPDPBUSD):
	// u8 x s8 multiply-accumulate into i32 lanes, the int8 serving kernel.
	AVX512VNNI bool
	// AVXVNNI is the VEX-encoded 256-bit VNNI found on AVX-512-less client
	// parts (Alder Lake and later). Detection-only today: the repo's ymm
	// integer kernel uses the universally-available VPMADDWD path, because
	// the Go assembler emits EVEX (AVX512VL) encodings for VPDPBUSD on ymm
	// operands, which an AVX-VNNI-only part cannot execute.
	AVXVNNI bool
}

// HasAVX2Tier reports whether the AVX2+FMA assembly kernel tier can run.
func (f Features) HasAVX2Tier() bool { return f.AVX2 && f.FMA }

// HasAVX512Tier reports whether the AVX-512 assembly kernel tier can run.
// The kernels use foundation plus BW/VL (masked word moves for BF16 tails)
// and DQ, all present together on every AVX-512 Xeon since Skylake —
// including the paper's CLX and CPX machines.
func (f Features) HasAVX512Tier() bool {
	return f.AVX512F && f.AVX512BW && f.AVX512VL && f.AVX512DQ
}

// HasVNNITier reports whether the AVX-512 VNNI integer kernel (VPDPBUSD on
// zmm registers) can run: the full AVX-512 tier plus the VNNI extension.
func (f Features) HasVNNITier() bool { return f.HasAVX512Tier() && f.AVX512VNNI }

// VectorLanesF32 returns the widest float32 SIMD lane count the detected
// features can drive: 16 under AVX-512, 8 under AVX2, 0 when no vector
// extension beyond the architectural baseline was detected (callers decide
// what baseline to assume).
func (f Features) VectorLanesF32() int {
	switch {
	case f.HasAVX512Tier():
		return 16
	case f.HasAVX2Tier():
		return 8
	default:
		return 0
	}
}

// String renders the detected feature set compactly, e.g.
// "avx2+fma avx512[f,bw,vl,dq] bf16 vnni".
func (f Features) String() string {
	s := ""
	if f.AVX2 {
		s += "avx2"
	}
	if f.FMA {
		s += "+fma"
	}
	if f.AVX512F {
		s += " avx512[f"
		if f.AVX512BW {
			s += ",bw"
		}
		if f.AVX512VL {
			s += ",vl"
		}
		if f.AVX512DQ {
			s += ",dq"
		}
		s += "]"
	}
	if f.AVX512BF16 {
		s += " bf16"
	}
	if f.AVX512VNNI {
		s += " vnni"
	}
	if f.AVXVNNI {
		s += " avx-vnni"
	}
	if s == "" {
		return "none"
	}
	return s
}

var (
	detectOnce sync.Once
	detected   Features
)

// Detect returns the host's SIMD features. The first call probes the
// hardware; subsequent calls return the cached result.
func Detect() Features {
	detectOnce.Do(func() { detected = detect() })
	return detected
}
