//go:build amd64

package cpufeat

// cpuid executes the CPUID instruction with the given leaf/subleaf.
//
//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the XCR0 state mask).
//
//go:noescape
func xgetbv() (eax, edx uint32)

// CPUID bit positions, Intel SDM Vol. 2A.
const (
	// leaf 1 ECX
	bitFMA     = 1 << 12
	bitOSXSAVE = 1 << 27
	bitAVX     = 1 << 28

	// leaf 7 subleaf 0 EBX
	bitAVX2     = 1 << 5
	bitAVX512F  = 1 << 16
	bitAVX512DQ = 1 << 17
	bitAVX512BW = 1 << 30
	bitAVX512VL = 1 << 31

	// leaf 7 subleaf 0 ECX
	bitAVX512VNNI = 1 << 11

	// leaf 7 subleaf 1 EAX
	bitAVXVNNI    = 1 << 4
	bitAVX512BF16 = 1 << 5

	// XCR0 state-component bits
	xcr0SSE    = 1 << 1
	xcr0AVX    = 1 << 2
	xcr0Opmask = 1 << 5
	xcr0ZMMHi  = 1 << 6
	xcr0Hi16   = 1 << 7
)

func detect() Features {
	var f Features
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)

	// Without OSXSAVE the OS has not enabled extended state saving, so no
	// AVX state survives a context switch — treat every AVX tier as absent.
	if ecx1&bitOSXSAVE == 0 || ecx1&bitAVX == 0 {
		return f
	}
	xlo, _ := xgetbv()
	osAVX := xlo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	osAVX512 := osAVX && xlo&(xcr0Opmask|xcr0ZMMHi|xcr0Hi16) ==
		xcr0Opmask|xcr0ZMMHi|xcr0Hi16
	if !osAVX || maxLeaf < 7 {
		return f
	}

	_, ebx7, ecx7, _ := cpuid(7, 0)
	eax71, _, _, _ := cpuid(7, 1)
	f.FMA = ecx1&bitFMA != 0
	f.AVX2 = ebx7&bitAVX2 != 0
	// AVX-VNNI needs only the VEX (256-bit) AVX state the osAVX check above
	// already proved enabled.
	f.AVXVNNI = eax71&bitAVXVNNI != 0
	if osAVX512 {
		f.AVX512F = ebx7&bitAVX512F != 0
		f.AVX512DQ = ebx7&bitAVX512DQ != 0
		f.AVX512BW = ebx7&bitAVX512BW != 0
		f.AVX512VL = ebx7&bitAVX512VL != 0
		f.AVX512VNNI = f.AVX512F && ecx7&bitAVX512VNNI != 0
		f.AVX512BF16 = f.AVX512F && eax71&bitAVX512BF16 != 0
	}
	return f
}
