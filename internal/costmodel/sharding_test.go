package costmodel

import (
	"testing"

	"github.com/slide-cpu/slide/internal/platform"
)

func TestShardedScalingCurveShape(t *testing.T) {
	w := amazonWorkload()
	s := OptimizedSLIDE(platform.CLX)

	// The curve is monotone non-decreasing while phases still divide
	// (through W=16 on CLX); past bandwidth saturation the linearly growing
	// barrier cost may bend it down, but only marginally — a collapse would
	// mean the barrier term is mis-scaled.
	prev := 0.0
	peak := 0.0
	for _, workers := range []int{1, 2, 4, 8, 16} {
		sp := ShardedSpeedup(w, s, platform.CLX, workers)
		if sp < prev {
			t.Errorf("speedup dips at W=%d: %.3f after %.3f", workers, sp, prev)
		}
		prev = sp
		peak = max(peak, sp)
	}
	for _, workers := range []int{32, 48} {
		sp := ShardedSpeedup(w, s, platform.CLX, workers)
		peak = max(peak, sp)
		if sp < 0.9*peak {
			t.Errorf("speedup collapses at W=%d: %.3f vs peak %.3f", workers, sp, peak)
		}
	}

	// W=1 pays barrier overhead against the straight-line reference, so its
	// "speedup" must sit just below 1 — the honest cost of determinism.
	if sp := ShardedSpeedup(w, s, platform.CLX, 1); sp >= 1 || sp < 0.9 {
		t.Errorf("W=1 sharded speedup %.4f, want slightly under 1", sp)
	}

	// At the paper's batch size the 4-worker engine must clear the CI
	// scaling gate's 1.6x with room to spare, and 48 workers must not
	// exceed perfect linear scaling.
	if sp := ShardedSpeedup(w, s, platform.CLX, 4); sp < 1.6 {
		t.Errorf("W=4 sharded speedup %.2f, want >= 1.6", sp)
	}
	if sp := ShardedSpeedup(w, s, platform.CLX, 48); sp > 48 {
		t.Errorf("W=48 sharded speedup %.2f exceeds linear", sp)
	}
}

func TestShardingCrossoverBatch(t *testing.T) {
	w := amazonWorkload()
	s := OptimizedSLIDE(platform.CLX)

	bs := ShardingCrossoverBatch(w, s, platform.CLX, 8)
	if bs <= 0 {
		t.Fatal("no crossover batch found — barrier cost modeled as unamortizable")
	}
	if bs > w.BatchSize {
		t.Errorf("crossover batch %d exceeds the paper's batch %d: sharding would never pay off", bs, w.BatchSize)
	}
	// The returned batch is a genuine crossover point: sharded wins at it,
	// single-worker wins (or ties) one power of two below.
	w.BatchSize = bs
	if ShardedStep(w, s, platform.CLX, 8) >= SingleStep(w, s, platform.CLX) {
		t.Errorf("sharded does not win at its own crossover batch %d", bs)
	}
	if bs > 1 {
		w.BatchSize = bs / 2
		if ShardedStep(w, s, platform.CLX, 8) < SingleStep(w, s, platform.CLX) {
			t.Errorf("sharded already wins below the reported crossover batch %d", bs)
		}
	}
}
