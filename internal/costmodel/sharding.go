package costmodel

import (
	"math"
	"time"

	"github.com/slide-cpu/slide/internal/platform"
)

// Sharded-execution extension: the deterministic scatter-gather trainer
// (network.Config.Shards) runs each optimizer step as a fixed sequence of
// barrier-separated phases striped over a pinned worker pool. Its scaling
// law differs from HOGWILD's in two ways this model captures:
//
//   - compute- and latency-bound phase terms divide across the workers, but
//     DRAM bandwidth is a shared socket resource — a bandwidth-bound phase
//     stops scaling once enough cores are in flight to saturate the
//     channels, and
//   - every phase pays a synchronization barrier whose cost grows with the
//     worker count (serial wakeups through the pool channels), a per-step
//     constant that compute amortizes only at sufficient batch size.
//
// The crossover helpers answer the deployment question directly: at what
// batch size (or worker count) does the sharded engine's determinism come
// for free versus running single-threaded?

const (
	// barrierLatency is the modeled cost of one phase barrier per worker:
	// a channel send, a WaitGroup arrival, and a futex wake.
	barrierLatency = 2e-6
	// shardStepPhases counts the barrier-separated phases of one sharded
	// step (forward, sample, merge, output-grad, reduce, hidden-backward,
	// optimizer — the rebuild phase is amortized into the hash phase term).
	shardStepPhases = 7
	// bwSaturationFrac is the fraction of the socket's cores needed to
	// saturate its DRAM channels; beyond that, bandwidth-bound phases stop
	// scaling with workers.
	bwSaturationFrac = 0.5
)

// stepPhases converts the per-epoch roofline decomposition to one step.
func stepPhases(w Workload, s System) []phase {
	batches := math.Ceil(float64(w.Samples) / float64(max(w.BatchSize, 1)))
	ph := phases(w, s)
	for i := range ph {
		ph[i].macs /= batches
		ph[i].bytes /= batches
		ph[i].rand /= batches
	}
	return ph
}

// stepTime evaluates the CPU roofline for one step with an explicit worker
// budget. workers caps the exploitable cores; bandwidth saturates at
// bwSaturationFrac of the socket regardless of the cap.
func stepTime(w Workload, s System, p platform.Platform, workers int, barriers bool) time.Duration {
	cores := float64(min(max(workers, 1), p.Cores))
	lanes := 1.0
	if s.Vectorized {
		lanes = float64(p.VectorLanesF32) * float64(p.FMAPorts)
		if s.WeightBytes == 2 && p.HasBF16 {
			lanes *= 2
		}
	}
	smt := 1.0
	if s.Hyperthread && p.ThreadsPerCore > 1 {
		smt = hyperBoost
	}
	util := cpuFlopUtil
	if !s.Sampled {
		util = denseFlopUtil
	}
	flops := cores * p.ClockGHz * 1e9 * 2 * lanes * util * smt
	// A few cores cannot saturate the socket's DRAM channels: bandwidth
	// scales with the worker share until bwSaturationFrac of the cores are
	// streaming, then flattens — the term that caps sharded scaling on
	// bandwidth-bound phases.
	satCores := max(1.0, float64(p.Cores)*bwSaturationFrac)
	bw := p.DRAMGBs * 1e9 * cpuBWUtil * min(1, cores/satCores)
	latPerSec := cores * mlp * smt / dramLatency

	var total float64
	for _, ph := range stepPhases(w, s) {
		comp := 2 * ph.macs / flops
		mem := ph.bytes / bw
		lat := ph.rand / latPerSec
		total += max(comp, max(mem, lat))
	}
	if barriers {
		total += shardStepPhases * barrierLatency * float64(min(max(workers, 1), p.Cores))
	}
	return time.Duration(total * float64(time.Second))
}

// SingleStep estimates one single-worker optimizer step — the sharded
// engine's W=1 reference (no barrier cost is charged: with one worker the
// phase sequence degenerates to straight-line execution).
func SingleStep(w Workload, s System, p platform.Platform) time.Duration {
	return stepTime(w, s, p, 1, false)
}

// ShardedStep estimates one sharded optimizer step at the given worker
// count: phase terms divide across the workers (bandwidth saturating per
// bwSaturationFrac), and every phase pays its barrier.
func ShardedStep(w Workload, s System, p platform.Platform, workers int) time.Duration {
	return stepTime(w, s, p, workers, true)
}

// ShardedSpeedup returns the modeled step-time ratio of the single-worker
// reference to the W-worker sharded engine — the scaling curve the
// slide-bench `sharding` mode measures empirically.
func ShardedSpeedup(w Workload, s System, p platform.Platform, workers int) float64 {
	return Speedup(SingleStep(w, s, p), ShardedStep(w, s, p, workers))
}

// ShardingCrossoverBatch returns the smallest power-of-two batch size at
// which the W-worker sharded step outruns the single-worker step — below
// it, per-step barrier overhead swamps the divided compute and the
// deterministic engine should run W=1 (or the caller should batch larger).
// Returns -1 if no batch size up to 2^20 crosses over.
func ShardingCrossoverBatch(w Workload, s System, p platform.Platform, workers int) int {
	for bs := 1; bs <= 1<<20; bs *= 2 {
		w.BatchSize = bs
		if ShardedStep(w, s, p, workers) < SingleStep(w, s, p) {
			return bs
		}
	}
	return -1
}
