package costmodel

import (
	"testing"
	"time"

	"github.com/slide-cpu/slide/internal/platform"
)

// amazonWorkload mirrors the paper's Amazon-670K setting (Table 1, §5.3):
// 490K samples, 75 non-zeros, hidden 128, 670K labels, batch 1024,
// DWTA K=6 L=400. Mean active-set size ~0.5% of the output layer, the
// sparsity regime SLIDE reports.
func amazonWorkload() Workload {
	return Workload{
		Samples: 490449, FeatureNNZ: 75, Input: 135909,
		Hidden: 128, Output: 670091,
		MeanActive: 3350, BatchSize: 1024,
		L: 400, K: 6, RebuildPeriod: 50,
	}
}

func TestTable2Shape(t *testing.T) {
	w := amazonWorkload()

	tfV100 := EstimateEpoch(w, FullSoftmax(), platform.V100)
	tfCLX := EstimateEpoch(w, FullSoftmax(), platform.CLX)
	tfCPX := EstimateEpoch(w, FullSoftmax(), platform.CPX)
	naiveCLX := EstimateEpoch(w, NaiveSLIDE(), platform.CLX)
	naiveCPX := EstimateEpoch(w, NaiveSLIDE(), platform.CPX)
	optCLX := EstimateEpoch(w, OptimizedSLIDE(platform.CLX), platform.CLX)
	optCPX := EstimateEpoch(w, OptimizedSLIDE(platform.CPX), platform.CPX)

	// Paper Table 2, Amazon-670K row: the ordering Opt-CPX < Opt-CLX <
	// Naive < TF-CPU, with TF-CPU within ~30% of V100 and Optimized SLIDE
	// several-fold faster than V100.
	if !(optCPX < optCLX) {
		t.Errorf("Opt CPX (%v) should beat Opt CLX (%v)", optCPX, optCLX)
	}
	if !(optCLX < naiveCLX) {
		t.Errorf("Opt CLX (%v) should beat Naive CLX (%v)", optCLX, naiveCLX)
	}
	if !(optCPX < naiveCPX) {
		t.Errorf("Opt CPX (%v) should beat Naive CPX (%v)", optCPX, naiveCPX)
	}
	if !(optCPX < tfV100 && optCLX < tfV100) {
		t.Errorf("Optimized SLIDE (%v/%v) should beat TF V100 (%v)", optCLX, optCPX, tfV100)
	}
	if !(naiveCLX < tfCLX && naiveCPX < tfCPX) {
		t.Errorf("Naive SLIDE should beat TF on the same CPU")
	}

	// Magnitudes: paper reports Opt-CPX 7.8x over V100, Opt-CLX 3.5x,
	// Opt vs Naive 4.4x/7.2x. Accept a generous band — the model must land
	// the right order of magnitude, not the exact figure.
	check := func(name string, got float64, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s speedup = %.2fx, want within [%g, %g]", name, got, lo, hi)
		}
	}
	check("OptCPX/V100", Speedup(tfV100, optCPX), 2, 40)
	check("OptCLX/V100", Speedup(tfV100, optCLX), 1.2, 20)
	check("OptCLX/NaiveCLX", Speedup(naiveCLX, optCLX), 1.5, 20)
	check("OptCPX/NaiveCPX", Speedup(naiveCPX, optCPX), 1.5, 25)
	check("OptCLX/TF-CLX", Speedup(tfCLX, optCLX), 1.5, 30)

	// TF on CPU is in the same ballpark as V100 (paper: 1.01x-1.27x slower).
	r := Speedup(tfV100, tfCLX)
	if r > 1.2 || r < 0.2 {
		t.Errorf("TF-CLX vs V100 ratio %.2f implausible (paper ~0.8)", 1/r)
	}
}

func TestTable4ShapeVectorization(t *testing.T) {
	w := amazonWorkload()
	on := OptimizedSLIDE(platform.CPX)
	off := on
	off.Vectorized = false
	tOn := EstimateEpoch(w, on, platform.CPX)
	tOff := EstimateEpoch(w, off, platform.CPX)
	s := Speedup(tOff, tOn)
	// Paper Table 4: AVX-512 buys 1.12x-1.22x (memory-bound workload).
	if s < 1.01 || s > 4 {
		t.Errorf("vectorization speedup %.2fx outside plausible band", s)
	}
}

func TestTable3ShapeBF16(t *testing.T) {
	w := amazonWorkload()
	full := OptimizedSLIDE(platform.CPX) // BF16 weights+acts on CPX
	none := full
	none.WeightBytes = 4
	none.ActBytes = 4
	tFull := EstimateEpoch(w, full, platform.CPX)
	tNone := EstimateEpoch(w, none, platform.CPX)
	s := Speedup(tNone, tFull)
	// Paper Table 3: BF16 both buys 1.28x on Amazon-670K.
	if s < 1.05 || s > 3 {
		t.Errorf("BF16 speedup %.2fx outside plausible band", s)
	}
	// On CLX (no BF16 hardware) OptimizedSLIDE must not claim BF16.
	if sys := OptimizedSLIDE(platform.CLX); sys.WeightBytes != 4 {
		t.Error("OptimizedSLIDE on CLX should stay FP32")
	}
}

func TestMemoryOptimizationShape(t *testing.T) {
	// §5.7: memory optimizations provide the dominant share of the 2-7x.
	w := amazonWorkload()
	opt := OptimizedSLIDE(platform.CLX)
	frag := opt
	frag.Coalesced = false
	s := Speedup(EstimateEpoch(w, frag, platform.CLX), EstimateEpoch(w, opt, platform.CLX))
	if s < 1.5 {
		t.Errorf("memory coalescing speedup %.2fx too small to explain §5.7", s)
	}
}

func TestHyperthreadBoost(t *testing.T) {
	w := amazonWorkload()
	on := OptimizedSLIDE(platform.CLX)
	off := on
	off.Hyperthread = false
	// Hyperthreading must never hurt and should help compute-bound phases.
	tOn := EstimateEpoch(w, on, platform.CLX)
	tOff := EstimateEpoch(w, off, platform.CLX)
	if tOn > tOff {
		t.Errorf("hyperthreading slowed the model down: %v vs %v", tOn, tOff)
	}
}

func TestPropertyMonotoneInWork(t *testing.T) {
	// More samples, more active neurons, or a wider layer must never make
	// the modeled epoch faster.
	base := amazonWorkload()
	sys := OptimizedSLIDE(platform.CLX)
	t0 := EstimateEpoch(base, sys, platform.CLX)

	more := base
	more.Samples *= 2
	if EstimateEpoch(more, sys, platform.CLX) <= t0 {
		t.Error("doubling samples did not increase modeled time")
	}
	wider := base
	wider.Hidden *= 2
	if EstimateEpoch(wider, sys, platform.CLX) <= t0 {
		t.Error("doubling hidden width did not increase modeled time")
	}
	denser := base
	denser.MeanActive *= 4
	if EstimateEpoch(denser, sys, platform.CLX) <= t0 {
		t.Error("quadrupling active set did not increase modeled time")
	}
}

func TestPropertyOptimizationsNeverHurt(t *testing.T) {
	// Each §4 optimization must be modeled as non-harmful on hardware that
	// supports it.
	w := amazonWorkload()
	for _, p := range []platform.Platform{platform.CLX, platform.CPX} {
		opt := OptimizedSLIDE(p)

		noVec := opt
		noVec.Vectorized = false
		if EstimateEpoch(w, opt, p) > EstimateEpoch(w, noVec, p) {
			t.Errorf("%s: vectorization modeled as harmful", p.Name)
		}
		frag := opt
		frag.Coalesced = false
		if EstimateEpoch(w, opt, p) > EstimateEpoch(w, frag, p) {
			t.Errorf("%s: coalescing modeled as harmful", p.Name)
		}
		if p.HasBF16 {
			fp32 := opt
			fp32.WeightBytes, fp32.ActBytes = 4, 4
			if EstimateEpoch(w, opt, p) > EstimateEpoch(w, fp32, p) {
				t.Errorf("%s: BF16 modeled as harmful on BF16 hardware", p.Name)
			}
		}
	}
}

func TestCPXDominatesCLX(t *testing.T) {
	// The 4-socket CPX must never be modeled slower than the 2-socket CLX
	// for the same system (more cores, more bandwidth, BF16).
	w := amazonWorkload()
	for _, sys := range []System{FullSoftmax(), NaiveSLIDE(), OptimizedSLIDE(platform.CLX)} {
		if EstimateEpoch(w, sys, platform.CPX) > EstimateEpoch(w, sys, platform.CLX) {
			t.Errorf("CPX modeled slower than CLX for %+v", sys)
		}
	}
}

func TestGPUAndEdgeCases(t *testing.T) {
	w := amazonWorkload()
	if EstimateEpoch(w, FullSoftmax(), platform.V100) <= 0 {
		t.Error("GPU estimate must be positive")
	}
	if Speedup(time.Second, 0) != 0 {
		t.Error("Speedup with zero denominator should be 0")
	}
	if platform.CLX.Threads() != 96 || platform.CPX.Threads() != 224 {
		t.Error("paper platform thread counts wrong")
	}
	if h := platform.Host(); h.Cores <= 0 {
		t.Error("host must report cores")
	}
}

func TestHostRooflineUsesDetectedLanes(t *testing.T) {
	// The same-hardware roofline row is parameterized by the detected lane
	// count: a hypothetical host with no vector unit (1 lane) must never be
	// modeled faster than the real detected host for a vectorized system.
	w := amazonWorkload()
	host := platform.Host()
	narrow := host
	narrow.VectorLanesF32 = 1
	sys := OptimizedSLIDE(host)
	if EstimateEpoch(w, sys, host) > EstimateEpoch(w, sys, narrow) {
		t.Errorf("detected-lane host (%d lanes) modeled slower than 1-lane host",
			host.VectorLanesF32)
	}
	// And the descriptor carries the detected lane count (or the portable
	// tier's 4-lane ILP equivalent when no vector extension was detected).
	if host.VectorLanesF32 != 4 && host.VectorLanesF32 != 8 && host.VectorLanesF32 != 16 {
		t.Errorf("host lanes = %d, want 4, 8 or 16", host.VectorLanesF32)
	}
}
