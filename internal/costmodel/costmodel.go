// Package costmodel estimates per-epoch training time on the paper's
// platforms with a three-term roofline: an epoch decomposes into phases,
// each characterized by multiply-accumulate count, DRAM traffic, and random
// cache-line touches; a phase takes max(compute, bandwidth, latency) time.
// This is the substitution for the CLX/CPX/V100 hardware we cannot run on
// (DESIGN.md): it reproduces the *ratios* of Table 2 and the bar chart of
// Figure 6 — who wins and by roughly what factor — not absolute wall-clock.
//
// The memory terms encode the paper's §4.1 analysis directly: with the
// coalesced layout, a batch's touches to the same weight row are served by
// cache after one DRAM stream, so traffic scales with the expected number of
// *distinct* rows per batch; with the fragmented layout every touch pays its
// own trip plus partially wasted cache lines. Hyper-threading (§4.1.1)
// enters as extra latency-hiding for the random-access term.
package costmodel

import (
	"math"
	"time"

	"github.com/slide-cpu/slide/internal/platform"
)

// Calibration constants — the model's only free parameters, all physically
// interpretable.
const (
	cpuFlopUtil   = 0.30  // fraction of peak vector FLOPs on irregular code
	denseFlopUtil = 0.65  // dense matmul efficiency (blocked BLAS-style code)
	cpuBWUtil     = 0.60  // fraction of peak DRAM bandwidth on mixed streams
	gpuFlopUtil   = 0.45  // dense matmul efficiency without tensor cores
	gpuBWUtil     = 0.70  // GPU effective bandwidth fraction
	hyperBoost    = 1.30  // throughput gain from 2-way SMT (§4.1.1)
	dramLatency   = 80e-9 // seconds per uncovered random DRAM access
	mlp           = 10    // outstanding misses per core (latency hiding)
	lineWaste     = 1.5   // fragmented layouts drag partially unused lines
	// fragReuseCap bounds how much worse fragmented weight traffic gets
	// versus coalesced: fragmentation destroys spatial locality (adjacent
	// vectors no longer share cache lines or prefetch trains) but same-row
	// temporal reuse within a batch survives.
	fragReuseCap = 3.0
	avgBucket    = 16  // mean retrieved candidates per table query
	hashOpCost   = 4.0 // flops-equivalent per hash-map operation
)

// Workload carries the statistics that determine an epoch's work. All
// counts are per epoch unless noted.
type Workload struct {
	Samples    int
	FeatureNNZ float64 // mean non-zeros per sample
	Input      int     // feature dimensionality
	Hidden     int
	Output     int
	// MeanActive is the mean output-layer active-set size per sample
	// (ignored for the full-softmax baseline, which uses Output).
	MeanActive float64
	BatchSize  int
	// L and K describe the hash structure (zero for full softmax).
	L, K int
	// RebuildPeriod is the mean batches between table rebuilds.
	RebuildPeriod float64
}

// System describes the implementation variant being modeled.
type System struct {
	// Sampled is true for SLIDE (LSH-sampled softmax), false for the dense
	// baseline.
	Sampled bool
	// Vectorized selects SIMD kernels (AVX-512 on; Table 4's ablation).
	Vectorized bool
	// Coalesced selects the §4.1 memory layouts (off = naive fragmented).
	Coalesced bool
	// WeightBytes is 4 for FP32, 2 for BF16 weights.
	WeightBytes int
	// ActBytes is 4 for FP32 activations, 2 for BF16.
	ActBytes int
	// Hyperthread enables the SMT boost (§4.1.1).
	Hyperthread bool
}

// OptimizedSLIDE returns the paper's fully optimized configuration for a
// platform (BF16 weights+activations only where supported).
func OptimizedSLIDE(p platform.Platform) System {
	s := System{Sampled: true, Vectorized: true, Coalesced: true,
		WeightBytes: 4, ActBytes: 4, Hyperthread: true}
	if p.HasBF16 {
		s.WeightBytes = 2
		s.ActBytes = 2
	}
	return s
}

// NaiveSLIDE returns the original SLIDE configuration: OpenMP parallelism
// only — no vectorization, fragmented memory, FP32.
func NaiveSLIDE() System {
	return System{Sampled: true, Vectorized: false, Coalesced: false,
		WeightBytes: 4, ActBytes: 4, Hyperthread: true}
}

// FullSoftmax returns the dense baseline configuration (TF uses AVX and
// contiguous tensors).
func FullSoftmax() System {
	return System{Sampled: false, Vectorized: true, Coalesced: true,
		WeightBytes: 4, ActBytes: 4, Hyperthread: true}
}

// phase is one roofline component.
type phase struct {
	macs  float64 // multiply-accumulates
	bytes float64 // DRAM traffic in bytes
	rand  float64 // random cache-line touches (latency-bound)
}

// expectedDistinct returns the expected number of distinct items hit by
// `touches` uniform draws over `total` items (the batch-level weight-row
// reuse estimate).
func expectedDistinct(touches, total float64) float64 {
	if total <= 0 {
		return 0
	}
	return total * (1 - math.Exp(-touches/total))
}

// phases decomposes an epoch into roofline components.
func phases(w Workload, s System) []phase {
	n := float64(w.Samples)
	h := float64(w.Hidden)
	f := w.FeatureNNZ
	active := w.MeanActive
	if !s.Sampled {
		active = float64(w.Output)
	}
	wb := float64(s.WeightBytes)
	ab := float64(s.ActBytes)
	bs := float64(max(w.BatchSize, 1))
	batches := math.Ceil(n / bs)

	// Distinct weight rows/columns streamed per batch. The coalesced layout
	// lets every thread in the batch reuse a row once it is cached; the
	// fragmented layout pays per touch, with partially wasted lines.
	distinctOut := expectedDistinct(bs*active, float64(w.Output))
	distinctHid := expectedDistinct(bs*f, float64(w.Input))
	var dOut, dHid, waste float64
	if s.Coalesced {
		dOut, dHid, waste = distinctOut, distinctHid, 1
	} else {
		dOut = min(bs*active, fragReuseCap*distinctOut)
		dHid = min(bs*f, fragReuseCap*distinctHid)
		waste = lineWaste
	}

	// Hidden forward (Algorithm 2): f·h MACs per sample; per batch the
	// touched columns stream once (coalesced) or per touch (fragmented);
	// batch data adds one random access per sample (coalesced CSR) or per
	// non-zero (fragmented arrays).
	hidFwd := phase{
		macs:  n * f * h,
		bytes: batches*dHid*h*wb*waste + n*f*8*waste,
		rand:  pick(s.Coalesced, n, n*f),
	}
	// Output forward (Algorithm 1): active·h MACs; active rows stream per
	// batch with reuse; each row touch begins with a random line.
	outFwd := phase{
		macs:  n * active * h,
		bytes: batches*dOut*h*wb*waste + n*h*ab,
		rand:  pick(s.Coalesced, n*active*0.3, n*active),
	}
	// Backward: per active row, gradient accumulate (read+write) and ∇h
	// accumulation (re-read of weights, usually cached); hidden column
	// gradients mirror the forward touch pattern.
	backward := phase{
		macs:  n * (2*active*h + f*h),
		bytes: batches*(2*dOut*h*4+dHid*h*4)*waste + n*h*4,
		rand:  pick(s.Coalesced, n*active*0.3, n*active),
	}
	// ADAM (§4.3.1): one fused pass over the *distinct* touched rows/columns
	// per batch regardless of layout (the touched-set scan deduplicates);
	// fragmentation only costs wasted lines and random row starts here.
	adam := phase{
		macs:  batches * (distinctOut + distinctHid) * h * 5,
		bytes: batches * (distinctOut*h*(wb+12) + distinctHid*h*16) * waste,
		rand:  batches * (distinctOut + distinctHid) * pick(s.Coalesced, 0.1, 1),
	}
	ph := []phase{hidFwd, outFwd, backward, adam}

	if s.Sampled {
		// Query: L random bucket reads per sample plus candidate dedup;
		// rebuild: every neuron re-hashed and re-inserted.
		lk := float64(w.L * w.K)
		rebuilds := batches / max(w.RebuildPeriod, 1)
		cand := float64(w.L) * avgBucket
		hash := phase{
			macs: n*(lk*hashOpCost+cand*2) +
				rebuilds*float64(w.Output)*(h+lk*hashOpCost),
			bytes: n*float64(w.L)*64 + rebuilds*float64(w.Output)*h*wb,
			rand:  n * float64(w.L),
		}
		ph = append(ph, hash)
	}
	return ph
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// EstimateEpoch returns the modeled epoch time for the system on the
// platform.
func EstimateEpoch(w Workload, s System, p platform.Platform) time.Duration {
	var total float64
	if p.Kind == platform.GPU {
		// Dense batch matmuls; massive thread-level parallelism hides
		// random-access latency, so only the first two roofline terms apply.
		for _, ph := range phases(w, s) {
			comp := 2 * ph.macs / (p.TFLOPSF32 * 1e12 * gpuFlopUtil)
			mem := ph.bytes / (p.HBMGBs * 1e9 * gpuBWUtil)
			total += max(comp, mem)
		}
		batches := math.Ceil(float64(w.Samples) / float64(max(w.BatchSize, 1)))
		total += batches * 20 * p.KernelLaunchUs * 1e-6 // ~20 kernels per step
		return time.Duration(total * float64(time.Second))
	}

	lanes := 1.0
	if s.Vectorized {
		lanes = float64(p.VectorLanesF32) * float64(p.FMAPorts)
		if s.WeightBytes == 2 && p.HasBF16 {
			lanes *= 2 // AVX512-BF16 doubles lanes per instruction (§4.4)
		}
	}
	smt := 1.0
	if s.Hyperthread && p.ThreadsPerCore > 1 {
		smt = hyperBoost
	}
	util := cpuFlopUtil
	if !s.Sampled {
		util = denseFlopUtil // regular blocked matmuls run near peak
	}
	flops := float64(p.Cores) * p.ClockGHz * 1e9 * 2 * lanes * util * smt
	bw := p.DRAMGBs * 1e9 * cpuBWUtil
	// Latency-hiding: cores × outstanding misses, improved by SMT.
	latPerSec := float64(p.Cores) * mlp * smt / dramLatency

	for _, ph := range phases(w, s) {
		comp := 2 * ph.macs / flops
		mem := ph.bytes / bw
		lat := ph.rand / latPerSec
		total += max(comp, max(mem, lat))
	}
	return time.Duration(total * float64(time.Second))
}

// Speedup returns how much faster b is than a (a_time / b_time).
func Speedup(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
