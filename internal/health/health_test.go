package health

import (
	"math"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
)

func TestHealthCountNonFinite32(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		in   []float32
		want int64
	}{
		{nil, 0},
		{[]float32{0, 1, -2.5, 1e38, -1e-38}, 0},
		{[]float32{nan}, 1},
		{[]float32{inf, -inf}, 2},
		{[]float32{1, nan, 2, inf, 3}, 2},
	}
	for i, c := range cases {
		if got := CountNonFinite32(c.in); got != c.want {
			t.Errorf("case %d: CountNonFinite32 = %d, want %d", i, got, c.want)
		}
	}
	if got := FirstNonFinite32([]float32{1, 2, nan, inf}); got != 2 {
		t.Errorf("FirstNonFinite32 = %d, want 2", got)
	}
	if got := FirstNonFinite32([]float32{1, 2}); got != -1 {
		t.Errorf("FirstNonFinite32 on finite slice = %d, want -1", got)
	}
	if !IsFinite32(1.5) || IsFinite32(nan) || IsFinite32(inf) || IsFinite32(-inf) {
		t.Error("IsFinite32 misclassified a value")
	}
}

func TestHealthCountNonFiniteBF16(t *testing.T) {
	vals := []float32{0, 1, float32(math.NaN()), float32(math.Inf(-1)), -3}
	bf := make([]bf16.BF16, len(vals))
	for i, v := range vals {
		bf[i] = bf16.FromFloat32(v)
	}
	if got := CountNonFiniteBF16(bf); got != 2 {
		t.Errorf("CountNonFiniteBF16 = %d, want 2", got)
	}
	if got := FirstNonFiniteBF16(bf); got != 2 {
		t.Errorf("FirstNonFiniteBF16 = %d, want 2", got)
	}
}

func TestHealthMonitorNonFinite(t *testing.T) {
	m := NewMonitor(Config{})
	if _, red := m.Observe(1, 2.0, 0); red {
		t.Fatal("healthy batch flagged red")
	}
	e, red := m.Observe(2, 2.0, 3)
	if !red || e.Kind != NonFinite || e.NonFinite != 3 || e.Step != 2 {
		t.Fatalf("non-finite count not flagged: %+v red=%v", e, red)
	}
	e, red = m.Observe(3, math.NaN(), 0)
	if !red || e.Kind != NonFinite {
		t.Fatalf("NaN loss not flagged: %+v red=%v", e, red)
	}
	e, red = m.Observe(4, math.Inf(1), 0)
	if !red || e.Kind != NonFinite {
		t.Fatalf("Inf loss not flagged: %+v red=%v", e, red)
	}
}

func TestHealthMonitorSpikeAndWarmup(t *testing.T) {
	m := NewMonitor(Config{Warmup: 5, Alpha: 0.5, SpikeFactor: 3})
	// During warmup even a big jump passes.
	if _, red := m.Observe(1, 100, 0); red {
		t.Fatal("warmup batch flagged red")
	}
	for s := int64(2); s <= 5; s++ {
		if _, red := m.Observe(s, 2.0, 0); red {
			t.Fatalf("warmup batch %d flagged red", s)
		}
	}
	// Warmed up near 2.0-ish EWMA; a modest wobble passes.
	if _, red := m.Observe(6, 4.0, 0); red {
		t.Fatal("modest wobble flagged red")
	}
	// A true spike trips.
	e, red := m.Observe(7, 1000, 0)
	if !red || e.Kind != LossSpike {
		t.Fatalf("spike not flagged: %+v red=%v", e, red)
	}
	// The red batch was not folded in: the same spike trips again.
	if _, red := m.Observe(8, 1000, 0); !red {
		t.Fatal("spike folded into EWMA despite red verdict")
	}
	// Reset re-enters warmup.
	m.Reset()
	if _, red := m.Observe(9, 1000, 0); red {
		t.Fatal("post-Reset batch flagged red during warmup")
	}
}

func TestHealthMonitorDivergence(t *testing.T) {
	m := NewMonitor(Config{DivergenceLoss: 50})
	// Fires immediately, warmup or not.
	e, red := m.Observe(1, 51, 0)
	if !red || e.Kind != Divergence {
		t.Fatalf("divergence not flagged: %+v red=%v", e, red)
	}
	if _, red := m.Observe(2, 49, 0); red {
		t.Fatal("loss under the ceiling flagged red")
	}
}

func TestHealthMonitorDeterministicReplay(t *testing.T) {
	// Two monitors fed the same sequence produce identical verdicts and
	// EWMA — the property the rollback replay depends on.
	seq := []float64{3, 2.5, 2.8, 2.2, 9.9, 2.0, 2.1}
	a, b := NewMonitor(Config{Warmup: 2}), NewMonitor(Config{Warmup: 2})
	for i, l := range seq {
		ea, ra := a.Observe(int64(i), l, 0)
		eb, rb := b.Observe(int64(i), l, 0)
		if ra != rb || ea != eb {
			t.Fatalf("step %d: verdicts diverged: %+v/%v vs %+v/%v", i, ea, ra, eb, rb)
		}
	}
	if a.EWMA() != b.EWMA() {
		t.Fatalf("EWMA diverged: %g vs %g", a.EWMA(), b.EWMA())
	}
}
