// Package health is the numerical-health layer of the train-and-serve
// stack: cheap detectors that turn a NaN gradient, an exploding loss, or a
// silently diverging model into a typed event the training engine can act
// on (roll back to the last good checkpoint) and the serving/replication
// layers can refuse to publish (quarantine).
//
// Everything here is deterministic: the finite scans are pure functions of
// the values scanned, and the Monitor folds batch statistics in call order
// on a single goroutine — so a verdict at optimizer step N is bit-identical
// across worker counts and across a rollback replay of the same steps.
package health

import (
	"fmt"
	"math"

	"github.com/slide-cpu/slide/internal/bf16"
)

// Kind classifies a health event.
type Kind int

const (
	// NonFinite: a NaN or ±Inf surfaced in the forward pass (logits or
	// per-sample loss) — the model's parameters or activations are poisoned.
	NonFinite Kind = iota + 1
	// LossSpike: the batch mean loss jumped past the spike factor times the
	// EWMA of recent batches — a likely exploding step (bad LR, bad batch).
	LossSpike
	// Divergence: the batch mean loss exceeded the absolute divergence
	// ceiling — training has left the plausible regime entirely.
	Divergence
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case NonFinite:
		return "non-finite"
	case LossSpike:
		return "loss-spike"
	case Divergence:
		return "divergence"
	default:
		return fmt.Sprintf("health.Kind(%d)", int(k))
	}
}

// Event is one red verdict from the Monitor: the step it fired on and the
// numbers that tripped it.
type Event struct {
	// Kind is what tripped.
	Kind Kind
	// Step is the optimizer step whose batch produced the verdict.
	Step int64
	// Loss is the batch mean loss observed at the verdict.
	Loss float64
	// EWMA is the monitor's loss average going into the batch (zero before
	// warmup completes) — the baseline a LossSpike was measured against.
	EWMA float64
	// NonFinite counts the non-finite logits and losses the batch guards
	// found (zero for pure loss verdicts).
	NonFinite int64
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case NonFinite:
		return fmt.Sprintf("%s at step %d: %d non-finite value(s), batch loss %g",
			e.Kind, e.Step, e.NonFinite, e.Loss)
	case LossSpike:
		return fmt.Sprintf("%s at step %d: batch loss %g vs EWMA %g",
			e.Kind, e.Step, e.Loss, e.EWMA)
	default:
		return fmt.Sprintf("%s at step %d: batch loss %g", e.Kind, e.Step, e.Loss)
	}
}

// Config tunes the Monitor. The zero value takes the defaults below.
type Config struct {
	// Warmup is how many healthy batches the EWMA folds in before the
	// LossSpike detector arms (the first batches of a fresh model are
	// legitimately erratic). Default 20.
	Warmup int
	// Alpha is the EWMA smoothing factor in (0, 1]; smaller = smoother.
	// Default 0.1.
	Alpha float64
	// SpikeFactor fires LossSpike when the batch mean loss exceeds
	// SpikeFactor times the warmed-up EWMA. Default 3; <= 1 disables the
	// spike detector.
	SpikeFactor float64
	// DivergenceLoss fires Divergence when the batch mean loss exceeds this
	// absolute ceiling, warmup or not. Default 0 (disabled).
	DivergenceLoss float64
}

func (c Config) withDefaults() Config {
	if c.Warmup <= 0 {
		c.Warmup = 20
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.1
	}
	if c.SpikeFactor == 0 {
		c.SpikeFactor = 3
	}
	return c
}

// Monitor is the per-session loss-trajectory detector: an EWMA of batch
// mean losses plus the non-finite guard verdicts. Single-goroutine (the
// training engine observes between batches); deterministic in the sequence
// of Observe calls.
type Monitor struct {
	cfg  Config
	ewma float64
	seen int
}

// NewMonitor builds a monitor; zero-value cfg fields take defaults.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{cfg: cfg.withDefaults()}
}

// Observe folds one batch into the monitor and reports a red verdict if
// any. meanLoss is the batch mean loss; nonFinite the count of non-finite
// values the engine's guards found in the batch. A red batch is not folded
// into the EWMA — the baseline stays the healthy trajectory, so the replay
// after a rollback re-derives the same verdicts at the same steps.
func (m *Monitor) Observe(step int64, meanLoss float64, nonFinite int64) (Event, bool) {
	e := Event{Step: step, Loss: meanLoss, EWMA: m.ewma, NonFinite: nonFinite}
	if nonFinite > 0 || math.IsNaN(meanLoss) || math.IsInf(meanLoss, 0) {
		e.Kind = NonFinite
		return e, true
	}
	if m.cfg.DivergenceLoss > 0 && meanLoss > m.cfg.DivergenceLoss {
		e.Kind = Divergence
		return e, true
	}
	if m.seen >= m.cfg.Warmup && m.cfg.SpikeFactor > 1 &&
		m.ewma > 0 && meanLoss > m.cfg.SpikeFactor*m.ewma {
		e.Kind = LossSpike
		return e, true
	}
	if m.seen == 0 {
		m.ewma = meanLoss
	} else {
		m.ewma += m.cfg.Alpha * (meanLoss - m.ewma)
	}
	m.seen++
	return Event{}, false
}

// Reset clears the trajectory state. The rollback loop calls it before a
// replay so the EWMA re-warms from the restored checkpoint instead of
// carrying pre-fault history.
func (m *Monitor) Reset() {
	m.ewma = 0
	m.seen = 0
}

// EWMA returns the current smoothed loss (diagnostics).
func (m *Monitor) EWMA() float64 { return m.ewma }

// nonFiniteMask32 selects the float32 exponent bits: all ones means NaN or
// ±Inf. One integer test per value — branch-free in the scan loop below.
const nonFiniteMask32 = 0x7f800000

// IsFinite32 reports whether v is neither NaN nor ±Inf.
func IsFinite32(v float32) bool {
	return math.Float32bits(v)&nonFiniteMask32 != nonFiniteMask32
}

// CountNonFinite32 returns how many values in x are NaN or ±Inf. The guard
// scan of the training engines: O(len) integer compares over data already
// resident in cache from the forward pass.
func CountNonFinite32(x []float32) int64 {
	var bad int64
	for _, v := range x {
		if math.Float32bits(v)&nonFiniteMask32 == nonFiniteMask32 {
			bad++
		}
	}
	return bad
}

// CountNonFiniteBF16 is CountNonFinite32 over bfloat16 storage (same
// layout, top 16 bits: exponent mask 0x7f80).
func CountNonFiniteBF16(x []bf16.BF16) int64 {
	var bad int64
	for _, v := range x {
		if uint16(v)&0x7f80 == 0x7f80 {
			bad++
		}
	}
	return bad
}

// FirstNonFinite32 returns the index of the first non-finite value in x, or
// -1 — the quarantine scans use it to name the damage.
func FirstNonFinite32(x []float32) int {
	for i, v := range x {
		if math.Float32bits(v)&nonFiniteMask32 == nonFiniteMask32 {
			return i
		}
	}
	return -1
}

// FirstNonFiniteBF16 is FirstNonFinite32 over bfloat16 storage.
func FirstNonFiniteBF16(x []bf16.BF16) int {
	for i, v := range x {
		if uint16(v)&0x7f80 == 0x7f80 {
			return i
		}
	}
	return -1
}
