package replicate

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"github.com/slide-cpu/slide/internal/network"
)

// quantIdentical asserts the replica predictor is int8-quantized and both
// answers and serializes byte-identically to quantizing the trainer's local
// snapshot — the end-to-end quantize-at-publish contract.
func quantIdentical(t *testing.T, local, remote *network.Predictor, src *trainSrc) {
	t.Helper()
	if !remote.Quantized() || remote.QuantizedBits() != 8 {
		t.Fatalf("replica predictor reports %v/int%d, want int8",
			remote.Quantized(), remote.QuantizedBits())
	}
	lq, err := local.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	expectIdentical(t, lq, remote, src.probes(30))
	var lb, rb bytes.Buffer
	if err := lq.WriteOutput(&lb); err != nil {
		t.Fatal(err)
	}
	if err := remote.WriteOutput(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb.Bytes(), rb.Bytes()) {
		t.Fatal("replica packed rows diverge from a local quantize of the same snapshot")
	}
}

// TestQuantizedFollow: with the hub in int8 mode the replica bootstraps from
// a packed base, applies packed deltas, and at every step serves exactly what
// quantizing the trainer's snapshot would serve — without a single re-sync.
func TestQuantizedFollow(t *testing.T) {
	n := newTestNet(t, 43)
	src := newTrainSrc(60, 20, 11)
	hub := NewHub()
	if err := hub.SetQuantize(8); err != nil {
		t.Fatal(err)
	}
	_, c, swaps := testCluster(t, hub)

	for i := 0; i < 3; i++ {
		n.TrainBatch(src.batch(32))
	}
	p, d := n.SnapshotDelta()
	if d != nil {
		t.Fatal("first snapshot should be a base")
	}
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()
	waitVersion(t, swaps, 1)

	local := p
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			n.TrainBatch(src.batch(32))
		}
		var d *network.Delta
		local, d = n.SnapshotDelta()
		if d == nil {
			t.Fatal("expected a delta")
		}
		if err := hub.Publish(local, d); err != nil {
			t.Fatal(err)
		}
	}
	waitVersion(t, swaps, 5)
	quantIdentical(t, local, c.cur, src)
	if got := c.Stats.DeltasApplied.Load(); got != 4 {
		t.Errorf("deltas applied = %d, want 4", got)
	}
	if got := c.Stats.Resyncs.Load(); got != 0 {
		t.Errorf("resyncs = %d, want 0", got)
	}
	cancel()
	<-done
}

// TestQuantizedRingGapResync: a replica that falls out of the quantized
// hub's replay ring re-syncs from a fresh packed base and stays quantized.
func TestQuantizedRingGapResync(t *testing.T) {
	n := newTestNet(t, 47)
	src := newTrainSrc(60, 20, 13)
	hub := NewHub()
	if err := hub.SetQuantize(8); err != nil {
		t.Fatal(err)
	}
	hub.ringCap = 2
	_, c, _ := testCluster(t, hub)

	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}

	// Four more versions while the replica is away; the ring holds two.
	var local *network.Predictor
	for i := 0; i < 4; i++ {
		n.TrainBatch(src.batch(32))
		var d *network.Delta
		local, d = n.SnapshotDelta()
		if err := hub.Publish(local, d); err != nil {
			t.Fatal(err)
		}
	}
	resync, err := c.pollOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !resync {
		t.Fatal("expected a ring-gap re-sync")
	}
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	if c.version != 5 {
		t.Fatalf("re-synced to version %d, want 5", c.version)
	}
	quantIdentical(t, local, c.cur, src)
}

// TestRequireQuantizedRefusesF32: a replica pinned to int8 refuses an f32
// base during sync — sized-for-packed replicas never silently inflate.
func TestRequireQuantizedRefusesF32(t *testing.T) {
	n := newTestNet(t, 53)
	src := newTrainSrc(60, 20, 17)
	hub := NewHub() // f32: SetQuantize never called
	_, c, _ := testCluster(t, hub)
	c.RequireQuantized = 8

	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}

	err := c.syncBase(context.Background())
	if err == nil {
		t.Fatal("int8-pinned replica accepted an f32 base")
	}
	if !strings.Contains(err.Error(), "requires int8") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	if got := c.Stats.Corrupt.Load(); got != 1 {
		t.Errorf("corrupt count = %d, want 1", got)
	}
	if c.cur != nil {
		t.Error("refused base must not install a predictor")
	}
}

// TestSetQuantizeValidation: only widths 0/4/8 are accepted, and the mode is
// immutable once the stream has published (mid-stream flips would desync
// every follower).
func TestSetQuantizeValidation(t *testing.T) {
	hub := NewHub()
	if err := hub.SetQuantize(5); err == nil {
		t.Error("SetQuantize(5) accepted")
	}
	if err := hub.SetQuantize(4); err != nil {
		t.Errorf("SetQuantize(4): %v", err)
	}
	if err := hub.SetQuantize(0); err != nil {
		t.Errorf("SetQuantize(0): %v", err)
	}
	if err := hub.SetQuantize(8); err != nil {
		t.Errorf("SetQuantize(8): %v", err)
	}

	n := newTestNet(t, 59)
	n.TrainBatch(newTrainSrc(60, 20, 19).batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	if err := hub.SetQuantize(4); err == nil {
		t.Error("SetQuantize after Publish accepted")
	}
}

// TestQuantizedWireRoundTrip: v2 base and delta messages carry QBits through
// encode/decode, and an envelope declaring an unknown width is rejected.
func TestQuantizedWireRoundTrip(t *testing.T) {
	n := newTestNet(t, 61)
	src := newTrainSrc(60, 20, 23)
	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	n.TrainBatch(src.batch(32))
	_, d := n.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta")
	}

	enc, err := EncodeBaseQ(p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := ReadMessage(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || base.Parts.QBits != 8 {
		t.Fatalf("decoded base QBits = %+v, want 8", base)
	}

	dEnc, err := EncodeDeltaQ(d, 1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, dd, err := ReadMessage(bytes.NewReader(dEnc))
	if err != nil {
		t.Fatal(err)
	}
	if dd == nil || dd.Parts.QBits != 8 || dd.FromVersion != 1 || dd.ToVersion != 2 {
		t.Fatalf("decoded delta = %+v, want QBits 8 v1->v2", dd)
	}

	// The f32 encoders still emit v1 bytes: no qbits field in the envelope.
	v1, err := EncodeBase(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := ReadMessage(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if b1.Parts.QBits != 0 {
		t.Fatalf("f32 base decoded QBits %d, want 0", b1.Parts.QBits)
	}

	// Corrupt the declared width to 5 (and re-stamp the envelope section's
	// CRC so only the semantic check can object): message header is 12
	// bytes, the envelope section header 12 more, so the 40-byte envelope
	// payload spans [24,64) with qbits in its last 8 bytes.
	bad := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(bad[56:64], 5)
	crc := crc32.Checksum(bad[24:64], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(bad[64:68], crc)
	if _, _, err := ReadMessage(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "qbits") {
		t.Fatalf("qbits=5 envelope not rejected: %v", err)
	}
}
