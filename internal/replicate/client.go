package replicate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
)

// maxMessageBytes bounds one replication response body read into memory.
// Each section is already bounded by the framing; this bounds the count.
const maxMessageBytes = 16 << 30

// Stats is the client's atomic observability surface: safe to read from
// any goroutine while Run is live. Versions are hub replication versions.
type Stats struct {
	// Version is the replica's current applied version (0 until the first
	// base sync).
	Version atomic.Uint64
	// TrainerVersion is the newest version the trainer has advertised
	// (X-Replicate-Version on any response).
	TrainerVersion atomic.Uint64
	// DeltasApplied counts deltas successfully applied since start.
	DeltasApplied atomic.Uint64
	// Resyncs counts full base re-syncs after the initial one (gap,
	// corruption, or config mismatch).
	Resyncs atomic.Uint64
	// Corrupt counts messages rejected for CRC/parse/config failures.
	Corrupt atomic.Uint64
	// Quarantined counts messages rejected for non-finite weights — a
	// poisoned delta or base refused at admission. Handled like corruption
	// (re-sync, served predictor untouched) but counted apart so operators
	// can tell numerical poison from wire damage.
	Quarantined atomic.Uint64
	// Connected is 1 while the stream is healthy (last fetch succeeded).
	Connected atomic.Uint64
	// BackoffMS is the re-sync backoff the client is currently waiting (or
	// last waited), in milliseconds; 0 after a healthy sync. Exposed as
	// resync_backoff_ms in replica /stats.
	BackoffMS atomic.Uint64
}

// Client follows one trainer's replication stream: sync a base, long-poll
// deltas, apply each copy-on-write, hand every new predictor to OnSwap.
// On any gap (the trainer moved past the replay ring, or restarted),
// corruption (CRC or parse failure), or config-shape mismatch the client
// discards nothing it serves — it keeps the current predictor, counts the
// event, and re-syncs from a fresh base.
type Client struct {
	// BaseURL is the trainer's root, e.g. "http://host:8080".
	BaseURL string
	// HTTP is the client to use; http.DefaultClient when nil. Its Timeout
	// must exceed PollTimeout or long-polls will be cut short.
	HTTP *http.Client
	// OnSwap receives every newly applied predictor and its version —
	// the hook that swaps it into the serving pipeline.
	OnSwap func(p *network.Predictor, version uint64)
	// PollTimeout caps one delta long-poll round trip (default 30s).
	PollTimeout time.Duration
	// ResyncBackoff is the initial pause before retrying after a failed
	// sync (default 250ms). Consecutive failures double it up to
	// MaxResyncBackoff; a successful sync resets it.
	ResyncBackoff time.Duration
	// MaxResyncBackoff caps the exponential backoff (default 8s).
	MaxResyncBackoff time.Duration
	// JitterSeed seeds the deterministic backoff jitter (so a restarted
	// replica fleet doesn't retry in lockstep, yet a given seed replays the
	// exact same schedule). Wire it to the replica's -seed flag.
	JitterSeed uint64
	// RequireQuantized, when 8 or 4, refuses base snapshots that are not
	// quantized at exactly that width — a replica provisioned for an int8
	// memory budget must not silently inflate to f32 because the hub was
	// started without -quantize. 0 accepts whatever the hub streams.
	// Deltas are checked structurally by ApplyDelta (a width flip between
	// base and delta is corruption either way).
	RequireQuantized int

	// Stats is updated throughout Run.
	Stats Stats

	cur     *network.Predictor
	version uint64
	// failures counts consecutive failed syncs, driving the backoff
	// exponent. Only touched from the Run goroutine.
	failures int
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// splitmix64 is the standard 64-bit mix, here hashing (seed, attempt) into
// deterministic backoff jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff sleeps the capped exponential re-sync pause: base << failures,
// clamped to the max, plus deterministic jitter in [0, d/4) derived from
// (JitterSeed, attempt). Replaces the old tight fixed-interval retry —
// a hub that stays down sees a decaying probe rate, and a seeded fleet
// desynchronizes its retries without losing reproducibility.
func (c *Client) backoff(ctx context.Context) {
	base := c.ResyncBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	maxB := c.MaxResyncBackoff
	if maxB <= 0 {
		maxB = 8 * time.Second
	}
	if maxB < base {
		maxB = base
	}
	d := base
	for i := 0; i < c.failures && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	if q := d / 4; q > 0 {
		d += time.Duration(splitmix64(c.JitterSeed+uint64(c.failures)) % uint64(q))
	}
	c.failures++
	c.Stats.BackoffMS.Store(uint64(d.Milliseconds()))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// backoffReset clears the exponential schedule after a healthy sync.
func (c *Client) backoffReset() {
	c.failures = 0
	c.Stats.BackoffMS.Store(0)
}

// Run follows the stream until ctx is done. It always returns
// ctx.Err() — every failure inside is handled by re-syncing.
func (c *Client) Run(ctx context.Context) error {
	for ctx.Err() == nil {
		if err := c.syncBase(ctx); err != nil {
			c.Stats.Connected.Store(0)
			c.backoff(ctx)
			continue
		}
		c.follow(ctx)
	}
	return ctx.Err()
}

// fetch GETs path, recording trainer version and connectivity. The caller
// owns the response body.
func (c *Client) fetch(ctx context.Context, path string) (*http.Response, error) {
	if err := faultinject.Hit(faultinject.PointReplicateRecv); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		c.Stats.Connected.Store(0)
		return nil, err
	}
	if v, perr := strconv.ParseUint(resp.Header.Get("X-Replicate-Version"), 10, 64); perr == nil {
		c.Stats.TrainerVersion.Store(v)
	}
	c.Stats.Connected.Store(1)
	return resp, nil
}

// syncBase fetches and installs a full base snapshot.
func (c *Client) syncBase(ctx context.Context) error {
	resp, err := c.fetch(ctx, "/replicate/base")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate: base fetch: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxMessageBytes))
	if err != nil {
		return err
	}
	base, _, err := ReadMessage(bytes.NewReader(body))
	if err == nil && base == nil {
		err = fmt.Errorf("replicate: base endpoint returned a non-base message")
	}
	if err != nil {
		c.Stats.Corrupt.Add(1)
		return err
	}
	if c.RequireQuantized != 0 && base.Parts.QBits != c.RequireQuantized {
		c.Stats.Corrupt.Add(1)
		return fmt.Errorf("replicate: base is int%d-quantized (0 = f32), replica requires int%d",
			base.Parts.QBits, c.RequireQuantized)
	}
	p, err := network.NewPredictorFromBase(base.Parts)
	if err != nil {
		c.Stats.Corrupt.Add(1)
		return err
	}
	// Admission validation: a poisoned base never reaches OnSwap — the
	// replica keeps whatever it serves and retries (with backoff) until the
	// trainer publishes a clean version.
	if err := p.CheckFinite(); err != nil {
		c.Stats.Quarantined.Add(1)
		return err
	}
	c.cur, c.version = p, base.Version
	c.Stats.Version.Store(base.Version)
	c.backoffReset()
	if c.OnSwap != nil {
		c.OnSwap(p, base.Version)
	}
	return nil
}

// follow long-polls the delta stream, applying until something forces a
// re-sync (it returns) or ctx ends.
func (c *Client) follow(ctx context.Context) {
	for ctx.Err() == nil {
		poll := c.PollTimeout
		if poll <= 0 {
			poll = 30 * time.Second
		}
		pctx, cancel := context.WithTimeout(ctx, poll)
		resync, err := c.pollOnce(pctx)
		cancel()
		if resync {
			c.Stats.Resyncs.Add(1)
			return
		}
		if err == nil {
			c.backoffReset()
		}
		if err != nil && ctx.Err() == nil {
			// Transient (timeout, connection refused): poll again after a
			// beat; the served version stays up the whole time.
			if pctx.Err() == nil {
				c.backoff(ctx)
			}
		}
	}
}

// pollOnce runs one delta long-poll. It reports whether the client must
// re-sync from a base (gap, corruption, config mismatch).
func (c *Client) pollOnce(ctx context.Context) (resync bool, err error) {
	resp, err := c.fetch(ctx, "/replicate/deltas?from="+strconv.FormatUint(c.version, 10))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		return false, nil
	case http.StatusGone:
		return true, nil
	default:
		return false, fmt.Errorf("replicate: delta fetch: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxMessageBytes))
	if err != nil {
		// Torn mid-body (trainer died, injected cut): treat as corruption —
		// the partial prefix may parse, but the stream is untrustworthy.
		c.Stats.Corrupt.Add(1)
		return true, err
	}
	r := bytes.NewReader(body)
	for {
		_, delta, err := ReadMessage(r)
		if err == io.EOF {
			return false, nil
		}
		if err != nil || delta == nil {
			c.Stats.Corrupt.Add(1)
			return true, err
		}
		if delta.FromVersion != c.version {
			// Contiguity break (e.g. replica at v5 handed v7→v8).
			return true, nil
		}
		if delta.ConfigCRC != c.cur.ConfigChecksum() {
			// Shape changed under us — the trainer restarted with a
			// different model. Only a fresh base can help.
			c.Stats.Corrupt.Add(1)
			return true, nil
		}
		p, err := c.cur.ApplyDelta(delta.Parts)
		if err != nil {
			// ApplyDelta validates the touched rows for NaN/Inf; a poisoned
			// delta is quarantined — same recovery as corruption (re-sync,
			// the served predictor never tears), counted apart.
			if errors.Is(err, network.ErrNonFinite) {
				c.Stats.Quarantined.Add(1)
			} else {
				c.Stats.Corrupt.Add(1)
			}
			return true, err
		}
		c.cur, c.version = p, delta.ToVersion
		c.Stats.Version.Store(delta.ToVersion)
		c.Stats.DeltasApplied.Add(1)
		if c.OnSwap != nil {
			c.OnSwap(p, delta.ToVersion)
		}
	}
}
