package replicate

import (
	"context"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/sparse"
)

// trainSrc is a tiny deterministic workload: random sparse vectors with a
// planted label, just enough structure to make training touch rows.
type trainSrc struct {
	rng     *rand.Rand
	dim, nc int
}

func newTrainSrc(dim, classes int, seed uint64) *trainSrc {
	return &trainSrc{rng: rand.New(rand.NewPCG(seed, 0xabcd)), dim: dim, nc: classes}
}

func (s *trainSrc) batch(n int) sparse.Batch {
	var b sparse.Builder
	for i := 0; i < n; i++ {
		c := s.rng.IntN(s.nc)
		idx := make([]int32, 0, 6)
		seen := map[int32]bool{}
		for len(idx) < 6 {
			j := int32(s.rng.IntN(s.dim))
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		vals := make([]float32, len(idx))
		for j := range vals {
			vals[j] = 1 + float32(s.rng.NormFloat64())*0.1
		}
		b.Add(idx, vals, []int32{int32(c)})
	}
	batch, err := b.CSR()
	if err != nil {
		panic(err)
	}
	return batch
}

func (s *trainSrc) probes(n int) []sparse.Vector {
	b := s.batch(n)
	out := make([]sparse.Vector, n)
	for i := range out {
		out[i] = b.Sample(i)
	}
	return out
}

func newTestNet(t *testing.T, seed uint64) *network.Network {
	t.Helper()
	cfg := network.Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		Hash: network.DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1,
		RebuildEvery: 7, Seed: seed,
	}
	n, err := network.New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableDeltaTracking()
	return n
}

// testCluster wires a hub into an httptest server plus a client with
// fast timeouts, and returns a swap channel carrying applied versions.
func testCluster(t *testing.T, hub *Hub) (*httptest.Server, *Client, chan uint64) {
	t.Helper()
	hub.pollWait = 100 * time.Millisecond
	mux := http.NewServeMux()
	hub.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	swaps := make(chan uint64, 256)
	c := &Client{
		BaseURL:       srv.URL,
		PollTimeout:   2 * time.Second,
		ResyncBackoff: 10 * time.Millisecond,
		OnSwap:        func(_ *network.Predictor, v uint64) { swaps <- v },
	}
	return srv, c, swaps
}

// waitVersion blocks until the swap channel delivers version v.
func waitVersion(t *testing.T, swaps chan uint64, v uint64) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case got := <-swaps:
			if got == v {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for version %d", v)
		}
	}
}

// expectIdentical asserts the replica's predictor answers exactly like the
// trainer's local snapshot on every probe.
func expectIdentical(t *testing.T, local, remote *network.Predictor, probes []sparse.Vector) {
	t.Helper()
	for i, x := range probes {
		lw, rw := local.Predict(x, 5), remote.Predict(x, 5)
		if len(lw) != len(rw) {
			t.Fatalf("probe %d: local %v, remote %v", i, lw, rw)
		}
		for j := range lw {
			if lw[j] != rw[j] {
				t.Fatalf("probe %d: predictions diverge: local %v, remote %v", i, lw, rw)
			}
		}
	}
}

// TestFollowBitIdentity: the full loop — base sync over HTTP, long-polled
// deltas, COW applies — converges every published version and the replica
// answers bit-identically at the end.
func TestFollowBitIdentity(t *testing.T) {
	n := newTestNet(t, 31)
	src := newTrainSrc(60, 20, 9)
	hub := NewHub()
	_, c, swaps := testCluster(t, hub)

	for i := 0; i < 3; i++ {
		n.TrainBatch(src.batch(32))
	}
	p, d := n.SnapshotDelta()
	if d != nil {
		t.Fatal("first snapshot should be a base")
	}
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()
	waitVersion(t, swaps, 1)

	var local *network.Predictor
	for round := 0; round < 4; round++ {
		for i := 0; i < 3; i++ {
			n.TrainBatch(src.batch(32))
		}
		var d *network.Delta
		local, d = n.SnapshotDelta()
		if d == nil {
			t.Fatal("expected a delta")
		}
		if err := hub.Publish(local, d); err != nil {
			t.Fatal(err)
		}
	}
	waitVersion(t, swaps, 5)
	expectIdentical(t, local, c.cur, src.probes(30))
	if got := c.Stats.DeltasApplied.Load(); got != 4 {
		t.Errorf("deltas applied = %d, want 4", got)
	}
	if got := c.Stats.Resyncs.Load(); got != 0 {
		t.Errorf("resyncs = %d, want 0", got)
	}
	cancel()
	<-done
}

// TestRingGapResync: a replica that falls behind the hub's replay ring is
// answered 410 Gone and re-syncs from a fresh base, landing on the current
// version.
func TestRingGapResync(t *testing.T) {
	n := newTestNet(t, 5)
	src := newTrainSrc(60, 20, 3)
	hub := NewHub()
	hub.ringCap = 2
	_, c, _ := testCluster(t, hub)

	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	if c.version != 1 {
		t.Fatalf("synced version %d, want 1", c.version)
	}

	// Four more versions while the replica is away; the ring only holds the
	// last two, so from=1 is out of reach.
	var local *network.Predictor
	for i := 0; i < 4; i++ {
		n.TrainBatch(src.batch(32))
		var d *network.Delta
		local, d = n.SnapshotDelta()
		if err := hub.Publish(local, d); err != nil {
			t.Fatal(err)
		}
	}
	resync, _ := c.pollOnce(ctx)
	if !resync {
		t.Fatal("a gapped replica must be told to re-sync")
	}
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	if c.version != 5 {
		t.Fatalf("re-synced to version %d, want 5", c.version)
	}
	expectIdentical(t, local, c.cur, src.probes(30))
}

// TestFutureVersionGoneResync: a replica claiming a version the hub has
// never published (trainer restarted) gets 410 and re-syncs.
func TestFutureVersionGoneResync(t *testing.T) {
	n := newTestNet(t, 5)
	src := newTrainSrc(60, 20, 3)
	hub := NewHub()
	_, c, _ := testCluster(t, hub)

	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	c.version = 40 // pretend we followed a previous trainer incarnation
	resync, _ := c.pollOnce(ctx)
	if !resync {
		t.Fatal("a future-version replica must be told to re-sync")
	}
}

// TestChaosCutMidDeltaResync: tearing a delta response mid-body (trainer
// dies mid-send) is detected, never applied, and healed by a base re-sync;
// the replica still converges bit-identically.
func TestChaosCutMidDeltaResync(t *testing.T) {
	plan, err := faultinject.Parse("replicate.send@2=cut:40", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	runChaosConvergence(t, 1)
	if len(plan.Fired()) == 0 {
		t.Fatal("chaos rule never fired")
	}
}

// TestChaosFlipCorruptChecksumResync: a silently flipped byte in a delta
// trips the section CRC, is rejected without tearing the served model, and
// heals through re-sync.
func TestChaosFlipCorruptChecksumResync(t *testing.T) {
	plan, err := faultinject.Parse("replicate.send@2=flip:30", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	runChaosConvergence(t, 1)
	if len(plan.Fired()) == 0 {
		t.Fatal("chaos rule never fired")
	}
}

// TestChaosRecvErrReconnect: a failed fetch marks the stream disconnected,
// then the next attempt reconnects and the replica converges.
func TestChaosRecvErrReconnect(t *testing.T) {
	plan, err := faultinject.Parse("replicate.recv@2=err", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	t.Cleanup(faultinject.Disarm)

	runChaosConvergence(t, 0)
	if len(plan.Fired()) == 0 {
		t.Fatal("chaos rule never fired")
	}
}

// runChaosConvergence drives the standard scenario under an armed chaos
// plan: base publish, client follows, two deltas land, and despite the
// injected fault the replica must converge to the final version with
// bit-identical predictions. minCorrupt asserts the fault was detected as
// corruption (0 for connection-level faults).
func runChaosConvergence(t *testing.T, minCorrupt uint64) {
	t.Helper()
	n := newTestNet(t, 17)
	src := newTrainSrc(60, 20, 23)
	hub := NewHub()
	_, c, swaps := testCluster(t, hub)

	n.TrainBatch(src.batch(32))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()
	waitVersion(t, swaps, 1)

	var local *network.Predictor
	for i := 0; i < 2; i++ {
		n.TrainBatch(src.batch(32))
		var d *network.Delta
		local, d = n.SnapshotDelta()
		if err := hub.Publish(local, d); err != nil {
			t.Fatal(err)
		}
	}
	waitVersion(t, swaps, 3)
	expectIdentical(t, local, c.cur, src.probes(30))
	if got := c.Stats.Corrupt.Load(); got < minCorrupt {
		t.Errorf("corrupt count = %d, want >= %d", got, minCorrupt)
	}
	cancel()
	<-done
}

// TestConfigChecksumMismatchResync: a delta whose config checksum does not
// match the replica's model (trainer restarted with a different shape) is
// rejected and forces a base re-sync rather than a torn apply.
func TestConfigChecksumMismatchResync(t *testing.T) {
	src := newTrainSrc(60, 20, 3)

	// Trainer A: the shape the replica first syncs.
	nA := newTestNet(t, 5)
	hubA := NewHub()
	_, c, _ := testCluster(t, hubA)
	nA.TrainBatch(src.batch(32))
	pA, _ := nA.SnapshotDelta()
	if err := hubA.Publish(pA, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}

	// Trainer B: same URL role, different hidden width — one base (v1, same
	// version number the replica holds) plus one delta (v1→v2).
	cfgB := network.Config{
		InputDim: 60, HiddenDim: 24, OutputDim: 20,
		Hash: network.DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1, RebuildEvery: 50, Seed: 6,
	}
	nB, err := network.New(&cfgB)
	if err != nil {
		t.Fatal(err)
	}
	nB.EnableDeltaTracking()
	nB.TrainBatch(src.batch(32))
	pB, _ := nB.SnapshotDelta()
	hubB := NewHub()
	hubB.pollWait = 100 * time.Millisecond
	if err := hubB.Publish(pB, nil); err != nil {
		t.Fatal(err)
	}
	nB.TrainBatch(src.batch(32))
	pB2, dB := nB.SnapshotDelta()
	if err := hubB.Publish(pB2, dB); err != nil {
		t.Fatal(err)
	}
	muxB := http.NewServeMux()
	hubB.Register(muxB)
	srvB := httptest.NewServer(muxB)
	defer srvB.Close()

	c.BaseURL = srvB.URL
	resync, _ := c.pollOnce(ctx)
	if !resync {
		t.Fatal("config-mismatched delta must force a re-sync")
	}
	if got := c.Stats.Corrupt.Load(); got == 0 {
		t.Error("config mismatch should count as corruption")
	}
	if c.cur.ConfigChecksum() != pA.ConfigChecksum() {
		t.Error("rejected delta must not touch the served predictor")
	}
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	if c.cur.ConfigChecksum() != pB.ConfigChecksum() {
		t.Error("re-sync should install the new trainer's model")
	}
}

// TestHubStatusRing: the status endpoint reports version and ring shape.
func TestHubStatusRing(t *testing.T) {
	n := newTestNet(t, 5)
	src := newTrainSrc(60, 20, 3)
	hub := NewHub()
	hub.ringCap = 2
	n.TrainBatch(src.batch(16))
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		n.TrainBatch(src.batch(16))
		p, d := n.SnapshotDelta()
		if err := hub.Publish(p, d); err != nil {
			t.Fatal(err)
		}
	}
	if hub.Version() != 4 {
		t.Fatalf("version %d, want 4", hub.Version())
	}
	if len(hub.ring) != 2 || hub.ring[0].from != 2 {
		t.Fatalf("ring should hold the last 2 deltas from v2, got len %d from %d",
			len(hub.ring), hub.ring[0].from)
	}
	if _, err := hub.deltasSince(1); err != errGone {
		t.Fatalf("deltasSince(1) = %v, want errGone", err)
	}
	got, err := hub.deltasSince(2)
	if err != nil || len(got) != 2 {
		t.Fatalf("deltasSince(2) = %d msgs, %v; want 2, nil", len(got), err)
	}
}
