package replicate

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
)

// defaultRingCap bounds how many encoded deltas the hub retains. A replica
// further behind than the ring reaches gets 410 Gone and re-syncs from a
// base — bounded trainer memory, unbounded replica lag tolerance.
const defaultRingCap = 64

// defaultPollWait caps how long a delta long-poll parks before answering
// 204 No Content (clients just poll again).
const defaultPollWait = 25 * time.Second

// encDelta is one encoded delta message held in the replay ring.
type encDelta struct {
	from, to uint64
	data     []byte
}

// Hub is the trainer-side replication endpoint. The training loop calls
// Publish after each snapshot; replicas fetch bases and long-poll deltas
// over the HTTP handlers Register installs. Publish must be called from
// the training goroutine (it serializes views, same contract as
// Snapshot); the HTTP side is safe for unbounded concurrency.
type Hub struct {
	ringCap  int
	pollWait time.Duration

	// qbits, when nonzero, quantizes the stream at publish: bases and
	// deltas ship int8 (or int4) output sections, so every replica holds
	// and serves the packed representation. Set before the first Publish.
	qbits int

	mu          sync.Mutex
	version     uint64             // replication version of the newest snapshot
	cur         *network.Predictor // newest snapshot, for base re-encodes
	base        []byte             // cached encoded base message
	baseVer     uint64             // version base encodes (0 = no cache)
	ring        []encDelta         // contiguous deltas ending at version
	wake        chan struct{}      // closed and replaced on every Publish
	quarantined uint64             // snapshots refused at admission (non-finite)
}

// NewHub returns an empty hub; it serves errors until the first Publish.
func NewHub() *Hub {
	return &Hub{ringCap: defaultRingCap, pollWait: defaultPollWait, wake: make(chan struct{})}
}

// SetQuantize switches the hub to a quantized replication stream: every
// subsequently encoded base and delta carries the output layer packed to
// bits (8 or 4) on wire v2, quantized at publish from the trainer's f32
// snapshots. Call once, before the first Publish; bits 0 keeps the
// full-precision stream.
func (h *Hub) SetQuantize(bits int) error {
	if bits != 0 && bits != 4 && bits != 8 {
		return fmt.Errorf("replicate: quantize bits must be 0, 4, or 8 (got %d)", bits)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.version != 0 {
		return fmt.Errorf("replicate: SetQuantize must precede the first Publish")
	}
	h.qbits = bits
	return nil
}

// Publish makes (p, d) the newest replicated snapshot. A nil delta
// publishes p as a fresh base (first snapshot, or tracking disabled) and
// clears the delta ring — followers see a gap and re-sync. With a delta,
// the hub encodes it immediately (the delta references immutable snapshot
// views, but encoding now keeps memory bounded to the encoded bytes) and
// appends it to the replay ring.
//
// Admission validation: the candidate is scanned for NaN/Inf before any
// state changes — exact on the delta's touched rows, sampled on a full
// base. A poisoned snapshot is refused with an error wrapping
// network.ErrNonFinite, the version does not advance, and followers keep
// replicating the last good version.
func (h *Hub) Publish(p *network.Predictor, d *network.Delta) error {
	var verr error
	if d != nil {
		verr = d.CheckFinite()
	} else if p != nil {
		verr = p.CheckFinite()
	}
	if verr != nil {
		h.mu.Lock()
		h.quarantined++
		h.mu.Unlock()
		return fmt.Errorf("replicate: quarantined: %w", verr)
	}
	var enc []byte
	var err error
	h.mu.Lock()
	from, to, qbits := h.version, h.version+1, h.qbits
	h.mu.Unlock()
	if d != nil {
		// Encode outside the lock: serving-path handlers must not wait on
		// snapshot serialization. On a quantized stream the touched rows are
		// packed here, on the fly — O(touched), never O(model).
		if qbits != 0 {
			enc, err = EncodeDeltaQ(d, from, to, qbits)
		} else {
			enc, err = EncodeDelta(d, from, to)
		}
		if err != nil {
			return err
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.version = to
	h.cur = p
	h.base, h.baseVer = nil, 0 // stale; re-encoded on demand
	if d == nil {
		h.ring = nil
	} else {
		h.ring = append(h.ring, encDelta{from: from, to: to, data: enc})
		if len(h.ring) > h.ringCap {
			h.ring = h.ring[len(h.ring)-h.ringCap:]
		}
	}
	close(h.wake)
	h.wake = make(chan struct{})
	return nil
}

// Version returns the replication version of the newest published
// snapshot (0 before the first Publish).
func (h *Hub) Version() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.version
}

// encodedBase returns the cached encoded base message for the newest
// snapshot, encoding it if the cache is stale.
func (h *Hub) encodedBase() ([]byte, uint64, error) {
	h.mu.Lock()
	cur, ver, qbits := h.cur, h.version, h.qbits
	if h.baseVer == ver && h.base != nil {
		b := h.base
		h.mu.Unlock()
		return b, ver, nil
	}
	h.mu.Unlock()
	if cur == nil {
		return nil, 0, fmt.Errorf("replicate: nothing published yet")
	}
	var enc []byte
	var err error
	if qbits != 0 {
		enc, err = EncodeBaseQ(cur, ver, qbits)
	} else {
		enc, err = EncodeBase(cur, ver)
	}
	if err != nil {
		return nil, 0, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// Another goroutine may have encoded (or Publish advanced) meanwhile;
	// only cache when still current.
	if h.version == ver {
		h.base, h.baseVer = enc, ver
	}
	return enc, ver, nil
}

// errGone signals the requested version predates the replay ring.
var errGone = fmt.Errorf("replicate: version no longer in delta ring")

// deltasSince returns the encoded deltas moving version from → current,
// concatenation-ready, or (nil, nil) when from is already current, or
// errGone when the ring no longer reaches back to from.
func (h *Hub) deltasSince(from uint64) ([][]byte, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from >= h.version {
		if from > h.version {
			return nil, errGone // replica claims a future version: trainer restarted
		}
		return nil, nil
	}
	if len(h.ring) == 0 || h.ring[0].from > from {
		return nil, errGone
	}
	var out [][]byte
	for _, e := range h.ring {
		if e.from >= from {
			out = append(out, e.data)
		}
	}
	return out, nil
}

// waitBeyond parks until the hub's version exceeds after, the wait
// budget elapses, or ctx is done. Reports whether the version advanced.
func (h *Hub) waitBeyond(ctx context.Context, after uint64, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		h.mu.Lock()
		if h.version > after {
			h.mu.Unlock()
			return true
		}
		wake := h.wake
		h.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
			t.Stop()
		case <-t.C:
			return false
		case <-ctx.Done():
			t.Stop()
			return false
		}
	}
}

// Register installs the replication endpoints on mux:
//
//	GET /replicate/base          full base snapshot (X-Replicate-Version)
//	GET /replicate/deltas?from=V long-poll; deltas after V, 204 on
//	                             timeout, 410 Gone when V left the ring
//	GET /replicate/status        JSON version/step/ring observability
func (h *Hub) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /replicate/base", h.handleBase)
	mux.HandleFunc("GET /replicate/deltas", h.handleDeltas)
	mux.HandleFunc("GET /replicate/status", h.handleStatus)
}

func (h *Hub) handleBase(w http.ResponseWriter, r *http.Request) {
	enc, ver, err := h.encodedBase()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Replicate-Version", strconv.FormatUint(ver, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	// The chaos point: cut rules tear the body mid-message, flip rules
	// corrupt a byte in flight. The hub's copy stays pristine.
	faultinject.Writer(faultinject.PointReplicateSend, w).Write(enc)
}

func (h *Hub) handleDeltas(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "replicate: bad or missing from parameter", http.StatusBadRequest)
		return
	}
	deltas, derr := h.deltasSince(from)
	if derr == nil && deltas == nil {
		// Caught up: park until something newer is published.
		if h.waitBeyond(r.Context(), from, h.pollWait) {
			deltas, derr = h.deltasSince(from)
		}
	}
	ver := h.Version()
	w.Header().Set("X-Replicate-Version", strconv.FormatUint(ver, 10))
	if derr != nil {
		http.Error(w, derr.Error(), http.StatusGone)
		return
	}
	if deltas == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	total := 0
	for _, d := range deltas {
		total += len(d)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(total))
	out := faultinject.Writer(faultinject.PointReplicateSend, w)
	for _, d := range deltas {
		if _, err := out.Write(d); err != nil {
			return // client gone or injected tear — nothing to clean up
		}
	}
}

func (h *Hub) handleStatus(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	st := struct {
		Version     uint64 `json:"version"`
		Step        int64  `json:"step"`
		RingLen     int    `json:"ring_len"`
		RingFrom    uint64 `json:"ring_from"`
		BaseBytes   int    `json:"base_bytes"`
		Quarantined uint64 `json:"quarantined"`
		QBits       int    `json:"qbits,omitempty"`
	}{Version: h.version, RingLen: len(h.ring), BaseBytes: len(h.base),
		Quarantined: h.quarantined, QBits: h.qbits}
	if h.cur != nil {
		st.Step = h.cur.Steps()
	}
	if len(h.ring) > 0 {
		st.RingFrom = h.ring[0].from
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
