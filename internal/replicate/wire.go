// Package replicate streams sparse model snapshots from a trainer to a
// fleet of serving replicas. The trainer side (Hub) publishes each
// snapshot as either a full base or a sparse delta against the previous
// version — SLIDE's LSH-sampled training touches only the active-set rows
// per step, so steady-state deltas move a small fraction of the model.
// The replica side (Client) bootstraps from a base, follows the delta
// stream by long-polling, applies each delta copy-on-write, and lands
// bit-identical to a trainer-local snapshot at the same version. Any gap,
// checksum failure, or parse error tears nothing: the replica keeps
// serving its current version and re-syncs from a fresh base.
//
// The wire format reuses the checkpoint-v3 section framing
// (network.SectionWriter/SectionReader): every payload is length-bounded
// before allocation and CRC32C-verified before parsing, and damage
// surfaces as the same typed *network.CorruptError checkpoints produce.
package replicate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/slide-cpu/slide/internal/network"
)

// Wire constants. A message is a fixed 12-byte header — magic, wire
// version, message kind — followed by framed sections:
//
//	[magic u32 "SLDR"][wireVersion u32][kind u32]
//	section envelope   (fixed-width ids: versions, steps, flags, config CRC)
//	section config     (base only — the checkpoint config payload)
//	section hidden     (base: full view; delta: touched columns + bias)
//	section middle     (dense middle stack, whole either way)
//	section output     (base: full view; delta: touched rows + biases)
//	section tables     (present iff the envelope's hasTables flag is set)
//
// Wire v2 (quantized streams) appends one u64 — qbits — to the envelope
// (base: 40 bytes, delta: 56) and carries the output section in the packed
// quant codec at that width. Everything else is identical; readers accept
// both versions, and f32 streams keep emitting v1 bytes unchanged.
const (
	wireMagic   = 0x534C4452 // "SLDR"
	wireV1      = 1          // f32/BF16 output sections
	wireV2      = 2          // quantized output sections (envelope carries qbits)

	kindBase  = 1
	kindDelta = 2

	secEnvelope = 1
	secConfig   = 2
	secHidden   = 3
	secMiddle   = 4
	secOutput   = 5
	secTables   = 6
)

var sectionNames = map[uint32]string{
	secEnvelope: "envelope",
	secConfig:   "config",
	secHidden:   "hidden",
	secMiddle:   "middle",
	secOutput:   "output",
	secTables:   "tables",
}

// Base is one decoded full-snapshot message.
type Base struct {
	// Version is the hub's replication version of this snapshot.
	Version uint64
	// Step is the trainer's optimizer step count at snapshot time.
	Step int64
	// ConfigCRC fingerprints the model shape (network.ConfigChecksum).
	ConfigCRC uint32
	// Parts holds the CRC-verified payloads for network.NewPredictorFromBase.
	Parts network.BaseParts
}

// Delta is one decoded sparse-delta message.
type Delta struct {
	// FromVersion/ToVersion are the hub replication versions the delta
	// connects; a replica at FromVersion lands exactly at ToVersion.
	FromVersion, ToVersion uint64
	// ConfigCRC must match the replica's predictor fingerprint — a
	// mismatch means the trainer restarted with a different shape.
	ConfigCRC uint32
	// Parts holds the CRC-verified payloads for Predictor.ApplyDelta.
	Parts network.DeltaParts
}

// EncodeBase serializes a full snapshot of p at the given replication
// version into one wire message (v1: the output ships at the predictor's
// training precision).
func EncodeBase(p *network.Predictor, version uint64) ([]byte, error) {
	return encodeBase(p, version, 0)
}

// EncodeBaseQ serializes a base with the output section quantized to qbits
// (8 or 4), emitting a v2 message. An already-quantized predictor at the
// same width streams its packed rows directly; an f32 predictor is
// quantized at encode time (and left unmodified).
func EncodeBaseQ(p *network.Predictor, version uint64, qbits int) ([]byte, error) {
	return encodeBase(p, version, qbits)
}

func encodeBase(p *network.Predictor, version uint64, qbits int) ([]byte, error) {
	var buf bytes.Buffer
	writeHeader(&buf, kindBase, qbits)
	sw := network.NewSectionWriter(&buf)
	sw.Section(secEnvelope, "envelope", func(w io.Writer) error {
		env := []uint64{
			version, uint64(p.Steps()), boolU64(p.HasTables()), uint64(p.ConfigChecksum()),
		}
		if qbits != 0 {
			env = append(env, uint64(qbits))
		}
		return binary.Write(w, binary.LittleEndian, env)
	})
	sw.Section(secConfig, "config", p.WriteBaseConfig)
	sw.Section(secHidden, "hidden", p.WriteHidden)
	sw.Section(secMiddle, "middle", p.WriteMiddle)
	if qbits != 0 {
		sw.Section(secOutput, "output", func(w io.Writer) error { return p.WriteOutputQ(w, qbits) })
	} else {
		sw.Section(secOutput, "output", p.WriteOutput)
	}
	if p.HasTables() {
		sw.Section(secTables, "tables", p.WriteTables)
	}
	if err := sw.Err(); err != nil {
		return nil, fmt.Errorf("replicate: encoding base v%d: %w", version, err)
	}
	return buf.Bytes(), nil
}

// EncodeDelta serializes d as the wire message moving fromVersion to
// toVersion (v1: f32 output rows).
func EncodeDelta(d *network.Delta, fromVersion, toVersion uint64) ([]byte, error) {
	return encodeDelta(d, fromVersion, toVersion, 0)
}

// EncodeDeltaQ serializes d with the touched output rows quantized to qbits
// on the fly (v2). Publish cost stays O(touched rows).
func EncodeDeltaQ(d *network.Delta, fromVersion, toVersion uint64, qbits int) ([]byte, error) {
	return encodeDelta(d, fromVersion, toVersion, qbits)
}

func encodeDelta(d *network.Delta, fromVersion, toVersion uint64, qbits int) ([]byte, error) {
	var buf bytes.Buffer
	writeHeader(&buf, kindDelta, qbits)
	sw := network.NewSectionWriter(&buf)
	sw.Section(secEnvelope, "envelope", func(w io.Writer) error {
		env := []uint64{
			fromVersion, toVersion, uint64(d.FromStep), uint64(d.ToStep),
			boolU64(d.TablesChanged), uint64(d.ConfigChecksum()),
		}
		if qbits != 0 {
			env = append(env, uint64(qbits))
		}
		return binary.Write(w, binary.LittleEndian, env)
	})
	sw.Section(secHidden, "hidden", d.WriteHidden)
	sw.Section(secMiddle, "middle", d.WriteMiddle)
	if qbits != 0 {
		sw.Section(secOutput, "output", func(w io.Writer) error { return d.WriteOutputQ(w, qbits) })
	} else {
		sw.Section(secOutput, "output", d.WriteOutput)
	}
	if d.TablesChanged {
		sw.Section(secTables, "tables", d.WriteTables)
	}
	if err := sw.Err(); err != nil {
		return nil, fmt.Errorf("replicate: encoding delta v%d->v%d: %w", fromVersion, toVersion, err)
	}
	return buf.Bytes(), nil
}

func writeHeader(buf *bytes.Buffer, kind uint32, qbits int) {
	ver := uint32(wireV1)
	if qbits != 0 {
		ver = wireV2
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], wireMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], ver)
	binary.LittleEndian.PutUint32(hdr[8:12], kind)
	buf.Write(hdr[:])
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ReadMessage decodes the next message from r. Exactly one of the returns
// is non-nil on success; a clean end of stream returns (nil, nil, io.EOF).
// Any other failure — bad magic, truncation, CRC mismatch, malformed
// envelope — is an error the caller should treat as stream corruption.
func ReadMessage(r io.Reader) (*Base, *Delta, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, nil, io.EOF
		}
		return nil, nil, fmt.Errorf("replicate: truncated message header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:4]); m != wireMagic {
		return nil, nil, fmt.Errorf("replicate: bad magic %#x", m)
	}
	wv := binary.LittleEndian.Uint32(hdr[4:8])
	if wv != wireV1 && wv != wireV2 {
		return nil, nil, fmt.Errorf("replicate: unsupported wire version %d", wv)
	}
	kind := binary.LittleEndian.Uint32(hdr[8:12])
	sr := network.NewSectionReader(r, int64(len(hdr)))
	next := func(id uint32) ([]byte, error) {
		payload, _, err := sr.Next(id, sectionNames[id])
		return payload, err
	}
	switch kind {
	case kindBase:
		return readBase(next, wv)
	case kindDelta:
		return readDelta(next, wv)
	default:
		return nil, nil, fmt.Errorf("replicate: unknown message kind %d", kind)
	}
}

// envQBits validates and extracts the v2 qbits field appended at env[at:].
func envQBits(env []byte, at int) (int, error) {
	q := binary.LittleEndian.Uint64(env[at : at+8])
	if q != 4 && q != 8 {
		return 0, fmt.Errorf("replicate: envelope declares qbits %d, want 4 or 8", q)
	}
	return int(q), nil
}

func readBase(next func(uint32) ([]byte, error), wv uint32) (*Base, *Delta, error) {
	env, err := next(secEnvelope)
	if err != nil {
		return nil, nil, err
	}
	want := 32
	if wv == wireV2 {
		want = 40
	}
	if len(env) != want {
		return nil, nil, fmt.Errorf("replicate: base envelope is %d bytes, want %d", len(env), want)
	}
	b := &Base{
		Version:   binary.LittleEndian.Uint64(env[0:8]),
		Step:      int64(binary.LittleEndian.Uint64(env[8:16])),
		ConfigCRC: uint32(binary.LittleEndian.Uint64(env[24:32])),
	}
	if wv == wireV2 {
		if b.Parts.QBits, err = envQBits(env, 32); err != nil {
			return nil, nil, err
		}
	}
	hasTables := binary.LittleEndian.Uint64(env[16:24]) != 0
	if b.Parts.Config, err = next(secConfig); err != nil {
		return nil, nil, err
	}
	if b.Parts.Hidden, err = next(secHidden); err != nil {
		return nil, nil, err
	}
	if b.Parts.Middle, err = next(secMiddle); err != nil {
		return nil, nil, err
	}
	if b.Parts.Output, err = next(secOutput); err != nil {
		return nil, nil, err
	}
	if hasTables {
		if b.Parts.Tables, err = next(secTables); err != nil {
			return nil, nil, err
		}
	}
	return b, nil, nil
}

func readDelta(next func(uint32) ([]byte, error), wv uint32) (*Base, *Delta, error) {
	env, err := next(secEnvelope)
	if err != nil {
		return nil, nil, err
	}
	want := 48
	if wv == wireV2 {
		want = 56
	}
	if len(env) != want {
		return nil, nil, fmt.Errorf("replicate: delta envelope is %d bytes, want %d", len(env), want)
	}
	d := &Delta{
		FromVersion: binary.LittleEndian.Uint64(env[0:8]),
		ToVersion:   binary.LittleEndian.Uint64(env[8:16]),
		ConfigCRC:   uint32(binary.LittleEndian.Uint64(env[40:48])),
	}
	if wv == wireV2 {
		if d.Parts.QBits, err = envQBits(env, 48); err != nil {
			return nil, nil, err
		}
	}
	d.Parts.FromStep = int64(binary.LittleEndian.Uint64(env[16:24]))
	d.Parts.ToStep = int64(binary.LittleEndian.Uint64(env[24:32]))
	hasTables := binary.LittleEndian.Uint64(env[32:40]) != 0
	if d.Parts.Hidden, err = next(secHidden); err != nil {
		return nil, nil, err
	}
	if d.Parts.Middle, err = next(secMiddle); err != nil {
		return nil, nil, err
	}
	if d.Parts.Output, err = next(secOutput); err != nil {
		return nil, nil, err
	}
	if hasTables {
		if d.Parts.Tables, err = next(secTables); err != nil {
			return nil, nil, err
		}
	}
	return nil, d, nil
}
