package replicate

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// backoffSchedule drives n consecutive failed-sync pauses through a fresh
// client (under a canceled context, so no real sleeping happens) and
// returns the BackoffMS gauge after each — the exact schedule a replica
// would wait out.
func backoffSchedule(seed uint64, n int) []uint64 {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{
		ResyncBackoff:    100 * time.Millisecond,
		MaxResyncBackoff: time.Second,
		JitterSeed:       seed,
	}
	out := make([]uint64, n)
	for i := range out {
		c.backoff(ctx)
		out[i] = c.Stats.BackoffMS.Load()
	}
	return out
}

// TestResyncBackoffDeterministicSchedule: the re-sync backoff doubles per
// consecutive failure up to the cap, its jitter is a pure function of
// (seed, attempt) — same seed, same schedule; different seeds diverge — and
// a healthy sync resets the exponent.
func TestResyncBackoffDeterministicSchedule(t *testing.T) {
	const rounds = 8
	a := backoffSchedule(42, rounds)
	if b := backoffSchedule(42, rounds); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if c := backoffSchedule(43, rounds); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced the identical schedule %v", a)
	}
	for i, ms := range a {
		// base << i capped at 1000ms, plus jitter in [0, d/4).
		if ms < 100 || ms > 1250 {
			t.Fatalf("pause %d = %dms outside [100, 1250]", i, ms)
		}
	}
	if a[rounds-1] < 1000 {
		t.Fatalf("final pause %dms never reached the cap region", a[rounds-1])
	}
	for i := 1; i < 4; i++ {
		// Early doublings dominate jitter: each pre-cap pause grows.
		if a[i] <= a[i-1]/2 {
			t.Fatalf("pause %d = %dms did not grow from %dms", i, a[i], a[i-1])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{ResyncBackoff: 100 * time.Millisecond, JitterSeed: 42}
	c.backoff(ctx)
	c.backoff(ctx)
	if c.failures != 2 {
		t.Fatalf("failures = %d, want 2", c.failures)
	}
	c.backoffReset()
	if c.failures != 0 || c.Stats.BackoffMS.Load() != 0 {
		t.Fatalf("reset left failures=%d backoff=%dms", c.failures, c.Stats.BackoffMS.Load())
	}
}
