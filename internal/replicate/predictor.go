package replicate

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/serving"
	"github.com/slide-cpu/slide/internal/sparse"
	"github.com/slide-cpu/slide/slide"
)

var _ serving.Predictor = (*Served)(nil)

// Served adapts a replicated network.Predictor to the serving.Predictor
// interface, carrying the hub replication version in place of the local
// process-wide snapshot counter — across a cluster, version equality
// means weight equality.
type Served struct {
	p       *network.Predictor
	version uint64
}

// NewServed wraps a replicated predictor at the given hub version.
func NewServed(p *network.Predictor, version uint64) *Served {
	return &Served{p: p, version: version}
}

// Version returns the hub replication version of the applied snapshot.
func (s *Served) Version() uint64 { return s.version }

// Steps returns the trainer's optimizer step count at snapshot time.
func (s *Served) Steps() int64 { return s.p.Steps() }

// NumLabels returns the label-space size.
func (s *Served) NumLabels() int { return s.p.Config().OutputDim }

// NumFeatures bounds valid feature indices.
func (s *Served) NumFeatures() int { return s.p.Config().InputDim }

// Sampled reports whether LSH-sampled inference is available.
func (s *Served) Sampled() bool { return s.p.Sampled() }

// CheckFinite scans the snapshot's weights for NaN/Inf — the serving-side
// quarantine hook, same contract as slide.Predictor.CheckFinite.
func (s *Served) CheckFinite() error { return s.p.CheckFinite() }

// SnapshotPrecision names the output-layer storage the replica serves from
// (f32|bf16|int8|int4) — int8/int4 on a quantized stream. Surfaced on the
// replica's /stats.
func (s *Served) SnapshotPrecision() string { return s.p.PrecisionName() }

// PackedBytes is the serialized size of the output-layer representation.
func (s *Served) PackedBytes() int64 { return s.p.PackedBytes() }

// Predict is single-sample exact top-k.
func (s *Served) Predict(indices []int32, values []float32, k int) []int32 {
	return s.p.Predict(sparse.Vector{Indices: indices, Values: values}, k)
}

// PredictSampled is sub-linear LSH inference.
func (s *Served) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	return s.p.PredictSampled(sparse.Vector{Indices: indices, Values: values}, k)
}

// PredictBatch is the single-caller data-parallel uniform-k path.
func (s *Served) PredictBatch(samples []slide.Sample, k int) ([][]int32, error) {
	xs := make([]sparse.Vector, len(samples))
	for i, smp := range samples {
		if len(smp.Indices) != len(smp.Values) {
			return nil, fmt.Errorf("replicate: sample %d has %d indices but %d values",
				i, len(smp.Indices), len(smp.Values))
		}
		xs[i] = sparse.Vector{Indices: smp.Indices, Values: smp.Values}
	}
	return s.p.PredictBatch(xs, k), nil
}

// PredictEntries runs coalesced exact top-k with per-entry k — same
// validation and fused walk as slide.Predictor.PredictEntries, so a
// replica's responses are bit-identical to the trainer's at the same
// version.
func (s *Served) PredictEntries(entries []slide.BatchEntry) ([][]int32, error) {
	xs := make([]sparse.Vector, len(entries))
	ks := make([]int, len(entries))
	for i, e := range entries {
		if len(e.Indices) != len(e.Values) {
			return nil, fmt.Errorf("replicate: entry %d has %d indices but %d values",
				i, len(e.Indices), len(e.Values))
		}
		if e.K <= 0 {
			return nil, fmt.Errorf("replicate: entry %d has non-positive k %d", i, e.K)
		}
		xs[i] = sparse.Vector{Indices: e.Indices, Values: e.Values}
		ks[i] = e.K
	}
	return s.p.PredictBatchK(xs, ks), nil
}
