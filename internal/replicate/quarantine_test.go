package replicate

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/network"
)

// poisonNet arms the train.batch nan action for the next batch, trains it
// (planting NaN in the hidden bias, which then propagates into every
// touched row's update), and disarms.
func poisonNet(t *testing.T, n *network.Network, src *trainSrc) {
	t.Helper()
	plan, err := faultinject.Parse("train.batch@1=nan:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(plan)
	defer faultinject.Disarm()
	n.TrainBatch(src.batch(32))
}

// TestHubQuarantinesPoisonedSnapshot: a poisoned candidate never becomes a
// replicated version — Publish refuses it, the version does not advance,
// and a following replica keeps serving the last good version untouched.
func TestHubQuarantinesPoisonedSnapshot(t *testing.T) {
	n := newTestNet(t, 31)
	src := newTrainSrc(60, 20, 9)
	hub := NewHub()
	_, c, swaps := testCluster(t, hub)

	for i := 0; i < 3; i++ {
		n.TrainBatch(src.batch(32))
	}
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	probes := src.probes(30)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); c.Run(ctx) }()
	waitVersion(t, swaps, 1)
	goodVersion := c.Stats.Version.Load()

	// Poison the trainer and try to publish: both the delta path and the
	// fresh-base path must be refused at admission.
	poisonNet(t, n, src)
	pp, d := n.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta after training")
	}
	if err := hub.Publish(pp, d); !errors.Is(err, network.ErrNonFinite) {
		t.Fatalf("poisoned delta publish err = %v, want ErrNonFinite", err)
	}
	if err := hub.Publish(pp, nil); !errors.Is(err, network.ErrNonFinite) {
		t.Fatalf("poisoned base publish err = %v, want ErrNonFinite", err)
	}
	if got := hub.Version(); got != 1 {
		t.Fatalf("hub version advanced to %d past a quarantined snapshot", got)
	}
	hub.mu.Lock()
	q := hub.quarantined
	hub.mu.Unlock()
	if q != 2 {
		t.Fatalf("hub quarantined = %d, want 2", q)
	}

	// The replica never saw the poisoned version and still answers on the
	// last good one, finite everywhere.
	if got := c.Stats.Version.Load(); got != goodVersion {
		t.Fatalf("replica moved to version %d during quarantine", got)
	}
	if err := c.cur.CheckFinite(); err != nil {
		t.Fatalf("replica serves non-finite weights: %v", err)
	}
	if got := c.Stats.Quarantined.Load(); got != 0 {
		t.Fatalf("replica quarantined %d messages; the hub should have", got)
	}
	for _, x := range probes {
		if got := c.cur.Predict(x, 5); len(got) == 0 {
			t.Fatal("replica stopped answering during quarantine")
		}
	}
	cancel()
	<-done
}

// TestReplicaQuarantinesPoisonedDelta: defense in depth — a poisoned delta
// that reaches a replica anyway (here: hand-encoded, bypassing the hub's
// admission check) is refused by ApplyDelta's exact row scan, counted as
// quarantined (not corrupt), and the served predictor never tears.
func TestReplicaQuarantinesPoisonedDelta(t *testing.T) {
	n := newTestNet(t, 31)
	src := newTrainSrc(60, 20, 9)
	hub := NewHub()
	_, c, _ := testCluster(t, hub)

	for i := 0; i < 3; i++ {
		n.TrainBatch(src.batch(32))
	}
	p, _ := n.SnapshotDelta()
	if err := hub.Publish(p, nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.syncBase(ctx); err != nil {
		t.Fatal(err)
	}
	served := c.cur

	poisonNet(t, n, src)
	_, d := n.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta after training")
	}
	enc, err := EncodeDelta(d, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, msg, err := ReadMessage(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.cur.ApplyDelta(msg.Parts); !errors.Is(err, network.ErrNonFinite) {
		t.Fatalf("poisoned delta apply err = %v, want ErrNonFinite", err)
	}
	if c.cur != served {
		t.Fatal("served predictor replaced by a refused delta")
	}
	if err := c.cur.CheckFinite(); err != nil {
		t.Fatalf("served predictor non-finite after refused apply: %v", err)
	}
}
