package harness

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/fullsoftmax"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
	"github.com/slide-cpu/slide/internal/train"
)

// Variant names one measured SLIDE configuration: which §4 optimizations
// are switched on.
type Variant struct {
	Name string
	// Kernels selects vector (AVX substitute) or scalar mode (§4.2).
	Kernels simd.Mode
	// Placement is the parameter layout (§4.1).
	Placement layer.Placement
	// BatchLayout is the input-data layout (§4.1).
	BatchLayout sparse.Layout
	// Precision is the §4.4 quantization mode.
	Precision layer.Precision
}

// Optimized is the paper's fully optimized SLIDE (host FP32: software BF16
// is a separate Table 3 variant, since it costs rather than saves time
// without hardware support). Kernels resolve to the best CPUID-supported
// tier — the assembly backend on AVX hosts, the portable vector kernels
// elsewhere.
var Optimized = Variant{
	Name:        "Optimized SLIDE",
	Kernels:     simd.Best(),
	Placement:   layer.Contiguous,
	BatchLayout: sparse.Coalesced,
	Precision:   layer.FP32,
}

// Naive reproduces the original SLIDE implementation: scalar kernels,
// fragmented parameters and batch data.
var Naive = Variant{
	Name:        "Naive SLIDE",
	Kernels:     simd.Scalar,
	Placement:   layer.Scattered,
	BatchLayout: sparse.Fragmented,
	Precision:   layer.FP32,
}

// RunResult reports one measured training run.
type RunResult struct {
	System  string
	Dataset string
	// TrainTime is total training wall-clock (evaluation excluded);
	// EpochTime is the fastest single epoch, which filters first-epoch
	// warm-up and scheduler noise on small runs.
	TrainTime time.Duration
	EpochTime time.Duration
	FinalP1   float64
	FinalLoss float64
	// MeanActive is the mean active-set size per sample (SLIDE runs).
	MeanActive float64
	Tracker    *metrics.Tracker
}

// trainSamples bounds the per-epoch sample count so harness runs stay
// tractable at any scale.
const maxTrainSamples = 6000

func trainSlice(d *dataset.Dataset) *dataset.Dataset {
	if d.Len() > maxTrainSamples {
		return d.Head(maxTrainSamples)
	}
	return d
}

// evalP1 measures mean P@1 with the given scorer over the test head.
func evalP1(scores []float32, scorer func(sparse.Vector, []float32), test *dataset.Dataset, samples int) float64 {
	n := min(samples, test.Len())
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		scorer(test.Sample(i), scores)
		sum += metrics.PrecisionAtK(scores, test.LabelsOf(i), 1)
	}
	return sum / float64(n)
}

// RunSLIDE trains the workload with the given SLIDE variant and returns
// measurements. Kernel mode is process-global; runs execute serially.
func RunSLIDE(w *Workload, v Variant, opts Options) (*RunResult, error) {
	opts.defaults()
	prev := simd.CurrentMode()
	simd.SetMode(v.Kernels)
	defer simd.SetMode(prev)

	cfg := w.NetworkConfig(opts, v.Precision, v.Placement)
	if raceDetectorEnabled {
		cfg.Locked = true // defined behaviour under -race; see race_on.go
	}
	net, err := network.New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", v.Name, w.Name, err)
	}

	trainSet := trainSlice(w.Train)
	res := &RunResult{System: v.Name, Dataset: w.Name,
		Tracker: metrics.NewTracker(v.Name, w.Name)}
	scores := make([]float32, cfg.OutputDim)

	src, err := dataset.NewMemorySource(trainSet, w.Batch, v.BatchLayout)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", v.Name, w.Name, err)
	}
	evalEvery := max(1, src.BatchesPerEpoch()/opts.EvalPointsPerEpoch)

	// Convergence tracking: elapsed counts TrainBatch wall-clock only
	// (BatchInfo.TrainTime excludes data loading, hooks and the evaluation
	// below); loss is windowed between evaluation points.
	var elapsed time.Duration
	var lossSum float64
	var lossN int64

	runtime.GC() // isolate this run from the previous system's garbage
	rep, err := train.Run(context.Background(), net, src, train.Config{
		Epochs: opts.Epochs,
		// Keep the harness's historical per-epoch seeding (measurement runs
		// reproduce across harness versions); the default Step()+1 rule is
		// the public Trainer behaviour.
		SeedFunc: func(pass int, _ int64) uint64 { return opts.Seed + uint64(pass) },
		Hooks: train.Hooks{
			OnBatch: func(bi train.BatchInfo) {
				elapsed += bi.TrainTime
				lossSum += bi.Stats.Loss
				lossN += int64(bi.Stats.Samples)
				if bi.Step%int64(evalEvery) == 0 {
					p1 := evalP1(scores, net.Scores, w.Test, opts.EvalSamples)
					res.Tracker.Record(metrics.Point{
						Elapsed: elapsed, Epoch: bi.Epoch + 1, Batches: bi.Step,
						P1: p1, Loss: lossSum / float64(max64(lossN, 1)),
					})
					lossSum, lossN = 0, 0
				}
			},
			OnEpoch: func(ei train.EpochInfo) {
				if res.EpochTime == 0 || ei.TrainTime < res.EpochTime {
					// Report the fastest epoch: first-epoch page faults, lazy
					// allocations and noisy neighbours inflate the mean on
					// small runs.
					res.EpochTime = ei.TrainTime
				}
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", v.Name, w.Name, err)
	}
	res.TrainTime = rep.TrainTime
	res.FinalP1 = evalP1(scores, net.Scores, w.Test, opts.EvalSamples)
	if last, ok := res.Tracker.Last(); ok {
		res.FinalLoss = last.Loss
	}
	if rep.Stats.Samples > 0 {
		res.MeanActive = float64(rep.Stats.ActiveSum) / float64(rep.Stats.Samples)
	}
	return res, nil
}

// RunDense trains the workload with the dense full-softmax baseline.
func RunDense(w *Workload, opts Options) (*RunResult, error) {
	opts.defaults()
	prev := simd.CurrentMode()
	simd.SetMode(simd.Best()) // TF baselines use the best vector tier (AVX)
	defer simd.SetMode(prev)

	cfg := fullsoftmax.Config{
		InputDim:         w.Train.Features,
		HiddenDim:        w.Hidden,
		OutputDim:        w.Train.Labels,
		HiddenActivation: w.HiddenAct,
		LR:               w.LR,
		Workers:          opts.Workers,
		Seed:             opts.Seed,
	}
	tr, err := fullsoftmax.New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: dense baseline on %s: %w", w.Name, err)
	}

	trainSet := trainSlice(w.Train)
	const name = "TF FullSoftmax"
	res := &RunResult{System: name, Dataset: w.Name,
		Tracker: metrics.NewTracker(name, w.Name), MeanActive: float64(cfg.OutputDim)}
	scores := make([]float32, cfg.OutputDim)

	src, err := dataset.NewMemorySource(trainSet, w.Batch, sparse.Coalesced)
	if err != nil {
		return nil, fmt.Errorf("harness: dense baseline on %s: %w", w.Name, err)
	}
	evalEvery := max(1, src.BatchesPerEpoch()/opts.EvalPointsPerEpoch)

	var elapsed time.Duration
	var lossSum float64
	var lossN int64

	runtime.GC()
	rep, err := train.Run(context.Background(), denseStepper{tr}, src, train.Config{
		Epochs:   opts.Epochs,
		SeedFunc: func(pass int, _ int64) uint64 { return opts.Seed + uint64(pass) },
		Hooks: train.Hooks{
			OnBatch: func(bi train.BatchInfo) {
				elapsed += bi.TrainTime
				lossSum += bi.Stats.Loss
				lossN += int64(bi.Stats.Samples)
				if bi.Step%int64(evalEvery) == 0 {
					p1 := evalP1(scores, tr.Scores, w.Test, opts.EvalSamples)
					res.Tracker.Record(metrics.Point{
						Elapsed: elapsed, Epoch: bi.Epoch + 1, Batches: bi.Step,
						P1: p1, Loss: lossSum / float64(max64(lossN, 1)),
					})
					lossSum, lossN = 0, 0
				}
			},
			OnEpoch: func(ei train.EpochInfo) {
				if res.EpochTime == 0 || ei.TrainTime < res.EpochTime {
					res.EpochTime = ei.TrainTime
				}
			},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: dense baseline on %s: %w", w.Name, err)
	}
	res.TrainTime = rep.TrainTime
	res.FinalP1 = evalP1(scores, tr.Scores, w.Test, opts.EvalSamples)
	if last, ok := res.Tracker.Last(); ok {
		res.FinalLoss = last.Loss
	}
	return res, nil
}

// denseStepper adapts the full-softmax baseline trainer to the session
// engine's Stepper contract (its stats carry no active-set counts — every
// output neuron is always active).
type denseStepper struct {
	t *fullsoftmax.Trainer
}

// TrainBatch implements train.Stepper.
func (d denseStepper) TrainBatch(b sparse.Batch) network.BatchStats {
	st := d.t.TrainBatch(b)
	return network.BatchStats{
		Samples: st.Samples, Loss: st.Loss,
		ActiveSum: int64(st.Samples) * int64(d.t.Config().OutputDim),
	}
}

// Step implements train.Stepper.
func (d denseStepper) Step() int64 { return d.t.Step() }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
