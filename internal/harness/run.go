package harness

import (
	"fmt"
	"runtime"
	"time"

	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/fullsoftmax"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Variant names one measured SLIDE configuration: which §4 optimizations
// are switched on.
type Variant struct {
	Name string
	// Kernels selects vector (AVX substitute) or scalar mode (§4.2).
	Kernels simd.Mode
	// Placement is the parameter layout (§4.1).
	Placement layer.Placement
	// BatchLayout is the input-data layout (§4.1).
	BatchLayout sparse.Layout
	// Precision is the §4.4 quantization mode.
	Precision layer.Precision
}

// Optimized is the paper's fully optimized SLIDE (host FP32: software BF16
// is a separate Table 3 variant, since it costs rather than saves time
// without hardware support). Kernels resolve to the best CPUID-supported
// tier — the assembly backend on AVX hosts, the portable vector kernels
// elsewhere.
var Optimized = Variant{
	Name:        "Optimized SLIDE",
	Kernels:     simd.Best(),
	Placement:   layer.Contiguous,
	BatchLayout: sparse.Coalesced,
	Precision:   layer.FP32,
}

// Naive reproduces the original SLIDE implementation: scalar kernels,
// fragmented parameters and batch data.
var Naive = Variant{
	Name:        "Naive SLIDE",
	Kernels:     simd.Scalar,
	Placement:   layer.Scattered,
	BatchLayout: sparse.Fragmented,
	Precision:   layer.FP32,
}

// RunResult reports one measured training run.
type RunResult struct {
	System  string
	Dataset string
	// TrainTime is total training wall-clock (evaluation excluded);
	// EpochTime is the fastest single epoch, which filters first-epoch
	// warm-up and scheduler noise on small runs.
	TrainTime time.Duration
	EpochTime time.Duration
	FinalP1   float64
	FinalLoss float64
	// MeanActive is the mean active-set size per sample (SLIDE runs).
	MeanActive float64
	Tracker    *metrics.Tracker
}

// trainSamples bounds the per-epoch sample count so harness runs stay
// tractable at any scale.
const maxTrainSamples = 6000

func trainSlice(d *dataset.Dataset) *dataset.Dataset {
	if d.Len() > maxTrainSamples {
		return d.Head(maxTrainSamples)
	}
	return d
}

// evalP1 measures mean P@1 with the given scorer over the test head.
func evalP1(scores []float32, scorer func(sparse.Vector, []float32), test *dataset.Dataset, samples int) float64 {
	n := min(samples, test.Len())
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		scorer(test.Sample(i), scores)
		sum += metrics.PrecisionAtK(scores, test.LabelsOf(i), 1)
	}
	return sum / float64(n)
}

// RunSLIDE trains the workload with the given SLIDE variant and returns
// measurements. Kernel mode is process-global; runs execute serially.
func RunSLIDE(w *Workload, v Variant, opts Options) (*RunResult, error) {
	opts.defaults()
	prev := simd.CurrentMode()
	simd.SetMode(v.Kernels)
	defer simd.SetMode(prev)

	cfg := w.NetworkConfig(opts, v.Precision, v.Placement)
	if raceDetectorEnabled {
		cfg.Locked = true // defined behaviour under -race; see race_on.go
	}
	net, err := network.New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s on %s: %w", v.Name, w.Name, err)
	}

	train := trainSlice(w.Train)
	res := &RunResult{System: v.Name, Dataset: w.Name,
		Tracker: metrics.NewTracker(v.Name, w.Name)}
	scores := make([]float32, cfg.OutputDim)

	var activeSum, samples int64
	var lossSum float64
	var lossN int64
	batchesPerEpoch := (train.Len() + w.Batch - 1) / w.Batch
	evalEvery := max(1, batchesPerEpoch/opts.EvalPointsPerEpoch)
	var batches int64

	runtime.GC() // isolate this run from the previous system's garbage
	minEpoch := time.Duration(0)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		var epochTime time.Duration
		it := train.Iter(w.Batch, v.BatchLayout, opts.Seed+uint64(epoch))
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			start := time.Now()
			st := net.TrainBatch(b)
			epochTime += time.Since(start)
			batches++
			activeSum += st.ActiveSum
			samples += int64(st.Samples)
			lossSum += st.Loss
			lossN += int64(st.Samples)
			if batches%int64(evalEvery) == 0 {
				p1 := evalP1(scores, net.Scores, w.Test, opts.EvalSamples)
				res.Tracker.Record(metrics.Point{
					Elapsed: res.TrainTime + epochTime, Epoch: epoch + 1, Batches: batches,
					P1: p1, Loss: lossSum / float64(max64(lossN, 1)),
				})
				lossSum, lossN = 0, 0
			}
		}
		res.TrainTime += epochTime
		if minEpoch == 0 || epochTime < minEpoch {
			minEpoch = epochTime
		}
	}
	// Report the fastest epoch: first-epoch page faults, lazy allocations
	// and noisy neighbours inflate the mean on small runs.
	res.EpochTime = minEpoch
	res.FinalP1 = evalP1(scores, net.Scores, w.Test, opts.EvalSamples)
	if last, ok := res.Tracker.Last(); ok {
		res.FinalLoss = last.Loss
	}
	if samples > 0 {
		res.MeanActive = float64(activeSum) / float64(samples)
	}
	return res, nil
}

// RunDense trains the workload with the dense full-softmax baseline.
func RunDense(w *Workload, opts Options) (*RunResult, error) {
	opts.defaults()
	prev := simd.CurrentMode()
	simd.SetMode(simd.Best()) // TF baselines use the best vector tier (AVX)
	defer simd.SetMode(prev)

	cfg := fullsoftmax.Config{
		InputDim:         w.Train.Features,
		HiddenDim:        w.Hidden,
		OutputDim:        w.Train.Labels,
		HiddenActivation: w.HiddenAct,
		LR:               w.LR,
		Workers:          opts.Workers,
		Seed:             opts.Seed,
	}
	tr, err := fullsoftmax.New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: dense baseline on %s: %w", w.Name, err)
	}

	train := trainSlice(w.Train)
	const name = "TF FullSoftmax"
	res := &RunResult{System: name, Dataset: w.Name,
		Tracker: metrics.NewTracker(name, w.Name), MeanActive: float64(cfg.OutputDim)}
	scores := make([]float32, cfg.OutputDim)

	batchesPerEpoch := (train.Len() + w.Batch - 1) / w.Batch
	evalEvery := max(1, batchesPerEpoch/opts.EvalPointsPerEpoch)
	var batches int64
	var lossSum float64
	var lossN int64

	runtime.GC()
	minEpoch := time.Duration(0)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		var epochTime time.Duration
		it := train.Iter(w.Batch, sparse.Coalesced, opts.Seed+uint64(epoch))
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			start := time.Now()
			st := tr.TrainBatch(b)
			epochTime += time.Since(start)
			batches++
			lossSum += st.Loss
			lossN += int64(st.Samples)
			if batches%int64(evalEvery) == 0 {
				p1 := evalP1(scores, tr.Scores, w.Test, opts.EvalSamples)
				res.Tracker.Record(metrics.Point{
					Elapsed: res.TrainTime + epochTime, Epoch: epoch + 1, Batches: batches,
					P1: p1, Loss: lossSum / float64(max64(lossN, 1)),
				})
				lossSum, lossN = 0, 0
			}
		}
		res.TrainTime += epochTime
		if minEpoch == 0 || epochTime < minEpoch {
			minEpoch = epochTime
		}
	}
	res.EpochTime = minEpoch
	res.FinalP1 = evalP1(scores, tr.Scores, w.Test, opts.EvalSamples)
	if last, ok := res.Tracker.Last(); ok {
		res.FinalLoss = last.Loss
	}
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
