//go:build race

package harness

// raceDetectorEnabled reports whether this binary was built with -race.
// Harness runs force the Locked gradient policy under the detector: the
// default HOGWILD accumulation races benignly by design (as in SLIDE), and
// the Locked striped-mutex mode exists exactly so race-instrumented runs
// have defined behaviour.
const raceDetectorEnabled = true
