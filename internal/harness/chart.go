package harness

import (
	"fmt"
	"math"
	"strings"

	"github.com/slide-cpu/slide/internal/metrics"
)

// RenderConvergence draws the Figure 6 top-row plot as ASCII: P@1 (y)
// against wall-clock seconds on a log axis (x), one symbol per system.
func RenderConvergence(title string, trackers []*metrics.Tracker) string {
	const (
		width  = 64
		height = 16
	)
	symbols := []byte{'O', 'N', 'T', 'x', '+', '*', '#'}

	// Axis ranges.
	minT, maxT := math.Inf(1), math.Inf(-1)
	maxP := 0.0
	for _, tr := range trackers {
		for _, p := range tr.Points() {
			s := p.Elapsed.Seconds()
			if s <= 0 {
				s = 1e-3
			}
			minT = math.Min(minT, s)
			maxT = math.Max(maxT, s)
			maxP = math.Max(maxP, p.P1)
		}
	}
	if math.IsInf(minT, 1) || maxT <= 0 {
		return title + ": no convergence points recorded\n"
	}
	if maxP == 0 {
		maxP = 1
	}
	logMin, logMax := math.Log10(minT), math.Log10(maxT)
	if logMax-logMin < 1e-9 {
		logMax = logMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, tr := range trackers {
		sym := symbols[si%len(symbols)]
		for _, p := range tr.Points() {
			s := math.Max(p.Elapsed.Seconds(), 1e-3)
			x := int((math.Log10(s) - logMin) / (logMax - logMin) * float64(width-1))
			y := int(p.P1 / maxP * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = sym
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — P@1 vs wall-clock (log scale)\n", title)
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%5.2f ", maxP)
		case height - 1:
			label = " 0.00 "
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "       %-10.3gs%s%10.3gs\n", math.Pow(10, logMin),
		strings.Repeat(" ", width-22), math.Pow(10, logMax))
	b.WriteString("       legend: ")
	for si, tr := range trackers {
		if si > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", symbols[si%len(symbols)], tr.System)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderBars draws the Figure 6 bottom-row bar chart as ASCII: epoch time
// per system with the final P@1 annotated.
func RenderBars(title string, results []*RunResult) string {
	maxT := 0.0
	nameW := 0
	for _, r := range results {
		maxT = math.Max(maxT, r.EpochTime.Seconds())
		if len(r.System) > nameW {
			nameW = len(r.System)
		}
	}
	if maxT <= 0 {
		maxT = 1
	}
	const barW = 44
	var b strings.Builder
	fmt.Fprintf(&b, "%s — average epoch time (s) and P@1\n", title)
	for _, r := range results {
		n := int(r.EpochTime.Seconds() / maxT * barW)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-*s |%s %.3gs  P@1=%.3f\n",
			nameW, r.System, strings.Repeat("█", n), r.EpochTime.Seconds(), r.FinalP1)
	}
	return b.String()
}
