package harness

import (
	"fmt"
	"runtime"

	"github.com/slide-cpu/slide/internal/costmodel"
	"github.com/slide-cpu/slide/internal/dataset"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/network"
)

// Options configures a harness run.
type Options struct {
	// Scale shrinks the paper's datasets (default 0.01; 1.0 = full size,
	// which needs a machine comparable to the paper's servers).
	Scale float64
	// Epochs per measured run (default 2).
	Epochs int
	// EvalPointsPerEpoch sets convergence-curve density (default 3).
	EvalPointsPerEpoch int
	// EvalSamples bounds the held-out evaluation slice (default 200).
	EvalSamples int
	// Workers for training (default GOMAXPROCS).
	Workers int
	// Seed drives dataset generation and training.
	Seed uint64
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 0.01
	}
	if o.Epochs <= 0 {
		o.Epochs = 2
	}
	if o.EvalPointsPerEpoch <= 0 {
		o.EvalPointsPerEpoch = 3
	}
	if o.EvalSamples <= 0 {
		o.EvalSamples = 200
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Workload is one benchmark dataset plus its (scaled) training
// configuration and the full-scale statistics for the cost-model rows.
type Workload struct {
	Name  string
	Train *dataset.Dataset
	Test  *dataset.Dataset

	Hash         network.HashFamily
	K, L         int
	BinSize      int
	Hidden       int
	Batch        int
	LR           float64
	HiddenAct    layer.Activation
	MinActive    int
	RebuildEvery int

	// Full carries the paper-scale statistics (Table 1) used by the
	// roofline estimator for cross-platform rows; MeanActive is filled at
	// run time from the measured active fraction.
	Full costmodel.Workload
}

// scaleInt shrinks a paper-scale hyperparameter with a floor.
func scaleInt(full int, scale float64, floor int) int {
	n := int(float64(full) * scale)
	if n < floor {
		n = floor
	}
	return n
}

// Workloads builds the paper's three benchmarks at opts.Scale. Hash shapes
// are scaled alongside the label space (the paper's L=400 tables at 2^18
// buckets only pay off at 670K labels); hidden widths and optimizers stay
// paper-faithful.
func Workloads(opts Options) ([]*Workload, error) {
	opts.defaults()
	var ws []*Workload

	// Amazon-670K: hidden 128, batch 1024, Adam 1e-4, DWTA K=6 L=400 (§5.3).
	amzCfg := dataset.Amazon670K(opts.Scale, opts.Seed)
	amzTrain, amzTest, err := dataset.Generate(amzCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: amazon generation: %w", err)
	}
	ws = append(ws, &Workload{
		Name: "Amazon-670K", Train: amzTrain, Test: amzTest,
		Hash: network.DWTA, K: 4, L: scaleInt(400, opts.Scale*4, 12), BinSize: 8,
		Hidden: 128, Batch: scaleInt(1024, opts.Scale*25, 64), LR: 1e-4,
		HiddenAct: layer.ReLU, MinActive: 48, RebuildEvery: 20,
		Full: costmodel.Workload{
			Samples: 490449, FeatureNNZ: 75, Input: 135909, Hidden: 128,
			Output: 670091, BatchSize: 1024, L: 400, K: 6, RebuildPeriod: 50,
		},
	})

	// WikiLSH-325K: hidden 128, batch 256, DWTA K=5 L=350 (§5.3).
	wikiCfg := dataset.WikiLSH325K(opts.Scale, opts.Seed+1)
	wikiTrain, wikiTest, err := dataset.Generate(wikiCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: wiki generation: %w", err)
	}
	ws = append(ws, &Workload{
		Name: "WikiLSH-325K", Train: wikiTrain, Test: wikiTest,
		Hash: network.DWTA, K: 4, L: scaleInt(350, opts.Scale*4, 12), BinSize: 8,
		Hidden: 128, Batch: scaleInt(256, opts.Scale*25, 64), LR: 1e-4,
		HiddenAct: layer.ReLU, MinActive: 48, RebuildEvery: 20,
		Full: costmodel.Workload{
			Samples: 1778351, FeatureNNZ: 42, Input: 1617899, Hidden: 128,
			Output: 325056, BatchSize: 256, L: 350, K: 5, RebuildPeriod: 50,
		},
	})

	// Text8 word2vec: hidden 200, batch 512, SimHash K=9 L=50 (§5.3).
	t8Cfg := dataset.Text8(opts.Scale, opts.Seed+2)
	t8Train, t8Test, err := dataset.GenerateText8(t8Cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: text8 generation: %w", err)
	}
	ws = append(ws, &Workload{
		Name: "Text8", Train: t8Train, Test: t8Test,
		Hash: network.SimHash, K: 7, L: scaleInt(50, opts.Scale*20, 10),
		Hidden: 200, Batch: scaleInt(512, opts.Scale*25, 64), LR: 1e-4,
		HiddenAct: layer.Linear, MinActive: 48, RebuildEvery: 20,
		Full: costmodel.Workload{
			Samples: 13604165, FeatureNNZ: 1, Input: 253855, Hidden: 200,
			Output: 253855, BatchSize: 512, L: 50, K: 9, RebuildPeriod: 50,
		},
	})
	return ws, nil
}

// NetworkConfig builds the SLIDE configuration for this workload.
func (w *Workload) NetworkConfig(opts Options, prec layer.Precision, place layer.Placement) network.Config {
	opts.defaults()
	return network.Config{
		InputDim:         w.Train.Features,
		HiddenDim:        w.Hidden,
		OutputDim:        w.Train.Labels,
		HiddenActivation: w.HiddenAct,
		Hash:             w.Hash,
		K:                w.K,
		L:                w.L,
		BinSize:          w.BinSize,
		MinActive:        w.MinActive,
		LR:               w.LR,
		Precision:        prec,
		Placement:        place,
		Workers:          opts.Workers,
		RebuildEvery:     w.RebuildEvery,
		Seed:             opts.Seed,
	}
}
