package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/simd"
)

// tinyOpts keeps harness tests fast: smallest dataset floors, one epoch.
func tinyOpts() Options {
	return Options{Scale: 1e-6, Epochs: 1, EvalPointsPerEpoch: 2, EvalSamples: 40, Workers: 2, Seed: 7}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Note:   "a note",
		Header: []string{"A", "LongHeader"},
	}
	tbl.Append("x", 1.25)
	tbl.Append("longer-cell", "y")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "====", "A", "LongHeader", "longer-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "A,LongHeader\nx,1.25\n") {
		t.Errorf("csv wrong:\n%s", csv.String())
	}
}

func TestWorkloadsGenerate(t *testing.T) {
	ws, err := Workloads(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d workloads", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		names[w.Name] = true
		if w.Train.Len() == 0 || w.Test.Len() == 0 {
			t.Errorf("%s: empty splits", w.Name)
		}
		if err := w.Train.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.Full.Output == 0 || w.Full.Samples == 0 {
			t.Errorf("%s: missing full-scale stats", w.Name)
		}
		cfg := w.NetworkConfig(tinyOpts(), 0, 0)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid network config: %v", w.Name, err)
		}
	}
	for _, want := range []string{"Amazon-670K", "WikiLSH-325K", "Text8"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestRunSLIDEAndDense(t *testing.T) {
	opts := tinyOpts()
	ws, err := Workloads(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := ws[0]

	slide, err := RunSLIDE(w, Optimized, opts)
	if err != nil {
		t.Fatal(err)
	}
	if slide.EpochTime <= 0 || slide.TrainTime <= 0 {
		t.Error("no training time recorded")
	}
	if slide.MeanActive <= 0 || slide.MeanActive > float64(w.Train.Labels) {
		t.Errorf("MeanActive = %g", slide.MeanActive)
	}
	if len(slide.Tracker.Points()) == 0 {
		t.Error("no convergence points recorded")
	}

	dense, err := RunDense(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dense.EpochTime <= 0 {
		t.Error("dense run recorded no time")
	}
	if dense.MeanActive != float64(w.Train.Labels) {
		t.Errorf("dense MeanActive = %g, want full output", dense.MeanActive)
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 3 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Amazon-670K") {
		t.Error("render missing dataset name")
	}
}

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Table4(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	want := 3 * len(simd.AvailableModes()) // 3 datasets x supported kernel tiers
	if len(tbl.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), want)
	}
	// The measured-fastest tier anchors each dataset block at exactly 1.00x.
	perBlock := len(simd.AvailableModes())
	for blk := 0; blk < len(tbl.Rows); blk += perBlock {
		anchored := false
		for _, row := range tbl.Rows[blk : blk+perBlock] {
			if row[4] == "1.00x" {
				anchored = true
			}
		}
		if !anchored {
			t.Errorf("dataset block at row %d has no 1.00x reference", blk)
		}
	}
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Charts) != 6 { // 3 datasets x (convergence + bars)
		t.Fatalf("got %d charts", len(rep.Charts))
	}
	if len(rep.Trackers) != 9 {
		t.Fatalf("got %d trackers", len(rep.Trackers))
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend:") {
		t.Error("convergence chart missing legend")
	}
}

func TestTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Table2(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("got %d tables", len(rep.Tables))
	}
	measured, modeled := rep.Tables[0], rep.Tables[1]
	if len(measured.Rows) != 9 { // 3 datasets x 3 systems
		t.Errorf("measured rows = %d", len(measured.Rows))
	}
	if len(modeled.Rows) != 24 { // 3 datasets x (7 paper systems + host roofline)
		t.Errorf("modeled rows = %d", len(modeled.Rows))
	}
	// The modeled block must preserve the paper's headline ordering on the
	// Amazon workload: optimized SLIDE beats TF V100.
	var optCPX, v100 float64
	for _, row := range modeled.Rows {
		if row[0] != "Amazon-670K" {
			continue
		}
		var v float64
		fmt.Sscanf(row[2], "%f", &v)
		switch row[1] {
		case "Optimized SLIDE CPX":
			optCPX = v
		case "TF V100":
			v100 = v
		}
	}
	if optCPX <= 0 || v100 <= 0 || optCPX >= v100 {
		t.Errorf("modeled ordering broken: OptCPX %.1fs vs V100 %.1fs", optCPX, v100)
	}
}

func TestTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 9 { // 3 datasets x 3 modes
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	// BF16-both must report strictly smaller parameter bytes than FP32
	// (exactly half: same unit suffix, half the number at these sizes).
	var bfBytes, fpBytes float64
	var bfUnit, fpUnit string
	fmt.Sscanf(tbl.Rows[0][4], "%f%s", &bfBytes, &bfUnit)
	fmt.Sscanf(tbl.Rows[2][4], "%f%s", &fpBytes, &fpUnit)
	if bfUnit == fpUnit && bfBytes >= fpBytes {
		t.Errorf("BF16 ParamBytes %v not smaller than FP32 %v",
			tbl.Rows[0][4], tbl.Rows[2][4])
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Ablations(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 3 {
		t.Fatalf("got %d tables", len(rep.Tables))
	}
	if len(rep.Tables[0].Rows) != 4 { // layout grid
		t.Errorf("memory ablation rows = %d", len(rep.Tables[0].Rows))
	}
	if len(rep.Tables[1].Rows) < 2 { // thread sweep: at least 1 and 2
		t.Errorf("thread ablation rows = %d", len(rep.Tables[1].Rows))
	}
	if len(rep.Tables[2].Rows) != 2 { // LSH vs uniform
		t.Errorf("sampling ablation rows = %d", len(rep.Tables[2].Rows))
	}
}

func TestProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration; skipped in -short (race CI)")
	}
	rep, err := Profile(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 12 { // 3 datasets x 4 phases
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	// Every dataset's "full training step" row must carry 100%.
	full := 0
	for _, row := range tbl.Rows {
		if row[1] == "full training step" && row[3] == "100%" {
			full++
		}
	}
	if full != 3 {
		t.Errorf("full-step rows = %d, want 3", full)
	}
}

func TestRenderConvergenceEmpty(t *testing.T) {
	out := RenderConvergence("empty", []*metrics.Tracker{metrics.NewTracker("s", "d")})
	if !strings.Contains(out, "no convergence points") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderBars(t *testing.T) {
	rs := []*RunResult{
		{System: "A", EpochTime: 2 * time.Second, FinalP1: 0.5},
		{System: "B", EpochTime: time.Second, FinalP1: 0.4},
	}
	out := RenderBars("t", rs)
	if !strings.Contains(out, "A") || !strings.Contains(out, "P@1=0.400") {
		t.Errorf("bars output wrong:\n%s", out)
	}
	// Longer bar for the slower system.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Error("bar lengths do not reflect epoch times")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.Scale != 0.01 || o.Epochs != 2 || o.EvalSamples != 200 || o.Workers <= 0 || o.Seed == 0 {
		t.Errorf("defaults wrong: %+v", o)
	}
}
