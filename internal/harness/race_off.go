//go:build !race

package harness

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
