package harness

import (
	"fmt"
	"time"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Profile decomposes the optimized SLIDE step into its component phases —
// LSH query, hidden forward, sampled output forward, full training step —
// by timing each in isolation over one batch stream. This is the §5.7-style
// attribution: the difference between the summed components and the full
// step is the backward+ADAM+coordination share.
func Profile(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Phase profile — optimized SLIDE components (scale %g)", opts.Scale),
		Header: []string{"Dataset", "Phase", "Time/epoch(s)", "Share of full step"},
		Note:   "phases timed in isolation over identical batches; backward+ADAM is the remainder",
	}
	for _, w := range ws {
		cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
		if raceDetectorEnabled {
			cfg.Locked = true // defined behaviour under -race; see race_on.go
		}
		net, err := network.New(&cfg)
		if err != nil {
			return nil, err
		}
		train := trainSlice(w.Train)

		// Warm the model so active sets reflect trained tables.
		it := train.Iter(w.Batch, sparse.Coalesced, opts.Seed)
		for i := 0; i < 5; i++ {
			b, ok := it.Next()
			if !ok {
				break
			}
			net.TrainBatch(b)
		}

		collect := func(f func(b sparse.Batch)) time.Duration {
			start := time.Now()
			it := train.Iter(w.Batch, sparse.Coalesced, opts.Seed+7)
			for {
				b, ok := it.Next()
				if !ok {
					break
				}
				f(b)
			}
			return time.Since(start)
		}

		hidden := net.Hidden()
		tables := net.Tables()
		h := make([]float32, cfg.HiddenDim)
		ks := simd.Active()

		tHidden := collect(func(b sparse.Batch) {
			for i := 0; i < b.Len(); i++ {
				hidden.Forward(ks, b.Sample(i), h)
			}
		})
		tQuery := collect(func(b sparse.Batch) {
			for i := 0; i < b.Len(); i++ {
				hidden.Forward(ks, b.Sample(i), h)
				tables.QueryDense(h, func(int32) {})
			}
		}) - tHidden
		if tQuery < 0 {
			tQuery = 0
		}
		tFull := collect(func(b sparse.Batch) { net.TrainBatch(b) })

		rest := tFull - tHidden - tQuery
		if rest < 0 {
			rest = 0
		}
		share := func(d time.Duration) string {
			if tFull <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(d)/float64(tFull))
		}
		t.Append(w.Name, "hidden forward (Alg 2)", fmt.Sprintf("%.3f", tHidden.Seconds()), share(tHidden))
		t.Append(w.Name, "LSH query (hash+retrieve)", fmt.Sprintf("%.3f", tQuery.Seconds()), share(tQuery))
		t.Append(w.Name, "sampled fwd+bwd+ADAM", fmt.Sprintf("%.3f", rest.Seconds()), share(rest))
		t.Append(w.Name, "full training step", fmt.Sprintf("%.3f", tFull.Seconds()), "100%")
	}
	return &Report{Name: "profile", Tables: []*Table{t}}, nil
}
