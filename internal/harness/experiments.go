package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/slide-cpu/slide/internal/costmodel"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/network"
	"github.com/slide-cpu/slide/internal/platform"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Report is the rendered output of one experiment.
type Report struct {
	Name     string
	Tables   []*Table
	Charts   []string
	Trackers []*metrics.Tracker
}

// Render writes all tables and charts.
func (r *Report) Render(w io.Writer) error {
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, c := range r.Charts {
		if _, err := fmt.Fprintln(w, c); err != nil {
			return err
		}
	}
	return nil
}

// Table1 regenerates the dataset-statistics table: measured statistics of
// the generated (scaled) datasets next to the paper's full-scale figures.
func Table1(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 1 — dataset statistics (scale %g)", opts.Scale),
		Header: []string{"Dataset", "FeatDim", "Sparsity%", "LabelDim", "Train", "Test", "Params(M)", "PaperFeat", "PaperLabels", "PaperParams(M)"},
		Note:   "left block: generated at scale; right block: paper full-scale reference",
	}
	for _, w := range ws {
		st := w.Train.Stats()
		params := float64(w.Train.ModelParams(w.Hidden)) / 1e6
		fullParams := (float64(w.Full.Input)*float64(w.Full.Hidden) +
			float64(w.Full.Hidden)*float64(w.Full.Output)) / 1e6
		t.Append(w.Name, st.Features, fmt.Sprintf("%.4f", st.FeatureSparsity*100),
			st.Labels, st.Samples, w.Test.Len(),
			fmt.Sprintf("%.2f", params),
			w.Full.Input, w.Full.Output, fmt.Sprintf("%.0f", fullParams))
	}
	return &Report{Name: "table1", Tables: []*Table{t}}, nil
}

// measureSystems runs the three measured systems on one workload.
func measureSystems(w *Workload, opts Options) (dense, naive, optimized *RunResult, err error) {
	if dense, err = RunDense(w, opts); err != nil {
		return nil, nil, nil, err
	}
	if naive, err = RunSLIDE(w, Naive, opts); err != nil {
		return nil, nil, nil, err
	}
	if optimized, err = RunSLIDE(w, Optimized, opts); err != nil {
		return nil, nil, nil, err
	}
	return dense, naive, optimized, nil
}

// fullWorkload scales the measured active fraction up to the paper-sized
// workload for the roofline rows.
func fullWorkload(w *Workload, optimized *RunResult) costmodel.Workload {
	full := w.Full
	frac := optimized.MeanActive / float64(w.Train.Labels)
	full.MeanActive = frac * float64(full.Output)
	return full
}

// Table2 regenerates the epoch-time speedup table: measured host rows for
// the systems that share our hardware, and roofline rows for the paper's
// seven platform/system combinations.
func Table2(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	measured := &Table{
		Title:  fmt.Sprintf("Table 2a — measured epoch times on host (scale %g)", opts.Scale),
		Header: []string{"Dataset", "System", "Epoch(s)", "P@1", "vs FullSoftmax", "vs Naive"},
		Note:   "same hardware, same Go kernels: ratios are the algorithm+optimization effect",
	}
	modeled := &Table{
		Title:  "Table 2b — roofline-modeled full-scale epoch times (paper platforms)",
		Header: []string{"Dataset", "System", "Epoch(s)", "vs TF-V100", "vs TF-sameCPU", "vs Naive-sameCPU"},
		Note:   "cost model per DESIGN.md; compare ratios with the paper's Table 2",
	}
	var trackers []*metrics.Tracker

	for _, w := range ws {
		dense, naive, optimized, err := measureSystems(w, opts)
		if err != nil {
			return nil, err
		}
		trackers = append(trackers, dense.Tracker, naive.Tracker, optimized.Tracker)
		for _, r := range []*RunResult{dense, naive, optimized} {
			measured.Append(w.Name, r.System,
				fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
				fmt.Sprintf("%.3f", r.FinalP1),
				fmt.Sprintf("%.2fx", costmodel.Speedup(dense.EpochTime, r.EpochTime)),
				fmt.Sprintf("%.2fx", costmodel.Speedup(naive.EpochTime, r.EpochTime)))
		}

		full := fullWorkload(w, optimized)
		v100 := costmodel.EstimateEpoch(full, costmodel.FullSoftmax(), platform.V100)
		type row struct {
			name string
			t    time.Duration
			tf   time.Duration // same-CPU dense
			nv   time.Duration // same-CPU naive
		}
		tfCLX := costmodel.EstimateEpoch(full, costmodel.FullSoftmax(), platform.CLX)
		tfCPX := costmodel.EstimateEpoch(full, costmodel.FullSoftmax(), platform.CPX)
		nvCLX := costmodel.EstimateEpoch(full, costmodel.NaiveSLIDE(), platform.CLX)
		nvCPX := costmodel.EstimateEpoch(full, costmodel.NaiveSLIDE(), platform.CPX)
		// The Host row parameterizes the same roofline with the CPUID-detected
		// capabilities of this machine (lane width, BF16) — the same-hardware
		// sanity anchor for the measured block above it.
		host := platform.Host()
		rows := []row{
			{"TF V100", v100, 0, 0},
			{"TF CLX", tfCLX, tfCLX, nvCLX},
			{"TF CPX", tfCPX, tfCPX, nvCPX},
			{"Naive SLIDE CLX", nvCLX, tfCLX, nvCLX},
			{"Naive SLIDE CPX", nvCPX, tfCPX, nvCPX},
			{"Optimized SLIDE CLX", costmodel.EstimateEpoch(full, costmodel.OptimizedSLIDE(platform.CLX), platform.CLX), tfCLX, nvCLX},
			{"Optimized SLIDE CPX", costmodel.EstimateEpoch(full, costmodel.OptimizedSLIDE(platform.CPX), platform.CPX), tfCPX, nvCPX},
			{"Optimized SLIDE Host", costmodel.EstimateEpoch(full, costmodel.OptimizedSLIDE(host), host), 0, 0},
		}
		for _, r := range rows {
			vsTF, vsNaive := "-", "-"
			if r.tf > 0 {
				vsTF = fmt.Sprintf("%.2fx", costmodel.Speedup(r.tf, r.t))
			}
			if r.nv > 0 {
				vsNaive = fmt.Sprintf("%.2fx", costmodel.Speedup(r.nv, r.t))
			}
			modeled.Append(w.Name, r.name, fmt.Sprintf("%.1f", r.t.Seconds()),
				fmt.Sprintf("%.2fx", costmodel.Speedup(v100, r.t)), vsTF, vsNaive)
		}
	}
	return &Report{Name: "table2", Tables: []*Table{measured, modeled}, Trackers: trackers}, nil
}

// Table3 regenerates the BF16 ablation: the three §4.4 quantization modes
// on the optimized system. Host rows measure software-BF16 (conversion cost
// included — see DESIGN.md); the modeled column shows the hardware-BF16
// effect on CPX.
func Table3(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 3 — BF16 modes on optimized SLIDE (scale %g)", opts.Scale),
		Header: []string{"Dataset", "Mode", "Epoch(s)", "P@1", "ParamBytes", "ModeledCPX(s)", "ModeledSpeedup"},
		Note:   "host BF16 is software-emulated (slower); ModeledCPX shows the hardware effect",
	}
	modes := []struct {
		name string
		prec layer.Precision
	}{
		{"BF16 weights+activations", layer.BF16Both},
		{"BF16 activations only", layer.BF16Act},
		{"Without BF16", layer.FP32},
	}
	for _, w := range ws {
		base := time.Duration(0)
		for _, m := range modes {
			v := Optimized
			v.Name = m.name
			v.Precision = m.prec
			r, err := RunSLIDE(w, v, opts)
			if err != nil {
				return nil, err
			}
			full := fullWorkload(w, r)
			sys := costmodel.OptimizedSLIDE(platform.CPX)
			switch m.prec {
			case layer.BF16Both:
				sys.WeightBytes, sys.ActBytes = 2, 2
			case layer.BF16Act:
				sys.WeightBytes, sys.ActBytes = 4, 2
			default:
				sys.WeightBytes, sys.ActBytes = 4, 4
			}
			est := costmodel.EstimateEpoch(full, sys, platform.CPX)
			if m.prec == layer.BF16Both {
				base = est
			}
			paramBytes := int64(w.Train.Features)*int64(w.Hidden)*wBytes(m.prec) +
				int64(w.Hidden)*int64(w.Train.Labels)*wBytes(m.prec)
			t.Append(w.Name, m.name,
				fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
				fmt.Sprintf("%.3f", r.FinalP1),
				humanBytes(paramBytes),
				fmt.Sprintf("%.1f", est.Seconds()),
				fmt.Sprintf("%.2fx vs BF16-both", costmodel.Speedup(est, base)))
		}
	}
	return &Report{Name: "table3", Tables: []*Table{t}}, nil
}

func wBytes(p layer.Precision) int64 {
	if p == layer.BF16Both {
		return 2
	}
	return 4
}

// humanBytes renders a byte count with a binary-unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table4 regenerates the vectorization ablation: optimized SLIDE under
// every kernel tier this host supports (assembly avx512/avx2 where CPUID
// reports them, then the portable vector kernels, then scalar), everything
// else held fixed. The paper's two-row "with/without AVX-512" contrast is
// the first-vs-last pair; the middle rows decompose how much comes from
// real SIMD silicon versus the unrolled Go substitute.
func Table4(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 4 — impact of vectorization (scale %g)", opts.Scale),
		Header: []string{"Dataset", "Kernels", "Epoch(s)", "P@1", "Slowdown vs best"},
		Note:   "paper: 'Without AVX-512' is 1.12x-1.22x slower; rows cover every kernel tier this host supports",
	}
	modes := simd.AvailableModes()
	for _, w := range ws {
		// Measure every tier first: the "vs best" reference is the measured
		// minimum, not the nominally fastest tier (noise on tiny epochs can
		// reorder adjacent tiers).
		results := make([]*RunResult, len(modes))
		best := time.Duration(0)
		for i, m := range modes {
			v := Optimized
			v.Name = "Optimized SLIDE (" + m.String() + " kernels)"
			v.Kernels = m
			r, err := RunSLIDE(w, v, opts)
			if err != nil {
				return nil, err
			}
			results[i] = r
			if best == 0 || r.EpochTime < best {
				best = r.EpochTime
			}
		}
		for i, m := range modes {
			r := results[i]
			t.Append(w.Name, m.String(),
				fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
				fmt.Sprintf("%.3f", r.FinalP1),
				fmt.Sprintf("%.2fx", costmodel.Speedup(r.EpochTime, best)))
		}
	}
	return &Report{Name: "table4", Tables: []*Table{t}}, nil
}

// Figure6 regenerates the convergence study: time-vs-P@1 curves (top row)
// and epoch-time/P@1 bars (bottom row) for the measured systems, plus the
// modeled full-scale bars for the paper's platforms.
func Figure6(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{Name: "fig6"}
	bars := &Table{
		Title:  fmt.Sprintf("Figure 6 (bottom) — epoch time and accuracy (scale %g)", opts.Scale),
		Header: []string{"Dataset", "System", "Epoch(s)", "P@1", "TimeToHalfBestP1(s)"},
	}
	for _, w := range ws {
		dense, naive, optimized, err := measureSystems(w, opts)
		if err != nil {
			return nil, err
		}
		results := []*RunResult{dense, naive, optimized}
		var tracks []*metrics.Tracker
		best := 0.0
		for _, r := range results {
			tracks = append(tracks, r.Tracker)
			if p := r.Tracker.BestP1(); p > best {
				best = p
			}
		}
		rep.Trackers = append(rep.Trackers, tracks...)
		rep.Charts = append(rep.Charts,
			RenderConvergence("Figure 6 (top) "+w.Name, tracks),
			RenderBars("Figure 6 (bottom) "+w.Name, results))
		for _, r := range results {
			tt := "-"
			if d, ok := r.Tracker.TimeToP1(best / 2); ok {
				tt = fmt.Sprintf("%.3f", d.Seconds())
			}
			bars.Append(w.Name, r.System,
				fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
				fmt.Sprintf("%.3f", r.FinalP1), tt)
		}
	}
	rep.Tables = append(rep.Tables, bars)
	return rep, nil
}

// Ablations runs the §5.7 memory-layout decomposition and the §4.1.1
// thread-scaling sweep plus a bucket-policy comparison.
func Ablations(opts Options) (*Report, error) {
	opts.defaults()
	ws, err := Workloads(opts)
	if err != nil {
		return nil, err
	}
	w := ws[0] // Amazon-670K-like is the paper's lead workload

	mem := &Table{
		Title:  fmt.Sprintf("Ablation — memory layout decomposition (§4.1/§5.7, %s, scale %g)", w.Name, opts.Scale),
		Header: []string{"Parameters", "BatchData", "Epoch(s)", "Slowdown vs coalesced"},
		Note:   "vector kernels everywhere: isolates the pure memory-layout effect",
	}
	combos := []struct {
		name  string
		place layer.Placement
		lay   sparse.Layout
	}{
		{"contiguous+coalesced", layer.Contiguous, sparse.Coalesced},
		{"contiguous+fragmented", layer.Contiguous, sparse.Fragmented},
		{"scattered+coalesced", layer.Scattered, sparse.Coalesced},
		{"scattered+fragmented", layer.Scattered, sparse.Fragmented},
	}
	var baseline time.Duration
	for _, c := range combos {
		v := Optimized
		v.Name = c.name
		v.Placement = c.place
		v.BatchLayout = c.lay
		r, err := RunSLIDE(w, v, opts)
		if err != nil {
			return nil, err
		}
		if baseline == 0 {
			baseline = r.EpochTime
		}
		mem.Append(c.place.String(), c.lay.String(),
			fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
			fmt.Sprintf("%.2fx", costmodel.Speedup(r.EpochTime, baseline)))
	}

	// Combined kernel-mode × worker sweep: every kernel tier this host
	// supports crossed with the HOGWILD worker counts, in one table, so the
	// vectorization and threading effects can be read off jointly (does the
	// assembly tier still scale with threads, or does it hit the memory
	// wall earlier?). Modes run slowest tier first so the scalar@1-worker
	// reference row exists before any speedup against it is computed.
	threads := &Table{
		Title:  fmt.Sprintf("Ablation — kernel mode × HOGWILD workers (§4.1.1/§4.2, %s)", w.Name),
		Header: []string{"Kernels", "Workers", "Epoch(s)", "Speedup vs 1 worker", "Speedup vs scalar"},
		Note:   "scalar column compares same worker count; 1-worker column compares within one kernel mode",
	}
	// Always sweep at least 1→2 workers: goroutine-level HOGWILD interleaves
	// even on a single core, and the table contract (and its test) expects
	// the contrast row on single-CPU CI machines.
	maxW := max(2, runtime.GOMAXPROCS(0))
	modes := simd.AvailableModes()
	scalarAt := make(map[int]time.Duration)
	for i := len(modes) - 1; i >= 0; i-- {
		m := modes[i]
		var oneWorker time.Duration
		for nw := 1; nw <= maxW; nw *= 2 {
			o := opts
			o.Workers = nw
			v := Optimized
			v.Name = "Optimized SLIDE (" + m.String() + " kernels)"
			v.Kernels = m
			r, err := RunSLIDE(w, v, o)
			if err != nil {
				return nil, err
			}
			if nw == 1 {
				oneWorker = r.EpochTime
			}
			if m == simd.Scalar {
				scalarAt[nw] = r.EpochTime
			}
			vsScalar := "-"
			if base, ok := scalarAt[nw]; ok {
				vsScalar = fmt.Sprintf("%.2fx", costmodel.Speedup(base, r.EpochTime))
			}
			threads.Append(m.String(), nw, fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
				fmt.Sprintf("%.2fx", costmodel.Speedup(oneWorker, r.EpochTime)), vsScalar)
		}
	}

	sampling, err := samplingAblation(w, opts)
	if err != nil {
		return nil, err
	}

	return &Report{Name: "ablations", Tables: []*Table{mem, threads, sampling}}, nil
}

// samplingAblation compares adaptive LSH retrieval against uniform random
// negative sampling at the same active-set budget — isolating what the
// input-dependent part of SLIDE's sampling contributes to accuracy.
func samplingAblation(w *Workload, opts Options) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation — LSH vs uniform negative sampling (%s)", w.Name),
		Header: []string{"Sampler", "Epoch(s)", "P@1", "MeanActive"},
		Note:   "same active budget; the gap is the value of adaptive (input-dependent) retrieval",
	}
	lshRun, err := RunSLIDE(w, Optimized, opts)
	if err != nil {
		return nil, err
	}
	// Uniform sampling matches the LSH run's measured active-set budget.
	cfg := w.NetworkConfig(opts, layer.FP32, layer.Contiguous)
	cfg.UniformSampling = true
	cfg.K, cfg.L = 0, 0
	cfg.MinActive = max(1, int(lshRun.MeanActive))
	net, err := network.New(&cfg)
	if err != nil {
		return nil, err
	}
	train := trainSlice(w.Train)
	res := &RunResult{System: "Uniform sampling", Dataset: w.Name,
		Tracker: metrics.NewTracker("Uniform sampling", w.Name)}
	scores := make([]float32, cfg.OutputDim)
	var activeSum, samples int64
	start := time.Now()
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		it := train.Iter(w.Batch, sparse.Coalesced, opts.Seed+uint64(epoch))
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			st := net.TrainBatch(b)
			activeSum += st.ActiveSum
			samples += int64(st.Samples)
		}
	}
	res.TrainTime = time.Since(start)
	res.EpochTime = res.TrainTime / time.Duration(opts.Epochs)
	res.FinalP1 = evalP1(scores, net.Scores, w.Test, opts.EvalSamples)
	if samples > 0 {
		res.MeanActive = float64(activeSum) / float64(samples)
	}

	for _, r := range []*RunResult{lshRun, res} {
		name := "LSH (adaptive)"
		if r == res {
			name = "Uniform (random)"
		}
		t.Append(name, fmt.Sprintf("%.3f", r.EpochTime.Seconds()),
			fmt.Sprintf("%.3f", r.FinalP1), fmt.Sprintf("%.1f", r.MeanActive))
	}
	return t, nil
}
