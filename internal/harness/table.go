// Package harness regenerates every table and figure of the paper's
// evaluation (§5): Table 1 (dataset statistics), Table 2 (epoch-time
// speedups), Table 3 (BF16 ablation), Table 4 (AVX ablation), Figure 6
// (convergence curves and epoch-time bars), plus the §5.7 memory-layout and
// §4.1.1 thread-scaling ablations.
//
// Measured rows run the real systems on the host at a configurable dataset
// scale; cross-platform rows (CLX / CPX / V100) come from the roofline
// estimator in internal/costmodel fed with statistics measured during the
// runs. Every experiment renders an ASCII table and optionally writes CSVs.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Append adds a row, stringifying cells with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table in aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(width) {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title))); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(width)*2 - 2
	for _, wd := range width {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Note); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as CSV (no quoting needed: cells are plain).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Header, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
