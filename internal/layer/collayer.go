package layer

import (
	"fmt"
	"math"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// ColLayer is a fully connected layer whose weight matrix is stored in
// column-major order: column j holds component j of every neuron's weight
// vector, contiguously. It implements the Algorithm 2 product (§4.3.2,
// case 2) for sparse inputs: for each non-zero (j, vⱼ) of the input,
// broadcast vⱼ and accumulate vⱼ·W[:,j] into the dense output with 16-lane
// blocks. SLIDE uses this as the hidden layer, where the input is the
// extremely sparse feature vector and the output is the small dense
// activation.
//
// The backward pass needs only the per-column gradient accumulation
// ∇W[:,j] += xⱼ·∇h (contiguous again, by Lemma 1) — no input gradient is
// produced because this is the first layer.
type ColLayer struct {
	// In is the input (sparse feature) dimension; Out the neuron count.
	In, Out int

	opts Options
	act  Activation

	cols   [][]float32   // FP32 / BF16Act weights: cols[j][i] = W[i][j]
	colsBF [][]bf16.BF16 // BF16Both weights
	bias   []float32

	grad    [][]float32 // per-column gradient accumulators
	gbias   []float32
	m, v    [][]float32 // ADAM moments per column
	mb, vb  []float32
	touched *touchSet
	journal *touchSet // nil unless EnableJournal; columns touched since last drain
	lk      locks

	// fwd is the live forward view over the storage above; Forward and
	// ForwardView go through it, so training and serving consume the same
	// forward implementation.
	fwd ColWeights
}

// NewColLayer builds a column-major layer with in inputs and out neurons.
func NewColLayer(in, out int, act Activation, o Options) *ColLayer {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("layer: invalid ColLayer dims %dx%d", in, out))
	}
	l := &ColLayer{In: in, Out: out, opts: o, act: act}
	scale := 1.0 / math.Sqrt(float64(in))
	if o.Precision == BF16Both {
		l.colsBF = vectors2DBF16(in, out, o.Placement)
		initGaussianBF16(l.colsBF, scale, o.Seed)
	} else {
		l.cols = vectors2D(in, out, o.Placement)
		initGaussian(l.cols, scale, o.Seed)
	}
	l.bias = make([]float32, out)
	l.grad = vectors2D(in, out, o.Placement)
	l.gbias = make([]float32, out)
	l.m = vectors2D(in, out, o.Placement)
	l.v = vectors2D(in, out, o.Placement)
	l.mb = make([]float32, out)
	l.vb = make([]float32, out)
	l.touched = newTouchSet(in)
	l.lk.enabled = o.Locked
	l.fwd = ColWeights{In: in, Out: out, prec: o.Precision, act: act,
		cols: l.cols, colsBF: l.colsBF, bias: l.bias}
	return l
}

// Options returns the construction options.
func (l *ColLayer) Options() Options { return l.opts }

// Activation returns the layer non-linearity.
func (l *ColLayer) Activation() Activation { return l.act }

// Forward computes h = act(Wx + b) into h (len Out); see
// ColWeights.Forward, which implements the pass for both the training path
// and snapshot serving.
func (l *ColLayer) Forward(ks *simd.Kernels, x sparse.Vector, h []float32) {
	l.fwd.Forward(ks, x, h)
}

// Backward accumulates gradients given the input x, the forward activation
// h, and the output gradient dh. For ReLU layers dh is masked in place where
// the unit was inactive, so the caller must pass dh before any further use.
// Safe for concurrent calls; the write policy follows Options.Locked.
func (l *ColLayer) Backward(ks *simd.Kernels, x sparse.Vector, h, dh []float32) {
	if len(h) != l.Out || len(dh) != l.Out {
		panic("layer: ColLayer.Backward size mismatch")
	}
	if l.act == ReLU {
		for i := range dh {
			if h[i] <= 0 {
				dh[i] = 0
			}
		}
	}
	l.lk.lockBias()
	ks.Add(dh, l.gbias)
	l.lk.unlockBias()
	for k, j := range x.Indices {
		l.lk.lockRow(j)
		ks.Axpy(x.Values[k], dh, l.grad[j])
		l.lk.unlockRow(j)
		l.touched.mark(j)
	}
}

// BackwardBatchRange accumulates the batch's hidden gradients for output
// units [lo, hi) only: for every sample i (in order), it ReLU-masks
// dhs[i][lo:hi] against acts[i], adds it into the bias gradient subrange,
// and accumulates xⱼ·dh[lo:hi] into each touched column's subrange. Workers
// own disjoint [lo, hi) tiles, so no locks are needed; because every kernel
// involved is elementwise, the per-scalar accumulation order is sample-
// ascending regardless of where the tile boundaries fall — the result is
// bit-identical for any tile count. Used by the deterministic sharded
// trainer in place of per-sample Backward calls; apply with ApplyAdam as
// usual.
func (l *ColLayer) BackwardBatchRange(ks *simd.Kernels, xs []sparse.Vector, acts, dhs [][]float32, lo, hi int) {
	for i := range xs {
		h, dh := acts[i], dhs[i]
		if len(h) != l.Out || len(dh) != l.Out {
			panic("layer: ColLayer.BackwardBatchRange size mismatch")
		}
		if l.act == ReLU {
			for u := lo; u < hi; u++ {
				if h[u] <= 0 {
					dh[u] = 0
				}
			}
		}
		ks.Add(dh[lo:hi], l.gbias[lo:hi])
		for k, j := range xs[i].Indices {
			ks.Axpy(xs[i].Values[k], dh[lo:hi], l.grad[j][lo:hi])
			l.touched.mark(j)
		}
	}
}

// ApplyAdam steps every touched column (plus the bias) with the fused
// vector ADAM kernel of §4.3.1, zeroes the consumed gradients and clears the
// touched set. Call only after all Backward calls for the batch completed.
// Step and clear stay two passes — the single-pass AdamStepZero fusion is a
// measured negative result under the Go compiler (see DESIGN.md).
func (l *ColLayer) ApplyAdam(ks *simd.Kernels, p simd.AdamParams, workers int) {
	if l.opts.Precision == BF16Both {
		l.touched.forEachParallel(workers, func(j int32) {
			ks.AdamStepBF16(l.colsBF[j], l.m[j], l.v[j], l.grad[j], p)
			simd.Zero(l.grad[j])
		})
	} else {
		l.touched.forEachParallel(workers, func(j int32) {
			ks.AdamStep(l.cols[j], l.m[j], l.v[j], l.grad[j], p)
			simd.Zero(l.grad[j])
		})
	}
	if l.journal != nil {
		l.journal.orFrom(l.touched)
	}
	l.touched.clear()
	ks.AdamStep(l.bias, l.mb, l.vb, l.gbias, p)
	simd.Zero(l.gbias)
}

// TouchedCols returns how many columns currently hold unapplied gradient
// (diagnostics; meaningful between Backward and ApplyAdam).
func (l *ColLayer) TouchedCols() int { return l.touched.count() }

// EnableJournal starts accumulating a touch journal: every column stepped by
// ApplyAdam stays recorded across batches until DrainJournal collects it.
// The bias is deliberately not journaled — it receives dense gradient every
// batch (Backward adds dh into gbias unconditionally), so delta consumers
// must always treat the full bias vector as changed.
func (l *ColLayer) EnableJournal() {
	if l.journal == nil {
		l.journal = newTouchSet(l.In)
	}
}

// DrainJournal returns the columns stepped since the previous drain
// (ascending) and resets the journal. Call between batches, never
// concurrently with ApplyAdam. Returns nil when no journal is enabled.
func (l *ColLayer) DrainJournal() []int32 {
	if l.journal == nil {
		return nil
	}
	ids := l.journal.ids()
	l.journal.clear()
	return ids
}

// Col returns column j of the weight matrix as float32 values. For BF16Both
// the column is expanded into buf (len >= Out); otherwise a direct view is
// returned. Read-only.
func (l *ColLayer) Col(j int, buf []float32) []float32 {
	if l.opts.Precision == BF16Both {
		buf = buf[:l.Out]
		bf16.Expand(buf, l.colsBF[j])
		return buf
	}
	return l.cols[j]
}

// Bias returns the bias vector (read-only view).
func (l *ColLayer) Bias() []float32 { return l.bias }

// ParamBytes returns the resident size of the trained parameters in bytes,
// used by the cost model's memory-traffic accounting.
func (l *ColLayer) ParamBytes() int64 {
	per := int64(4)
	if l.opts.Precision == BF16Both {
		per = 2
	}
	return int64(l.In)*int64(l.Out)*per + int64(l.Out)*4
}
