package layer

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// tks resolves the active kernel table, matching how the trainers call the
// layer hot paths (one table per stretch of work).
func tks() *simd.Kernels { return simd.Active() }

func sampleVec(rng *rand.Rand, dim, nnz int) sparse.Vector {
	used := map[int32]bool{}
	idx := make([]int32, 0, nnz)
	for len(idx) < nnz {
		i := int32(rng.IntN(dim))
		if !used[i] {
			used[i] = true
			idx = append(idx, i)
		}
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	val := make([]float32, nnz)
	for i := range val {
		val[i] = float32(rng.NormFloat64())
	}
	return sparse.Vector{Indices: idx, Values: val}
}

// denseColRef computes act(Wx+b) in float64 straight from the column views.
func denseColRef(l *ColLayer, x sparse.Vector) []float64 {
	buf := make([]float32, l.Out)
	out := make([]float64, l.Out)
	for i := 0; i < l.Out; i++ {
		out[i] = float64(l.Bias()[i])
	}
	for k, j := range x.Indices {
		col := l.Col(int(j), buf)
		for i := 0; i < l.Out; i++ {
			out[i] += float64(x.Values[k]) * float64(col[i])
		}
	}
	if l.Activation() == ReLU {
		for i := range out {
			if out[i] < 0 {
				out[i] = 0
			}
		}
	}
	return out
}

func TestColLayerForwardMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, act := range []Activation{ReLU, Linear} {
		for _, place := range []Placement{Contiguous, Scattered} {
			l := NewColLayer(40, 24, act, Options{Placement: place, Seed: 7})
			x := sampleVec(rng, 40, 6)
			h := make([]float32, 24)
			l.Forward(tks(), x, h)
			ref := denseColRef(l, x)
			for i := range h {
				if math.Abs(float64(h[i])-ref[i]) > 1e-4 {
					t.Errorf("%v/%v: h[%d] = %g, reference %g", act, place, i, h[i], ref[i])
				}
			}
		}
	}
}

func TestColLayerPlacementEquivalence(t *testing.T) {
	// Same seed, different placement: forward results must be identical.
	rng := rand.New(rand.NewPCG(3, 4))
	lc := NewColLayer(30, 16, ReLU, Options{Placement: Contiguous, Seed: 9})
	ls := NewColLayer(30, 16, ReLU, Options{Placement: Scattered, Seed: 9})
	x := sampleVec(rng, 30, 5)
	hc := make([]float32, 16)
	hs := make([]float32, 16)
	lc.Forward(tks(), x, hc)
	ls.Forward(tks(), x, hs)
	for i := range hc {
		if hc[i] != hs[i] {
			t.Fatalf("placement changed forward result at %d: %g vs %g", i, hc[i], hs[i])
		}
	}
}

func TestColLayerBF16ActRoundsActivations(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	l32 := NewColLayer(20, 8, ReLU, Options{Precision: FP32, Seed: 3})
	lbf := NewColLayer(20, 8, ReLU, Options{Precision: BF16Act, Seed: 3})
	x := sampleVec(rng, 20, 4)
	h32 := make([]float32, 8)
	hbf := make([]float32, 8)
	l32.Forward(tks(), x, h32)
	lbf.Forward(tks(), x, hbf)
	for i := range hbf {
		want := bf16.RoundFloat32(h32[i])
		if hbf[i] != want {
			t.Errorf("h[%d] = %g, want bf16-rounded %g", i, hbf[i], want)
		}
	}
}

func TestColLayerBF16BothCloseToFP32(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	l32 := NewColLayer(25, 10, Linear, Options{Precision: FP32, Seed: 11})
	lbb := NewColLayer(25, 10, Linear, Options{Precision: BF16Both, Seed: 11})
	x := sampleVec(rng, 25, 8)
	h32 := make([]float32, 10)
	hbb := make([]float32, 10)
	l32.Forward(tks(), x, h32)
	lbb.Forward(tks(), x, hbb)
	for i := range h32 {
		if math.Abs(float64(h32[i])-float64(hbb[i])) > 0.05*math.Max(1, math.Abs(float64(h32[i]))) {
			t.Errorf("BF16Both diverged at %d: %g vs %g", i, hbb[i], h32[i])
		}
	}
}

func TestColLayerBackwardAccumulatesExactGradient(t *testing.T) {
	l := NewColLayer(10, 6, Linear, Options{Seed: 1})
	x := sparse.Vector{Indices: []int32{2, 7}, Values: []float32{0.5, -1.5}}
	h := make([]float32, 6)
	l.Forward(tks(), x, h)
	dh := []float32{1, 2, 3, 4, 5, 6}
	want := append([]float32(nil), dh...)
	l.Backward(tks(), x, h, dh)
	// grad[j] must equal x_j * dh for the touched columns, zero elsewhere.
	for j := 0; j < 10; j++ {
		var xj float32
		for k, idx := range x.Indices {
			if int(idx) == j {
				xj = x.Values[k]
			}
		}
		for i := 0; i < 6; i++ {
			wantG := xj * want[i]
			if g := l.grad[j][i]; math.Abs(float64(g-wantG)) > 1e-6 {
				t.Errorf("grad[%d][%d] = %g, want %g", j, i, g, wantG)
			}
		}
	}
	if l.TouchedCols() != 2 {
		t.Errorf("TouchedCols = %d, want 2", l.TouchedCols())
	}
	// Bias gradient is dh itself.
	for i := range want {
		if l.gbias[i] != want[i] {
			t.Errorf("gbias[%d] = %g, want %g", i, l.gbias[i], want[i])
		}
	}
}

func TestColLayerReLUMasksGradient(t *testing.T) {
	l := NewColLayer(4, 3, ReLU, Options{Seed: 2})
	x := sparse.Vector{Indices: []int32{1}, Values: []float32{1}}
	h := []float32{0, 0.5, 0} // units 0 and 2 inactive
	dh := []float32{10, 20, 30}
	l.Backward(tks(), x, h, dh)
	if dh[0] != 0 || dh[2] != 0 {
		t.Errorf("inactive units not masked: dh = %v", dh)
	}
	if dh[1] != 20 {
		t.Errorf("active unit wrongly masked: dh[1] = %g", dh[1])
	}
}

func TestColLayerApplyAdamMovesOnlyTouched(t *testing.T) {
	l := NewColLayer(8, 4, Linear, Options{Seed: 5})
	before := make([][]float32, 8)
	buf := make([]float32, 4)
	for j := range before {
		before[j] = append([]float32(nil), l.Col(j, buf)...)
	}
	x := sparse.Vector{Indices: []int32{3}, Values: []float32{2}}
	h := make([]float32, 4)
	l.Forward(tks(), x, h)
	dh := []float32{1, 1, 1, 1}
	l.Backward(tks(), x, h, dh)
	l.ApplyAdam(tks(), simd.NewAdamParams(0.01, 0.9, 0.999, 1e-8, 1), 2)

	for j := 0; j < 8; j++ {
		col := l.Col(j, buf)
		changed := false
		for i := range col {
			if col[i] != before[j][i] {
				changed = true
			}
		}
		if j == 3 && !changed {
			t.Error("touched column 3 did not move")
		}
		if j != 3 && changed {
			t.Errorf("untouched column %d moved", j)
		}
	}
	if l.TouchedCols() != 0 {
		t.Error("touched set not cleared after ApplyAdam")
	}
	// Gradients must be consumed.
	for i := range l.grad[3] {
		if l.grad[3][i] != 0 {
			t.Error("gradient not zeroed after ApplyAdam")
		}
	}
}

func TestRowLayerLogitMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	l := NewRowLayer(16, 12, Options{Seed: 13})
	h := make([]float32, 16)
	for i := range h {
		h[i] = float32(rng.NormFloat64())
	}
	buf := make([]float32, 16)
	for id := int32(0); id < 12; id++ {
		want := simd.DotScalar(l.RowF32(int(id), buf), h) + l.Bias()[id]
		got := l.Logit(tks(), id, h, nil)
		if math.Abs(float64(got-want)) > 1e-4 {
			t.Errorf("Logit(%d) = %g, want %g", id, got, want)
		}
	}
}

func TestRowLayerPrecisionLogits(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	h := make([]float32, 32)
	for i := range h {
		h[i] = float32(rng.NormFloat64())
	}
	hBF := bf16.FromSlice(h)

	l32 := NewRowLayer(32, 6, Options{Precision: FP32, Seed: 15})
	lact := NewRowLayer(32, 6, Options{Precision: BF16Act, Seed: 15})
	lboth := NewRowLayer(32, 6, Options{Precision: BF16Both, Seed: 15})
	for id := int32(0); id < 6; id++ {
		ref := float64(l32.Logit(tks(), id, h, nil))
		a := float64(lact.Logit(tks(), id, h, hBF))
		b := float64(lboth.Logit(tks(), id, h, hBF))
		if math.Abs(a-ref) > 0.05*math.Max(1, math.Abs(ref)) {
			t.Errorf("BF16Act logit %d = %g, fp32 %g", id, a, ref)
		}
		if math.Abs(b-ref) > 0.1*math.Max(1, math.Abs(ref)) {
			t.Errorf("BF16Both logit %d = %g, fp32 %g", id, b, ref)
		}
	}
}

func TestRowLayerAccumulateAndAdam(t *testing.T) {
	l := NewRowLayer(8, 5, Options{Seed: 17})
	h := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	dh := make([]float32, 8)
	rowBefore := append([]float32(nil), l.RowF32(2, nil)...)

	l.Accumulate(tks(), 2, 0.5, h, nil, dh)
	// grad row = gz*h, bias grad = gz, dh = gz*W[2].
	for i := range h {
		if g := l.grad[2][i]; math.Abs(float64(g-0.5*h[i])) > 1e-6 {
			t.Errorf("grad[2][%d] = %g, want %g", i, g, 0.5*h[i])
		}
		want := 0.5 * rowBefore[i]
		if math.Abs(float64(dh[i]-want)) > 1e-6 {
			t.Errorf("dh[%d] = %g, want %g", i, dh[i], want)
		}
	}
	if l.gbias[2] != 0.5 {
		t.Errorf("gbias[2] = %g, want 0.5", l.gbias[2])
	}
	if l.TouchedRows() != 1 {
		t.Errorf("TouchedRows = %d, want 1", l.TouchedRows())
	}

	l.ApplyAdam(tks(), simd.NewAdamParams(0.01, 0.9, 0.999, 1e-8, 1), 2)
	moved := false
	row := l.RowF32(2, nil)
	for i := range row {
		if row[i] != rowBefore[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("row 2 did not move after ApplyAdam")
	}
	if l.TouchedRows() != 0 || l.gbias[2] != 0 {
		t.Error("state not cleared after ApplyAdam")
	}
}

func TestRowLayerApplyAdamAllEqualsSparseWhenAllTouched(t *testing.T) {
	mk := func() *RowLayer { return NewRowLayer(6, 9, Options{Seed: 19}) }
	a, b := mk(), mk()
	h := []float32{1, -1, 2, -2, 3, -3}
	for id := int32(0); id < 9; id++ {
		a.Accumulate(tks(), id, float32(id)*0.1, h, nil, nil)
		b.Accumulate(tks(), id, float32(id)*0.1, h, nil, nil)
	}
	p := simd.NewAdamParams(0.01, 0.9, 0.999, 1e-8, 1)
	a.ApplyAdam(tks(), p, 2)
	b.ApplyAdamAll(tks(), p, 2)
	for id := 0; id < 9; id++ {
		ra, rb := a.RowF32(id, nil), b.RowF32(id, nil)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("row %d diverged between sparse and dense Adam", id)
			}
		}
		if a.Bias()[id] != b.Bias()[id] {
			t.Fatalf("bias %d diverged", id)
		}
	}
}

func TestRowLayerForwardAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	l := NewRowLayer(10, 40, Options{Seed: 23})
	h := make([]float32, 10)
	for i := range h {
		h[i] = float32(rng.NormFloat64())
	}
	out := make([]float32, 40)
	l.ForwardAll(tks(), h, nil, out, 3)
	for id := int32(0); id < 40; id++ {
		want := l.Logit(tks(), id, h, nil)
		if out[id] != want {
			t.Errorf("ForwardAll[%d] = %g, want %g", id, out[id], want)
		}
	}
}

// TestGradientCheckEndToEnd drives a two-layer forward/backward by hand and
// verifies the accumulated analytic gradients against central finite
// differences of the sampled-softmax cross-entropy loss.
func TestGradientCheckEndToEnd(t *testing.T) {
	const (
		in     = 12
		hid    = 8
		out    = 7
		target = 3
	)
	hiddenL := NewColLayer(in, hid, Linear, Options{Seed: 25})
	outputL := NewRowLayer(hid, out, Options{Seed: 27})
	x := sparse.Vector{Indices: []int32{1, 4, 9}, Values: []float32{0.7, -1.1, 0.4}}
	active := []int32{0, 1, 2, 3, 4, 5, 6}

	loss := func() float64 {
		h := make([]float32, hid)
		hiddenL.Forward(tks(), x, h)
		logits := make([]float32, out)
		outputL.ForwardActive(tks(), active, h, nil, logits)
		maxL := float64(logits[0])
		for _, l := range logits {
			if float64(l) > maxL {
				maxL = float64(l)
			}
		}
		var z float64
		for _, l := range logits {
			z += math.Exp(float64(l) - maxL)
		}
		return -(float64(logits[target]) - maxL - math.Log(z))
	}

	// Analytic backward.
	h := make([]float32, hid)
	hiddenL.Forward(tks(), x, h)
	logits := make([]float32, out)
	outputL.ForwardActive(tks(), active, h, nil, logits)
	maxL := logits[0]
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	var z float64
	probs := make([]float32, out)
	for k, l := range logits {
		probs[k] = float32(math.Exp(float64(l - maxL)))
		z += float64(probs[k])
	}
	dh := make([]float32, hid)
	for k, id := range active {
		gz := probs[k]/float32(z) - b2f(k == target)
		outputL.Accumulate(tks(), id, gz, h, nil, dh)
	}
	hiddenL.Backward(tks(), x, h, dh)

	const eps = 1e-3
	checkGrad := func(name string, w *float32, analytic float32) {
		t.Helper()
		orig := *w
		*w = orig + eps
		lp := loss()
		*w = orig - eps
		lm := loss()
		*w = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(analytic)) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Errorf("%s: analytic %g vs numeric %g", name, analytic, numeric)
		}
	}

	// Output-layer weights (a few rows, all dims).
	for _, id := range []int{0, 3, 6} {
		for i := 0; i < hid; i += 3 {
			checkGrad("outW", &outputL.rows[id][i], outputL.grad[id][i])
		}
	}
	// Output-layer biases.
	for _, id := range []int{1, 3} {
		checkGrad("outB", &outputL.bias[id], outputL.gbias[id])
	}
	// Hidden-layer weights: only touched columns (non-zeros of x).
	for _, j := range x.Indices {
		for i := 0; i < hid; i += 2 {
			checkGrad("hidW", &hiddenL.cols[j][i], hiddenL.grad[j][i])
		}
	}
	// Hidden bias.
	for i := 0; i < hid; i += 2 {
		checkGrad("hidB", &hiddenL.bias[i], hiddenL.gbias[i])
	}
}

func b2f(b bool) float32 {
	if b {
		return 1
	}
	return 0
}

func TestSnapshotWeightsAreImmutable(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for _, prec := range []Precision{FP32, BF16Act, BF16Both} {
		for _, place := range []Placement{Contiguous, Scattered} {
			col := NewColLayer(10, 8, ReLU, Options{Precision: prec, Placement: place, Seed: 41})
			row := NewRowLayer(8, 6, Options{Precision: prec, Placement: place, Seed: 43})

			x := sampleVec(rng, 10, 4)
			h := make([]float32, 8)
			col.Forward(tks(), x, h)
			var hBF []bf16.BF16
			if prec != FP32 {
				hBF = bf16.FromSlice(h)
			}
			logits := make([]float32, 6)
			row.ForwardAll(tks(), h, hBF, logits, 1)

			colSnap := col.SnapshotWeights()
			rowSnap := row.SnapshotWeights()

			// Snapshot forward matches the live layer exactly.
			h2 := make([]float32, 8)
			colSnap.Forward(tks(), x, h2)
			logits2 := make([]float32, 6)
			rowSnap.ForwardAll(tks(), h2, hBF, logits2, 1)
			for i := range h {
				if h[i] != h2[i] {
					t.Fatalf("%v/%v: snapshot hidden[%d] = %g, live %g", prec, place, i, h2[i], h[i])
				}
			}
			for i := range logits {
				if logits[i] != logits2[i] {
					t.Fatalf("%v/%v: snapshot logit[%d] = %g, live %g", prec, place, i, logits2[i], logits[i])
				}
			}

			// Train the live layers: snapshots must not move.
			dh := make([]float32, 8)
			for i := range dh {
				dh[i] = float32(rng.NormFloat64())
			}
			col.Backward(tks(), x, h, dh)
			row.Accumulate(tks(), 2, 0.7, h, hBF, nil)
			p := simd.NewAdamParams(0.1, 0.9, 0.999, 1e-8, 1)
			col.ApplyAdam(tks(), p, 1)
			row.ApplyAdam(tks(), p, 1)

			colSnap.Forward(tks(), x, h2)
			rowSnap.ForwardAll(tks(), h2, hBF, logits2, 1)
			for i := range logits {
				if logits[i] != logits2[i] {
					t.Fatalf("%v/%v: snapshot logit[%d] moved after live training: %g -> %g",
						prec, place, i, logits[i], logits2[i])
				}
			}

			// The live view, by contrast, tracks the update.
			hLive := make([]float32, 8)
			col.ForwardView().Forward(tks(), x, hLive)
			changed := false
			for i := range hLive {
				if hLive[i] != h[i] {
					changed = true
				}
			}
			if !changed && x.Indices != nil {
				t.Errorf("%v/%v: live view did not track the weight update", prec, place)
			}
		}
	}
}

func TestTouchSet(t *testing.T) {
	ts := newTouchSet(100)
	for _, id := range []int32{0, 31, 32, 63, 64, 99} {
		ts.mark(id)
	}
	ts.mark(31) // re-mark is a no-op
	if ts.count() != 6 {
		t.Fatalf("count = %d, want 6", ts.count())
	}
	seen := map[int32]bool{}
	var mu = make(chan int32, 100)
	ts.forEachParallel(3, func(id int32) { mu <- id })
	close(mu)
	for id := range mu {
		if seen[id] {
			t.Errorf("id %d visited twice", id)
		}
		seen[id] = true
	}
	for _, id := range []int32{0, 31, 32, 63, 64, 99} {
		if !seen[id] {
			t.Errorf("id %d not visited", id)
		}
	}
	if len(seen) != 6 {
		t.Errorf("visited %d ids, want 6", len(seen))
	}
	ts.clear()
	if ts.count() != 0 {
		t.Error("clear did not empty the set")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"col zero in":  func() { NewColLayer(0, 4, ReLU, Options{}) },
		"col zero out": func() { NewColLayer(4, 0, ReLU, Options{}) },
		"row zero in":  func() { NewRowLayer(0, 4, Options{}) },
		"row zero out": func() { NewRowLayer(4, -1, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEnumStrings(t *testing.T) {
	if FP32.String() != "fp32" || BF16Act.String() != "bf16-act" || BF16Both.String() != "bf16-both" || Precision(9).String() != "unknown" {
		t.Error("Precision strings wrong")
	}
	if Contiguous.String() != "contiguous" || Scattered.String() != "scattered" || Placement(9).String() != "unknown" {
		t.Error("Placement strings wrong")
	}
	if ReLU.String() != "relu" || Linear.String() != "linear" || Activation(9).String() != "unknown" {
		t.Error("Activation strings wrong")
	}
}

func TestParamBytes(t *testing.T) {
	c := NewColLayer(10, 20, ReLU, Options{})
	if got := c.ParamBytes(); got != 10*20*4+20*4 {
		t.Errorf("ColLayer ParamBytes = %d", got)
	}
	cb := NewColLayer(10, 20, ReLU, Options{Precision: BF16Both})
	if got := cb.ParamBytes(); got != 10*20*2+20*4 {
		t.Errorf("BF16 ColLayer ParamBytes = %d", got)
	}
	r := NewRowLayer(10, 20, Options{})
	if got := r.ParamBytes(); got != 10*20*4+20*4 {
		t.Errorf("RowLayer ParamBytes = %d", got)
	}
}

func TestRowLayerForwardAllBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for _, prec := range []Precision{FP32, BF16Act, BF16Both} {
		l := NewRowLayer(12, 30, Options{Precision: prec, Seed: 53})
		w := l.ForwardView()
		const batch = 5
		hs := make([][]float32, batch)
		hBFs := make([][]bf16.BF16, batch)
		want := make([][]float32, batch)
		outs := make([][]float32, batch)
		for s := range hs {
			hs[s] = make([]float32, 12)
			for i := range hs[s] {
				hs[s][i] = float32(rng.NormFloat64())
			}
			if prec != FP32 {
				hBFs[s] = bf16.FromSlice(hs[s])
			}
			want[s] = make([]float32, 30)
			w.ForwardAll(tks(), hs[s], hBFs[s], want[s], 1)
			outs[s] = make([]float32, 30)
		}
		w.ForwardAllBatch(tks(), hs, hBFs, outs)
		for s := range outs {
			for i := range outs[s] {
				if outs[s][i] != want[s][i] {
					t.Fatalf("%v: batch[%d][%d] = %g, per-sample %g",
						prec, s, i, outs[s][i], want[s][i])
				}
			}
		}
	}
}

func TestRowLayerForwardAllBatchEmpty(t *testing.T) {
	l := NewRowLayer(4, 3, Options{Seed: 55})
	// A zero-sample batch is a no-op, not a panic.
	l.ForwardView().ForwardAllBatch(tks(), nil, nil, nil)
}
