package layer

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/slide-cpu/slide/internal/simd"
)

// touchSet is a concurrent bitset recording which weight rows/columns
// received gradient this batch, so the ADAM pass visits only the sparse
// touched subset (the p² update fraction of §2). Marking uses atomic Or so
// it is race-detector clean in every update policy.
type touchSet struct {
	words []atomic.Uint32
	n     int
}

func newTouchSet(n int) *touchSet {
	return &touchSet{words: make([]atomic.Uint32, (n+31)/32), n: n}
}

func (t *touchSet) mark(i int32) {
	w := &t.words[uint32(i)>>5]
	bit := uint32(1) << (uint32(i) & 31)
	if w.Load()&bit == 0 { // cheap read avoids contended RMW on re-marks
		w.Or(bit)
	}
}

func (t *touchSet) isSet(i int32) bool {
	return t.words[uint32(i)>>5].Load()&(uint32(1)<<(uint32(i)&31)) != 0
}

// count returns the number of marked ids.
func (t *touchSet) count() int {
	c := 0
	for i := range t.words {
		c += popcount(t.words[i].Load())
	}
	return c
}

func popcount(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func (t *touchSet) clear() {
	for i := range t.words {
		t.words[i].Store(0)
	}
}

// orFrom folds src's marked bits into t. Called between batches (after the
// gradient pass, before src is cleared), so plain word-wise OR of atomic
// loads is enough — no concurrent markers are active.
func (t *touchSet) orFrom(src *touchSet) {
	for i := range t.words {
		if bits := src.words[i].Load(); bits != 0 {
			t.words[i].Store(t.words[i].Load() | bits)
		}
	}
}

// markAll sets every bit — the dense-update case (ApplyAdamAll), where the
// whole layer changed and a journal consumer must treat every id as touched.
func (t *touchSet) markAll() {
	for i := range t.words {
		t.words[i].Store(^uint32(0))
	}
}

// ids returns the marked ids in ascending order.
func (t *touchSet) ids() []int32 {
	out := make([]int32, 0, t.count())
	for wi := range t.words {
		bits := t.words[wi].Load()
		for bits != 0 {
			b := bits & -bits
			id := int32(wi*32) + int32(trailingZeros(bits))
			if int(id) < t.n {
				out = append(out, id)
			}
			bits ^= b
		}
	}
	return out
}

// forEachParallel invokes f(id) for every marked id, splitting word ranges
// across workers. f must be safe to call concurrently for distinct ids.
func (t *touchSet) forEachParallel(workers int, f func(id int32)) {
	if workers < 1 {
		workers = 1
	}
	nw := len(t.words)
	if nw == 0 {
		return
	}
	if workers > nw {
		workers = nw
	}
	per := (nw + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, nw)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for wi := lo; wi < hi; wi++ {
				bits := t.words[wi].Load()
				for bits != 0 {
					b := bits & -bits
					id := int32(wi*32) + int32(trailingZeros(bits))
					if int(id) < t.n {
						f(id)
					}
					bits ^= b
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// forEachRange invokes f(id) for every marked id in [lo, hi), ascending.
// Partial boundary words are masked, so shards whose row ranges share a
// 32-bit word never visit each other's ids. Single-threaded per call; the
// sharded ADAM pass runs one call per shard concurrently, which is safe
// because the ranges are disjoint and reads are atomic.
func (t *touchSet) forEachRange(lo, hi int, f func(id int32)) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.n {
		hi = t.n
	}
	if lo >= hi {
		return
	}
	wLo, wHi := lo>>5, (hi-1)>>5
	for wi := wLo; wi <= wHi; wi++ {
		bits := t.words[wi].Load()
		if wi == wLo {
			bits &= ^uint32(0) << (uint32(lo) & 31)
		}
		if wi == wHi {
			if r := (uint32(hi)-1)&31 + 1; r < 32 {
				bits &= (uint32(1) << r) - 1
			}
		}
		for bits != 0 {
			b := bits & -bits
			f(int32(wi*32) + int32(trailingZeros(bits)))
			bits ^= b
		}
	}
}

func trailingZeros(x uint32) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// adamScalar applies one ADAM step to a single parameter, used for the
// per-neuron biases of the sparse output layer.
func adamScalar(w, m, v *float32, g float32, p simd.AdamParams) {
	mk := p.Beta1**m + (1-p.Beta1)*g
	vk := p.Beta2**v + (1-p.Beta2)*g*g
	*m = mk
	*v = vk
	*w -= p.CorrLR * mk / (float32(math.Sqrt(float64(vk))) + p.Eps)
}
