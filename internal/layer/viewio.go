package layer

import (
	"fmt"
	"io"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/mem"
)

// Copy-on-write snapshots and the view-level wire codecs behind snapshot
// replication. SLIDE's defining property — each step touches only the
// active-set rows — means consecutive snapshots differ in a tiny fraction
// of vectors, so:
//
//   - SnapshotWeightsCOW copies only the vectors a touch journal names and
//     shares everything else with the previous (immutable) snapshot view,
//     turning publish cost from O(model) into O(touched).
//   - SerializeView/ReadColWeights/ReadRowWeights move a full view (weights
//     and bias, no optimizer state) — the replication base payload.
//   - SerializeRowsDelta/PatchRows (and the column analogs) move just the
//     touched vectors — the replication delta payload. Patching is itself
//     copy-on-write: the patched view shares untouched vectors with the view
//     it was applied to.
//
// Sharing is sound because snapshot views are immutable by contract: live
// storage mutates only under ApplyAdam/ApplyAdamAll (journaled) and
// Deserialize (which targets a fresh layer, never one with outstanding
// views).

// SnapshotWeightsCOW deep-copies only the rows in ids (ascending, from
// DrainJournal) and shares every other row with prev. The bias vector is
// always copied whole — it is O(Out) scalars, not O(Out×In). Falls back to
// a full SnapshotWeights when prev does not match the layer's shape or
// precision. Same concurrency contract as SnapshotWeights.
func (l *RowLayer) SnapshotWeightsCOW(prev *RowWeights, ids []int32) *RowWeights {
	if prev == nil || prev.In != l.In || prev.Out != l.Out || prev.prec != l.opts.Precision {
		return l.SnapshotWeights()
	}
	w := &RowWeights{In: l.In, Out: l.Out, prec: l.opts.Precision}
	if l.opts.Precision == BF16Both {
		w.rowsBF = append([][]bf16.BF16(nil), prev.rowsBF...)
		for _, id := range ids {
			w.rowsBF[id] = append([]bf16.BF16(nil), l.rowsBF[id]...)
		}
	} else {
		w.rows = append([][]float32(nil), prev.rows...)
		for _, id := range ids {
			w.rows[id] = append([]float32(nil), l.rows[id]...)
		}
	}
	w.bias = append([]float32(nil), l.bias...)
	return w
}

// SnapshotWeightsCOW is the column-major analog: only the columns in ids are
// copied, the rest share prev's backing arrays.
func (l *ColLayer) SnapshotWeightsCOW(prev *ColWeights, ids []int32) *ColWeights {
	if prev == nil || prev.In != l.In || prev.Out != l.Out || prev.prec != l.opts.Precision || prev.act != l.act {
		return l.SnapshotWeights()
	}
	w := &ColWeights{In: l.In, Out: l.Out, prec: l.opts.Precision, act: l.act}
	if l.opts.Precision == BF16Both {
		w.colsBF = append([][]bf16.BF16(nil), prev.colsBF...)
		for _, id := range ids {
			w.colsBF[id] = append([]bf16.BF16(nil), l.colsBF[id]...)
		}
	} else {
		w.cols = append([][]float32(nil), prev.cols...)
		for _, id := range ids {
			w.cols[id] = append([]float32(nil), l.cols[id]...)
		}
	}
	w.bias = append([]float32(nil), l.bias...)
	return w
}

// maxViewDim bounds deserialized view dimensions — wire headers are read
// before allocation, and a corrupted (but CRC-passing, e.g. attacker-crafted)
// header must not provoke a multi-terabyte allocation.
const maxViewDim = 1 << 28

func checkViewDims(kind string, in, out, prec uint32) error {
	if in == 0 || out == 0 || in > maxViewDim || out > maxViewDim {
		return fmt.Errorf("layer: %s view dims %dx%d out of range", kind, in, out)
	}
	if Precision(prec) != FP32 && Precision(prec) != BF16Act && Precision(prec) != BF16Both {
		return fmt.Errorf("layer: %s view precision %d unknown", kind, prec)
	}
	return nil
}

// SerializeView writes the view's shape, weights and bias — no optimizer
// state (a replica serves, it does not train). The caller provides
// buffering.
func (w *ColWeights) SerializeView(out io.Writer) error {
	for _, v := range []uint32{uint32(w.In), uint32(w.Out), uint32(w.prec), uint32(w.act)} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	for j := 0; j < w.In; j++ {
		if err := w.writeCol(out, int32(j)); err != nil {
			return err
		}
	}
	return writeF32s(out, w.bias)
}

// ReadColWeights reconstructs a view written by SerializeView into fresh
// contiguous storage.
func ReadColWeights(r io.Reader) (*ColWeights, error) {
	var in, out, prec, act uint32
	for _, p := range []*uint32{&in, &out, &prec, &act} {
		if err := readU32(r, p); err != nil {
			return nil, fmt.Errorf("layer: reading ColWeights header: %w", err)
		}
	}
	if err := checkViewDims("ColWeights", in, out, prec); err != nil {
		return nil, err
	}
	if Activation(act) != ReLU && Activation(act) != Linear {
		return nil, fmt.Errorf("layer: ColWeights activation %d unknown", act)
	}
	w := &ColWeights{In: int(in), Out: int(out), prec: Precision(prec), act: Activation(act)}
	if w.prec == BF16Both {
		w.colsBF = freshBF16(w.In, w.Out)
		for j := 0; j < w.In; j++ {
			if err := readBF16s(r, w.colsBF[j]); err != nil {
				return nil, err
			}
		}
	} else {
		w.cols, _ = mem.Contiguous2D(w.In, w.Out)
		for j := 0; j < w.In; j++ {
			if err := readF32s(r, w.cols[j]); err != nil {
				return nil, err
			}
		}
	}
	w.bias = make([]float32, w.Out)
	if err := readF32s(r, w.bias); err != nil {
		return nil, err
	}
	return w, nil
}

// SerializeView writes the view's shape, weights and bias — no optimizer
// state.
func (w *RowWeights) SerializeView(out io.Writer) error {
	for _, v := range []uint32{uint32(w.In), uint32(w.Out), uint32(w.prec)} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	for i := 0; i < w.Out; i++ {
		if err := w.writeRow(out, int32(i)); err != nil {
			return err
		}
	}
	return writeF32s(out, w.bias)
}

// ReadRowWeights reconstructs a view written by SerializeView into fresh
// contiguous storage.
func ReadRowWeights(r io.Reader) (*RowWeights, error) {
	var in, out, prec uint32
	for _, p := range []*uint32{&in, &out, &prec} {
		if err := readU32(r, p); err != nil {
			return nil, fmt.Errorf("layer: reading RowWeights header: %w", err)
		}
	}
	if err := checkViewDims("RowWeights", in, out, prec); err != nil {
		return nil, err
	}
	w := &RowWeights{In: int(in), Out: int(out), prec: Precision(prec)}
	if w.prec == BF16Both {
		w.rowsBF = freshBF16(w.Out, w.In)
		for i := 0; i < w.Out; i++ {
			if err := readBF16s(r, w.rowsBF[i]); err != nil {
				return nil, err
			}
		}
	} else {
		w.rows, _ = mem.Contiguous2D(w.Out, w.In)
		for i := 0; i < w.Out; i++ {
			if err := readF32s(r, w.rows[i]); err != nil {
				return nil, err
			}
		}
	}
	w.bias = make([]float32, w.Out)
	if err := readF32s(r, w.bias); err != nil {
		return nil, err
	}
	return w, nil
}

// SerializeRowsDelta writes the sparse row patch for ids (ascending): the
// view header, the id count, then one [id, row, bias] record per touched
// row. Untouched rows — and their biases, which only move when the row's
// gradient does — are not on the wire at all.
func (w *RowWeights) SerializeRowsDelta(out io.Writer, ids []int32) error {
	for _, v := range []uint32{uint32(w.In), uint32(w.Out), uint32(w.prec), uint32(len(ids))} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := writeU32(out, uint32(id)); err != nil {
			return err
		}
		if err := w.writeRow(out, id); err != nil {
			return err
		}
		if err := writeF32s(out, w.bias[id:id+1]); err != nil {
			return err
		}
	}
	return nil
}

// PatchRows applies a SerializeRowsDelta payload to w, returning a new view
// that shares every untouched row with w (copy-on-write) plus the ascending
// ids the payload named (so admission validation can scan exactly the rows
// that changed). w itself is never modified. The payload's shape must match
// w's.
func (w *RowWeights) PatchRows(r io.Reader) (*RowWeights, []int32, error) {
	var in, out, prec, n uint32
	for _, p := range []*uint32{&in, &out, &prec, &n} {
		if err := readU32(r, p); err != nil {
			return nil, nil, fmt.Errorf("layer: reading rows delta header: %w", err)
		}
	}
	if int(in) != w.In || int(out) != w.Out || Precision(prec) != w.prec {
		return nil, nil, fmt.Errorf("layer: rows delta mismatch: wire %dx%d/%v, view %dx%d/%v",
			in, out, Precision(prec), w.In, w.Out, w.prec)
	}
	if n > out {
		return nil, nil, fmt.Errorf("layer: rows delta names %d rows, view has %d", n, out)
	}
	p := &RowWeights{In: w.In, Out: w.Out, prec: w.prec}
	if w.prec == BF16Both {
		p.rowsBF = append([][]bf16.BF16(nil), w.rowsBF...)
	} else {
		p.rows = append([][]float32(nil), w.rows...)
	}
	p.bias = append([]float32(nil), w.bias...)
	ids := make([]int32, 0, n)
	last := int64(-1)
	for k := uint32(0); k < n; k++ {
		var id uint32
		if err := readU32(r, &id); err != nil {
			return nil, nil, fmt.Errorf("layer: reading rows delta record %d: %w", k, err)
		}
		if int64(id) <= last || id >= out {
			return nil, nil, fmt.Errorf("layer: rows delta id %d out of order or range (prev %d, rows %d)", id, last, out)
		}
		last = int64(id)
		ids = append(ids, int32(id))
		if w.prec == BF16Both {
			row := make([]bf16.BF16, w.In)
			if err := readBF16s(r, row); err != nil {
				return nil, nil, err
			}
			p.rowsBF[id] = row
		} else {
			row := make([]float32, w.In)
			if err := readF32s(r, row); err != nil {
				return nil, nil, err
			}
			p.rows[id] = row
		}
		if err := readF32s(r, p.bias[id:id+1]); err != nil {
			return nil, nil, err
		}
	}
	return p, ids, nil
}

// SerializeColsDelta writes the sparse column patch for ids (ascending): the
// view header, the id count, one [id, column] record per touched column, then
// the full bias vector — the hidden bias receives dense gradient every batch
// (ColLayer.Backward adds dh into gbias unconditionally), so it always ships
// whole.
func (w *ColWeights) SerializeColsDelta(out io.Writer, ids []int32) error {
	for _, v := range []uint32{uint32(w.In), uint32(w.Out), uint32(w.prec), uint32(len(ids))} {
		if err := writeU32(out, v); err != nil {
			return err
		}
	}
	for _, id := range ids {
		if err := writeU32(out, uint32(id)); err != nil {
			return err
		}
		if err := w.writeCol(out, id); err != nil {
			return err
		}
	}
	return writeF32s(out, w.bias)
}

// PatchCols applies a SerializeColsDelta payload to w, returning a new view
// that shares every untouched column with w (copy-on-write) plus the
// ascending ids the payload named. w itself is never modified.
func (w *ColWeights) PatchCols(r io.Reader) (*ColWeights, []int32, error) {
	var in, out, prec, n uint32
	for _, p := range []*uint32{&in, &out, &prec, &n} {
		if err := readU32(r, p); err != nil {
			return nil, nil, fmt.Errorf("layer: reading cols delta header: %w", err)
		}
	}
	if int(in) != w.In || int(out) != w.Out || Precision(prec) != w.prec {
		return nil, nil, fmt.Errorf("layer: cols delta mismatch: wire %dx%d/%v, view %dx%d/%v",
			in, out, Precision(prec), w.In, w.Out, w.prec)
	}
	if n > in {
		return nil, nil, fmt.Errorf("layer: cols delta names %d columns, view has %d", n, in)
	}
	p := &ColWeights{In: w.In, Out: w.Out, prec: w.prec, act: w.act}
	if w.prec == BF16Both {
		p.colsBF = append([][]bf16.BF16(nil), w.colsBF...)
	} else {
		p.cols = append([][]float32(nil), w.cols...)
	}
	ids := make([]int32, 0, n)
	last := int64(-1)
	for k := uint32(0); k < n; k++ {
		var id uint32
		if err := readU32(r, &id); err != nil {
			return nil, nil, fmt.Errorf("layer: reading cols delta record %d: %w", k, err)
		}
		if int64(id) <= last || id >= in {
			return nil, nil, fmt.Errorf("layer: cols delta id %d out of order or range (prev %d, cols %d)", id, last, in)
		}
		last = int64(id)
		ids = append(ids, int32(id))
		if w.prec == BF16Both {
			col := make([]bf16.BF16, w.Out)
			if err := readBF16s(r, col); err != nil {
				return nil, nil, err
			}
			p.colsBF[id] = col
		} else {
			col := make([]float32, w.Out)
			if err := readF32s(r, col); err != nil {
				return nil, nil, err
			}
			p.cols[id] = col
		}
	}
	p.bias = make([]float32, w.Out)
	if err := readF32s(r, p.bias); err != nil {
		return nil, nil, err
	}
	return p, ids, nil
}

func (w *RowWeights) writeRow(out io.Writer, id int32) error {
	if w.prec == BF16Both {
		return writeBF16s(out, w.rowsBF[id])
	}
	return writeF32s(out, w.rows[id])
}

func (w *ColWeights) writeCol(out io.Writer, id int32) error {
	if w.prec == BF16Both {
		return writeBF16s(out, w.colsBF[id])
	}
	return writeF32s(out, w.cols[id])
}

// freshBF16 allocates an nVec×vecLen bfloat16 matrix in one backing block.
func freshBF16(nVec, vecLen int) [][]bf16.BF16 {
	backing := make([]bf16.BF16, nVec*vecLen)
	views := make([][]bf16.BF16, nVec)
	for i := range views {
		views[i] = backing[i*vecLen : (i+1)*vecLen : (i+1)*vecLen]
	}
	return views
}
