// Package layer implements the two layer kinds of the SLIDE network with the
// paper's optimized (and deliberately de-optimized) storage layouts:
//
//   - ColLayer — the hidden layer. Its weight matrix is kept in
//     column-major order so that the sparse-input × dense-output product of
//     Algorithm 2 walks contiguous memory (§4.3.2, case 2).
//   - RowLayer — the wide output layer. Its weight matrix is kept in
//     row-major order so that the dense-input × sparse-output product of
//     Algorithm 1 reduces each active neuron to one contiguous dot product
//     (§4.3.2, case 1). By Lemma 1, the backward pass of each layer reuses
//     the same layout for the transposed product.
//
// Each layer supports the paper's three precision modes (§4.4) and both
// parameter placements (§4.1): one contiguous block per layer (optimized) or
// per-vector scattered allocations (naive SLIDE).
package layer

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/mem"
)

// Precision selects the §4.4 quantization mode.
type Precision int

const (
	// FP32 trains entirely in float32 ("Without BF16" in Table 3).
	FP32 Precision = iota
	// BF16Act keeps parameters in FP32 but stores/consumes activations in
	// bfloat16 ("BF16 only for activations").
	BF16Act
	// BF16Both stores weights and activations in bfloat16, with FP32 ADAM
	// moments ("BF16 for both activations and weights").
	BF16Both
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "fp32"
	case BF16Act:
		return "bf16-act"
	case BF16Both:
		return "bf16-both"
	default:
		return "unknown"
	}
}

// Placement selects the §4.1 parameter memory layout.
type Placement int

const (
	// Contiguous reserves one block per layer (optimized SLIDE).
	Contiguous Placement = iota
	// Scattered allocates every weight vector independently (naive SLIDE).
	Scattered
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case Contiguous:
		return "contiguous"
	case Scattered:
		return "scattered"
	default:
		return "unknown"
	}
}

// Activation selects the layer non-linearity.
type Activation int

const (
	// ReLU is used by the classification hidden layers.
	ReLU Activation = iota
	// Linear (identity) is used by the word2vec embedding layer.
	Linear
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ReLU:
		return "relu"
	case Linear:
		return "linear"
	default:
		return "unknown"
	}
}

// Options configures layer construction.
type Options struct {
	Precision Precision
	Placement Placement
	// Locked replaces HOGWILD's benign-race gradient accumulation with
	// striped mutexes. Slower, but clean under the Go race detector; used
	// by -race tests and available to users who want defined behaviour.
	Locked bool
	// Seed drives weight initialization.
	Seed uint64
}

// gradStripes is the number of mutex stripes guarding gradient rows/columns
// in Locked mode.
const gradStripes = 256

// locks is the striped-mutex set shared by both layer kinds.
type locks struct {
	enabled bool
	stripes [gradStripes]sync.Mutex
	bias    sync.Mutex
}

func (l *locks) lockRow(i int32) {
	if l.enabled {
		l.stripes[uint32(i)%gradStripes].Lock()
	}
}

func (l *locks) unlockRow(i int32) {
	if l.enabled {
		l.stripes[uint32(i)%gradStripes].Unlock()
	}
}

func (l *locks) lockBias() {
	if l.enabled {
		l.bias.Lock()
	}
}

func (l *locks) unlockBias() {
	if l.enabled {
		l.bias.Unlock()
	}
}

// vectors2D builds an nVec×vecLen float32 matrix in the requested placement.
func vectors2D(nVec, vecLen int, p Placement) [][]float32 {
	switch p {
	case Contiguous:
		views, _ := mem.Contiguous2D(nVec, vecLen)
		return views
	case Scattered:
		views, _ := mem.Scattered2D(nVec, vecLen)
		return views
	default:
		panic(fmt.Sprintf("layer: unknown placement %d", p))
	}
}

// vectors2DBF16 is vectors2D for bfloat16 storage.
func vectors2DBF16(nVec, vecLen int, p Placement) [][]bf16.BF16 {
	views := make([][]bf16.BF16, nVec)
	if p == Contiguous {
		backing := make([]bf16.BF16, nVec*vecLen)
		for i := range views {
			views[i] = backing[i*vecLen : (i+1)*vecLen : (i+1)*vecLen]
		}
		return views
	}
	for i := range views {
		views[i] = make([]bf16.BF16, vecLen)
	}
	return views
}

// initGaussian fills the weight vectors with N(0, scale²) values from a
// deterministic PCG stream; vector i always receives the same values
// regardless of placement or precision, so layout/precision ablations start
// from identical (up to rounding) parameters.
func initGaussian(vecs [][]float32, scale float64, seed uint64) {
	for i, v := range vecs {
		rng := rand.New(rand.NewPCG(seed, uint64(i)))
		for j := range v {
			v[j] = float32(rng.NormFloat64() * scale)
		}
	}
}

func initGaussianBF16(vecs [][]bf16.BF16, scale float64, seed uint64) {
	for i, v := range vecs {
		rng := rand.New(rand.NewPCG(seed, uint64(i)))
		for j := range v {
			v[j] = bf16.FromFloat32(float32(rng.NormFloat64() * scale))
		}
	}
}
