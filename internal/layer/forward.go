package layer

import (
	"sync"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/mem"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Read-only forward views. The forward-pass math for both layer kinds lives
// on ColWeights/RowWeights — parameter storage plus the forward kernels,
// nothing mutable. A view comes in two flavors:
//
//   - ForwardView aliases the live training storage. The training loop and
//     the single-threaded Model inference path consume this one; it sees
//     every ApplyAdam update and inherits the layer's concurrency contract
//     (no forward concurrent with weight updates).
//   - SnapshotWeights deep-copies the parameters into fresh contiguous
//     storage. Predictor snapshots consume this one: it never changes after
//     construction, so any number of goroutines may forward through it while
//     training continues on the source layer.
//
// ADAM moments, gradients, and the touched set are training state and are
// never part of a view.

// ColWeights is a read-only forward view of a ColLayer (column-major hidden
// layer): weights, bias, activation, precision.
type ColWeights struct {
	// In is the input (sparse feature) dimension; Out the neuron count.
	In, Out int

	prec   Precision
	act    Activation
	cols   [][]float32
	colsBF [][]bf16.BF16
	bias   []float32
}

// ForwardView returns a view aliasing the layer's live storage. It reflects
// every subsequent weight update; the caller must not forward through it
// concurrently with ApplyAdam.
func (l *ColLayer) ForwardView() *ColWeights { return &l.fwd }

// SnapshotWeights deep-copies the current parameters into an immutable
// contiguous view. Do not call concurrently with ApplyAdam (same contract
// as Serialize); the returned view is safe for unlimited concurrent reads
// afterwards.
func (l *ColLayer) SnapshotWeights() *ColWeights {
	w := &ColWeights{In: l.In, Out: l.Out, prec: l.opts.Precision, act: l.act}
	if l.opts.Precision == BF16Both {
		w.colsBF = copy2DBF16(l.colsBF)
	} else {
		w.cols = copy2D(l.cols)
	}
	w.bias = append([]float32(nil), l.bias...)
	return w
}

// Precision returns the storage precision of the view.
func (w *ColWeights) Precision() Precision { return w.prec }

// Forward computes h = act(Wx + b) into h (len Out) using the resolved
// kernel table ks. Under the BF16 activation modes the result is
// additionally rounded through bfloat16, so h carries exactly the values a
// hardware BF16 pipeline would produce.
func (w *ColWeights) Forward(ks *simd.Kernels, x sparse.Vector, h []float32) {
	if len(h) != w.Out {
		panic("layer: ColWeights.Forward output size mismatch")
	}
	copy(h, w.bias)
	if w.prec == BF16Both {
		for k, j := range x.Indices {
			ks.AxpyBF16(x.Values[k], w.colsBF[j], h)
		}
	} else {
		for k, j := range x.Indices {
			ks.ScaleAccum(x.Values[k], w.cols[j], h)
		}
	}
	if w.act == ReLU {
		for i := range h {
			if h[i] < 0 {
				h[i] = 0
			}
		}
	}
	if w.prec != FP32 {
		ks.RoundBF16(h)
	}
}

// RowWeights is a read-only forward view of a RowLayer (row-major wide
// layer): weights, bias, precision.
type RowWeights struct {
	// In is the input (hidden) dimension; Out the neuron/label count.
	In, Out int

	prec   Precision
	rows   [][]float32
	rowsBF [][]bf16.BF16
	bias   []float32
}

// ForwardView returns a view aliasing the layer's live storage. It reflects
// every subsequent weight update; the caller must not forward through it
// concurrently with ApplyAdam.
func (l *RowLayer) ForwardView() *RowWeights { return &l.fwd }

// SnapshotWeights deep-copies the current parameters into an immutable
// contiguous view. Do not call concurrently with ApplyAdam; the returned
// view is safe for unlimited concurrent reads afterwards.
func (l *RowLayer) SnapshotWeights() *RowWeights {
	w := &RowWeights{In: l.In, Out: l.Out, prec: l.opts.Precision}
	if l.opts.Precision == BF16Both {
		w.rowsBF = copy2DBF16(l.rowsBF)
	} else {
		w.rows = copy2D(l.rows)
	}
	w.bias = append([]float32(nil), l.bias...)
	return w
}

// Precision returns the storage precision of the view.
func (w *RowWeights) Precision() Precision { return w.prec }

// Logit computes neuron id's pre-activation for the dense input h using the
// resolved kernel table ks. hBF is the bfloat16 rendering of h, required
// (non-nil) under the BF16 modes and ignored under FP32.
func (w *RowWeights) Logit(ks *simd.Kernels, id int32, h []float32, hBF []bf16.BF16) float32 {
	switch w.prec {
	case BF16Act:
		return ks.DotBF16F32(hBF, w.rows[id]) + w.bias[id]
	case BF16Both:
		return ks.DotBF16(w.rowsBF[id], hBF) + w.bias[id]
	default:
		return ks.Dot(w.rows[id], h) + w.bias[id]
	}
}

// ForwardActive fills logits[k] with Logit(active[k]) for each active
// neuron — one fused DotManyBias call over the whole active set, so the
// per-row cost is a direct dot-product invocation with no dispatch.
// Independent dots per row remain the inner structure: BenchmarkKernelDot4
// shows the intrinsics-style four-row register blocking (simd.Dot4) is
// slower than independent dots under the Go compiler.
func (w *RowWeights) ForwardActive(ks *simd.Kernels, active []int32, h []float32, hBF []bf16.BF16, logits []float32) {
	if len(logits) < len(active) {
		panic("layer: ForwardActive logits buffer too short")
	}
	switch w.prec {
	case BF16Act:
		ks.DotManyBiasBF16Act(w.rows, w.bias, active, hBF, logits)
	case BF16Both:
		ks.DotManyBiasBF16(w.rowsBF, w.bias, active, hBF, logits)
	default:
		ks.DotManyBias(w.rows, w.bias, active, h, logits)
	}
}

// ForwardAll computes every neuron's logit into out (len Out) — the full
// softmax pass used for evaluation and by the dense baseline. Rows are
// tiled across workers; workers <= 1 runs inline (the serving path, where
// parallelism comes from concurrent calls rather than per-call fan-out).
func (w *RowWeights) ForwardAll(ks *simd.Kernels, h []float32, hBF []bf16.BF16, out []float32, workers int) {
	if len(out) != w.Out {
		panic("layer: ForwardAll output size mismatch")
	}
	if workers <= 1 {
		for i := range out {
			out[i] = w.Logit(ks, int32(i), h, hBF)
		}
		return
	}
	per := (w.Out + workers - 1) / workers
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		lo := wk * per
		hi := min(lo+per, w.Out)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = w.Logit(ks, int32(i), h, hBF)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ForwardAllBatch computes every neuron's logit for a coalesced batch of
// dense inputs: outs[s][i] = Logit(i, hs[s]). The loops run row-outer,
// sample-inner, so each weight row is loaded from memory once per batch
// instead of once per sample — the micro-batching bandwidth amortization
// serving batches exist for (on output layers larger than cache the weight
// stream dominates the forward pass). Every (row, sample) logit is computed
// by the same kernel call Logit makes, so each sample's scores are
// bit-identical to a per-sample ForwardAll over the same weights.
//
// hBFs mirrors hs under the BF16 modes (ignored under FP32). The walk runs
// on the caller's goroutine: the serving pipeline parallelizes across
// concurrent batch calls, not within one.
func (w *RowWeights) ForwardAllBatch(ks *simd.Kernels, hs [][]float32, hBFs [][]bf16.BF16, outs [][]float32) {
	if len(outs) != len(hs) {
		panic("layer: ForwardAllBatch batch size mismatch")
	}
	for s := range outs {
		if len(outs[s]) != w.Out {
			panic("layer: ForwardAllBatch output size mismatch")
		}
	}
	w.forwardRowRange(ks, hs, hBFs, outs, 0, w.Out)
}

// ForwardAllBatchRange is ForwardAllBatch restricted to rows [lo, hi) —
// the per-shard slice of the scatter-gather serving path. Shards call it
// concurrently over disjoint ranges into shared outs; each (row, sample)
// logit is the same kernel call ForwardAllBatch makes, so the assembled
// score vector is bit-identical to the unsharded walk.
func (w *RowWeights) ForwardAllBatchRange(ks *simd.Kernels, hs [][]float32, hBFs [][]bf16.BF16, outs [][]float32, lo, hi int) {
	if len(outs) != len(hs) {
		panic("layer: ForwardAllBatchRange batch size mismatch")
	}
	if lo < 0 || hi > w.Out || lo > hi {
		panic("layer: ForwardAllBatchRange row range out of bounds")
	}
	w.forwardRowRange(ks, hs, hBFs, outs, lo, hi)
}

// forwardRowRange fills outs[s][i] for i in [lo, hi) and every sample s —
// the row-outer inner loop of ForwardAllBatch, with the precision switch
// hoisted out of both loops.
func (w *RowWeights) forwardRowRange(ks *simd.Kernels, hs [][]float32, hBFs [][]bf16.BF16, outs [][]float32, lo, hi int) {
	switch w.prec {
	case BF16Act:
		for i := lo; i < hi; i++ {
			row, b := w.rows[i], w.bias[i]
			for s := range outs {
				outs[s][i] = ks.DotBF16F32(hBFs[s], row) + b
			}
		}
	case BF16Both:
		for i := lo; i < hi; i++ {
			row, b := w.rowsBF[i], w.bias[i]
			for s := range outs {
				outs[s][i] = ks.DotBF16(row, hBFs[s]) + b
			}
		}
	default:
		for i := lo; i < hi; i++ {
			row, b := w.rows[i], w.bias[i]
			for s := range outs {
				outs[s][i] = ks.Dot(row, hs[s]) + b
			}
		}
	}
}

// Bias returns a read-only view of the bias vector. The quantized serving
// tier carries biases in float32 alongside its packed rows, so quantization
// reads them straight from the source view.
func (w *RowWeights) Bias() []float32 { return w.bias }

// RowF32 returns neuron i's weight vector as float32. For BF16Both it is
// expanded into buf (len >= In); otherwise a direct view is returned.
// Read-only; used by the LSH rebuild to hash current weights.
func (w *RowWeights) RowF32(i int, buf []float32) []float32 {
	if w.prec == BF16Both {
		buf = buf[:w.In]
		bf16.Expand(buf, w.rowsBF[i])
		return buf
	}
	return w.rows[i]
}

// copy2D deep-copies a weight matrix into one contiguous block (snapshots
// always use the optimized placement regardless of the source layout).
func copy2D(src [][]float32) [][]float32 {
	if len(src) == 0 {
		return nil
	}
	vecLen := len(src[0])
	views, _ := mem.Contiguous2D(len(src), vecLen)
	for i, v := range src {
		copy(views[i], v)
	}
	return views
}

func copy2DBF16(src [][]bf16.BF16) [][]bf16.BF16 {
	if len(src) == 0 {
		return nil
	}
	vecLen := len(src[0])
	backing := make([]bf16.BF16, len(src)*vecLen)
	views := make([][]bf16.BF16, len(src))
	for i, v := range src {
		views[i] = backing[i*vecLen : (i+1)*vecLen : (i+1)*vecLen]
		copy(views[i], v)
	}
	return views
}
