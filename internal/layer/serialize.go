package layer

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/slide-cpu/slide/internal/bf16"
)

// Serialization of layer parameters and optimizer state. The format is a
// fixed field order in little-endian; the network-level header carries
// versioning. Gradients are transient and not persisted — save between
// batches, not mid-batch.

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader, v *uint32) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	*v = binary.LittleEndian.Uint32(b[:])
	return nil
}

func writeF32s(w io.Writer, s []float32) error {
	var b [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readF32s(r io.Reader, s []float32) error {
	var b [4]byte
	for i := range s {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		s[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
	}
	return nil
}

func writeBF16s(w io.Writer, s []bf16.BF16) error {
	var b [2]byte
	for _, v := range s {
		binary.LittleEndian.PutUint16(b[:], v.Bits())
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readBF16s(r io.Reader, s []bf16.BF16) error {
	var b [2]byte
	for i := range s {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		s[i] = bf16.FromBits(binary.LittleEndian.Uint16(b[:]))
	}
	return nil
}

// Serialize writes the layer's dimensions, precision, weights, biases and
// ADAM moments. The caller provides buffering (one bufio around the whole
// stream); the layer writes exactly its own bytes.
func (l *ColLayer) Serialize(bw io.Writer) error {
	for _, v := range []uint32{uint32(l.In), uint32(l.Out), uint32(l.opts.Precision)} {
		if err := writeU32(bw, v); err != nil {
			return err
		}
	}
	for j := 0; j < l.In; j++ {
		if l.opts.Precision == BF16Both {
			if err := writeBF16s(bw, l.colsBF[j]); err != nil {
				return err
			}
		} else {
			if err := writeF32s(bw, l.cols[j]); err != nil {
				return err
			}
		}
	}
	for j := 0; j < l.In; j++ {
		if err := writeF32s(bw, l.m[j]); err != nil {
			return err
		}
		if err := writeF32s(bw, l.v[j]); err != nil {
			return err
		}
	}
	for _, s := range [][]float32{l.bias, l.mb, l.vb} {
		if err := writeF32s(bw, s); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize restores state written by Serialize into a layer constructed
// with matching dimensions and precision. It reads exactly the bytes
// Serialize wrote, so multiple layers can share one stream.
func (l *ColLayer) Deserialize(br io.Reader) error {
	var in, out, prec uint32
	for _, p := range []*uint32{&in, &out, &prec} {
		if err := readU32(br, p); err != nil {
			return fmt.Errorf("layer: reading ColLayer header: %w", err)
		}
	}
	if int(in) != l.In || int(out) != l.Out || Precision(prec) != l.opts.Precision {
		return fmt.Errorf("layer: ColLayer mismatch: file %dx%d/%v, layer %dx%d/%v",
			in, out, Precision(prec), l.In, l.Out, l.opts.Precision)
	}
	for j := 0; j < l.In; j++ {
		if l.opts.Precision == BF16Both {
			if err := readBF16s(br, l.colsBF[j]); err != nil {
				return err
			}
		} else {
			if err := readF32s(br, l.cols[j]); err != nil {
				return err
			}
		}
	}
	for j := 0; j < l.In; j++ {
		if err := readF32s(br, l.m[j]); err != nil {
			return err
		}
		if err := readF32s(br, l.v[j]); err != nil {
			return err
		}
	}
	for _, s := range [][]float32{l.bias, l.mb, l.vb} {
		if err := readF32s(br, s); err != nil {
			return err
		}
	}
	return nil
}

// Serialize writes the layer's dimensions, precision, weights, biases and
// ADAM moments. See ColLayer.Serialize for the buffering contract.
func (l *RowLayer) Serialize(bw io.Writer) error {
	for _, v := range []uint32{uint32(l.In), uint32(l.Out), uint32(l.opts.Precision)} {
		if err := writeU32(bw, v); err != nil {
			return err
		}
	}
	for i := 0; i < l.Out; i++ {
		if l.opts.Precision == BF16Both {
			if err := writeBF16s(bw, l.rowsBF[i]); err != nil {
				return err
			}
		} else {
			if err := writeF32s(bw, l.rows[i]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < l.Out; i++ {
		if err := writeF32s(bw, l.m[i]); err != nil {
			return err
		}
		if err := writeF32s(bw, l.v[i]); err != nil {
			return err
		}
	}
	for _, s := range [][]float32{l.bias, l.mb, l.vb} {
		if err := writeF32s(bw, s); err != nil {
			return err
		}
	}
	return nil
}

// Deserialize restores state written by Serialize into a layer constructed
// with matching dimensions and precision. Reads exactly the bytes
// Serialize wrote.
func (l *RowLayer) Deserialize(br io.Reader) error {
	var in, out, prec uint32
	for _, p := range []*uint32{&in, &out, &prec} {
		if err := readU32(br, p); err != nil {
			return fmt.Errorf("layer: reading RowLayer header: %w", err)
		}
	}
	if int(in) != l.In || int(out) != l.Out || Precision(prec) != l.opts.Precision {
		return fmt.Errorf("layer: RowLayer mismatch: file %dx%d/%v, layer %dx%d/%v",
			in, out, Precision(prec), l.In, l.Out, l.opts.Precision)
	}
	for i := 0; i < l.Out; i++ {
		if l.opts.Precision == BF16Both {
			if err := readBF16s(br, l.rowsBF[i]); err != nil {
				return err
			}
		} else {
			if err := readF32s(br, l.rows[i]); err != nil {
				return err
			}
		}
	}
	for i := 0; i < l.Out; i++ {
		if err := readF32s(br, l.m[i]); err != nil {
			return err
		}
		if err := readF32s(br, l.v[i]); err != nil {
			return err
		}
	}
	for _, s := range [][]float32{l.bias, l.mb, l.vb} {
		if err := readF32s(br, s); err != nil {
			return err
		}
	}
	return nil
}
