package layer

import (
	"errors"
	"fmt"
	"math"

	"github.com/slide-cpu/slide/internal/health"
)

// Finite-weight validation for the quarantine layer. Snapshot publication
// and replica delta admission scan weight views for NaN/Inf before a
// version is allowed to serve: a sampled (strided) full scan on base
// snapshots — cheap, and biases are always scanned completely because
// poisoned gradients reach every bias they touch — and an exact scan on
// delta-touched rows, where the row list is known and small.

// ErrNonFinite is the sentinel every finite-scan failure wraps; the
// quarantine paths test errors.Is against it.
var ErrNonFinite = errors.New("layer: non-finite parameter")

// CheckFinite scans the bias completely and every stride-th weight vector
// completely (stride <= 1 scans everything). Deterministic: the visited
// set depends only on stride and the layer shape.
func (w *ColWeights) CheckFinite(stride int) error {
	if i := health.FirstNonFinite32(w.bias); i >= 0 {
		return fmt.Errorf("%w: hidden bias[%d]", ErrNonFinite, i)
	}
	if stride < 1 {
		stride = 1
	}
	if w.colsBF != nil {
		for j := 0; j < len(w.colsBF); j += stride {
			if k := health.FirstNonFiniteBF16(w.colsBF[j]); k >= 0 {
				return fmt.Errorf("%w: hidden col %d element %d", ErrNonFinite, j, k)
			}
		}
		return nil
	}
	for j := 0; j < len(w.cols); j += stride {
		if k := health.FirstNonFinite32(w.cols[j]); k >= 0 {
			return fmt.Errorf("%w: hidden col %d element %d", ErrNonFinite, j, k)
		}
	}
	return nil
}

// CheckFiniteCols scans exactly the named columns (plus the full bias) —
// the delta-admission path, where ids is the touch journal.
func (w *ColWeights) CheckFiniteCols(ids []int32) error {
	if i := health.FirstNonFinite32(w.bias); i >= 0 {
		return fmt.Errorf("%w: hidden bias[%d]", ErrNonFinite, i)
	}
	for _, j := range ids {
		if int(j) >= len(w.cols) && int(j) >= len(w.colsBF) {
			continue
		}
		if w.colsBF != nil {
			if k := health.FirstNonFiniteBF16(w.colsBF[j]); k >= 0 {
				return fmt.Errorf("%w: hidden col %d element %d", ErrNonFinite, j, k)
			}
		} else if k := health.FirstNonFinite32(w.cols[j]); k >= 0 {
			return fmt.Errorf("%w: hidden col %d element %d", ErrNonFinite, j, k)
		}
	}
	return nil
}

// CheckFinite scans the bias completely and every stride-th row completely
// (stride <= 1 scans everything).
func (w *RowWeights) CheckFinite(stride int) error {
	if i := health.FirstNonFinite32(w.bias); i >= 0 {
		return fmt.Errorf("%w: bias[%d]", ErrNonFinite, i)
	}
	if stride < 1 {
		stride = 1
	}
	if w.rowsBF != nil {
		for i := 0; i < len(w.rowsBF); i += stride {
			if k := health.FirstNonFiniteBF16(w.rowsBF[i]); k >= 0 {
				return fmt.Errorf("%w: row %d element %d", ErrNonFinite, i, k)
			}
		}
		return nil
	}
	for i := 0; i < len(w.rows); i += stride {
		if k := health.FirstNonFinite32(w.rows[i]); k >= 0 {
			return fmt.Errorf("%w: row %d element %d", ErrNonFinite, i, k)
		}
	}
	return nil
}

// CheckFiniteRows scans exactly the named rows (plus their biases and the
// full bias vector) — the delta-admission path.
func (w *RowWeights) CheckFiniteRows(ids []int32) error {
	if i := health.FirstNonFinite32(w.bias); i >= 0 {
		return fmt.Errorf("%w: bias[%d]", ErrNonFinite, i)
	}
	for _, i := range ids {
		if int(i) >= len(w.rows) && int(i) >= len(w.rowsBF) {
			continue
		}
		if w.rowsBF != nil {
			if k := health.FirstNonFiniteBF16(w.rowsBF[i]); k >= 0 {
				return fmt.Errorf("%w: row %d element %d", ErrNonFinite, i, k)
			}
		} else if k := health.FirstNonFinite32(w.rows[i]); k >= 0 {
			return fmt.Errorf("%w: row %d element %d", ErrNonFinite, i, k)
		}
	}
	return nil
}

// PoisonBias overwrites hidden bias i with v. Fault injection only (the
// faultinject nan:<row>/inf:<row> actions): a poisoned hidden bias feeds
// every downstream unit, so the very next forward pass produces non-finite
// logits for every sample regardless of which rows LSH sampling selects —
// the deterministic way to drill the detect → rollback loop.
func (l *ColLayer) PoisonBias(i int, v float32) {
	if len(l.bias) == 0 {
		return
	}
	if i < 0 || i >= len(l.bias) {
		i = 0
	}
	l.bias[i] = v
}

// PoisonBias overwrites output bias i with v. Fault injection only.
func (l *RowLayer) PoisonBias(i int, v float32) {
	if len(l.bias) == 0 {
		return
	}
	if i < 0 || i >= len(l.bias) {
		i = 0
	}
	l.bias[i] = v
}

// PoisonValue maps a faultinject poison action name to the value planted.
func PoisonValue(action string) float32 {
	if action == "inf" {
		return float32(math.Inf(1))
	}
	return float32(math.NaN())
}
