package layer

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/simd"
)

// trainCol pushes a few gradient steps through a ColLayer so its weights
// and moments are non-trivial before serialization.
func trainCol(l *ColLayer, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 1))
	h := make([]float32, l.Out)
	dh := make([]float32, l.Out)
	for step := 1; step <= 4; step++ {
		x := sampleVec(rng, l.In, 3)
		l.Forward(tks(), x, h)
		for i := range dh {
			dh[i] = float32(rng.NormFloat64())
		}
		l.Backward(tks(), x, h, dh)
		l.ApplyAdam(tks(), simd.NewAdamParams(0.01, 0.9, 0.999, 1e-8, int64(step)), 1)
	}
}

func trainRow(l *RowLayer, seed uint64) {
	rng := rand.New(rand.NewPCG(seed, 2))
	h := make([]float32, l.In)
	for step := 1; step <= 4; step++ {
		for i := range h {
			h[i] = float32(rng.NormFloat64())
		}
		var hBF []bf16.BF16
		if l.Options().Precision != FP32 {
			hBF = bf16.FromSlice(h)
		}
		id := int32(rng.IntN(l.Out))
		l.Accumulate(tks(), id, float32(rng.NormFloat64()), h, hBF, nil)
		l.ApplyAdam(tks(), simd.NewAdamParams(0.01, 0.9, 0.999, 1e-8, int64(step)), 1)
	}
}

func TestColLayerSerializeRoundTrip(t *testing.T) {
	for _, prec := range []Precision{FP32, BF16Both} {
		src := NewColLayer(12, 8, ReLU, Options{Precision: prec, Seed: 3})
		trainCol(src, 7)
		var buf bytes.Buffer
		if err := src.Serialize(&buf); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		dst := NewColLayer(12, 8, ReLU, Options{Precision: prec, Seed: 999}) // different init
		if err := dst.Deserialize(&buf); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		// Forward results must match bit-exactly.
		rng := rand.New(rand.NewPCG(5, 6))
		x := sampleVec(rng, 12, 4)
		h1 := make([]float32, 8)
		h2 := make([]float32, 8)
		src.Forward(tks(), x, h1)
		dst.Forward(tks(), x, h2)
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("%v: forward diverged after round trip at %d", prec, i)
			}
		}
		// Moments must round-trip too (training continuation fidelity).
		for j := 0; j < 12; j++ {
			for i := 0; i < 8; i++ {
				if src.m[j][i] != dst.m[j][i] || src.v[j][i] != dst.v[j][i] {
					t.Fatalf("%v: ADAM moments diverged at [%d][%d]", prec, j, i)
				}
			}
		}
	}
}

func TestRowLayerSerializeRoundTrip(t *testing.T) {
	for _, prec := range []Precision{FP32, BF16Both} {
		src := NewRowLayer(10, 6, Options{Precision: prec, Seed: 11})
		trainRow(src, 13)
		var buf bytes.Buffer
		if err := src.Serialize(&buf); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		dst := NewRowLayer(10, 6, Options{Precision: prec, Seed: 777})
		if err := dst.Deserialize(&buf); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		h := make([]float32, 10)
		for i := range h {
			h[i] = float32(i) * 0.1
		}
		var hBF []bf16.BF16
		if prec != FP32 {
			hBF = bf16.FromSlice(h)
		}
		for id := int32(0); id < 6; id++ {
			if src.Logit(tks(), id, h, hBF) != dst.Logit(tks(), id, h, hBF) {
				t.Fatalf("%v: logit %d diverged after round trip", prec, id)
			}
		}
	}
}

func TestSerializeMismatchErrors(t *testing.T) {
	src := NewColLayer(8, 4, ReLU, Options{Seed: 1})
	var buf bytes.Buffer
	if err := src.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	// Wrong dimensions.
	wrongDim := NewColLayer(8, 5, ReLU, Options{Seed: 1})
	if err := wrongDim.Deserialize(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Wrong precision.
	wrongPrec := NewColLayer(8, 4, ReLU, Options{Precision: BF16Both, Seed: 1})
	if err := wrongPrec.Deserialize(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("precision mismatch accepted")
	}
	// Truncated payload.
	half := buf.Bytes()[:buf.Len()/2]
	okDim := NewColLayer(8, 4, ReLU, Options{Seed: 1})
	if err := okDim.Deserialize(bytes.NewReader(half)); err == nil {
		t.Error("truncated payload accepted")
	}

	row := NewRowLayer(8, 4, Options{Seed: 1})
	var rbuf bytes.Buffer
	if err := row.Serialize(&rbuf); err != nil {
		t.Fatal(err)
	}
	wrongRow := NewRowLayer(9, 4, Options{Seed: 1})
	if err := wrongRow.Deserialize(bytes.NewReader(rbuf.Bytes())); err == nil {
		t.Error("row dimension mismatch accepted")
	}
}

// TestSerializeStreamComposition verifies the exact-bytes contract: two
// layers written back to back must read back from the same stream.
func TestSerializeStreamComposition(t *testing.T) {
	a := NewColLayer(6, 4, Linear, Options{Seed: 21})
	b := NewRowLayer(4, 9, Options{Seed: 22})
	trainCol(a, 23)
	trainRow(b, 24)
	var buf bytes.Buffer
	if err := a.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	a2 := NewColLayer(6, 4, Linear, Options{Seed: 31})
	b2 := NewRowLayer(4, 9, Options{Seed: 32})
	r := bytes.NewReader(buf.Bytes())
	if err := a2.Deserialize(r); err != nil {
		t.Fatal(err)
	}
	if err := b2.Deserialize(r); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("%d unread bytes after composed deserialize", r.Len())
	}
	h := []float32{1, 2, 3, 4}
	for id := int32(0); id < 9; id++ {
		if b.Logit(tks(), id, h, nil) != b2.Logit(tks(), id, h, nil) {
			t.Fatalf("row layer diverged at %d", id)
		}
	}
}
