package layer

import (
	"fmt"
	"math"
	"sync"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/simd"
)

// RowLayer is a fully connected layer whose weight matrix is stored in
// row-major order: row i is neuron i's full weight vector, contiguous in
// memory. It implements the Algorithm 1 product (§4.3.2, case 1) for the
// wide output layer: the input (hidden activation) is dense, the active
// output set is sparse, and each active logit is one contiguous 16-lane dot
// product. The backward pass computes ∇h = Σ gzᵢ·W[i] over active rows
// (row-major again, by Lemma 1) and per-row weight gradients gzᵢ·h.
type RowLayer struct {
	// In is the input (hidden) dimension; Out the neuron/label count.
	In, Out int

	opts Options

	rows   [][]float32   // FP32 / BF16Act weights
	rowsBF [][]bf16.BF16 // BF16Both weights
	bias   []float32

	grad    [][]float32
	gbias   []float32
	m, v    [][]float32
	mb, vb  []float32
	touched *touchSet
	journal *touchSet // nil unless EnableJournal; rows touched since last drain
	lk      locks

	// fwd is the live forward view over the storage above; the forward
	// methods and ForwardView go through it, so training and serving consume
	// the same forward implementation.
	fwd RowWeights
}

// NewRowLayer builds a row-major layer with in inputs and out neurons.
func NewRowLayer(in, out int, o Options) *RowLayer {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("layer: invalid RowLayer dims %dx%d", in, out))
	}
	l := &RowLayer{In: in, Out: out, opts: o}
	scale := 1.0 / math.Sqrt(float64(in))
	if o.Precision == BF16Both {
		l.rowsBF = vectors2DBF16(out, in, o.Placement)
		initGaussianBF16(l.rowsBF, scale, o.Seed)
	} else {
		l.rows = vectors2D(out, in, o.Placement)
		initGaussian(l.rows, scale, o.Seed)
	}
	l.bias = make([]float32, out)
	l.grad = vectors2D(out, in, o.Placement)
	l.gbias = make([]float32, out)
	l.m = vectors2D(out, in, o.Placement)
	l.v = vectors2D(out, in, o.Placement)
	l.mb = make([]float32, out)
	l.vb = make([]float32, out)
	l.touched = newTouchSet(out)
	l.lk.enabled = o.Locked
	l.fwd = RowWeights{In: in, Out: out, prec: o.Precision,
		rows: l.rows, rowsBF: l.rowsBF, bias: l.bias}
	return l
}

// Options returns the construction options.
func (l *RowLayer) Options() Options { return l.opts }

// Logit computes neuron id's pre-activation for the dense input h; see
// RowWeights.Logit, which implements the pass for both the training path
// and snapshot serving.
func (l *RowLayer) Logit(ks *simd.Kernels, id int32, h []float32, hBF []bf16.BF16) float32 {
	return l.fwd.Logit(ks, id, h, hBF)
}

// ForwardActive fills logits[k] with Logit(active[k]) for each active
// neuron; see RowWeights.ForwardActive.
func (l *RowLayer) ForwardActive(ks *simd.Kernels, active []int32, h []float32, hBF []bf16.BF16, logits []float32) {
	l.fwd.ForwardActive(ks, active, h, hBF, logits)
}

// Accumulate adds one sample's contribution for active neuron id with logit
// gradient gz: ∇W[id] += gz·h, ∇b[id] += gz, and (if dh is non-nil)
// dh += gz·W[id]. dh is worker-private; the shared gradient rows follow the
// layer's write policy. Weights are only read here — they change exclusively
// in ApplyAdam, which the trainer serializes against Backward.
//
// The FP32 path goes through the table's AxpyTwo entry, which resolves to
// whichever walk shape wins on the active tier: the assembly tiers run the
// genuinely fused single walk (~1.6x faster than two asm axpys), while the
// Go tiers run two independent axpys (the fused Go loop is ~20% slower —
// four live slice pointers defeat the scheduler the way Dot4's row blocking
// does; see DESIGN.md "Known divergences"). Both shapes are bit-identical
// because the slice pairs never alias.
func (l *RowLayer) Accumulate(ks *simd.Kernels, id int32, gz float32, h []float32, hBF []bf16.BF16, dh []float32) {
	if dh != nil && l.opts.Precision == FP32 {
		// dh is worker-private; only the gradient row needs the lock, but
		// the fused walk's bandwidth win outweighs the slightly longer
		// critical section under the Locked policy.
		l.lk.lockRow(id)
		ks.AxpyTwo(gz, h, l.grad[id], l.rows[id], dh)
		l.gbias[id] += gz
		l.lk.unlockRow(id)
		l.touched.mark(id)
		return
	}
	l.lk.lockRow(id)
	if l.opts.Precision == FP32 {
		ks.Axpy(gz, h, l.grad[id])
	} else {
		ks.AxpyBF16(gz, hBF, l.grad[id])
	}
	l.gbias[id] += gz
	l.lk.unlockRow(id)
	l.touched.mark(id)

	if dh != nil {
		if l.opts.Precision == BF16Both {
			ks.AxpyBF16(gz, l.rowsBF[id], dh)
		} else {
			ks.Axpy(gz, l.rows[id], dh)
		}
	}
}

// AccumulateOwnedRow adds gz·h into row id's gradient and gz into its bias
// gradient without locking or touch-marking. The caller must own row id
// exclusively (the dense baseline tiles disjoint row ranges over workers)
// and must apply the update with ApplyAdamAll, which ignores the touched
// set. FP32 storage only.
func (l *RowLayer) AccumulateOwnedRow(ks *simd.Kernels, id int32, gz float32, h []float32) {
	ks.Axpy(gz, h, l.grad[id])
	l.gbias[id] += gz
}

// ApplyAdam steps every touched row and its bias, zeroes consumed gradients
// and clears the touched set. The step and the gradient clear stay separate
// passes on purpose: BenchmarkKernelAdamZero and the row-walk experiments in
// DESIGN.md show the single-pass fusion (simd.AdamStepZero) is ~4-7% slower
// under the Go compiler, whose runtime memclr beats an inline zeroing store
// in the update loop (see DESIGN.md "Known divergences").
func (l *RowLayer) ApplyAdam(ks *simd.Kernels, p simd.AdamParams, workers int) {
	if l.opts.Precision == BF16Both {
		l.touched.forEachParallel(workers, func(id int32) {
			ks.AdamStepBF16(l.rowsBF[id], l.m[id], l.v[id], l.grad[id], p)
			simd.Zero(l.grad[id])
			adamScalar(&l.bias[id], &l.mb[id], &l.vb[id], l.gbias[id], p)
			l.gbias[id] = 0
		})
	} else {
		l.touched.forEachParallel(workers, func(id int32) {
			ks.AdamStep(l.rows[id], l.m[id], l.v[id], l.grad[id], p)
			simd.Zero(l.grad[id])
			adamScalar(&l.bias[id], &l.mb[id], &l.vb[id], l.gbias[id], p)
			l.gbias[id] = 0
		})
	}
	if l.journal != nil {
		l.journal.orFrom(l.touched)
	}
	l.touched.clear()
}

// ApplyAdamRange steps every touched row in [lo, hi) and its bias, zeroing
// consumed gradients. The sharded optimizer runs one call per shard
// concurrently — safe because shard row ranges are disjoint and touch reads
// are atomic. Unlike ApplyAdam it does NOT fold the touched set into the
// journal or clear it; after all ranges complete, the caller must invoke
// FinishAdam exactly once.
func (l *RowLayer) ApplyAdamRange(ks *simd.Kernels, p simd.AdamParams, lo, hi int) {
	if l.opts.Precision == BF16Both {
		l.touched.forEachRange(lo, hi, func(id int32) {
			ks.AdamStepBF16(l.rowsBF[id], l.m[id], l.v[id], l.grad[id], p)
			simd.Zero(l.grad[id])
			adamScalar(&l.bias[id], &l.mb[id], &l.vb[id], l.gbias[id], p)
			l.gbias[id] = 0
		})
	} else {
		l.touched.forEachRange(lo, hi, func(id int32) {
			ks.AdamStep(l.rows[id], l.m[id], l.v[id], l.grad[id], p)
			simd.Zero(l.grad[id])
			adamScalar(&l.bias[id], &l.mb[id], &l.vb[id], l.gbias[id], p)
			l.gbias[id] = 0
		})
	}
}

// FinishAdam completes a set of ApplyAdamRange calls covering the full row
// space: it folds the touched set into the journal (when enabled) and clears
// it. Must not run concurrently with ApplyAdamRange.
func (l *RowLayer) FinishAdam() {
	if l.journal != nil {
		l.journal.orFrom(l.touched)
	}
	l.touched.clear()
}

// TouchedRows returns how many rows currently hold unapplied gradient.
func (l *RowLayer) TouchedRows() int { return l.touched.count() }

// EnableJournal starts accumulating a touch journal: every row stepped by
// ApplyAdam (or all rows, under ApplyAdamAll) stays recorded across batches
// until DrainJournal collects it. The journal is what turns per-batch touch
// tracking into per-publish-interval delta extents.
func (l *RowLayer) EnableJournal() {
	if l.journal == nil {
		l.journal = newTouchSet(l.Out)
	}
}

// DrainJournal returns the rows stepped since the previous drain (ascending)
// and resets the journal. Call between batches, never concurrently with
// ApplyAdam. Returns nil when no journal is enabled.
func (l *RowLayer) DrainJournal() []int32 {
	if l.journal == nil {
		return nil
	}
	ids := l.journal.ids()
	l.journal.clear()
	return ids
}

// ApplyAdamAll steps every row unconditionally — the dense update of the
// full-softmax baseline, where all parameters change every batch. Rows are
// tiled across workers; consumed gradients are zeroed and the touched set
// cleared.
func (l *RowLayer) ApplyAdamAll(ks *simd.Kernels, p simd.AdamParams, workers int) {
	if workers < 1 {
		workers = 1
	}
	per := (l.Out + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, l.Out)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if l.opts.Precision == BF16Both {
					ks.AdamStepBF16(l.rowsBF[i], l.m[i], l.v[i], l.grad[i], p)
				} else {
					ks.AdamStep(l.rows[i], l.m[i], l.v[i], l.grad[i], p)
				}
				simd.Zero(l.grad[i])
				adamScalar(&l.bias[i], &l.mb[i], &l.vb[i], l.gbias[i], p)
				l.gbias[i] = 0
			}
		}(lo, hi)
	}
	wg.Wait()
	if l.journal != nil {
		l.journal.markAll() // dense step: every row changed
	}
	l.touched.clear()
}

// ForwardAll computes every neuron's logit into out (len Out) — the full
// softmax pass used for evaluation and by the dense baseline; see
// RowWeights.ForwardAll.
func (l *RowLayer) ForwardAll(ks *simd.Kernels, h []float32, hBF []bf16.BF16, out []float32, workers int) {
	l.fwd.ForwardAll(ks, h, hBF, out, workers)
}

// RowF32 returns neuron i's weight vector as float32. For BF16Both it is
// expanded into buf (len >= In); otherwise a direct view is returned.
// Read-only; used by the LSH rebuild to hash current weights.
func (l *RowLayer) RowF32(i int, buf []float32) []float32 {
	return l.fwd.RowF32(i, buf)
}

// Bias returns the bias vector (read-only view).
func (l *RowLayer) Bias() []float32 { return l.bias }

// ParamBytes returns the resident parameter size in bytes.
func (l *RowLayer) ParamBytes() int64 {
	per := int64(4)
	if l.opts.Precision == BF16Both {
		per = 2
	}
	return int64(l.In)*int64(l.Out)*per + int64(l.Out)*4
}
