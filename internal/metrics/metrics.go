// Package metrics implements the evaluation metrics of the paper's §5 —
// Precision@k over multi-label predictions — and the convergence tracker
// behind the Figure 6 time-vs-accuracy curves.
package metrics

import (
	"fmt"
	"io"
	"math"
	"time"
)

// TopK returns the indices of the k largest scores, highest first. Ties
// break toward the lower index. k larger than len(scores) is clamped.
func TopK(scores []float32, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	return TopKInto(scores, k, make([]int32, 0, k))
}

// TopKInto is TopK with caller-provided storage: the selection runs in
// out's backing array and the result (highest score first, ties toward the
// lower index) is returned as a slice of it. Allocation-free when
// cap(out) >= min(k, len(scores)) — the hot ranking step of the serving
// path. out's previous contents are ignored.
//
// The selection keeps a size-k min-heap of candidate indices ordered by
// (score, -index), so a full ranking costs O(n log k) with an O(1) reject
// for the common below-threshold case.
func TopKInto(scores []float32, k int, out []int32) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return out[:0]
	}
	h := out[:0]
	// worse reports whether index a ranks strictly below index b: lower
	// score, or equal score with the higher index. It is a total order, so
	// the heap-sorted output is deterministic.
	worse := func(a, b int32) bool {
		sa, sb := scores[a], scores[b]
		return sa < sb || (sa == sb && a > b)
	}
	for i := range scores {
		c := int32(i)
		if len(h) < k {
			// Sift up.
			h = append(h, c)
			j := len(h) - 1
			for j > 0 {
				parent := (j - 1) / 2
				if !worse(h[j], h[parent]) {
					break
				}
				h[j], h[parent] = h[parent], h[j]
				j = parent
			}
			continue
		}
		// Candidates iterate in ascending index order, so an incoming score
		// equal to the current k-th best is always worse (higher index) and
		// rejected here — the tie-toward-lower-index rule falls out for free.
		if !worse(h[0], c) {
			continue
		}
		h[0] = c
		siftDown(h, 0, worse)
	}
	// Heap-sort in place: repeatedly move the current worst to the back,
	// leaving the slice ordered best-first.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDown(h[:end], 0, worse)
	}
	return h
}

// TopKMergeInto merges per-shard top-k lists into the global top-k — the
// scatter-gather reduction of the sharded output layer. Each lists[s] holds
// global indices into scores, already ordered best-first under the TopKInto
// total order (score descending, index ascending); typically it is the
// result of TopKInto over one contiguous score range with the range offset
// added back. The merge applies the same total order, so the result is
// bit-identical to TopKInto over the full score vector: equal scores break
// toward the lower global index no matter which shard they came from, and
// k larger than any single shard's list drains shards in order. out is
// caller-provided storage (contents ignored); allocation-free when
// cap(out) >= k.
func TopKMergeInto(scores []float32, lists [][]int32, k int, out []int32) []int32 {
	out = out[:0]
	if k <= 0 {
		return out
	}
	// better reports whether id a outranks id b globally.
	better := func(a, b int32) bool {
		sa, sb := scores[a], scores[b]
		return sa > sb || (sa == sb && a < b)
	}
	// cursor per shard list; linear scan over the shard heads each round.
	// S is small (worker-scale), so S·k comparisons beat maintaining a heap.
	heads := make([]int, len(lists))
	for len(out) < k {
		best := -1
		for s, h := range heads {
			if h >= len(lists[s]) {
				continue
			}
			if best < 0 || better(lists[s][h], lists[best][heads[best]]) {
				best = s
			}
		}
		if best < 0 {
			break // every shard drained: fewer than k candidates exist
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

func siftDown(h []int32, j int, worse func(a, b int32) bool) {
	for {
		l := 2*j + 1
		if l >= len(h) {
			return
		}
		min := l
		if r := l + 1; r < len(h) && worse(h[r], h[l]) {
			min = r
		}
		if !worse(h[min], h[j]) {
			return
		}
		h[j], h[min] = h[min], h[j]
		j = min
	}
}

// PrecisionAtK computes P@k for one sample: the fraction of the k
// top-scoring predictions that are true labels.
func PrecisionAtK(scores []float32, labels []int32, k int) float64 {
	if k <= 0 || len(labels) == 0 {
		return 0
	}
	set := make(map[int32]bool, len(labels))
	for _, y := range labels {
		set[y] = true
	}
	hits := 0
	top := TopK(scores, k)
	for _, p := range top {
		if set[p] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Point is one convergence measurement (one row of the Figure 6 series).
type Point struct {
	// Elapsed is cumulative training wall-clock (evaluation time excluded).
	Elapsed time.Duration
	// Epoch counts completed epochs at measurement time.
	Epoch int
	// Batches counts optimizer steps so far.
	Batches int64
	// P1 is Precision@1 on the held-out evaluation slice.
	P1 float64
	// Loss is the mean training loss over the preceding window.
	Loss float64
}

// Tracker accumulates convergence points for one training run.
type Tracker struct {
	// System labels the run (e.g. "Optimized SLIDE CPX").
	System string
	// Dataset labels the workload.
	Dataset string
	points  []Point
}

// NewTracker creates a tracker for one (system, dataset) run.
func NewTracker(system, dataset string) *Tracker {
	return &Tracker{System: system, Dataset: dataset}
}

// Record appends one measurement.
func (t *Tracker) Record(p Point) {
	t.points = append(t.points, p)
}

// Points returns the recorded series.
func (t *Tracker) Points() []Point { return t.points }

// Last returns the most recent point and whether one exists.
func (t *Tracker) Last() (Point, bool) {
	if len(t.points) == 0 {
		return Point{}, false
	}
	return t.points[len(t.points)-1], true
}

// BestP1 returns the highest P@1 observed.
func (t *Tracker) BestP1() float64 {
	best := math.Inf(-1)
	for _, p := range t.points {
		if p.P1 > best {
			best = p.P1
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// TimeToP1 returns the earliest elapsed time at which P@1 reached the
// threshold, and whether it ever did — the "time to any accuracy level"
// comparison the SLIDE papers emphasize.
func (t *Tracker) TimeToP1(threshold float64) (time.Duration, bool) {
	for _, p := range t.points {
		if p.P1 >= threshold {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// WriteCSV emits the series with a header row:
// system,dataset,seconds,epoch,batches,p1,loss
func (t *Tracker) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "system,dataset,seconds,epoch,batches,p1,loss"); err != nil {
		return err
	}
	for _, p := range t.points {
		if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%d,%d,%.4f,%.4f\n",
			t.System, t.Dataset, p.Elapsed.Seconds(), p.Epoch, p.Batches, p.P1, p.Loss); err != nil {
			return err
		}
	}
	return nil
}
