// Package metrics implements the evaluation metrics of the paper's §5 —
// Precision@k over multi-label predictions — and the convergence tracker
// behind the Figure 6 time-vs-accuracy curves.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// TopK returns the indices of the k largest scores, highest first. Ties
// break toward the lower index. k larger than len(scores) is clamped.
func TopK(scores []float32, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	type pair struct {
		idx   int32
		score float32
	}
	// Partial selection: maintain the k best in a small sorted buffer.
	best := make([]pair, 0, k)
	for i, s := range scores {
		if len(best) == k && s <= best[k-1].score {
			continue
		}
		p := pair{int32(i), s}
		pos := sort.Search(len(best), func(j int) bool {
			return best[j].score < p.score
		})
		if len(best) < k {
			best = append(best, pair{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = p
	}
	out := make([]int32, len(best))
	for i, p := range best {
		out[i] = p.idx
	}
	return out
}

// PrecisionAtK computes P@k for one sample: the fraction of the k
// top-scoring predictions that are true labels.
func PrecisionAtK(scores []float32, labels []int32, k int) float64 {
	if k <= 0 || len(labels) == 0 {
		return 0
	}
	set := make(map[int32]bool, len(labels))
	for _, y := range labels {
		set[y] = true
	}
	hits := 0
	top := TopK(scores, k)
	for _, p := range top {
		if set[p] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Point is one convergence measurement (one row of the Figure 6 series).
type Point struct {
	// Elapsed is cumulative training wall-clock (evaluation time excluded).
	Elapsed time.Duration
	// Epoch counts completed epochs at measurement time.
	Epoch int
	// Batches counts optimizer steps so far.
	Batches int64
	// P1 is Precision@1 on the held-out evaluation slice.
	P1 float64
	// Loss is the mean training loss over the preceding window.
	Loss float64
}

// Tracker accumulates convergence points for one training run.
type Tracker struct {
	// System labels the run (e.g. "Optimized SLIDE CPX").
	System string
	// Dataset labels the workload.
	Dataset string
	points  []Point
}

// NewTracker creates a tracker for one (system, dataset) run.
func NewTracker(system, dataset string) *Tracker {
	return &Tracker{System: system, Dataset: dataset}
}

// Record appends one measurement.
func (t *Tracker) Record(p Point) {
	t.points = append(t.points, p)
}

// Points returns the recorded series.
func (t *Tracker) Points() []Point { return t.points }

// Last returns the most recent point and whether one exists.
func (t *Tracker) Last() (Point, bool) {
	if len(t.points) == 0 {
		return Point{}, false
	}
	return t.points[len(t.points)-1], true
}

// BestP1 returns the highest P@1 observed.
func (t *Tracker) BestP1() float64 {
	best := math.Inf(-1)
	for _, p := range t.points {
		if p.P1 > best {
			best = p.P1
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// TimeToP1 returns the earliest elapsed time at which P@1 reached the
// threshold, and whether it ever did — the "time to any accuracy level"
// comparison the SLIDE papers emphasize.
func (t *Tracker) TimeToP1(threshold float64) (time.Duration, bool) {
	for _, p := range t.points {
		if p.P1 >= threshold {
			return p.Elapsed, true
		}
	}
	return 0, false
}

// WriteCSV emits the series with a header row:
// system,dataset,seconds,epoch,batches,p1,loss
func (t *Tracker) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "system,dataset,seconds,epoch,batches,p1,loss"); err != nil {
		return err
	}
	for _, p := range t.points {
		if _, err := fmt.Fprintf(w, "%s,%s,%.3f,%d,%d,%.4f,%.4f\n",
			t.System, t.Dataset, p.Elapsed.Seconds(), p.Epoch, p.Batches, p.P1, p.Loss); err != nil {
			return err
		}
	}
	return nil
}
