package metrics

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

// mergeViaShards runs the sharded selection path over an explicit contiguous
// partition: per-shard TopKInto on each score range (ids offset back to
// global), then TopKMergeInto. This is exactly what forwardState.rank does
// for sharded models; the tests below hold its output bit-equal to the
// single-heap TopKInto over the whole vector.
func mergeViaShards(scores []float32, bounds []int32, k int) []int32 {
	lists := make([][]int32, len(bounds)-1)
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		l := TopKInto(scores[lo:hi], k, nil)
		for i := range l {
			l[i] += lo
		}
		lists[s] = l
	}
	return TopKMergeInto(scores, lists, k, nil)
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomBounds draws a random contiguous partition of [0, n) into s shards,
// allowing zero-width shards (a shard can own no rows when s > n).
func randomBounds(rng *rand.Rand, n, s int) []int32 {
	cuts := make([]int, s-1)
	for i := range cuts {
		cuts[i] = rng.IntN(n + 1)
	}
	bounds := make([]int32, 0, s+1)
	bounds = append(bounds, 0)
	// insertion-sort the cuts (s is small) and append.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	for _, c := range cuts {
		bounds = append(bounds, int32(c))
	}
	return append(bounds, int32(n))
}

// TestTopKMergeMatchesSingleHeapFuzz: for random score vectors — drawn from
// a tiny value alphabet so duplicate scores are everywhere — and random
// contiguous partitions, the scatter-gather selection must reproduce the
// single-heap TopKInto exactly, including its deterministic tie order
// (equal scores rank by ascending id). Shard-local positions map
// monotonically onto global ids only because partitions are contiguous;
// this is the property the sharded predictor's rank path leans on.
func TestTopKMergeMatchesSingleHeapFuzz(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.IntN(64)
		scores := make([]float32, n)
		for i := range scores {
			// 5-value alphabet: collisions within and across shards are the
			// common case, not the corner case.
			scores[i] = float32(rng.IntN(5)) * 0.25
		}
		s := 1 + rng.IntN(6)
		bounds := randomBounds(rng, n, s)
		// k sweeps past every interesting boundary: 0, < shard width,
		// > per-shard candidates, > n.
		k := rng.IntN(n + 8)
		want := TopKInto(scores, k, nil)
		got := mergeViaShards(scores, bounds, k)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d (n=%d k=%d bounds=%v):\nscores %v\nmerge %v\nheap  %v",
				trial, n, k, bounds, scores, got, want)
		}
	}
}

// TestTopKMergeEdges pins the boundary behaviors the fuzz loop visits only
// probabilistically.
func TestTopKMergeEdges(t *testing.T) {
	scores := []float32{3, 1, 3, 2, 3, 0, 2, 3}
	cases := []struct {
		name   string
		bounds []int32
		k      int
	}{
		{"single shard", []int32{0, 8}, 4},
		{"k zero", []int32{0, 4, 8}, 0},
		{"k exceeds total", []int32{0, 4, 8}, 50},
		{"k exceeds every shard", []int32{0, 2, 4, 6, 8}, 7},
		{"empty shards", []int32{0, 0, 5, 5, 8}, 5},
		{"all ties", []int32{0, 3, 8}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := TopKInto(scores, tc.k, nil)
			got := mergeViaShards(scores, tc.bounds, tc.k)
			if !equalIDs(got, want) {
				t.Fatalf("merge %v, heap %v", got, want)
			}
		})
	}
	t.Run("duplicate ids across lists drained once", func(t *testing.T) {
		// The merge contract assumes disjoint lists (shards own disjoint
		// rows); this documents—rather than accidentally depends on—the
		// current behavior: it never invents ids that are in no list.
		got := TopKMergeInto(scores, [][]int32{{0, 2}, {4, 7}}, 3, nil)
		for _, id := range got {
			if id != 0 && id != 2 && id != 4 && id != 7 {
				t.Fatalf("merge surfaced id %d not present in any list: %v", id, got)
			}
		}
	})
}

// TestTopKMergeReusesBuffer: the out buffer is reused in place (the serving
// path passes the pooled active buffer), so the result must alias it when
// capacity suffices.
func TestTopKMergeReusesBuffer(t *testing.T) {
	scores := []float32{5, 4, 3, 2, 1, 0}
	buf := make([]int32, 0, 8)
	got := TopKMergeInto(scores, [][]int32{{0, 1, 2}, {3, 4, 5}}, 4, buf)
	if fmt.Sprintf("%p", got[:1]) != fmt.Sprintf("%p", buf[:1]) {
		t.Error("merge reallocated despite sufficient capacity")
	}
	if !equalIDs(got, []int32{0, 1, 2, 3}) {
		t.Errorf("merge = %v", got)
	}
}
