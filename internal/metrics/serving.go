package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SizeHistogram counts exact occurrences of small bounded integer
// observations — batch sizes in the serving pipeline, where the batcher's
// max batch size bounds the domain. All methods are safe for concurrent
// use; Observe is a single atomic add.
type SizeHistogram struct {
	counts []atomic.Uint64 // counts[i] holds observations of size i+1
}

// NewSizeHistogram builds a histogram for observations in [1, max].
func NewSizeHistogram(max int) *SizeHistogram {
	if max < 1 {
		max = 1
	}
	return &SizeHistogram{counts: make([]atomic.Uint64, max)}
}

// Observe records one observation. Values are clamped into [1, max].
func (h *SizeHistogram) Observe(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(h.counts) {
		n = len(h.counts)
	}
	h.counts[n-1].Add(1)
}

// Counts returns a copy of the per-size counts: out[i] observations of
// size i+1.
func (h *SizeHistogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Mean returns the average observed size (0 with no observations).
func (h *SizeHistogram) Mean() float64 {
	var n, sum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		n += c
		sum += c * uint64(i+1)
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Total returns the number of observations.
func (h *SizeHistogram) Total() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Reservoir keeps the most recent cap duration observations in a ring and
// serves quantiles over them — the p50/p99 latency window of the serving
// /stats endpoint. Safe for concurrent use; Observe takes one mutex.
type Reservoir struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	full bool
}

// NewReservoir builds a sliding window over the last cap observations.
func NewReservoir(cap int) *Reservoir {
	if cap < 1 {
		cap = 1
	}
	return &Reservoir{ring: make([]time.Duration, cap)}
}

// Observe records one duration.
func (r *Reservoir) Observe(d time.Duration) {
	r.mu.Lock()
	r.ring[r.next] = d
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Quantile returns the q-quantile (0 <= q <= 1, nearest-rank) over the
// current window, or 0 when nothing has been observed.
func (r *Reservoir) Quantile(q float64) time.Duration {
	qs := r.Quantiles(q)
	return qs[0]
}

// Quantiles returns several quantiles over one consistent copy of the
// window (one lock, one sort — cheaper than repeated Quantile calls).
func (r *Reservoir) Quantiles(qs ...float64) []time.Duration {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.ring)
	}
	window := append([]time.Duration(nil), r.ring[:n]...)
	r.mu.Unlock()

	out := make([]time.Duration, len(qs))
	if n == 0 {
		return out
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	for i, q := range qs {
		rank := int(q*float64(n-1) + 0.5)
		if rank < 0 {
			rank = 0
		}
		if rank >= n {
			rank = n - 1
		}
		out[i] = window[rank]
	}
	return out
}

// Count returns the number of observations currently in the window.
func (r *Reservoir) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}
