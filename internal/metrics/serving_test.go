package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestSizeHistogram(t *testing.T) {
	h := NewSizeHistogram(8)
	for _, n := range []int{1, 2, 2, 8, 0, 99} { // 0 clamps to 1, 99 clamps to 8
		h.Observe(n)
	}
	counts := h.Counts()
	if counts[0] != 2 || counts[1] != 2 || counts[7] != 2 {
		t.Errorf("counts = %v", counts)
	}
	if got := h.Total(); got != 6 {
		t.Errorf("Total = %d", got)
	}
	if got, want := h.Mean(), (1+1+2+2+8+8)/6.0; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestSizeHistogramConcurrent(t *testing.T) {
	h := NewSizeHistogram(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1 + (w+i)%4)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Total(); got != 8000 {
		t.Errorf("Total = %d, want 8000", got)
	}
}

func TestReservoirQuantiles(t *testing.T) {
	r := NewReservoir(100)
	if got := r.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	qs := r.Quantiles(0, 0.5, 0.99, 1)
	if qs[0] != 1*time.Millisecond || qs[3] != 100*time.Millisecond {
		t.Errorf("min/max = %v / %v", qs[0], qs[3])
	}
	if qs[1] < 49*time.Millisecond || qs[1] > 52*time.Millisecond {
		t.Errorf("p50 = %v", qs[1])
	}
	if qs[2] < 98*time.Millisecond || qs[2] > 100*time.Millisecond {
		t.Errorf("p99 = %v", qs[2])
	}

	// Ring wraps: only the most recent 100 observations count.
	for i := 0; i < 100; i++ {
		r.Observe(time.Second)
	}
	if got := r.Quantile(0); got != time.Second {
		t.Errorf("post-wrap min = %v", got)
	}
	if got := r.Count(); got != 100 {
		t.Errorf("Count = %d", got)
	}
}
