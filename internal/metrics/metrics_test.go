package metrics

import (
	"bytes"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTopKBasic(t *testing.T) {
	scores := []float32{0.1, 0.9, 0.3, 0.7, 0.5}
	got := TopK(scores, 3)
	want := []int32{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if got := TopK(scores, 0); got != nil {
		t.Errorf("TopK k=0 = %v", got)
	}
	if got := TopK(nil, 5); got != nil {
		t.Errorf("TopK(nil) = %v", got)
	}
	if got := TopK(scores, 99); len(got) != 5 {
		t.Errorf("TopK clamp = %v", got)
	}
}

func TestTopKTieBreaksLowIndex(t *testing.T) {
	got := TopK([]float32{5, 5, 5, 5}, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("tie break wrong: %v", got)
	}
}

func TestTopKMatchesSortReference(t *testing.T) {
	f := func(raw []float32, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		scores := make([]float32, len(raw))
		for i, v := range raw {
			if v != v { // NaN
				v = 0
			}
			scores[i] = v
		}
		got := TopK(scores, k)

		type pair struct {
			i int32
			s float32
		}
		ref := make([]pair, len(scores))
		for i, s := range scores {
			ref[i] = pair{int32(i), s}
		}
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].s > ref[b].s })
		n := min(k, len(scores))
		if len(got) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if scores[got[i]] != ref[i].s { // same score (indices may tie)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// referenceTopK is the pre-heap insertion-sort implementation, kept as the
// oracle for exact output equality (order and tie-breaking included).
func referenceTopK(scores []float32, k int) []int32 {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	type pair struct {
		idx   int32
		score float32
	}
	best := make([]pair, 0, k)
	for i, s := range scores {
		if len(best) == k && s <= best[k-1].score {
			continue
		}
		p := pair{int32(i), s}
		pos := sort.Search(len(best), func(j int) bool {
			return best[j].score < p.score
		})
		if len(best) < k {
			best = append(best, pair{})
		}
		copy(best[pos+1:], best[pos:len(best)-1])
		best[pos] = p
	}
	out := make([]int32, len(best))
	for i, p := range best {
		out[i] = p.idx
	}
	return out
}

func TestTopKMatchesInsertionReference(t *testing.T) {
	// The heap selection must be bit-identical to the insertion-sort
	// reference — same order, same tie-breaks — across sizes, duplicate-heavy
	// inputs, and every k. Serving equivalence (Predictor vs Model) depends
	// on this.
	rng := rand.New(rand.NewPCG(7, 9))
	for _, n := range []int{0, 1, 2, 7, 64, 513} {
		for trial := 0; trial < 20; trial++ {
			scores := make([]float32, n)
			for i := range scores {
				// Coarse quantization forces many exact ties.
				scores[i] = float32(rng.IntN(8))
			}
			for _, k := range []int{0, 1, 2, 3, n / 2, n, n + 3} {
				got := TopKInto(scores, k, make([]int32, 0, 16))
				want := referenceTopK(scores, k)
				if len(got) != len(want) {
					t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, want)
					}
				}
			}
		}
	}
}

func TestTopKIntoAllocationFree(t *testing.T) {
	scores := make([]float32, 2048)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range scores {
		scores[i] = rng.Float32()
	}
	buf := make([]int32, 0, 32)
	allocs := testing.AllocsPerRun(50, func() {
		buf = TopKInto(scores, 10, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("TopKInto allocated %.1f times per run with sufficient buffer", allocs)
	}
	if len(buf) != 10 {
		t.Errorf("TopKInto returned %d results, want 10", len(buf))
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float32{0.1, 0.9, 0.3, 0.7, 0.5}
	// top1 = 1; top3 = {1,3,4}
	if p := PrecisionAtK(scores, []int32{1}, 1); p != 1 {
		t.Errorf("P@1 = %g", p)
	}
	if p := PrecisionAtK(scores, []int32{0}, 1); p != 0 {
		t.Errorf("P@1 = %g", p)
	}
	if p := PrecisionAtK(scores, []int32{3, 4}, 3); p != 2.0/3 {
		t.Errorf("P@3 = %g", p)
	}
	if p := PrecisionAtK(scores, nil, 1); p != 0 {
		t.Errorf("P@1 with no labels = %g", p)
	}
	if p := PrecisionAtK(scores, []int32{1}, 0); p != 0 {
		t.Errorf("P@0 = %g", p)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker("Optimized SLIDE CPX", "amazon-670k")
	if _, ok := tr.Last(); ok {
		t.Error("empty tracker has a Last point")
	}
	if tr.BestP1() != 0 {
		t.Error("empty BestP1 should be 0")
	}
	tr.Record(Point{Elapsed: time.Second, Epoch: 1, Batches: 10, P1: 0.10, Loss: 3.2})
	tr.Record(Point{Elapsed: 2 * time.Second, Epoch: 2, Batches: 20, P1: 0.25, Loss: 2.1})
	tr.Record(Point{Elapsed: 3 * time.Second, Epoch: 3, Batches: 30, P1: 0.22, Loss: 2.0})

	if last, ok := tr.Last(); !ok || last.Epoch != 3 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if tr.BestP1() != 0.25 {
		t.Errorf("BestP1 = %g", tr.BestP1())
	}
	if d, ok := tr.TimeToP1(0.2); !ok || d != 2*time.Second {
		t.Errorf("TimeToP1(0.2) = %v, %v", d, ok)
	}
	if _, ok := tr.TimeToP1(0.9); ok {
		t.Error("TimeToP1(0.9) should not be reached")
	}

	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "system,dataset,seconds") {
		t.Errorf("CSV header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Optimized SLIDE CPX,amazon-670k,1.000,1,10,0.1000") {
		t.Errorf("CSV row wrong: %q", lines[1])
	}
}

func TestPrecisionRandomBaseline(t *testing.T) {
	// Random scores against random single labels: P@1 ≈ 1/n.
	rng := rand.New(rand.NewPCG(1, 2))
	n := 50
	trials := 3000
	hits := 0.0
	for i := 0; i < trials; i++ {
		scores := make([]float32, n)
		for j := range scores {
			scores[j] = rng.Float32()
		}
		hits += PrecisionAtK(scores, []int32{int32(rng.IntN(n))}, 1)
	}
	got := hits / float64(trials)
	if got < 0.005 || got > 0.05 {
		t.Errorf("random-baseline P@1 = %.4f, expected near %.4f", got, 1.0/float64(n))
	}
}
