package network

import (
	"errors"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/sparse"
)

func snapNet(t *testing.T, seed uint64, opts func(*Config)) (*Network, *plantedProblem) {
	t.Helper()
	p := newPlanted(80, 25, 6, seed)
	cfg := Config{
		InputDim: 80, HiddenDim: 24, OutputDim: 25,
		Hash: DWTA, K: 2, L: 10, BucketCap: 32,
		MinActive: 8, LR: 0.01, Workers: 2, Locked: true,
		RebuildEvery: 20, Seed: seed,
	}
	if opts != nil {
		opts(&cfg)
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 60, 64)
	return n, p
}

func TestPredictorMatchesNetworkExactly(t *testing.T) {
	for name, opts := range map[string]func(*Config){
		"fp32":     nil,
		"bf16both": func(c *Config) { c.Precision = layer.BF16Both; c.Workers = 1; c.Locked = false },
		"deep":     func(c *Config) { c.HiddenLayers = []int{16} },
		"dense":    func(c *Config) { c.NoSampling = true; c.Hash = 0; c.K, c.L = 0, 0 },
	} {
		t.Run(name, func(t *testing.T) {
			n, p := snapNet(t, 51, opts)
			pred := n.Snapshot()
			eval := p.batch(40)
			scores := make([]float32, n.Config().OutputDim)
			snapScores := make([]float32, n.Config().OutputDim)
			for i := 0; i < eval.Len(); i++ {
				x := eval.Sample(i)
				// Top-k output must be bit-identical to the frozen network.
				a := n.Predict(x, 5, scores)
				b := pred.Predict(x, 5)
				if len(a) != len(b) {
					t.Fatalf("sample %d: Predict lengths %d vs %d", i, len(a), len(b))
				}
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("sample %d: Predict diverged: %v vs %v", i, a, b)
					}
				}
				// Raw logits are bit-identical too.
				pred.Scores(x, snapScores)
				for j := range scores {
					if scores[j] != snapScores[j] {
						t.Fatalf("sample %d: score[%d] = %g vs %g", i, j, scores[j], snapScores[j])
					}
				}
			}
		})
	}
}

func TestPredictorBatchMatchesSingle(t *testing.T) {
	n, p := snapNet(t, 53, nil)
	pred := n.Snapshot()
	eval := p.batch(30)
	xs := make([]sparse.Vector, eval.Len())
	for i := range xs {
		xs[i] = eval.Sample(i)
	}
	batch := pred.PredictBatch(xs, 3)
	for i, x := range xs {
		single := pred.Predict(x, 3)
		if len(batch[i]) != len(single) {
			t.Fatalf("sample %d: batch %v vs single %v", i, batch[i], single)
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("sample %d: batch %v vs single %v", i, batch[i], single)
			}
		}
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	n, p := snapNet(t, 57, nil)
	pred := n.Snapshot()
	eval := p.batch(20)

	before := make([][]int32, eval.Len())
	beforeScores := make([][]float32, eval.Len())
	for i := range before {
		before[i] = pred.Predict(eval.Sample(i), 3)
		s := make([]float32, n.Config().OutputDim)
		pred.Scores(eval.Sample(i), s)
		beforeScores[i] = s
	}

	// Keep training (and rebuilding tables) on the source network.
	trainN(t, n, p, 40, 64)

	s := make([]float32, n.Config().OutputDim)
	for i := range before {
		after := pred.Predict(eval.Sample(i), 3)
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("sample %d: snapshot predictions drifted after training: %v vs %v",
					i, after, before[i])
			}
		}
		pred.Scores(eval.Sample(i), s)
		for j := range s {
			if s[j] != beforeScores[i][j] {
				t.Fatalf("sample %d: snapshot scores drifted after training", i)
			}
		}
		// Sampled inference still runs against the cloned tables.
		if _, err := pred.PredictSampled(eval.Sample(i), 2); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPredictorSampledError(t *testing.T) {
	cfg := Config{InputDim: 10, HiddenDim: 4, OutputDim: 8, NoSampling: true, Workers: 1}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := n.Snapshot()
	if pred.Sampled() {
		t.Error("dense snapshot claims LSH tables")
	}
	x := sparse.Vector{Indices: []int32{1}, Values: []float32{1}}
	if _, err := pred.PredictSampled(x, 1); !errors.Is(err, ErrNoSampling) {
		t.Errorf("PredictSampled error = %v, want ErrNoSampling", err)
	}
	// Fallback to exact on the same predictor works.
	if got := pred.Predict(x, 2); len(got) != 2 {
		t.Errorf("exact fallback returned %v", got)
	}
}

func TestPredictorPrecisionAtK(t *testing.T) {
	n, p := snapNet(t, 59, nil)
	pred := n.Snapshot()
	eval := p.batch(50)
	scores := make([]float32, n.Config().OutputDim)
	var a, b float64
	for i := 0; i < eval.Len(); i++ {
		n.Scores(eval.Sample(i), scores)
		a += precisionRef(scores, eval.Labels(i))
		b += pred.PrecisionAtK(eval.Sample(i), eval.Labels(i), 1)
	}
	if a != b {
		t.Errorf("parallel-eval building block diverged: %.6f vs %.6f", b, a)
	}
}

// precisionRef is P@1 computed directly from the score argmax.
func precisionRef(scores []float32, labels []int32) float64 {
	best := int32(0)
	for i, s := range scores {
		if s > scores[best] {
			best = int32(i)
		}
	}
	for _, y := range labels {
		if y == best {
			return 1
		}
	}
	return 0
}

func TestPredictorBatchKMatchesSingle(t *testing.T) {
	for name, opts := range map[string]func(*Config){
		"fp32":     nil,
		"bf16act":  func(c *Config) { c.Precision = layer.BF16Act; c.Workers = 1; c.Locked = false },
		"bf16both": func(c *Config) { c.Precision = layer.BF16Both; c.Workers = 1; c.Locked = false },
		"deep":     func(c *Config) { c.HiddenLayers = []int{16} },
	} {
		t.Run(name, func(t *testing.T) {
			n, p := snapNet(t, 61, opts)
			pred := n.Snapshot()
			eval := p.batch(24)
			xs := make([]sparse.Vector, eval.Len())
			ks := make([]int, eval.Len())
			for i := range xs {
				xs[i] = eval.Sample(i)
				ks[i] = 1 + i%7 // mixed per-sample k inside one fused walk
			}
			batch := pred.PredictBatchK(xs, ks)
			for i, x := range xs {
				single := pred.Predict(x, ks[i])
				if len(batch[i]) != len(single) {
					t.Fatalf("sample %d (k=%d): batch %v vs single %v", i, ks[i], batch[i], single)
				}
				for j := range single {
					if batch[i][j] != single[j] {
						t.Fatalf("sample %d (k=%d): batch %v vs single %v", i, ks[i], batch[i], single)
					}
				}
			}
			// Degenerate shapes.
			if out := pred.PredictBatchK(nil, nil); len(out) != 0 {
				t.Errorf("empty batch returned %v", out)
			}
			if out := pred.PredictBatchK(xs[:1], []int{eval.Len() + 999}); len(out[0]) != n.Config().OutputDim {
				t.Errorf("oversized k not clamped: %d labels", len(out[0]))
			}
		})
	}
}

func TestPredictorSteps(t *testing.T) {
	n, _ := snapNet(t, 63, nil)
	pred := n.Snapshot()
	if pred.Steps() != n.Step() {
		t.Errorf("snapshot Steps() = %d, network at %d", pred.Steps(), n.Step())
	}
}

// TestPredictorBatchKChunking covers batches beyond the fused-chunk memory
// bound: the walk splits into chunks, results stay bit-identical.
func TestPredictorBatchKChunking(t *testing.T) {
	n, p := snapNet(t, 67, nil)
	pred := n.Snapshot()
	eval := p.batch(10)
	total := fusedChunk*2 + 7 // three chunks, last partial
	xs := make([]sparse.Vector, total)
	ks := make([]int, total)
	for i := range xs {
		xs[i] = eval.Sample(i % eval.Len())
		ks[i] = 1 + i%5
	}
	batch := pred.PredictBatchK(xs, ks)
	for i, x := range xs {
		single := pred.Predict(x, ks[i])
		if len(batch[i]) != len(single) {
			t.Fatalf("sample %d: chunked batch %v vs single %v", i, batch[i], single)
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("sample %d: chunked batch %v vs single %v", i, batch[i], single)
			}
		}
	}
}
