package network

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/sparse"
)

// plantedProblem generates a learnable extreme-classification task: every
// class owns a sparse prototype; samples are noisy copies of their class
// prototype labelled with the class id.
type plantedProblem struct {
	dim, classes, protoNNZ int
	protos                 [][]int32
	rng                    *rand.Rand
}

func newPlanted(dim, classes, protoNNZ int, seed uint64) *plantedProblem {
	p := &plantedProblem{dim: dim, classes: classes, protoNNZ: protoNNZ,
		rng: rand.New(rand.NewPCG(seed, 0xfeed))}
	p.protos = make([][]int32, classes)
	for c := range p.protos {
		used := map[int32]bool{}
		idx := make([]int32, 0, protoNNZ)
		for len(idx) < protoNNZ {
			i := int32(p.rng.IntN(dim))
			if !used[i] {
				used[i] = true
				idx = append(idx, i)
			}
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		p.protos[c] = idx
	}
	return p
}

func (p *plantedProblem) batch(n int) sparse.Batch {
	var b sparse.Builder
	for i := 0; i < n; i++ {
		c := p.rng.IntN(p.classes)
		vals := make([]float32, p.protoNNZ)
		for j := range vals {
			vals[j] = 1 + float32(p.rng.NormFloat64())*0.1
		}
		b.Add(p.protos[c], vals, []int32{int32(c)})
	}
	batch, err := b.CSR()
	if err != nil {
		panic(err)
	}
	return batch
}

// evalP1 measures precision@1 on fresh samples.
func evalP1(n *Network, p *plantedProblem, samples int) float64 {
	b := p.batch(samples)
	scores := make([]float32, n.Config().OutputDim)
	hits := 0
	for i := 0; i < b.Len(); i++ {
		pred := n.Predict(b.Sample(i), 1, scores)
		if len(pred) == 1 && pred[0] == b.Labels(i)[0] {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

func trainN(t *testing.T, n *Network, p *plantedProblem, batches, batchSize int) float64 {
	t.Helper()
	var lastLoss float64
	for i := 0; i < batches; i++ {
		st := n.TrainBatch(p.batch(batchSize))
		if st.Samples != batchSize {
			t.Fatalf("batch %d: processed %d samples, want %d", i, st.Samples, batchSize)
		}
		lastLoss = st.Loss / float64(st.Samples)
	}
	return lastLoss
}

func TestConfigValidateDefaults(t *testing.T) {
	c := Config{InputDim: 10, HiddenDim: 5, OutputDim: 20, K: 2, L: 3}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.LR != 1e-4 || c.Beta1 != 0.9 || c.Beta2 != 0.999 || c.Eps != 1e-8 {
		t.Error("optimizer defaults not applied")
	}
	if c.BucketCap != 128 || c.BinSize != 8 || c.RebuildEvery != 50 || c.RebuildGrowth != 1.05 {
		t.Error("structural defaults not applied")
	}
	if c.Workers <= 0 {
		t.Error("workers default not applied")
	}
	if c.MinActive != 20 { // clamped to OutputDim
		t.Errorf("MinActive = %d, want clamp to 20", c.MinActive)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	cases := []Config{
		{InputDim: 0, HiddenDim: 5, OutputDim: 5, K: 1, L: 1},
		{InputDim: 5, HiddenDim: 0, OutputDim: 5, K: 1, L: 1},
		{InputDim: 5, HiddenDim: 5, OutputDim: 0, K: 1, L: 1},
		{InputDim: 5, HiddenDim: 5, OutputDim: 5}, // sampling without K/L
		{InputDim: 5, HiddenDim: 5, OutputDim: 5, K: 1, L: 1, BucketCap: -1},
		{InputDim: 5, HiddenDim: 5, OutputDim: 50, K: 1, L: 1, MinActive: 10, MaxActive: 5},
		{InputDim: 5, HiddenDim: 5, OutputDim: 5, K: 1, L: 1, Beta1: 1.5},
		{InputDim: 5, HiddenDim: 5, OutputDim: 5, K: 1, L: 1, RebuildGrowth: 0.5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v) passed validation", i, c)
		}
	}
}

func TestNewRejectsBadHashFamily(t *testing.T) {
	cfg := Config{InputDim: 10, HiddenDim: 8, OutputDim: 10, K: 2, L: 2, Hash: HashFamily(9)}
	if _, err := New(&cfg); err == nil {
		t.Error("unknown hash family accepted")
	}
}

func TestHashFamilyString(t *testing.T) {
	if DWTA.String() != "dwta" || SimHash.String() != "simhash" || HashFamily(9).String() != "unknown" {
		t.Error("HashFamily strings wrong")
	}
}

func TestSlideLearnsPlantedProblem(t *testing.T) {
	p := newPlanted(100, 40, 8, 1)
	cfg := Config{
		InputDim: 100, HiddenDim: 32, OutputDim: 40,
		Hash: DWTA, K: 2, L: 10, BucketCap: 32,
		MinActive: 8, LR: 0.01, Workers: 2, Locked: true,
		RebuildEvery: 20, Seed: 42,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := evalP1(n, p, 100)
	trainN(t, n, p, 120, 64)
	after := evalP1(n, p, 200)
	if after < 0.5 {
		t.Errorf("SLIDE failed to learn: P@1 %.3f -> %.3f (chance %.3f)", before, after, 1.0/40)
	}
	// Active sets must be far smaller than the full output layer.
	st := n.TrainBatch(p.batch(64))
	meanActive := float64(st.ActiveSum) / float64(st.Samples)
	if meanActive >= 40 {
		t.Errorf("sampling is not sparse: mean active %.1f of 40", meanActive)
	}
}

func TestFullSoftmaxEngineLearns(t *testing.T) {
	p := newPlanted(80, 25, 6, 2)
	cfg := Config{
		InputDim: 80, HiddenDim: 24, OutputDim: 25,
		NoSampling: true, LR: 0.01, Workers: 2, Locked: true, Seed: 7,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 100, 64)
	if p1 := evalP1(n, p, 200); p1 < 0.6 {
		t.Errorf("full softmax failed to learn: P@1 = %.3f", p1)
	}
	if n.Tables() != nil {
		t.Error("NoSampling network should not build tables")
	}
}

func TestSimHashVariantLearns(t *testing.T) {
	p := newPlanted(80, 25, 6, 3)
	cfg := Config{
		InputDim: 80, HiddenDim: 24, OutputDim: 25,
		Hash: SimHash, K: 4, L: 12, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 2, Locked: true,
		RebuildEvery: 20, Seed: 11,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 120, 64)
	if p1 := evalP1(n, p, 200); p1 < 0.5 {
		t.Errorf("SimHash SLIDE failed to learn: P@1 = %.3f", p1)
	}
}

func TestBF16ModesLearn(t *testing.T) {
	for _, prec := range []layer.Precision{layer.BF16Act, layer.BF16Both} {
		p := newPlanted(60, 20, 5, 4)
		cfg := Config{
			InputDim: 60, HiddenDim: 16, OutputDim: 20,
			Hash: DWTA, K: 2, L: 8, BucketCap: 32,
			MinActive: 6, LR: 0.01, Workers: 1,
			Precision: prec, RebuildEvery: 25, Seed: 13,
		}
		n, err := New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		trainN(t, n, p, 120, 64)
		if p1 := evalP1(n, p, 200); p1 < 0.45 {
			t.Errorf("%v failed to learn: P@1 = %.3f", prec, p1)
		}
	}
}

func TestScatteredLayoutLearns(t *testing.T) {
	p := newPlanted(60, 20, 5, 5)
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1,
		Placement: layer.Scattered, RebuildEvery: 25, Seed: 17,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 120, 64)
	if p1 := evalP1(n, p, 200); p1 < 0.5 {
		t.Errorf("scattered layout failed to learn: P@1 = %.3f", p1)
	}
}

func TestSingleWorkerDeterminism(t *testing.T) {
	mk := func() (*Network, *plantedProblem) {
		p := newPlanted(50, 15, 5, 9)
		cfg := Config{
			InputDim: 50, HiddenDim: 12, OutputDim: 15,
			Hash: DWTA, K: 2, L: 6, BucketCap: 16,
			MinActive: 5, LR: 0.01, Workers: 1,
			RebuildEvery: 10, Seed: 99,
		}
		n, err := New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n, p
	}
	n1, p1 := mk()
	n2, p2 := mk()
	for i := 0; i < 30; i++ {
		b1, b2 := p1.batch(32), p2.batch(32)
		n1.TrainBatch(b1)
		n2.TrainBatch(b2)
	}
	x := p1.batch(1).Sample(0)
	s1 := make([]float32, 15)
	s2 := make([]float32, 15)
	n1.Scores(x, s1)
	n2.Scores(x, s2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("single-worker training is not deterministic: score[%d] %g vs %g", i, s1[i], s2[i])
		}
	}
}

func TestRebuildSchedule(t *testing.T) {
	p := newPlanted(40, 10, 4, 6)
	cfg := Config{
		InputDim: 40, HiddenDim: 8, OutputDim: 10,
		Hash: DWTA, K: 2, L: 4, BucketCap: 16,
		MinActive: 4, Workers: 1, RebuildEvery: 3, RebuildGrowth: 2, Seed: 21,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt []int
	for i := 1; i <= 20; i++ {
		if st := n.TrainBatch(p.batch(8)); st.Rebuilt {
			rebuilt = append(rebuilt, i)
		}
	}
	// Period 3, then 6, then 12: rebuilds at batches 3, 9, 21(not reached).
	want := []int{3, 9}
	if len(rebuilt) != len(want) {
		t.Fatalf("rebuilds at %v, want %v", rebuilt, want)
	}
	for i := range want {
		if rebuilt[i] != want[i] {
			t.Fatalf("rebuilds at %v, want %v", rebuilt, want)
		}
	}
}

func TestLabelsAlwaysActive(t *testing.T) {
	// Even with a tiny bucket capacity and MinActive=1, the loss gradient
	// must flow to the true label: after training, scoring a prototype must
	// rank its label far above chance.
	p := newPlanted(50, 30, 5, 7)
	cfg := Config{
		InputDim: 50, HiddenDim: 16, OutputDim: 30,
		Hash: DWTA, K: 2, L: 4, BucketCap: 4,
		MinActive: 1, LR: 0.01, Workers: 1, RebuildEvery: 15, Seed: 23,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 150, 32)
	if p1 := evalP1(n, p, 150); p1 < 0.4 {
		t.Errorf("P@1 = %.3f: label inclusion in active set appears broken", p1)
	}
}

func TestMaxActiveCaps(t *testing.T) {
	p := newPlanted(50, 40, 5, 8)
	cfg := Config{
		InputDim: 50, HiddenDim: 16, OutputDim: 40,
		Hash: DWTA, K: 1, L: 20, BucketCap: 64, // aggressive: many candidates
		MinActive: 4, MaxActive: 10, Workers: 1, Seed: 25,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := n.TrainBatch(p.batch(64))
	meanActive := float64(st.ActiveSum) / float64(st.Samples)
	if meanActive > 10.5 {
		t.Errorf("MaxActive not enforced: mean active %.1f > 10", meanActive)
	}
}

func TestDeepStackLearns(t *testing.T) {
	p := newPlanted(80, 25, 6, 15)
	cfg := Config{
		InputDim: 80, HiddenDim: 32, OutputDim: 25,
		HiddenLayers: []int{24, 16}, // input→32→24→16→25
		Hash:         DWTA, K: 2, L: 10, BucketCap: 32,
		MinActive: 8, LR: 0.01, Workers: 2, Locked: true,
		RebuildEvery: 20, Seed: 33,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.middle); got != 2 {
		t.Fatalf("built %d middle layers, want 2", got)
	}
	if n.lastDim != 16 {
		t.Fatalf("lastDim = %d, want 16", n.lastDim)
	}
	trainN(t, n, p, 200, 64)
	if p1 := evalP1(n, p, 200); p1 < 0.4 {
		t.Errorf("deep stack failed to learn: P@1 = %.3f", p1)
	}
}

func TestDeepStackGradientCheck(t *testing.T) {
	// Numerical gradient through the full stack: loss must decrease along
	// repeated single-batch steps on a fixed batch (sanity of chained
	// backprop; the per-layer math is covered by layer tests).
	p := newPlanted(40, 10, 4, 16)
	cfg := Config{
		InputDim: 40, HiddenDim: 16, OutputDim: 10,
		HiddenLayers: []int{12},
		NoSampling:   true, LR: 0.05, Workers: 1, Seed: 35,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := p.batch(16)
	first := n.TrainBatch(b).Loss
	var last float64
	for i := 0; i < 40; i++ {
		last = n.TrainBatch(b).Loss
	}
	if last >= first*0.9 {
		t.Errorf("deep-stack loss barely moved on a fixed batch: %.4f -> %.4f", first, last)
	}
}

func TestDeepStackValidation(t *testing.T) {
	cfg := Config{InputDim: 10, HiddenDim: 8, OutputDim: 10,
		HiddenLayers: []int{4, 0}, K: 1, L: 1}
	if err := cfg.Validate(); err == nil {
		t.Error("zero-width stacked layer accepted")
	}
}

func TestDeepStackSaveLoad(t *testing.T) {
	p := newPlanted(50, 15, 5, 17)
	cfg := Config{
		InputDim: 50, HiddenDim: 16, OutputDim: 15,
		HiddenLayers: []int{12},
		Hash:         DWTA, K: 2, L: 6,
		MinActive: 6, LR: 0.01, Workers: 1, Seed: 37,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		n.TrainBatch(p.batch(32))
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.middle) != 1 || loaded.lastDim != 12 {
		t.Fatalf("stack shape not restored: %d middle, lastDim %d",
			len(loaded.middle), loaded.lastDim)
	}
	x := p.batch(1).Sample(0)
	s1 := make([]float32, 15)
	s2 := make([]float32, 15)
	n.Scores(x, s1)
	loaded.Scores(x, s2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("deep checkpoint round trip changed score[%d]: %g vs %g", i, s1[i], s2[i])
		}
	}
}

func TestDeepStackWithBF16AndScattered(t *testing.T) {
	// Combined configuration stress: deep stack + BF16 output quantization
	// + scattered placement + locked gradients with 2 workers must train
	// without corruption.
	p := newPlanted(60, 18, 5, 18)
	cfg := Config{
		InputDim: 60, HiddenDim: 20, OutputDim: 18,
		HiddenLayers: []int{14},
		Hash:         DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 2, Locked: true,
		Precision: layer.BF16Both, Placement: layer.Scattered,
		RebuildEvery: 20, Seed: 39,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 120, 64)
	if p1 := evalP1(n, p, 150); p1 < 0.3 {
		t.Errorf("combined config failed to learn: P@1 = %.3f", p1)
	}
}

func TestOutOfRangeLabelsIgnored(t *testing.T) {
	cfg := Config{InputDim: 20, HiddenDim: 8, OutputDim: 10,
		Hash: DWTA, K: 2, L: 4, MinActive: 4, Workers: 1, Seed: 41}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b sparse.Builder
	b.Add([]int32{1}, []float32{1}, []int32{3, 99}) // 99 out of range
	batch, _ := b.CSR()
	st := n.TrainBatch(batch) // must not panic
	if st.Samples != 1 {
		t.Errorf("samples %d", st.Samples)
	}
}

func TestUniformSamplingLearns(t *testing.T) {
	p := newPlanted(60, 20, 5, 12)
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		UniformSampling: true, MinActive: 6,
		LR: 0.01, Workers: 1, Seed: 19,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n.Tables() != nil {
		t.Error("uniform sampling must not build hash tables")
	}
	trainN(t, n, p, 120, 64)
	if p1 := evalP1(n, p, 200); p1 < 0.4 {
		t.Errorf("uniform sampling failed to learn: P@1 = %.3f", p1)
	}
	st := n.TrainBatch(p.batch(64))
	meanActive := float64(st.ActiveSum) / float64(st.Samples)
	if meanActive >= 20 {
		t.Errorf("uniform sampling not sparse: %g", meanActive)
	}
}

func TestUniformAndNoSamplingConflict(t *testing.T) {
	cfg := Config{InputDim: 5, HiddenDim: 4, OutputDim: 5,
		NoSampling: true, UniformSampling: true}
	if err := cfg.Validate(); err == nil {
		t.Error("conflicting sampling modes accepted")
	}
}

func TestPredictSampled(t *testing.T) {
	p := newPlanted(80, 25, 6, 14)
	cfg := Config{
		InputDim: 80, HiddenDim: 24, OutputDim: 25,
		Hash: DWTA, K: 2, L: 12, BucketCap: 32,
		MinActive: 8, LR: 0.01, Workers: 1, RebuildEvery: 15, Seed: 29,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 150, 64)

	// After training, sampled inference should usually agree with the exact
	// top-1 (label neurons dominate their prototypes' buckets).
	eval := p.batch(100)
	scores := make([]float32, 25)
	agree := 0
	for i := 0; i < eval.Len(); i++ {
		exact := n.Predict(eval.Sample(i), 1, scores)
		sampled, err := n.PredictSampled(eval.Sample(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 1 && len(sampled) >= 1 && exact[0] == sampled[0] {
			agree++
		}
	}
	if agree < 40 {
		t.Errorf("sampled inference agrees with exact top-1 on only %d/100 samples", agree)
	}

	// Ranked output is consistent: first sampled prediction has the highest
	// logit among returned ids.
	out, err := n.PredictSampled(eval.Sample(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 1 {
		n.Scores(eval.Sample(0), scores)
		if scores[out[0]] < scores[out[1]] {
			t.Error("PredictSampled ranking inconsistent")
		}
	}
}

func TestPredictSampledErrorsWithoutLSH(t *testing.T) {
	// Both non-LSH modes must return the documented error — not panic — so
	// callers can fall back to the exact path.
	for name, cfg := range map[string]Config{
		"no-sampling": {InputDim: 10, HiddenDim: 4, OutputDim: 8, NoSampling: true, Workers: 1},
		"uniform":     {InputDim: 10, HiddenDim: 4, OutputDim: 8, UniformSampling: true, Workers: 1},
	} {
		n, err := New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		x := sparse.Vector{Indices: []int32{1}, Values: []float32{1}}
		if _, err := n.PredictSampled(x, 1); !errors.Is(err, ErrNoSampling) {
			t.Errorf("%s: PredictSampled error = %v, want ErrNoSampling", name, err)
		}
		// The fallback-to-exact path keeps working on the same model.
		scores := make([]float32, 8)
		if got := n.Predict(x, 2, scores); len(got) != 2 {
			t.Errorf("%s: exact fallback Predict returned %v", name, got)
		}
	}
}

func TestEmptyLabelSample(t *testing.T) {
	// Samples with no labels must not crash: they contribute pure negative
	// sampling pressure.
	cfg := Config{
		InputDim: 20, HiddenDim: 8, OutputDim: 10,
		Hash: DWTA, K: 2, L: 4, MinActive: 4, Workers: 1, Seed: 27,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b sparse.Builder
	b.Add([]int32{1, 5}, []float32{1, 1}, nil) // no labels
	b.Add(nil, nil, []int32{3})                // no features
	batch, err := b.CSR()
	if err != nil {
		t.Fatal(err)
	}
	st := n.TrainBatch(batch)
	if st.Samples != 2 {
		t.Errorf("processed %d samples", st.Samples)
	}
}

func TestPredictScoresBufferPanic(t *testing.T) {
	cfg := Config{InputDim: 10, HiddenDim: 4, OutputDim: 8, K: 1, L: 1, Workers: 1, Seed: 1}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("short scores buffer did not panic")
		}
	}()
	n.Predict(sparse.Vector{}, 1, make([]float32, 3))
}
