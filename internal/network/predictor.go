package network

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// ErrNoSampling is returned by PredictSampled on models built without LSH
// sampling (NoSampling or UniformSampling): there is no candidate structure
// to retrieve from, so exact Predict is the right call.
var ErrNoSampling = errors.New("network: PredictSampled requires an LSH-sampled model")

// Predictor serves inference from one forwardState with per-call scratch
// drawn from a pool. Over a snapshot state (Network.Snapshot) every method
// is safe for unbounded concurrent use, including concurrently with
// continued training on the source network. Over the live state
// (the network's own compatibility path) it inherits the network's
// single-threaded contract with training.
type Predictor struct {
	fwd   *forwardState
	seed  uint64
	steps int64
	calls atomic.Uint64
	pool  sync.Pool // *scratch
}

func newPredictor(f *forwardState, seed uint64) *Predictor {
	p := &Predictor{fwd: f, seed: seed}
	p.pool.New = func() any {
		// The RNG stream is reseeded per call in get(); the construction
		// stream value never survives to a draw.
		return f.newScratch(false, seed, 0)
	}
	return p
}

// Snapshot produces an immutable Predictor over a copy of the current
// weights and a clone of the LSH tables. Call it between TrainBatch calls
// (the same contract as Save); afterwards the Predictor is fully
// independent — training continues on the network without ever touching
// the snapshot, and any number of goroutines may serve from it.
//
// Under EnableDeltaTracking the copy is copy-on-write against the previous
// snapshot: only rows the touch journal names since the last Snapshot are
// duplicated, the rest share backing arrays with the (immutable) previous
// views — publish cost drops from O(model) to O(touched rows).
func (n *Network) Snapshot() *Predictor {
	p, _ := n.SnapshotDelta()
	return p
}

// snapshotSeed derives the predictor seed at a given optimizer step: the
// step is folded in so successive snapshots draw different (still
// deterministic) random top-up streams. A replica reconstructing a
// predictor at the same step derives the same seed — part of the
// bit-identity contract.
func snapshotSeed(cfg *Config, step int64) uint64 {
	return splitSeed(cfg.Seed, 6) ^ uint64(step)
}

// fullSnapshotState deep-copies the live forward state.
func (n *Network) fullSnapshotState() *forwardState {
	f := &forwardState{
		cfg:       n.cfg,
		hidden:    n.hidden.SnapshotWeights(),
		output:    n.output.SnapshotWeights(),
		middleAll: n.fwd.middleAll, // immutable index lists, shared
		dims:      n.fwd.dims,
		lastDim:   n.lastDim,
		all:       n.fwd.all,
	}
	for _, ml := range n.middle {
		f.middle = append(f.middle, ml.SnapshotWeights())
	}
	if n.tables != nil {
		f.tables = n.tables.Clone()
	}
	if n.sh != nil {
		f.shTables = cloneShardTables(n.sh.tables)
		f.plan = n.sh.plan
	}
	return f
}

// Steps returns the optimizer step count of the source network at snapshot
// time — serving observability for "how fresh is this snapshot".
func (p *Predictor) Steps() int64 { return p.steps }

// Config returns the configuration of the snapshotted network.
func (p *Predictor) Config() Config { return p.fwd.cfg }

// Sampled reports whether the predictor carries LSH tables (single-set or
// per-shard), i.e. whether PredictSampled is available.
func (p *Predictor) Sampled() bool { return p.fwd.sampled() }

func (p *Predictor) get() *scratch {
	ws := p.pool.Get().(*scratch)
	ws.ks = simd.Active()
	// Reseed the random top-up stream per call: sampled answers become a
	// pure function of (predictor seed, call index, query) instead of the
	// scratch's pooling history — sync.Pool is free to drop and recreate
	// scratches (it does so randomly under the race detector), and two
	// predictors at the same seed and call sequence still draw identical
	// top-ups. The replica bit-identity contract relies on this.
	ws.rngSrc.Seed(p.seed, p.calls.Add(1))
	return ws
}

// Scores computes the full output-layer logits for one sample into out
// (len OutputDim) — the exact forward pass.
func (p *Predictor) Scores(x sparse.Vector, out []float32) {
	p.scoresWorkers(x, out, 1)
}

// scoresWorkers is Scores with the output rows tiled over workers — the
// network's single-caller evaluation path keeps its intra-call parallelism;
// concurrent serving uses workers=1 and scales across calls instead.
func (p *Predictor) scoresWorkers(x sparse.Vector, out []float32, workers int) {
	if len(out) != p.fwd.cfg.OutputDim {
		panic("network: Scores buffer must have OutputDim length")
	}
	ws := p.get()
	defer p.pool.Put(ws)
	p.fwd.scoresInto(ws, x, out, workers)
}

// Predict returns the top-k scoring label ids for one sample, highest
// first. The full output layer is ranked (exact inference); results are
// bit-identical to Network.Predict on the same weights.
func (p *Predictor) Predict(x sparse.Vector, k int) []int32 {
	ws := p.get()
	defer p.pool.Put(ws)
	p.fwd.forwardStack(ws, x)
	scores := ws.logits[:p.fwd.cfg.OutputDim]
	p.fwd.forwardAllOut(ws, scores, 1)
	// Rank in place in the pooled active buffer, then hand back a fresh
	// slice the caller may retain. Sharded models take the scatter-gather
	// selection inside rank — bit-identical to the single heap.
	top := p.fwd.rank(ws, scores, k)
	out := make([]int32, len(top))
	copy(out, top)
	return out
}

// PredictSampled returns the top-k label ids ranked only over the LSH-
// retrieved candidate set — sub-linear inference, the deployment-time
// counterpart of SLIDE's sampled training. Returns ErrNoSampling for
// models built without LSH tables.
func (p *Predictor) PredictSampled(x sparse.Vector, k int) ([]int32, error) {
	if !p.fwd.sampled() {
		return nil, ErrNoSampling
	}
	ws := p.get()
	defer p.pool.Put(ws)
	return p.fwd.predictSampled(ws, x, k), nil
}

// PredictBatch runs exact top-k prediction over a batch of samples,
// fanning the samples out across GOMAXPROCS goroutines (each drawing its
// own scratch from the pool). out[i] corresponds to xs[i].
func (p *Predictor) PredictBatch(xs []sparse.Vector, k int) [][]int32 {
	out := make([][]int32, len(xs))
	nw := min(runtime.GOMAXPROCS(0), len(xs))
	if nw <= 1 {
		for i, x := range xs {
			out[i] = p.Predict(x, k)
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += nw {
				out[i] = p.Predict(xs[i], k)
			}
		}(w)
	}
	wg.Wait()
	return out
}

// fusedChunk bounds how many samples a fused batch walk holds in flight:
// each sample pins one scratch (O(OutputDim) logits plus activations) for
// the duration of its chunk, so an unbounded client batch must not turn
// into unbounded server memory. 64 keeps the amortization (the weight
// stream is read once per 64 samples instead of once per sample) while
// capping the pinned scratch at 64 x OutputDim floats.
const fusedChunk = 64

// PredictBatchK runs exact top-k prediction over a coalesced micro-batch
// with per-sample k: out[i] holds the top-ks[i] labels for xs[i]. The
// hidden stack runs per sample, then one fused ForwardAllBatch per chunk
// of up to fusedChunk samples walks the output weight matrix once for the
// whole chunk (row-outer, sample-inner), so the dominant weight stream is
// amortized across the batch instead of re-read per sample. Per-sample
// scores and rankings are bit-identical to Predict on the same weights.
//
// The walk itself is single-threaded: the serving pipeline runs one
// PredictBatchK per batcher worker and scales across workers, the same
// across-calls concurrency model as Predict. Use PredictBatch for
// single-caller data-parallel fan-out.
func (p *Predictor) PredictBatchK(xs []sparse.Vector, ks []int) [][]int32 {
	out := make([][]int32, len(xs))
	quantized := p.fwd.qout != nil
	for lo := 0; lo < len(xs); lo += fusedChunk {
		hi := min(lo+fusedChunk, len(xs))
		n := hi - lo
		wss := make([]*scratch, n)
		hs := make([][]float32, n)
		hBFs := make([][]bf16.BF16, n)
		scores := make([][]float32, n)
		var qas [][]uint8
		var sas []float32
		var zps []int32
		if quantized {
			qas = make([][]uint8, n)
			sas = make([]float32, n)
			zps = make([]int32, n)
		}
		for i, x := range xs[lo:hi] {
			ws := p.get()
			wss[i] = ws
			p.fwd.forwardStack(ws, x)
			hs[i] = ws.last()
			hBFs[i] = ws.hBF
			scores[i] = ws.logits[:p.fwd.cfg.OutputDim]
			if quantized {
				p.fwd.quantActs(ws)
				qas[i] = ws.qa
				sas[i] = ws.qsa
				zps[i] = ws.qzp
			}
		}
		// One fused walk over the chunk, on whichever output representation
		// this predictor holds. Per-(row, sample) kernel calls match the
		// per-sample path exactly, so both representations keep the
		// batched-equals-direct bit-identity contract.
		batchRange := func(ks *simd.Kernels, rlo, rhi int) {
			if quantized {
				p.fwd.qout.ForwardAllBatchRange(ks, qas, sas, zps, scores, rlo, rhi)
			} else {
				p.fwd.output.ForwardAllBatchRange(ks, hs, hBFs, scores, rlo, rhi)
			}
		}
		if plan := p.fwd.plan; plan != nil && plan.s > 1 {
			// Sharded scatter: each shard's contiguous row range walks the
			// chunk concurrently (disjoint output columns, shared inputs),
			// with the same per-(row, sample) kernel calls as the fused
			// single-threaded walk — scores are bit-identical.
			var wg sync.WaitGroup
			for s := 0; s < plan.s; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					batchRange(wss[0].ks, int(plan.bounds[s]), int(plan.bounds[s+1]))
				}(s)
			}
			wg.Wait()
		} else {
			batchRange(wss[0].ks, 0, p.fwd.cfg.OutputDim)
		}
		for i := lo; i < hi; i++ {
			top := p.fwd.rank(wss[i-lo], scores[i-lo], ks[i])
			out[i] = make([]int32, len(top))
			copy(out[i], top)
			p.pool.Put(wss[i-lo])
		}
	}
	return out
}

// PrecisionAtK scores one labelled sample: the fraction of the k top
// predictions that are true labels. The building block of the parallel
// evaluation loop.
func (p *Predictor) PrecisionAtK(x sparse.Vector, labels []int32, k int) float64 {
	ws := p.get()
	defer p.pool.Put(ws)
	p.fwd.forwardStack(ws, x)
	scores := ws.logits[:p.fwd.cfg.OutputDim]
	p.fwd.forwardAllOut(ws, scores, 1)
	return metrics.PrecisionAtK(scores, labels, k)
}
