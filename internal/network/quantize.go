package network

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/quant"
)

// Quantized serving predictors. Quantize derives a packed-int8 (or
// experimental int4) predictor from a full-precision snapshot: the output
// layer — the overwhelming bulk of a SLIDE model — is re-rendered as
// per-row symmetric integer codes, while the hidden stack, LSH tables,
// shard plan, and inference seed are shared with the source predictor
// unchanged. Training never quantizes; this is strictly a publish-side
// transform, applied between Snapshot and serving (or between Snapshot and
// replication, see internal/replicate).

// Quantize returns a new Predictor serving from a quantized rendering of
// this predictor's output layer. bits is 8 or 4. The source predictor is
// unmodified and remains fully usable; the two share everything except the
// output representation. Snapshots containing NaN/Inf rows refuse to
// quantize with an error wrapping ErrNonFinite (the same quarantine signal
// the health layer tests for).
func (p *Predictor) Quantize(bits int) (*Predictor, error) {
	if p.fwd.qout != nil {
		return nil, fmt.Errorf("network: predictor is already quantized (int%d)", p.fwd.qout.Bits)
	}
	q, err := quant.QuantizeRowWeights(p.fwd.output, bits)
	if err != nil {
		return nil, err
	}
	f := *p.fwd // shallow copy: hidden/middle/tables/plan/dims shared
	f.output = nil
	f.qout = q
	qp := newPredictor(&f, p.seed)
	qp.steps = p.steps
	return qp, nil
}

// Quantized reports whether this predictor serves from packed integer rows.
func (p *Predictor) Quantized() bool { return p.fwd.qout != nil }

// QuantizedBits returns the packed bit width (8 or 4), or 0 for a
// full-precision predictor.
func (p *Predictor) QuantizedBits() int {
	if p.fwd.qout == nil {
		return 0
	}
	return p.fwd.qout.Bits
}

// PrecisionName names the output-layer storage this predictor serves from:
// "int8"/"int4" when quantized, "bf16" when weights are stored bfloat16,
// "f32" otherwise (FP32 and BF16Act both keep f32 weight rows).
func (p *Predictor) PrecisionName() string {
	if q := p.fwd.qout; q != nil {
		return fmt.Sprintf("int%d", q.Bits)
	}
	if p.fwd.cfg.Precision == layer.BF16Both {
		return "bf16"
	}
	return "f32"
}

// PackedBytes returns the serialized size of the output-layer
// representation — packed bytes for a quantized predictor, the f32/BF16
// view size otherwise. The /stats "snapshot bytes" number and the bench
// report's compression ratio both come from here.
func (p *Predictor) PackedBytes() int64 {
	if q := p.fwd.qout; q != nil {
		return q.PackedBytes()
	}
	return outputViewBytes(p.fwd)
}

// outputViewBytes computes the SerializeView wire size of the f32/BF16
// output view: header + rows + bias.
func outputViewBytes(f *forwardState) int64 {
	elem := int64(4)
	if f.cfg.Precision == layer.BF16Both {
		elem = 2
	}
	return 12 + int64(f.output.Out)*int64(f.output.In)*elem + 4*int64(f.output.Out)
}
