package network

import (
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/sparse"
)

// guardBenchSetup builds a mid-sized planted problem and a fixed batch so
// the guards-on/guards-off pair measures the same work.
func guardBenchSetup(b *testing.B) (*Network, sparse.Batch) {
	b.Helper()
	p := newPlanted(256, 512, 8, 31)
	cfg := Config{
		InputDim: 256, HiddenDim: 64, OutputDim: 512,
		Hash: DWTA, K: 3, L: 10, BucketCap: 64,
		MinActive: 32, LR: 0.01, Workers: 1,
		Precision: layer.FP32, RebuildEvery: 1 << 30, Seed: 77,
	}
	n, err := New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := p.batch(64)
	n.TrainBatch(batch) // warm caches and tables
	return n, batch
}

// BenchmarkTrainBatchGuardsOff is the baseline for the guard-overhead
// acceptance bound (guards-on must stay within ~2%).
func BenchmarkTrainBatchGuardsOff(b *testing.B) {
	n, batch := guardBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainBatch(batch)
	}
}

// BenchmarkTrainBatchGuardsOn measures the per-step health guards: the
// non-finite scan of each sample's active logits plus the loss check.
func BenchmarkTrainBatchGuardsOn(b *testing.B) {
	n, batch := guardBenchSetup(b)
	n.SetGuards(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.TrainBatch(batch)
	}
}
