package network

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/quant"
)

// Sparse delta snapshots: the engine-level machinery behind snapshot
// replication (internal/replicate). SLIDE's defining property is that each
// optimizer step touches only the active-set rows, so consecutive snapshots
// differ in a tiny fraction of weights. With EnableDeltaTracking on, the
// layers journal every row/column their ADAM passes step, and SnapshotDelta
// turns the journal into:
//
//   - a copy-on-write Predictor (only touched vectors copied; the rest
//     share backing arrays with the previous snapshot), and
//   - a Delta naming exactly what changed, with writers that encode the
//     touched vectors — plus the full (small) dense state: hidden bias,
//     middle stack — from the snapshot's immutable views.
//
// A remote Predictor applies the encoded payloads with ApplyDelta, again
// copy-on-write, and lands bit-identical to a local snapshot at the same
// step: weights match because the payloads carry exact bytes, inference RNG
// matches because the predictor seed is a pure function of (config seed,
// step), and LSH table queries match because tables ship whole on the rare
// versions where a scheduled rebuild changed them and are shared (pointer
// equality on the replica, clone sharing on the trainer) everywhere else.

// EnableDeltaTracking turns on touch journaling in the sparse layers so
// subsequent Snapshot/SnapshotDelta calls are copy-on-write and emit deltas.
// Call before training (or between batches); idempotent.
func (n *Network) EnableDeltaTracking() {
	if n.deltas {
		return
	}
	n.deltas = true
	n.hidden.EnableJournal()
	n.output.EnableJournal()
	// The middle stack is dense-updated every batch (ApplyAdamAll) — no
	// journal; deltas always carry it whole.
}

// Delta names what changed between two consecutive snapshots of one
// network, holding references into the *to* snapshot's immutable views so
// payloads can be encoded at any time after the snapshot (training may have
// moved on; the views never change).
type Delta struct {
	// FromStep/ToStep are the optimizer step counts of the two snapshots.
	FromStep, ToStep int64
	// HiddenCols/OutputRows are the journaled touched ids (ascending).
	HiddenCols, OutputRows []int32
	// TablesChanged reports whether a scheduled LSH rebuild ran in the
	// interval; only then does the delta carry table bytes.
	TablesChanged bool

	to *forwardState
}

// SnapshotDelta is Snapshot plus the delta against the previous snapshot.
// The delta is nil when tracking is disabled or this is the first snapshot
// since tracking was enabled (callers publish a full base instead).
func (n *Network) SnapshotDelta() (*Predictor, *Delta) {
	var f *forwardState
	var d *Delta
	if !n.deltas || n.lastSnap == nil {
		if n.deltas {
			// Discard journal entries accumulated before the first snapshot:
			// the full copy below carries them.
			n.hidden.DrainJournal()
			n.output.DrainJournal()
		}
		f = n.fullSnapshotState()
	} else {
		hiddenCols := n.hidden.DrainJournal()
		outputRows := n.output.DrainJournal()
		tablesChanged := n.rebuildGen != n.lastSnapGen
		f = &forwardState{
			cfg:       n.cfg,
			hidden:    n.hidden.SnapshotWeightsCOW(n.lastSnap.hidden, hiddenCols),
			output:    n.output.SnapshotWeightsCOW(n.lastSnap.output, outputRows),
			middleAll: n.fwd.middleAll,
			dims:      n.fwd.dims,
			lastDim:   n.lastDim,
			all:       n.fwd.all,
		}
		for _, ml := range n.middle {
			f.middle = append(f.middle, ml.SnapshotWeights())
		}
		if n.tables != nil {
			if tablesChanged {
				f.tables = n.tables.Clone()
			} else {
				f.tables = n.lastSnap.tables // unchanged since last snapshot: share
			}
		} else if n.sh != nil {
			if tablesChanged {
				f.shTables = cloneShardTables(n.sh.tables)
			} else {
				f.shTables = n.lastSnap.shTables // unchanged: share the clone
			}
			f.plan = n.sh.plan
		}
		d = &Delta{
			FromStep:      n.lastStep,
			ToStep:        n.step,
			HiddenCols:    hiddenCols,
			OutputRows:    outputRows,
			TablesChanged: tablesChanged,
			to:            f,
		}
	}
	if n.deltas {
		n.lastSnap = f
		n.lastStep = n.step
		n.lastSnapGen = n.rebuildGen
	}
	p := newPredictor(f, snapshotSeed(&n.cfg, n.step))
	p.steps = n.step
	return p, d
}

// WriteHidden encodes the touched hidden columns (plus the full hidden
// bias, which moves every batch).
func (d *Delta) WriteHidden(w io.Writer) error {
	return d.to.hidden.SerializeColsDelta(w, d.HiddenCols)
}

// WriteMiddle encodes the dense middle stack whole (layer count, then each
// view). Empty stack encodes as a zero count.
func (d *Delta) WriteMiddle(w io.Writer) error { return writeMiddleViews(w, d.to.middle) }

// WriteOutput encodes the touched output rows and their biases.
func (d *Delta) WriteOutput(w io.Writer) error {
	return d.to.output.SerializeRowsDelta(w, d.OutputRows)
}

// WriteOutputQ encodes the touched output rows quantized to bits (8 or 4):
// each journaled row is packed on the fly from the snapshot's f32 view, so
// delta publish stays O(touched rows) even on a quantized stream. Because
// row quantization is a pure per-row function, the receiver's patched view
// is bit-identical to a full re-quantize of the trainer snapshot.
func (d *Delta) WriteOutputQ(w io.Writer, bits int) error {
	return quant.WriteRowsDelta(w, d.to.output, d.OutputRows, bits)
}

// WriteTables encodes the full LSH table state (the single set, or every
// per-shard set back to back on sharded models). Valid only when
// TablesChanged — otherwise the receiver keeps its current tables.
func (d *Delta) WriteTables(w io.Writer) error {
	if !d.TablesChanged || !d.to.sampled() {
		return fmt.Errorf("network: delta carries no table change")
	}
	if len(d.to.shTables) > 0 {
		return serializeShardTables(w, d.to.shTables)
	}
	return d.to.tables.Serialize(w)
}

// ConfigChecksum fingerprints the model-shape fields a delta producer and
// consumer must agree on (dims, hash family and geometry, sampling bounds,
// precision, seed). Training-schedule fields (LR, betas, rebuild cadence)
// are deliberately excluded — an LR schedule must not force re-syncs.
func (d *Delta) ConfigChecksum() uint32 { return configChecksum(&d.to.cfg) }

// ConfigChecksum is the predictor-side counterpart of Delta.ConfigChecksum.
func (p *Predictor) ConfigChecksum() uint32 { return configChecksum(&p.fwd.cfg) }

func configChecksum(cfg *Config) uint32 {
	var b bytes.Buffer
	fields := []uint64{
		uint64(cfg.InputDim), uint64(cfg.HiddenDim), uint64(cfg.OutputDim),
		uint64(cfg.HiddenActivation), uint64(cfg.Hash),
		uint64(cfg.K), uint64(cfg.L), uint64(cfg.BinSize),
		uint64(cfg.BucketCap), uint64(cfg.BucketPolicy),
		uint64(cfg.MinActive), uint64(cfg.MaxActive),
		boolU64(cfg.NoSampling), boolU64(cfg.UniformSampling),
		uint64(cfg.Precision), cfg.Seed,
		uint64(len(cfg.HiddenLayers)),
	}
	for _, d := range cfg.HiddenLayers {
		fields = append(fields, uint64(d))
	}
	// Shards partitions the active-set budgets and LSH tables, so producer
	// and consumer must agree on it. Appended only when set, so unsharded
	// fingerprints keep their pre-sharding values.
	if cfg.Shards > 0 {
		fields = append(fields, uint64(cfg.Shards))
	}
	binary.Write(&b, binary.LittleEndian, fields)
	return crc32.Checksum(b.Bytes(), castagnoli)
}

// WriteBaseConfig encodes the predictor's config and step — the replication
// base counterpart of the checkpoint config section (same payload layout;
// the rebuild-schedule position is zeroed, a replica does not train).
func (p *Predictor) WriteBaseConfig(w io.Writer) error {
	return writeConfigPayload(w, &p.fwd.cfg, p.steps, 0, 0)
}

// WriteHidden encodes the full hidden view (weights and bias, no optimizer
// state).
func (p *Predictor) WriteHidden(w io.Writer) error { return p.fwd.hidden.SerializeView(w) }

// WriteMiddle encodes the dense middle stack (layer count, then each view).
func (p *Predictor) WriteMiddle(w io.Writer) error { return writeMiddleViews(w, p.fwd.middle) }

// WriteOutput encodes the full output view: the f32/BF16 codec on a
// full-precision predictor, the packed codec on a quantized one.
func (p *Predictor) WriteOutput(w io.Writer) error {
	if q := p.fwd.qout; q != nil {
		return q.SerializeView(w)
	}
	return p.fwd.output.SerializeView(w)
}

// WriteOutputQ encodes the output view quantized to bits (8 or 4) — the
// hub-side base encoder for a quantized stream. An already-quantized
// predictor at the same width writes its packed rows directly; otherwise
// the f32 view is quantized on the fly (the source is unmodified).
func (p *Predictor) WriteOutputQ(w io.Writer, bits int) error {
	if q := p.fwd.qout; q != nil {
		if q.Bits != bits {
			return fmt.Errorf("network: predictor is quantized int%d, stream wants int%d", q.Bits, bits)
		}
		return q.SerializeView(w)
	}
	q, err := quant.QuantizeRowWeights(p.fwd.output, bits)
	if err != nil {
		return err
	}
	return q.SerializeView(w)
}

// HasTables reports whether the predictor carries LSH tables (single-set or
// per-shard — and thus whether WriteTables produces a payload).
func (p *Predictor) HasTables() bool { return p.fwd.sampled() }

// WriteTables encodes the full LSH table state (the single set, or every
// per-shard set back to back on sharded models).
func (p *Predictor) WriteTables(w io.Writer) error {
	if len(p.fwd.shTables) > 0 {
		return serializeShardTables(w, p.fwd.shTables)
	}
	if p.fwd.tables == nil {
		return fmt.Errorf("network: predictor has no LSH tables")
	}
	return p.fwd.tables.Serialize(w)
}

func writeMiddleViews(w io.Writer, middle []*layer.RowWeights) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(middle))); err != nil {
		return err
	}
	for i, mv := range middle {
		if err := mv.SerializeView(w); err != nil {
			return fmt.Errorf("middle layer %d: %w", i+1, err)
		}
	}
	return nil
}

func readMiddleViews(r io.Reader, dims []int) ([]*layer.RowWeights, error) {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("reading middle-stack count: %w", err)
	}
	if int(count) != len(dims)-1 {
		return nil, fmt.Errorf("middle stack carries %d layers, config declares %d", count, len(dims)-1)
	}
	var middle []*layer.RowWeights
	for i := 1; i < len(dims); i++ {
		mv, err := layer.ReadRowWeights(r)
		if err != nil {
			return nil, fmt.Errorf("middle layer %d: %w", i, err)
		}
		if mv.In != dims[i-1] || mv.Out != dims[i] || mv.Precision() != layer.FP32 {
			return nil, fmt.Errorf("middle layer %d is %dx%d/%v, config declares %dx%d/fp32",
				i, mv.In, mv.Out, mv.Precision(), dims[i-1], dims[i])
		}
		middle = append(middle, mv)
	}
	return middle, nil
}

// BaseParts carries the decoded (already CRC-verified) payloads of one full
// base snapshot. Tables must be nil exactly when the config disables
// sampling. QBits != 0 declares the Output payload quantized (written by
// WriteOutputQ): the reconstructed predictor serves from packed int rows.
type BaseParts struct {
	Config, Hidden, Middle, Output, Tables []byte
	QBits                                  int
}

// NewPredictorFromBase reconstructs a serving Predictor from base payloads
// written by the Write* methods above. The result is bit-identical to the
// trainer-side snapshot it was encoded from: weights come byte-exact from
// the payloads, and the inference seed is re-derived from (config seed,
// step).
func NewPredictorFromBase(parts BaseParts) (*Predictor, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("network: base snapshot: %w", fmt.Errorf(format, args...))
	}
	cfg, step, _, _, err := parseConfigPayload(bytes.NewReader(parts.Config), true, fail)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("network: base snapshot config invalid: %w", err)
	}
	dims, lastDim, middleAll, all := forwardGeometry(&cfg)

	hidden, err := layer.ReadColWeights(bytes.NewReader(parts.Hidden))
	if err != nil {
		return nil, fail("hidden: %w", err)
	}
	if hidden.In != cfg.InputDim || hidden.Out != cfg.HiddenDim || hidden.Precision() != cfg.Precision {
		return nil, fail("hidden view is %dx%d/%v, config declares %dx%d/%v",
			hidden.In, hidden.Out, hidden.Precision(), cfg.InputDim, cfg.HiddenDim, cfg.Precision)
	}
	middle, err := readMiddleViews(bytes.NewReader(parts.Middle), dims)
	if err != nil {
		return nil, fail("%w", err)
	}
	var output *layer.RowWeights
	var qout *quant.RowQ
	if parts.QBits != 0 {
		qout, err = quant.ReadRowQ(bytes.NewReader(parts.Output))
		if err != nil {
			return nil, fail("output: %w", err)
		}
		if qout.In != lastDim || qout.Out != cfg.OutputDim || qout.Bits != parts.QBits {
			return nil, fail("output view is %dx%d/int%d, stream declares %dx%d/int%d",
				qout.In, qout.Out, qout.Bits, lastDim, cfg.OutputDim, parts.QBits)
		}
	} else {
		output, err = layer.ReadRowWeights(bytes.NewReader(parts.Output))
		if err != nil {
			return nil, fail("output: %w", err)
		}
		if output.In != lastDim || output.Out != cfg.OutputDim || output.Precision() != cfg.Precision {
			return nil, fail("output view is %dx%d/%v, config declares %dx%d/%v",
				output.In, output.Out, output.Precision(), lastDim, cfg.OutputDim, cfg.Precision)
		}
	}

	var tables *lsh.TableSet
	var shTables []*lsh.TableSet
	var plan *shardPlan
	if cfg.Shards > 0 {
		// Sharded model: rebuild the (config-derived) shard geometry and one
		// table set per shard, restored from the concatenated payload.
		plan = newShardPlan(&cfg)
		for s := 0; s < plan.s; s++ {
			ts, err := newTables(&cfg, lastDim)
			if err != nil {
				return nil, err
			}
			shTables = append(shTables, ts)
		}
		if parts.Tables == nil {
			return nil, fail("sharded config requires a tables payload")
		}
		if err := deserializeShardTables(bytes.NewReader(parts.Tables), shTables); err != nil {
			return nil, fail("tables: %w", err)
		}
	} else {
		tables, err = newTables(&cfg, lastDim)
		if err != nil {
			return nil, err
		}
		if (tables != nil) != (parts.Tables != nil) {
			return nil, fail("tables payload presence (%v) disagrees with config sampling (%v)",
				parts.Tables != nil, tables != nil)
		}
		if tables != nil {
			if err := tables.Deserialize(bytes.NewReader(parts.Tables)); err != nil {
				return nil, fail("tables: %w", err)
			}
		}
	}

	f := &forwardState{
		cfg:       cfg,
		hidden:    hidden,
		middle:    middle,
		output:    output,
		qout:      qout,
		tables:    tables,
		shTables:  shTables,
		plan:      plan,
		middleAll: middleAll,
		dims:      dims,
		lastDim:   lastDim,
		all:       all,
	}
	p := newPredictor(f, snapshotSeed(&cfg, step))
	p.steps = step
	return p, nil
}

// DeltaParts carries the decoded (already CRC-verified) payloads of one
// delta. Tables is nil when the interval saw no LSH rebuild — the receiver
// keeps its current tables. QBits != 0 declares the Output payload
// quantized (written by Delta.WriteOutputQ) and must match the width the
// receiving predictor holds.
type DeltaParts struct {
	FromStep, ToStep       int64
	Hidden, Middle, Output []byte
	Tables                 []byte
	QBits                  int
}

// ApplyDelta patches the delta onto p, returning a new Predictor at
// ToStep. Copy-on-write: only rows the delta carries are fresh allocations,
// everything else shares backing arrays with p, which is never modified —
// a half-applied delta can simply be dropped, so a decode failure can never
// tear the currently-served version. Admission validation is built in: the
// patched rows (exactly the ones the delta touched, plus every bias) are
// scanned for NaN/Inf and a poisoned delta is refused with an error wrapping
// ErrNonFinite — the replica keeps serving the version it has. The caller
// must have verified that FromStep matches (it is re-checked here) and that
// the config fingerprints agree.
func (p *Predictor) ApplyDelta(parts DeltaParts) (*Predictor, error) {
	if parts.FromStep != p.steps {
		return nil, fmt.Errorf("network: delta applies to step %d, predictor is at step %d",
			parts.FromStep, p.steps)
	}
	cfg := p.fwd.cfg
	hidden, hiddenIDs, err := p.fwd.hidden.PatchCols(bytes.NewReader(parts.Hidden))
	if err != nil {
		return nil, fmt.Errorf("network: delta hidden: %w", err)
	}
	middle, err := readMiddleViews(bytes.NewReader(parts.Middle), p.fwd.dims)
	if err != nil {
		return nil, fmt.Errorf("network: delta middle: %w", err)
	}
	if (parts.QBits != 0) != (p.fwd.qout != nil) {
		return nil, fmt.Errorf("network: delta quantization (int%d) disagrees with predictor (quantized=%v)",
			parts.QBits, p.fwd.qout != nil)
	}
	var output *layer.RowWeights
	var qout *quant.RowQ
	var outputIDs []int32
	if q := p.fwd.qout; q != nil {
		if parts.QBits != q.Bits {
			return nil, fmt.Errorf("network: delta is int%d, predictor holds int%d", parts.QBits, q.Bits)
		}
		qout, outputIDs, err = q.PatchRows(bytes.NewReader(parts.Output))
		if err != nil {
			return nil, fmt.Errorf("network: delta output: %w", err)
		}
	} else {
		output, outputIDs, err = p.fwd.output.PatchRows(bytes.NewReader(parts.Output))
		if err != nil {
			return nil, fmt.Errorf("network: delta output: %w", err)
		}
	}
	if err := hidden.CheckFiniteCols(hiddenIDs); err != nil {
		return nil, fmt.Errorf("network: delta to step %d: %w", parts.ToStep, err)
	}
	for i, mv := range middle {
		if err := mv.CheckFinite(1); err != nil {
			return nil, fmt.Errorf("network: delta to step %d: middle %d: %w", parts.ToStep, i+1, err)
		}
	}
	if qout != nil {
		if err := qout.CheckFiniteRows(outputIDs); err != nil {
			return nil, fmt.Errorf("network: delta to step %d: output: %w", parts.ToStep, err)
		}
	} else if err := output.CheckFiniteRows(outputIDs); err != nil {
		return nil, fmt.Errorf("network: delta to step %d: output: %w", parts.ToStep, err)
	}
	tables := p.fwd.tables
	shTables := p.fwd.shTables
	if parts.Tables != nil {
		if p.fwd.plan != nil {
			// Sharded: the payload carries every shard's set; deserialize into
			// fresh sets so the previous predictor's tables stay untouched.
			fresh := make([]*lsh.TableSet, p.fwd.plan.s)
			for s := range fresh {
				ts, err := newTables(&cfg, p.fwd.lastDim)
				if err != nil {
					return nil, err
				}
				fresh[s] = ts
			}
			if err := deserializeShardTables(bytes.NewReader(parts.Tables), fresh); err != nil {
				return nil, fmt.Errorf("network: delta tables: %w", err)
			}
			shTables = fresh
		} else {
			if tables == nil {
				return nil, fmt.Errorf("network: delta carries tables but predictor has none")
			}
			fresh, err := newTables(&cfg, p.fwd.lastDim)
			if err != nil {
				return nil, err
			}
			if err := fresh.Deserialize(bytes.NewReader(parts.Tables)); err != nil {
				return nil, fmt.Errorf("network: delta tables: %w", err)
			}
			tables = fresh
		}
	}
	f := &forwardState{
		cfg:       cfg,
		hidden:    hidden,
		middle:    middle,
		output:    output,
		qout:      qout,
		tables:    tables,
		shTables:  shTables,
		plan:      p.fwd.plan,
		middleAll: p.fwd.middleAll,
		dims:      p.fwd.dims,
		lastDim:   p.fwd.lastDim,
		all:       p.fwd.all,
	}
	np := newPredictor(f, snapshotSeed(&cfg, parts.ToStep))
	np.steps = parts.ToStep
	return np, nil
}
