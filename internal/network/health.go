package network

import (
	"fmt"

	"github.com/slide-cpu/slide/internal/layer"
)

// Snapshot admission validation: before a snapshot version is allowed to
// serve — trainer-side publish, hub admission, replica delta apply — its
// weight views are scanned for NaN/Inf. Base snapshots get a sampled scan
// (every quarantineStride-th weight vector, all biases — poisoned gradients
// always reach the biases of the rows they touch, so the bias scan alone
// catches realistic poison deterministically). Deltas get an exact scan of
// the touched rows, whose ids the delta already names.

// ErrNonFinite is re-exported so callers of CheckFinite can errors.Is
// against it without importing internal/layer.
var ErrNonFinite = layer.ErrNonFinite

// quarantineStride is the sampling stride for base-snapshot scans. Biases
// are always scanned whole; of the weight vectors, every stride-th is. The
// visited set is a pure function of the layer shape, so the verdict is
// deterministic and identical on trainer, hub, and every replica.
const quarantineStride = 16

// CheckFinite validates the predictor's weights: full bias scans plus a
// strided sample of the weight vectors on every layer. Returns nil or an
// error wrapping ErrNonFinite naming the first bad parameter.
func (p *Predictor) CheckFinite() error {
	if err := p.fwd.hidden.CheckFinite(quarantineStride); err != nil {
		return fmt.Errorf("network: snapshot step %d: %w", p.steps, err)
	}
	for i, mv := range p.fwd.middle {
		if err := mv.CheckFinite(quarantineStride); err != nil {
			return fmt.Errorf("network: snapshot step %d: middle %d: %w", p.steps, i+1, err)
		}
	}
	if q := p.fwd.qout; q != nil {
		// Quantized output: the packed integer codes cannot hold NaN/Inf by
		// construction, so the scan covers the f32 sidecars (scales, biases)
		// exactly — cheaper than the strided f32 row scan and just as strict.
		if err := q.CheckFinite(quarantineStride); err != nil {
			return fmt.Errorf("network: snapshot step %d: output: %w", p.steps, err)
		}
		return nil
	}
	if err := p.fwd.output.CheckFinite(quarantineStride); err != nil {
		return fmt.Errorf("network: snapshot step %d: output: %w", p.steps, err)
	}
	return nil
}

// CheckFinite validates exactly the weights the delta touches (plus every
// bias, which deltas always carry whole): exact where the base scan is
// sampled, because here the candidate set is known and small.
func (d *Delta) CheckFinite() error {
	if err := d.to.hidden.CheckFiniteCols(d.HiddenCols); err != nil {
		return fmt.Errorf("network: delta to step %d: %w", d.ToStep, err)
	}
	for i, mv := range d.to.middle {
		// The middle stack is dense-updated and ships whole: scan it whole.
		if err := mv.CheckFinite(1); err != nil {
			return fmt.Errorf("network: delta to step %d: middle %d: %w", d.ToStep, i+1, err)
		}
	}
	if err := d.to.output.CheckFiniteRows(d.OutputRows); err != nil {
		return fmt.Errorf("network: delta to step %d: output: %w", d.ToStep, err)
	}
	return nil
}
