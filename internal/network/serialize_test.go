package network

import (
	"bytes"
	"strings"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
)

func trainedNet(t *testing.T, prec layer.Precision) (*Network, *plantedProblem) {
	t.Helper()
	p := newPlanted(60, 20, 5, 31)
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1,
		Precision: prec, RebuildEvery: 10, Seed: 77,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n.TrainBatch(p.batch(32))
	}
	return n, p
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, prec := range []layer.Precision{layer.FP32, layer.BF16Act, layer.BF16Both} {
		n, p := trainedNet(t, prec)
		var buf bytes.Buffer
		if err := n.Save(&buf); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()), 1)
		if err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		if loaded.Step() != n.Step() {
			t.Errorf("%v: step %d != %d", prec, loaded.Step(), n.Step())
		}
		if loaded.Config().OutputDim != 20 || loaded.Config().Precision != prec {
			t.Errorf("%v: config not restored: %+v", prec, loaded.Config())
		}
		// Scores must match exactly: weights round-trip bit-identically.
		x := p.batch(1).Sample(0)
		s1 := make([]float32, 20)
		s2 := make([]float32, 20)
		n.Scores(x, s1)
		loaded.Scores(x, s2)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("%v: score[%d] %g != %g after round trip", prec, i, s1[i], s2[i])
			}
		}
	}
}

func TestLoadedNetworkKeepsLearning(t *testing.T) {
	n, p := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := evalP1(loaded, p, 150)
	for i := 0; i < 60; i++ {
		loaded.TrainBatch(p.batch(32))
	}
	after := evalP1(loaded, p, 150)
	if after < before-0.1 {
		t.Errorf("resumed training regressed: %.3f -> %.3f", before, after)
	}
	// The optimizer step must have advanced past the checkpoint.
	if loaded.Step() != n.Step()+60 {
		t.Errorf("step = %d, want %d", loaded.Step(), n.Step()+60)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a checkpoint at all, definitely not"), 1); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), 1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	n, _ := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, 100, len(full) / 2, len(full) - 7} {
		if _, err := Load(bytes.NewReader(full[:cut]), 1); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRebuildsTables(t *testing.T) {
	n, p := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := loaded.Tables().Stats()
	if st.Stored == 0 {
		t.Error("tables empty after load: weights were not re-hashed")
	}
	// Sampling must work immediately.
	loaded.TrainBatch(p.batch(8))
}
