package network

import (
	"bytes"
	"math"
	"testing"

	"github.com/slide-cpu/slide/internal/sparse"
)

// quantTestNet builds and briefly trains a small LSH-sampled network on the
// planted problem, returning the network and a labelled probe batch.
func quantTestNet(t *testing.T, seed uint64, shards, workers int) (*Network, *plantedProblem) {
	t.Helper()
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 24,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: workers,
		RebuildEvery: 7, Seed: seed,
	}
	if shards > 0 {
		cfg.Shards = shards
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n, newPlanted(60, 24, 5, seed)
}

func TestQuantizePredictorBasics(t *testing.T) {
	n, pl := quantTestNet(t, 11, 0, 1)
	for i := 0; i < 4; i++ {
		n.TrainBatch(pl.batch(32))
	}
	p := n.Snapshot()
	probes := pl.batch(16)

	// Source answers, recorded before quantization.
	var before [][]int32
	for i := 0; i < probes.Len(); i++ {
		before = append(before, p.Predict(probes.Sample(i), 5))
	}

	q8, err := p.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	if !q8.Quantized() || q8.QuantizedBits() != 8 || q8.PrecisionName() != "int8" {
		t.Fatalf("quantized predictor reports %v/%d/%s",
			q8.Quantized(), q8.QuantizedBits(), q8.PrecisionName())
	}
	if p.Quantized() || p.QuantizedBits() != 0 || p.PrecisionName() != "f32" {
		t.Fatalf("source predictor reports %v/%d/%s after Quantize",
			p.Quantized(), p.QuantizedBits(), p.PrecisionName())
	}
	if q8.PackedBytes() >= p.PackedBytes() {
		t.Fatalf("int8 view (%d bytes) not smaller than f32 view (%d bytes)",
			q8.PackedBytes(), p.PackedBytes())
	}
	if _, err := q8.Quantize(8); err == nil {
		t.Fatal("re-quantizing a quantized predictor must error")
	}
	if q8.Steps() != p.Steps() {
		t.Fatalf("quantized Steps %d != source %d", q8.Steps(), p.Steps())
	}

	// The source must be byte-for-byte untouched: same answers as before.
	for i := 0; i < probes.Len(); i++ {
		got := p.Predict(probes.Sample(i), 5)
		for j := range got {
			if got[j] != before[i][j] {
				t.Fatalf("probe %d: source predictor changed after Quantize: %v -> %v",
					i, before[i], got)
			}
		}
	}
}

// TestQuantizedServingEquivalence: on a quantized predictor every serving
// entry point — Predict, PredictBatchK (mixed k), Scores+rank — produces
// identical results, on both unsharded and sharded (scatter-gather) models.
func TestQuantizedServingEquivalence(t *testing.T) {
	for _, shards := range []int{0, 3} {
		n, pl := quantTestNet(t, 17, shards, 1)
		for i := 0; i < 4; i++ {
			n.TrainBatch(pl.batch(32))
		}
		q, err := n.Snapshot().Quantize(8)
		if err != nil {
			t.Fatal(err)
		}
		probes := pl.batch(20)
		xs := make([]sparse.Vector, probes.Len())
		ks := make([]int, probes.Len())
		singles := make([][]int32, probes.Len())
		for i := range xs {
			xs[i] = probes.Sample(i)
			ks[i] = 1 + i%7 // mixed per-sample k inside one fused walk
			singles[i] = q.Predict(xs[i], ks[i])
		}
		batched := q.PredictBatchK(xs, ks)
		for i := range singles {
			if len(batched[i]) != len(singles[i]) {
				t.Fatalf("shards=%d sample %d: batch %v vs single %v", shards, i, batched[i], singles[i])
			}
			for j := range singles[i] {
				if batched[i][j] != singles[i][j] {
					t.Fatalf("shards=%d sample %d: batch %v vs single %v", shards, i, batched[i], singles[i])
				}
			}
		}

		// Sampled inference must run on the quantized rows too.
		if _, err := q.PredictSampled(probes.Sample(0), 5); err != nil {
			t.Fatalf("shards=%d: PredictSampled on quantized predictor: %v", shards, err)
		}
	}
}

// TestQuantizedPrecisionGate: int8 quantization costs at most half a point
// of precision@1 against the f32 snapshot on a trained planted problem
// (int4 is experimental and exempt from the gate).
func TestQuantizedPrecisionGate(t *testing.T) {
	n, pl := quantTestNet(t, 23, 0, 1)
	for i := 0; i < 30; i++ {
		n.TrainBatch(pl.batch(64))
	}
	p := n.Snapshot()
	q8, err := p.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	eval := pl.batch(400)
	var f32Sum, i8Sum float64
	for i := 0; i < eval.Len(); i++ {
		x, labels := eval.Sample(i), eval.Labels(i)
		f32Sum += p.PrecisionAtK(x, labels, 1)
		i8Sum += q8.PrecisionAtK(x, labels, 1)
	}
	f32P, i8P := f32Sum/float64(eval.Len()), i8Sum/float64(eval.Len())
	if f32P < 0.5 {
		t.Fatalf("f32 baseline failed to learn (p@1 %.3f); the gate would be vacuous", f32P)
	}
	if delta := (f32P - i8P) * 100; delta > 0.5 {
		t.Errorf("int8 p@1 delta %.2f points (f32 %.4f, int8 %.4f), gate is 0.5", delta, f32P, i8P)
	}
}

// TestQuantizedPackingWorkerIndependence: the deterministic sharded trainer
// produces bit-identical weights at any worker count, and row quantization
// is a pure per-row function — so the packed int8 serialization must be
// byte-identical across W in {1, 2, 4}.
func TestQuantizedPackingWorkerIndependence(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 2, 4} {
		n, pl := quantTestNet(t, 29, 2, workers)
		for i := 0; i < 6; i++ {
			n.TrainBatch(pl.batch(32))
		}
		q, err := n.Snapshot().Quantize(8)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := q.WriteOutput(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("W=%d packed snapshot differs from W=1 (%d vs %d bytes)",
				workers, buf.Len(), len(ref))
		}
	}
}

// TestQuantizedBytesRatio30k: on the 30k-output/128-hidden gate regime the
// int8 packed view must be at most 30% of the f32 view bytes.
func TestQuantizedBytesRatio30k(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a 30k-output model")
	}
	cfg := Config{
		InputDim: 64, HiddenDim: 128, OutputDim: 30000,
		NoSampling: true, LR: 0.01, Workers: 1, Seed: 3,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := n.Snapshot()
	q8, err := p.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(q8.PackedBytes()) / float64(p.PackedBytes())
	if math.IsNaN(ratio) || ratio > 0.30 {
		t.Fatalf("int8/f32 bytes ratio %.3f (int8 %d, f32 %d), gate is 0.30",
			ratio, q8.PackedBytes(), p.PackedBytes())
	}
}

// TestQuantizedReplicaCycle: a quantized base reconstructed via
// NewPredictorFromBase followed by quantized delta applies stays
// byte-identical to quantizing the trainer's local snapshot at each step —
// the replica-side half of the quantize-at-publish contract.
func TestQuantizedReplicaCycle(t *testing.T) {
	n, pl := quantTestNet(t, 37, 0, 1)
	n.EnableDeltaTracking()
	for i := 0; i < 3; i++ {
		n.TrainBatch(pl.batch(32))
	}
	local, d := n.SnapshotDelta()
	if d != nil {
		t.Fatal("first snapshot should be a base")
	}

	encodeBase := func(p *Predictor) BaseParts {
		t.Helper()
		var cfgB, hidB, midB, outB, tabB bytes.Buffer
		if err := p.WriteBaseConfig(&cfgB); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteHidden(&hidB); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteMiddle(&midB); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteOutputQ(&outB, 8); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteTables(&tabB); err != nil {
			t.Fatal(err)
		}
		return BaseParts{Config: cfgB.Bytes(), Hidden: hidB.Bytes(), Middle: midB.Bytes(),
			Output: outB.Bytes(), Tables: tabB.Bytes(), QBits: 8}
	}

	replica, err := NewPredictorFromBase(encodeBase(local))
	if err != nil {
		t.Fatal(err)
	}
	if !replica.Quantized() || replica.QuantizedBits() != 8 {
		t.Fatalf("replica from quantized base reports %v/int%d",
			replica.Quantized(), replica.QuantizedBits())
	}

	// expectQuantIdentical asserts the replica serializes byte-identically
	// to a fresh local quantize (stronger than answer equality) and answers
	// like it on probes.
	expectQuantIdentical := func(local *Predictor) {
		t.Helper()
		lq, err := local.Quantize(8)
		if err != nil {
			t.Fatal(err)
		}
		var lb, rb bytes.Buffer
		if err := lq.WriteOutput(&lb); err != nil {
			t.Fatal(err)
		}
		if err := replica.WriteOutput(&rb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb.Bytes(), rb.Bytes()) {
			t.Fatal("replica packed rows diverge from a local quantize of the same snapshot")
		}
		probes := pl.batch(16)
		for i := 0; i < probes.Len(); i++ {
			lw := lq.Predict(probes.Sample(i), 5)
			rw := replica.Predict(probes.Sample(i), 5)
			for j := range lw {
				if lw[j] != rw[j] {
					t.Fatalf("probe %d: local-quantized %v, replica %v", i, lw, rw)
				}
			}
		}
	}
	expectQuantIdentical(local)

	for round := 0; round < 3; round++ {
		for i := 0; i < 2; i++ {
			n.TrainBatch(pl.batch(32))
		}
		var d *Delta
		local, d = n.SnapshotDelta()
		if d == nil {
			t.Fatal("expected a delta")
		}
		var hidB, midB, outB bytes.Buffer
		if err := d.WriteHidden(&hidB); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteMiddle(&midB); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteOutputQ(&outB, 8); err != nil {
			t.Fatal(err)
		}
		parts := DeltaParts{
			FromStep: d.FromStep, ToStep: d.ToStep,
			Hidden: hidB.Bytes(), Middle: midB.Bytes(), Output: outB.Bytes(),
			QBits: 8,
		}
		if d.TablesChanged {
			var tabB bytes.Buffer
			if err := d.WriteTables(&tabB); err != nil {
				t.Fatal(err)
			}
			parts.Tables = tabB.Bytes()
		}
		replica, err = replica.ApplyDelta(parts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		expectQuantIdentical(local)
	}
}

// TestQuantizedDeltaMismatchRejected: an f32 delta onto a quantized replica
// (and vice versa), or a width flip, is refused before any state changes.
func TestQuantizedDeltaMismatchRejected(t *testing.T) {
	n, pl := quantTestNet(t, 41, 0, 1)
	n.EnableDeltaTracking()
	n.TrainBatch(pl.batch(32))
	base, _ := n.SnapshotDelta()
	q8, err := base.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}

	n.TrainBatch(pl.batch(32))
	_, d := n.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta")
	}
	var hidB, midB bytes.Buffer
	if err := d.WriteHidden(&hidB); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteMiddle(&midB); err != nil {
		t.Fatal(err)
	}
	encOut := func(bits int) []byte {
		t.Helper()
		var b bytes.Buffer
		if bits == 0 {
			if err := d.WriteOutput(&b); err != nil {
				t.Fatal(err)
			}
		} else if err := d.WriteOutputQ(&b, bits); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	mk := func(out []byte, qbits int) DeltaParts {
		return DeltaParts{FromStep: d.FromStep, ToStep: d.ToStep,
			Hidden: hidB.Bytes(), Middle: midB.Bytes(), Output: out, QBits: qbits}
	}

	if _, err := q8.ApplyDelta(mk(encOut(0), 0)); err == nil {
		t.Fatal("f32 delta onto a quantized replica must be rejected")
	}
	if _, err := base.ApplyDelta(mk(encOut(8), 8)); err == nil {
		t.Fatal("quantized delta onto an f32 replica must be rejected")
	}
	if _, err := q8.ApplyDelta(mk(encOut(4), 4)); err == nil {
		t.Fatal("an int4 delta onto an int8 replica must be rejected")
	}
	// The matching delta still applies cleanly afterwards: nothing tore.
	if _, err := q8.ApplyDelta(mk(encOut(8), 8)); err != nil {
		t.Fatalf("matching quantized delta refused: %v", err)
	}
}
