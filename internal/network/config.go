// Package network assembles the SLIDE system: a sparse-input hidden layer, a
// wide LSH-sampled output layer, HOGWILD-style asynchronous data-parallel
// training (§2), the adaptive hash-table rebuild schedule, and the sampled
// softmax-cross-entropy loss. The same engine runs as the full-softmax
// baseline when sampling is disabled.
package network

import (
	"fmt"
	"runtime"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
)

// HashFamily selects the LSH family for output-layer sampling.
type HashFamily int

const (
	// DWTA is densified winner-take-all hashing (paper: Amazon-670K,
	// WikiLSH-325K).
	DWTA HashFamily = iota
	// SimHash is signed random projection (paper: Text8).
	SimHash
	// DOPH is densified one-permutation minhashing for binary/set data
	// (available in the original SLIDE codebase).
	DOPH
)

// String implements fmt.Stringer.
func (h HashFamily) String() string {
	switch h {
	case DWTA:
		return "dwta"
	case SimHash:
		return "simhash"
	case DOPH:
		return "doph"
	default:
		return "unknown"
	}
}

// Config describes a SLIDE network and its training regime. Zero values take
// the documented defaults via Validate.
type Config struct {
	// InputDim, HiddenDim, OutputDim give the network shape
	// (paper: hidden 128 for the XMC datasets, 200 for Text8).
	InputDim  int
	HiddenDim int
	OutputDim int
	// HiddenLayers optionally stacks additional dense hidden layers (ReLU,
	// FP32) between the first sparse-input layer and the sampled output,
	// giving Input → HiddenDim → HiddenLayers... → Output. The paper's
	// evaluation uses a single hidden layer (empty slice); deeper stacks are
	// the natural SLIDE extension.
	HiddenLayers []int
	// HiddenActivation is ReLU for classification, Linear for word2vec.
	// It applies to the first hidden layer; stacked layers are always ReLU.
	HiddenActivation layer.Activation

	// Hash selects the LSH family; K and L its shape (paper: DWTA K=6 L=400
	// for Amazon-670K, K=5 L=350 for WikiLSH-325K, SimHash K=9 L=50 for
	// Text8). BinSize is the DWTA bin width (default 8).
	Hash    HashFamily
	K, L    int
	BinSize int
	// BucketCap bounds each hash bucket (default 128); BucketPolicy is the
	// eviction rule (default FIFO).
	BucketCap    int
	BucketPolicy lsh.BucketPolicy
	// MinActive tops the sampled set up with random neurons (default 32);
	// MaxActive caps it, 0 = uncapped. Labels are never dropped.
	MinActive int
	MaxActive int
	// NoSampling disables LSH entirely: every neuron is active for every
	// sample (the full-softmax configuration).
	NoSampling bool
	// UniformSampling replaces LSH retrieval with uniform random negative
	// sampling of the same MinActive budget — the ablation that isolates
	// what *adaptive* (input-dependent) sampling buys over plain sampled
	// softmax. No hash tables are built.
	UniformSampling bool

	// Adam hyperparameters (defaults: LR 1e-4 as in §5.3, 0.9/0.999/1e-8).
	LR, Beta1, Beta2, Eps float64

	// Precision is the §4.4 quantization mode; Placement the §4.1 parameter
	// layout; Locked swaps HOGWILD's racy accumulation for striped locks.
	Precision layer.Precision
	Placement layer.Placement
	Locked    bool
	// Workers is the HOGWILD thread count (default GOMAXPROCS). Under
	// sharded execution (Shards > 0) it is instead the size of the pinned
	// worker pool executing shard tasks.
	Workers int
	// Shards > 0 replaces HOGWILD sample-striping with the deterministic
	// sharded output layer: the label space is partitioned into Shards
	// contiguous row ranges, each with its own LSH tables, active-set
	// budget, RNG stream, and gradient arena. The shard count is a model
	// property — results, checkpoints, and deltas are bit-identical for any
	// Workers value, because workers merely execute the fixed shard task
	// list. 0 keeps the legacy single-table HOGWILD engine. Requires LSH
	// sampling (incompatible with NoSampling / UniformSampling); clamped to
	// OutputDim.
	Shards int

	// RebuildEvery is the initial hash-table rebuild period in batches
	// (default 50); RebuildGrowth stretches the period multiplicatively
	// after each rebuild (default 1.05, SLIDE's exponential backoff).
	RebuildEvery  int
	RebuildGrowth float64

	// Seed drives all randomness (init, hashing, sampling).
	Seed uint64
}

// Validate fills defaults and reports configuration errors.
func (c *Config) Validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.OutputDim <= 0 {
		return fmt.Errorf("network: dimensions must be positive (got %d/%d/%d)",
			c.InputDim, c.HiddenDim, c.OutputDim)
	}
	for i, d := range c.HiddenLayers {
		if d <= 0 {
			return fmt.Errorf("network: hidden layer %d has non-positive width %d", i+1, d)
		}
	}
	if c.NoSampling && c.UniformSampling {
		return fmt.Errorf("network: NoSampling and UniformSampling are mutually exclusive")
	}
	if !c.NoSampling && !c.UniformSampling {
		if c.K <= 0 || c.L <= 0 {
			return fmt.Errorf("network: LSH sampling requires K>0 and L>0 (got K=%d L=%d)", c.K, c.L)
		}
	}
	if c.BinSize == 0 {
		c.BinSize = 8
	}
	if c.BucketCap == 0 {
		c.BucketCap = 128
	}
	if c.BucketCap < 0 {
		return fmt.Errorf("network: BucketCap must be positive, got %d", c.BucketCap)
	}
	if c.MinActive == 0 {
		c.MinActive = 32
	}
	if c.MinActive > c.OutputDim {
		c.MinActive = c.OutputDim
	}
	if c.MaxActive < 0 || (c.MaxActive > 0 && c.MaxActive < c.MinActive) {
		return fmt.Errorf("network: MaxActive %d conflicts with MinActive %d", c.MaxActive, c.MinActive)
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	if c.LR < 0 || c.Beta1 < 0 || c.Beta1 >= 1 || c.Beta2 < 0 || c.Beta2 >= 1 {
		return fmt.Errorf("network: invalid optimizer hyperparameters (lr=%g b1=%g b2=%g)",
			c.LR, c.Beta1, c.Beta2)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RebuildEvery <= 0 {
		c.RebuildEvery = 50
	}
	if c.RebuildGrowth == 0 {
		c.RebuildGrowth = 1.05
	}
	if c.RebuildGrowth < 1 {
		return fmt.Errorf("network: RebuildGrowth must be >= 1, got %g", c.RebuildGrowth)
	}
	if c.Shards < 0 {
		return fmt.Errorf("network: Shards must be non-negative, got %d", c.Shards)
	}
	if c.Shards > 0 && (c.NoSampling || c.UniformSampling) {
		return fmt.Errorf("network: sharded execution requires LSH sampling")
	}
	if c.Shards > c.OutputDim {
		c.Shards = c.OutputDim
	}
	return nil
}
