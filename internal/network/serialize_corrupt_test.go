package network

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
)

// saveV2 writes the legacy version-2 layout: preamble, then the raw section
// payloads concatenated with no framing or checksums. It is the reference
// writer for back-compat tests and the v2 side of the checkpoint benchmark.
func saveV2(n *Network, w *bytes.Buffer) error {
	for _, v := range []uint64{uint64(checkpointMagic), uint64(checkpointVersionV2)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// A real v2 writer predates the trailing Shards field: write the config
	// payload aside and strip the trailing 8 bytes to reproduce its layout.
	var cfgBuf bytes.Buffer
	if err := n.writeConfig(&cfgBuf); err != nil {
		return err
	}
	if _, err := w.Write(cfgBuf.Bytes()[:cfgBuf.Len()-8]); err != nil {
		return err
	}
	if err := n.hidden.Serialize(w); err != nil {
		return err
	}
	for _, ml := range n.middle {
		if err := ml.Serialize(w); err != nil {
			return err
		}
	}
	if err := n.output.Serialize(w); err != nil {
		return err
	}
	if n.tables != nil {
		if err := n.tables.Serialize(w); err != nil {
			return err
		}
	}
	return n.writeRNG(w)
}

// frame locates one v3 section in a saved checkpoint.
type frame struct {
	id         uint32
	start      int64 // section header offset
	payloadOff int64
	payloadLen int64
	end        int64 // offset just past the CRC trailer
}

// frames parses the v3 framing of a checkpoint without loading it.
func frames(t *testing.T, raw []byte) []frame {
	t.Helper()
	var fs []frame
	off := int64(16)
	for off < int64(len(raw)) {
		id := binary.LittleEndian.Uint32(raw[off:])
		length := int64(binary.LittleEndian.Uint64(raw[off+4:]))
		f := frame{id: id, start: off, payloadOff: off + 12, payloadLen: length}
		f.end = f.payloadOff + length + 4
		if f.end > int64(len(raw)) {
			t.Fatalf("section %d overruns the stream", id)
		}
		fs = append(fs, f)
		off = f.end
	}
	return fs
}

func TestLoadV3SectionOrder(t *testing.T) {
	n, _ := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for _, f := range frames(t, buf.Bytes()) {
		ids = append(ids, f.id)
	}
	want := []uint32{secConfig, secHidden, secMiddle, secOutput, secTables, secRNG}
	if len(ids) != len(want) {
		t.Fatalf("sections %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sections %v, want %v", ids, want)
		}
	}
}

// TestLoadCorruptEverySection flips one payload byte in each section in turn
// and demands a *CorruptError naming exactly that section.
func TestLoadCorruptEverySection(t *testing.T) {
	n, _ := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames(t, buf.Bytes()) {
		name := sectionNames[f.id]
		t.Run(name, func(t *testing.T) {
			if f.payloadLen == 0 {
				t.Skipf("section %s has an empty payload", name)
			}
			raw := bytes.Clone(buf.Bytes())
			raw[f.payloadOff+f.payloadLen/2] ^= 0x20
			_, err := Load(bytes.NewReader(raw), 1)
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("bit flip in %s: err %v does not wrap ErrCorruptCheckpoint", name, err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err %T is not a *CorruptError", err)
			}
			if ce.Section != name {
				t.Fatalf("corruption in %s reported against section %s", name, ce.Section)
			}
			if ce.Offset != f.payloadOff {
				t.Fatalf("section %s reported at offset %d, payload is at %d", name, ce.Offset, f.payloadOff)
			}
		})
	}
}

// TestLoadTruncatedEverySection truncates the stream at several points
// inside each section — mid-header, mid-payload, and inside the CRC trailer
// — and demands a typed corruption error naming that section.
func TestLoadTruncatedEverySection(t *testing.T) {
	n, _ := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames(t, buf.Bytes()) {
		name := sectionNames[f.id]
		cuts := []struct {
			where string
			at    int64
		}{
			{"header", f.start + 6},
			{"payload", f.payloadOff + f.payloadLen/2},
			{"trailer", f.end - 2},
		}
		for _, cut := range cuts {
			t.Run(fmt.Sprintf("%s/%s", name, cut.where), func(t *testing.T) {
				_, err := Load(bytes.NewReader(buf.Bytes()[:cut.at]), 1)
				if !errors.Is(err, ErrCorruptCheckpoint) {
					t.Fatalf("truncation in %s %s: err %v does not wrap ErrCorruptCheckpoint", name, cut.where, err)
				}
				var ce *CorruptError
				if !errors.As(err, &ce) || ce.Section != name {
					t.Fatalf("truncation in %s reported as %v", name, err)
				}
			})
		}
	}
}

func TestLoadCorruptPreamble(t *testing.T) {
	_, err := Load(bytes.NewReader([]byte{1, 2, 3}), 1)
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("short preamble: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != "preamble" {
		t.Fatalf("short preamble reported as %v", err)
	}
}

// TestLoadV2Compat: a legacy unframed checkpoint still loads and reproduces
// the writer's scores exactly.
func TestLoadV2Compat(t *testing.T) {
	n, p := trainedNet(t, layer.FP32)
	var buf bytes.Buffer
	if err := saveV2(n, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), 1)
	if err != nil {
		t.Fatalf("v2 checkpoint rejected: %v", err)
	}
	if loaded.Step() != n.Step() {
		t.Fatalf("step %d != %d", loaded.Step(), n.Step())
	}
	x := p.batch(1).Sample(0)
	s1 := make([]float32, 20)
	s2 := make([]float32, 20)
	n.Scores(x, s1)
	loaded.Scores(x, s2)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("score[%d] %g != %g after v2 load", i, s1[i], s2[i])
		}
	}
}

// benchNet is trainedNet for benchmarks (no *testing.T plumbing).
func benchNet(b *testing.B) *Network {
	b.Helper()
	p := newPlanted(60, 20, 5, 31)
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1,
		Precision: layer.FP32, RebuildEvery: 10, Seed: 77,
	}
	n, err := New(&cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		n.TrainBatch(p.batch(32))
	}
	return n
}

func BenchmarkCheckpointSaveV3(b *testing.B) {
	n := benchNet(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := n.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkCheckpointSaveV2(b *testing.B) {
	n := benchNet(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := saveV2(n, &buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkCheckpointLoadV3(b *testing.B) {
	n := benchNet(b)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(buf.Bytes()), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpointLoadV2(b *testing.B) {
	n := benchNet(b)
	var buf bytes.Buffer
	if err := saveV2(n, &buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(buf.Bytes()), 1); err != nil {
			b.Fatal(err)
		}
	}
}
