package network

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Network is a two-layer SLIDE model: sparse input → hidden (ColLayer,
// Algorithm 2) → wide output (RowLayer, Algorithm 1) with LSH-sampled
// softmax cross-entropy.
type Network struct {
	cfg    Config
	hidden *layer.ColLayer
	middle []*layer.RowLayer // optional dense hidden stack (cfg.HiddenLayers)
	output *layer.RowLayer
	tables *lsh.TableSet // nil when cfg.NoSampling

	// middleAll[i] lists every row id of middle layer i (dense forward).
	middleAll [][]int32
	// lastDim is the width of the activation feeding the output layer.
	lastDim int

	step          int64 // Adam step counter (batches)
	sinceRebuild  int
	rebuildPeriod float64

	workers []*workerScratch
	all     []int32 // precomputed full active set for NoSampling
}

// workerScratch holds one HOGWILD worker's private buffers, plus the kernel
// table resolved once at the start of the batch (one atomic mode load per
// batch instead of one per kernel call).
type workerScratch struct {
	ks *simd.Kernels
	// acts[0] is the first hidden layer's activation; acts[i] the i-th
	// stacked layer's. dhs mirror them with gradients.
	acts   [][]float32
	dhs    [][]float32
	hBF    []bf16.BF16 // bfloat16 view of the last activation
	active []int32
	logits []float32
	probs  []float32
	dedup  *lsh.Dedup
	rng    *rand.Rand
}

// last returns the activation feeding the output layer.
func (ws *workerScratch) last() []float32 { return ws.acts[len(ws.acts)-1] }

// dhLast returns the gradient buffer for the output layer's input.
func (ws *workerScratch) dhLast() []float32 { return ws.dhs[len(ws.dhs)-1] }

// New builds a SLIDE network from cfg (validated and defaulted in place).
func New(cfg *Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts := layer.Options{
		Precision: cfg.Precision,
		Placement: cfg.Placement,
		Locked:    cfg.Locked,
	}
	hOpts := opts
	hOpts.Seed = splitSeed(cfg.Seed, 1)
	oOpts := opts
	oOpts.Seed = splitSeed(cfg.Seed, 2)

	dims := append([]int{cfg.HiddenDim}, cfg.HiddenLayers...)
	lastDim := dims[len(dims)-1]
	n := &Network{
		cfg:           *cfg,
		hidden:        layer.NewColLayer(cfg.InputDim, cfg.HiddenDim, cfg.HiddenActivation, hOpts),
		output:        layer.NewRowLayer(lastDim, cfg.OutputDim, oOpts),
		lastDim:       lastDim,
		rebuildPeriod: float64(cfg.RebuildEvery),
	}
	// Stacked dense hidden layers stay FP32: the quantization modes target
	// the memory-bound wide layers, not the small dense middle (§4.4).
	for i := 1; i < len(dims); i++ {
		mOpts := opts
		mOpts.Seed = splitSeed(cfg.Seed, 16+uint64(i))
		mOpts.Precision = layer.FP32
		n.middle = append(n.middle, layer.NewRowLayer(dims[i-1], dims[i], mOpts))
		all := make([]int32, dims[i])
		for r := range all {
			all[r] = int32(r)
		}
		n.middleAll = append(n.middleAll, all)
	}

	if !cfg.NoSampling && !cfg.UniformSampling {
		var hasher lsh.Hasher
		var err error
		switch cfg.Hash {
		case DWTA:
			hasher, err = lsh.NewDWTA(lsh.DWTAConfig{
				K: cfg.K, L: cfg.L, BinSize: cfg.BinSize,
				Dim: n.lastDim, Seed: splitSeed(cfg.Seed, 3),
			})
		case SimHash:
			hasher, err = lsh.NewSimHash(lsh.SimHashConfig{
				K: cfg.K, L: cfg.L,
				Dim: n.lastDim, Seed: splitSeed(cfg.Seed, 3),
			})
		case DOPH:
			hasher, err = lsh.NewDOPH(lsh.DOPHConfig{
				K: cfg.K, L: cfg.L,
				Dim: n.lastDim, Seed: splitSeed(cfg.Seed, 3),
			})
		default:
			err = fmt.Errorf("network: unknown hash family %d", cfg.Hash)
		}
		if err != nil {
			return nil, err
		}
		n.tables = lsh.NewTableSet(hasher, cfg.BucketCap, cfg.BucketPolicy, splitSeed(cfg.Seed, 4))
		n.rebuildTables()
	}
	if cfg.NoSampling {
		n.all = make([]int32, cfg.OutputDim)
		for i := range n.all {
			n.all[i] = int32(i)
		}
	}

	n.workers = make([]*workerScratch, cfg.Workers)
	// Buffers are sized for the worst case (every neuron active): MaxActive
	// caps the usual path, but labels are never dropped, so a pathological
	// sample could exceed it.
	actCap := cfg.OutputDim
	for w := range n.workers {
		ws := &workerScratch{
			active: make([]int32, 0, actCap),
			logits: make([]float32, actCap),
			probs:  make([]float32, actCap),
			dedup:  lsh.NewDedup(cfg.OutputDim),
			rng:    rand.New(rand.NewPCG(splitSeed(cfg.Seed, 5), uint64(w))),
		}
		for _, d := range dims {
			ws.acts = append(ws.acts, make([]float32, d))
			ws.dhs = append(ws.dhs, make([]float32, d))
		}
		if cfg.Precision != layer.FP32 {
			ws.hBF = make([]bf16.BF16, lastDim)
		}
		n.workers[w] = ws
	}
	return n, nil
}

func splitSeed(seed uint64, stream uint64) uint64 {
	x := seed ^ stream*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Config returns the validated configuration.
func (n *Network) Config() Config { return n.cfg }

// Hidden returns the hidden layer (diagnostics, tests).
func (n *Network) Hidden() *layer.ColLayer { return n.hidden }

// Output returns the output layer (diagnostics, tests).
func (n *Network) Output() *layer.RowLayer { return n.output }

// Tables returns the LSH table set, or nil when sampling is disabled.
func (n *Network) Tables() *lsh.TableSet { return n.tables }

// Step returns the number of optimizer steps (batches) applied so far.
func (n *Network) Step() int64 { return n.step }

// rebuildTables re-hashes every output neuron into fresh tables.
func (n *Network) rebuildTables() {
	n.tables.RebuildDense(n.cfg.OutputDim, n.lastDim, n.output.RowF32, n.cfg.Workers)
}

// forwardStack runs the hidden layer and the dense middle stack, leaving
// the output-layer input in ws.last() (and ws.hBF under the BF16 modes).
func (n *Network) forwardStack(ws *workerScratch, x sparse.Vector) {
	n.hidden.Forward(ws.ks, x, ws.acts[0])
	for i, ml := range n.middle {
		in, out := ws.acts[i], ws.acts[i+1]
		ml.ForwardActive(ws.ks, n.middleAll[i], in, nil, out)
		for j := range out { // stacked layers are ReLU
			if out[j] < 0 {
				out[j] = 0
			}
		}
	}
	if ws.hBF != nil {
		bf16.Convert(ws.hBF, ws.last())
	}
}

// backwardStack propagates ws.dhLast() through the middle stack and into
// the first hidden layer's gradient buffers.
func (n *Network) backwardStack(ws *workerScratch, x sparse.Vector) {
	for i := len(n.middle) - 1; i >= 0; i-- {
		ml := n.middle[i]
		act, dh := ws.acts[i+1], ws.dhs[i+1]
		prev := ws.dhs[i]
		simd.Zero(prev)
		for r := range dh {
			if act[r] <= 0 { // ReLU mask
				continue
			}
			if gz := dh[r]; gz != 0 {
				ml.Accumulate(ws.ks, int32(r), gz, ws.acts[i], nil, prev)
			}
		}
	}
	n.hidden.Backward(ws.ks, x, ws.acts[0], ws.dhs[0])
}

// sampleActive fills ws.active for one sample: true labels first (never
// dropped), then LSH candidates, then random top-up to MinActive, capped at
// MaxActive. Returns the number of label entries at the head of the slice.
func (n *Network) sampleActive(ws *workerScratch, labels []int32) int {
	ws.active = ws.active[:0]
	ws.dedup.Begin()
	for _, y := range labels {
		if int(y) < n.cfg.OutputDim && !ws.dedup.Seen(y) {
			ws.active = append(ws.active, y)
		}
	}
	nLabels := len(ws.active)

	limit := n.cfg.MaxActive
	if limit > 0 && nLabels > limit {
		limit = nLabels // labels always survive
	}
	if n.tables != nil {
		n.tables.QueryDense(ws.last(), func(id int32) {
			if limit > 0 && len(ws.active) >= limit {
				return
			}
			if !ws.dedup.Seen(id) {
				ws.active = append(ws.active, id)
			}
		})
	}

	// Random top-up: keeps gradient flowing when buckets run cold early in
	// training (SLIDE's random fill).
	for len(ws.active) < n.cfg.MinActive {
		id := int32(ws.rng.IntN(n.cfg.OutputDim))
		if !ws.dedup.Seen(id) {
			ws.active = append(ws.active, id)
		}
	}
	return nLabels
}

// trainSample processes one sample end to end (forward, sampled softmax,
// backward) and returns its loss and active-set size.
func (n *Network) trainSample(ws *workerScratch, x sparse.Vector, labels []int32) (float64, int) {
	n.forwardStack(ws, x)

	var nLabels int
	if n.cfg.NoSampling {
		ws.active = ws.active[:0]
		ws.dedup.Begin()
		for _, y := range labels {
			if int(y) < n.cfg.OutputDim {
				ws.dedup.Seen(y)
			}
		}
		nLabels = -1 // labels identified via dedup stamps below
	} else {
		nLabels = n.sampleActive(ws, labels)
	}

	active := ws.active
	if n.cfg.NoSampling {
		active = n.all
	}
	na := len(active)
	if na == 0 {
		return 0, 0
	}
	logits := ws.logits[:na]
	probs := ws.probs[:na]
	n.output.ForwardActive(ws.ks, active, ws.last(), ws.hBF, logits)

	// Numerically stable softmax over the active set.
	maxLogit := ws.ks.Max(logits)
	var z float64
	for k, l := range logits {
		e := math.Exp(float64(l - maxLogit))
		probs[k] = float32(e)
		z += e
	}
	invZ := float32(1 / z)
	ws.ks.Scale(invZ, probs)

	// Cross-entropy target: uniform over the sample's labels.
	nLab := len(labels)
	var t float32
	if nLab > 0 {
		t = 1 / float32(nLab)
	}
	var loss float64
	simd.Zero(ws.dhLast())
	logZ := math.Log(z) + float64(maxLogit)
	for k, id := range active {
		gz := probs[k]
		isLabel := false
		if n.cfg.NoSampling {
			isLabel = ws.dedup.Seen(id) // stamped above => true for labels
		} else {
			isLabel = k < nLabels
		}
		if isLabel {
			gz -= t
			loss -= float64(t) * (float64(logits[k]) - logZ)
		}
		n.output.Accumulate(ws.ks, id, gz, ws.last(), ws.hBF, ws.dhLast())
	}

	n.backwardStack(ws, x)
	return loss, na
}

// BatchStats reports one TrainBatch call.
type BatchStats struct {
	// Samples is the number of samples processed.
	Samples int
	// Loss is the summed sampled-softmax cross-entropy.
	Loss float64
	// ActiveSum is the total active-set size across samples; ActiveSum /
	// Samples is the mean sparsity the LSH sampling achieved.
	ActiveSum int64
	// Rebuilt reports whether the hash tables were rebuilt after this batch.
	Rebuilt bool
}

// TrainBatch runs one HOGWILD-parallel gradient step over the batch:
// workers process samples concurrently against shared parameters, gradients
// accumulate into per-layer buffers, and one fused ADAM step applies to the
// touched rows/columns. It then advances the hash-table rebuild schedule.
func (n *Network) TrainBatch(b sparse.Batch) BatchStats {
	stats := BatchStats{Samples: b.Len()}
	// Resolve the kernel table once for the whole batch: every per-row call
	// below goes through this table, not the atomic-dispatching wrappers.
	ks := simd.Active()
	nw := min(n.cfg.Workers, b.Len())
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := n.workers[w]
			ws.ks = ks
			var loss float64
			var activeSum int64
			for i := w; i < b.Len(); i += nw {
				l, na := n.trainSample(ws, b.Sample(i), b.Labels(i))
				loss += l
				activeSum += int64(na)
			}
			mu.Lock()
			stats.Loss += loss
			stats.ActiveSum += activeSum
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	n.step++
	p := simd.NewAdamParams(n.cfg.LR, n.cfg.Beta1, n.cfg.Beta2, n.cfg.Eps, n.step)
	n.hidden.ApplyAdam(ks, p, n.cfg.Workers)
	for _, ml := range n.middle {
		ml.ApplyAdamAll(ks, p, n.cfg.Workers) // dense stack: every row touched
	}
	if n.cfg.NoSampling {
		n.output.ApplyAdamAll(ks, p, n.cfg.Workers)
	} else {
		n.output.ApplyAdam(ks, p, n.cfg.Workers)
	}

	if n.tables != nil {
		n.sinceRebuild++
		if float64(n.sinceRebuild) >= n.rebuildPeriod {
			n.rebuildTables()
			n.sinceRebuild = 0
			n.rebuildPeriod *= n.cfg.RebuildGrowth
			stats.Rebuilt = true
		}
	}
	return stats
}

// Scores computes the full output-layer logits for one sample into out
// (len OutputDim) — the exact forward pass used for evaluation. Not safe
// for concurrent use with training.
func (n *Network) Scores(x sparse.Vector, out []float32) {
	ws := n.workers[0]
	ws.ks = simd.Active()
	n.forwardStack(ws, x)
	n.output.ForwardAll(ws.ks, ws.last(), ws.hBF, out, n.cfg.Workers)
}

// Predict returns the top-k scoring label ids for one sample, highest first.
func (n *Network) Predict(x sparse.Vector, k int, scores []float32) []int32 {
	if len(scores) != n.cfg.OutputDim {
		panic("network: Predict scores buffer must have OutputDim length")
	}
	n.Scores(x, scores)
	return metrics.TopK(scores, k)
}

// PredictSampled returns the top-k label ids ranked only over the LSH-
// retrieved candidate set — sub-linear inference, the deployment-time
// counterpart of SLIDE's sampled training. Requires LSH sampling; panics
// under NoSampling/UniformSampling (full Predict is the right call there).
// Not safe for concurrent use with training.
func (n *Network) PredictSampled(x sparse.Vector, k int) []int32 {
	if n.tables == nil {
		panic("network: PredictSampled requires LSH sampling")
	}
	ws := n.workers[0]
	ws.ks = simd.Active()
	n.forwardStack(ws, x)
	n.sampleActive(ws, nil)
	na := len(ws.active)
	if na == 0 {
		return nil
	}
	logits := ws.logits[:na]
	n.output.ForwardActive(ws.ks, ws.active, ws.last(), ws.hBF, logits)
	top := metrics.TopK(logits, k)
	out := make([]int32, len(top))
	for i, pos := range top {
		out[i] = ws.active[pos]
	}
	return out
}
