package network

import (
	"fmt"
	"math"
	"sync"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Network is a two-layer SLIDE model: sparse input → hidden (ColLayer,
// Algorithm 2) → wide output (RowLayer, Algorithm 1) with LSH-sampled
// softmax cross-entropy.
//
// The network owns the mutable training state (layers with gradients and
// optimizer moments, the rebuild schedule). Everything the forward pass
// reads lives in a forwardState (see forward.go): training consumes the
// live one, and Snapshot copies it into an immutable Predictor for
// concurrency-safe serving.
type Network struct {
	cfg    Config
	hidden *layer.ColLayer
	middle []*layer.RowLayer // optional dense hidden stack (cfg.HiddenLayers)
	output *layer.RowLayer
	tables *lsh.TableSet // nil when cfg.NoSampling

	// fwd is the live read-only view consumed by the training forward pass
	// and the single-threaded inference compatibility path.
	fwd *forwardState
	// live serves Scores/Predict/PredictSampled over fwd. Like every read
	// of the live weights, it must not run concurrently with TrainBatch —
	// Snapshot is the concurrency-safe path.
	live *Predictor

	// lastDim is the width of the activation feeding the output layer.
	lastDim int

	step          int64 // Adam step counter (batches)
	sinceRebuild  int
	rebuildPeriod float64

	// Delta-tracking state (EnableDeltaTracking): layer touch journals
	// accumulate between snapshots, lastSnap remembers the previous
	// snapshot's views for copy-on-write sharing, and rebuildGen counts
	// table rebuilds so a delta ships tables only when they changed.
	deltas      bool
	lastSnap    *forwardState
	lastStep    int64
	rebuildGen  uint64
	lastSnapGen uint64

	// sh is the sharded-execution state (nil when cfg.Shards == 0); see
	// sharded.go. workers is the legacy HOGWILD per-worker scratch, unused
	// (and unallocated) in sharded mode.
	sh      *shardState
	workers []*scratch

	// guards enables the per-step NaN/Inf scan of active-set logits and
	// per-sample losses (SetGuards): BatchStats.NonFinite reports what the
	// scan found. Runtime state, not a Config field — it never changes the
	// math or the checkpoint format, only what TrainBatch observes.
	guards bool
}

// New builds a SLIDE network from cfg (validated and defaulted in place).
func New(cfg *Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opts := layer.Options{
		Precision: cfg.Precision,
		Placement: cfg.Placement,
		Locked:    cfg.Locked,
	}
	hOpts := opts
	hOpts.Seed = splitSeed(cfg.Seed, 1)
	oOpts := opts
	oOpts.Seed = splitSeed(cfg.Seed, 2)

	dims, lastDim, middleAll, all := forwardGeometry(cfg)
	n := &Network{
		cfg:           *cfg,
		hidden:        layer.NewColLayer(cfg.InputDim, cfg.HiddenDim, cfg.HiddenActivation, hOpts),
		output:        layer.NewRowLayer(lastDim, cfg.OutputDim, oOpts),
		lastDim:       lastDim,
		rebuildPeriod: float64(cfg.RebuildEvery),
	}
	// Stacked dense hidden layers stay FP32: the quantization modes target
	// the memory-bound wide layers, not the small dense middle (§4.4).
	for i := 1; i < len(dims); i++ {
		mOpts := opts
		mOpts.Seed = splitSeed(cfg.Seed, 16+uint64(i))
		mOpts.Precision = layer.FP32
		n.middle = append(n.middle, layer.NewRowLayer(dims[i-1], dims[i], mOpts))
	}

	if cfg.Shards > 0 {
		// Sharded mode: per-shard table sets replace the single global one.
		sh, err := newShardState(cfg, lastDim)
		if err != nil {
			return nil, err
		}
		n.sh = sh
	} else {
		tables, err := newTables(cfg, lastDim)
		if err != nil {
			return nil, err
		}
		n.tables = tables
	}

	// The live forward view: layer views alias the training weights, so
	// every ApplyAdam is visible to the next forward pass.
	var middleViews []*layer.RowWeights
	for _, ml := range n.middle {
		middleViews = append(middleViews, ml.ForwardView())
	}
	n.fwd = &forwardState{
		cfg:       *cfg,
		hidden:    n.hidden.ForwardView(),
		middle:    middleViews,
		output:    n.output.ForwardView(),
		tables:    n.tables,
		middleAll: middleAll,
		dims:      dims,
		lastDim:   lastDim,
		all:       all,
	}
	if n.sh != nil {
		n.fwd.shTables = n.sh.tables
		n.fwd.plan = n.sh.plan
	}
	if n.tables != nil || n.sh != nil {
		n.rebuildTables()
	}
	n.live = newPredictor(n.fwd, splitSeed(cfg.Seed, 7))

	if n.sh == nil {
		n.workers = make([]*scratch, cfg.Workers)
		for w := range n.workers {
			n.workers[w] = n.fwd.newScratch(true, splitSeed(cfg.Seed, 5), uint64(w))
		}
	}
	return n, nil
}

func splitSeed(seed uint64, stream uint64) uint64 {
	x := seed ^ stream*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// forwardGeometry computes the derived index structures of a validated
// config: the hidden-stack dims, the width feeding the output layer, the
// all-rows index lists for the dense middle stack, and (under NoSampling)
// the full output index list. Pure function of the config — New and the
// replication base decode must derive identical geometry.
func forwardGeometry(cfg *Config) (dims []int, lastDim int, middleAll [][]int32, all []int32) {
	dims = append([]int{cfg.HiddenDim}, cfg.HiddenLayers...)
	lastDim = dims[len(dims)-1]
	for i := 1; i < len(dims); i++ {
		idx := make([]int32, dims[i])
		for r := range idx {
			idx[r] = int32(r)
		}
		middleAll = append(middleAll, idx)
	}
	if cfg.NoSampling {
		all = make([]int32, cfg.OutputDim)
		for i := range all {
			all[i] = int32(i)
		}
	}
	return dims, lastDim, middleAll, all
}

// newTables builds the LSH table set a validated config declares (nil under
// NoSampling/UniformSampling). Hasher and table seeds derive from cfg.Seed
// exactly as in training, so a replica deserializing table contents into a
// fresh set gets bit-identical query behavior.
func newTables(cfg *Config, lastDim int) (*lsh.TableSet, error) {
	if cfg.NoSampling || cfg.UniformSampling {
		return nil, nil
	}
	var hasher lsh.Hasher
	var err error
	switch cfg.Hash {
	case DWTA:
		hasher, err = lsh.NewDWTA(lsh.DWTAConfig{
			K: cfg.K, L: cfg.L, BinSize: cfg.BinSize,
			Dim: lastDim, Seed: splitSeed(cfg.Seed, 3),
		})
	case SimHash:
		hasher, err = lsh.NewSimHash(lsh.SimHashConfig{
			K: cfg.K, L: cfg.L,
			Dim: lastDim, Seed: splitSeed(cfg.Seed, 3),
		})
	case DOPH:
		hasher, err = lsh.NewDOPH(lsh.DOPHConfig{
			K: cfg.K, L: cfg.L,
			Dim: lastDim, Seed: splitSeed(cfg.Seed, 3),
		})
	default:
		err = fmt.Errorf("network: unknown hash family %d", cfg.Hash)
	}
	if err != nil {
		return nil, err
	}
	return lsh.NewTableSet(hasher, cfg.BucketCap, cfg.BucketPolicy, splitSeed(cfg.Seed, 4)), nil
}

// Config returns the validated configuration.
func (n *Network) Config() Config { return n.cfg }

// Hidden returns the hidden layer (diagnostics, tests).
func (n *Network) Hidden() *layer.ColLayer { return n.hidden }

// Output returns the output layer (diagnostics, tests).
func (n *Network) Output() *layer.RowLayer { return n.output }

// Tables returns the LSH table set, or nil when sampling is disabled.
func (n *Network) Tables() *lsh.TableSet { return n.tables }

// Step returns the number of optimizer steps (batches) applied so far.
func (n *Network) Step() int64 { return n.step }

// SetLR changes the ADAM learning rate applied by subsequent TrainBatch
// calls — the hook LR schedules drive. Not safe concurrently with training;
// call it between batches (the training-session engine does). The value is
// serialized with the checkpoint, but schedule-driven callers re-derive it
// from the step counter on resume, so a mid-schedule checkpoint restores
// correctly either way.
func (n *Network) SetLR(lr float64) {
	if lr > 0 {
		n.cfg.LR = lr
	}
}

// SetGuards toggles the numerical health guards: with guards on, every
// TrainBatch counts the non-finite values among its active-set logits and
// per-sample losses into BatchStats.NonFinite. The scan is O(active set)
// integer compares over data the forward pass just produced — well under
// 1% of TrainBatch — and the count is an order-independent sum of
// per-sample verdicts, each a pure function of (weights at batch start,
// sample), so it is bit-identical at any worker count in both engines.
// Guards off (the default) cost nothing. Not safe concurrently with
// training; call between batches.
func (n *Network) SetGuards(on bool) { n.guards = on }

// rebuildTables re-hashes every output neuron into fresh tables (each
// shard's rows into its own set under sharded execution).
func (n *Network) rebuildTables() {
	if n.sh != nil {
		n.rebuildShardTables() // increments rebuildGen itself
		return
	}
	n.tables.RebuildDense(n.cfg.OutputDim, n.lastDim, n.output.RowF32, n.cfg.Workers)
	n.rebuildGen++
}

// backwardStack propagates ws.dhLast() through the middle stack and into
// the first hidden layer's gradient buffers.
func (n *Network) backwardStack(ws *scratch, x sparse.Vector) {
	for i := len(n.middle) - 1; i >= 0; i-- {
		ml := n.middle[i]
		act, dh := ws.acts[i+1], ws.dhs[i+1]
		prev := ws.dhs[i]
		simd.Zero(prev)
		for r := range dh {
			if act[r] <= 0 { // ReLU mask
				continue
			}
			if gz := dh[r]; gz != 0 {
				ml.Accumulate(ws.ks, int32(r), gz, ws.acts[i], nil, prev)
			}
		}
	}
	n.hidden.Backward(ws.ks, x, ws.acts[0], ws.dhs[0])
}

// trainSample processes one sample end to end (forward, sampled softmax,
// backward) and returns its loss, active-set size, and (guards on) the
// count of non-finite logits/losses the health scan found.
func (n *Network) trainSample(ws *scratch, x sparse.Vector, labels []int32) (float64, int, int64) {
	n.fwd.forwardStack(ws, x)

	var nLabels int
	if n.cfg.NoSampling {
		ws.active = ws.active[:0]
		ws.dedup.Begin()
		for _, y := range labels {
			if int(y) < n.cfg.OutputDim {
				ws.dedup.Seen(y)
			}
		}
		nLabels = -1 // labels identified via dedup stamps below
	} else {
		nLabels = n.fwd.sampleActive(ws, labels)
	}

	active := ws.active
	if n.cfg.NoSampling {
		active = n.fwd.all
	}
	na := len(active)
	if na == 0 {
		return 0, 0, 0
	}
	logits := ws.logits[:na]
	probs := ws.probs[:na]
	n.output.ForwardActive(ws.ks, active, ws.last(), ws.hBF, logits)

	// Health guard: scan the raw logits before the softmax transform — a
	// poisoned weight or activation lands here first, and the buffer is
	// about to be consumed anyway, so the scan rides hot cache lines.
	var bad int64
	if n.guards {
		bad = health.CountNonFinite32(logits)
	}

	// Numerically stable softmax over the active set.
	maxLogit := ws.ks.Max(logits)
	var z float64
	for k, l := range logits {
		e := math.Exp(float64(l - maxLogit))
		probs[k] = float32(e)
		z += e
	}
	invZ := float32(1 / z)
	ws.ks.Scale(invZ, probs)

	// Cross-entropy target: uniform over the sample's labels.
	nLab := len(labels)
	var t float32
	if nLab > 0 {
		t = 1 / float32(nLab)
	}
	var loss float64
	simd.Zero(ws.dhLast())
	logZ := math.Log(z) + float64(maxLogit)
	for k, id := range active {
		gz := probs[k]
		isLabel := false
		if n.cfg.NoSampling {
			isLabel = ws.dedup.Seen(id) // stamped above => true for labels
		} else {
			isLabel = k < nLabels
		}
		if isLabel {
			gz -= t
			loss -= float64(t) * (float64(logits[k]) - logZ)
		}
		n.output.Accumulate(ws.ks, id, gz, ws.last(), ws.hBF, ws.dhLast())
	}

	n.backwardStack(ws, x)
	if n.guards && bad == 0 && (math.IsNaN(loss) || math.IsInf(loss, 0)) {
		bad = 1
	}
	return loss, na, bad
}

// BatchStats reports one TrainBatch call.
type BatchStats struct {
	// Samples is the number of samples processed.
	Samples int
	// Loss is the summed sampled-softmax cross-entropy.
	Loss float64
	// ActiveSum is the total active-set size across samples; ActiveSum /
	// Samples is the mean sparsity the LSH sampling achieved.
	ActiveSum int64
	// NonFinite counts the NaN/Inf logits and losses the health guards
	// found in this batch (always zero with guards off — see SetGuards).
	// An order-independent sum of per-sample counts: bit-identical at any
	// worker count.
	NonFinite int64
	// Rebuilt reports whether the hash tables were rebuilt after this batch.
	Rebuilt bool
}

// TrainBatch runs one HOGWILD-parallel gradient step over the batch:
// workers process samples concurrently against shared parameters, gradients
// accumulate into per-layer buffers, and one fused ADAM step applies to the
// touched rows/columns. It then advances the hash-table rebuild schedule.
func (n *Network) TrainBatch(b sparse.Batch) BatchStats {
	// Numeric-poison drill: a nan/inf rule plants a non-finite hidden bias
	// (feeding every unit, so the very next forward pass is non-finite for
	// every sample at any worker count), a gradscale rule scales this one
	// step's learning rate. No-op single atomic load when nothing is armed.
	if act, row, f, ok := faultinject.Poison(faultinject.PointTrainBatch); ok {
		if restore := n.applyPoison(act, row, f); restore != nil {
			defer restore()
		}
	}
	if n.sh != nil {
		return n.trainBatchSharded(b)
	}
	stats := BatchStats{Samples: b.Len()}
	// Resolve the kernel table once for the whole batch: every per-row call
	// below goes through this table, not the atomic-dispatching wrappers.
	ks := simd.Active()
	nw := min(n.cfg.Workers, b.Len())
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := n.workers[w]
			ws.ks = ks
			var loss float64
			var activeSum, nonFin int64
			for i := w; i < b.Len(); i += nw {
				l, na, bad := n.trainSample(ws, b.Sample(i), b.Labels(i))
				loss += l
				activeSum += int64(na)
				nonFin += bad
			}
			mu.Lock()
			stats.Loss += loss
			stats.ActiveSum += activeSum
			stats.NonFinite += nonFin
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	n.step++
	p := simd.NewAdamParams(n.cfg.LR, n.cfg.Beta1, n.cfg.Beta2, n.cfg.Eps, n.step)
	n.hidden.ApplyAdam(ks, p, n.cfg.Workers)
	for _, ml := range n.middle {
		ml.ApplyAdamAll(ks, p, n.cfg.Workers) // dense stack: every row touched
	}
	if n.cfg.NoSampling {
		n.output.ApplyAdamAll(ks, p, n.cfg.Workers)
	} else {
		n.output.ApplyAdam(ks, p, n.cfg.Workers)
	}

	if n.tables != nil {
		n.sinceRebuild++
		if float64(n.sinceRebuild) >= n.rebuildPeriod {
			n.rebuildTables()
			n.sinceRebuild = 0
			n.rebuildPeriod *= n.cfg.RebuildGrowth
			stats.Rebuilt = true
		}
	}
	return stats
}

// applyPoison executes one fired poison rule. nan/inf plant the value in
// the hidden bias; gradscale scales the LR for exactly this step (the
// returned restore closure undoes it after ApplyAdam).
func (n *Network) applyPoison(action string, row int, factor float64) func() {
	switch action {
	case "nan", "inf":
		n.hidden.PoisonBias(row, layer.PoisonValue(action))
	case "gradscale":
		old := n.cfg.LR
		n.cfg.LR *= factor
		return func() { n.cfg.LR = old }
	}
	return nil
}

// Scores computes the full output-layer logits for one sample into out
// (len OutputDim) — the exact forward pass used for evaluation. Not safe
// for concurrent use with training; serve from Snapshot for that.
func (n *Network) Scores(x sparse.Vector, out []float32) {
	n.live.scoresWorkers(x, out, n.cfg.Workers)
}

// Predict returns the top-k scoring label ids for one sample, highest first.
// Not safe for concurrent use with training; serve from Snapshot for that.
func (n *Network) Predict(x sparse.Vector, k int, scores []float32) []int32 {
	if len(scores) != n.cfg.OutputDim {
		panic("network: Predict scores buffer must have OutputDim length")
	}
	n.Scores(x, scores)
	return metrics.TopK(scores, k)
}

// PredictSampled returns the top-k label ids ranked only over the LSH-
// retrieved candidate set — sub-linear inference, the deployment-time
// counterpart of SLIDE's sampled training. Returns ErrNoSampling under
// NoSampling/UniformSampling (full Predict is the right call there).
// Not safe for concurrent use with training; serve from Snapshot for that.
func (n *Network) PredictSampled(x sparse.Vector, k int) ([]int32, error) {
	return n.live.PredictSampled(x, k)
}
