package network

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand/v2"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
)

func layerActivation(v uint64) layer.Activation { return layer.Activation(v) }
func layerPrecision(v uint64) layer.Precision   { return layer.Precision(v) }
func layerPlacement(v uint64) layer.Placement   { return layer.Placement(v) }
func lshPolicy(v uint64) lsh.BucketPolicy       { return lsh.BucketPolicy(v) }

// Checkpoint format, version 3: a self-identifying preamble (magic +
// version) followed by framed sections, each
//
//	[id uint32][length uint64][payload][crc32c(payload) uint32]
//
// in fixed order: config, hidden layer, middle layers, output layer, hash
// tables (LSH-sampled networks only — presence is derived from the config,
// so the stream needs no lookahead), worker RNG states. The CRC32C trailer
// is verified *before* a section is parsed, so a truncated or bit-flipped
// checkpoint is reported as a typed *CorruptError naming the section and
// byte offset instead of surfacing as a garbage-shaped parse failure — and
// recovery code (train's last-good checkpoint ring) can distinguish
// corruption, which falling back cures, from honest version or shape
// mismatches, which it cannot.
//
// Tables are persisted — not rebuilt from the loaded weights — because
// their contents are a function of the weights at the *last scheduled
// rebuild*, not the current ones; restoring them exactly is what makes a
// resumed session bit-identical to an uninterrupted run. Version-2
// checkpoints (same payload bytes, no framing or checksums) still load;
// version-1 checkpoints rebuilt tables from current weights and cannot
// resume exactly.

const (
	checkpointMagic     = uint32(0x534C4944) // "SLID"
	checkpointVersion   = uint32(3)
	checkpointVersionV2 = uint32(2)

	// maxSectionBytes bounds a declared section length before allocation: a
	// corrupt length field must produce a typed error, not an OOM.
	maxSectionBytes = uint64(1) << 32
)

// Section ids, in stream order.
const (
	secConfig uint32 = iota + 1
	secHidden
	secMiddle
	secOutput
	secTables
	secRNG
)

var sectionNames = map[uint32]string{
	secConfig: "config",
	secHidden: "hidden",
	secMiddle: "middle",
	secOutput: "output",
	secTables: "tables",
	secRNG:    "rng",
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptCheckpoint is the sentinel wrapped by every corruption-shaped
// load failure: checksum mismatch, truncation, or a structurally impossible
// field. errors.Is(err, ErrCorruptCheckpoint) distinguishes "this file is
// damaged — fall back to an older checkpoint" from configuration or version
// errors that no fallback will fix.
var ErrCorruptCheckpoint = errors.New("network: corrupt checkpoint")

// CorruptError reports where a checkpoint is damaged: the section whose
// verification or read failed and the byte offset of that section's payload
// in the stream.
type CorruptError struct {
	// Section names the damaged section (config, hidden, middle, output,
	// tables, rng — or "preamble" for the magic/version header).
	Section string
	// Offset is the byte offset of the section payload within the
	// checkpoint stream.
	Offset int64
	// Err is the underlying detail (checksum mismatch, truncation, …).
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("network: corrupt checkpoint: section %s at offset %d: %v", e.Section, e.Offset, e.Err)
}

// Unwrap exposes both the sentinel and the underlying cause to errors.Is/As.
func (e *CorruptError) Unwrap() []error { return []error{ErrCorruptCheckpoint, e.Err} }

func corrupt(section string, offset int64, format string, args ...any) error {
	return &CorruptError{Section: section, Offset: offset, Err: fmt.Errorf(format, args...)}
}

// Save writes a version-3 checkpoint of the network: configuration,
// optimizer step, weights, biases, ADAM moments, LSH bucket state, and
// worker RNG states, each in a CRC32C-verified section. Do not call
// concurrently with TrainBatch.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, v := range []uint64{uint64(checkpointMagic), uint64(checkpointVersion)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("network: writing checkpoint preamble: %w", err)
		}
	}
	sw := NewSectionWriter(bw)
	sw.Section(secConfig, sectionNames[secConfig], n.writeConfig)
	sw.Section(secHidden, sectionNames[secHidden], n.hidden.Serialize)
	sw.Section(secMiddle, sectionNames[secMiddle], func(w io.Writer) error {
		for i, ml := range n.middle {
			if err := ml.Serialize(w); err != nil {
				return fmt.Errorf("hidden layer %d: %w", i+1, err)
			}
		}
		return nil
	})
	sw.Section(secOutput, sectionNames[secOutput], n.output.Serialize)
	if n.sh != nil {
		// Per-shard table sets, back to back (TableSet framing is
		// self-delimiting). The shard count is config-derived, so the
		// section needs no count prefix.
		sw.Section(secTables, sectionNames[secTables], func(w io.Writer) error {
			return serializeShardTables(w, n.sh.tables)
		})
	} else if n.tables != nil {
		sw.Section(secTables, sectionNames[secTables], n.tables.Serialize)
	}
	sw.Section(secRNG, sectionNames[secRNG], n.writeRNG)
	if err := sw.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// writeConfig emits the config payload: the fixed uint64 fields, the float64
// fields, and the middle-stack shape. Identical to the version-2 bytes that
// followed the preamble, so the v2 loader shares readConfig.
func (n *Network) writeConfig(w io.Writer) error {
	return writeConfigPayload(w, &n.cfg, n.step, n.sinceRebuild, n.rebuildPeriod)
}

// writeConfigPayload is the config payload serializer shared by checkpoints
// (full training state) and replication base snapshots (which carry no
// rebuild-schedule position — they pass zeros).
func writeConfigPayload(w io.Writer, cfg *Config, step int64, sinceRebuild int, rebuildPeriod float64) error {
	hdr := []uint64{
		uint64(cfg.InputDim), uint64(cfg.HiddenDim), uint64(cfg.OutputDim),
		uint64(cfg.HiddenActivation), uint64(cfg.Hash),
		uint64(cfg.K), uint64(cfg.L), uint64(cfg.BinSize),
		uint64(cfg.BucketCap), uint64(cfg.BucketPolicy),
		uint64(cfg.MinActive), uint64(cfg.MaxActive),
		boolU64(cfg.NoSampling), boolU64(cfg.UniformSampling),
		uint64(cfg.Precision), uint64(cfg.Placement),
		boolU64(cfg.Locked),
		uint64(cfg.RebuildEvery), uint64(cfg.Seed),
		uint64(step), uint64(sinceRebuild),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, f := range []float64{cfg.LR, cfg.Beta1, cfg.Beta2, cfg.Eps, cfg.RebuildGrowth, rebuildPeriod} {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(cfg.HiddenLayers))); err != nil {
		return err
	}
	for _, d := range cfg.HiddenLayers {
		if err := binary.Write(w, binary.LittleEndian, uint64(d)); err != nil {
			return err
		}
	}
	// Shards trails the original payload so pre-sharding checkpoints (which
	// simply end here) keep loading: the reader treats EOF as Shards=0.
	return binary.Write(w, binary.LittleEndian, uint64(cfg.Shards))
}

// writeRNG emits the random top-up RNG states: without them a resumed run
// draws a different top-up sequence and diverges from the uninterrupted one.
// Sharded networks emit the per-shard streams — keyed by shard, a model
// property, so the section is identical for any worker count and loads
// exactly at a different count. Legacy HOGWILD emits per-worker streams.
func (n *Network) writeRNG(w io.Writer) error {
	srcs := make([]*rand.PCG, 0, len(n.workers))
	if n.sh != nil {
		srcs = n.sh.rngSrcs
	} else {
		for _, ws := range n.workers {
			srcs = append(srcs, ws.rngSrc)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(srcs))); err != nil {
		return err
	}
	for _, src := range srcs {
		state, err := src.MarshalBinary()
		if err != nil {
			return fmt.Errorf("marshaling RNG state: %w", err)
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(len(state))); err != nil {
			return err
		}
		if _, err := w.Write(state); err != nil {
			return err
		}
	}
	return nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Load reads a checkpoint written by Save and reconstructs the network,
// restoring the exact LSH table bucket state the checkpoint carried (the
// tables as of the last scheduled rebuild — rebuilding from the restored
// weights instead would diverge from an uninterrupted run; see the format
// comment above). Version-3 sections are checksum-verified before parsing;
// damage is reported as a *CorruptError wrapping ErrCorruptCheckpoint.
// Version-2 checkpoints load through the legacy unverified path. Workers
// defaults to GOMAXPROCS unless overridden by workers > 0.
func Load(r io.Reader, workers int) (*Network, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var pre [2]uint64
	for i := range pre {
		if err := binary.Read(br, binary.LittleEndian, &pre[i]); err != nil {
			return nil, corrupt("preamble", 0, "reading checkpoint preamble: %w", err)
		}
	}
	if uint32(pre[0]) != checkpointMagic {
		return nil, fmt.Errorf("network: not a SLIDE checkpoint (magic %#x)", pre[0])
	}
	switch uint32(pre[1]) {
	case checkpointVersion:
		return loadV3(br, workers)
	case checkpointVersionV2:
		return loadV2(br, workers)
	default:
		return nil, fmt.Errorf("network: unsupported checkpoint version %d", pre[1])
	}
}

// loadV3 reads the framed, checksummed format.
func loadV3(br *bufio.Reader, workers int) (*Network, error) {
	sr := NewSectionReader(br, 16) // past the preamble
	next := func(wantID uint32) ([]byte, int64, error) {
		return sr.Next(wantID, sectionNames[wantID])
	}

	cfgPayload, cfgOff, err := next(secConfig)
	if err != nil {
		return nil, err
	}
	n, err := readConfig(bytes.NewReader(cfgPayload), workers, "config", cfgOff)
	if err != nil {
		return nil, err
	}
	for _, sec := range []struct {
		id    uint32
		parse func(io.Reader) error
	}{
		{secHidden, n.hidden.Deserialize},
		{secMiddle, func(r io.Reader) error {
			for i, ml := range n.middle {
				if err := ml.Deserialize(r); err != nil {
					return fmt.Errorf("hidden layer %d: %w", i+1, err)
				}
			}
			return nil
		}},
		{secOutput, n.output.Deserialize},
	} {
		payload, off, err := next(sec.id)
		if err != nil {
			return nil, err
		}
		if err := sec.parse(bytes.NewReader(payload)); err != nil {
			// The checksum passed, so the bytes are what Save wrote — a parse
			// failure here is a shape mismatch, but one the checksum says was
			// written that way: report it as corruption with location.
			return nil, corrupt(sectionNames[sec.id], off, "parsing verified section: %w", err)
		}
	}
	if n.sh != nil {
		payload, off, err := next(secTables)
		if err != nil {
			return nil, err
		}
		if err := deserializeShardTables(bytes.NewReader(payload), n.sh.tables); err != nil {
			return nil, corrupt("tables", off, "parsing verified section: %w", err)
		}
	} else if n.tables != nil {
		payload, off, err := next(secTables)
		if err != nil {
			return nil, err
		}
		if err := n.tables.Deserialize(bytes.NewReader(payload)); err != nil {
			return nil, corrupt("tables", off, "parsing verified section: %w", err)
		}
	}
	payload, off, err := next(secRNG)
	if err != nil {
		return nil, err
	}
	if err := readRNG(bytes.NewReader(payload), n); err != nil {
		return nil, corrupt("rng", off, "parsing verified section: %w", err)
	}
	return n, nil
}

// loadV2 reads the legacy unframed format: the same payloads, concatenated
// with no checksums.
func loadV2(br *bufio.Reader, workers int) (*Network, error) {
	n, err := readConfig(br, workers, "", 0)
	if err != nil {
		return nil, err
	}
	if err := n.hidden.Deserialize(br); err != nil {
		return nil, fmt.Errorf("network: reading hidden layer: %w", err)
	}
	for i, ml := range n.middle {
		if err := ml.Deserialize(br); err != nil {
			return nil, fmt.Errorf("network: reading hidden layer %d: %w", i+1, err)
		}
	}
	if err := n.output.Deserialize(br); err != nil {
		return nil, fmt.Errorf("network: reading output layer: %w", err)
	}
	if n.tables != nil {
		if err := n.tables.Deserialize(br); err != nil {
			return nil, fmt.Errorf("network: reading hash tables: %w", err)
		}
	}
	if err := readRNG(br, n); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	return n, nil
}

// readConfig parses the config payload (see writeConfig) and constructs the
// network, restoring step, rebuild-schedule position and rebuild period.
// section/off locate corruption reports in the v3 path; the v2 path passes
// an empty section and reports plain errors.
func readConfig(r io.Reader, workers int, section string, off int64) (*Network, error) {
	fail := func(format string, args ...any) error {
		if section != "" {
			return corrupt(section, off, format, args...)
		}
		return fmt.Errorf("network: reading checkpoint header: %w", fmt.Errorf(format, args...))
	}
	cfg, step, sinceRebuild, rebuildPeriod, err := parseConfigPayload(r, section != "", fail)
	if err != nil {
		return nil, err
	}
	cfg.Workers = workers
	n, err := New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("network: checkpoint config invalid: %w", err)
	}
	n.step = step
	n.sinceRebuild = sinceRebuild
	n.rebuildPeriod = rebuildPeriod
	return n, nil
}

// parseConfigPayload reads the payload written by writeConfigPayload. fail
// wraps field-level read failures with the caller's error shape. trailing
// permits reading the optional fields appended after the original payload
// (Shards); it must be false on the v2 path, where the config is not framed
// and reading past its end would consume the next payload's bytes.
func parseConfigPayload(r io.Reader, trailing bool, fail func(format string, args ...any) error) (Config, int64, int, float64, error) {
	hdr := make([]uint64, 21)
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return Config{}, 0, 0, 0, fail("reading config field %d: %w", i, err)
		}
	}
	fs := make([]float64, 6)
	for i := range fs {
		if err := binary.Read(r, binary.LittleEndian, &fs[i]); err != nil {
			return Config{}, 0, 0, 0, fail("reading config float %d: %w", i, err)
		}
	}
	var nMiddle uint64
	if err := binary.Read(r, binary.LittleEndian, &nMiddle); err != nil {
		return Config{}, 0, 0, 0, fail("reading middle-stack size: %w", err)
	}
	if nMiddle > 64 {
		return Config{}, 0, 0, 0, fail("checkpoint declares %d hidden layers", nMiddle)
	}
	middleDims := make([]int, nMiddle)
	for i := range middleDims {
		var d uint64
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return Config{}, 0, 0, 0, fail("reading middle dims: %w", err)
		}
		middleDims[i] = int(d)
	}
	cfg := Config{
		HiddenLayers:     middleDims,
		InputDim:         int(hdr[0]),
		HiddenDim:        int(hdr[1]),
		OutputDim:        int(hdr[2]),
		HiddenActivation: layerActivation(hdr[3]),
		Hash:             HashFamily(hdr[4]),
		K:                int(hdr[5]),
		L:                int(hdr[6]),
		BinSize:          int(hdr[7]),
		BucketCap:        int(hdr[8]),
		BucketPolicy:     lshPolicy(hdr[9]),
		MinActive:        int(hdr[10]),
		MaxActive:        int(hdr[11]),
		NoSampling:       hdr[12] != 0,
		UniformSampling:  hdr[13] != 0,
		Precision:        layerPrecision(hdr[14]),
		Placement:        layerPlacement(hdr[15]),
		Locked:           hdr[16] != 0,
		RebuildEvery:     int(hdr[17]),
		Seed:             hdr[18],
		LR:               fs[0],
		Beta1:            fs[1],
		Beta2:            fs[2],
		Eps:              fs[3],
		RebuildGrowth:    fs[4],
	}
	if trailing {
		var shards uint64
		switch err := binary.Read(r, binary.LittleEndian, &shards); err {
		case nil:
			cfg.Shards = int(shards)
		case io.EOF: // payload predates the Shards field
		default:
			return Config{}, 0, 0, 0, fail("reading shard count: %w", err)
		}
	}
	return cfg, int64(hdr[19]), int(hdr[20]), fs[5], nil
}

// serializeShardTables writes the per-shard table sets back to back. The
// TableSet framing is self-delimiting and the shard count is derived from
// the config, so the stream needs no count prefix — and the bytes are a
// pure function of (seed, shard count, insert history), never of the worker
// count, which is what makes sharded checkpoints bit-identical across W.
func serializeShardTables(w io.Writer, sets []*lsh.TableSet) error {
	for s, ts := range sets {
		if err := ts.Serialize(w); err != nil {
			return fmt.Errorf("shard %d tables: %w", s, err)
		}
	}
	return nil
}

// deserializeShardTables restores the per-shard table sets written by
// serializeShardTables, in shard order.
func deserializeShardTables(r io.Reader, sets []*lsh.TableSet) error {
	for s, ts := range sets {
		if err := ts.Deserialize(r); err != nil {
			return fmt.Errorf("shard %d tables: %w", s, err)
		}
	}
	return nil
}

// readRNG restores the RNG states. Sharded networks restore the per-shard
// streams — the shard count comes from the config, so the counts always
// match and a checkpoint written at W workers resumes bit-exactly at W'.
// Legacy HOGWILD restores per-worker: a load with the same worker count
// resumes exactly; with fewer or more workers the overlapping workers
// restore and the rest keep their fresh seeds (exact resume requires
// matching worker counts anyway — HOGWILD partitioning changes with the
// count).
func readRNG(r io.Reader, n *Network) error {
	into := func(i int) *rand.PCG {
		if n.sh != nil {
			if i < len(n.sh.rngSrcs) {
				return n.sh.rngSrcs[i]
			}
			return nil
		}
		if i < len(n.workers) {
			return n.workers[i].rngSrc
		}
		return nil
	}
	var nRNG uint64
	if err := binary.Read(r, binary.LittleEndian, &nRNG); err != nil {
		return fmt.Errorf("reading RNG states: %w", err)
	}
	if nRNG > 1<<20 {
		return fmt.Errorf("checkpoint declares %d RNG states", nRNG)
	}
	for i := uint64(0); i < nRNG; i++ {
		var sz uint32
		if err := binary.Read(r, binary.LittleEndian, &sz); err != nil {
			return fmt.Errorf("reading RNG states: %w", err)
		}
		if sz > 4096 {
			return fmt.Errorf("RNG state of %d bytes", sz)
		}
		state := make([]byte, sz)
		if _, err := io.ReadFull(r, state); err != nil {
			return fmt.Errorf("reading RNG states: %w", err)
		}
		if src := into(int(i)); src != nil {
			if err := src.UnmarshalBinary(state); err != nil {
				return fmt.Errorf("restoring RNG state %d: %w", i, err)
			}
		}
	}
	return nil
}
