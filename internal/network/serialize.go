package network

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
)

func layerActivation(v uint64) layer.Activation { return layer.Activation(v) }
func layerPrecision(v uint64) layer.Precision   { return layer.Precision(v) }
func layerPlacement(v uint64) layer.Placement   { return layer.Placement(v) }
func lshPolicy(v uint64) lsh.BucketPolicy       { return lsh.BucketPolicy(v) }

// checkpoint format: magic, version, config fields, step counter and
// rebuild-schedule position, the layers' payloads, then (for LSH-sampled
// networks) the hash-table bucket state. Tables are persisted — not rebuilt
// from the loaded weights — because their contents are a function of the
// weights at the *last scheduled rebuild*, not the current ones; restoring
// them exactly is what makes a resumed session bit-identical to an
// uninterrupted run (version 2; version-1 checkpoints rebuilt from current
// weights and cannot resume exactly).

const (
	checkpointMagic   = uint32(0x534C4944) // "SLID"
	checkpointVersion = uint32(2)
)

// Save writes a checkpoint of the network: configuration, optimizer step,
// weights, biases, and ADAM moments. Do not call concurrently with
// TrainBatch.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := []uint64{
		uint64(checkpointMagic), uint64(checkpointVersion),
		uint64(n.cfg.InputDim), uint64(n.cfg.HiddenDim), uint64(n.cfg.OutputDim),
		uint64(n.cfg.HiddenActivation), uint64(n.cfg.Hash),
		uint64(n.cfg.K), uint64(n.cfg.L), uint64(n.cfg.BinSize),
		uint64(n.cfg.BucketCap), uint64(n.cfg.BucketPolicy),
		uint64(n.cfg.MinActive), uint64(n.cfg.MaxActive),
		boolU64(n.cfg.NoSampling), boolU64(n.cfg.UniformSampling),
		uint64(n.cfg.Precision), uint64(n.cfg.Placement),
		boolU64(n.cfg.Locked),
		uint64(n.cfg.RebuildEvery), uint64(n.cfg.Seed),
		uint64(n.step), uint64(n.sinceRebuild),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("network: writing checkpoint header: %w", err)
		}
	}
	for _, f := range []float64{n.cfg.LR, n.cfg.Beta1, n.cfg.Beta2, n.cfg.Eps, n.cfg.RebuildGrowth, n.rebuildPeriod} {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return fmt.Errorf("network: writing checkpoint header: %w", err)
		}
	}
	// Middle-stack shape.
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(n.cfg.HiddenLayers))); err != nil {
		return fmt.Errorf("network: writing checkpoint header: %w", err)
	}
	for _, d := range n.cfg.HiddenLayers {
		if err := binary.Write(bw, binary.LittleEndian, uint64(d)); err != nil {
			return fmt.Errorf("network: writing checkpoint header: %w", err)
		}
	}
	if err := n.hidden.Serialize(bw); err != nil {
		return fmt.Errorf("network: writing hidden layer: %w", err)
	}
	for i, ml := range n.middle {
		if err := ml.Serialize(bw); err != nil {
			return fmt.Errorf("network: writing hidden layer %d: %w", i+1, err)
		}
	}
	if err := n.output.Serialize(bw); err != nil {
		return fmt.Errorf("network: writing output layer: %w", err)
	}
	if n.tables != nil {
		if err := n.tables.Serialize(bw); err != nil {
			return fmt.Errorf("network: writing hash tables: %w", err)
		}
	}
	// Per-worker random top-up RNG state: without it a resumed run draws a
	// different top-up sequence and diverges from the uninterrupted one.
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(n.workers))); err != nil {
		return fmt.Errorf("network: writing RNG states: %w", err)
	}
	for _, ws := range n.workers {
		state, err := ws.rngSrc.MarshalBinary()
		if err != nil {
			return fmt.Errorf("network: marshaling RNG state: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(state))); err != nil {
			return fmt.Errorf("network: writing RNG states: %w", err)
		}
		if _, err := bw.Write(state); err != nil {
			return fmt.Errorf("network: writing RNG states: %w", err)
		}
	}
	return bw.Flush()
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Load reads a checkpoint written by Save and reconstructs the network,
// restoring the exact LSH table bucket state the checkpoint carried (the
// tables as of the last scheduled rebuild — rebuilding from the restored
// weights instead would diverge from an uninterrupted run; see the format
// comment above). Workers defaults to GOMAXPROCS unless overridden by
// workers > 0.
func Load(r io.Reader, workers int) (*Network, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]uint64, 23)
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("network: reading checkpoint header: %w", err)
		}
	}
	if uint32(hdr[0]) != checkpointMagic {
		return nil, fmt.Errorf("network: not a SLIDE checkpoint (magic %#x)", hdr[0])
	}
	if uint32(hdr[1]) != checkpointVersion {
		return nil, fmt.Errorf("network: unsupported checkpoint version %d", hdr[1])
	}
	fs := make([]float64, 6)
	for i := range fs {
		if err := binary.Read(br, binary.LittleEndian, &fs[i]); err != nil {
			return nil, fmt.Errorf("network: reading checkpoint header: %w", err)
		}
	}
	var nMiddle uint64
	if err := binary.Read(br, binary.LittleEndian, &nMiddle); err != nil {
		return nil, fmt.Errorf("network: reading checkpoint header: %w", err)
	}
	if nMiddle > 64 {
		return nil, fmt.Errorf("network: checkpoint declares %d hidden layers (corrupt?)", nMiddle)
	}
	middleDims := make([]int, nMiddle)
	for i := range middleDims {
		var d uint64
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("network: reading checkpoint header: %w", err)
		}
		middleDims[i] = int(d)
	}
	cfg := Config{
		HiddenLayers:     middleDims,
		InputDim:         int(hdr[2]),
		HiddenDim:        int(hdr[3]),
		OutputDim:        int(hdr[4]),
		HiddenActivation: layerActivation(hdr[5]),
		Hash:             HashFamily(hdr[6]),
		K:                int(hdr[7]),
		L:                int(hdr[8]),
		BinSize:          int(hdr[9]),
		BucketCap:        int(hdr[10]),
		BucketPolicy:     lshPolicy(hdr[11]),
		MinActive:        int(hdr[12]),
		MaxActive:        int(hdr[13]),
		NoSampling:       hdr[14] != 0,
		UniformSampling:  hdr[15] != 0,
		Precision:        layerPrecision(hdr[16]),
		Placement:        layerPlacement(hdr[17]),
		Locked:           hdr[18] != 0,
		RebuildEvery:     int(hdr[19]),
		Seed:             hdr[20],
		LR:               fs[0],
		Beta1:            fs[1],
		Beta2:            fs[2],
		Eps:              fs[3],
		RebuildGrowth:    fs[4],
		Workers:          workers,
	}
	n, err := New(&cfg)
	if err != nil {
		return nil, fmt.Errorf("network: checkpoint config invalid: %w", err)
	}
	if err := n.hidden.Deserialize(br); err != nil {
		return nil, fmt.Errorf("network: reading hidden layer: %w", err)
	}
	for i, ml := range n.middle {
		if err := ml.Deserialize(br); err != nil {
			return nil, fmt.Errorf("network: reading hidden layer %d: %w", i+1, err)
		}
	}
	if err := n.output.Deserialize(br); err != nil {
		return nil, fmt.Errorf("network: reading output layer: %w", err)
	}
	n.step = int64(hdr[21])
	n.sinceRebuild = int(hdr[22])
	n.rebuildPeriod = fs[5]
	if n.tables != nil {
		// Restore the exact bucket state the checkpoint carried — the tables
		// as of the last scheduled rebuild, which resumed training continues
		// from bit-identically. (New already built tables from the initial
		// weights; Deserialize replaces that state.)
		if err := n.tables.Deserialize(br); err != nil {
			return nil, fmt.Errorf("network: reading hash tables: %w", err)
		}
	}
	// Restore worker RNG states. A load with the same worker count resumes
	// exactly; with fewer or more workers the overlapping workers restore and
	// the rest keep their fresh seeds (exact resume requires matching worker
	// counts anyway — HOGWILD partitioning changes with the count).
	var nRNG uint64
	if err := binary.Read(br, binary.LittleEndian, &nRNG); err != nil {
		return nil, fmt.Errorf("network: reading RNG states: %w", err)
	}
	if nRNG > 1<<20 {
		return nil, fmt.Errorf("network: checkpoint declares %d RNG states (corrupt?)", nRNG)
	}
	for i := uint64(0); i < nRNG; i++ {
		var sz uint32
		if err := binary.Read(br, binary.LittleEndian, &sz); err != nil {
			return nil, fmt.Errorf("network: reading RNG states: %w", err)
		}
		if sz > 4096 {
			return nil, fmt.Errorf("network: RNG state of %d bytes (corrupt?)", sz)
		}
		state := make([]byte, sz)
		if _, err := io.ReadFull(br, state); err != nil {
			return nil, fmt.Errorf("network: reading RNG states: %w", err)
		}
		if int(i) < len(n.workers) {
			if err := n.workers[i].rngSrc.UnmarshalBinary(state); err != nil {
				return nil, fmt.Errorf("network: restoring RNG state %d: %w", i, err)
			}
		}
	}
	return n, nil
}
