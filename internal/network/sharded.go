package network

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/internal/health"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/mem"
	"github.com/slide-cpu/slide/internal/platform"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Sharded execution (Config.Shards > 0) replaces the HOGWILD sample-striped
// trainer with a deterministic scatter-gather engine. The label space is
// partitioned into S contiguous shards, each owning its rows' LSH tables,
// active-set budget, RNG stream, and gradient arena; a batch runs as a fixed
// sequence of barrier-separated phases whose tasks (samples or shards) are
// striped over a pool of pinned workers. Every reduction either targets
// worker-exclusive state (shard-owned rows), runs in a canonical fixed order
// (shard-ascending merges), or is elementwise over disjoint ranges (hidden
// backward tiles) — so the trained weights, checkpoints, and deltas are
// bit-identical for ANY worker count. The shard count S is a model property;
// the worker count W is purely an execution resource.

// shardPlan is the immutable shard geometry derived from a validated config:
// a balanced contiguous partition of the output rows, with the active-set
// budgets split proportionally. Pure function of the config — trainer,
// snapshots, and replicas derive identical plans.
type shardPlan struct {
	s      int
	bounds []int32 // len s+1; shard i owns rows [bounds[i], bounds[i+1])
	minAct []int   // per-shard random top-up floor (MinActive split)
	maxAct []int   // per-shard active cap (MaxActive split; 0 = uncapped)
}

func newShardPlan(cfg *Config) *shardPlan {
	s := cfg.Shards
	p := &shardPlan{
		s:      s,
		bounds: make([]int32, s+1),
		minAct: make([]int, s),
		maxAct: make([]int, s),
	}
	base, rem := cfg.OutputDim/s, cfg.OutputDim%s
	minBase, minRem := cfg.MinActive/s, cfg.MinActive%s
	maxBase, maxRem := cfg.MaxActive/s, cfg.MaxActive%s
	off := int32(0)
	for i := 0; i < s; i++ {
		p.bounds[i] = off
		w := base
		if i < rem {
			w++
		}
		off += int32(w)
		p.minAct[i] = minBase
		if i < minRem {
			p.minAct[i]++
		}
		if p.minAct[i] > w {
			p.minAct[i] = w // top-up cannot exceed the shard's width
		}
		if cfg.MaxActive > 0 {
			p.maxAct[i] = maxBase
			if i < maxRem {
				p.maxAct[i]++
			}
			if p.maxAct[i] < 1 {
				p.maxAct[i] = 1 // a cap of zero would drop labels
			}
		}
	}
	p.bounds[s] = off
	return p
}

// shardScratch is one shard's per-batch working set: the active ids and
// logit/gradient values per sample, and the shard's partial ∇h per sample.
// dhPart rows come from a per-shard arena (64-byte aligned, contiguous) so
// one shard's gradient traffic stays in one pinned core's private cache —
// the working set the plan sizes against platform.DetectTopology's L2.
type shardScratch struct {
	active  [][]int32   // [sample] global ids, labels first
	gz      [][]float32 // [sample] logits, then softmax grads, over active
	nLabels []int       // [sample] label entries at the head of active
	arena   *mem.Arena
	dhPart  [][]float32 // [sample][lastDim] partial ∇h, arena-backed
}

// shardState is the trainer-side sharded machinery hanging off a Network.
type shardState struct {
	plan    *shardPlan
	tables  []*lsh.TableSet // per-shard tables storing global row ids
	rngs    []*rand.Rand    // per-shard top-up streams (checkpointed)
	rngSrcs []*rand.PCG
	dedups  []*lsh.Dedup // per-shard, local-id (width-sized) stamps
	topo    platform.Topology
	pin     bool // pin pool workers to CPUs (hint; skipped on 1-CPU hosts)

	// Per-batch scratch, grown on demand and reused across batches.
	capB    int // sample capacity currently allocated
	xs      []sparse.Vector
	acts    [][][]float32 // [sample][layer]
	dhs     [][][]float32
	acts0   [][]float32 // acts[i][0] views (hidden backward)
	dhs0    [][]float32
	lastA   [][]float32 // acts[i][last] views (output phases)
	lastD   [][]float32
	hBF     [][]bf16.BF16
	hashes  [][]uint32 // [sample] one bucket hash per table
	losses  []float64
	actN    []int64
	nonFin  []int64     // [sample] health-guard non-finite counts
	labelLg [][]float32 // [sample] label-entry logits in canonical order

	shards []*shardScratch
}

func newShardState(cfg *Config, lastDim int) (*shardState, error) {
	plan := newShardPlan(cfg)
	sh := &shardState{plan: plan, topo: platform.DetectTopology()}
	// Pinning is a cache-affinity hint: useful when the pool fits the
	// machine, pointless on one CPU, harmful when oversubscribed.
	sh.pin = sh.topo.CPUs > 1 && cfg.Workers <= sh.topo.CPUs
	for s := 0; s < plan.s; s++ {
		ts, err := newTables(cfg, lastDim)
		if err != nil {
			return nil, err
		}
		// All shards share hasher/table seeds (splitSeed streams 3 and 4);
		// contents differ only by which rows each shard inserts, so a shard
		// table is a pure function of (bounds, weights) — replicas rebuild
		// identical sets from serialized buckets.
		sh.tables = append(sh.tables, ts)
		width := int(plan.bounds[s+1] - plan.bounds[s])
		sh.dedups = append(sh.dedups, lsh.NewDedup(max(width, 1)))
		// Stream 1<<40|s cannot collide with the legacy per-worker streams
		// (0..W-1) or any other splitSeed consumer.
		src := rand.NewPCG(splitSeed(cfg.Seed, 5), uint64(1)<<40|uint64(s))
		sh.rngSrcs = append(sh.rngSrcs, src)
		sh.rngs = append(sh.rngs, rand.New(src))
		sh.shards = append(sh.shards, &shardScratch{})
	}
	return sh, nil
}

// ensureBatch grows the per-batch scratch to hold b samples.
func (sh *shardState) ensureBatch(f *forwardState, b int) {
	if b <= sh.capB {
		return
	}
	nLayers := len(f.dims)
	for i := sh.capB; i < b; i++ {
		stack := make([][]float32, nLayers)
		dstack := make([][]float32, nLayers)
		for li, d := range f.dims {
			stack[li] = make([]float32, d)
			dstack[li] = make([]float32, d)
		}
		sh.acts = append(sh.acts, stack)
		sh.dhs = append(sh.dhs, dstack)
		sh.acts0 = append(sh.acts0, stack[0])
		sh.dhs0 = append(sh.dhs0, dstack[0])
		sh.lastA = append(sh.lastA, stack[nLayers-1])
		sh.lastD = append(sh.lastD, dstack[nLayers-1])
		if f.cfg.Precision != layer.FP32 { // BF16 modes need the packed view
			sh.hBF = append(sh.hBF, make([]bf16.BF16, f.lastDim))
		} else {
			sh.hBF = append(sh.hBF, nil)
		}
		sh.hashes = append(sh.hashes, make([]uint32, sh.tables[0].Tables()))
		sh.labelLg = append(sh.labelLg, nil)
	}
	sh.xs = make([]sparse.Vector, b)
	sh.losses = make([]float64, b)
	sh.actN = make([]int64, b)
	sh.nonFin = make([]int64, b)
	for s, ss := range sh.shards {
		for i := len(ss.active); i < b; i++ {
			ss.active = append(ss.active, make([]int32, 0, sh.plan.minAct[s]+8))
			ss.gz = append(ss.gz, nil)
		}
		ss.nLabels = make([]int, b)
		// One contiguous arena per shard keeps the shard's ∇h partials in
		// one aligned block (sized to the batch; compare sh.topo.L2Bytes
		// for whether a shard's slice stays cache-resident).
		ss.arena = mem.NewArena(b * f.lastDim)
		ss.dhPart = ss.dhPart[:0]
		for i := 0; i < b; i++ {
			ss.dhPart = append(ss.dhPart, ss.arena.Alloc(f.lastDim))
		}
	}
	sh.capB = b
}

// phaseCmd is one phase posted to a pool worker: run fn over tasks striped
// by worker index, then signal the barrier.
type phaseCmd struct {
	tasks int
	fn    func(task int)
	done  *sync.WaitGroup
}

// phasePool is a set of pinned OS-thread workers living for one TrainBatch
// call. Task t of a phase always runs on worker t mod W — a fixed static
// assignment, so cache affinity (shard s stays on one core across phases B,
// D, and the rebuild) comes for free. Created per batch: a persistent pool
// would leak locked OS threads, since Network has no Close.
type phasePool struct {
	cmds []chan phaseCmd
}

func newPhasePool(workers int, pin bool) *phasePool {
	p := &phasePool{cmds: make([]chan phaseCmd, workers)}
	ncpu := runtime.NumCPU()
	for w := range p.cmds {
		p.cmds[w] = make(chan phaseCmd, 8)
		go func(w int, c chan phaseCmd) {
			if pin {
				runtime.LockOSThread()
				// Pin failure (restricted cpuset, seccomp) is fine: the
				// worker just runs unpinned.
				_ = platform.PinThread(w % ncpu)
			}
			for cmd := range c {
				for t := w; t < cmd.tasks; t += workers {
					cmd.fn(t)
				}
				// Arrival at the phase barrier: the chaos hook stalls one
				// worker here to prove late arrival cannot tear a merge.
				_ = faultinject.Hit(faultinject.PointShardBarrier)
				cmd.done.Done()
			}
		}(w, p.cmds[w])
	}
	return p
}

// run executes one phase: fn(t) for every t in [0, tasks), striped over the
// workers, returning after all workers reach the barrier.
func (p *phasePool) run(tasks int, fn func(task int)) {
	var done sync.WaitGroup
	done.Add(len(p.cmds))
	for _, c := range p.cmds {
		c <- phaseCmd{tasks: tasks, fn: fn, done: &done}
	}
	done.Wait()
}

func (p *phasePool) close() {
	for _, c := range p.cmds {
		close(c)
	}
}

// trainBatchSharded is the deterministic sharded optimizer step. Phases:
//
//	A (per sample): forward stack; hash the last activation once.
//	B (per shard):  active-set selection (labels → LSH probe → top-up) and
//	                the active logits, into shard-private buffers.
//	C (per sample): canonical softmax merge across shards — max, Σexp, scale,
//	                label subtraction — in shard-ascending order.
//	D (per shard):  output-row gradient accumulation (rows shard-owned) and
//	                the shard's partial ∇h per sample.
//	E (per sample): ∇h = Σ_s partials, fixed shard order; then the middle
//	                stack backward (serial — stacked layers share gradient
//	                rows across samples).
//	F (per tile):   hidden backward over disjoint unit ranges; elementwise
//	                kernels make the per-scalar order sample-ascending
//	                regardless of tiling.
//	G:              ADAM (output per shard via ApplyAdamRange) and the
//	                per-shard table rebuild on schedule.
//
// Barriers separate the phases; nothing in any phase depends on how tasks
// interleave within it, so W only changes wall-clock, never bits.
func (n *Network) trainBatchSharded(b sparse.Batch) BatchStats {
	sh := n.sh
	plan := sh.plan
	S := plan.s
	B := b.Len()
	stats := BatchStats{Samples: B}
	ks := simd.Active()
	f := n.fwd
	sh.ensureBatch(f, B)
	for i := 0; i < B; i++ {
		sh.xs[i] = b.Sample(i)
	}

	nw := n.cfg.Workers
	pool := newPhasePool(nw, sh.pin)
	defer pool.close()

	// Phase A: forward every sample, hash its output-layer input once. All
	// shard hashers are seed-identical, so shard 0's is "the" hasher.
	pool.run(B, func(i int) {
		x := sh.xs[i]
		stack := sh.acts[i]
		f.hidden.Forward(ks, x, stack[0])
		for li, ml := range f.middle {
			ml.ForwardActive(ks, f.middleAll[li], stack[li], nil, stack[li+1])
			out := stack[li+1]
			for j := range out { // stacked layers are ReLU
				if out[j] < 0 {
					out[j] = 0
				}
			}
		}
		if sh.hBF[i] != nil {
			ks.PackBF16(sh.hBF[i], sh.lastA[i])
		}
		sh.tables[0].HashDense(sh.lastA[i], sh.hashes[i])
	})

	// Phase B: per-shard active sets and logits. Samples run in order inside
	// each shard, so the shard RNG consumption is a pure function of the
	// batch — independent of which worker executes the shard.
	pool.run(S, func(s int) {
		lo, hi := plan.bounds[s], plan.bounds[s+1]
		width := int(hi - lo)
		d := sh.dedups[s]
		rng := sh.rngs[s]
		ss := sh.shards[s]
		for i := 0; i < B; i++ {
			act := ss.active[i][:0]
			d.Begin()
			for _, y := range b.Labels(i) {
				if y >= lo && y < hi && !d.Seen(y-lo) {
					act = append(act, y)
				}
			}
			nLab := len(act)
			ss.nLabels[i] = nLab
			limit := plan.maxAct[s]
			if limit > 0 && nLab > limit {
				limit = nLab // labels always survive
			}
			sh.tables[s].QueryHashes(sh.hashes[i], func(id int32) {
				if limit > 0 && len(act) >= limit {
					return
				}
				if !d.Seen(id - lo) {
					act = append(act, id)
				}
			})
			for len(act) < plan.minAct[s] {
				local := int32(rng.IntN(width))
				if !d.Seen(local) {
					act = append(act, lo+local)
				}
			}
			ss.active[i] = act
			gz := ss.gz[i]
			if cap(gz) < len(act) {
				gz = make([]float32, len(act))
			}
			gz = gz[:len(act)]
			f.output.ForwardActive(ks, act, sh.lastA[i], sh.hBF[i], gz)
			ss.gz[i] = gz
		}
	})

	// Phase C: canonical per-sample softmax merge. Every reduction walks
	// shards in ascending order, so the float accumulation order is fixed.
	pool.run(B, func(i int) {
		// Health guard: scan each shard's raw logits before the exp
		// transform overwrites them. Per-sample integer sum over per-shard
		// partials — a pure function of (weights at batch start, sample),
		// independent of which worker runs the merge.
		var bad int64
		if n.guards {
			for s := 0; s < S; s++ {
				bad += health.CountNonFinite32(sh.shards[s].gz[i])
			}
		}
		m := float32(math.Inf(-1))
		total := 0
		for s := 0; s < S; s++ {
			g := sh.shards[s].gz[i]
			if len(g) > 0 {
				if v := ks.Max(g); v > m {
					m = v
				}
				total += len(g)
			}
		}
		if total == 0 {
			sh.losses[i], sh.actN[i], sh.nonFin[i] = 0, 0, bad
			return
		}
		// Save the label-entry logits before the buffers are overwritten
		// with exp values (the loss needs raw logits after the z-sum).
		ll := sh.labelLg[i][:0]
		for s := 0; s < S; s++ {
			g := sh.shards[s].gz[i]
			ll = append(ll, g[:sh.shards[s].nLabels[i]]...)
		}
		sh.labelLg[i] = ll
		var z float64
		for s := 0; s < S; s++ {
			g := sh.shards[s].gz[i]
			for k, l := range g {
				e := math.Exp(float64(l - m))
				g[k] = float32(e)
				z += e
			}
		}
		invZ := float32(1 / z)
		for s := 0; s < S; s++ {
			if g := sh.shards[s].gz[i]; len(g) > 0 {
				ks.Scale(invZ, g)
			}
		}
		nLab := len(b.Labels(i))
		var t float32
		if nLab > 0 {
			t = 1 / float32(nLab)
		}
		logZ := math.Log(z) + float64(m)
		var loss float64
		p := 0
		for s := 0; s < S; s++ {
			g := sh.shards[s].gz[i]
			for k := 0; k < sh.shards[s].nLabels[i]; k++ {
				g[k] -= t
				loss -= float64(t) * (float64(ll[p]) - logZ)
				p++
			}
		}
		if n.guards && bad == 0 && (math.IsNaN(loss) || math.IsInf(loss, 0)) {
			bad = 1
		}
		sh.losses[i] = loss
		sh.actN[i] = int64(total)
		sh.nonFin[i] = bad
	})

	// Phase D: output gradients. Each shard owns its rows exclusively, and
	// samples run in order, so every weight-row accumulation has a fixed
	// order; ∇h partials land in shard-private arena rows.
	pool.run(S, func(s int) {
		ss := sh.shards[s]
		for i := 0; i < B; i++ {
			dhp := ss.dhPart[i]
			simd.Zero(dhp)
			g := ss.gz[i]
			for k, id := range ss.active[i] {
				n.output.Accumulate(ks, id, g[k], sh.lastA[i], sh.hBF[i], dhp)
			}
		}
	})

	// Phase E: reduce ∇h per sample in fixed shard order.
	pool.run(B, func(i int) {
		dh := sh.lastD[i]
		simd.Zero(dh)
		for s := 0; s < S; s++ {
			ks.Add(sh.shards[s].dhPart[i], dh)
		}
	})

	// Middle stack backward: stacked layers accumulate into gradient rows
	// shared across samples, so this stays serial (sample-ascending) — the
	// documented cost of determinism on deep stacks. The paper's
	// single-hidden-layer configurations skip this entirely.
	for i := 0; i < B; i++ {
		stack, dstack := sh.acts[i], sh.dhs[i]
		for li := len(n.middle) - 1; li >= 0; li-- {
			ml := n.middle[li]
			act, dh := stack[li+1], dstack[li+1]
			prev := dstack[li]
			simd.Zero(prev)
			for r := range dh {
				if act[r] <= 0 { // ReLU mask
					continue
				}
				if gz := dh[r]; gz != 0 {
					ml.Accumulate(ks, int32(r), gz, stack[li], nil, prev)
				}
			}
		}
	}

	// Phase F: hidden backward over disjoint unit tiles. Tile count follows
	// the worker count — safe, because the per-scalar accumulation order
	// inside BackwardBatchRange is sample-ascending for any tiling.
	tiles := min(nw, n.cfg.HiddenDim)
	per := (n.cfg.HiddenDim + tiles - 1) / tiles
	pool.run(tiles, func(t int) {
		lo := t * per
		hi := min(lo+per, n.cfg.HiddenDim)
		if lo < hi {
			n.hidden.BackwardBatchRange(ks, sh.xs[:B], sh.acts0, sh.dhs0, lo, hi)
		}
	})

	// Phase G: optimizer. Hidden/middle passes are per-column/per-row
	// independent (already worker-count-safe); the output steps per shard.
	n.step++
	p := simd.NewAdamParams(n.cfg.LR, n.cfg.Beta1, n.cfg.Beta2, n.cfg.Eps, n.step)
	n.hidden.ApplyAdam(ks, p, nw)
	for _, ml := range n.middle {
		ml.ApplyAdamAll(ks, p, nw)
	}
	pool.run(S, func(s int) {
		n.output.ApplyAdamRange(ks, p, int(plan.bounds[s]), int(plan.bounds[s+1]))
	})
	n.output.FinishAdam()

	n.sinceRebuild++
	if float64(n.sinceRebuild) >= n.rebuildPeriod {
		pool.run(S, func(s int) {
			sh.tables[s].RebuildRange(int(plan.bounds[s]), int(plan.bounds[s+1]),
				n.lastDim, n.output.RowF32, 1)
		})
		n.rebuildGen++
		n.sinceRebuild = 0
		n.rebuildPeriod *= n.cfg.RebuildGrowth
		stats.Rebuilt = true
	}

	for i := 0; i < B; i++ {
		stats.Loss += sh.losses[i]
		stats.ActiveSum += sh.actN[i]
		stats.NonFinite += sh.nonFin[i]
	}
	return stats
}

// rebuildShardTables re-hashes every shard's rows into fresh tables — the
// out-of-band rebuild used at construction and after deserialization.
// Shards fan out over the worker budget; each shard's content is
// independent of scheduling.
func (n *Network) rebuildShardTables() {
	sh := n.sh
	nw := min(n.cfg.Workers, sh.plan.s)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < sh.plan.s; s += nw {
				sh.tables[s].RebuildRange(int(sh.plan.bounds[s]), int(sh.plan.bounds[s+1]),
					n.lastDim, n.output.RowF32, 1)
			}
		}(w)
	}
	wg.Wait()
	n.rebuildGen++
}

// cloneShardTables deep-copies every shard's tables (snapshot publication).
func cloneShardTables(sets []*lsh.TableSet) []*lsh.TableSet {
	out := make([]*lsh.TableSet, len(sets))
	for i, ts := range sets {
		out[i] = ts.Clone()
	}
	return out
}

// ShardCount returns the configured shard count (0 = unsharded).
func (n *Network) ShardCount() int {
	if n.sh == nil {
		return 0
	}
	return n.sh.plan.s
}
