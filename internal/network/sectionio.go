package network

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
)

// Exported face of the checkpoint-v3 section framing,
//
//	[id uint32][length uint64][payload][crc32c(payload) uint32]
//
// so the replication wire format (internal/replicate) frames its messages
// with the exact machinery checkpoints use: lengths bounded before
// allocation, CRC32C verified before parsing, damage reported as a typed
// *CorruptError. One framing, one set of corruption semantics, one
// battle-tested reader.

// SectionWriter frames sections onto a stream: each payload is buffered (so
// its length prefix and checksum can precede the next section), CRC32C'd,
// and written as id + length + payload + crc. The buffer is reused across
// sections; the transient copy is the price of a stream a reader can verify
// before parsing.
type SectionWriter struct {
	w   io.Writer
	buf bytes.Buffer
	err error
}

// NewSectionWriter frames sections onto w. The caller provides buffering.
func NewSectionWriter(w io.Writer) *SectionWriter { return &SectionWriter{w: w} }

// Section writes one framed section whose payload fill produces. After the
// first error every subsequent call is a no-op; collect it from Err.
func (sw *SectionWriter) Section(id uint32, name string, fill func(io.Writer) error) {
	if sw.err != nil {
		return
	}
	sw.buf.Reset()
	if err := fill(&sw.buf); err != nil {
		sw.err = wrapWriteErr(name, err)
		return
	}
	payload := sw.buf.Bytes()
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], id)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(payload)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.Checksum(payload, castagnoli))
	for _, b := range [][]byte{hdr, payload, trailer[:]} {
		if _, err := sw.w.Write(b); err != nil {
			sw.err = wrapWriteErr(name, err)
			return
		}
	}
}

// Err returns the first error any Section call hit.
func (sw *SectionWriter) Err() error { return sw.err }

func wrapWriteErr(name string, err error) error {
	return &writeSectionError{name: name, err: err}
}

// writeSectionError keeps write-side failures distinct from the read-side
// *CorruptError while still naming the section.
type writeSectionError struct {
	name string
	err  error
}

func (e *writeSectionError) Error() string {
	return "network: writing section " + e.name + ": " + e.err.Error()
}

func (e *writeSectionError) Unwrap() error { return e.err }

// SectionReader reads framed sections in order, verifying each payload's
// CRC32C before returning it. Failures are typed *CorruptError values
// wrapping ErrCorruptCheckpoint, naming the section and byte offset.
type SectionReader struct {
	r      io.Reader
	offset int64
}

// NewSectionReader reads sections from r. offset is the stream position r
// currently sits at (bytes already consumed before framing starts), used
// only to locate corruption reports.
func NewSectionReader(r io.Reader, offset int64) *SectionReader {
	return &SectionReader{r: r, offset: offset}
}

// Next reads the next section, which must carry wantID, and returns its
// verified payload plus the payload's byte offset in the stream.
func (sr *SectionReader) Next(wantID uint32, name string) ([]byte, int64, error) {
	secStart := sr.offset
	var id uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &id); err != nil {
		return nil, 0, corrupt(name, secStart, "truncated before section header: %w", err)
	}
	if id != wantID {
		return nil, 0, corrupt(name, secStart, "expected section %s (%d), found id %d", name, wantID, id)
	}
	var length uint64
	if err := binary.Read(sr.r, binary.LittleEndian, &length); err != nil {
		return nil, 0, corrupt(name, secStart, "truncated in section header: %w", err)
	}
	if length > maxSectionBytes {
		return nil, 0, corrupt(name, secStart, "declared length %d exceeds bound %d", length, maxSectionBytes)
	}
	payloadOff := secStart + 12
	payload := make([]byte, length)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return nil, 0, corrupt(name, payloadOff, "truncated payload (%d bytes declared): %w", length, err)
	}
	var sum uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &sum); err != nil {
		return nil, 0, corrupt(name, payloadOff, "truncated before checksum: %w", err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, 0, corrupt(name, payloadOff, "CRC32C mismatch: computed %#x, stored %#x", got, sum)
	}
	sr.offset = payloadOff + int64(length) + 4
	return payload, payloadOff, nil
}
