package network

import (
	"math/rand/v2"

	"github.com/slide-cpu/slide/internal/bf16"
	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/lsh"
	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/quant"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// forwardState is the read-only half of the network: everything the forward
// pass and LSH retrieval consume, none of the optimizer state. Both
// execution paths run on it —
//
//   - training holds a *live* forwardState whose layer views alias the
//     mutable weights (updates are visible batch to batch), and
//   - Predictor snapshots hold a *frozen* forwardState whose views are deep
//     copies and whose table set is a clone, immutable for its lifetime and
//     therefore safe for any number of concurrent readers.
//
// All per-call mutable state lives in scratch, never here.
type forwardState struct {
	cfg    Config
	hidden *layer.ColWeights
	middle []*layer.RowWeights
	output *layer.RowWeights
	// qout is the quantized serving rendering of the output layer. Exactly
	// one of output/qout is non-nil: quantized predictors (Quantize, or a
	// replica holding an int8 base) drop the f32 view entirely and serve
	// every output-layer pass from the packed rows. Training states never
	// set it.
	qout   *quant.RowQ
	tables *lsh.TableSet // nil when sampling is disabled or sharded

	// Sharded execution (cfg.Shards > 0): per-shard table sets and the
	// immutable shard geometry replace the single global table set. Exactly
	// one of tables/shTables is non-nil on a sampled model.
	shTables []*lsh.TableSet
	plan     *shardPlan

	// middleAll[i] lists every row id of middle layer i (dense forward).
	middleAll [][]int32
	// dims holds the hidden widths: HiddenDim then HiddenLayers.
	dims []int
	// lastDim is the width of the activation feeding the output layer.
	lastDim int
	// all is the precomputed full active set for NoSampling.
	all []int32
}

// scratch holds the mutable buffers of one forward (and, for training
// workers, backward) pass. Training owns one per HOGWILD worker for the
// whole run; Predictors draw them from a sync.Pool per call.
type scratch struct {
	ks *simd.Kernels
	// acts[0] is the first hidden layer's activation; acts[i] the i-th
	// stacked layer's. dhs mirror them with gradients (training only).
	acts   [][]float32
	dhs    [][]float32
	hBF    []bf16.BF16 // bfloat16 view of the last activation
	active []int32
	logits []float32
	probs  []float32 // training only
	dedup  *lsh.Dedup
	rng    *rand.Rand
	// rngSrc is rng's underlying PCG, retained so checkpoints can serialize
	// the random top-up state — part of the exact-resume contract.
	rngSrc *rand.PCG
	// hashBuf holds the per-table bucket hashes of one query on sharded
	// models: the sample is hashed once, then every shard's tables are
	// probed with the same hashes.
	hashBuf []uint32
	// qa/qsa/qzp hold the quantized activation vector of the current sample
	// on quantized predictors (forwardState.qout != nil): the last hidden
	// activation rendered as u7 codes with its scale and zero point.
	qa  []uint8
	qsa float32
	qzp int32
}

// sampled reports whether the model retrieves candidates via LSH (either
// the single table set or the per-shard sets).
func (f *forwardState) sampled() bool { return f.tables != nil || len(f.shTables) > 0 }

// newScratch sizes a scratch set for this network shape. train additionally
// allocates the backward buffers; stream separates the random top-up
// sequences of sibling scratches.
func (f *forwardState) newScratch(train bool, seed, stream uint64) *scratch {
	// Buffers are sized for the worst case (every neuron active): MaxActive
	// caps the usual path, but labels are never dropped, so a pathological
	// sample could exceed it.
	actCap := f.cfg.OutputDim
	src := rand.NewPCG(seed, stream)
	ws := &scratch{
		active: make([]int32, 0, actCap),
		logits: make([]float32, actCap),
		dedup:  lsh.NewDedup(f.cfg.OutputDim),
		rng:    rand.New(src),
		rngSrc: src,
	}
	for _, d := range f.dims {
		ws.acts = append(ws.acts, make([]float32, d))
		if train {
			ws.dhs = append(ws.dhs, make([]float32, d))
		}
	}
	if train {
		ws.probs = make([]float32, actCap)
	}
	if f.cfg.Precision != layer.FP32 && f.qout == nil {
		// The BF16 rendering only feeds the output layer; a quantized
		// predictor renders the activation as u7 codes instead.
		ws.hBF = make([]bf16.BF16, f.lastDim)
	}
	if f.qout != nil {
		ws.qa = make([]uint8, f.lastDim)
	}
	if len(f.shTables) > 0 {
		ws.hashBuf = make([]uint32, f.shTables[0].Tables())
	}
	return ws
}

// last returns the activation feeding the output layer.
func (ws *scratch) last() []float32 { return ws.acts[len(ws.acts)-1] }

// dhLast returns the gradient buffer for the output layer's input.
func (ws *scratch) dhLast() []float32 { return ws.dhs[len(ws.dhs)-1] }

// forwardStack runs the hidden layer and the dense middle stack, leaving
// the output-layer input in ws.last() (and ws.hBF under the BF16 modes).
func (f *forwardState) forwardStack(ws *scratch, x sparse.Vector) {
	f.hidden.Forward(ws.ks, x, ws.acts[0])
	for i, ml := range f.middle {
		in, out := ws.acts[i], ws.acts[i+1]
		ml.ForwardActive(ws.ks, f.middleAll[i], in, nil, out)
		for j := range out { // stacked layers are ReLU
			if out[j] < 0 {
				out[j] = 0
			}
		}
	}
	if ws.hBF != nil {
		// Table-resolved pack kernel: VCVTNEPS2BF16 on AVX512-BF16 hosts,
		// the software converter elsewhere.
		ws.ks.PackBF16(ws.hBF, ws.last())
	}
}

// sampleActive fills ws.active for one sample: true labels first (never
// dropped), then LSH candidates, then random top-up to MinActive, capped at
// MaxActive. Returns the number of label entries at the head of the slice.
func (f *forwardState) sampleActive(ws *scratch, labels []int32) int {
	ws.active = ws.active[:0]
	ws.dedup.Begin()
	for _, y := range labels {
		if int(y) < f.cfg.OutputDim && !ws.dedup.Seen(y) {
			ws.active = append(ws.active, y)
		}
	}
	nLabels := len(ws.active)

	limit := f.cfg.MaxActive
	if limit > 0 && nLabels > limit {
		limit = nLabels // labels always survive
	}
	visit := func(id int32) {
		if limit > 0 && len(ws.active) >= limit {
			return
		}
		if !ws.dedup.Seen(id) {
			ws.active = append(ws.active, id)
		}
	}
	if f.tables != nil {
		f.tables.QueryDense(ws.last(), visit)
	} else if len(f.shTables) > 0 {
		// Hash once (all shard hashers are seed-identical), probe every
		// shard's tables in shard order — ids are disjoint across shards.
		f.shTables[0].HashDense(ws.last(), ws.hashBuf)
		for _, ts := range f.shTables {
			ts.QueryHashes(ws.hashBuf, visit)
		}
	}

	// Random top-up: keeps gradient flowing when buckets run cold early in
	// training (SLIDE's random fill).
	for len(ws.active) < f.cfg.MinActive {
		id := int32(ws.rng.IntN(f.cfg.OutputDim))
		if !ws.dedup.Seen(id) {
			ws.active = append(ws.active, id)
		}
	}
	return nLabels
}

// quantActs renders the last hidden activation as u7 codes into ws.qa —
// the quantized predictor's counterpart of the PackBF16 step. Called after
// forwardStack, before any output-layer pass.
func (f *forwardState) quantActs(ws *scratch) {
	ws.qsa, ws.qzp = quant.QuantizeActs(ws.last(), ws.qa)
}

// forwardAllOut computes every output neuron's logit into out, dispatching
// on the output representation (f32/BF16 view vs packed rows).
func (f *forwardState) forwardAllOut(ws *scratch, out []float32, workers int) {
	if f.qout != nil {
		f.quantActs(ws)
		f.qout.ForwardAll(ws.ks, ws.qa, ws.qsa, ws.qzp, out, workers)
		return
	}
	f.output.ForwardAll(ws.ks, ws.last(), ws.hBF, out, workers)
}

// scoresInto computes the full output-layer logits for one sample into out
// (len OutputDim), tiling the output rows over workers (<=1 runs inline).
func (f *forwardState) scoresInto(ws *scratch, x sparse.Vector, out []float32, workers int) {
	f.forwardStack(ws, x)
	f.forwardAllOut(ws, out, workers)
}

// predictSampled ranks the LSH-retrieved candidate set for one sample and
// returns the top-k ids, highest logit first. Caller guarantees tables are
// present.
func (f *forwardState) predictSampled(ws *scratch, x sparse.Vector, k int) []int32 {
	f.forwardStack(ws, x)
	f.sampleActive(ws, nil)
	na := len(ws.active)
	if na == 0 {
		return nil
	}
	logits := ws.logits[:na]
	if f.qout != nil {
		f.quantActs(ws)
		f.qout.ForwardActive(ws.ks, ws.active, ws.qa, ws.qsa, ws.qzp, logits)
	} else {
		f.output.ForwardActive(ws.ks, ws.active, ws.last(), ws.hBF, logits)
	}
	top := metrics.TopK(logits, k)
	out := make([]int32, len(top))
	for i, pos := range top {
		out[i] = ws.active[pos]
	}
	return out
}

// rank selects the top-k ids from a full score vector. Unsharded models run
// the single-heap selection; sharded models run the scatter-gather path —
// a per-shard TopKInto over each contiguous score range, then the k-way
// TopKMergeInto — which is bit-identical to the single heap because the
// contiguous ranges map local-position ties monotonically onto global-id
// ties (the merge fuzz test in metrics proves the comparator equivalence).
func (f *forwardState) rank(ws *scratch, scores []float32, k int) []int32 {
	if f.plan == nil {
		return metrics.TopKInto(scores, k, ws.active[:0])
	}
	lists := make([][]int32, f.plan.s)
	for s := 0; s < f.plan.s; s++ {
		lo, hi := f.plan.bounds[s], f.plan.bounds[s+1]
		kk := min(k, int(hi-lo))
		l := metrics.TopKInto(scores[lo:hi], k, make([]int32, 0, kk))
		for i := range l {
			l[i] += lo
		}
		lists[s] = l
	}
	return metrics.TopKMergeInto(scores, lists, k, ws.active[:0])
}
