package network

import (
	"bytes"
	"testing"

	"github.com/slide-cpu/slide/internal/layer"
)

// encodeBaseParts round-trips a predictor through its base writers, the
// way the replication wire does (section framing elided — it is CRC
// plumbing, tested in internal/replicate).
func encodeBaseParts(t *testing.T, p *Predictor) BaseParts {
	t.Helper()
	enc := func(f func(w *bytes.Buffer) error) []byte {
		var b bytes.Buffer
		if err := f(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	parts := BaseParts{
		Config: enc(func(b *bytes.Buffer) error { return p.WriteBaseConfig(b) }),
		Hidden: enc(func(b *bytes.Buffer) error { return p.WriteHidden(b) }),
		Middle: enc(func(b *bytes.Buffer) error { return p.WriteMiddle(b) }),
		Output: enc(func(b *bytes.Buffer) error { return p.WriteOutput(b) }),
	}
	if p.HasTables() {
		parts.Tables = enc(func(b *bytes.Buffer) error { return p.WriteTables(b) })
	}
	return parts
}

func encodeDeltaParts(t *testing.T, d *Delta) DeltaParts {
	t.Helper()
	enc := func(f func(w *bytes.Buffer) error) []byte {
		var b bytes.Buffer
		if err := f(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	parts := DeltaParts{
		FromStep: d.FromStep,
		ToStep:   d.ToStep,
		Hidden:   enc(func(b *bytes.Buffer) error { return d.WriteHidden(b) }),
		Middle:   enc(func(b *bytes.Buffer) error { return d.WriteMiddle(b) }),
		Output:   enc(func(b *bytes.Buffer) error { return d.WriteOutput(b) }),
	}
	if d.TablesChanged {
		parts.Tables = enc(func(b *bytes.Buffer) error { return d.WriteTables(b) })
	}
	return parts
}

// expectSamePredictions asserts exact and LSH-sampled top-k agree
// response-for-response between the local and replicated predictors.
func expectSamePredictions(t *testing.T, tag string, local, remote *Predictor, p *plantedProblem) {
	t.Helper()
	b := p.batch(40)
	for i := 0; i < b.Len(); i++ {
		x := b.Sample(i)
		lw, rw := local.Predict(x, 5), remote.Predict(x, 5)
		if !int32SlicesEqual(lw, rw) {
			t.Fatalf("%s: exact predictions diverge at sample %d: local %v, remote %v", tag, i, lw, rw)
		}
		if local.Sampled() {
			ls, err1 := local.PredictSampled(x, 5)
			rs, err2 := remote.PredictSampled(x, 5)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: sampled predict failed: %v / %v", tag, err1, err2)
			}
			if !int32SlicesEqual(ls, rs) {
				t.Fatalf("%s: sampled predictions diverge at sample %d: local %v, remote %v", tag, i, ls, rs)
			}
		}
	}
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplicaDeltaBitIdentity trains with delta tracking across every
// precision × layout combination and checks that a replica reconstructed
// from base + N applied deltas answers byte-identically to the trainer's
// local snapshot at the same version — LSH rebuilds mid-stream included
// (RebuildEvery is small enough that several fire while deltas flow).
func TestReplicaDeltaBitIdentity(t *testing.T) {
	cases := []struct {
		name      string
		prec      layer.Precision
		placement layer.Placement
		stack     []int
	}{
		{"fp32-contiguous", layer.FP32, layer.Contiguous, nil},
		{"fp32-scattered", layer.FP32, layer.Scattered, nil},
		{"bf16act-contiguous", layer.BF16Act, layer.Contiguous, nil},
		{"bf16both-contiguous", layer.BF16Both, layer.Contiguous, nil},
		{"bf16both-scattered", layer.BF16Both, layer.Scattered, nil},
		{"fp32-stacked", layer.FP32, layer.Contiguous, []int{12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPlanted(60, 20, 5, 21)
			cfg := Config{
				InputDim: 60, HiddenDim: 16, OutputDim: 20,
				Hash: DWTA, K: 2, L: 8, BucketCap: 32,
				MinActive: 6, LR: 0.01, Workers: 1,
				Precision: tc.prec, Placement: tc.placement,
				HiddenLayers: tc.stack,
				RebuildEvery: 7, Seed: 31,
			}
			n, err := New(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.EnableDeltaTracking()
			trainN(t, n, p, 5, 32)

			base, d := n.SnapshotDelta()
			if d != nil {
				t.Fatal("first snapshot must not produce a delta")
			}
			remote, err := NewPredictorFromBase(encodeBaseParts(t, base))
			if err != nil {
				t.Fatal(err)
			}
			if remote.ConfigChecksum() != base.ConfigChecksum() {
				t.Fatal("config checksum mismatch after base reconstruction")
			}
			expectSamePredictions(t, "base", base, remote, p)

			sawRebuild := false
			for round := 0; round < 4; round++ {
				trainN(t, n, p, 5, 32) // 5 batches per round; RebuildEvery=7 fires mid-stream
				local, d := n.SnapshotDelta()
				if d == nil {
					t.Fatalf("round %d: expected a delta", round)
				}
				sawRebuild = sawRebuild || d.TablesChanged
				remote, err = remote.ApplyDelta(encodeDeltaParts(t, d))
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if remote.Steps() != local.Steps() {
					t.Fatalf("round %d: replica at step %d, trainer snapshot at %d",
						round, remote.Steps(), local.Steps())
				}
				expectSamePredictions(t, tc.name, local, remote, p)
			}
			if !sawRebuild {
				t.Fatal("test never exercised an LSH rebuild inside the delta stream")
			}
		})
	}
}

// TestReplicaDeltaSparsity checks the economics the subsystem exists for:
// with a short training interval between snapshots, the encoded delta is
// a small fraction of the encoded base.
func TestReplicaDeltaSparsity(t *testing.T) {
	p := newPlanted(400, 300, 5, 11)
	cfg := Config{
		InputDim: 400, HiddenDim: 32, OutputDim: 300,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 8, MaxActive: 24, LR: 0.01, Workers: 1,
		RebuildEvery: 1_000_000, Seed: 7,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableDeltaTracking()
	trainN(t, n, p, 10, 16)
	base, _ := n.SnapshotDelta()
	trainN(t, n, p, 1, 16)
	_, d := n.SnapshotDelta()
	if d == nil {
		t.Fatal("expected a delta")
	}

	baseParts := encodeBaseParts(t, base)
	deltaParts := encodeDeltaParts(t, d)
	baseBytes := len(baseParts.Hidden) + len(baseParts.Middle) + len(baseParts.Output)
	deltaBytes := len(deltaParts.Hidden) + len(deltaParts.Middle) + len(deltaParts.Output)
	if deltaBytes*2 >= baseBytes {
		t.Errorf("delta moves %d bytes vs base %d (touched %d/%d output rows) — not sparse",
			deltaBytes, baseBytes, len(d.OutputRows), cfg.OutputDim)
	}
}

// TestReplicaDeltaStepGapRejected: a delta whose FromStep does not match
// the replica's step is refused, never partially applied.
func TestReplicaDeltaStepGapRejected(t *testing.T) {
	p := newPlanted(60, 20, 5, 3)
	cfg := Config{
		InputDim: 60, HiddenDim: 16, OutputDim: 20,
		Hash: DWTA, K: 2, L: 8, BucketCap: 32,
		MinActive: 6, LR: 0.01, Workers: 1, RebuildEvery: 50, Seed: 5,
	}
	n, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.EnableDeltaTracking()
	trainN(t, n, p, 3, 32)
	base, _ := n.SnapshotDelta()
	remote, err := NewPredictorFromBase(encodeBaseParts(t, base))
	if err != nil {
		t.Fatal(err)
	}
	trainN(t, n, p, 3, 32)
	n.SnapshotDelta() // v+1, never delivered
	trainN(t, n, p, 3, 32)
	_, d2 := n.SnapshotDelta() // v+2: FromStep is v+1's step, not the replica's
	if d2 == nil {
		t.Fatal("expected a delta")
	}
	if _, err := remote.ApplyDelta(encodeDeltaParts(t, d2)); err == nil {
		t.Fatal("applying a delta across a version gap must fail")
	}
	// The replica still serves its original version.
	expectSamePredictions(t, "after-gap", base, remote, p)
}
