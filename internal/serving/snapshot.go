package serving

import (
	"sync/atomic"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/slide"
)

// SnapshotManager publishes versioned Predictor snapshots to the serving
// pipeline. Publish and Current are safe for unbounded concurrent use;
// a swap never stalls in-flight work, because consumers (the Batcher, the
// direct-path handlers) capture Current once per operation and finish on
// the snapshot they captured. Old snapshots stay valid as long as any
// in-flight batch references them (they are immutable; the garbage
// collector reclaims them once the last batch completes).
type SnapshotManager struct {
	cur         atomic.Pointer[snapshotBox]
	swaps       atomic.Uint64
	quarantined atomic.Uint64
	quarLast    atomic.Bool
	quarReason  atomic.Pointer[string]
}

// finiteChecker is implemented by predictors that can validate their weights
// for NaN/Inf (slide.Predictor, replicate.Served). Publish quarantines a
// candidate that fails the check instead of swapping it in.
type finiteChecker interface {
	CheckFinite() error
}

// snapshotBox wraps the interface value so the hot path is a single atomic
// pointer load. publishedAt rides along for staleness reporting.
type snapshotBox struct {
	p           Predictor
	publishedAt time.Time
}

// NewSnapshotManager creates a manager serving p.
func NewSnapshotManager(p Predictor) *SnapshotManager {
	m := &SnapshotManager{}
	m.cur.Store(&snapshotBox{p: p, publishedAt: time.Now()})
	return m
}

// Publish makes p the snapshot served to all subsequent batches. In-flight
// batches finish on the snapshot they already captured. Panics on nil — a
// pipeline must always have a current snapshot.
//
// Admission validation: when p can CheckFinite, a candidate carrying
// NaN/Inf weights is quarantined — the swap is refused, the pipeline keeps
// serving the last good snapshot, and Quarantined/QuarantineReason report
// the refusal (surfaced via /stats and /healthz/ready).
func (m *SnapshotManager) Publish(p Predictor) {
	if p == nil {
		panic("serving: Publish(nil)")
	}
	// Chaos hook: stall rules here simulate a slow publisher (a training
	// loop busy with a rebuild). Publication itself cannot fail, so err
	// rules are ignored — the swap below always happens.
	_ = faultinject.Hit(faultinject.PointSnapshotPublish)
	if c, ok := p.(finiteChecker); ok {
		if err := c.CheckFinite(); err != nil {
			m.quarantined.Add(1)
			reason := err.Error()
			m.quarReason.Store(&reason)
			m.quarLast.Store(true)
			return
		}
	}
	m.cur.Store(&snapshotBox{p: p, publishedAt: time.Now()})
	m.swaps.Add(1)
	m.quarLast.Store(false)
}

// Current returns the snapshot serving new work right now.
func (m *SnapshotManager) Current() Predictor {
	return m.cur.Load().p
}

// Age reports how long ago the current snapshot was published — the
// staleness signal behind readiness: a pipeline whose training side stopped
// publishing is serving increasingly stale versions.
func (m *SnapshotManager) Age() time.Duration {
	return time.Since(m.cur.Load().publishedAt)
}

// Swaps counts Publish calls since construction — /stats observability for
// how often the model refreshes.
func (m *SnapshotManager) Swaps() uint64 {
	return m.swaps.Load()
}

// Quarantined counts candidates Publish refused for non-finite weights.
func (m *SnapshotManager) Quarantined() uint64 {
	return m.quarantined.Load()
}

// QuarantineReason returns the most recent quarantine's error text ("" when
// no candidate was ever refused).
func (m *SnapshotManager) QuarantineReason() string {
	if s := m.quarReason.Load(); s != nil {
		return *s
	}
	return ""
}

// QuarantinedLast reports whether the most recent Publish was refused —
// i.e. the pipeline is serving an older snapshot than the newest candidate.
// Cleared by the next successful swap; /healthz/ready surfaces it.
func (m *SnapshotManager) QuarantinedLast() bool {
	return m.quarLast.Load()
}

// Publisher adapts the manager to the Trainer's snapshot hook, so a model
// trains and serves fresh versions from one object:
//
//	trainer, _ := slide.NewTrainer(m, src,
//		slide.WithSnapshots(200, serving.Publisher(mgr)))
//
// Every scheduled snapshot the session takes is hot-swapped into the
// pipeline; in-flight batches finish on the snapshot they captured.
func Publisher(m *SnapshotManager) func(*slide.Predictor) {
	return func(p *slide.Predictor) { m.Publish(p) }
}
