package serving

import (
	"sync/atomic"
	"time"

	"github.com/slide-cpu/slide/internal/faultinject"
	"github.com/slide-cpu/slide/slide"
)

// SnapshotManager publishes versioned Predictor snapshots to the serving
// pipeline. Publish and Current are safe for unbounded concurrent use;
// a swap never stalls in-flight work, because consumers (the Batcher, the
// direct-path handlers) capture Current once per operation and finish on
// the snapshot they captured. Old snapshots stay valid as long as any
// in-flight batch references them (they are immutable; the garbage
// collector reclaims them once the last batch completes).
type SnapshotManager struct {
	cur   atomic.Pointer[snapshotBox]
	swaps atomic.Uint64
}

// snapshotBox wraps the interface value so the hot path is a single atomic
// pointer load. publishedAt rides along for staleness reporting.
type snapshotBox struct {
	p           Predictor
	publishedAt time.Time
}

// NewSnapshotManager creates a manager serving p.
func NewSnapshotManager(p Predictor) *SnapshotManager {
	m := &SnapshotManager{}
	m.cur.Store(&snapshotBox{p: p, publishedAt: time.Now()})
	return m
}

// Publish makes p the snapshot served to all subsequent batches. In-flight
// batches finish on the snapshot they already captured. Panics on nil — a
// pipeline must always have a current snapshot.
func (m *SnapshotManager) Publish(p Predictor) {
	if p == nil {
		panic("serving: Publish(nil)")
	}
	// Chaos hook: stall rules here simulate a slow publisher (a training
	// loop busy with a rebuild). Publication itself cannot fail, so err
	// rules are ignored — the swap below always happens.
	_ = faultinject.Hit(faultinject.PointSnapshotPublish)
	m.cur.Store(&snapshotBox{p: p, publishedAt: time.Now()})
	m.swaps.Add(1)
}

// Current returns the snapshot serving new work right now.
func (m *SnapshotManager) Current() Predictor {
	return m.cur.Load().p
}

// Age reports how long ago the current snapshot was published — the
// staleness signal behind readiness: a pipeline whose training side stopped
// publishing is serving increasingly stale versions.
func (m *SnapshotManager) Age() time.Duration {
	return time.Since(m.cur.Load().publishedAt)
}

// Swaps counts Publish calls since construction — /stats observability for
// how often the model refreshes.
func (m *SnapshotManager) Swaps() uint64 {
	return m.swaps.Load()
}

// Publisher adapts the manager to the Trainer's snapshot hook, so a model
// trains and serves fresh versions from one object:
//
//	trainer, _ := slide.NewTrainer(m, src,
//		slide.WithSnapshots(200, serving.Publisher(mgr)))
//
// Every scheduled snapshot the session takes is hot-swapped into the
// pipeline; in-flight batches finish on the snapshot they captured.
func Publisher(m *SnapshotManager) func(*slide.Predictor) {
	return func(p *slide.Predictor) { m.Publish(p) }
}
