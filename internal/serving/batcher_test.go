package serving

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// stubPredictor is a controllable backend: when gated, every PredictEntries
// call signals entered and waits for one release, so tests can fill the
// admission queue deterministically. Each response labels the serving
// snapshot: out[i] = [version, k], so callers can assert which snapshot
// served them and that per-entry k survived coalescing.
type stubPredictor struct {
	version uint64
	entered chan struct{} // nil = ungated
	release chan struct{}
}

func newGatedStub(version uint64) *stubPredictor {
	return &stubPredictor{
		version: version,
		entered: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (s *stubPredictor) PredictEntries(entries []slide.BatchEntry) ([][]int32, error) {
	if s.entered != nil {
		s.entered <- struct{}{}
		<-s.release
	}
	out := make([][]int32, len(entries))
	for i, e := range entries {
		out[i] = []int32{int32(s.version), int32(e.K)}
	}
	return out, nil
}

func (s *stubPredictor) Predict(indices []int32, values []float32, k int) []int32 {
	return []int32{int32(s.version), int32(k)}
}

func (s *stubPredictor) PredictBatch(samples []slide.Sample, k int) ([][]int32, error) {
	out := make([][]int32, len(samples))
	for i := range out {
		out[i] = []int32{int32(s.version), int32(k)}
	}
	return out, nil
}

func (s *stubPredictor) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	return nil, errors.New("stub: no sampling")
}

func (s *stubPredictor) Sampled() bool    { return false }
func (s *stubPredictor) Version() uint64  { return s.version }
func (s *stubPredictor) Steps() int64     { return int64(s.version) * 10 }
func (s *stubPredictor) NumLabels() int   { return 100 }
func (s *stubPredictor) NumFeatures() int { return 1000 }

func entry(k int) slide.BatchEntry {
	return slide.BatchEntry{Indices: []int32{1, 2}, Values: []float32{1, 1}, K: k}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherCoalesces(t *testing.T) {
	stub := newGatedStub(7)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 8, QueueCap: 32})
	defer b.Close()

	results := make(chan Result, 8)
	submit := func(k int) {
		go func() {
			r, err := b.Submit(context.Background(), entry(k))
			if err != nil {
				t.Errorf("Submit: %v", err)
			}
			results <- r
		}()
	}

	// First request reaches the worker alone; the worker blocks inside the
	// gated stub holding a batch of one.
	submit(1)
	<-stub.entered
	// The next 7 requests pile up in the queue while the worker is busy.
	for k := 2; k <= 8; k++ {
		submit(k)
	}
	waitFor(t, "queue to fill", func() bool { return b.Stats().QueueDepth == 7 })
	// Release the in-flight flush, then the coalesced one.
	stub.release <- struct{}{}
	<-stub.entered
	stub.release <- struct{}{}

	seenK := map[int32]bool{}
	for i := 0; i < 8; i++ {
		r := <-results
		if r.Version != 7 || len(r.Labels) != 2 || r.Labels[0] != 7 {
			t.Fatalf("result = %+v", r)
		}
		seenK[r.Labels[1]] = true
	}
	for k := int32(1); k <= 8; k++ {
		if !seenK[k] {
			t.Errorf("per-entry k=%d lost in coalescing", k)
		}
	}

	st := b.Stats()
	if st.Batches != 2 {
		t.Errorf("Batches = %d, want 2", st.Batches)
	}
	if st.BatchSizes[0] != 1 || st.BatchSizes[6] != 1 {
		t.Errorf("BatchSizes = %v, want one flush of 1 and one of 7", st.BatchSizes)
	}
	if st.MeanBatch != 4 {
		t.Errorf("MeanBatch = %g, want 4", st.MeanBatch)
	}
	if st.Admitted != 8 || st.Served != 8 || st.Shed != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestBatcherMaxBatchBoundsFlush(t *testing.T) {
	stub := newGatedStub(1)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, QueueCap: 32})
	defer b.Close()

	var wg sync.WaitGroup
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), entry(3)); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	submit()
	<-stub.entered // batch of 1 in flight
	for i := 0; i < 9; i++ {
		submit()
	}
	waitFor(t, "queue to fill", func() bool { return b.Stats().QueueDepth == 9 })
	for i := 0; i < 3; i++ { // flushes: 1, then 4, 4, 1... release all
		stub.release <- struct{}{}
		<-stub.entered
	}
	stub.release <- struct{}{}
	wg.Wait()

	st := b.Stats()
	for size, n := range st.BatchSizes {
		if n > 0 && size+1 > 4 {
			t.Errorf("flush of %d exceeds MaxBatch=4", size+1)
		}
	}
	if st.Served != 10 || st.Batches != 4 {
		t.Errorf("served %d in %d batches, want 10 in 4", st.Served, st.Batches)
	}
}

func TestBatcherMaxWaitFlushesPartialBatch(t *testing.T) {
	stub := &stubPredictor{version: 3} // ungated
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 64, MaxWait: time.Millisecond, QueueCap: 64})
	defer b.Close()

	// A lone request must be served promptly even though the batch never
	// fills — the MaxWait deadline flushes it.
	r, err := b.Submit(context.Background(), entry(2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version != 3 || r.Labels[1] != 2 {
		t.Fatalf("result = %+v", r)
	}
	st := b.Stats()
	if st.Batches != 1 || st.BatchSizes[0] != 1 {
		t.Errorf("stats after lone request: %+v", st)
	}
	if st.P50 <= 0 {
		t.Errorf("latency not recorded: %+v", st)
	}
}

func TestBatcherSubmitManyAlignsResults(t *testing.T) {
	stub := &stubPredictor{version: 9}
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 2, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 64})
	defer b.Close()

	entries := make([]slide.BatchEntry, 10)
	for i := range entries {
		entries[i] = entry(i + 1)
	}
	out, err := b.SubmitMany(context.Background(), entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("got %d results", len(out))
	}
	for i, r := range out {
		if r.Labels[1] != int32(i+1) {
			t.Errorf("result %d has k=%d, want %d (misaligned)", i, r.Labels[1], i+1)
		}
	}
}

func TestBatcherContextCancellation(t *testing.T) {
	stub := newGatedStub(1)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, QueueCap: 8})
	defer b.Close()

	// Occupy the worker.
	go b.Submit(context.Background(), entry(1))
	<-stub.entered

	// Queue a request, then abandon it.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, entry(2))
		errc <- err
	}()
	waitFor(t, "request to queue", func() bool { return b.Stats().QueueDepth == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel = %v", err)
	}

	// Release the worker; the cancelled entry is skipped, not served.
	stub.release <- struct{}{}
	waitFor(t, "queue to drain", func() bool {
		st := b.Stats()
		return st.QueueDepth == 0 && st.Served == 1
	})
	if st := b.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}

	// The pipeline still serves.
	stubDone := make(chan struct{})
	go func() {
		<-stub.entered
		stub.release <- struct{}{}
		close(stubDone)
	}()
	if _, err := b.Submit(context.Background(), entry(3)); err != nil {
		t.Fatalf("Submit after cancellation: %v", err)
	}
	<-stubDone
}

func TestBatcherCloseDrainsAndRejects(t *testing.T) {
	stub := &stubPredictor{version: 2}
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 64})

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), entry(1)); err != nil {
				t.Errorf("Submit during drain: %v", err)
			}
		}()
	}
	// Close once everything is admitted: every queued request must still be
	// served (the drain contract), none dropped.
	waitFor(t, "all requests admitted", func() bool { return b.Stats().Admitted == 12 })
	b.Close()
	wg.Wait()

	if _, err := b.Submit(context.Background(), entry(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestSnapshotManager(t *testing.T) {
	a, b := &stubPredictor{version: 1}, &stubPredictor{version: 2}
	mgr := NewSnapshotManager(a)
	if mgr.Current().Version() != 1 || mgr.Swaps() != 0 {
		t.Fatalf("fresh manager: version %d, swaps %d", mgr.Current().Version(), mgr.Swaps())
	}
	mgr.Publish(b)
	if mgr.Current().Version() != 2 || mgr.Swaps() != 1 {
		t.Fatalf("after publish: version %d, swaps %d", mgr.Current().Version(), mgr.Swaps())
	}
	defer func() {
		if recover() == nil {
			t.Error("Publish(nil) did not panic")
		}
	}()
	mgr.Publish(nil)
}

// TestBatcherSnapshotSkewGuard covers the admission/flush skew defense: a
// request admitted under a wide-feature snapshot must fail with
// ErrSnapshotSkew — not panic the worker — when a narrower snapshot is
// published before its flush.
func TestBatcherSnapshotSkewGuard(t *testing.T) {
	wide := newGatedStub(1) // NumFeatures 1000
	mgr := NewSnapshotManager(wide)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, QueueCap: 8})
	defer b.Close()

	// Occupy the worker so the next request waits in the queue.
	go b.Submit(context.Background(), entry(1))
	<-wide.entered

	// Queue a request with an index valid for the wide snapshot only.
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(),
			slide.BatchEntry{Indices: []int32{500}, Values: []float32{1}, K: 1})
		errc <- err
	}()
	waitFor(t, "request to queue", func() bool { return b.Stats().QueueDepth == 1 })

	// Hot-swap to a snapshot with only 10 features, then release the worker.
	narrow := &stubPredictor{version: 2}
	narrowFeatures := 10
	mgr.Publish(&shrunkPredictor{stubPredictor: narrow, features: narrowFeatures})
	wide.release <- struct{}{}

	if err := <-errc; !errors.Is(err, ErrSnapshotSkew) {
		t.Fatalf("skewed request error = %v, want ErrSnapshotSkew", err)
	}
	waitFor(t, "failed counter", func() bool { return b.Stats().Failed == 1 })
}

// shrunkPredictor overrides the stub's feature space.
type shrunkPredictor struct {
	*stubPredictor
	features int
}

func (s *shrunkPredictor) NumFeatures() int { return s.features }

// TestBatcherRejectsInvalidEntriesAtAdmission pins the no-poisoning
// contract: a malformed entry is rejected before it can share a flush with
// valid concurrent requests.
func TestBatcherRejectsInvalidEntriesAtAdmission(t *testing.T) {
	stub := &stubPredictor{version: 4}
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 8, MaxWait: time.Millisecond, QueueCap: 16})
	defer b.Close()

	ctx := context.Background()
	if _, err := b.Submit(ctx, slide.BatchEntry{Indices: []int32{1}, Values: []float32{1}, K: 0}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("k=0 entry: %v, want ErrInvalidEntry", err)
	}
	if _, err := b.Submit(ctx, slide.BatchEntry{Indices: []int32{1, 2}, Values: []float32{1}, K: 1}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("mismatched entry: %v, want ErrInvalidEntry", err)
	}
	// SubmitMany with one bad entry rejects the batch without serving it.
	if _, err := b.SubmitMany(ctx, []slide.BatchEntry{entry(1), {Indices: []int32{1}, Values: []float32{1}, K: -2}}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("SubmitMany with bad entry: %v, want ErrInvalidEntry", err)
	}
	// Valid traffic still serves, and nothing was counted served/failed for
	// the rejects.
	if _, err := b.Submit(ctx, entry(2)); err != nil {
		t.Fatalf("valid entry after rejects: %v", err)
	}
	if st := b.Stats(); st.Failed != 0 || st.Served != 1 {
		t.Errorf("stats after rejects: %+v", st)
	}
}

// TestBatcherSubmitManyLargerThanQueue pins the waved-admission contract:
// a client batch bigger than the whole admission queue is still fully
// served on an otherwise idle batcher (in chunks), not permanently shed.
func TestBatcherSubmitManyLargerThanQueue(t *testing.T) {
	stub := &stubPredictor{version: 6}
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 8})
	defer b.Close()

	entries := make([]slide.BatchEntry, 50) // >> QueueCap
	for i := range entries {
		entries[i] = entry(1 + i%7)
	}
	out, err := b.SubmitMany(context.Background(), entries)
	if err != nil {
		t.Fatalf("oversized client batch: %v", err)
	}
	for i, r := range out {
		if r.Labels[1] != int32(1+i%7) {
			t.Fatalf("result %d misaligned: %+v", i, r)
		}
	}
}

// TestBatcherSnapshotSkewLabelShrink: an accepted k must never be silently
// clamped by a hot-swap to a smaller label space — it fails with
// ErrSnapshotSkew so the client revalidates.
func TestBatcherSnapshotSkewLabelShrink(t *testing.T) {
	wide := newGatedStub(1) // NumLabels 100
	mgr := NewSnapshotManager(wide)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, QueueCap: 8})
	defer b.Close()

	go b.Submit(context.Background(), entry(1))
	<-wide.entered

	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), entry(80)) // valid for 100 labels
		errc <- err
	}()
	waitFor(t, "request to queue", func() bool { return b.Stats().QueueDepth == 1 })
	mgr.Publish(&shrunkLabels{stubPredictor: &stubPredictor{version: 2}, labels: 50})
	wide.release <- struct{}{}

	if err := <-errc; !errors.Is(err, ErrSnapshotSkew) {
		t.Fatalf("label-shrunk request error = %v, want ErrSnapshotSkew", err)
	}
}

// shrunkLabels overrides the stub's label space.
type shrunkLabels struct {
	*stubPredictor
	labels int
}

func (s *shrunkLabels) NumLabels() int { return s.labels }

// panicPredictor panics on its first PredictEntries call, then behaves.
type panicPredictor struct {
	stubPredictor
	panicked atomic.Bool
}

func (p *panicPredictor) PredictEntries(entries []slide.BatchEntry) ([][]int32, error) {
	if p.panicked.CompareAndSwap(false, true) {
		panic("backend blew up")
	}
	return p.stubPredictor.PredictEntries(entries)
}

// TestBatcherContainsBackendPanic: a panicking backend fails its batch and
// is survived — submitters get an error, later traffic is served, Close
// does not deadlock.
func TestBatcherContainsBackendPanic(t *testing.T) {
	pp := &panicPredictor{stubPredictor: stubPredictor{version: 8}}
	mgr := NewSnapshotManager(pp)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 16})
	defer b.Close()

	if _, err := b.Submit(context.Background(), entry(1)); err == nil {
		t.Fatal("panicking flush returned no error")
	}
	if st := b.Stats(); st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
	// The worker survived: the next request is served normally.
	r, err := b.Submit(context.Background(), entry(2))
	if err != nil {
		t.Fatalf("request after contained panic: %v", err)
	}
	if r.Version != 8 {
		t.Errorf("post-panic result: %+v", r)
	}
}
