// Package serving is the dynamic micro-batching pipeline between a traffic
// front end (cmd/slide-serve) and an immutable slide.Predictor snapshot.
//
// The paper's throughput thesis (Daghaghi et al., MLSys 2021) is that CPU
// inference speed comes from amortizing dispatch and memory traffic across
// a batch — SLIDE processes batches, never single samples. A serving front
// end, however, receives single samples from many independent clients. This
// package closes that gap with three pieces:
//
//   - Batcher coalesces concurrent predict requests into fused
//     Predictor.PredictEntries calls: a bounded admission queue feeds a
//     worker pool (sized to GOMAXPROCS); a worker greedily drains whatever
//     is already queued and flushes when the batch reaches the maximum
//     size, or after waiting at most the maximum wait for more company,
//     whichever comes first. (MaxWait bounds the latency batching *adds*
//     once a worker picks a request up; time spent queued behind a backlog
//     is bounded by the queue, not by MaxWait.) A full queue sheds new
//     requests with ErrOverloaded — explicit backpressure the HTTP layer
//     maps to 429 + Retry-After — so overload degrades by rejecting fast,
//     never by queuing without bound.
//   - SnapshotManager versions predictors and hot-swaps them: Publish makes
//     a new snapshot current without stalling in-flight batches, which
//     finish on the snapshot they captured at flush time. Every request in
//     one coalesced batch is served by exactly one snapshot.
//   - RunLoad is a deterministic closed-loop load generator (fixed seed,
//     fixed request set) used by the e2e tests, BenchmarkServingPipeline,
//     and cmd/slide-loadgen.
package serving

import "github.com/slide-cpu/slide/slide"

// Predictor is the model surface the pipeline serves. *slide.Predictor
// implements it; tests substitute stubs (e.g. a blocking backend to fill
// the admission queue deterministically).
type Predictor interface {
	// PredictEntries runs exact top-k prediction for a coalesced batch
	// with per-entry k (see slide.Predictor.PredictEntries).
	PredictEntries(entries []slide.BatchEntry) ([][]int32, error)
	// Predict is the single-sample exact path (direct, non-batched mode).
	Predict(indices []int32, values []float32, k int) []int32
	// PredictBatch is the single-caller data-parallel uniform-k path
	// (Labels fields of the samples are ignored).
	PredictBatch(samples []slide.Sample, k int) ([][]int32, error)
	// PredictSampled is sub-linear LSH inference; it returns an error on
	// models without tables (callers fall back to Predict).
	PredictSampled(indices []int32, values []float32, k int) ([]int32, error)
	// Sampled reports whether PredictSampled is available (LSH tables
	// present).
	Sampled() bool
	// Version identifies the snapshot (strictly increasing per snapshot).
	Version() uint64
	// Steps is the optimizer step count at snapshot time.
	Steps() int64
	// NumLabels is the label-space size (upper bound for k).
	NumLabels() int
	// NumFeatures bounds valid feature indices.
	NumFeatures() int
}
