package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// Server routes prediction traffic through the serving pipeline: a
// SnapshotManager publishes versioned Predictor snapshots (hot-swapped by
// the publisher — a background trainer or a replication client — without
// stalling in-flight batches), and a Batcher coalesces concurrent
// /predict requests into fused batch forwards. With cfg.Direct the
// batcher is bypassed and every request runs its own forward pass — the
// pre-batching behavior, kept as the A/B baseline for the load generator.
//
// It is the shared HTTP front end of cmd/slide-serve (trainer/checkpoint
// serving) and cmd/slide-replica (replicated serving); the hooks on
// ServerConfig let each binary extend readiness and /stats without
// forking the handler set.
type Server struct {
	cfg     ServerConfig
	mgr     *SnapshotManager
	batcher *Batcher // nil in direct mode
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// DefaultK is the top-k applied when a request omits k (default 5).
	DefaultK int
	// Direct bypasses the micro-batcher: one forward pass per request.
	Direct bool
	// Batch configures the micro-batcher (ignored under Direct).
	Batch Config
	// DefaultDeadline is the service deadline applied to requests that do
	// not carry their own deadline_ms (zero = none).
	DefaultDeadline time.Duration
	// MaxStale is the snapshot age beyond which /healthz/ready reports the
	// server unready — the publishing side stopped and traffic should
	// drain to a healthier replica (zero = staleness never gates
	// readiness, the right call for frozen-checkpoint serving).
	MaxStale time.Duration
	// ReadyReasons, when set, contributes additional unreadiness reasons
	// to /healthz/ready (e.g. a replica's version skew or a disconnected
	// replication stream). Empty result = ready.
	ReadyReasons func() []string
	// StatsExtra, when set, is merged into the /stats JSON object (e.g. a
	// replica's applied-version and re-sync counters). Keys collide with
	// the built-in fields at the caller's peril.
	StatsExtra func() map[string]any
}

// NewServer wires a serving pipeline around the initial predictor.
func NewServer(p Predictor, cfg ServerConfig) *Server {
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 5
	}
	s := &Server{cfg: cfg, mgr: NewSnapshotManager(p)}
	if !cfg.Direct {
		s.batcher = NewBatcher(s.mgr, cfg.Batch)
	}
	return s
}

// Publish hot-swaps in a new snapshot; in-flight requests and batches
// finish on the one they captured.
func (s *Server) Publish(p Predictor) { s.mgr.Publish(p) }

// Manager exposes the snapshot manager (for Publisher wiring).
func (s *Server) Manager() *SnapshotManager { return s.mgr }

// Close releases the batcher workers (draining anything queued).
func (s *Server) Close() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// Mux returns the endpoint set; callers may add more handlers (e.g. the
// replication hub's /replicate/*) before serving it.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /healthz/live", s.handleLive)
	mux.HandleFunc("GET /healthz/ready", s.handleReady)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// predictRequest is one inference request. Values may be omitted, in which
// case every index gets weight 1 (set-valued features). K distinguishes
// "absent" (use the server default) from an explicit value: explicit k <= 0
// or k > the label space is a validation error, never silently clamped.
// Sampled selects sub-linear LSH inference; on models without LSH tables
// the server falls back to the exact path and reports sampled=false.
type predictRequest struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values,omitempty"`
	K       *int      `json:"k,omitempty"`
	Sampled bool      `json:"sampled,omitempty"`
	// DeadlineMS is the client's service budget in milliseconds: if the
	// request cannot be served within it, the server answers
	// 504 Gateway Timeout instead of serving a useless late response.
	// Zero means the server default (the -default-deadline flag).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type predictResponse struct {
	Labels []int32 `json:"labels"`
	// Sampled reports whether LSH-sampled retrieval actually served the
	// request (false when the request asked for it but the model has no
	// tables and the server fell back to exact ranking).
	Sampled bool `json:"sampled"`
	// Version identifies the snapshot that served the request.
	Version uint64 `json:"version"`
	// Degraded marks a response served through the sampled path under
	// overload (tiered degradation), not the exact one the client asked for.
	Degraded bool `json:"degraded,omitempty"`
}

type batchRequest struct {
	Samples []predictRequest `json:"samples"`
	K       *int             `json:"k,omitempty"`
	Sampled bool             `json:"sampled,omitempty"`
	// DeadlineMS is the service budget for the whole batch (see
	// predictRequest.DeadlineMS).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type batchResponse struct {
	Labels  [][]int32 `json:"labels"`
	Sampled bool      `json:"sampled"`
	// Version identifies the snapshot that served the batch. It is omitted
	// in the rare case where the batch split across flushes spanning a
	// snapshot hot-swap, so different samples were served by different
	// versions — the field never misattributes a snapshot.
	Version uint64 `json:"version,omitempty"`
	// Degraded reports whether any sample was served through the degraded
	// (overload-sampled) path.
	Degraded bool `json:"degraded,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeOverloaded maps the batcher's backpressure signal to HTTP: 429 with
// a Retry-After hint. Shedding happens at admission, so an overloaded
// server answers in microseconds instead of queuing without bound.
func writeOverloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "admission queue full, retry later")
}

// validate checks one request against the current snapshot and resolves it
// to a batch entry. Every bad-input shape is a 400: empty or out-of-range
// indices (which would otherwise panic deep in the forward pass),
// mismatched indices/values lengths, and explicit k <= 0 or k beyond the
// label space — the server never silently clamps what the client asked for.
func (s *Server) validate(r *predictRequest, p Predictor) (slide.BatchEntry, error) {
	if len(r.Indices) == 0 {
		return slide.BatchEntry{}, fmt.Errorf("indices must be non-empty")
	}
	features := int32(p.NumFeatures())
	for i, idx := range r.Indices {
		if idx < 0 || idx >= features {
			return slide.BatchEntry{}, fmt.Errorf("index %d (position %d) out of range [0, %d)", idx, i, features)
		}
	}
	if r.Values == nil {
		r.Values = make([]float32, len(r.Indices))
		for i := range r.Values {
			r.Values[i] = 1
		}
	}
	if len(r.Values) != len(r.Indices) {
		return slide.BatchEntry{}, fmt.Errorf("%d indices but %d values", len(r.Indices), len(r.Values))
	}
	k := s.cfg.DefaultK
	if r.K != nil {
		k = *r.K
		if k <= 0 {
			return slide.BatchEntry{}, fmt.Errorf("k must be positive, got %d", k)
		}
		if k > p.NumLabels() {
			return slide.BatchEntry{}, fmt.Errorf("k %d exceeds label space %d", k, p.NumLabels())
		}
	}
	if k > p.NumLabels() {
		// Only reachable via a default k larger than a small model's label
		// space; the default is a server setting, so clamping is correct.
		k = p.NumLabels()
	}
	return slide.BatchEntry{Indices: r.Indices, Values: r.Values, K: k}, nil
}

// predictSampledOne serves one sampled request directly on the snapshot,
// with exact fallback. Sampled retrieval is inherently per-sample (each
// request probes its own LSH buckets), so it bypasses the batcher.
func predictSampledOne(p Predictor, e slide.BatchEntry) ([]int32, bool) {
	labels, err := p.PredictSampled(e.Indices, e.Values, e.K)
	if err == nil {
		return labels, true
	}
	// ErrNoSampling: model has no LSH tables — exact is the right call.
	return p.Predict(e.Indices, e.Values, e.K), false
}

func (s *Server) handlePredict(w http.ResponseWriter, req *http.Request) {
	var pr predictRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	p := s.mgr.Current()
	e, err := s.validate(&pr, p)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if pr.Sampled {
		labels, sampled := predictSampledOne(p, e)
		writeJSON(w, http.StatusOK, predictResponse{Labels: labels, Sampled: sampled, Version: p.Version()})
		return
	}
	if s.batcher == nil {
		writeJSON(w, http.StatusOK, predictResponse{Labels: p.Predict(e.Indices, e.Values, e.K), Version: p.Version()})
		return
	}
	ctx, cancel := s.deadlineCtx(req.Context(), pr.DeadlineMS)
	defer cancel()
	res, err := s.batcher.Submit(ctx, e)
	if err != nil {
		writeBatcherError(w, req, err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Labels: res.Labels, Version: res.Version, Degraded: res.Degraded})
}

// deadlineCtx derives the request's service context: the wire deadline_ms
// wins, then the server default, else the transport context unchanged. The
// batcher propagates the deadline with the queued request and rejects it
// with ErrDeadline (→ 504) once it cannot be met.
func (s *Server) deadlineCtx(parent context.Context, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithDeadline(parent, time.Now().Add(d))
}

// writeBatcherError maps pipeline errors to HTTP: overload and snapshot
// skew are retryable (429/503 + Retry-After), shutdown is 503, a client
// that already went away gets no response body (writing one would just
// misreport the abort as a 5xx server fault), and anything else is a
// genuine 500.
func writeBatcherError(w http.ResponseWriter, req *http.Request, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeOverloaded(w)
	case errors.Is(err, ErrDeadline):
		// Deliberate deadline shedding: the request's budget (deadline_ms or
		// the server default) could not be met. Checked before the transport
		// context, because a server-derived deadline expiring also cancels
		// the derived context while the client is still listening for the 504.
		writeError(w, http.StatusGatewayTimeout, "%v", err)
	case errors.Is(err, ErrSnapshotSkew):
		// The model was hot-swapped between admission and flush and the new
		// one rejects this request's shape; a retry revalidates against it.
		w.Header().Set("Retry-After", "0")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case req.Context().Err() != nil:
		// Client disconnected or timed out while queued; nobody is reading.
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, req *http.Request) {
	var br batchRequest
	if err := json.NewDecoder(req.Body).Decode(&br); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if len(br.Samples) == 0 {
		writeError(w, http.StatusBadRequest, "samples must be non-empty")
		return
	}
	p := s.mgr.Current()
	entries := make([]slide.BatchEntry, len(br.Samples))
	anySampled := false
	for i := range br.Samples {
		if br.Samples[i].K == nil {
			br.Samples[i].K = br.K
		}
		br.Samples[i].Sampled = br.Samples[i].Sampled || br.Sampled
		anySampled = anySampled || br.Samples[i].Sampled
		e, err := s.validate(&br.Samples[i], p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "sample %d: %v", i, err)
			return
		}
		entries[i] = e
	}
	resp := batchResponse{Labels: make([][]int32, len(entries))}
	if anySampled {
		// Sampled retrieval is per-sample; a batch requesting it anywhere is
		// served sample by sample on one snapshot. Sampled reports whether
		// sampled retrieval served every sample.
		resp.Sampled = true
		resp.Version = p.Version()
		for i, e := range entries {
			if !br.Samples[i].Sampled {
				resp.Labels[i] = p.Predict(e.Indices, e.Values, e.K)
				resp.Sampled = false
				continue
			}
			var sampled bool
			resp.Labels[i], sampled = predictSampledOne(p, e)
			resp.Sampled = resp.Sampled && sampled
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.batcher == nil {
		labels, err := directBatch(p, entries)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Labels = labels
		resp.Version = p.Version()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Through the batcher the client batch coalesces with concurrent
	// traffic (and may split across flushes, possibly spanning a snapshot
	// swap — Version is only reported when one snapshot served everything).
	ctx, cancel := s.deadlineCtx(req.Context(), br.DeadlineMS)
	defer cancel()
	results, err := s.batcher.SubmitMany(ctx, entries)
	if err != nil {
		writeBatcherError(w, req, err)
		return
	}
	resp.Version = results[0].Version
	for i, r := range results {
		resp.Labels[i] = r.Labels
		resp.Degraded = resp.Degraded || r.Degraded
		if r.Version != resp.Version {
			resp.Version = 0 // mixed-version batch: omit rather than misattribute
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// directBatch serves a client batch without the micro-batcher, preserving
// the pre-batching execution shape: a uniform-k batch goes through the
// data-parallel PredictBatch fan-out (GOMAXPROCS goroutines), mixed k
// through the fused per-entry walk.
func directBatch(p Predictor, entries []slide.BatchEntry) ([][]int32, error) {
	uniform := true
	for _, e := range entries[1:] {
		if e.K != entries[0].K {
			uniform = false
			break
		}
	}
	if !uniform {
		return p.PredictEntries(entries)
	}
	samples := make([]slide.Sample, len(entries))
	for i, e := range entries {
		samples[i] = slide.Sample{Indices: e.Indices, Values: e.Values}
	}
	return p.PredictBatch(samples, entries[0].K)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	p := s.mgr.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"labels":  p.NumLabels(),
		"sampled": p.Sampled(),
		"steps":   p.Steps(),
		"version": p.Version(),
	})
}

// handleLive is the liveness probe: the process is up and serving HTTP.
// Always 200 — an overloaded or stale server must not be restarted, only
// taken out of rotation (that's readiness).
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "live"})
}

// handleReady is the readiness probe: 503 when new traffic should go
// elsewhere — the admission queue is saturated (arrivals are being shed),
// the snapshot is older than MaxStale (the publishing side stopped), or
// the ReadyReasons hook reports a problem (a replica's version skew or
// lost replication stream). All conditions are reported, so an operator
// sees why a replica left rotation.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if s.batcher != nil {
		if st := s.batcher.Stats(); st.QueueDepth >= st.QueueCap {
			reasons = append(reasons, fmt.Sprintf("admission queue full (%d/%d)", st.QueueDepth, st.QueueCap))
		}
	}
	if s.cfg.MaxStale > 0 {
		if age := s.mgr.Age(); age > s.cfg.MaxStale {
			reasons = append(reasons, fmt.Sprintf("snapshot stale: published %s ago (limit %s)",
				age.Round(time.Millisecond), s.cfg.MaxStale))
		}
	}
	if s.mgr.QuarantinedLast() {
		reasons = append(reasons, fmt.Sprintf("latest snapshot quarantined: %s", s.mgr.QuarantineReason()))
	}
	if s.cfg.ReadyReasons != nil {
		reasons = append(reasons, s.cfg.ReadyReasons()...)
	}
	if len(reasons) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "unready", "reasons": reasons})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// statsResponse is the /stats payload: queue and batching counters from the
// pipeline plus snapshot freshness.
type statsResponse struct {
	Mode            string   `json:"mode"` // "batched" or "direct"
	QueueDepth      int      `json:"queue_depth"`
	QueueCap        int      `json:"queue_cap"`
	Workers         int      `json:"workers"`
	MaxBatch        int      `json:"max_batch"`
	MaxWaitMs       float64  `json:"max_wait_ms"`
	Admitted        uint64   `json:"admitted"`
	Served          uint64   `json:"served"`
	Failed          uint64   `json:"failed"`
	Shed            uint64   `json:"shed"`
	Canceled        uint64   `json:"canceled"`
	Deadlined       uint64   `json:"deadlined"`
	DegradedServed  uint64   `json:"degraded_served"`
	DegradedMode    bool     `json:"degraded_mode"`
	DegradeSwitches uint64   `json:"degrade_switches"`
	Batches         uint64   `json:"batches"`
	MeanBatch       float64  `json:"mean_batch"`
	BatchSizes      []uint64 `json:"batch_size_hist,omitempty"`
	P50Ms           float64  `json:"latency_p50_ms"`
	P99Ms           float64  `json:"latency_p99_ms"`
	SnapshotVersion uint64   `json:"snapshot_version"`
	SnapshotSteps   int64    `json:"snapshot_steps"`
	SnapshotSwaps   uint64   `json:"snapshot_swaps"`
	SnapshotAgeMs   float64  `json:"snapshot_age_ms"`
	// Quarantined counts snapshot candidates refused at admission for
	// non-finite weights; QuarantineReason is the most recent refusal.
	Quarantined      uint64 `json:"quarantined"`
	QuarantineReason string `json:"quarantine_reason,omitempty"`
	// SnapshotPrecision names the current snapshot's output-layer storage
	// (f32|bf16|int8|int4) and SnapshotPackedBytes its serialized size —
	// present when the predictor reports them (slide.Predictor does).
	SnapshotPrecision   string `json:"snapshot_precision,omitempty"`
	SnapshotPackedBytes int64  `json:"snapshot_packed_bytes,omitempty"`
}

// precisionReporter is the optional observability surface a predictor may
// implement (slide.Predictor and replicate.Served do) to expose its
// output-layer storage format on /stats.
type precisionReporter interface {
	SnapshotPrecision() string
	PackedBytes() int64
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	p := s.mgr.Current()
	resp := statsResponse{
		Mode:            "direct",
		SnapshotVersion: p.Version(),
		SnapshotSteps:   p.Steps(),
		SnapshotSwaps:   s.mgr.Swaps(),
		SnapshotAgeMs:   float64(s.mgr.Age().Microseconds()) / 1000,

		Quarantined:      s.mgr.Quarantined(),
		QuarantineReason: s.mgr.QuarantineReason(),
	}
	if pr, ok := p.(precisionReporter); ok {
		resp.SnapshotPrecision = pr.SnapshotPrecision()
		resp.SnapshotPackedBytes = pr.PackedBytes()
	}
	if s.batcher != nil {
		st := s.batcher.Stats()
		resp.Mode = "batched"
		resp.QueueDepth = st.QueueDepth
		resp.QueueCap = st.QueueCap
		resp.Workers = st.Workers
		resp.MaxBatch = st.MaxBatch
		resp.MaxWaitMs = float64(st.MaxWait.Microseconds()) / 1000
		resp.Admitted = st.Admitted
		resp.Served = st.Served
		resp.Failed = st.Failed
		resp.Shed = st.Shed
		resp.Canceled = st.Canceled
		resp.Deadlined = st.Deadlined
		resp.DegradedServed = st.DegradedServed
		resp.DegradedMode = st.DegradedMode
		resp.DegradeSwitches = st.DegradeSwitches
		resp.Batches = st.Batches
		resp.MeanBatch = st.MeanBatch
		resp.BatchSizes = st.BatchSizes
		resp.P50Ms = float64(st.P50.Microseconds()) / 1000
		resp.P99Ms = float64(st.P99.Microseconds()) / 1000
	}
	if s.cfg.StatsExtra == nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Merge the hook's fields into the payload: round-trip the typed
	// struct through a map (cold path; /stats is observability traffic).
	raw, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	merged := map[string]any{}
	_ = json.Unmarshal(raw, &merged)
	for k, v := range s.cfg.StatsExtra() {
		merged[k] = v
	}
	writeJSON(w, http.StatusOK, merged)
}
