package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/slide"
)

// ErrOverloaded is returned by Submit when the admission queue is full: the
// request was shed without queuing. The HTTP layer maps it to
// 429 Too Many Requests with a Retry-After hint. Shedding at admission
// keeps overload latency flat — a request is either queued and served, or
// rejected in microseconds.
var ErrOverloaded = errors.New("serving: admission queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serving: batcher closed")

// ErrInvalidEntry is returned by Submit/SubmitMany for an entry that can
// never be served regardless of snapshot (non-positive k, mismatched
// indices/values). Rejecting at admission keeps a malformed entry from
// poisoning the coalesced batch it would have flushed with.
var ErrInvalidEntry = errors.New("serving: invalid batch entry")

// ErrSnapshotSkew is returned for a request admitted under one snapshot
// whose indices are invalid for the (smaller) snapshot that was current by
// flush time. Rare — it requires a hot-swap to a model with a narrower
// feature space mid-flight — and retryable: revalidating against the new
// current snapshot gives the client a definitive 400 or a served request.
var ErrSnapshotSkew = errors.New("serving: snapshot changed between admission and flush")

// ErrDeadline is returned for a request whose context deadline cannot be
// met: already expired at admission, infeasible given the current service
// -time estimate, or passed by the time its batch flushed. The HTTP layer
// maps it to 504 Gateway Timeout. Rejecting doomed work early keeps
// capacity for requests that can still make their deadlines.
var ErrDeadline = errors.New("serving: request deadline exceeded")

// Config parameterizes a Batcher. The zero value selects the defaults.
type Config struct {
	// MaxBatch is the coalescing limit: a worker flushes as soon as its
	// batch reaches this size (default 32).
	MaxBatch int
	// MaxWait bounds how long a partial batch waits for company after a
	// worker picks up its first request before flushing anyway. Zero
	// selects the 2ms default; negative disables waiting entirely (a
	// worker flushes whatever it greedily drained).
	MaxWait time.Duration
	// QueueCap bounds the admission queue; a full queue sheds with
	// ErrOverloaded (default 8×MaxBatch).
	QueueCap int
	// Workers is the flush worker pool size (default GOMAXPROCS). Each
	// worker runs one fused PredictEntries at a time; concurrency across
	// workers is the pipeline's parallelism.
	Workers int
	// LatencyWindow is the sliding-window size of the p50/p99 latency
	// reservoir (default 4096 requests).
	LatencyWindow int
	// Degrade is the tiered-degradation policy (see DegradePolicy). The
	// zero value disables degradation: the pipeline serves exact until it
	// sheds.
	Degrade DegradePolicy
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8 * c.MaxBatch
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 4096
	}
	if c.Degrade.enabled() {
		if c.Degrade.LowWater <= 0 {
			c.Degrade.LowWater = c.Degrade.HighWater / 2
		}
		if c.Degrade.After <= 0 {
			c.Degrade.After = 3
		}
	}
	return c
}

// Result is one served request: the top-k labels and the version of the
// snapshot that produced them. Degraded marks a response served through the
// sampled (LSH) path under overload rather than the exact one.
type Result struct {
	Labels   []int32
	Version  uint64
	Degraded bool
}

// pending is one queued request. The worker publishes labels/err/version
// and servedAt and then closes done; the submitter reads them only after
// done closes, so those fields need no further synchronization. state is
// the claim arbiter between the flushing worker and a submitter giving up
// (context cancelled): exactly one side wins the CAS from pendingState, so
// a request is counted served or cancelled, never both.
type pending struct {
	entry    slide.BatchEntry
	enqueued time.Time
	deadline time.Time // zero = none; captured from the Submit context
	state    atomic.Int32 // pendingState / claimedState / canceledState
	done     chan struct{}
	servedAt time.Time
	labels   []int32
	version  uint64
	degraded bool
	err      error
}

const (
	pendingState  = iota // queued, unclaimed
	claimedState         // a flush took ownership; done will close
	canceledState        // the submitter gave up first; flushes skip it
)

// Batcher coalesces concurrent single-sample predict requests into fused
// batch calls on the current snapshot. See the package documentation for
// the flush policy and the backpressure contract.
type Batcher struct {
	cfg   Config
	mgr   *SnapshotManager
	queue chan *pending

	// mu guards closed against concurrent Submit sends: Submit holds the
	// read side across the non-blocking enqueue, Close takes the write side
	// before closing the channel.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	admitted  atomic.Uint64
	served    atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64
	canceled  atomic.Uint64
	deadlined atomic.Uint64
	degServed atomic.Uint64
	batches   atomic.Uint64
	sizes     *metrics.SizeHistogram
	latency   *metrics.Reservoir

	// svcEWMA estimates flush service time (ns, exponentially weighted):
	// the floor below which a remaining deadline budget is infeasible.
	svcEWMA atomic.Int64
	degrade degradeState
}

// NewBatcher starts a batcher serving snapshots from mgr. Close releases
// its workers.
func NewBatcher(mgr *SnapshotManager, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		mgr:     mgr,
		queue:   make(chan *pending, cfg.QueueCap),
		sizes:   metrics.NewSizeHistogram(cfg.MaxBatch),
		latency: metrics.NewReservoir(cfg.LatencyWindow),
	}
	b.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	return b
}

// Submit queues one request and blocks until it is served or ctx is done.
// It returns ErrOverloaded immediately when the admission queue is full and
// ErrClosed after Close. A context deadline propagates with the request:
// Submit rejects immediately with ErrDeadline when the deadline has already
// passed or the remaining budget is below the current service-time estimate
// (the request could not be served in time even if flushed at once), and a
// queued request whose deadline passes before its batch flushes fails with
// ErrDeadline instead of consuming backend work. On ctx cancellation the
// queue slot is lazily reclaimed (the worker skips the entry), and ctx.Err()
// is returned — except deadline expiry, which reports ErrDeadline.
func (b *Batcher) Submit(ctx context.Context, entry slide.BatchEntry) (Result, error) {
	item := &pending{entry: entry, enqueued: time.Now(), done: make(chan struct{})}
	if d, ok := ctx.Deadline(); ok {
		item.deadline = d
		if budget := time.Until(d); budget <= time.Duration(b.svcEWMA.Load()) {
			b.deadlined.Add(1)
			return Result{}, fmt.Errorf("serving: %v budget, service estimate %v: %w",
				budget, time.Duration(b.svcEWMA.Load()), ErrDeadline)
		}
	}
	if err := b.enqueue(item); err != nil {
		return Result{}, err
	}
	return b.await(ctx, item)
}

// SubmitMany queues a client batch as individual entries (they may coalesce
// with other traffic or split across flushes) and blocks until every entry
// is served. Entries are admitted in chunks no larger than half the queue,
// awaiting each chunk before admitting the next, so a client batch larger
// than the admission queue is still servable — it just flows through in
// waves rather than demanding the whole queue at once. Within a chunk
// admission is all-or-nothing: if concurrent traffic fills the queue
// partway through, the chunk's queued entries are cancelled and
// ErrOverloaded is returned (the usual shed-and-retry contract). Results
// are index-aligned with entries.
func (b *Batcher) SubmitMany(ctx context.Context, entries []slide.BatchEntry) ([]Result, error) {
	chunk := max(1, b.cfg.QueueCap/2)
	out := make([]Result, len(entries))
	for lo := 0; lo < len(entries); lo += chunk {
		hi := min(lo+chunk, len(entries))
		items := make([]*pending, hi-lo)
		for i, e := range entries[lo:hi] {
			item := &pending{entry: e, enqueued: time.Now(), done: make(chan struct{})}
			if err := b.enqueue(item); err != nil {
				b.abandon(items[:i])
				return nil, err
			}
			items[i] = item
		}
		for i, item := range items {
			r, err := b.await(ctx, item)
			if err != nil {
				// await already accounted for this item; abandon the rest.
				b.abandon(items[i+1:])
				return nil, err
			}
			out[lo+i] = r
		}
	}
	return out, nil
}

// abandon marks still-pending items cancelled; items a flush already
// claimed are left alone (they were served and counted as such).
func (b *Batcher) abandon(items []*pending) {
	for _, q := range items {
		if b.cancel(q) {
			b.canceled.Add(1)
		}
	}
}

func (b *Batcher) enqueue(item *pending) error {
	// Snapshot-independent validation happens before the entry can share a
	// flush with anyone: PredictEntries is all-or-nothing, so a malformed
	// entry reaching a flush would error every request coalesced with it.
	// (Snapshot-dependent validation — index bounds — is the flush-time
	// checkFeatures guard.)
	if item.entry.K <= 0 {
		return fmt.Errorf("serving: entry has non-positive k %d: %w", item.entry.K, ErrInvalidEntry)
	}
	if len(item.entry.Indices) != len(item.entry.Values) {
		return fmt.Errorf("serving: entry has %d indices but %d values: %w",
			len(item.entry.Indices), len(item.entry.Values), ErrInvalidEntry)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	select {
	case b.queue <- item:
		b.admitted.Add(1)
		return nil
	default:
		b.shed.Add(1)
		return ErrOverloaded
	}
}

func (b *Batcher) await(ctx context.Context, item *pending) (Result, error) {
	select {
	case <-item.done:
		return b.finish(item)
	case <-ctx.Done():
		if !b.cancel(item) {
			// A flush claimed the item first: it is being (or was) served
			// and counted as such; the submitter stopped listening, but the
			// result is moments away — return it rather than inventing a
			// cancellation the stats would disagree with.
			<-item.done
			return b.finish(item)
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The deadline, not the caller, killed the request: report (and
			// count) it as a deadline miss, not a cancellation.
			b.deadlined.Add(1)
			return Result{}, fmt.Errorf("serving: deadline passed while queued: %w", ErrDeadline)
		}
		b.canceled.Add(1)
		return Result{}, ctx.Err()
	}
}

// cancel tries to win the item from any future flush; it reports whether
// the cancellation took effect (false = a flush already claimed the item).
// The caller accounts the outcome (canceled vs deadline-missed).
func (b *Batcher) cancel(item *pending) bool {
	return item.state.CompareAndSwap(pendingState, canceledState)
}

// finish reads a completed item (done closed by the worker). Latency is
// the enqueue-to-flush-completion delta the worker stamped, independent of
// when the submitter got around to collecting the result (SubmitMany
// collects in index order).
func (b *Batcher) finish(item *pending) (Result, error) {
	if item.err != nil {
		return Result{}, item.err
	}
	b.latency.Observe(item.servedAt.Sub(item.enqueued))
	return Result{Labels: item.labels, Version: item.version, Degraded: item.degraded}, nil
}

// Close stops admitting (Submit returns ErrClosed), lets the workers drain
// everything already queued, and waits for them to exit. Safe to call more
// than once.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.queue)
	b.mu.Unlock()
	b.wg.Wait()
}

// worker pulls the next request, coalesces up to MaxBatch-1 more — first
// greedily from what is already queued, then waiting up to MaxWait — and
// flushes the batch through one fused call on the current snapshot.
func (b *Batcher) worker() {
	defer b.wg.Done()
	batch := make([]*pending, 0, b.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		// Greedy drain: whatever is already waiting coalesces for free.
	greedy:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case item, ok := <-b.queue:
				if !ok {
					b.flush(batch)
					return
				}
				batch = append(batch, item)
			default:
				break greedy
			}
		}
		// Partial batch: wait up to MaxWait (measured from now — the
		// deadline bounds added latency, not total queue time) for more.
		if len(batch) < b.cfg.MaxBatch && b.cfg.MaxWait > 0 {
			timer.Reset(b.cfg.MaxWait)
		wait:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case item, ok := <-b.queue:
					if !ok {
						timer.Stop()
						b.flush(batch)
						return
					}
					batch = append(batch, item)
				case <-timer.C:
					break wait
				}
			}
			timer.Stop()
		}
		b.flush(batch)
	}
}

// flush serves one coalesced batch from a single snapshot capture: exact
// fused prediction normally, per-entry sampled prediction when the
// degradation policy says the pipeline is in degraded mode (still one
// snapshot for the whole batch — degraded responses obey the same
// no-wrong-version guarantee). Requests whose deadline passed while queued
// fail with ErrDeadline before consuming backend work.
func (b *Batcher) flush(batch []*pending) {
	pred := b.mgr.Current() // one snapshot for the whole batch
	degraded := b.degrade.observe(len(b.queue), b.cfg.QueueCap, b.cfg.Degrade) && pred.Sampled()
	live := make([]*pending, 0, len(batch))
	entries := make([]slide.BatchEntry, 0, len(batch))
	failed, deadlined := 0, 0
	now := time.Now()
	for _, item := range batch {
		// Claim the item; a submitter that cancelled first keeps it.
		if !item.state.CompareAndSwap(pendingState, claimedState) {
			continue
		}
		if !item.deadline.IsZero() && now.After(item.deadline) {
			item.err = fmt.Errorf("serving: deadline passed %v before flush: %w",
				now.Sub(item.deadline), ErrDeadline)
			deadlined++
			close(item.done)
			continue
		}
		// Front ends validate against the snapshot current at admission; a
		// hot-swap before the flush may have shrunk the model. Fail skewed
		// requests instead of serving the batch into a crash (out-of-range
		// index → panic deep in the forward pass) or a silent k clamp (the
		// front end promises never to truncate an accepted k).
		if e := checkSkew(item.entry, pred); e != nil {
			item.err = e
			failed++
			close(item.done)
			continue
		}
		live = append(live, item)
		entries = append(entries, item.entry)
	}
	b.failed.Add(uint64(failed))
	b.deadlined.Add(uint64(deadlined))
	if len(live) == 0 {
		return
	}
	version := pred.Version()
	start := time.Now()
	if degraded {
		b.flushSampled(pred, live, version)
	} else {
		b.flushExact(pred, live, entries, version)
	}
	b.observeService(time.Since(start))
	b.batches.Add(1)
	b.sizes.Observe(len(live))
}

// flushExact is the normal path: one fused PredictEntries for the batch.
func (b *Batcher) flushExact(pred Predictor, live []*pending, entries []slide.BatchEntry, version uint64) {
	out, err := predictEntries(pred, entries)
	now := time.Now()
	if err != nil {
		b.failed.Add(uint64(len(live)))
	} else {
		b.served.Add(uint64(len(live)))
	}
	for i, item := range live {
		if err != nil {
			item.err = err
		} else {
			item.labels = out[i]
			item.version = version
			item.servedAt = now
		}
		close(item.done)
	}
}

// flushSampled is the degraded path: per-entry LSH-sampled prediction, each
// entry succeeding or failing on its own.
func (b *Batcher) flushSampled(pred Predictor, live []*pending, version uint64) {
	for _, item := range live {
		labels, err := predictSampled(pred, item.entry)
		if err != nil {
			item.err = err
			b.failed.Add(1)
		} else {
			item.labels = labels
			item.version = version
			item.servedAt = time.Now()
			item.degraded = true
			b.served.Add(1)
			b.degServed.Add(1)
		}
		close(item.done)
	}
}

// observeService folds one flush's service time into the EWMA estimate
// (weight 1/4 to the new sample — responsive but burst-tolerant).
func (b *Batcher) observeService(d time.Duration) {
	for {
		old := b.svcEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if b.svcEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// predictEntries runs the backend with panic containment: a panicking
// Predictor implementation must fail its batch (every submitter gets the
// error), not kill the worker — a dead worker would strand the claimed
// items' done channels, hang every coalesced submitter, and deadlock
// Close on wg.Wait.
func predictEntries(pred Predictor, entries []slide.BatchEntry) (out [][]int32, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("serving: predictor panicked: %v", r)
		}
	}()
	return pred.PredictEntries(entries)
}

// predictSampled runs one degraded-path prediction with the same panic
// containment as predictEntries.
func predictSampled(pred Predictor, e slide.BatchEntry) (out []int32, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("serving: predictor panicked: %v", r)
		}
	}()
	return pred.PredictSampled(e.Indices, e.Values, e.K)
}

// checkSkew guards against admission/flush snapshot skew: every index and
// the requested k must be valid for the snapshot actually serving the
// batch, not just the one the front end validated against. The rescan is
// deliberate, not redundant: only the flush knows which snapshot actually
// serves the batch (an enqueue-time version stamp could itself be newer
// than what the front end validated against), and its O(nnz) cost is noise
// next to the forward pass it protects.
func checkSkew(e slide.BatchEntry, pred Predictor) error {
	features := int32(pred.NumFeatures())
	for _, idx := range e.Indices {
		if idx < 0 || idx >= features {
			return fmt.Errorf("serving: index %d out of range for snapshot %d (features %d): %w",
				idx, pred.Version(), features, ErrSnapshotSkew)
		}
	}
	if e.K > pred.NumLabels() {
		return fmt.Errorf("serving: k %d exceeds snapshot %d label space %d: %w",
			e.K, pred.Version(), pred.NumLabels(), ErrSnapshotSkew)
	}
	return nil
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	// QueueDepth is the current admission-queue occupancy; QueueCap its
	// bound.
	QueueDepth, QueueCap int
	// Workers, MaxBatch and MaxWait echo the configuration.
	Workers, MaxBatch int
	MaxWait           time.Duration
	// Admitted counts requests accepted into the queue; Served those
	// answered successfully; Failed those answered with an error (backend
	// failure or snapshot skew); Shed those rejected with ErrOverloaded;
	// Canceled those whose submitter gave up before the flush reached them.
	Admitted, Served, Failed, Shed, Canceled uint64
	// Deadlined counts requests rejected or failed with ErrDeadline;
	// DegradedServed the subset of Served answered through the sampled
	// path. DegradedMode reports whether the pipeline is currently
	// degraded; DegradeSwitches counts mode transitions in both directions.
	Deadlined, DegradedServed uint64
	DegradedMode              bool
	DegradeSwitches           uint64
	// Batches counts flushes; BatchSizes[i] counts flushes of size i+1;
	// MeanBatch is the mean flush size.
	Batches    uint64
	BatchSizes []uint64
	MeanBatch  float64
	// P50/P99 are request latencies (enqueue to served) over the sliding
	// window.
	P50, P99 time.Duration
}

// Stats returns current counters. Safe for concurrent use.
func (b *Batcher) Stats() Stats {
	qs := b.latency.Quantiles(0.5, 0.99)
	degradedMode, switches := b.degrade.mode()
	return Stats{
		Deadlined:       b.deadlined.Load(),
		DegradedServed:  b.degServed.Load(),
		DegradedMode:    degradedMode,
		DegradeSwitches: switches,
		QueueDepth: len(b.queue),
		QueueCap:   b.cfg.QueueCap,
		Workers:    b.cfg.Workers,
		MaxBatch:   b.cfg.MaxBatch,
		MaxWait:    b.cfg.MaxWait,
		Admitted:   b.admitted.Load(),
		Served:     b.served.Load(),
		Failed:     b.failed.Load(),
		Shed:       b.shed.Load(),
		Canceled:   b.canceled.Load(),
		Batches:    b.batches.Load(),
		BatchSizes: b.sizes.Counts(),
		MeanBatch:  b.sizes.Mean(),
		P50:        qs[0],
		P99:        qs[1],
	}
}
