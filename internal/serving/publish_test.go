package serving

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/slide-cpu/slide/slide"
)

// TestTrainerPublishesSnapshots: a Trainer session wired to a
// SnapshotManager via Publisher hot-swaps fresh versions on schedule while
// concurrent readers serve from whatever snapshot is current — the
// train-and-serve-from-one-object loop the session API exists for.
func TestTrainerPublishesSnapshots(t *testing.T) {
	train, _, err := slide.AmazonLike(1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := slide.New(train.Features(), 16, train.NumLabels(),
		slide.WithDWTA(3, 8), slide.WithLearningRate(1e-3),
		slide.WithLockedGradients(), slide.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewSnapshotManager(m.Snapshot())
	v0 := mgr.Current().Version()

	src, err := slide.NewDatasetSource(train, 32)
	if err != nil {
		t.Fatal(err)
	}
	const snapEvery = 4
	trainer, err := slide.NewTrainer(m, src,
		slide.WithEpochs(3),
		slide.WithSnapshots(snapEvery, Publisher(mgr)))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent readers predict from the manager during the whole session.
	stop := make(chan struct{})
	var served atomic.Int64
	var wg sync.WaitGroup
	s := train.Sample(0)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := mgr.Current()
				if got := p.Predict(s.Indices, s.Values, 2); len(got) != 2 {
					t.Errorf("prediction of length %d from snapshot v%d", len(got), p.Version())
					return
				}
				served.Add(1)
			}
		}()
	}

	rep, err := trainer.Run(context.Background())
	// On a single-core box the readers may not have been scheduled during a
	// short session; give them a beat before stopping so the served counter
	// reflects real concurrent reads.
	for i := 0; i < 1000 && served.Load() == 0; i++ {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	wantSwaps := uint64(rep.Steps / snapEvery)
	if got := mgr.Swaps(); got != wantSwaps {
		t.Errorf("%d snapshot swaps, want %d (%d steps, every %d)",
			got, wantSwaps, rep.Steps, snapEvery)
	}
	cur := mgr.Current()
	if cur.Version() <= v0 {
		t.Errorf("current version %d not newer than initial %d", cur.Version(), v0)
	}
	// The last published snapshot is at most snapEvery-1 steps behind the
	// final model — freshness the /stats endpoint surfaces.
	if cur.Steps() < rep.Steps-snapEvery {
		t.Errorf("published snapshot at step %d, model finished at %d", cur.Steps(), rep.Steps)
	}
	if served.Load() == 0 {
		t.Error("no predictions served during training")
	}
}
