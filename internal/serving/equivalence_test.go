package serving

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// trainedPredictor trains a tiny model through the public API and snapshots
// it. Single-worker training keeps it deterministic and race-detector clean.
func trainedPredictor(t testing.TB, seed uint64, opts ...slide.Option) (*slide.Predictor, *slide.Dataset) {
	t.Helper()
	train, test, err := slide.AmazonLike(1e-9, seed)
	if err != nil {
		t.Fatal(err)
	}
	base := []slide.Option{
		slide.WithLearningRate(0.01),
		slide.WithWorkers(1),
		slide.WithSeed(seed),
	}
	m, err := slide.New(train.Features(), 16, train.NumLabels(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), test
}

// TestBatcherBitIdenticalToDirectPredict is the serving equivalence
// contract: a response served through the micro-batcher — whatever batch it
// happened to coalesce into, whatever per-request k its neighbors used — is
// bit-identical to calling Predictor.Predict directly, for every
// Precision × MemoryLayout combination.
func TestBatcherBitIdenticalToDirectPredict(t *testing.T) {
	precisions := map[string]slide.Option{
		"fp32":     slide.WithPrecision(slide.FP32),
		"bf16act":  slide.WithPrecision(slide.BF16Activations),
		"bf16full": slide.WithPrecision(slide.BF16Full),
	}
	layouts := map[string]slide.Option{
		"coalesced":  slide.WithMemoryLayout(slide.Coalesced),
		"fragmented": slide.WithMemoryLayout(slide.Fragmented),
	}
	for pname, popt := range precisions {
		for lname, lopt := range layouts {
			t.Run(fmt.Sprintf("%s/%s", pname, lname), func(t *testing.T) {
				pred, test := trainedPredictor(t, 11, popt, lopt, slide.WithDWTA(3, 8))
				mgr := NewSnapshotManager(pred)
				b := NewBatcher(mgr, Config{Workers: 2, MaxBatch: 8, MaxWait: time.Millisecond, QueueCap: 256})
				defer b.Close()

				maxK := min(6, pred.NumLabels())
				const n = 48
				var wg sync.WaitGroup
				results := make([]Result, n)
				errs := make([]error, n)
				for i := 0; i < n; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						s := test.Sample(i % test.Len())
						k := 1 + i%maxK // mixed per-request k within coalesced batches
						results[i], errs[i] = b.Submit(context.Background(),
							slide.BatchEntry{Indices: s.Indices, Values: s.Values, K: k})
					}(i)
				}
				wg.Wait()

				for i := 0; i < n; i++ {
					if errs[i] != nil {
						t.Fatalf("request %d: %v", i, errs[i])
					}
					s := test.Sample(i % test.Len())
					k := 1 + i%maxK
					want := pred.Predict(s.Indices, s.Values, k)
					if len(results[i].Labels) != len(want) {
						t.Fatalf("request %d (k=%d): batched %v, direct %v", i, k, results[i].Labels, want)
					}
					for j := range want {
						if results[i].Labels[j] != want[j] {
							t.Fatalf("request %d (k=%d): batched %v, direct %v — not bit-identical",
								i, k, results[i].Labels, want)
						}
					}
					if results[i].Version != pred.Version() {
						t.Errorf("request %d served by version %d, want %d", i, results[i].Version, pred.Version())
					}
				}
				// The concurrent submissions actually coalesced (the
				// equivalence claim is vacuous for all-singleton batches).
				if st := b.Stats(); st.MeanBatch <= 1 {
					t.Logf("note: no coalescing occurred (mean batch %.2f over %d batches)", st.MeanBatch, st.Batches)
				}
			})
		}
	}
}

// TestPredictEntriesMatchesPredict pins the slide-level primitive the
// batcher relies on, including k clamping at the label-space bound.
func TestPredictEntriesMatchesPredict(t *testing.T) {
	pred, test := trainedPredictor(t, 13, slide.WithDWTA(3, 8))
	n := 12
	entries := make([]slide.BatchEntry, n)
	for i := range entries {
		s := test.Sample(i % test.Len())
		entries[i] = slide.BatchEntry{Indices: s.Indices, Values: s.Values, K: 1 + i%pred.NumLabels()}
	}
	// One entry asks for more labels than exist: clamped like Predict.
	entries[n-1].K = pred.NumLabels() + 5
	out, err := pred.PredictEntries(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		want := pred.Predict(e.Indices, e.Values, e.K)
		if len(out[i]) != len(want) {
			t.Fatalf("entry %d (k=%d): %v vs %v", i, e.K, out[i], want)
		}
		for j := range want {
			if out[i][j] != want[j] {
				t.Fatalf("entry %d (k=%d): %v vs %v", i, e.K, out[i], want)
			}
		}
	}

	// Invalid entries error instead of serving garbage.
	if _, err := pred.PredictEntries([]slide.BatchEntry{{Indices: []int32{1}, Values: []float32{1}, K: 0}}); err == nil {
		t.Error("k=0 entry did not error")
	}
	if _, err := pred.PredictEntries([]slide.BatchEntry{{Indices: []int32{1, 2}, Values: []float32{1}, K: 1}}); err == nil {
		t.Error("mismatched lengths did not error")
	}
}
