package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// testPredictor trains a tiny model through the public API and snapshots it.
func testPredictor(t *testing.T, opts ...slide.Option) (*slide.Predictor, *slide.Dataset) {
	t.Helper()
	train, test, err := slide.AmazonLike(1e-9, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := []slide.Option{
		slide.WithLearningRate(0.01),
		slide.WithWorkers(1),
		slide.WithSeed(9),
	}
	m, err := slide.New(train.Features(), 16, train.NumLabels(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainEpoch(train, 64); err != nil {
		t.Fatal(err)
	}
	return m.Snapshot(), test
}

// testServer wires a predictor into a started pipeline server + httptest
// front end, cleaning both up with the test.
func testServer(t *testing.T, p Predictor, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(p, cfg)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func kp(k int) *int { return &k }

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServePredictRoundTrip(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	_, ts := testServer(t, p, ServerConfig{DefaultK: 5})

	s := test.Sample(0)
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(3)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Labels) != 3 || pr.Sampled {
		t.Errorf("response %+v", pr)
	}
	if pr.Version != p.Version() {
		t.Errorf("response version %d, snapshot %d", pr.Version, p.Version())
	}
	// Server output (through the micro-batcher) matches direct Predictor
	// output exactly.
	want := p.Predict(s.Indices, s.Values, 3)
	for i := range want {
		if pr.Labels[i] != want[i] {
			t.Errorf("served %v, predictor %v", pr.Labels, want)
		}
	}

	// Omitted values default to 1.0 per index; omitted k uses the default.
	resp, body = postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Labels) != 5 {
		t.Errorf("default-k response has %d labels, want 5", len(pr.Labels))
	}
}

func TestServeSampledAndFallback(t *testing.T) {
	// On an LSH model, sampled requests are served sampled.
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	_, ts := testServer(t, p, ServerConfig{DefaultK: 5})

	s := test.Sample(0)
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(2), Sampled: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Sampled {
		t.Error("LSH model did not serve a sampled request sampled")
	}

	// On a dense model, a sampled request falls back to the exact path
	// instead of erroring (the documented ErrNoSampling fallback).
	dense, _ := testPredictor(t, slide.WithFullSoftmax())
	_, ts2 := testServer(t, dense, ServerConfig{DefaultK: 5})

	resp, body = postJSON(t, ts2, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(2), Sampled: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Sampled {
		t.Error("dense model claimed sampled retrieval")
	}
	want := dense.Predict(s.Indices, s.Values, 2)
	if len(pr.Labels) != len(want) {
		t.Fatalf("fallback labels %v, want %v", pr.Labels, want)
	}
	for i := range want {
		if pr.Labels[i] != want[i] {
			t.Errorf("fallback labels %v, want exact %v", pr.Labels, want)
		}
	}
}

func TestServePredictBatch(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	for _, mode := range []struct {
		name   string
		direct bool
	}{{"batched", false}, {"direct", true}} {
		t.Run(mode.name, func(t *testing.T) {
			_, ts := testServer(t, p, ServerConfig{DefaultK: 5, Direct: mode.direct})
			var reqs []predictRequest
			for i := 0; i < 4; i++ {
				s := test.Sample(i % test.Len())
				reqs = append(reqs, predictRequest{Indices: s.Indices, Values: s.Values})
			}
			resp, body := postJSON(t, ts, "/predict/batch", batchRequest{Samples: reqs, K: kp(2)})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var br batchResponse
			if err := json.Unmarshal(body, &br); err != nil {
				t.Fatal(err)
			}
			if len(br.Labels) != 4 {
				t.Fatalf("batch returned %d results", len(br.Labels))
			}
			for i, r := range reqs {
				want := p.Predict(r.Indices, r.Values, 2)
				for j := range want {
					if br.Labels[i][j] != want[j] {
						t.Errorf("batch[%d] = %v, want %v", i, br.Labels[i], want)
					}
				}
			}
		})
	}
}

func TestServeBatchHonorsPerSampleOptions(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	_, ts := testServer(t, p, ServerConfig{DefaultK: 5})

	s0, s1 := test.Sample(0), test.Sample(1)
	// Mixed Batch: per-sample k and a per-sample sampled flag, no top-level
	// overrides — both must be honored.
	resp, body := postJSON(t, ts, "/predict/batch", batchRequest{Samples: []predictRequest{
		{Indices: s0.Indices, Values: s0.Values, K: kp(1)},
		{Indices: s1.Indices, Values: s1.Values, K: kp(4), Sampled: true},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Labels) != 2 || len(br.Labels[0]) != 1 {
		t.Errorf("per-sample k dropped: %v", br.Labels)
	}
	if br.Sampled {
		t.Error("mixed batch claimed fully sampled service")
	}
	if want := p.Predict(s0.Indices, s0.Values, 1); br.Labels[0][0] != want[0] {
		t.Errorf("sample 0: %v, want %v", br.Labels[0], want)
	}
	if got, _ := p.PredictSampled(s1.Indices, s1.Values, 4); len(br.Labels[1]) != len(got) {
		t.Errorf("sample 1 sampled result has %d labels, want %d", len(br.Labels[1]), len(got))
	}

	// Top-level sampled on an LSH model: response reports sampled=true.
	resp, body = postJSON(t, ts, "/predict/batch", batchRequest{
		Samples: []predictRequest{{Indices: s0.Indices, Values: s0.Values}},
		K:       kp(2), Sampled: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if !br.Sampled {
		t.Error("all-sampled batch reported sampled=false")
	}
}

// TestServeValidation is the table-driven bad-input contract: every
// malformed shape returns 400 with a JSON error body — never a silent
// clamp, never a panic in the forward pass.
func TestServeValidation(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	_, ts := testServer(t, p, ServerConfig{DefaultK: 5})
	s := test.Sample(0)
	labels := p.NumLabels()

	cases := []struct {
		name string
		path string
		body any
	}{
		{"empty indices", "/predict", predictRequest{}},
		{"negative index", "/predict", predictRequest{Indices: []int32{-1}, Values: []float32{1}}},
		{"out-of-range index", "/predict", predictRequest{Indices: []int32{99999999}, Values: []float32{1}}},
		{"more indices than values", "/predict", predictRequest{Indices: []int32{1, 2}, Values: []float32{1}}},
		{"more values than indices", "/predict", predictRequest{Indices: []int32{1}, Values: []float32{1, 2}}},
		{"explicit k zero", "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(0)}},
		{"negative k", "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(-3)}},
		{"k beyond label space", "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(labels + 1)}},
		{"empty batch", "/predict/batch", batchRequest{}},
		{"bad sample in batch", "/predict/batch", batchRequest{Samples: []predictRequest{
			{Indices: s.Indices, Values: s.Values},
			{Indices: []int32{99999999}},
		}}},
		{"batch-level k zero", "/predict/batch", batchRequest{
			Samples: []predictRequest{{Indices: s.Indices, Values: s.Values}}, K: kp(0)}},
		{"batch-level k beyond label space", "/predict/batch", batchRequest{
			Samples: []predictRequest{{Indices: s.Indices, Values: s.Values}}, K: kp(labels + 7)}},
		{"per-sample k beyond label space", "/predict/batch", batchRequest{
			Samples: []predictRequest{{Indices: s.Indices, Values: s.Values, K: kp(labels + 1)}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("error body not JSON with error field: %s", body)
			}
		})
	}

	// Malformed JSON (not expressible via the table's marshal path).
	resp, err := ts.Client().Post(ts.URL+"/predict", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// The boundary case that must NOT 400: k exactly the label space.
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(labels)})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("k == label space rejected: %d (%s)", resp.StatusCode, body)
	}
}

func TestServeHealthAndStats(t *testing.T) {
	p, test := testPredictor(t, slide.WithDWTA(3, 8))
	srv, ts := testServer(t, p, ServerConfig{DefaultK: 5})

	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || int(health["labels"].(float64)) != test.NumLabels() {
		t.Errorf("health = %v", health)
	}

	// Serve a few requests, then check /stats reflects them.
	s := test.Sample(0)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(2)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup predict: %d", resp.StatusCode)
		}
	}
	sr, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Mode != "batched" || stats.Served != 3 || stats.Batches == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.SnapshotVersion != p.Version() {
		t.Errorf("stats version %d, snapshot %d", stats.SnapshotVersion, p.Version())
	}

	// Snapshot hot-swap: version advances, requests keep working.
	p2, _ := testPredictor(t, slide.WithDWTA(3, 8))
	srv.Publish(p2)
	resp, body := postJSON(t, ts, "/predict", predictRequest{Indices: s.Indices, Values: s.Values, K: kp(2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after swap: %d (%s)", resp.StatusCode, body)
	}
	var pr predictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != p2.Version() {
		t.Errorf("post-swap response version %d, want %d", pr.Version, p2.Version())
	}
}

// gatedPredictor blocks PredictEntries until released — the deterministic
// overload fixture for the HTTP layer.
type gatedPredictor struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gatedPredictor) PredictEntries(entries []slide.BatchEntry) ([][]int32, error) {
	g.entered <- struct{}{}
	<-g.release
	out := make([][]int32, len(entries))
	for i := range out {
		out[i] = []int32{0}
	}
	return out, nil
}
func (g *gatedPredictor) Predict(indices []int32, values []float32, k int) []int32 {
	return []int32{0}
}
func (g *gatedPredictor) PredictBatch(samples []slide.Sample, k int) ([][]int32, error) {
	out := make([][]int32, len(samples))
	for i := range out {
		out[i] = []int32{0}
	}
	return out, nil
}
func (g *gatedPredictor) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	return nil, errors.New("no sampling")
}
func (g *gatedPredictor) Sampled() bool    { return false }
func (g *gatedPredictor) Version() uint64  { return 1 }
func (g *gatedPredictor) Steps() int64     { return 0 }
func (g *gatedPredictor) NumLabels() int   { return 10 }
func (g *gatedPredictor) NumFeatures() int { return 100 }

// TestServeOverloadHTTP fills the admission queue behind a blocked backend
// and asserts the HTTP contract: 429 with a parseable Retry-After on the
// excess, 200 for everything admitted once the backend drains.
func TestServeOverloadHTTP(t *testing.T) {
	g := &gatedPredictor{entered: make(chan struct{}, 64), release: make(chan struct{})}
	srv, ts := testServer(t, g, ServerConfig{
		DefaultK: 5,
		Batch:    Config{Workers: 1, MaxBatch: 1, QueueCap: 2, MaxWait: time.Millisecond},
	})

	body := func() []byte {
		b, _ := json.Marshal(predictRequest{Indices: []int32{1}, Values: []float32{1}, K: kp(1)})
		return b
	}()
	post := func() *http.Response {
		resp, err := ts.Client().Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Occupy the worker, fill the two queue slots.
	done := make(chan *http.Response, 3)
	for i := 0; i < 3; i++ {
		go func() { done <- post() }()
	}
	<-g.entered
	deadline := time.Now().Add(2 * time.Second)
	for srv.batcher.Stats().QueueDepth != 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full: the next request is shed with 429 + Retry-After.
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 0 {
		t.Errorf("Retry-After = %q, want a non-negative integer", ra)
	}
	resp.Body.Close()

	// Drain: the three admitted requests complete with 200.
	go func() {
		for {
			select {
			case g.release <- struct{}{}:
				<-g.entered
			case <-time.After(200 * time.Millisecond):
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		r := <-done
		if r.StatusCode != http.StatusOK {
			t.Errorf("admitted request got %d", r.StatusCode)
		}
		r.Body.Close()
	}
	if st := srv.batcher.Stats(); st.Shed != 1 || st.QueueDepth != 0 {
		t.Errorf("post-drain stats: shed %d, depth %d", st.Shed, st.QueueDepth)
	}
}

// TestServeLoadgenEndToEnd drives the deterministic load generator against
// the micro-batched server and the direct (-no-batch) server over the same
// snapshot and asserts (1) zero errors, (2) every batched response is
// bit-identical to the direct Predictor output, and (3) the batcher
// actually coalesced (mean batch > 1) under concurrent closed-loop load.
func TestServeLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop load test skipped in -short mode")
	}
	p, _ := testPredictor(t, slide.WithDWTA(3, 8))
	spec := LoadSpec{Scale: 1e-9, Seed: 5, Requests: 512, K: min(4, p.NumLabels()), MixedK: true}
	entries, err := BuildLoad(spec)
	if err != nil {
		t.Fatal(err)
	}

	run := func(direct bool) (LoadReport, *Server) {
		srv, ts := testServer(t, p, ServerConfig{DefaultK: 5, Direct: direct})
		report := RunLoad(context.Background(), ts.URL, nil, entries, 64)
		return report, srv
	}

	batched, bsrv := run(false)
	if batched.Errors != 0 {
		t.Fatalf("batched run: %d errors (%s)", batched.Errors, batched.FirstError)
	}
	direct, _ := run(true)
	if direct.Errors != 0 {
		t.Fatalf("direct run: %d errors (%s)", direct.Errors, direct.FirstError)
	}

	for i := range entries {
		want := p.Predict(entries[i].Indices, entries[i].Values, entries[i].K)
		got := batched.Responses[i]
		if len(got) != len(want) {
			t.Fatalf("request %d: batched %v, direct predictor %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("request %d: batched %v, direct predictor %v — not bit-identical", i, got, want)
			}
			if got[j] != direct.Responses[i][j] {
				t.Fatalf("request %d: batched %v, direct server %v", i, got, direct.Responses[i])
			}
		}
	}

	st := bsrv.batcher.Stats()
	if st.MeanBatch <= 1 {
		t.Errorf("64 concurrent closed-loop clients never coalesced: mean batch %.2f over %d batches",
			st.MeanBatch, st.Batches)
	}
	t.Logf("batched: %.0f qps (mean batch %.1f, p50 %v, p99 %v); Direct: %.0f qps; ratio %.2fx",
		batched.QPS, st.MeanBatch, batched.P50, batched.P99, direct.QPS, batched.QPS/direct.QPS)
}
