package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestBuildLoadDeterministic(t *testing.T) {
	spec := LoadSpec{Scale: 1e-9, Seed: 7, Requests: 40, K: 4, MixedK: true}
	a, err := BuildLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 {
		t.Fatalf("got %d entries", len(a))
	}
	for i := range a {
		if a[i].K != 1+i%4 {
			t.Errorf("entry %d: k = %d, want %d", i, a[i].K, 1+i%4)
		}
		if len(a[i].Indices) == 0 || len(a[i].Indices) != len(a[i].Values) {
			t.Errorf("entry %d malformed: %d indices, %d values", i, len(a[i].Indices), len(a[i].Values))
		}
		if len(a[i].Indices) != len(b[i].Indices) || a[i].K != b[i].K {
			t.Fatalf("entry %d differs between identical specs", i)
		}
		for j := range a[i].Indices {
			if a[i].Indices[j] != b[i].Indices[j] || a[i].Values[j] != b[i].Values[j] {
				t.Fatalf("entry %d payload differs between identical specs", i)
			}
		}
	}
	if _, err := BuildLoad(LoadSpec{Scale: 1e-9, Seed: 1, Requests: 0, K: 1}); err == nil {
		t.Error("Requests=0 did not error")
	}
}

// TestRunLoadClosedLoop drives the generator against a stub server that
// sheds the first few requests with 429 + Retry-After, then echoes k. The
// report must show every request completed (429s retried, not dropped),
// zero errors, and index-aligned responses.
func TestRunLoadClosedLoop(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/predict" || r.Method != http.MethodPost {
			http.Error(w, "bad route", http.StatusNotFound)
			return
		}
		if hits.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		var req loadReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(loadResp{Labels: []int32{int32(req.K)}})
	}))
	defer ts.Close()

	entries, err := BuildLoad(LoadSpec{Scale: 1e-9, Seed: 3, Requests: 30, K: 5, MixedK: true})
	if err != nil {
		t.Fatal(err)
	}
	report := RunLoad(context.Background(), ts.URL, ts.Client(), entries, 8)
	if report.Errors != 0 {
		t.Fatalf("errors: %d (%s)", report.Errors, report.FirstError)
	}
	if report.Requests != 30 || report.Retried429 != 3 {
		t.Errorf("requests %d (want 30), retried %d (want 3)", report.Requests, report.Retried429)
	}
	if report.QPS <= 0 || report.P50 <= 0 || report.P99 < report.P50 {
		t.Errorf("timing stats: qps %.1f p50 %v p99 %v", report.QPS, report.P50, report.P99)
	}
	for i, resp := range report.Responses {
		if len(resp) != 1 || resp[0] != int32(entries[i].K) {
			t.Fatalf("response %d = %v, want [%d] — misaligned", i, resp, entries[i].K)
		}
	}
}

// TestRunLoadDeadlineAndRetryCap covers the degraded-serving wire contract
// and the Retry-After cap: a server hinting "Retry-After: 100000" must not
// wedge the client (the cap bounds the wait at one second), deadline_ms
// must reach the server, 504s count as deadline sheds rather than errors,
// and degraded responses are tallied.
func TestRunLoadDeadlineAndRetryCap(t *testing.T) {
	var hits atomic.Int64
	var badDeadline atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req loadReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.DeadlineMS != 250 {
			badDeadline.Add(1)
		}
		switch hits.Add(1) {
		case 1: // hostile hint: uncapped, this would stall the run for a day
			w.Header().Set("Retry-After", "100000")
			w.WriteHeader(http.StatusTooManyRequests)
		case 3:
			http.Error(w, "deadline exceeded", http.StatusGatewayTimeout)
		default:
			json.NewEncoder(w).Encode(loadResp{Labels: []int32{int32(req.K)}, Degraded: true})
		}
	}))
	defer ts.Close()

	entries, err := BuildLoad(LoadSpec{Scale: 1e-9, Seed: 3, Requests: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	report := RunLoadOpts(context.Background(), ts.URL, ts.Client(), entries, 1,
		LoadOptions{Deadline: 250 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("run took %v — Retry-After hint was honored uncapped", elapsed)
	}
	if report.Errors != 0 {
		t.Fatalf("errors: %d (%s)", report.Errors, report.FirstError)
	}
	if report.Retried429 != 1 || report.Deadline504 != 1 || report.Degraded != 2 {
		t.Fatalf("retried %d deadline504 %d degraded %d, want 1/1/2",
			report.Retried429, report.Deadline504, report.Degraded)
	}
	if n := badDeadline.Load(); n != 0 {
		t.Fatalf("%d requests arrived without deadline_ms = 250", n)
	}
	// The shed request has no response; the served ones stay index-aligned.
	if report.Responses[1] != nil {
		t.Fatal("504-shed request recorded a response")
	}
	if report.Responses[0] == nil || report.Responses[2] == nil {
		t.Fatal("served requests missing responses")
	}
}
