package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// LoadSpec describes a deterministic load-test request set: the same spec
// always produces the same requests in the same order, so two servers (or
// two runs) are exercised identically and responses can be compared
// bit-for-bit.
type LoadSpec struct {
	// Scale and Seed parameterize the AmazonLike dataset the requests are
	// drawn from (use the demo server's values so indices are in range).
	Scale float64
	Seed  uint64
	// Requests is the total request count.
	Requests int
	// K is the top-k per request. With MixedK, request i asks for
	// 1 + i mod K instead — per-request k inside shared batches.
	K      int
	MixedK bool
}

// BuildLoad materializes the request set of a spec. Deterministic in the
// spec alone.
func BuildLoad(spec LoadSpec) ([]slide.BatchEntry, error) {
	if spec.Requests <= 0 {
		return nil, fmt.Errorf("serving: load spec needs Requests > 0")
	}
	if spec.K <= 0 {
		return nil, fmt.Errorf("serving: load spec needs K > 0")
	}
	_, test, err := slide.AmazonLike(spec.Scale, spec.Seed)
	if err != nil {
		return nil, err
	}
	if test.Len() == 0 {
		return nil, fmt.Errorf("serving: load dataset at scale %g is empty", spec.Scale)
	}
	entries := make([]slide.BatchEntry, spec.Requests)
	for i := range entries {
		s := test.Sample(i % test.Len())
		k := spec.K
		if spec.MixedK {
			k = 1 + i%spec.K
		}
		entries[i] = slide.BatchEntry{Indices: s.Indices, Values: s.Values, K: k}
	}
	return entries, nil
}

// LoadReport summarizes one closed-loop run.
type LoadReport struct {
	// Duration is wall clock for the whole run; QPS is
	// Requests/Duration.
	Duration time.Duration
	QPS      float64
	// Requests counts completed requests; Errors those that failed
	// (non-2xx other than 429, transport errors, malformed bodies).
	Requests, Errors int
	// Retried429 counts 429 responses (each is retried after the server's
	// Retry-After, so a shed request still completes — closed-loop load
	// generators must retry or overload tests undercount).
	Retried429 int
	// Reconnects counts transport-level connection failures (refused, reset,
	// torn mid-response) that were retried rather than failed. A replica
	// restarting under load drops its connections; counting those against
	// Errors would make every rolling restart look like an outage.
	Reconnects int
	// Degraded counts requests served through the degraded (sampled) path,
	// as reported by the server. Deadline504 counts requests the server
	// timed out (504) — deliberate deadline shedding under the client's
	// own budget, reported separately from Errors.
	Degraded, Deadline504 int
	// P50/P99 are successful-request latencies (final attempt only).
	P50, P99 time.Duration
	// MinVersion/MaxVersion bound the snapshot versions that served the
	// successful responses (both zero when no response carried a version)
	// — across a replica cluster, their spread is the observed version
	// skew.
	MinVersion, MaxVersion uint64
	// Responses[i] holds the labels served for request i (nil on error) —
	// index-aligned with the BuildLoad request set, for bit-identity
	// checks against a direct Predictor.
	Responses [][]int32
	// FirstError samples one failure for diagnostics.
	FirstError string
}

// loadgen wire shapes — the cmd/slide-serve /predict contract.
type loadReq struct {
	Indices    []int32   `json:"indices"`
	Values     []float32 `json:"values,omitempty"`
	K          int       `json:"k"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
}

type loadResp struct {
	Labels   []int32 `json:"labels"`
	Degraded bool    `json:"degraded,omitempty"`
	Version  uint64  `json:"version,omitempty"`
}

// LoadOptions tunes RunLoadOpts beyond the request set itself.
type LoadOptions struct {
	// Deadline, when positive, attaches a per-request service deadline
	// (the wire deadline_ms field): the server answers 504 when the
	// request cannot be served within it. 504s are not retried.
	Deadline time.Duration
}

// RunLoad drives the request set against baseURL with the given number of
// closed-loop clients: client c owns requests c, c+clients, c+2·clients, …
// and sends them sequentially, one in flight at a time. Request assignment
// and payloads are deterministic; only timing varies between runs. A nil
// client uses a transport sized so every load client keeps one connection.
func RunLoad(ctx context.Context, baseURL string, client *http.Client, entries []slide.BatchEntry, clients int) LoadReport {
	return RunLoadOpts(ctx, baseURL, client, entries, clients, LoadOptions{})
}

// RunLoadOpts is RunLoad with per-request options.
func RunLoadOpts(ctx context.Context, baseURL string, client *http.Client, entries []slide.BatchEntry, clients int, opts LoadOptions) LoadReport {
	if clients <= 0 {
		clients = 1
	}
	if clients > len(entries) {
		clients = len(entries)
	}
	if client == nil {
		tr := &http.Transport{MaxIdleConns: clients, MaxIdleConnsPerHost: clients}
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	report := LoadReport{Responses: make([][]int32, len(entries))}
	latencies := make([]time.Duration, len(entries))
	versions := make([]uint64, len(entries))
	errs := make([]string, clients)
	perErr := make([]int, clients)
	perRetry := make([]int, clients)
	perReconn := make([]int, clients)
	perDegraded := make([]int, clients)
	perDeadline := make([]int, clients)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(entries); i += clients {
				if err := ctx.Err(); err != nil {
					perErr[c]++
					if errs[c] == "" {
						errs[c] = fmt.Sprintf("request %d skipped: %v", i, err)
					}
					continue
				}
				r := postPredict(ctx, client, baseURL, entries[i], opts)
				perRetry[c] += r.retries
				perReconn[c] += r.reconnects
				if r.deadline {
					perDeadline[c]++
					continue
				}
				if r.err != nil {
					perErr[c]++
					if errs[c] == "" {
						errs[c] = fmt.Sprintf("request %d: %v", i, r.err)
					}
					continue
				}
				if r.degraded {
					perDegraded[c]++
				}
				report.Responses[i] = r.labels
				latencies[i] = r.latency
				versions[i] = r.version
			}
		}(c)
	}
	wg.Wait()
	report.Duration = time.Since(start)
	report.Requests = len(entries)
	for c := 0; c < clients; c++ {
		report.Errors += perErr[c]
		report.Retried429 += perRetry[c]
		report.Reconnects += perReconn[c]
		report.Degraded += perDegraded[c]
		report.Deadline504 += perDeadline[c]
		if report.FirstError == "" && errs[c] != "" {
			report.FirstError = errs[c]
		}
	}
	if report.Duration > 0 {
		report.QPS = float64(report.Requests-report.Errors-report.Deadline504) / report.Duration.Seconds()
	}
	ok := latencies[:0]
	for i, l := range latencies {
		if report.Responses[i] != nil {
			ok = append(ok, l)
			if v := versions[i]; v > 0 {
				if report.MinVersion == 0 || v < report.MinVersion {
					report.MinVersion = v
				}
				if v > report.MaxVersion {
					report.MaxVersion = v
				}
			}
		}
	}
	if len(ok) > 0 {
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		report.P50 = ok[int(0.5*float64(len(ok)-1)+0.5)]
		report.P99 = ok[int(0.99*float64(len(ok)-1)+0.5)]
	}
	return report
}

// maxRetryAfter caps how long a 429's Retry-After hint is honored. The
// server's hint is advice, not a contract: a misbehaving (or malicious)
// server answering "Retry-After: 100000" must not wedge a load-gen client
// for a day.
const maxRetryAfter = time.Second

// attempt is the outcome of one postPredict request (after 429 retries and
// connection-failure reconnects).
type attempt struct {
	labels     []int32
	latency    time.Duration
	retries    int
	reconnects int
	version    uint64
	degraded   bool
	deadline   bool // the server answered 504: deadline shed, not an error
	err        error
}

// Reconnect budget: a connection-refused/reset request is retried every
// reconnectPause up to maxReconnects times (~10s total) — long enough to
// ride out a replica restart, bounded so a dead server still fails the run.
const (
	maxReconnects  = 40
	reconnectPause = 250 * time.Millisecond
)

// isConnError reports whether err is a transport-level connection failure
// (refused, reset, or torn mid-exchange) — the signature of a server
// restarting, as opposed to a protocol or payload error.
func isConnError(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF)
}

// postPredict sends one /predict request, retrying 429s after the server's
// Retry-After hint (capped at maxRetryAfter, cancellable through ctx) and
// connection failures after reconnectPause (up to maxReconnects — a
// restarting replica counts as a reconnect, not an error).
func postPredict(ctx context.Context, client *http.Client, baseURL string, e slide.BatchEntry, opts LoadOptions) attempt {
	lr := loadReq{Indices: e.Indices, Values: e.Values, K: e.K}
	if opts.Deadline > 0 {
		lr.DeadlineMS = opts.Deadline.Milliseconds()
	}
	body, err := json.Marshal(lr)
	if err != nil {
		return attempt{err: err}
	}
	out := attempt{}
	for {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/predict", bytes.NewReader(body))
		if err != nil {
			out.err = err
			return out
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			if isConnError(err) && out.reconnects < maxReconnects && ctx.Err() == nil {
				out.reconnects++
				select {
				case <-time.After(reconnectPause):
					continue
				case <-ctx.Done():
					out.err = ctx.Err()
					return out
				}
			}
			out.err = err
			return out
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retryAfter := time.Millisecond
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
					retryAfter = min(time.Duration(secs)*time.Second, maxRetryAfter)
				}
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out.retries++
			select {
			case <-time.After(retryAfter):
				continue
			case <-ctx.Done():
				out.err = ctx.Err()
				return out
			}
		}
		payload, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			// Torn mid-body by a restarting server: same reconnect treatment
			// as a refused dial (the request is re-sent whole).
			if isConnError(readErr) && out.reconnects < maxReconnects && ctx.Err() == nil {
				out.reconnects++
				select {
				case <-time.After(reconnectPause):
					continue
				case <-ctx.Done():
					out.err = ctx.Err()
					return out
				}
			}
			out.err = readErr
			return out
		}
		if resp.StatusCode == http.StatusGatewayTimeout {
			out.deadline = true
			return out
		}
		if resp.StatusCode != http.StatusOK {
			out.err = fmt.Errorf("status %d: %s", resp.StatusCode, payload)
			return out
		}
		var pr loadResp
		if err := json.Unmarshal(payload, &pr); err != nil {
			out.err = err
			return out
		}
		out.labels = pr.Labels
		out.latency = time.Since(start)
		out.degraded = pr.Degraded
		out.version = pr.Version
		return out
	}
}
