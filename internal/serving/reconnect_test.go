package serving

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// TestRunLoadReconnects: a target that is down when the run starts (the
// rolling-restart window) produces reconnect retries, not errors — the
// requests complete once the server comes up within the reconnect budget.
func TestRunLoadReconnects(t *testing.T) {
	// Reserve an address, then close it so the first dials are refused.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"labels": []int32{7}})
	})
	srv := &http.Server{Handler: mux}
	defer srv.Close()
	up := make(chan error, 1)
	go func() {
		// The "restart": the port stays dead for a few reconnect pauses.
		time.Sleep(3 * reconnectPause / 2)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			up <- err
			return
		}
		up <- nil
		srv.Serve(l2)
	}()

	entries := []slide.BatchEntry{
		{Indices: []int32{1}, Values: []float32{1}, K: 1},
		{Indices: []int32{2}, Values: []float32{1}, K: 1},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report := RunLoad(ctx, "http://"+addr, nil, entries, 1)
	if err := <-up; err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	if report.Errors != 0 {
		t.Fatalf("%d errors (first: %s); restarts must not count as errors", report.Errors, report.FirstError)
	}
	if report.Reconnects == 0 {
		t.Fatal("no reconnects recorded against a down server")
	}
	for i, labels := range report.Responses {
		if len(labels) != 1 || labels[0] != 7 {
			t.Fatalf("response %d = %v after reconnect", i, labels)
		}
	}
}
