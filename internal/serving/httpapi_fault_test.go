package serving

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// gateStub is a Predictor whose exact path blocks until released, so tests
// build queue pressure deterministically. The sampled path works without a
// release — the degraded tier must make progress while the exact tier is
// saturated.
type gateStub struct {
	version uint64
	entered chan struct{}
	release chan struct{}
}

func newGateStub(version uint64) *gateStub {
	return &gateStub{version: version, entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateStub) PredictEntries(entries []slide.BatchEntry) ([][]int32, error) {
	g.entered <- struct{}{}
	<-g.release
	out := make([][]int32, len(entries))
	for i, e := range entries {
		out[i] = make([]int32, e.K)
	}
	return out, nil
}

func (g *gateStub) Predict(indices []int32, values []float32, k int) []int32 {
	return make([]int32, k)
}

func (g *gateStub) PredictBatch(samples []slide.Sample, k int) ([][]int32, error) {
	out := make([][]int32, len(samples))
	for i := range out {
		out[i] = make([]int32, k)
	}
	return out, nil
}

func (g *gateStub) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	return []int32{int32(k), -1}, nil
}

func (g *gateStub) Sampled() bool    { return true }
func (g *gateStub) Version() uint64  { return g.version }
func (g *gateStub) Steps() int64     { return 0 }
func (g *gateStub) NumLabels() int   { return 100 }
func (g *gateStub) NumFeatures() int { return 100 }

// batchCfg is the deterministic one-at-a-time pipeline shape the fault
// tests share: single worker, no coalescing, explicit queue bound.
func batchCfg(queueCap int) Config {
	return Config{MaxBatch: 1, Workers: 1, QueueCap: queueCap}
}

// postResult is one asynchronous /predict outcome.
type postResult struct {
	status int
	resp   predictResponse
}

func postAsync(t *testing.T, ts *httptest.Server, body predictRequest) chan postResult {
	t.Helper()
	ch := make(chan postResult, 1)
	go func() {
		resp, raw := postJSON(t, ts, "/predict", body)
		out := postResult{status: resp.StatusCode}
		_ = json.Unmarshal(raw, &out.resp)
		ch <- out
	}()
	return ch
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func getPath(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestPredictDeadline504: a request whose deadline_ms budget lapses while it
// waits behind a slow batch is answered 504 Gateway Timeout, not served late
// and not counted as a server error.
func TestPredictDeadline504(t *testing.T) {
	stub := newGateStub(3)
	srv, ts := testServer(t, stub, ServerConfig{DefaultK: 5, Batch: batchCfg(8)})

	req := predictRequest{Indices: []int32{1, 2}, K: kp(3)}
	a := postAsync(t, ts, req)
	<-stub.entered // the only worker is now stuck serving A

	req.DeadlineMS = 30
	b := postAsync(t, ts, req)
	waitUntil(t, "B queued", func() bool { return srv.batcher.Stats().Admitted == 2 })

	time.Sleep(60 * time.Millisecond) // let B's budget lapse while queued
	stub.release <- struct{}{}

	if ra := <-a; ra.status != http.StatusOK {
		t.Fatalf("A status %d", ra.status)
	}
	if rb := <-b; rb.status != http.StatusGatewayTimeout {
		t.Fatalf("B status %d, want 504", rb.status)
	}
	if st := srv.batcher.Stats(); st.Deadlined != 1 {
		t.Fatalf("stats %+v, want 1 deadlined", st)
	}
}

// TestDefaultDeadline504: -default-deadline applies the same budget to
// requests that carry no deadline_ms of their own.
func TestDefaultDeadline504(t *testing.T) {
	stub := newGateStub(3)
	srv, ts := testServer(t, stub, ServerConfig{
		DefaultK:        5,
		Batch:           batchCfg(8),
		DefaultDeadline: 30 * time.Millisecond,
	})

	req := predictRequest{Indices: []int32{1, 2}, K: kp(3)}
	a := postAsync(t, ts, req)
	<-stub.entered
	b := postAsync(t, ts, req) // no wire deadline: the server default applies
	waitUntil(t, "B queued", func() bool { return srv.batcher.Stats().Admitted == 2 })

	time.Sleep(60 * time.Millisecond)
	stub.release <- struct{}{}

	if ra := <-a; ra.status != http.StatusOK {
		t.Fatalf("A status %d", ra.status)
	}
	if rb := <-b; rb.status != http.StatusGatewayTimeout {
		t.Fatalf("B status %d, want 504 from the default deadline", rb.status)
	}
}

// TestPredictDegraded: under queue pressure with a degradation policy,
// responses come back 200 with "degraded":true and the correct snapshot
// version — served, not shed — and recovery restores exact
func TestPredictDegraded(t *testing.T) {
	stub := newGateStub(9)
	cfg := batchCfg(4)
	cfg.Degrade = DegradePolicy{HighWater: 0.5, LowWater: 0.25, After: 1}
	srv, ts := testServer(t, stub, ServerConfig{DefaultK: 5, Batch: cfg})

	req := predictRequest{Indices: []int32{1, 2}, K: kp(3)}
	a := postAsync(t, ts, req)
	<-stub.entered
	// Enqueue B..E one at a time so queue order (and thus flush order) is
	// deterministic — concurrent posts could land in any order.
	queued := func(n int) func() bool {
		return func() bool { return srv.batcher.Stats().QueueDepth == n }
	}
	b := postAsync(t, ts, req)
	waitUntil(t, "B queued", queued(1))
	c := postAsync(t, ts, req)
	waitUntil(t, "C queued", queued(2))
	d := postAsync(t, ts, req)
	waitUntil(t, "D queued", queued(3))
	e := postAsync(t, ts, req)
	waitUntil(t, "E queued", queued(4))

	stub.release <- struct{}{} // A completes exact
	if ra := <-a; ra.status != http.StatusOK || ra.resp.Degraded {
		t.Fatalf("A = %+v, want exact 200", ra)
	}
	// B and C flush above the high-water mark (queue depths 3 and 2 of 4):
	// degraded, correct version, served through the sampled path without a
	// release.
	for name, ch := range map[string]chan postResult{"B": b, "C": c} {
		r := <-ch
		if r.status != http.StatusOK || !r.resp.Degraded {
			t.Fatalf("%s = %+v, want degraded 200", name, r)
		}
		if r.resp.Version != 9 {
			t.Fatalf("%s version %d, want 9", name, r.resp.Version)
		}
	}
	// D flushes at the low-water mark (depth 1): back to exact, as is E.
	for _, ch := range []chan postResult{d, e} {
		<-stub.entered
		stub.release <- struct{}{}
		if r := <-ch; r.status != http.StatusOK || r.resp.Degraded {
			t.Fatalf("post-recovery = %+v, want exact 200", r)
		}
	}
}

// TestHealthzReadyQueue: readiness reflects admission-queue saturation —
// 503 while the queue is full, 200 again once it drains. Liveness stays 200
// throughout (a saturated server must not be restarted).
func TestHealthzReadyQueue(t *testing.T) {
	stub := newGateStub(1)
	srv, ts := testServer(t, stub, ServerConfig{DefaultK: 5, Batch: batchCfg(2)})

	req := predictRequest{Indices: []int32{1, 2}, K: kp(3)}
	a := postAsync(t, ts, req)
	<-stub.entered
	b := postAsync(t, ts, req)
	waitUntil(t, "B queued", func() bool { return srv.batcher.Stats().QueueDepth == 1 })
	c := postAsync(t, ts, req)
	waitUntil(t, "queue full", func() bool { return srv.batcher.Stats().QueueDepth == 2 })

	status, body := getPath(t, ts, "/healthz/ready")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "queue full") {
		t.Fatalf("ready = %d %q, want 503 naming the queue", status, body)
	}
	if status, _ := getPath(t, ts, "/healthz/live"); status != http.StatusOK {
		t.Fatalf("live = %d under saturation, want 200", status)
	}

	// Drain: each release serves one request; B and C re-enter the gate.
	stub.release <- struct{}{}
	if r := <-a; r.status != http.StatusOK {
		t.Fatalf("A status %d", r.status)
	}
	<-stub.entered
	stub.release <- struct{}{}
	if r := <-b; r.status != http.StatusOK {
		t.Fatalf("B status %d", r.status)
	}
	<-stub.entered
	stub.release <- struct{}{}
	if r := <-c; r.status != http.StatusOK {
		t.Fatalf("C status %d", r.status)
	}
	if status, _ := getPath(t, ts, "/healthz/ready"); status != http.StatusOK {
		t.Fatalf("ready = %d after drain, want 200", status)
	}
}

// TestHealthzReadyStale: readiness reflects snapshot staleness under
// -max-snapshot-stale, and a fresh Publish restores it.
func TestHealthzReadyStale(t *testing.T) {
	stub := newGateStub(1)
	srv, ts := testServer(t, stub, ServerConfig{
		DefaultK: 5, Direct: true, MaxStale: 50 * time.Millisecond,
	})

	if status, _ := getPath(t, ts, "/healthz/ready"); status != http.StatusOK {
		t.Fatalf("fresh snapshot ready = %d, want 200", status)
	}
	time.Sleep(80 * time.Millisecond)
	status, body := getPath(t, ts, "/healthz/ready")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "stale") {
		t.Fatalf("stale ready = %d %q, want 503 naming staleness", status, body)
	}
	srv.Publish(newGateStub(2))
	if status, _ := getPath(t, ts, "/healthz/ready"); status != http.StatusOK {
		t.Fatalf("republished ready = %d, want 200", status)
	}
}
