package serving

import (
	"context"
	"net/http"
	"sync"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// Multi-target (cluster) load generation: the same deterministic request
// set, spread round-robin across a fleet of replicas. Request i goes to
// targets[i % len(targets)], so every run exercises every replica with
// the same sub-stream, and the per-response snapshot versions expose the
// cluster's version skew under live replication.

// TargetReport is one replica's share of a cluster run.
type TargetReport struct {
	// URL is the replica's base URL.
	URL string
	// Report summarizes the requests routed to this replica; its
	// MinVersion/MaxVersion bound the versions this replica served.
	Report LoadReport
}

// ClusterReport aggregates a multi-target run.
type ClusterReport struct {
	// Duration is the wall clock of the whole run (targets run
	// concurrently); QPS counts completed requests across all targets.
	Duration time.Duration
	QPS      float64
	// Totals across all targets (see LoadReport for field semantics).
	Requests, Errors, Retried429 int
	Reconnects                   int
	Degraded, Deadline504        int
	// MinVersion/MaxVersion bound the snapshot versions observed across
	// every successful response on every target; MaxVersion-MinVersion is
	// the observed cluster-wide version skew.
	MinVersion, MaxVersion uint64
	// Targets holds each replica's sub-report, ordered as given.
	Targets []TargetReport
	// FirstError samples one failure for diagnostics.
	FirstError string
}

// Skew is the observed cluster-wide version spread (0 when fewer than
// two versioned responses arrived).
func (c *ClusterReport) Skew() uint64 {
	if c.MinVersion == 0 {
		return 0
	}
	return c.MaxVersion - c.MinVersion
}

// RunLoadCluster drives the request set against a fleet: request i is
// routed to targets[i % len(targets)], each target is driven by
// clients/len(targets) closed-loop clients (min 1), and all targets run
// concurrently. Assignment and payloads are deterministic in (entries,
// targets); only timing varies between runs.
func RunLoadCluster(ctx context.Context, targets []string, client *http.Client, entries []slide.BatchEntry, clients int, opts LoadOptions) ClusterReport {
	n := len(targets)
	out := ClusterReport{Targets: make([]TargetReport, n)}
	if n == 0 || len(entries) == 0 {
		return out
	}
	perTarget := make([][]slide.BatchEntry, n)
	for i, e := range entries {
		t := i % n
		perTarget[t] = append(perTarget[t], e)
	}
	perClients := max(clients/n, 1)

	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			out.Targets[t] = TargetReport{
				URL:    targets[t],
				Report: RunLoadOpts(ctx, targets[t], client, perTarget[t], perClients, opts),
			}
		}(t)
	}
	wg.Wait()
	out.Duration = time.Since(start)

	for _, tr := range out.Targets {
		r := &tr.Report
		out.Requests += r.Requests
		out.Errors += r.Errors
		out.Retried429 += r.Retried429
		out.Reconnects += r.Reconnects
		out.Degraded += r.Degraded
		out.Deadline504 += r.Deadline504
		if r.MinVersion > 0 && (out.MinVersion == 0 || r.MinVersion < out.MinVersion) {
			out.MinVersion = r.MinVersion
		}
		if r.MaxVersion > out.MaxVersion {
			out.MaxVersion = r.MaxVersion
		}
		if out.FirstError == "" && r.FirstError != "" {
			out.FirstError = r.FirstError
		}
	}
	if out.Duration > 0 {
		out.QPS = float64(out.Requests-out.Errors-out.Deadline504) / out.Duration.Seconds()
	}
	return out
}
