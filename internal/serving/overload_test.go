package serving

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBatcherOverloadShedsAndDrains fills the admission queue
// deterministically (worker blocked inside a gated backend), asserts the
// excess is shed with ErrOverloaded, and asserts the queue fully drains
// afterward — every admitted request served, no leaked waiters, goroutine
// count back to baseline.
func TestBatcherOverloadShedsAndDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()

	stub := newGatedStub(1)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{Workers: 1, MaxBatch: 1, QueueCap: 3, MaxWait: time.Millisecond})

	var wg sync.WaitGroup
	served := make(chan Result, 4)
	submit := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := b.Submit(context.Background(), entry(1))
			if err != nil {
				t.Errorf("admitted request failed: %v", err)
				return
			}
			served <- r
		}()
	}

	// One request occupies the worker (blocked in the backend), three fill
	// the queue to capacity.
	submit()
	<-stub.entered
	for i := 0; i < 3; i++ {
		submit()
	}
	waitFor(t, "queue to fill", func() bool { return b.Stats().QueueDepth == 3 })

	// The queue is full: further requests shed immediately with
	// ErrOverloaded — no blocking, no queuing.
	for i := 0; i < 5; i++ {
		if _, err := b.Submit(context.Background(), entry(1)); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("submit %d into full queue = %v, want ErrOverloaded", i, err)
		}
	}
	if st := b.Stats(); st.Shed != 5 {
		t.Errorf("Shed = %d, want 5", st.Shed)
	}

	// Release the backend: the in-flight flush and the three queued
	// requests (MaxBatch=1 → one flush each) all complete.
	for i := 0; i < 3; i++ {
		stub.release <- struct{}{}
		<-stub.entered
	}
	stub.release <- struct{}{}
	wg.Wait()
	close(served)
	got := 0
	for range served {
		got++
	}
	if got != 4 {
		t.Errorf("%d admitted requests served, want 4", got)
	}
	st := b.Stats()
	if st.QueueDepth != 0 || st.Served != 4 || st.Admitted != 4 {
		t.Errorf("post-drain stats: %+v", st)
	}

	// After the overload clears, the pipeline serves normally again.
	go func() {
		<-stub.entered
		stub.release <- struct{}{}
	}()
	if _, err := b.Submit(context.Background(), entry(2)); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}

	// Shutdown leaks nothing: goroutine count returns to the pre-batcher
	// baseline (GC/scheduler noise tolerated briefly).
	b.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
