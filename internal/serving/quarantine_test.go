package serving

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// checkedStub is a stubPredictor that can report non-finite weights — the
// shape the quarantine path sees from slide.Predictor / replicate.Served.
type checkedStub struct {
	*stubPredictor
	err error
}

func (c *checkedStub) CheckFinite() error { return c.err }

// TestPublishQuarantinesNonFinite: a candidate snapshot failing its finite
// check is refused — the pipeline keeps serving the last good version,
// /stats counts the quarantine with its reason, and /healthz/ready reports
// unready until a clean snapshot lands.
func TestPublishQuarantinesNonFinite(t *testing.T) {
	srv := NewServer(&stubPredictor{version: 1}, ServerConfig{DefaultK: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()
	mgr := srv.Manager()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready before quarantine = %d, want 200", code)
	}

	poisonErr := errors.New("network: snapshot step 20: layer: non-finite parameter: hidden bias[0]")
	mgr.Publish(&checkedStub{stubPredictor: &stubPredictor{version: 2}, err: poisonErr})

	if got := mgr.Current().Version(); got != 1 {
		t.Fatalf("current version %d after quarantine, want the last good 1", got)
	}
	if mgr.Quarantined() != 1 || !mgr.QuarantinedLast() {
		t.Fatalf("quarantined=%d last=%v, want 1/true", mgr.Quarantined(), mgr.QuarantinedLast())
	}
	if code, body := get("/healthz/ready"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "quarantined") {
		t.Fatalf("ready during quarantine = %d %q, want 503 naming the quarantine", code, body)
	}
	code, body := get("/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d", code)
	}
	var stats struct {
		Quarantined      uint64 `json:"quarantined"`
		QuarantineReason string `json:"quarantine_reason"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Quarantined != 1 || !strings.Contains(stats.QuarantineReason, "non-finite") {
		t.Fatalf("stats quarantine = %+v", stats)
	}

	// A clean candidate (checker passing) swaps in and clears readiness.
	mgr.Publish(&checkedStub{stubPredictor: &stubPredictor{version: 3}})
	if got := mgr.Current().Version(); got != 3 {
		t.Fatalf("current version %d after clean publish, want 3", got)
	}
	if mgr.QuarantinedLast() {
		t.Fatal("QuarantinedLast still set after a clean swap")
	}
	if code, _ := get("/healthz/ready"); code != http.StatusOK {
		t.Fatalf("ready after clean publish = %d, want 200", code)
	}
	// The count is cumulative history, not state.
	if mgr.Quarantined() != 1 {
		t.Fatalf("quarantined count %d, want 1", mgr.Quarantined())
	}
}
