package serving

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/slide-cpu/slide/slide"
)

// TestBatcherSnapshotSwapUnderLoad hammers the batcher with 64 concurrent
// clients while the snapshot manager hot-swaps versions mid-flight, and
// asserts the torn/stale-free contract: every response carries the version
// of a published snapshot, and its labels are exactly what that snapshot's
// direct Predict returns for the request — a response can never mix weights
// from two snapshots or come from a version that was never published.
// Run under -race this also proves the swap path is data-race clean.
func TestBatcherSnapshotSwapUnderLoad(t *testing.T) {
	train, test, err := slide.AmazonLike(1e-9, 17)
	if err != nil {
		t.Fatal(err)
	}
	m, err := slide.New(train.Features(), 16, train.NumLabels(),
		slide.WithDWTA(3, 8),
		slide.WithLearningRate(0.05),
		slide.WithWorkers(1),
		slide.WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot the model at several training stages. Each version answers
	// at least some requests differently, so serving from a torn or
	// never-published predictor cannot masquerade as a valid response.
	const versions = 4
	preds := make([]*slide.Predictor, versions)
	for v := 0; v < versions; v++ {
		if _, err := m.TrainEpoch(train, 32); err != nil {
			t.Fatal(err)
		}
		preds[v] = m.Snapshot()
	}

	// Fixed request set with mixed k, and the expected exact output of
	// every (version, request) pair.
	maxK := min(5, preds[0].NumLabels())
	nReq := 16
	if nReq > test.Len() {
		nReq = test.Len()
	}
	type req struct {
		entry slide.BatchEntry
	}
	reqs := make([]req, nReq)
	expected := make([][][]int32, versions)
	for v := range expected {
		expected[v] = make([][]int32, nReq)
	}
	for i := 0; i < nReq; i++ {
		s := test.Sample(i)
		reqs[i] = req{entry: slide.BatchEntry{Indices: s.Indices, Values: s.Values, K: 1 + i%maxK}}
		for v := 0; v < versions; v++ {
			expected[v][i] = preds[v].Predict(s.Indices, s.Values, 1+i%maxK)
		}
	}
	byVersion := make(map[uint64]int, versions)
	for v, p := range preds {
		byVersion[p.Version()] = v
	}

	mgr := NewSnapshotManager(preds[0])
	b := NewBatcher(mgr, Config{Workers: 2, MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueCap: 1024})
	defer b.Close()

	// Publisher: swap snapshots as fast as the clients can observe them.
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mgr.Publish(preds[i%versions])
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const clients = 64
	const perClient = 24
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				i := (c + j) % nReq
				r, err := b.Submit(context.Background(), reqs[i].entry)
				if err != nil {
					t.Errorf("client %d request %d: %v", c, j, err)
					return
				}
				v, ok := byVersion[r.Version]
				if !ok {
					t.Errorf("client %d: response claims never-published version %d", c, r.Version)
					return
				}
				want := expected[v][i]
				if len(r.Labels) != len(want) {
					t.Errorf("client %d req %d: version %d served %v, its direct Predict gives %v",
						c, i, r.Version, r.Labels, want)
					return
				}
				for x := range want {
					if r.Labels[x] != want[x] {
						t.Errorf("client %d req %d: version %d served %v, its direct Predict gives %v — torn or stale snapshot",
							c, i, r.Version, r.Labels, want)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()

	st := b.Stats()
	if st.Served != clients*perClient {
		t.Errorf("served %d of %d requests", st.Served, clients*perClient)
	}
	if mgr.Swaps() == 0 {
		t.Error("publisher never swapped — test exercised nothing")
	}
	t.Logf("served %d requests in %d batches (mean %.2f) across %d snapshot swaps",
		st.Served, st.Batches, st.MeanBatch, mgr.Swaps())
}
