package serving

import "sync"

// DegradePolicy configures tiered degradation: under sustained overload the
// pipeline downshifts exact batched prediction to per-entry sampled (LSH)
// prediction — cheaper by the paper's whole thesis, since the active set is
// a small fraction of the output layer — *before* the queue fills and
// shedding starts. Degraded responses are correct top-k over the sampled
// candidate set, marked Degraded so clients and stats can tell; the
// exact-before-sampled-before-shed ordering means accuracy is the first
// thing sacrificed to load and availability the last.
//
// The mode is driven by admission-queue occupancy with hysteresis: it
// engages after After consecutive flush-time observations at or above
// HighWater×QueueCap, and disengages after After consecutive observations
// at or below LowWater×QueueCap. The zero value disables degradation.
type DegradePolicy struct {
	// HighWater is the queue-occupancy fraction (of QueueCap, in (0,1])
	// at or above which the pipeline counts an overload observation.
	// Zero disables the policy.
	HighWater float64
	// LowWater is the occupancy fraction at or below which the pipeline
	// counts a recovery observation (default HighWater/2).
	LowWater float64
	// After is the consecutive observations required to switch modes in
	// either direction (default 3) — hysteresis so one bursty flush
	// doesn't flap the mode.
	After int
}

func (p DegradePolicy) enabled() bool { return p.HighWater > 0 }

// degradeState is the hysteresis accumulator, shared by all flush workers.
type degradeState struct {
	mu       sync.Mutex
	on       bool
	hiStreak int
	loStreak int
	switches uint64 // mode transitions (both directions)
}

// observe folds one flush-time queue-depth reading into the hysteresis
// state and reports whether degraded mode is on.
func (d *degradeState) observe(depth, qcap int, p DegradePolicy) bool {
	if !p.enabled() {
		return false
	}
	occ := float64(depth) / float64(qcap)
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case occ >= p.HighWater:
		d.hiStreak++
		d.loStreak = 0
		if !d.on && d.hiStreak >= p.After {
			d.on = true
			d.switches++
		}
	case occ <= p.LowWater:
		d.loStreak++
		d.hiStreak = 0
		if d.on && d.loStreak >= p.After {
			d.on = false
			d.switches++
		}
	default:
		d.hiStreak = 0
		d.loStreak = 0
	}
	return d.on
}

// mode reports the current mode without recording an observation.
func (d *degradeState) mode() (on bool, switches uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.on, d.switches
}
