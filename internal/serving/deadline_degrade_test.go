package serving

import (
	"context"
	"errors"
	"testing"
	"time"
)

// sampledStub is a stubPredictor whose sampled path works: degraded
// responses are [version, k, -1], distinguishable from the exact path's
// [version, k]. Only the exact path is gated, so degraded flushes complete
// without a release — exactly the property degradation is for.
type sampledStub struct{ *stubPredictor }

func (s sampledStub) Sampled() bool { return true }

func (s sampledStub) PredictSampled(indices []int32, values []float32, k int) ([]int32, error) {
	return []int32{int32(s.version), int32(k), -1}, nil
}

// deadlineOnlyCtx carries a deadline without ever firing Done — the shape
// of a deadline that arrives as request metadata (the wire deadline_ms
// field) rather than as transport cancellation. It exercises the
// flush-time deadline check, which the cancelling-context path would
// otherwise always win.
type deadlineOnlyCtx struct {
	context.Context
	d time.Time
}

func (c deadlineOnlyCtx) Deadline() (time.Time, bool) { return c.d, true }

func TestSubmitExpiredContext(t *testing.T) {
	mgr := NewSnapshotManager(&stubPredictor{version: 1})
	b := NewBatcher(mgr, Config{MaxBatch: 1, Workers: 1})
	defer b.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := b.Submit(ctx, entry(3))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired-context Submit err = %v, want ErrDeadline", err)
	}
	st := b.Stats()
	if st.Deadlined != 1 || st.Admitted != 0 {
		t.Fatalf("stats %+v, want 1 deadlined, 0 admitted", st)
	}
}

// TestFlushRejectsPassedDeadline: a request whose deadline expires while it
// waits behind a slow flush fails with ErrDeadline at flush time, without
// touching the backend.
func TestFlushRejectsPassedDeadline(t *testing.T) {
	stub := newGatedStub(1)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{MaxBatch: 1, Workers: 1, QueueCap: 8})
	defer b.Close()

	first := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), entry(1))
		first <- err
	}()
	<-stub.entered // the worker is now stuck inside the backend

	second := make(chan error, 1)
	go func() {
		ctx := deadlineOnlyCtx{context.Background(), time.Now().Add(20 * time.Millisecond)}
		_, err := b.Submit(ctx, entry(2))
		second <- err
	}()
	waitFor(t, "second request queued", func() bool { return b.Stats().Admitted == 2 })

	time.Sleep(40 * time.Millisecond) // let the queued deadline lapse
	stub.release <- struct{}{}        // unblock the first flush

	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
	if err := <-second; !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued-past-deadline err = %v, want ErrDeadline", err)
	}
	st := b.Stats()
	if st.Deadlined != 1 || st.Served != 1 {
		t.Fatalf("stats %+v, want 1 deadlined + 1 served", st)
	}
}

// TestAwaitMapsDeadlineExceeded: when the submitting context itself times
// out while queued, the caller gets ErrDeadline (counted as a deadline
// miss), not a bare context error counted as a cancellation.
func TestAwaitMapsDeadlineExceeded(t *testing.T) {
	stub := newGatedStub(1)
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{MaxBatch: 1, Workers: 1, QueueCap: 8})
	defer b.Close()

	first := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), entry(1))
		first <- err
	}()
	<-stub.entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.Submit(ctx, entry(2))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("timed-out Submit err = %v, want ErrDeadline", err)
	}
	st := b.Stats()
	if st.Deadlined != 1 || st.Canceled != 0 {
		t.Fatalf("stats %+v, want the timeout counted deadlined, not canceled", st)
	}
	stub.release <- struct{}{}
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
}

// TestDegradedBeforeShed is the tiered-degradation scenario: under queue
// pressure the pipeline downshifts to sampled prediction (marked Degraded,
// still the correct snapshot version) instead of shedding; when pressure
// clears it returns to exact; and only a full queue sheds.
func TestDegradedBeforeShed(t *testing.T) {
	stub := newGatedStub(7)
	mgr := NewSnapshotManager(sampledStub{stub})
	b := NewBatcher(mgr, Config{
		MaxBatch: 1, Workers: 1, QueueCap: 4,
		Degrade: DegradePolicy{HighWater: 0.5, LowWater: 0.25, After: 1},
	})
	defer b.Close()

	type outcome struct {
		r   Result
		err error
	}
	submit := func() chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			r, err := b.Submit(context.Background(), entry(3))
			ch <- outcome{r, err}
		}()
		return ch
	}

	// A occupies the only worker inside the gated exact path (queue was
	// empty at its flush: not degraded). B, C, D stack up behind it, one at
	// a time so queue order — and thus flush order — is deterministic.
	a := submit()
	<-stub.entered
	queued := func(n int) func() bool {
		return func() bool { return b.Stats().QueueDepth == n }
	}
	bb := submit()
	waitFor(t, "B queued", queued(1))
	c := submit()
	waitFor(t, "C queued", queued(2))
	d := submit()
	waitFor(t, "D queued", queued(3))

	// A fourth request fills the queue; the next one past capacity sheds.
	fill := submit()
	waitFor(t, "queue full", queued(4))
	if _, err := b.Submit(context.Background(), entry(3)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-full submit err = %v, want ErrOverloaded", err)
	}

	stub.release <- struct{}{} // A completes exact
	ra := <-a
	if ra.err != nil || ra.r.Degraded {
		t.Fatalf("A = %+v, want exact success", ra)
	}

	// B flushes with depth 3 >= high water: degraded mode engages, and B is
	// served through the sampled path without needing a release.
	rb := <-bb
	if rb.err != nil {
		t.Fatalf("B failed: %v", rb.err)
	}
	if !rb.r.Degraded {
		t.Fatal("B served exact under pressure, want degraded")
	}
	if len(rb.r.Labels) != 3 || rb.r.Labels[0] != 7 || rb.r.Labels[2] != -1 {
		t.Fatalf("B labels %v, want the sampled-path shape for version 7", rb.r.Labels)
	}
	if rb.r.Version != 7 {
		t.Fatalf("B version %d, want 7", rb.r.Version)
	}
	rc := <-c
	if rc.err != nil || !rc.r.Degraded {
		t.Fatalf("C = %+v, want degraded success", rc)
	}

	// D flushes with depth 1 <= low water (0.25*4): mode disengages and D
	// goes back through the gated exact path, as does the filler behind it.
	<-stub.entered
	stub.release <- struct{}{}
	rd := <-d
	if rd.err != nil || rd.r.Degraded {
		t.Fatalf("D = %+v, want exact success after recovery", rd)
	}
	<-stub.entered
	stub.release <- struct{}{}
	rf := <-fill
	if rf.err != nil || rf.r.Degraded {
		t.Fatalf("filler = %+v, want exact success after recovery", rf)
	}

	st := b.Stats()
	if st.DegradedServed < 2 {
		t.Fatalf("stats %+v, want >= 2 degraded-served", st)
	}
	if st.Shed != 1 {
		t.Fatalf("stats %+v, want exactly the one over-full shed", st)
	}
	if st.DegradeSwitches < 2 {
		t.Fatalf("stats %+v, want mode to have engaged and disengaged", st)
	}
}

func TestDegradeHysteresis(t *testing.T) {
	p := DegradePolicy{HighWater: 0.5, LowWater: 0.25, After: 2}
	var d degradeState
	steps := []struct {
		depth int
		want  bool
	}{
		{4, false}, // hi 1/2
		{1, false}, // lo resets hi
		{4, false}, // hi 1/2
		{4, true},  // hi 2/2 → on
		{1, true},  // lo 1/2
		{3, true},  // middle resets both
		{1, true},  // lo 1/2
		{1, false}, // lo 2/2 → off
	}
	for i, s := range steps {
		if got := d.observe(s.depth, 8, p); got != s.want {
			t.Fatalf("step %d (depth %d): mode %v, want %v", i, s.depth, got, s.want)
		}
	}
	if _, switches := d.mode(); switches != 2 {
		t.Fatalf("switches = %d, want 2", switches)
	}
}

func TestSnapshotAge(t *testing.T) {
	mgr := NewSnapshotManager(&stubPredictor{version: 1})
	if age := mgr.Age(); age < 0 || age > time.Minute {
		t.Fatalf("fresh snapshot age %v", age)
	}
	before := mgr.Age()
	time.Sleep(5 * time.Millisecond)
	if mgr.Age() <= before {
		t.Fatal("age did not advance")
	}
	mgr.Publish(&stubPredictor{version: 2})
	if mgr.Age() > 5*time.Millisecond {
		t.Fatalf("age %v after publish, want reset", mgr.Age())
	}
}

// TestDegradedFallsBackWithoutSampling: a predictor without tables never
// degrades — pressure goes straight to the exact path (and eventually
// shedding), never to a failing sampled call.
func TestDegradedFallsBackWithoutSampling(t *testing.T) {
	stub := newGatedStub(1) // Sampled() == false
	mgr := NewSnapshotManager(stub)
	b := NewBatcher(mgr, Config{
		MaxBatch: 1, Workers: 1, QueueCap: 4,
		Degrade: DegradePolicy{HighWater: 0.25, After: 1},
	})
	defer b.Close()

	done := make(chan Result, 3)
	for i := 0; i < 3; i++ {
		go func() {
			r, err := b.Submit(context.Background(), entry(2))
			if err != nil {
				t.Errorf("submit: %v", err)
			}
			done <- r
		}()
	}
	for i := 0; i < 3; i++ {
		<-stub.entered
		stub.release <- struct{}{}
	}
	for i := 0; i < 3; i++ {
		if r := <-done; r.Degraded {
			t.Fatal("degraded response from a predictor without sampling")
		}
	}
	if st := b.Stats(); st.DegradedServed != 0 {
		t.Fatalf("stats %+v, want no degraded serves", st)
	}
}
