package platform

import "runtime"

// Topology describes the cache hierarchy the sharded output layer sizes its
// per-shard arenas against: shard-private working sets should fit L2, and
// the sum of all shards' hot state should stay within the shared L3 so
// scatter-gather merges hit cache instead of DRAM.
type Topology struct {
	// CPUs is the number of schedulable logical CPUs.
	CPUs int
	// L2Bytes is the per-core private L2 capacity.
	L2Bytes int64
	// L3Bytes is the shared last-level cache capacity.
	L3Bytes int64
}

// DetectTopology reports the host cache topology. On Linux it reads the
// sysfs cache hierarchy of cpu0; elsewhere (or when sysfs is unreadable,
// e.g. minimal containers) it falls back to the conservative Host()
// descriptor: 1 MB L2 and Host().L3MB of L3. The values steer arena sizing
// and the costmodel's sharding crossover — they are never correctness-
// relevant, so a wrong fallback only mis-tunes, never breaks.
func DetectTopology() Topology {
	t := Topology{
		CPUs:    runtime.NumCPU(),
		L2Bytes: 1 << 20,
		L3Bytes: int64(Host().L3MB * (1 << 20)),
	}
	if l2, l3, ok := sysfsCacheSizes(); ok {
		if l2 > 0 {
			t.L2Bytes = l2
		}
		if l3 > 0 {
			t.L3Bytes = l3
		}
	}
	return t
}
