package platform

import "testing"

func TestPaperPlatformSpecs(t *testing.T) {
	// §3 of the paper: CLX is dual 24-core (96 threads with SMT), CPX is
	// 4x28-core (224 threads), both AVX-512; only CPX has BF16.
	if CLX.Cores != 48 || CLX.Threads() != 96 {
		t.Errorf("CLX cores/threads = %d/%d", CLX.Cores, CLX.Threads())
	}
	if CPX.Cores != 112 || CPX.Threads() != 224 {
		t.Errorf("CPX cores/threads = %d/%d", CPX.Cores, CPX.Threads())
	}
	if CLX.HasBF16 {
		t.Error("CLX must not report BF16 support")
	}
	if !CPX.HasBF16 {
		t.Error("CPX must report BF16 support")
	}
	if CLX.VectorLanesF32 != 16 || CPX.VectorLanesF32 != 16 {
		t.Error("AVX-512 platforms must report 16 f32 lanes")
	}
	if CLX.Kind != CPU || V100.Kind != GPU {
		t.Error("platform kinds wrong")
	}
	if V100.TFLOPSF32 <= 0 || V100.HBMGBs <= 0 {
		t.Error("V100 throughput attributes missing")
	}
	// CPX has strictly more aggregate bandwidth and compute than CLX.
	if CPX.DRAMGBs <= CLX.DRAMGBs {
		t.Error("CPX should out-bandwidth CLX (4 sockets vs 2)")
	}
}

func TestHostPlatform(t *testing.T) {
	h := Host()
	if h.Cores <= 0 || h.ClockGHz <= 0 || h.DRAMGBs <= 0 {
		t.Errorf("host descriptor incomplete: %+v", h)
	}
	if h.Kind != CPU {
		t.Error("host must be a CPU")
	}
}

func TestHostReportsDetectedFeatures(t *testing.T) {
	h := Host()
	f := HostFeatures()
	// Lane width mirrors detection: 16 under AVX-512, 8 under AVX2-only,
	// and the portable tier's ILP-equivalent 4 when nothing was detected
	// (strictly below a real AVX2 host, preserving roofline ordering).
	want := f.VectorLanesF32()
	if want == 0 {
		want = 4
	}
	if h.VectorLanesF32 != want {
		t.Errorf("Host lanes = %d, detected %d", h.VectorLanesF32, want)
	}
	if h.HasBF16 != f.AVX512BF16 {
		t.Errorf("Host.HasBF16 = %v, detected %v", h.HasBF16, f.AVX512BF16)
	}
	if f.HasAVX512Tier() && h.VectorLanesF32 != 16 {
		t.Error("AVX-512 host must report 16 float32 lanes")
	}
}
