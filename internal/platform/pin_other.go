//go:build !linux

package platform

// PinThread is a no-op outside Linux: affinity syscalls are platform-
// specific and pinning is only a performance hint.
func PinThread(cpu int) error { return nil }
