//go:build !linux

package platform

// sysfsCacheSizes is the non-Linux stub: no sysfs cache hierarchy, so
// DetectTopology keeps its conservative defaults.
func sysfsCacheSizes() (l2, l3 int64, ok bool) { return 0, 0, false }
