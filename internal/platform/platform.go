// Package platform describes the paper's three evaluation machines (§3):
// the Cascade Lake (CLX) and Cooper Lake (CPX) Xeon servers and the NVIDIA
// V100 GPU, plus the host the reproduction actually runs on.
//
// We cannot execute on the paper's testbed, so cross-platform rows of
// Table 2 / Figure 6 are produced by the roofline estimator in
// internal/costmodel parameterized by these descriptors; same-hardware
// ratios are measured directly on Host. The numbers below are public
// specifications (core counts, clocks, channel counts) — see DESIGN.md
// "Substitutions".
package platform

import (
	"runtime"

	"github.com/slide-cpu/slide/internal/cpufeat"
)

// Kind distinguishes processor families.
type Kind int

const (
	// CPU is an x86 multicore.
	CPU Kind = iota
	// GPU is a CUDA accelerator.
	GPU
)

// Platform models the throughput-relevant attributes of one machine.
type Platform struct {
	Name string
	Kind Kind

	// CPU attributes.
	Cores          int
	ThreadsPerCore int
	ClockGHz       float64
	// VectorLanesF32 is the SIMD width in float32 lanes (16 for AVX-512).
	VectorLanesF32 int
	// FMAPorts is the number of 512-bit FMA units per core (2 on these
	// Xeons).
	FMAPorts int
	// HasBF16 marks AVX512-BF16 support (CPX only among the paper's CPUs).
	HasBF16 bool
	// L3MB is the last-level cache size in megabytes.
	L3MB float64
	// DRAMGBs is the aggregate DRAM bandwidth in GB/s.
	DRAMGBs float64

	// GPU attributes.
	// TFLOPSF32 is peak dense float32 throughput.
	TFLOPSF32 float64
	// HBMGBs is device memory bandwidth in GB/s.
	HBMGBs float64
	// KernelLaunchUs is the per-kernel launch overhead in microseconds.
	KernelLaunchUs float64
}

// Threads returns the hardware thread count (cores × SMT).
func (p Platform) Threads() int { return p.Cores * p.ThreadsPerCore }

// CLX is the paper's Cascade Lake server: dual 24-core Xeon Platinum 8260L
// at 2.4 GHz, AVX-512 without BF16, 36 MB L3, 6 DDR4-2933 channels per
// socket (§3).
var CLX = Platform{
	Name: "CLX", Kind: CPU,
	Cores: 48, ThreadsPerCore: 2, ClockGHz: 2.4,
	VectorLanesF32: 16, FMAPorts: 2, HasBF16: false,
	L3MB: 36, DRAMGBs: 2 * 6 * 23.5, // 2 sockets × 6 ch × 23.5 GB/s
}

// CPX is the paper's Cooper Lake server: four 28-core sockets (112 cores)
// with AVX512-BF16, 39 MB L3 (§3).
var CPX = Platform{
	Name: "CPX", Kind: CPU,
	Cores: 112, ThreadsPerCore: 2, ClockGHz: 2.5,
	VectorLanesF32: 16, FMAPorts: 2, HasBF16: true,
	L3MB: 39, DRAMGBs: 4 * 6 * 23.5,
}

// V100 is the paper's GPU baseline: NVIDIA Tesla V100 32GB (§5.2).
var V100 = Platform{
	Name: "V100", Kind: GPU,
	TFLOPSF32: 15.7, HBMGBs: 900, KernelLaunchUs: 10,
}

// Host describes the machine this process runs on, for measured rows. SIMD
// attributes come from CPUID feature detection (internal/cpufeat): the lane
// count is the widest float32 SIMD width the silicon can actually drive and
// HasBF16 reports real AVX512-BF16 support, so same-hardware roofline rows
// in internal/costmodel are parameterized by measured capability. On hosts
// without any detected vector extension (including non-amd64 builds) the
// lane count falls back to 4: the portable Go tier's unrolled independent
// accumulator chains sustain a measured ~2-3x over scalar (ILP, not SIMD),
// and the fallback must stay below a real AVX2 host's 8 lanes so roofline
// ordering between hosts is preserved.
//
// Clock, cache and bandwidth remain conservative estimates: they are not
// discoverable portably and only scale the roofline's absolute numbers, not
// the same-hardware ratios.
func Host() Platform {
	f := cpufeat.Detect()
	lanes := f.VectorLanesF32()
	if lanes == 0 {
		lanes = 4 // portable Go tier: ILP-equivalent width, below real AVX2
	}
	return Platform{
		Name: "Host", Kind: CPU,
		Cores: runtime.NumCPU(), ThreadsPerCore: 1, ClockGHz: 2.5,
		VectorLanesF32: lanes, FMAPorts: 1, HasBF16: f.AVX512BF16,
		L3MB: 16, DRAMGBs: 20,
	}
}

// HostFeatures returns the detected SIMD feature set backing Host's vector
// attributes (for reports that want to print the capability line).
func HostFeatures() cpufeat.Features { return cpufeat.Detect() }
