//go:build linux

package platform

import (
	"os"
	"strconv"
	"strings"
)

// sysfsCacheSizes reads cpu0's cache hierarchy from sysfs. Each indexN
// directory describes one cache level; "level" + "type" identify it and
// "size" is a humanized byte count ("1024K", "32M"). Returns ok=false when
// the hierarchy is absent (containers without /sys, non-x86 layouts).
func sysfsCacheSizes() (l2, l3 int64, ok bool) {
	const base = "/sys/devices/system/cpu/cpu0/cache"
	entries, err := os.ReadDir(base)
	if err != nil {
		return 0, 0, false
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "index") {
			continue
		}
		dir := base + "/" + e.Name()
		level := readTrim(dir + "/level")
		typ := readTrim(dir + "/type")
		if typ == "Instruction" {
			continue
		}
		size := parseCacheSize(readTrim(dir + "/size"))
		switch level {
		case "2":
			l2 = size
		case "3":
			l3 = size
		}
	}
	return l2, l3, l2 > 0 || l3 > 0
}

func readTrim(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}

// parseCacheSize converts sysfs's "1024K" / "32M" notation to bytes.
func parseCacheSize(s string) int64 {
	if s == "" {
		return 0
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n * mult
}
