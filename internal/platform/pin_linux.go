//go:build linux

package platform

import (
	"syscall"
	"unsafe"
)

// PinThread binds the calling OS thread to logical CPU cpu via
// sched_setaffinity(2). Callers must hold the thread with
// runtime.LockOSThread first, or the Go scheduler may migrate the goroutine
// off the pinned thread. Pinning keeps each output-layer shard's arena and
// LSH tables resident in one core's private caches instead of bouncing
// between cores; it is a performance hint — on failure (restricted cpusets,
// seccomp) the caller should proceed unpinned.
func PinThread(cpu int) error {
	if cpu < 0 || cpu >= 1024 {
		return syscall.EINVAL
	}
	// A CPU_SET mask large enough for 1024 CPUs (the glibc default).
	var mask [128]byte
	mask[cpu>>3] = 1 << (uint(cpu) & 7)
	_, _, errno := syscall.Syscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}
