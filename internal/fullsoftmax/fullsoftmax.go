// Package fullsoftmax implements the dense full-softmax baseline — the
// stand-in for the paper's "TF FullSoftmax" TensorFlow runs (§5).
//
// Unlike the SLIDE engine, which parallelizes per sample over a tiny active
// set, this trainer executes the classical dense schedule: batch-level
// matrix products tiled over output neurons, every logit computed, every
// parameter updated every batch. It shares the layer storage and the simd
// kernels with the optimized code so that the baseline benefits from the
// same vectorization — the measured gap is therefore the algorithmic gap
// (sampled vs full softmax), exactly the comparison in Figure 6/Table 2.
package fullsoftmax

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/slide-cpu/slide/internal/layer"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// Config describes the dense baseline. The architecture mirrors
// network.Config; training is always FP32 (the paper reports the TF
// baseline without mixed precision — AMP did not help, §5).
type Config struct {
	InputDim         int
	HiddenDim        int
	OutputDim        int
	HiddenActivation layer.Activation

	LR, Beta1, Beta2, Eps float64

	// Workers is the tile/sample parallelism (default GOMAXPROCS).
	Workers int
	// SampleChunk bounds the B'×OutputDim logits buffer (default 128
	// samples per chunk).
	SampleChunk int

	Seed uint64
}

// Validate fills defaults and reports errors.
func (c *Config) Validate() error {
	if c.InputDim <= 0 || c.HiddenDim <= 0 || c.OutputDim <= 0 {
		return fmt.Errorf("fullsoftmax: dimensions must be positive (got %d/%d/%d)",
			c.InputDim, c.HiddenDim, c.OutputDim)
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.Beta1 == 0 {
		c.Beta1 = 0.9
	}
	if c.Beta2 == 0 {
		c.Beta2 = 0.999
	}
	if c.Eps == 0 {
		c.Eps = 1e-8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SampleChunk <= 0 {
		c.SampleChunk = 128
	}
	return nil
}

// Trainer is the dense full-softmax trainer.
type Trainer struct {
	cfg    Config
	hidden *layer.ColLayer
	output *layer.RowLayer
	step   int64

	// chunk scratch
	h      [][]float32 // SampleChunk × HiddenDim activations
	logits []float32   // SampleChunk × OutputDim, row-major per sample
	dh     [][]float32 // per-worker partial input gradients: Workers × (SampleChunk × HiddenDim)
	rowBuf [][]float32 // per-worker row expansion buffers
	evalH  []float32
}

// BatchStats reports one TrainBatch call.
type BatchStats struct {
	Samples int
	Loss    float64
}

// New builds a dense baseline trainer.
func New(cfg *Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hOpts := layer.Options{Locked: true, Seed: cfg.Seed ^ 0xA5A5}
	oOpts := layer.Options{Seed: cfg.Seed ^ 0x5A5A}
	t := &Trainer{
		cfg:    *cfg,
		hidden: layer.NewColLayer(cfg.InputDim, cfg.HiddenDim, cfg.HiddenActivation, hOpts),
		output: layer.NewRowLayer(cfg.HiddenDim, cfg.OutputDim, oOpts),
		logits: make([]float32, cfg.SampleChunk*cfg.OutputDim),
		evalH:  make([]float32, cfg.HiddenDim),
	}
	t.h = make([][]float32, cfg.SampleChunk)
	for i := range t.h {
		t.h[i] = make([]float32, cfg.HiddenDim)
	}
	t.dh = make([][]float32, cfg.Workers)
	t.rowBuf = make([][]float32, cfg.Workers)
	for w := range t.dh {
		t.dh[w] = make([]float32, cfg.SampleChunk*cfg.HiddenDim)
		t.rowBuf[w] = make([]float32, cfg.HiddenDim)
	}
	return t, nil
}

// Config returns the validated configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Hidden returns the hidden layer.
func (t *Trainer) Hidden() *layer.ColLayer { return t.hidden }

// Output returns the output layer.
func (t *Trainer) Output() *layer.RowLayer { return t.output }

// Step returns the optimizer step count.
func (t *Trainer) Step() int64 { return t.step }

// parallelFor splits [0,n) into contiguous ranges across workers.
func parallelFor(n, workers int, f func(lo, hi int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return
	}
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// TrainBatch runs one dense gradient step: full forward, full softmax, full
// backward, dense ADAM over every output row.
func (t *Trainer) TrainBatch(b sparse.Batch) BatchStats {
	stats := BatchStats{Samples: b.Len()}
	ks := simd.Active() // one dispatch resolution for the whole batch
	for lo := 0; lo < b.Len(); lo += t.cfg.SampleChunk {
		hi := min(lo+t.cfg.SampleChunk, b.Len())
		stats.Loss += t.chunk(ks, b, lo, hi)
	}
	t.step++
	p := simd.NewAdamParams(t.cfg.LR, t.cfg.Beta1, t.cfg.Beta2, t.cfg.Eps, t.step)
	t.hidden.ApplyAdam(ks, p, t.cfg.Workers)
	t.output.ApplyAdamAll(ks, p, t.cfg.Workers)
	return stats
}

// chunk processes samples [lo,hi) of the batch and returns the summed loss.
func (t *Trainer) chunk(ks *simd.Kernels, b sparse.Batch, lo, hi int) float64 {
	n := hi - lo
	out := t.cfg.OutputDim
	hd := t.cfg.HiddenDim

	// 1. Hidden forward, parallel over samples.
	parallelFor(n, t.cfg.Workers, func(s, e int) {
		for i := s; i < e; i++ {
			t.hidden.Forward(ks, b.Sample(lo+i), t.h[i])
		}
	})

	// 2. All logits, tiled over output neurons: streams each weight row
	// once across the whole chunk (the matmul access pattern).
	parallelFor(out, t.cfg.Workers, func(s, e int) {
		for id := s; id < e; id++ {
			for i := 0; i < n; i++ {
				t.logits[i*out+id] = t.output.Logit(ks, int32(id), t.h[i], nil)
			}
		}
	})

	// 3. Softmax + cross-entropy per sample; logits become gz in place.
	losses := make([]float64, n)
	parallelFor(n, t.cfg.Workers, func(s, e int) {
		for i := s; i < e; i++ {
			row := t.logits[i*out : (i+1)*out]
			maxL := ks.Max(row)
			var z float64
			for k := range row {
				z += math.Exp(float64(row[k] - maxL))
			}
			logZ := math.Log(z) + float64(maxL)
			labels := b.Labels(lo + i)
			var tgt float32
			if len(labels) > 0 {
				tgt = 1 / float32(len(labels))
			}
			for k := range row {
				row[k] = float32(math.Exp(float64(row[k]) - logZ)) // probability
			}
			for _, y := range labels {
				if int(y) < out {
					losses[i] -= float64(tgt) * math.Log(float64(row[y])+1e-30)
					row[y] -= tgt
				}
			}
		}
	})
	var loss float64
	for _, l := range losses {
		loss += l
	}

	// 4. Output gradients (rows owned per tile) and partial dH per worker.
	// Every partial buffer is cleared, including those of workers that do
	// not spawn this chunk, because step 5 reduces over all of them.
	for w := range t.dh {
		clear(t.dh[w])
	}
	workers := t.cfg.Workers
	if workers > out {
		workers = out
	}
	per := (out + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s := w * per
		e := min(s+per, out)
		if s >= e {
			break
		}
		wg.Add(1)
		go func(w, s, e int) {
			defer wg.Done()
			dhw := t.dh[w]
			buf := t.rowBuf[w]
			for id := s; id < e; id++ {
				rowW := t.output.RowF32(id, buf)
				for i := 0; i < n; i++ {
					gz := t.logits[i*out+id]
					if gz == 0 {
						continue
					}
					t.output.AccumulateOwnedRow(ks, int32(id), gz, t.h[i])
					ks.Axpy(gz, rowW, dhw[i*hd:(i+1)*hd])
				}
			}
		}(w, s, e)
	}
	wg.Wait()

	// 5. Reduce worker partials and run hidden backward per sample.
	parallelFor(n, t.cfg.Workers, func(s, e int) {
		for i := s; i < e; i++ {
			dh := t.dh[0][i*hd : (i+1)*hd]
			for w := 1; w < len(t.dh); w++ {
				ks.Add(t.dh[w][i*hd:(i+1)*hd], dh)
			}
			t.hidden.Backward(ks, b.Sample(lo+i), t.h[i], dh)
		}
	})
	return loss
}

// Scores computes the full logits for one sample into out (len OutputDim).
// Not safe for concurrent use with training.
func (t *Trainer) Scores(x sparse.Vector, out []float32) {
	ks := simd.Active()
	t.hidden.Forward(ks, x, t.evalH)
	t.output.ForwardAll(ks, t.evalH, nil, out, t.cfg.Workers)
}
