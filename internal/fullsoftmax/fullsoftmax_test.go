package fullsoftmax

import (
	"math/rand/v2"
	"testing"

	"github.com/slide-cpu/slide/internal/metrics"
	"github.com/slide-cpu/slide/internal/simd"
	"github.com/slide-cpu/slide/internal/sparse"
)

// planted generates a small learnable problem (mirrors the network tests).
type planted struct {
	dim, classes, nnz int
	protos            [][]int32
	rng               *rand.Rand
}

func newPlanted(dim, classes, nnz int, seed uint64) *planted {
	p := &planted{dim: dim, classes: classes, nnz: nnz,
		rng: rand.New(rand.NewPCG(seed, 77))}
	p.protos = make([][]int32, classes)
	for c := range p.protos {
		used := map[int32]bool{}
		idx := make([]int32, 0, nnz)
		for len(idx) < nnz {
			i := int32(p.rng.IntN(dim))
			if !used[i] {
				used[i] = true
				idx = append(idx, i)
			}
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		p.protos[c] = idx
	}
	return p
}

func (p *planted) batch(n int) sparse.Batch {
	var b sparse.Builder
	for i := 0; i < n; i++ {
		c := p.rng.IntN(p.classes)
		vals := make([]float32, p.nnz)
		for j := range vals {
			vals[j] = 1 + float32(p.rng.NormFloat64())*0.1
		}
		b.Add(p.protos[c], vals, []int32{int32(c)})
	}
	batch, err := b.CSR()
	if err != nil {
		panic(err)
	}
	return batch
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{InputDim: 0, HiddenDim: 1, OutputDim: 1},
		{InputDim: 1, HiddenDim: 0, OutputDim: 1},
		{InputDim: 1, HiddenDim: 1, OutputDim: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c := Config{InputDim: 10, HiddenDim: 4, OutputDim: 5}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.LR != 1e-4 || c.SampleChunk != 128 || c.Workers <= 0 {
		t.Error("defaults not applied")
	}
}

func TestDenseBaselineLearns(t *testing.T) {
	p := newPlanted(80, 20, 6, 1)
	cfg := Config{InputDim: 80, HiddenDim: 24, OutputDim: 20, LR: 0.01, Workers: 2, Seed: 5}
	tr, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for i := 0; i < 80; i++ {
		st := tr.TrainBatch(p.batch(64))
		if st.Samples != 64 {
			t.Fatalf("samples %d", st.Samples)
		}
		mean := st.Loss / float64(st.Samples)
		if i == 0 {
			first = mean
		}
		last = mean
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.4f -> %.4f", first, last)
	}
	// Evaluate P@1.
	eval := p.batch(200)
	scores := make([]float32, 20)
	hits := 0.0
	for i := 0; i < eval.Len(); i++ {
		tr.Scores(eval.Sample(i), scores)
		hits += metrics.PrecisionAtK(scores, eval.Labels(i), 1)
	}
	if p1 := hits / float64(eval.Len()); p1 < 0.6 {
		t.Errorf("dense baseline failed to learn: P@1 = %.3f", p1)
	}
	if tr.Step() != 80 {
		t.Errorf("Step = %d", tr.Step())
	}
}

func TestChunkingInvariance(t *testing.T) {
	// With one worker the math is sequential per row, so the chunk size must
	// not change the result at all.
	mk := func(chunk int) *Trainer {
		cfg := Config{InputDim: 40, HiddenDim: 12, OutputDim: 15,
			LR: 0.01, Workers: 1, SampleChunk: chunk, Seed: 9}
		tr, err := New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a := mk(4)
	b := mk(64)
	pa := newPlanted(40, 15, 5, 2)
	pb := newPlanted(40, 15, 5, 2)
	for i := 0; i < 10; i++ {
		a.TrainBatch(pa.batch(32))
		b.TrainBatch(pb.batch(32))
	}
	x := newPlanted(40, 15, 5, 3).batch(1).Sample(0)
	sa := make([]float32, 15)
	sb := make([]float32, 15)
	a.Scores(x, sa)
	b.Scores(x, sb)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("chunk size changed results: score[%d] %g vs %g", i, sa[i], sb[i])
		}
	}
}

func TestScoresMatchManualForward(t *testing.T) {
	cfg := Config{InputDim: 30, HiddenDim: 10, OutputDim: 12, Workers: 2, Seed: 7}
	tr, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlanted(30, 12, 4, 9)
	tr.TrainBatch(p.batch(16))

	x := p.batch(1).Sample(0)
	scores := make([]float32, 12)
	tr.Scores(x, scores)

	// Manual forward through the layer accessors.
	h := make([]float32, 10)
	tr.Hidden().Forward(simd.Active(), x, h)
	for id := int32(0); id < 12; id++ {
		want := tr.Output().Logit(simd.Active(), id, h, nil)
		if scores[id] != want {
			t.Errorf("score[%d] = %g, manual forward %g", id, scores[id], want)
		}
	}
}

func TestChunkBoundaries(t *testing.T) {
	// Batch sizes below, at, and above SampleChunk must all process every
	// sample exactly once.
	for _, batchN := range []int{3, 8, 9, 17} {
		cfg := Config{InputDim: 20, HiddenDim: 6, OutputDim: 8,
			Workers: 2, SampleChunk: 8, Seed: 11}
		tr, err := New(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := newPlanted(20, 8, 3, 13)
		st := tr.TrainBatch(p.batch(batchN))
		if st.Samples != batchN {
			t.Errorf("batch %d: processed %d samples", batchN, st.Samples)
		}
		if st.Loss <= 0 {
			t.Errorf("batch %d: loss %g", batchN, st.Loss)
		}
	}
}

func TestLossDecreasesOnFixedBatch(t *testing.T) {
	cfg := Config{InputDim: 25, HiddenDim: 8, OutputDim: 10, LR: 0.05, Workers: 1, Seed: 15}
	tr, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := newPlanted(25, 10, 4, 17)
	b := p.batch(16)
	first := tr.TrainBatch(b).Loss
	var last float64
	for i := 0; i < 30; i++ {
		last = tr.TrainBatch(b).Loss
	}
	if last >= first {
		t.Errorf("fixed-batch loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestMultiLabelTargets(t *testing.T) {
	// Multi-label samples must not crash and must distribute the target mass.
	cfg := Config{InputDim: 20, HiddenDim: 8, OutputDim: 10, Workers: 2, Seed: 3}
	tr, err := New(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b sparse.Builder
	b.Add([]int32{1, 3}, []float32{1, 1}, []int32{2, 5, 7})
	b.Add([]int32{0}, []float32{1}, nil) // no labels
	batch, _ := b.CSR()
	st := tr.TrainBatch(batch)
	if st.Samples != 2 {
		t.Errorf("samples %d", st.Samples)
	}
	if st.Loss <= 0 {
		t.Errorf("loss %g, want positive", st.Loss)
	}
}
