package simd

import "github.com/slide-cpu/slide/internal/bf16"

// Kernels is a mode-resolved function-pointer table over every hot-path
// kernel. The dispatching package-level wrappers (Dot, Axpy, AdamStep, …)
// re-read the atomic mode switch on every call, which is fine for cold code
// but measurable when ForwardActive issues one call per active row. The
// training loop instead calls Active() once per batch and invokes the
// resolved table for every row in that batch — the structure the paper's
// intrinsics code gets for free from compile-time dispatch, with SetMode kept
// as the Table-4 ablation switch that decides which table Active returns.
//
// Entries point at the mode-specific implementations directly (dotVec,
// dotScalar, the assembly wrappers, …), never at the dispatching wrappers,
// so no table entry hides an atomic load.
type Kernels struct {
	// Mode records which implementation set this table holds. When an
	// assembly tier is unavailable, ForMode returns a downgraded table and
	// this field names the tier actually running.
	Mode Mode

	// Primitive float32 kernels (§4.2–4.3).
	Dot        func(a, b []float32) float32
	Axpy       func(alpha float32, x, y []float32)
	ScaleAccum func(v float32, w, y []float32)
	Add        func(x, y []float32)
	Scale      func(alpha float32, x []float32)
	Sum        func(x []float32) float32
	Max        func(x []float32) float32
	ArgMax     func(x []float32) int
	AdamStep   func(w, m, v, g []float32, p AdamParams)

	// Fused batch kernels (see fused.go).
	DotManyBias  func(rows [][]float32, bias []float32, ids []int32, h, out []float32)
	AxpyTwo      func(gz float32, h, grad, w, dh []float32)
	AdamStepZero func(w, m, v, g []float32, p AdamParams)

	// Mixed-precision kernels (§4.4).
	DotBF16F32         func(a []bf16.BF16, b []float32) float32
	DotBF16            func(a, b []bf16.BF16) float32
	AxpyBF16           func(alpha float32, x []bf16.BF16, y []float32)
	AdamStepBF16       func(w []bf16.BF16, m, v, g []float32, p AdamParams)
	AdamStepZeroBF16   func(w []bf16.BF16, m, v, g []float32, p AdamParams)
	DotManyBiasBF16Act func(rows [][]float32, bias []float32, ids []int32, hBF []bf16.BF16, out []float32)
	DotManyBiasBF16    func(rows [][]bf16.BF16, bias []float32, ids []int32, hBF []bf16.BF16, out []float32)

	// Quantized integer kernels (serving tier, internal/quant). DotU8S8 is
	// the u8-activation x s8-weight inner product; unlike the float kernels
	// these are exact, so every tier returns the identical int32. DotU8S4
	// takes nibble-packed int4 weights and is Go-backed on every tier.
	DotU8S8 func(a []uint8, b []int8) int32
	DotU8S4 func(a []uint8, b4 []uint8) int32

	// Precision-conversion kernels (§4.4). PackBF16 converts float32 to
	// bfloat16 with round-to-nearest-even; RoundBF16 rounds float32 values
	// through bfloat16 in place. On AVX512-BF16 hardware both map to
	// VCVTNEPS2BF16 (which the paper's CPX pipeline uses); every other tier
	// runs the software conversion.
	PackBF16  func(dst []bf16.BF16, src []float32)
	RoundBF16 func(x []float32)
}

// packBF16Go and roundBF16Go are the software conversion kernels backing
// every tier without AVX512-BF16.
func packBF16Go(dst []bf16.BF16, src []float32) { bf16.Convert(dst, src) }
func roundBF16Go(x []float32)                   { bf16.RoundSlice(x) }

// vectorKernels is the portable 16-lane (AVX-512 substitute) table.
var vectorKernels = Kernels{
	Mode:       Vector,
	Dot:        dotVec,
	Axpy:       axpyVec,
	ScaleAccum: axpyVec, // Algorithm 2's column step is an axpy by another name
	Add:        addVec,
	Scale:      scaleVec,
	Sum:        sumVec,
	Max:        Max, // single dispatch-free implementation serves both Go modes
	ArgMax:     argMaxVec,
	AdamStep:   adamVec,

	DotManyBias:  dotManyBiasVec,
	AxpyTwo:      axpyTwoUnfusedVec, // fused walk loses under the Go compiler
	AdamStepZero: adamZeroVec,

	DotBF16F32:         dotBF16Vec,
	DotBF16:            dotBF16BothVec,
	AxpyBF16:           axpyBF16Vec,
	AdamStepBF16:       adamStepBF16,
	AdamStepZeroBF16:   adamStepZeroBF16,
	DotManyBiasBF16Act: dotManyBiasBF16ActVec,
	DotManyBiasBF16:    dotManyBiasBF16Vec,

	DotU8S8: dotU8S8Vec,
	DotU8S4: dotU8S4Go,

	PackBF16:  packBF16Go,
	RoundBF16: roundBF16Go,
}

// scalarKernels is the naive one-element-at-a-time table (the "-no-avx"
// ablation build).
var scalarKernels = Kernels{
	Mode:       Scalar,
	Dot:        dotScalar,
	Axpy:       axpyScalar,
	ScaleAccum: axpyScalar,
	Add:        addScalar,
	Scale:      scaleScalar,
	Sum:        sumScalar,
	Max:        Max,
	ArgMax:     argMaxScalar,
	AdamStep:   adamScalar,

	DotManyBias:  dotManyBiasScalar,
	AxpyTwo:      axpyTwoUnfusedScalar,
	AdamStepZero: adamZeroScalar,

	DotBF16F32:         dotBF16Scalar,
	DotBF16:            dotBF16BothScalar,
	AxpyBF16:           axpyBF16Scalar,
	AdamStepBF16:       adamStepBF16, // element-local math: one impl serves both modes
	AdamStepZeroBF16:   adamStepZeroBF16,
	DotManyBiasBF16Act: dotManyBiasBF16ActScalar,
	DotManyBiasBF16:    dotManyBiasBF16Scalar,

	DotU8S8: dotU8S8Scalar,
	DotU8S4: dotU8S4Go,

	PackBF16:  packBF16Go,
	RoundBF16: roundBF16Go,
}

// avx2Kernels and avx512Kernels are the assembly tiers. They default to a
// copy of the portable table (self-describing as Mode: Vector); on amd64
// hosts whose CPUID reports the tier, the dispatch init overwrites them with
// the assembly implementations (see dispatch_amd64.go).
var (
	avx2Kernels   = vectorKernels
	avx512Kernels = vectorKernels
)

// Active resolves the current kernel mode with a single atomic load and
// returns the matching table. Call it once per batch (or once per otherwise
// long-lived stretch of work) and use the returned table for every kernel
// invocation in that stretch; kernels already resolved keep their
// implementation if SetMode flips mid-flight, the same in-flight contract
// SetMode has always had.
func Active() *Kernels {
	switch Mode(mode.Load()) {
	case Scalar:
		return &scalarKernels
	case AVX2:
		return &avx2Kernels
	case AVX512:
		return &avx512Kernels
	default:
		return &vectorKernels
	}
}

// ForMode returns the kernel table for an explicit mode, independent of the
// package-level switch (ablation harnesses, equivalence tests). Unsupported
// assembly tiers downgrade like SetMode does; check the returned table's
// Mode field for the tier actually selected.
func ForMode(m Mode) *Kernels {
	switch clampMode(m) {
	case Scalar:
		return &scalarKernels
	case AVX2:
		return &avx2Kernels
	case AVX512:
		return &avx512Kernels
	default:
		return &vectorKernels
	}
}
