// Package simd is the vector-unit substrate of the reproduction.
//
// The paper's Optimized SLIDE vectorizes its hot loops with AVX-512
// intrinsics (§4.2-4.3): 512-bit registers hold 16 float32 lanes, and the
// kernels are built from pairwise multiply, reduce-sum, broadcast-fill and
// lane-wise max operations. Go has no intrinsics, so this package substitutes
// hand-unrolled 16-lane kernels: each "vector" iteration processes a full
// 16-element block with independent accumulator chains (mirroring the
// register-level parallelism AVX-512 exposes), with full-slice re-slicing so
// the compiler can eliminate bounds checks. A deliberately naive one-element-
// at-a-time scalar implementation of every kernel is kept alongside; the
// package-level mode switch reproduces the paper's "AVX-512 on/off" ablation
// (Table 4).
//
// Kernels never allocate and panic on length mismatches (caller bugs), the
// same contract the intrinsic versions have.
package simd

import "sync/atomic"

// Width is the number of float32 lanes in one emulated vector register
// (512 bits / 32 bits per lane).
const Width = 16

// Mode selects the kernel implementation used by the dispatching wrappers.
type Mode int32

const (
	// Vector mode uses the 16-lane unrolled kernels (AVX-512 substitute).
	Vector Mode = iota
	// Scalar mode uses naive one-element loops (the "-no-avx" build).
	Scalar
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Vector:
		return "vector"
	case Scalar:
		return "scalar"
	default:
		return "unknown"
	}
}

// mode is read on every dispatched call; atomic so the ablation harness can
// flip it between runs without a data race under -race.
var mode atomic.Int32

// SetMode selects the implementation used by the dispatching wrappers.
// Flip it only between training runs: kernels already in flight keep the
// implementation they loaded.
func SetMode(m Mode) { mode.Store(int32(m)) }

// CurrentMode returns the active kernel mode.
func CurrentMode() Mode { return Mode(mode.Load()) }

// vectorized reports whether the dispatchers should take the 16-lane path.
func vectorized() bool { return Mode(mode.Load()) == Vector }
