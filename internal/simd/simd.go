// Package simd is the vector-unit substrate of the reproduction.
//
// The paper's Optimized SLIDE vectorizes its hot loops with AVX-512
// intrinsics (§4.2-4.3): 512-bit registers hold 16 float32 lanes, and the
// kernels are built from pairwise multiply, reduce-sum, broadcast-fill and
// lane-wise max operations. This package implements those kernels in four
// tiers, selected once at startup by CPUID feature detection:
//
//	Scalar — naive one-element loops (the paper's "-no-avx" ablation build)
//	Vector — portable Go: hand-unrolled 16-lane blocks with independent
//	         accumulator chains (the cross-architecture reference; the only
//	         vectorized tier on non-amd64 builds)
//	AVX2   — hand-written Go assembly over 8-lane ymm registers with FMA
//	AVX512 — hand-written Go assembly over 16-lane zmm registers with
//	         masked tails, plus AVX512-BF16 conversions where the CPU
//	         reports them
//
// Kernels never allocate and panic on length mismatches (caller bugs), the
// same contract the intrinsic versions have. See DESIGN.md "Native kernel
// backend" for the FMA/ULP divergence policy between tiers.
package simd

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Width is the number of float32 lanes in one emulated vector register
// (512 bits / 32 bits per lane). The portable Vector tier unrolls to this
// width; the AVX512 tier realizes it in hardware.
const Width = 16

// Mode selects the kernel implementation used by the dispatching wrappers.
type Mode int32

const (
	// Vector mode uses the portable 16-lane unrolled Go kernels (the
	// cross-architecture AVX-512 substitute and assembly reference).
	Vector Mode = iota
	// Scalar mode uses naive one-element loops (the "-no-avx" build).
	Scalar
	// AVX2 mode uses hand-written 8-lane ymm assembly (AVX2+FMA).
	AVX2
	// AVX512 mode uses hand-written 16-lane zmm assembly (AVX-512F/BW/VL/DQ,
	// with AVX512-BF16 conversions when the CPU reports them).
	AVX512
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Vector:
		return "vector"
	case Scalar:
		return "scalar"
	case AVX2:
		return "avx2"
	case AVX512:
		return "avx512"
	default:
		return "unknown"
	}
}

// Supported reports whether mode m can execute on this host. Scalar and
// Vector are always supported; the assembly tiers require amd64 plus the
// matching CPUID features (OS-enabled, see internal/cpufeat).
func Supported(m Mode) bool {
	switch m {
	case AVX2:
		return haveAVX2
	case AVX512:
		return haveAVX512
	case Scalar, Vector:
		return true
	default:
		return false
	}
}

// Best returns the fastest supported mode: AVX512 when the host has it,
// else AVX2, else the portable Vector tier.
func Best() Mode {
	switch {
	case haveAVX512:
		return AVX512
	case haveAVX2:
		return AVX2
	default:
		return Vector
	}
}

// clampMode resolves m to a supported mode, downgrading through the tier chain
// AVX512 → AVX2 → Vector. Scalar never downgrades (it is the ablation
// floor, always available).
func clampMode(m Mode) Mode {
	switch m {
	case AVX512:
		if haveAVX512 {
			return AVX512
		}
		fallthrough
	case AVX2:
		if haveAVX2 {
			return AVX2
		}
		return Vector
	case Scalar:
		return Scalar
	default:
		return Vector
	}
}

// mode is read on every dispatched call; atomic so the ablation harness can
// flip it between runs without a data race under -race. It always holds a
// supported mode (SetMode clamps).
var mode atomic.Int32

// init selects the startup mode: the best CPUID-supported tier, overridable
// with SLIDE_KERNEL_MODE=scalar|vector|avx2|avx512 (unsupported requests
// downgrade through the tier chain; "auto" or empty keeps the default).
// The env knob exists so CI can run the whole test suite under each tier.
func init() {
	m := Best()
	switch v := envKernelMode(); v {
	case "scalar":
		m = Scalar
	case "vector", "portable":
		m = Vector
	case "avx2":
		m = AVX2
	case "avx512":
		m = AVX512
	case "", "auto":
	default:
		// A dropped knob must not be silent: a typo would otherwise run
		// the opposite ablation extreme with nothing in the output.
		fmt.Fprintf(os.Stderr,
			"simd: unrecognized SLIDE_KERNEL_MODE=%q (want scalar|vector|avx2|avx512|auto), using %s\n",
			v, m)
	}
	SetMode(m)
}

// SetMode selects the implementation used by the dispatching wrappers.
// Unsupported assembly tiers are clamped to the best supported tier below
// them. Flip it only between training runs: kernels already in flight keep
// the implementation they loaded.
func SetMode(m Mode) { mode.Store(int32(clampMode(m))) }

// CurrentMode returns the active kernel mode.
func CurrentMode() Mode { return Mode(mode.Load()) }

// envKernelMode returns the SLIDE_KERNEL_MODE override (empty when unset).
func envKernelMode() string { return os.Getenv("SLIDE_KERNEL_MODE") }

// AvailableModes returns every mode supported on this host, fastest tier
// first (ablation sweeps and per-mode test matrices iterate this).
func AvailableModes() []Mode {
	modes := make([]Mode, 0, 4)
	for _, m := range []Mode{AVX512, AVX2, Vector, Scalar} {
		if Supported(m) {
			modes = append(modes, m)
		}
	}
	return modes
}
